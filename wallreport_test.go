package lasagna

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchWallBaseline pins the committed bench/BENCH_wall.json against
// the hot-loop registry: the gate compares only paths present in both
// files, so a baseline with a renamed or missing loop would silently
// gate nothing. The baseline must carry exactly the loops hotPathLoops
// returns, each with a positive wall measurement and the field names the
// bench_gate rules match on.
func TestBenchWallBaseline(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("bench", "BENCH_wall.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep wallReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench/BENCH_wall.json: %v", err)
	}
	loops := hotPathLoops()
	if len(rep.Loops) != len(loops) {
		t.Fatalf("baseline has %d loops, want %d", len(rep.Loops), len(loops))
	}
	for i, l := range loops {
		row := rep.Loops[i]
		if row.Name != l.name {
			t.Errorf("loop %d named %q, want %q", i, row.Name, l.name)
		}
		if row.NsPerOp <= 0 {
			t.Errorf("%s: nsPerOp = %v, want > 0", row.Name, row.NsPerOp)
		}
		if row.AllocsPerOp < 0 {
			t.Errorf("%s: allocsPerOp = %v, want >= 0", row.Name, row.AllocsPerOp)
		}
	}
	// The gate matches keys by substring ("nsperop", "allocsperop"); the
	// raw document must spell them the way the rules expect.
	for _, key := range []string{`"name"`, `"nsPerOp"`, `"allocsPerOp"`} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("baseline JSON lacks %s field; bench_gate would gate nothing", key)
		}
	}
}

// TestWallReportRoundTrip runs every hot loop for a handful of bounded
// iterations and round-trips the report through writeWallReport, pinning
// that the emission path produces a document the gate (and the baseline
// test above) can consume. Measurement quality is irrelevant here; only
// shape and field names are.
func TestWallReportRoundTrip(t *testing.T) {
	var rows []wallRow
	for _, l := range hotPathLoops() {
		row, err := measureLoop(l, 4)
		if err != nil {
			t.Fatal(err)
		}
		if row.Name != l.name {
			t.Fatalf("measureLoop named row %q, want %q", row.Name, l.name)
		}
		if row.NsPerOp <= 0 {
			t.Fatalf("%s: nsPerOp = %v, want > 0", row.Name, row.NsPerOp)
		}
		rows = append(rows, row)
	}
	path := filepath.Join(t.TempDir(), "BENCH_wall.json")
	if err := writeWallReport(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep wallReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != len(rows) {
		t.Fatalf("round-trip kept %d loops, want %d", len(rep.Loops), len(rows))
	}
	for i := range rows {
		if rep.Loops[i].Name != rows[i].Name {
			t.Fatalf("loop %d round-tripped as %q, want %q", i, rep.Loops[i].Name, rows[i].Name)
		}
	}
}
