package lasagna

import (
	"path/filepath"
	"strings"
	"testing"
)

func tinyProfile() DatasetProfile {
	p := Datasets[0].Scaled(0.08) // ~3.2 kb genome, 101 bp reads
	return p
}

func tinyConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig(t.TempDir())
	cfg.MinOverlap = tinyProfile().MinOverlap
	cfg.HostBlockPairs = 8192
	cfg.DeviceBlockPairs = 1024
	cfg.MapBatchReads = 256
	return cfg
}

func TestPublicAssembleRoundTrip(t *testing.T) {
	genome, reads := GenerateDataset(tinyProfile())
	res, err := Assemble(tinyConfig(t), reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	gs, grc := genome.String(), genome.ReverseComplement().String()
	for i, c := range res.Contigs {
		if !strings.Contains(gs, c.String()) && !strings.Contains(grc, c.String()) {
			t.Errorf("contig %d not a genome substring", i)
		}
	}
}

func TestPublicFileRoundTrip(t *testing.T) {
	_, reads := GenerateDataset(tinyProfile())
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq")
	if err := WriteReads(path, reads); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReads(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumReads() != reads.NumReads() {
		t.Fatalf("loaded %d reads, wrote %d", loaded.NumReads(), reads.NumReads())
	}
	res, err := AssembleFile(tinyConfig(t), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumReads != reads.NumReads() {
		t.Errorf("NumReads = %d", res.NumReads)
	}
}

func TestPublicDistributedAgreesWithSingle(t *testing.T) {
	_, reads := GenerateDataset(tinyProfile())
	sres, err := Assemble(tinyConfig(t), reads)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := DefaultClusterConfig(t.TempDir(), 2)
	ccfg.MinOverlap = tinyProfile().MinOverlap
	ccfg.HostBlockPairs = 8192
	ccfg.DeviceBlockPairs = 1024
	ccfg.MapBatchReads = 256
	ccfg.InputBlockReads = 64
	dres, err := AssembleDistributed(ccfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if dres.AcceptedEdges != sres.AcceptedEdges || len(dres.Contigs) != len(sres.Contigs) {
		t.Fatalf("distributed (%d edges, %d contigs) != single (%d edges, %d contigs)",
			dres.AcceptedEdges, len(dres.Contigs), sres.AcceptedEdges, len(sres.Contigs))
	}
}

func TestBaselineAgreesOnGreedyGraph(t *testing.T) {
	// LaSAGNA's fingerprint overlaps (zero collisions at these scales)
	// feed the same greedy discipline as the exact FM-index baseline, so
	// both assemblers must accept the same number of edges and produce
	// contigs with identical total length.
	_, reads := GenerateDataset(tinyProfile())
	cfg := tinyConfig(t)
	cfg.VerifyOverlaps = true
	lres, err := Assemble(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if lres.FalsePositives != 0 {
		t.Fatalf("fingerprint false positives: %d", lres.FalsePositives)
	}
	bres, err := AssembleBaseline(BaselineConfig{
		MinOverlap:  tinyProfile().MinOverlap,
		BreakCycles: true,
	}, reads)
	if err != nil {
		t.Fatal(err)
	}
	if int64(bres.Edges) != lres.CandidateEdges {
		t.Errorf("baseline found %d overlap candidates, LaSAGNA %d",
			bres.Edges, lres.CandidateEdges)
	}
	if bres.ContigStats.TotalBases != lres.ContigStats.TotalBases {
		t.Errorf("baseline assembled %d bases, LaSAGNA %d",
			bres.ContigStats.TotalBases, lres.ContigStats.TotalBases)
	}
	if bres.ContigStats.N50 != lres.ContigStats.N50 {
		t.Errorf("baseline N50 %d, LaSAGNA %d", bres.ContigStats.N50, lres.ContigStats.N50)
	}
}

func TestDatasetAndGPUCatalogs(t *testing.T) {
	if len(Datasets) != 4 {
		t.Errorf("Datasets = %d entries", len(Datasets))
	}
	if len(GPUs) != 5 {
		t.Errorf("GPUs = %d entries", len(GPUs))
	}
	if K40.Name != "K40" || V100.Cores <= P100.Cores {
		t.Error("GPU specs look wrong")
	}
	if s, err := ParseSeq("ACGT"); err != nil || len(s) != 4 {
		t.Error("ParseSeq broken")
	}
}
