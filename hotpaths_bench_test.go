// Wall-clock micro-benchmarks for the three real hot loops of the
// pipeline — the Rabin-Karp fingerprint scan, kvio pair serialization,
// and the external sort's device chunk sort — plus the BENCH_wall.json
// emission the bench_gate wall-clock rule consumes.
//
// Unlike the modeled-seconds benchmarks (BenchmarkTable2 etc.), these
// measure raw host nanoseconds and allocations per operation: the cost
// model is deliberately identical before and after any hot-path rework,
// so wall time is the only signal that the loops actually got faster.
//
// BenchmarkHotPaths does its own calibration (warmup, then grow the
// iteration count until a loop runs long enough to time stably) instead
// of relying on b.N, because the gate needs steady-state numbers — in
// particular allocs/op after buffer pools are warm — even under
// -benchtime=1x. testing.Benchmark cannot be used from inside a running
// benchmark (it deadlocks on the global benchmark lock), so the
// measurement is explicit:
//
//	BENCH_WALL_OUT=BENCH_wall.json go test -run=NONE -bench='^BenchmarkHotPaths$' -benchtime=1x .
package lasagna

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/fingerprint"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
)

// Workload shapes for the hot loops. The kvio loop rotates its files
// every hotFileBatches operations so file open/close cost amortizes to
// nothing and the steady-state inner loop dominates.
const (
	hotReadLen     = 100  // bases per read in the fingerprint scan
	hotReadCount   = 64   // distinct reads cycled through per scan op
	hotBatchPairs  = 1024 // pairs per kvio read/write batch
	hotFileBatches = 512  // batches written per kvio file rotation
	hotChunkPairs  = 2048 // m_d-sized device chunk for the sort loop
)

// wallRow is one hot loop's measurement in BENCH_wall.json. The nsPerOp
// and allocsPerOp fields are gated by scripts/bench_gate (nsPerOp with
// the generous wall-clock threshold, allocsPerOp absolutely); bytesPerOp
// is informational.
type wallRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
}

type wallReport struct {
	Loops []wallRow `json:"loops"`
}

// wallLoop is one benchmarked hot loop: setup returns the operation to
// be timed and a cleanup. The op may keep internal state (open files,
// rotation counters); it must be safe to call any number of times.
type wallLoop struct {
	name  string
	setup func() (op func() error, cleanup func(), err error)
}

// hotPathLoops returns the gated hot loops. TestBenchWallBaseline pins
// the committed baseline against exactly this list, so the gate can
// never silently compare an empty intersection.
func hotPathLoops() []wallLoop {
	return []wallLoop{
		{"fingerprint_scan", setupFingerprintScan},
		{"kvio_roundtrip", setupKVIORoundtrip},
		{"extsort_chunk_sort", setupChunkSort},
	}
}

// setupFingerprintScan times one read's prefix+suffix fingerprint scan
// (the map phase's inner kernel pair), cycling through a fixed set of
// random reads so branch history cannot memorize one sequence.
func setupFingerprintScan() (func() error, func(), error) {
	rng := rand.New(rand.NewSource(42))
	reads := make([]dna.Seq, hotReadCount)
	for i := range reads {
		s := make(dna.Seq, hotReadLen)
		for j := range s {
			s[j] = byte(rng.Intn(4))
		}
		reads[i] = s
	}
	dev := gpu.NewDevice(gpu.K40, nil)
	table := fingerprint.NewTable(hotReadLen)
	kern := fingerprint.NewKernel(table)
	pf := make([]kv.Key, hotReadLen)
	sf := make([]kv.Key, hotReadLen)
	i := 0
	op := func() error {
		s := reads[i%hotReadCount]
		i++
		p := kern.Prefixes(dev, s, pf)
		kern.Suffixes(dev, p, sf)
		return nil
	}
	return op, func() {}, nil
}

// setupKVIORoundtrip times one batch of pair serialization in each
// direction: a WriteBatch into an open writer plus a ReadBatch from an
// independent pre-written file. Files rotate every hotFileBatches ops.
func setupKVIORoundtrip() (func() error, func(), error) {
	dir, err := os.MkdirTemp("", "hotpaths-kvio-*")
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	rng := rand.New(rand.NewSource(43))
	batch := make([]kv.Pair, hotBatchPairs)
	for i := range batch {
		batch[i] = kv.Pair{Key: kv.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, Val: rng.Uint32()}
	}
	readPath := filepath.Join(dir, "read.kv")
	writePath := filepath.Join(dir, "write.kv")
	w, err := kvio.NewWriter(readPath, nil)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	for i := 0; i < hotFileBatches; i++ {
		if err := w.WriteBatch(batch); err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	if err := w.Close(); err != nil {
		cleanup()
		return nil, nil, err
	}
	if w, err = kvio.NewWriter(writePath, nil); err != nil {
		cleanup()
		return nil, nil, err
	}
	r, err := kvio.NewReader(readPath, nil)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	dst := make([]kv.Pair, hotBatchPairs)
	ops := 0
	op := func() error {
		if ops > 0 && ops%hotFileBatches == 0 {
			// Rotate: reopen both files so neither grows without bound
			// nor drains to EOF. Amortized over hotFileBatches ops.
			if err := w.Close(); err != nil {
				return err
			}
			if err := r.Close(); err != nil {
				return err
			}
			if w, err = kvio.NewWriter(writePath, nil); err != nil {
				return err
			}
			if r, err = kvio.NewReader(readPath, nil); err != nil {
				return err
			}
		}
		ops++
		if err := w.WriteBatch(batch); err != nil {
			return err
		}
		_, err := r.ReadBatch(dst)
		return err
	}
	fullCleanup := func() {
		w.Close()
		r.Close()
		cleanup()
	}
	return op, fullCleanup, nil
}

// setupChunkSort times the device radix sort of one m_d-sized chunk,
// the innermost kernel of the external sort's run-formation pass. Each
// op re-copies the chunk from a pristine shuffle so every sort does the
// same work.
func setupChunkSort() (func() error, func(), error) {
	rng := rand.New(rand.NewSource(44))
	pristine := make([]kv.Pair, hotChunkPairs)
	for i := range pristine {
		pristine[i] = kv.Pair{Key: kv.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, Val: rng.Uint32()}
	}
	work := make([]kv.Pair, hotChunkPairs)
	dev := gpu.NewDevice(gpu.K40, nil)
	op := func() error {
		copy(work, pristine)
		dev.SortPairs(work)
		return nil
	}
	return op, func() {}, nil
}

// Measurement knobs: each loop warms up (filling buffer pools and
// caches), then the iteration count grows until one timed run lasts at
// least measureTarget, so the ns/op resolution is far below the gate's
// threshold and pool warmup allocations amortize to zero.
const (
	wallWarmupOps = 8
	measureTarget = 200 * time.Millisecond
	measureMaxOps = 1 << 20
)

// measureLoop runs one hot loop to a steady-state measurement. minOps
// lets the smoke test bound the work; pass 0 for the full calibration.
func measureLoop(l wallLoop, minOps int) (wallRow, error) {
	op, cleanup, err := l.setup()
	if err != nil {
		return wallRow{}, fmt.Errorf("%s: setup: %w", l.name, err)
	}
	defer cleanup()
	for i := 0; i < wallWarmupOps; i++ {
		if err := op(); err != nil {
			return wallRow{}, fmt.Errorf("%s: warmup: %w", l.name, err)
		}
	}
	n := 64
	if minOps > 0 {
		n = minOps
	}
	var ms0, ms1 runtime.MemStats
	for {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := op(); err != nil {
				return wallRow{}, fmt.Errorf("%s: op: %w", l.name, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if minOps > 0 || elapsed >= measureTarget || n >= measureMaxOps {
			return wallRow{
				Name:        l.name,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
				BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
			}, nil
		}
		// Grow toward the target in a few steps.
		grow := int(float64(n) * float64(measureTarget) / float64(elapsed+1) * 1.2)
		if grow < 2*n {
			grow = 2 * n
		}
		if grow > measureMaxOps {
			grow = measureMaxOps
		}
		n = grow
	}
}

// writeWallReport writes the measured loops as BENCH_wall.json.
func writeWallReport(path string, rows []wallRow) error {
	data, err := json.MarshalIndent(wallReport{Loops: rows}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchmarkHotPaths measures every hot loop at steady state and reports
// ns/op and allocs/op per loop. When BENCH_WALL_OUT names a file, the
// table is written there for the bench_gate wall-clock rule. The
// measurement is self-calibrating and independent of b.N (see the
// package comment), so -benchtime=1x gives full-quality numbers.
func BenchmarkHotPaths(b *testing.B) {
	var rows []wallRow
	for _, l := range hotPathLoops() {
		row, err := measureLoop(l, 0)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row)
		b.ReportMetric(row.NsPerOp, l.name+"-ns/op")
		b.Logf("%s: %.0f ns/op, %.2f allocs/op, %.0f B/op",
			l.name, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp)
	}
	// Keep the conventional loop so `go test -bench` accounting stays
	// sane; the real measurement happened above.
	for i := 0; i < b.N; i++ {
	}
	out := os.Getenv("BENCH_WALL_OUT")
	if out == "" {
		return
	}
	if err := writeWallReport(out, rows); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("wrote %s (%d loops)\n", out, len(rows))
}
