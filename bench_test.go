// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (Section IV). Each benchmark runs a reduced-scale instance of
// the corresponding experiment and reports the modeled metric the paper
// plots alongside Go's usual wall-clock measurement; run the full-size
// study with cmd/lasagna-bench.
//
//	go test -bench=. -benchmem
package lasagna

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/extsort"
	"repro/internal/gpu"
	"repro/internal/kvio"
	"repro/internal/readsim"
	"repro/internal/sga"
)

// benchScale keeps `go test -bench=.` quick; cmd/lasagna-bench runs the
// full scaled profiles.
const benchScale = 0.1

func benchReads(b *testing.B, idx int) (readsim.Profile, *ReadSet) {
	b.Helper()
	p := readsim.Profiles[idx].Scaled(benchScale)
	_, rs := p.Generate()
	return p, rs
}

func benchConfig(b *testing.B, m gpu.Spec, lmin int) Config {
	b.Helper()
	cfg := DefaultConfig(b.TempDir())
	cfg.MinOverlap = lmin
	cfg.GPU = m
	cfg.HostBlockPairs = 1 << 14
	cfg.DeviceBlockPairs = 1 << 11
	return cfg
}

// runPipeline assembles once per iteration and reports modeled seconds.
func runPipeline(b *testing.B, m gpu.Spec, datasetIdx int) {
	b.Helper()
	p, rs := benchReads(b, datasetIdx)
	b.ReportAllocs()
	b.ResetTimer()
	var modeled float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchConfig(b, m, p.MinOverlap)
		b.StartTimer()
		res, err := Assemble(cfg, rs)
		if err != nil {
			b.Fatal(err)
		}
		modeled = res.TotalModeled.Seconds()
	}
	b.ReportMetric(modeled, "modeled-s")
}

// BenchmarkTable2 reproduces Table II (phase times, 128 GB + K40) per
// dataset at bench scale.
func BenchmarkTable2(b *testing.B) {
	for i, p := range readsim.Profiles {
		b.Run(p.Name, func(b *testing.B) { runPipeline(b, gpu.K40, i) })
	}
}

// BenchmarkPipelineWorkers measures the wall-clock effect of the
// partition-level worker pool (Config.Workers) on the largest bench-scale
// dataset. The modeled seconds are identical across worker counts by
// construction (see TestWorkersDeterminism); only the host wall clock
// should fall as workers increase.
func BenchmarkPipelineWorkers(b *testing.B) {
	p, rs := benchReads(b, 3)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(b, gpu.K40, p.MinOverlap)
				cfg.Workers = workers
				b.StartTimer()
				if _, err := Assemble(cfg, rs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// streamsBenchPhase is one phase's serial-vs-overlapped comparison in
// BENCH_streams.json.
type streamsBenchPhase struct {
	Phase              string  `json:"phase"`
	SerialModeledS     float64 `json:"serialModeledS"`
	OverlappedModeledS float64 `json:"overlappedModeledS"`
	SerialWallS        float64 `json:"serialWallS"`
	OverlappedWallS    float64 `json:"overlappedWallS"`
}

type streamsBenchReport struct {
	SerialModeledS     float64             `json:"serialModeledS"`
	OverlappedModeledS float64             `json:"overlappedModeledS"`
	SavedS             float64             `json:"savedS"`
	OverlapRatio       float64             `json:"overlapRatio"`
	Phases             []streamsBenchPhase `json:"phases"`
}

// BenchmarkPipelineStreams assembles the largest bench-scale dataset with
// modeled streams off and on. Output and counters are identical by
// construction (see core's streams tests); what the benchmark shows is
// the modeled seconds falling and the wall-clock cost of the stream
// machinery staying negligible. When BENCH_STREAMS_OUT names a file, the
// per-phase serial vs overlapped comparison is written there as JSON.
func BenchmarkPipelineStreams(b *testing.B) {
	p, rs := benchReads(b, 3)
	results := map[bool]*core.Result{}
	for _, streams := range []bool{false, true} {
		streams := streams
		name := "serial"
		if streams {
			name = "overlapped"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(b, gpu.K40, p.MinOverlap)
				cfg.Streams = streams
				b.StartTimer()
				var err error
				res, err = Assemble(cfg, rs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TotalModeled.Seconds(), "modeled-s")
			results[streams] = res
		})
	}
	serial, overlapped := results[false], results[true]
	if serial == nil || overlapped == nil {
		return // sub-benchmark filtered out
	}
	if overlapped.Counters != serial.Counters {
		b.Fatalf("streams changed counters: %+v vs %+v", overlapped.Counters, serial.Counters)
	}
	out := os.Getenv("BENCH_STREAMS_OUT")
	if out == "" {
		return
	}
	rep := streamsBenchReport{
		SerialModeledS:     serial.TotalModeled.Seconds(),
		OverlappedModeledS: overlapped.TotalModeled.Seconds(),
		SavedS:             overlapped.OverlapSaved.Seconds(),
		OverlapRatio:       overlapped.OverlapRatio,
	}
	for i, ps := range serial.Phases {
		po := overlapped.Phases[i]
		rep.Phases = append(rep.Phases, streamsBenchPhase{
			Phase:              ps.Name,
			SerialModeledS:     ps.Modeled.Seconds(),
			OverlappedModeledS: po.Modeled.Seconds(),
			SerialWallS:        ps.Wall.Seconds(),
			OverlappedWallS:    po.Wall.Seconds(),
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// graphBenchRow is one (dataset, backend) cell of BENCH_graph.json. Only
// the modeled fields participate in the bench_gate regression check;
// wall seconds and edge counts are informational.
type graphBenchRow struct {
	Dataset         string  `json:"dataset"`
	Backend         string  `json:"backend"`
	ModeledS        float64 `json:"modeledS"`
	ReduceModeledS  float64 `json:"reduceModeledS"`
	WallS           float64 `json:"wallS"`
	NNZ             int64   `json:"nnz"`
	AcceptedEdges   int64   `json:"acceptedEdges"`
	ReducedEdges    int64   `json:"reducedEdges"`
	Contigs         int     `json:"contigs"`
	N50             int     `json:"n50"`
	PeakDeviceBytes int64   `json:"peakDeviceBytes"`
}

type graphBenchReport struct {
	Rows []graphBenchRow `json:"rows"`
}

// BenchmarkGraphBackends compares the reduce/compress engines — greedy,
// the sgraph full graph, and the spmat masked-SpGEMM backend — on two
// bench-scale datasets, pinning the refinement contract (spmat never
// removes fewer transitive edges than the Myers sweep, and the greedy
// engine removes none) and reporting modeled seconds per engine. When
// BENCH_GRAPH_OUT names a file, the comparison table is written there as
// JSON for the bench_gate regression check and EXPERIMENTS.md.
func BenchmarkGraphBackends(b *testing.B) {
	backends := []string{"greedy", "full", "spmat"}
	var rep graphBenchReport
	for _, idx := range []int{0, 3} {
		p, rs := benchReads(b, idx)
		results := map[string]*core.Result{}
		for _, backend := range backends {
			backend := backend
			b.Run(fmt.Sprintf("%s/%s", p.Name, backend), func(b *testing.B) {
				b.ReportAllocs()
				var res *core.Result
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := benchConfig(b, gpu.K40, p.MinOverlap)
					switch backend {
					case "full":
						cfg.FullGraph = true
					case "spmat":
						cfg.GraphBackend = core.BackendSpmat
					}
					b.StartTimer()
					var err error
					res, err = Assemble(cfg, rs)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.TotalModeled.Seconds(), "modeled-s")
				b.ReportMetric(float64(res.ReducedEdges), "removed-edges")
				results[backend] = res
			})
		}
		full, spmat := results["full"], results["spmat"]
		if full == nil || spmat == nil {
			continue // sub-benchmark filtered out
		}
		// The refinement contract the differential tests pin at small
		// scale must hold at bench scale too.
		if spmat.ReducedEdges < full.ReducedEdges {
			b.Fatalf("%s: spmat removed %d transitive edges, full graph removed %d",
				p.Name, spmat.ReducedEdges, full.ReducedEdges)
		}
		if g := results["greedy"]; g != nil && spmat.ReducedEdges < g.ReducedEdges {
			b.Fatalf("%s: spmat removed %d transitive edges, greedy removed %d",
				p.Name, spmat.ReducedEdges, g.ReducedEdges)
		}
		for _, backend := range backends {
			res := results[backend]
			if res == nil {
				continue
			}
			row := graphBenchRow{
				Dataset:       p.Name,
				Backend:       backend,
				ModeledS:      res.TotalModeled.Seconds(),
				WallS:         res.TotalWall.Seconds(),
				NNZ:           res.AcceptedEdges + res.ReducedEdges,
				AcceptedEdges: res.AcceptedEdges,
				ReducedEdges:  res.ReducedEdges,
				Contigs:       len(res.Contigs),
				N50:           res.ContigStats.N50,
			}
			if ps, ok := res.PhaseByName(core.PhaseReduce); ok {
				row.ReduceModeledS = ps.Modeled.Seconds()
			}
			for _, ps := range res.Phases {
				if ps.PeakDevice > row.PeakDeviceBytes {
					row.PeakDeviceBytes = ps.PeakDevice
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	out := os.Getenv("BENCH_GRAPH_OUT")
	if out == "" || len(rep.Rows) == 0 {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// memBenchRow is one (dataset, scale, backend) cell of BENCH_mem.json.
// The modeled seconds and both host-peak fields participate in the
// bench_gate regression check (keys containing "modeled" or "hostPeak");
// wall seconds and edge counts are informational.
type memBenchRow struct {
	Dataset        string  `json:"dataset"`
	Scale          float64 `json:"scale"`
	Backend        string  `json:"backend"`
	ModeledS       float64 `json:"modeledS"`
	GraphHostPeakB int64   `json:"graphHostPeakB"`
	HostPeakB      int64   `json:"hostPeakB"`
	WallS          float64 `json:"wallS"`
	AcceptedEdges  int64   `json:"acceptedEdges"`
	ReducedEdges   int64   `json:"reducedEdges"`
}

type memBenchReport struct {
	Rows []memBenchRow `json:"rows"`
}

// BenchmarkGraphBackendMemory compares the host-memory footprint of the
// reduce/compress engines — greedy, the spmat edge-list/CSR backend, and
// the succinct compressed store — on the largest profile at two scale
// factors, reporting the graph-attributable host peak the MemTracker
// measured alongside modeled seconds. The tentpole claim is pinned at
// the larger scale: the succinct store's graph peak must be at least 2x
// below the spmat edge-list path's. When BENCH_MEM_OUT names a file,
// the comparison table is written there as JSON for the bench_gate
// regression check and EXPERIMENTS.md.
func BenchmarkGraphBackendMemory(b *testing.B) {
	backends := []string{core.BackendGreedy, core.BackendSpmat, core.BackendSuccinct}
	scales := []float64{0.05, 0.1}
	var rep memBenchReport
	for _, scale := range scales {
		p := readsim.Profiles[3].Scaled(scale)
		_, rs := p.Generate()
		graphPeaks := map[string]int64{}
		for _, backend := range backends {
			backend := backend
			b.Run(fmt.Sprintf("%s/scale=%.2f/%s", p.Name, scale, backend), func(b *testing.B) {
				b.ReportAllocs()
				var res *core.Result
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := benchConfig(b, gpu.K40, p.MinOverlap)
					cfg.GraphBackend = backend
					b.StartTimer()
					var err error
					res, err = Assemble(cfg, rs)
					if err != nil {
						b.Fatal(err)
					}
				}
				var graphPeak, hostPeak int64
				for _, ps := range res.Phases {
					if ps.GraphHostPeak > graphPeak {
						graphPeak = ps.GraphHostPeak
					}
					if ps.PeakHost > hostPeak {
						hostPeak = ps.PeakHost
					}
				}
				b.ReportMetric(float64(graphPeak), "graph-peak-B")
				b.ReportMetric(res.TotalModeled.Seconds(), "modeled-s")
				graphPeaks[backend] = graphPeak
				rep.Rows = append(rep.Rows, memBenchRow{
					Dataset:        p.Name,
					Scale:          scale,
					Backend:        backend,
					ModeledS:       res.TotalModeled.Seconds(),
					GraphHostPeakB: graphPeak,
					HostPeakB:      hostPeak,
					WallS:          res.TotalWall.Seconds(),
					AcceptedEdges:  res.AcceptedEdges,
					ReducedEdges:   res.ReducedEdges,
				})
			})
		}
		sp, succ := graphPeaks[core.BackendSpmat], graphPeaks[core.BackendSuccinct]
		if scale == scales[len(scales)-1] && sp > 0 && succ > 0 && 2*succ > sp {
			b.Fatalf("%s scale %.2f: succinct graph peak %d B is not 2x below spmat's %d B",
				p.Name, scale, succ, sp)
		}
	}
	out := os.Getenv("BENCH_MEM_OUT")
	if out == "" || len(rep.Rows) == 0 {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable3 reproduces Table III (phase times, 64 GB + K20X).
func BenchmarkTable3(b *testing.B) {
	for i, p := range readsim.Profiles {
		b.Run(p.Name, func(b *testing.B) { runPipeline(b, gpu.K20X, i) })
	}
}

// BenchmarkTable4 reproduces Tables IV/V (peak memory): it reports peak
// host and device bytes for the largest dataset on both machines.
func BenchmarkTable4(b *testing.B) {
	for _, m := range []gpu.Spec{gpu.K40, gpu.K20X} {
		b.Run(m.Name, func(b *testing.B) {
			p, rs := benchReads(b, 3)
			var host, dev float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(b, m, p.MinOverlap)
				pipe, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := pipe.Assemble(rs)
				if err != nil {
					b.Fatal(err)
				}
				host, dev = 0, 0
				for _, ps := range res.Phases {
					if float64(ps.PeakHost) > host {
						host = float64(ps.PeakHost)
					}
					if float64(ps.PeakDevice) > dev {
						dev = float64(ps.PeakDevice)
					}
				}
			}
			b.ReportMetric(host, "peak-host-B")
			b.ReportMetric(dev, "peak-dev-B")
		})
	}
}

// BenchmarkTable6 reproduces Table VI: the SGA-style FM-index baseline
// against LaSAGNA's map+sort+reduce on the same dataset.
func BenchmarkTable6(b *testing.B) {
	p, rs := benchReads(b, 0) // H.Chr14-like
	b.Run("SGA", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, err := sga.NewAssembler(sga.Config{MinOverlap: p.MinOverlap})
			if err != nil {
				b.Fatal(err)
			}
			if _, res := a.Overlaps(rs); res.Edges == 0 {
				b.Fatal("baseline found no overlaps")
			}
		}
	})
	b.Run("LaSAGNA", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := benchConfig(b, gpu.K40, p.MinOverlap)
			b.StartTimer()
			if _, err := Assemble(cfg, rs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchPartition materializes one partition's pair file for the sorting
// studies (Figs. 8 and 9).
func benchPartition(b *testing.B) (string, int64) {
	b.Helper()
	p, rs := benchReads(b, 3)
	dir := b.TempDir()
	dev := gpu.NewDevice(gpu.K40, nil)
	sfxW := kvio.NewPartitionWriters(dir, kvio.Suffix, nil)
	pfxW := kvio.NewPartitionWriters(dir, kvio.Prefix, nil)
	mapper := core.NewMapper(dev, nil, p.MinOverlap, 2048, rs.MaxLen())
	if err := mapper.MapRange(context.Background(), rs, 0, rs.NumReads(), sfxW, pfxW); err != nil {
		b.Fatal(err)
	}
	counts := sfxW.Counts()
	if err := sfxW.Close(); err != nil {
		b.Fatal(err)
	}
	if err := pfxW.Close(); err != nil {
		b.Fatal(err)
	}
	bestL, bestN := -1, int64(-1)
	for l, n := range counts {
		if n > bestN {
			bestL, bestN = l, n
		}
	}
	return kvio.PartitionPath(dir, kvio.Suffix, bestL), bestN
}

func sortPartition(b *testing.B, path string, mh, md int, card gpu.Spec) float64 {
	b.Helper()
	meter := costmodel.NewMeter()
	dev := gpu.NewDevice(card, meter)
	dir, err := os.MkdirTemp(b.TempDir(), "s-*")
	if err != nil {
		b.Fatal(err)
	}
	cfg := extsort.Config{Device: dev, Meter: meter,
		HostBlockPairs: mh, DeviceBlockPairs: md, TempDir: dir}
	if _, err := extsort.SortFile(context.Background(), cfg, path, filepath.Join(dir, "out.kv")); err != nil {
		b.Fatal(err)
	}
	prof := card.CostProfile(costmodel.SSDDisk.ReadBps, costmodel.SSDDisk.WriteBps)
	return meter.Snapshot().Time(prof).Seconds()
}

// BenchmarkFig8 reproduces Fig. 8: sorting one partition under different
// host and device block-sizes.
func BenchmarkFig8(b *testing.B) {
	path, n := benchPartition(b)
	for _, hostFrac := range []int{8, 2, 1} {
		for _, devFrac := range []int{64, 16} {
			name := fmt.Sprintf("mh=n|%d/md=n|%d", hostFrac, devFrac)
			b.Run(name, func(b *testing.B) {
				mh, md := int(n)/hostFrac, int(n)/devFrac
				if md < 2 {
					md = 2
				}
				if mh < md {
					mh = md
				}
				var modeled float64
				for i := 0; i < b.N; i++ {
					modeled = sortPartition(b, path, mh, md, gpu.K40)
				}
				b.ReportMetric(modeled*1000, "modeled-ms")
			})
		}
	}
}

// BenchmarkFig9 reproduces Fig. 9: sorting one partition on each modeled
// GPU card.
func BenchmarkFig9(b *testing.B) {
	path, n := benchPartition(b)
	md := int(n) / 128
	if md < 2 {
		md = 2
	}
	for _, card := range []gpu.Spec{gpu.K40, gpu.P40, gpu.P100, gpu.V100} {
		b.Run(card.Name, func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				modeled = sortPartition(b, path, int(n), md, card)
			}
			b.ReportMetric(modeled*1000, "modeled-ms")
		})
	}
}

// BenchmarkAblationMapKernel compares the paper's block-per-read
// Hillis-Steele map kernel against the rejected per-read-thread scheme
// (Section III-A): the modeled device time of the naive kernel is worse
// because its memory accesses are uncoalesced, even when its host
// wall-clock is competitive.
func BenchmarkAblationMapKernel(b *testing.B) {
	p, rs := benchReads(b, 0)
	for _, naive := range []bool{false, true} {
		name := "hillis-steele"
		if naive {
			name = "naive-per-read"
		}
		b.Run(name, func(b *testing.B) {
			var modeledMap float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(b, gpu.K40, p.MinOverlap)
				cfg.NaiveMapKernel = naive
				b.StartTimer()
				res, err := Assemble(cfg, rs)
				if err != nil {
					b.Fatal(err)
				}
				ps, _ := res.PhaseByName(core.PhaseMap)
				modeledMap = ps.Modeled.Seconds()
			}
			b.ReportMetric(modeledMap*1000, "modeled-map-ms")
		})
	}
}

// BenchmarkAblationTwoLevelSort compares the two-level hybrid sort
// against a degenerate single-level configuration where the host block
// equals the device block (no host-memory buffering): the paper's
// two-level model cuts disk passes by log2(m_h/m_d).
func BenchmarkAblationTwoLevelSort(b *testing.B) {
	path, n := benchPartition(b)
	md := int(n) / 64
	if md < 2 {
		md = 2
	}
	for _, cfgCase := range []struct {
		name string
		mh   int
	}{
		{"two-level(mh=n)", int(n)},
		{"single-level(mh=md)", md},
	} {
		b.Run(cfgCase.name, func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				modeled = sortPartition(b, path, cfgCase.mh, md, gpu.K40)
			}
			b.ReportMetric(modeled*1000, "modeled-ms")
		})
	}
}

// BenchmarkAblationPartitioning compares the paper's length-based
// distributed shuffle with the fingerprint-range partitioning proposed as
// future work (Section IV-D), on a 4-node cluster.
func BenchmarkAblationPartitioning(b *testing.B) {
	p, rs := benchReads(b, 0)
	for _, byFp := range []bool{false, true} {
		name := "by-length"
		if byFp {
			name = "by-fingerprint"
		}
		b.Run(name, func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := cluster.DefaultConfig(b.TempDir(), 4)
				cfg.MinOverlap = p.MinOverlap
				cfg.HostBlockPairs = 1 << 14
				cfg.DeviceBlockPairs = 1 << 11
				cfg.InputBlockReads = 256
				cfg.PartitionByFingerprint = byFp
				b.StartTimer()
				cl, err := cluster.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := cl.Assemble(rs)
				if err != nil {
					b.Fatal(err)
				}
				modeled = res.TotalModeled.Seconds()
			}
			b.ReportMetric(modeled, "modeled-s")
		})
	}
}

// BenchmarkAblationTraversal compares the sequential path walk against
// the BSP pointer-jumping traversal (the paper's future-work parallel
// graph processing) inside the compress phase.
func BenchmarkAblationTraversal(b *testing.B) {
	p, rs := benchReads(b, 3)
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "bsp-pointer-jumping"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(b, gpu.K40, p.MinOverlap)
				cfg.ParallelTraversal = parallel
				cfg.BreakCycles = !parallel
				b.StartTimer()
				if _, err := Assemble(cfg, rs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10 reproduces Fig. 10: the distributed pipeline on 1-8
// simulated nodes, reporting modeled total seconds.
func BenchmarkFig10(b *testing.B) {
	p, rs := benchReads(b, 3)
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := cluster.DefaultConfig(b.TempDir(), nodes)
				cfg.MinOverlap = p.MinOverlap
				cfg.HostBlockPairs = 1 << 14
				cfg.DeviceBlockPairs = 1 << 11
				cfg.InputBlockReads = 512
				b.StartTimer()
				cl, err := cluster.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := cl.Assemble(rs)
				if err != nil {
					b.Fatal(err)
				}
				modeled = res.TotalModeled.Seconds()
			}
			b.ReportMetric(modeled, "modeled-s")
		})
	}
}
