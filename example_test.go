package lasagna_test

import (
	"fmt"
	"log"
	"os"

	lasagna "repro"
)

// Example assembles a tiny synthetic dataset end to end and reports the
// assembly statistics that a downstream user would act on.
func Example() {
	// A scaled-down version of the paper's H.Chr14 dataset: 101 bp reads
	// with minimum overlap 63.
	profile := lasagna.Datasets[0].Scaled(0.08)
	genome, reads := lasagna.GenerateDataset(profile)

	workspace, err := os.MkdirTemp("", "lasagna-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workspace)

	cfg := lasagna.DefaultConfig(workspace)
	cfg.MinOverlap = profile.MinOverlap
	cfg.HostBlockPairs = 8192
	cfg.DeviceBlockPairs = 1024
	cfg.DedupeReads = true
	cfg.VerifyOverlaps = true

	res, err := lasagna.Assemble(cfg, reads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genome length: %d\n", len(genome))
	fmt.Printf("false positives: %d\n", res.FalsePositives)
	fmt.Printf("all contigs cover the genome: %v\n",
		res.ContigStats.TotalBases >= int64(len(genome)))
	// Output:
	// genome length: 3200
	// false positives: 0
	// all contigs cover the genome: true
}
