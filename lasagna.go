// Package lasagna is the public API of a from-scratch Go reproduction of
// LaSAGNA (Goswami, Lee, Shams, Park — "GPU-Accelerated Large-Scale Genome
// Assembly", IPDPS 2018): a string-graph genome assembler that finds
// approximate all-pair overlaps via Rabin-Karp fingerprints and a
// semi-streaming map/sort/reduce/compress pipeline designed around a
// two-level memory hierarchy (disk -> host memory -> GPU device memory).
//
// The GPU is simulated (see internal/gpu): device memory is a hard
// capacity bound that drives the same chunked streaming decisions as real
// hardware, and an analytic cost model converts metered work into modeled
// time per GPU card so the paper's evaluation shapes can be regenerated.
//
// Quick start:
//
//	reads, _ := lasagna.LoadReads("reads.fastq")
//	cfg := lasagna.DefaultConfig(workspaceDir)
//	cfg.MinOverlap = 63
//	res, err := lasagna.Assemble(cfg, reads)
//	// res.Contigs, res.ContigStats, res.Phases ...
//
// Distributed assembly over a simulated cluster:
//
//	ccfg := lasagna.DefaultClusterConfig(workspaceDir, 8)
//	cres, err := lasagna.AssembleDistributed(ccfg, reads)
package lasagna

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/gpu"
	"repro/internal/readsim"
	"repro/internal/sga"
)

// Core types, re-exported for the public surface.
type (
	// Config parameterizes a single-node assembly (workspace, l_min, the
	// m_h/m_d block sizes, the modeled GPU, traversal options).
	Config = core.Config
	// Result reports a single-node assembly: contigs, per-phase stats,
	// edge counts.
	Result = core.Result
	// ClusterConfig parameterizes a simulated multi-node assembly.
	ClusterConfig = cluster.Config
	// ClusterResult reports a distributed assembly.
	ClusterResult = cluster.Result
	// ReadSet is an in-memory short-read collection.
	ReadSet = dna.ReadSet
	// Seq is a nucleotide sequence.
	Seq = dna.Seq
	// GPUSpec describes a modeled GPU card.
	GPUSpec = gpu.Spec
	// DatasetProfile is a scaled synthetic stand-in for one of the
	// paper's evaluation datasets (Table I).
	DatasetProfile = readsim.Profile
	// BaselineConfig parameterizes the SGA-style FM-index baseline.
	BaselineConfig = sga.Config
	// BaselineResult reports a baseline run.
	BaselineResult = sga.Result
)

// Modeled GPU cards from the paper's evaluation.
var (
	K20X = gpu.K20X
	K40  = gpu.K40
	P40  = gpu.P40
	P100 = gpu.P100
	V100 = gpu.V100
)

// GPUs lists all modeled cards.
var GPUs = gpu.Catalog

// Datasets lists the scaled dataset profiles in Table I order.
var Datasets = readsim.Profiles

// DefaultConfig returns a single-node configuration with sensible block
// sizes for the scaled datasets.
func DefaultConfig(workspace string) Config { return core.DefaultConfig(workspace) }

// DefaultClusterConfig returns an n-node cluster configuration.
func DefaultClusterConfig(workspace string, nodes int) ClusterConfig {
	return cluster.DefaultConfig(workspace, nodes)
}

// Assemble runs the full single-node pipeline over an in-memory read set.
func Assemble(cfg Config, reads *ReadSet) (*Result, error) {
	return AssembleContext(context.Background(), cfg, reads)
}

// AssembleContext is Assemble under a cancellation context: cancelling ctx
// aborts the run between device batches with ctx.Err(), draining every
// worker goroutine. Stages committed before the cancellation can be resumed
// with Config.Resume.
func AssembleContext(ctx context.Context, cfg Config, reads *ReadSet) (*Result, error) {
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return p.AssembleContext(ctx, reads)
}

// AssembleFile loads a FASTQ/FASTA file and assembles it, reporting the
// load as its own phase.
func AssembleFile(cfg Config, path string) (*Result, error) {
	return AssembleFileContext(context.Background(), cfg, path)
}

// AssembleFileContext is AssembleFile under a cancellation context.
func AssembleFileContext(ctx context.Context, cfg Config, path string) (*Result, error) {
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return p.AssembleFileContext(ctx, path)
}

// AssembleDistributed runs the simulated multi-node pipeline.
func AssembleDistributed(cfg ClusterConfig, reads *ReadSet) (*ClusterResult, error) {
	return AssembleDistributedContext(context.Background(), cfg, reads)
}

// AssembleDistributedContext is AssembleDistributed under a cancellation
// context.
func AssembleDistributedContext(ctx context.Context, cfg ClusterConfig, reads *ReadSet) (*ClusterResult, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return c.AssembleContext(ctx, reads)
}

// AssembleBaseline runs the SGA-style FM-index baseline (index + overlap
// + greedy graph + contigs), the comparator of Table VI.
func AssembleBaseline(cfg BaselineConfig, reads *ReadSet) (*BaselineResult, error) {
	a, err := sga.NewAssembler(cfg)
	if err != nil {
		return nil, err
	}
	return a.Assemble(reads)
}

// LoadReads reads a FASTQ or FASTA file into memory.
func LoadReads(path string) (*ReadSet, error) {
	rs, _, err := fastq.ReadFile(path)
	return rs, err
}

// WriteReads writes a read set as FASTQ.
func WriteReads(path string, reads *ReadSet) error {
	return fastq.WriteFastqFile(path, reads)
}

// ParseSeq converts an ASCII base string into a sequence.
func ParseSeq(s string) (Seq, error) { return dna.ParseSeq(s) }

// GenerateDataset materializes a dataset profile's genome and reads.
func GenerateDataset(p DatasetProfile) (genome Seq, reads *ReadSet) {
	return p.Generate()
}
