#!/usr/bin/env bash
# End-to-end smoke test for lasagna-serve: build the binaries, assemble a
# small synthetic dataset directly with the lasagna CLI, then submit the
# same reads to a running lasagna-serve over HTTP, poll the job to
# completion, fetch the FASTA, and require it byte-identical to the
# direct run. Finishes with a SIGTERM drain and a clean-exit check.
set -euo pipefail

cd "$(dirname "$0")/.."

work=$(mktemp -d /tmp/lasagna-serve-smoke.XXXXXX)
addr="localhost:18844"
base="http://$addr"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/bin/" ./cmd/lasagna ./cmd/lasagna-serve ./cmd/readgen
"$work/bin/lasagna-serve" -version

echo "== generate reads"
"$work/bin/readgen" -genome-len 20000 -read-len 80 -coverage 10 -out "$work/reads.fastq"

echo "== direct assembly (golden output)"
"$work/bin/lasagna" -in "$work/reads.fastq" -workspace "$work/direct" -lmin 40 -workers 1 >/dev/null
golden="$work/direct/contigs.fasta"
[ -s "$golden" ] || { echo "direct assembly produced no contigs"; exit 1; }

echo "== start server"
"$work/bin/lasagna-serve" -addr "$addr" -root "$work/serve-data" -quiet &
server_pid=$!
for i in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then echo "server died during startup"; exit 1; fi
    sleep 0.1
done
curl -sf "$base/healthz" >/dev/null || { echo "server never became healthy"; exit 1; }

echo "== submit job"
created=$(curl -sf --data-binary "@$work/reads.fastq" "$base/v1/jobs?lmin=40&workers=1&name=smoke")
job_id=$(printf '%s' "$created" | sed -n 's/.*"id": *"\(j[0-9a-f]*\)".*/\1/p' | head -n 1)
[ -n "$job_id" ] || { echo "no job id in response: $created"; exit 1; }
echo "   job $job_id"

echo "== poll until terminal"
state=""
for i in $(seq 1 600); do
    body=$(curl -sf "$base/v1/jobs/$job_id")
    state=$(printf '%s' "$body" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -n 1)
    case "$state" in
        succeeded|failed|canceled) break ;;
    esac
    sleep 0.1
done
[ "$state" = "succeeded" ] || { echo "job ended in state '$state'"; curl -sf "$base/v1/jobs/$job_id" || true; exit 1; }

echo "== fetch result and compare"
curl -sf "$base/v1/jobs/$job_id/result" > "$work/served.fasta"
if ! cmp -s "$golden" "$work/served.fasta"; then
    echo "served FASTA differs from direct assembly"
    exit 1
fi
echo "   byte-identical to direct assembly ($(wc -c < "$golden") bytes)"

echo "== metrics sanity"
metrics=$(curl -sf "$base/debug/metrics")
printf '%s' "$metrics" | grep -q '"serve.jobs_admitted": *1' || { echo "metrics missing admitted=1: $metrics"; exit 1; }
printf '%s' "$metrics" | grep -q '"serve.jobs_succeeded": *1' || { echo "metrics missing succeeded=1: $metrics"; exit 1; }

echo "== prometheus exposition"
prom=$(curl -sf "$base/metrics")
[ -n "$prom" ] || { echo "/metrics returned an empty body"; exit 1; }
printf '%s\n' "$prom" | grep -q '^# TYPE serve_jobs_succeeded counter$' || { echo "/metrics missing TYPE line for serve_jobs_succeeded"; exit 1; }
printf '%s\n' "$prom" | grep -q '^serve_jobs_succeeded 1$' || { echo "/metrics missing serve_jobs_succeeded 1"; exit 1; }
printf '%s\n' "$prom" | grep -q 'serve_e2e_seconds_bucket{.*le="+Inf"' || { echo "/metrics missing +Inf bucket for serve_e2e_seconds"; exit 1; }

echo "== flight-recorder events"
events=$(curl -sf "$base/v1/jobs/$job_id/events")
printf '%s' "$events" | grep -q '"type": *"enqueue"' || { echo "job events missing enqueue: $events"; exit 1; }
printf '%s' "$events" | grep -q '"type": *"terminal"' || { echo "job events missing terminal: $events"; exit 1; }
curl -sf "$base/v1/jobs/$job_id/trace" | grep -q '"traceEvents"' || { echo "job trace is not trace-event JSON"; exit 1; }

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$server_pid"
for i in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then break; fi
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then echo "server ignored SIGTERM"; exit 1; fi
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "serve smoke test passed"
