// Command bench_gate compares a committed benchmark baseline JSON
// against a freshly generated one and fails when any gated metric
// regressed by more than the threshold (default 15%).
//
//	go run ./scripts/bench_gate [-threshold 0.15] baseline.json current.json
//
// The gate is intentionally narrow: it walks both documents and compares
// only numeric fields whose key contains "modeled" or "hostpeak"
// (case-insensitive) — the deterministic cost-model outputs and the
// tracker-measured host memory peaks, both of which are reproducible
// across machines. Wall-clock fields, edge counts, and throughput
// numbers are machine- or load-dependent and are ignored, as are paths
// present in only one file (new benchmarks don't fail the gate until
// their baseline is committed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// floorS ignores modeled values below this many seconds: relative drift
// on near-zero baselines is dominated by formatting noise, not cost.
const floorS = 1e-6

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum allowed relative regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench_gate [-threshold 0.15] baseline.json current.json")
		os.Exit(2)
	}
	base, err := loadMetrics(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_gate:", err)
		os.Exit(2)
	}
	cur, err := loadMetrics(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_gate:", err)
		os.Exit(2)
	}

	paths := make([]string, 0, len(base))
	for p := range base {
		if _, ok := cur[p]; ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fmt.Printf("bench_gate: %s vs %s: no shared modeled metrics (nothing to gate)\n",
			flag.Arg(0), flag.Arg(1))
		return
	}

	failed := 0
	for _, p := range paths {
		b, c := base[p], cur[p]
		if b < floorS {
			continue
		}
		rel := (c - b) / b
		if rel > *threshold {
			failed++
			fmt.Printf("REGRESSION %s: %.6f -> %.6f (%+.1f%%, limit %+.0f%%)\n",
				p, b, c, 100*rel, 100**threshold)
		}
	}
	fmt.Printf("bench_gate: compared %d modeled metrics from %s, %d regressed\n",
		len(paths), flag.Arg(0), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// loadMetrics flattens the JSON document at path into dotted-path ->
// value for every numeric leaf whose final key contains "modeled" or
// "hostpeak".
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	walk(doc, "", out)
	return out, nil
}

func walk(v any, prefix string, out map[string]float64) {
	switch node := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(node))
		for k := range node {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			if f, ok := node[k].(float64); ok {
				lk := strings.ToLower(k)
				if strings.Contains(lk, "modeled") || strings.Contains(lk, "hostpeak") {
					out[p] = f
				}
				continue
			}
			walk(node[k], p, out)
		}
	case []any:
		for i, item := range node {
			walk(item, fmt.Sprintf("%s[%d]", prefix, i), out)
		}
	}
}
