// Command bench_gate compares a committed benchmark baseline JSON
// against a freshly generated one and fails when any gated metric
// regressed past its rule's threshold.
//
//	go run ./scripts/bench_gate [-threshold 0.15] [-wall-threshold 0.40] [-alloc-slack 0.5] baseline.json current.json
//
// The gate is intentionally narrow: it walks both documents and compares
// only numeric fields matched by one of three rules (key matching is
// case-insensitive):
//
//   - keys containing "modeled" or "hostpeak" — deterministic cost-model
//     outputs and tracker-measured host memory peaks, reproducible across
//     machines — gated at the tight relative threshold (default 15%).
//   - keys containing "nsperop" — real wall-clock per operation from the
//     hot-path benchmarks — gated at the generous wall threshold (default
//     40%) to tolerate CI noise while still catching order-of-magnitude
//     hot-loop regressions.
//   - keys containing "allocsperop" — allocations per operation — gated
//     absolutely: the current value may exceed the baseline by at most the
//     alloc slack (default 0.5). Allocation counts are deterministic, so
//     a loop that was allocation-free going back to one alloc per op is a
//     regression no relative rule on a ~0 baseline can express.
//
// Other wall-clock fields (wallS totals, throughput) and edge counts are
// machine- or load-dependent and are ignored, as are paths present in
// only one file (new benchmarks don't fail the gate until their baseline
// is committed). Array elements carrying a string "name" field are keyed
// by that name rather than their index, so reordering a benchmark table
// doesn't misalign the comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// floorS ignores modeled values below this many seconds: relative drift
// on near-zero baselines is dominated by formatting noise, not cost.
const floorS = 1e-6

// floorNs likewise ignores sub-nanosecond wall baselines.
const floorNs = 1.0

// metricClass says which gating rule applies to a flattened metric.
type metricClass int

const (
	classModeled metricClass = iota // relative, tight threshold
	classWall                       // relative, generous threshold
	classAllocs                     // absolute slack
)

type metric struct {
	value float64
	class metricClass
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum allowed relative regression for modeled metrics")
	wallThreshold := flag.Float64("wall-threshold", 0.40, "maximum allowed relative regression for ns/op wall metrics")
	allocSlack := flag.Float64("alloc-slack", 0.5, "maximum allowed absolute increase in allocs/op")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench_gate [-threshold 0.15] [-wall-threshold 0.40] [-alloc-slack 0.5] baseline.json current.json")
		os.Exit(2)
	}
	base, err := loadMetrics(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_gate:", err)
		os.Exit(2)
	}
	cur, err := loadMetrics(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_gate:", err)
		os.Exit(2)
	}

	paths := make([]string, 0, len(base))
	for p := range base {
		if _, ok := cur[p]; ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fmt.Printf("bench_gate: %s vs %s: no shared gated metrics (nothing to gate)\n",
			flag.Arg(0), flag.Arg(1))
		return
	}

	failed := 0
	for _, p := range paths {
		b, c := base[p].value, cur[p].value
		switch base[p].class {
		case classModeled:
			if b < floorS {
				continue
			}
			if rel := (c - b) / b; rel > *threshold {
				failed++
				fmt.Printf("REGRESSION %s: %.6f -> %.6f (%+.1f%%, limit %+.0f%%)\n",
					p, b, c, 100*rel, 100**threshold)
			}
		case classWall:
			if b < floorNs {
				continue
			}
			if rel := (c - b) / b; rel > *wallThreshold {
				failed++
				fmt.Printf("REGRESSION %s: %.0f ns/op -> %.0f ns/op (%+.1f%%, limit %+.0f%%)\n",
					p, b, c, 100*rel, 100**wallThreshold)
			}
		case classAllocs:
			if c > b+*allocSlack {
				failed++
				fmt.Printf("REGRESSION %s: %.2f allocs/op -> %.2f allocs/op (limit %.2f + %.2f)\n",
					p, b, c, b, *allocSlack)
			}
		}
	}
	fmt.Printf("bench_gate: compared %d gated metrics from %s, %d regressed\n",
		len(paths), flag.Arg(0), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// loadMetrics flattens the JSON document at path into dotted-path ->
// metric for every numeric leaf matched by a gating rule.
func loadMetrics(path string) (map[string]metric, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]metric{}
	walk(doc, "", out)
	return out, nil
}

// classify returns the gating rule for a leaf key, if any.
func classify(key string) (metricClass, bool) {
	lk := strings.ToLower(key)
	switch {
	case strings.Contains(lk, "modeled") || strings.Contains(lk, "hostpeak"):
		return classModeled, true
	case strings.Contains(lk, "nsperop"):
		return classWall, true
	case strings.Contains(lk, "allocsperop"):
		return classAllocs, true
	}
	return 0, false
}

func walk(v any, prefix string, out map[string]metric) {
	switch node := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(node))
		for k := range node {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			if f, ok := node[k].(float64); ok {
				if class, gated := classify(k); gated {
					out[p] = metric{value: f, class: class}
				}
				continue
			}
			walk(node[k], p, out)
		}
	case []any:
		for i, item := range node {
			seg := fmt.Sprintf("%s[%d]", prefix, i)
			if obj, ok := item.(map[string]any); ok {
				if name, ok := obj["name"].(string); ok && name != "" {
					seg = prefix + "." + name
				}
			}
			walk(item, seg, out)
		}
	}
}
