# Convenience targets for the LaSAGNA reproduction.

GO ?= go

.PHONY: all build vet test bench cover examples evaluation clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bacterial
	$(GO) run ./examples/distributed
	$(GO) run ./examples/sweep
	$(GO) run ./examples/errortolerance

# Regenerate every table and figure of the paper's evaluation.
evaluation:
	$(GO) run ./cmd/lasagna-bench -exp all -scale 1.0

clean:
	rm -f test_output.txt bench_output.txt
