# Convenience targets for the LaSAGNA reproduction.

GO ?= go

.PHONY: all build vet test race lint fuzz bench bench-gate cover examples evaluation trace serve-smoke clean

all: build vet lint test race

# Fails when any file is not gofmt-formatted (listing the offenders) or
# when go vet flags anything.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The pipeline runs partitions concurrently (Config.Workers); the race
# detector is part of the default verification gate. The stream stress
# test gets an explicit high-count pass: the async executor/enqueuer
# handoff and the allocator's lock-ordering fixes are the raciest code in
# the tree.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=3 -run 'TestStreamStress|TestAllocPeakNeverExceedsCapacity|TestAllocationConcurrentFreeIdempotent' ./internal/gpu/
	$(GO) test -race -count=3 -run 'TestFleetSchedulerStress|TestSchedulerWorkStealing|TestSchedulerPreemptionDrain' ./internal/serve/
	$(GO) test -race -count=3 -run 'TestPooledBufferConcurrentSorts|TestBlockPoolConcurrentRoundTrips' ./internal/extsort/ ./internal/kvio/

# Short fuzz passes over the parsers and the packed encoding; the seed
# corpora live under testdata/fuzz/.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzPackedRoundTrip -fuzztime=10s ./internal/dna/
	$(GO) test -run=NONE -fuzz=FuzzParseSeq -fuzztime=10s ./internal/dna/
	$(GO) test -run=NONE -fuzz=FuzzReader -fuzztime=10s ./internal/fastq/
	$(GO) test -run=NONE -fuzz=FuzzKVReader -fuzztime=10s ./internal/kvio/
	$(GO) test -run=NONE -fuzz=FuzzSpmatFromEdgeRuns -fuzztime=10s ./internal/spmat/
	$(GO) test -run=NONE -fuzz=FuzzSuccinctFromEdgeRuns -fuzztime=10s ./internal/succinct/

# One benchmark per paper table/figure plus the ablations, then the job
# service's end-to-end throughput (BENCH_serve.json: jobs/sec, queue
# latency), the fleet scaling sweep (BENCH_fleet.json: jobs/sec and
# p50/p99 queue latency at 1/2/4 devices, steal on/off), the
# serial-vs-overlapped stream comparison (BENCH_streams.json: modeled and
# wall seconds per phase), the graph-backend comparison
# (BENCH_graph.json: modeled seconds and edge counts per engine), and the
# backend host-memory comparison (BENCH_mem.json: measured graph/host
# peaks and modeled seconds per engine at two scales).
bench:
	$(GO) test -bench=. -benchmem ./...
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test -run=NONE -bench=ServeThroughput -benchtime=8x ./internal/serve/
	BENCH_FLEET_OUT=$(CURDIR)/BENCH_fleet.json \
		$(GO) test -run=NONE -bench=FleetThroughput -benchtime=1x ./internal/serve/
	BENCH_STREAMS_OUT=$(CURDIR)/BENCH_streams.json \
		$(GO) test -run=NONE -bench=PipelineStreams -benchtime=1x .
	BENCH_GRAPH_OUT=$(CURDIR)/BENCH_graph.json \
		$(GO) test -run=NONE -bench=GraphBackends -benchtime=1x .
	BENCH_MEM_OUT=$(CURDIR)/BENCH_mem.json \
		$(GO) test -run=NONE -bench=GraphBackendMemory -benchtime=1x .
	BENCH_WALL_OUT=$(CURDIR)/BENCH_wall.json \
		$(GO) test -run=NONE -bench=HotPaths -benchtime=1x .

# Regenerate the JSON-emitting benchmarks and compare their modeled and
# host-peak metrics against the committed baselines under bench/,
# failing on any >15% regression. Wall-clock and throughput numbers are
# machine-dependent and are not gated (BENCH_serve.json and
# BENCH_fleet.json have no gated fields, so their comparisons are
# structural no-ops by design) — except the hot-path loops in
# BENCH_wall.json, whose ns/op is gated at a deliberately generous 40%
# and whose allocs/op is gated absolutely (a zero-alloc loop must stay
# zero-alloc).
bench-gate:
	BENCH_STREAMS_OUT=$(CURDIR)/BENCH_streams.json \
		$(GO) test -run=NONE -bench=PipelineStreams -benchtime=1x .
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test -run=NONE -bench=ServeThroughput -benchtime=8x ./internal/serve/
	BENCH_FLEET_OUT=$(CURDIR)/BENCH_fleet.json \
		$(GO) test -run=NONE -bench=FleetThroughput -benchtime=1x ./internal/serve/
	BENCH_GRAPH_OUT=$(CURDIR)/BENCH_graph.json \
		$(GO) test -run=NONE -bench=GraphBackends -benchtime=1x .
	BENCH_MEM_OUT=$(CURDIR)/BENCH_mem.json \
		$(GO) test -run=NONE -bench=GraphBackendMemory -benchtime=1x .
	BENCH_WALL_OUT=$(CURDIR)/BENCH_wall.json \
		$(GO) test -run=NONE -bench=HotPaths -benchtime=1x .
	$(GO) run ./scripts/bench_gate bench/BENCH_streams.json BENCH_streams.json
	$(GO) run ./scripts/bench_gate bench/BENCH_serve.json BENCH_serve.json
	$(GO) run ./scripts/bench_gate bench/BENCH_fleet.json BENCH_fleet.json
	$(GO) run ./scripts/bench_gate bench/BENCH_graph.json BENCH_graph.json
	$(GO) run ./scripts/bench_gate bench/BENCH_mem.json BENCH_mem.json
	$(GO) run ./scripts/bench_gate bench/BENCH_wall.json BENCH_wall.json

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bacterial
	$(GO) run ./examples/distributed
	$(GO) run ./examples/sweep
	$(GO) run ./examples/errortolerance

# Regenerate every table and figure of the paper's evaluation.
evaluation:
	$(GO) run ./cmd/lasagna-bench -exp all -scale 1.0

# Assemble a small synthetic dataset with full observability on, leaving
# trace.json (Perfetto-loadable; CI uploads it as an artifact).
trace:
	$(GO) run ./cmd/readgen -genome-len 20000 -read-len 80 -coverage 10 -out work/trace-reads.fastq
	$(GO) run ./cmd/lasagna -in work/trace-reads.fastq -workspace work/trace-demo \
		-lmin 40 -workers 2 -trace trace.json -v

# End-to-end smoke test of the job service: build the binaries, assemble
# a dataset directly, serve the same reads over HTTP, and require the
# fetched FASTA byte-identical; finishes with a SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

clean:
	rm -f test_output.txt bench_output.txt trace.json BENCH_serve.json BENCH_fleet.json BENCH_streams.json BENCH_graph.json BENCH_mem.json BENCH_wall.json
	rm -rf work workspace scratch lasagna-workspace
	$(GO) clean -fuzzcache
