// Package sgraph implements the full (non-greedy) string graph of
// Section II-A.2: every suffix-prefix overlap becomes an edge, redundant
// transitive edges are removed (Myers 2005), and contigs are spelled from
// unambiguous unitig chains.
//
// The paper's pipeline uses the greedy heuristic (one out-edge per
// vertex, longest overlap wins) because it updates a single bit-vector
// instead of a general graph; this package provides the textbook
// alternative the paper's background section describes, wired into the
// pipeline as core.Config.FullGraph. On clean data both modes spell the
// same genome; the full graph additionally survives orderings where the
// greedy rule commits to a repeat-induced edge first.
package sgraph

import (
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dna"
	"repro/internal/graph"
)

// Edge is one directed overlap edge in the full graph.
type Edge struct {
	To  uint32
	Len uint16
	// reduced marks the edge transitive (removable without information
	// loss).
	reduced bool
}

// Graph is a full string graph over 2*numReads vertices.
type Graph struct {
	numReads int
	adj      [][]Edge
	indeg    []int32 // in-degree over non-reduced edges, maintained lazily
}

// New creates an empty graph for numReads reads.
func New(numReads int) *Graph {
	return &Graph{
		numReads: numReads,
		adj:      make([][]Edge, 2*numReads),
	}
}

// NumReads returns the read count.
func (g *Graph) NumReads() int { return g.numReads }

// NumVertices returns 2*NumReads.
func (g *Graph) NumVertices() int { return 2 * g.numReads }

// AddOverlap records the candidate overlap (u, v, l) and its complement
// (v', u', l). Self-loops and hairpins are rejected, mirroring the greedy
// graph's rules; duplicate edges (same u, v) keep the longest overlap.
func (g *Graph) AddOverlap(u, v uint32, l uint16) bool {
	if u == v || u == dna.ComplementVertex(v) {
		return false
	}
	g.addEdge(u, v, l)
	g.addEdge(dna.ComplementVertex(v), dna.ComplementVertex(u), l)
	return true
}

func (g *Graph) addEdge(u, v uint32, l uint16) {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			if l > g.adj[u][i].Len {
				g.adj[u][i].Len = l
			}
			return
		}
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Len: l})
}

// InstallEdge appends a single directed edge verbatim, without the
// duplicate-merging or complement bookkeeping of AddOverlap. It exists
// for rebuilding a reduced graph from a persisted edge list: replaying
// DirectedEdges() through InstallEdge reproduces the live adjacency
// structure (and hence Unitigs output) exactly.
func (g *Graph) InstallEdge(u, v uint32, l uint16) {
	g.adj[u] = append(g.adj[u], Edge{To: v, Len: l})
	g.indeg = nil
}

// DirectedEdges returns every live (non-reduced) directed edge in vertex
// order, preserving each vertex's adjacency order. After TransitiveReduce
// the adjacency lists are deterministically sorted, so the returned list
// is a stable serialization of the reduced graph.
func (g *Graph) DirectedEdges() []graph.Edge {
	var out []graph.Edge
	for u, es := range g.adj {
		for _, e := range es {
			if !e.reduced {
				out = append(out, graph.Edge{U: uint32(u), V: e.To, Len: e.Len})
			}
		}
	}
	return out
}

// ReducedEdges returns every directed edge TransitiveReduce marked
// transitive, in vertex order, preserving adjacency order — the
// complement of DirectedEdges. Alternative reduction backends are
// cross-checked against it: the spmat SpGEMM pass must remove a superset
// of these edges (see package spmat).
func (g *Graph) ReducedEdges() []graph.Edge {
	var out []graph.Edge
	for u, es := range g.adj {
		for _, e := range es {
			if e.reduced {
				out = append(out, graph.Edge{U: uint32(u), V: e.To, Len: e.Len})
			}
		}
	}
	return out
}

// NumEdges returns the number of directed edges, optionally counting
// reduced ones.
func (g *Graph) NumEdges(includeReduced bool) int64 {
	var n int64
	for _, es := range g.adj {
		for _, e := range es {
			if includeReduced || !e.reduced {
				n++
			}
		}
	}
	return n
}

// Out returns the live (non-reduced) out-edges of v.
func (g *Graph) Out(v uint32) []Edge {
	var out []Edge
	for _, e := range g.adj[v] {
		if !e.reduced {
			out = append(out, e)
		}
	}
	return out
}

// overhang of an edge from v: the bases v contributes before its
// successor takes over.
func overhang(vertexLen func(uint32) int, v uint32, e Edge) int {
	return vertexLen(v) - int(e.Len)
}

// TransitiveReduce marks transitive edges following Myers' linear-time
// sweep: for each vertex v, an out-neighbor x is redundant when some
// other out-neighbor w reaches x with overhangs that add up to v's
// direct edge to x (within fuzz). vertexLen supplies sequence lengths;
// fuzz tolerates small length slack (0 for exact, error-free data).
// Returns the number of directed edges marked.
func (g *Graph) TransitiveReduce(vertexLen func(uint32) int, fuzz int) int64 {
	const (
		vacant = iota
		inPlay
		eliminated
	)
	mark := make([]uint8, g.NumVertices())
	// direct[x] holds v's direct-edge overhang to x while v is processed.
	direct := make(map[uint32]int)
	var removed int64

	for v := uint32(0); v < uint32(g.NumVertices()); v++ {
		es := g.adj[v]
		if len(es) < 2 {
			continue
		}
		// Ascending overhang order: nearer successors first.
		sort.Slice(es, func(i, j int) bool {
			oi, oj := overhang(vertexLen, v, es[i]), overhang(vertexLen, v, es[j])
			if oi != oj {
				return oi < oj
			}
			return es[i].To < es[j].To
		})
		longest := overhang(vertexLen, v, es[len(es)-1]) + fuzz
		for _, e := range es {
			mark[e.To] = inPlay
			direct[e.To] = overhang(vertexLen, v, e)
		}
		for _, e := range es {
			if mark[e.To] != inPlay {
				continue
			}
			ov := overhang(vertexLen, v, e)
			// Edges already marked transitive still witness eliminations:
			// Myers marks during the sweep and removes only afterwards, so
			// a witness chain may run through a marked edge.
			for _, e2 := range g.adj[e.To] {
				total := ov + overhang(vertexLen, e.To, e2)
				if total > longest {
					continue
				}
				if mark[e2.To] != inPlay {
					continue
				}
				if d := direct[e2.To]; total >= d-fuzz && total <= d+fuzz {
					mark[e2.To] = eliminated
				}
			}
		}
		for i := range es {
			if mark[es[i].To] == eliminated {
				es[i].reduced = true
				removed++
			}
			mark[es[i].To] = vacant
			delete(direct, es[i].To)
		}
	}
	g.indeg = nil // invalidate cached degrees
	return removed
}

// liveInDegrees computes in-degree over non-reduced edges.
func (g *Graph) liveInDegrees() []int32 {
	if g.indeg != nil {
		return g.indeg
	}
	indeg := make([]int32, g.NumVertices())
	for _, es := range g.adj {
		for _, e := range es {
			if !e.reduced {
				indeg[e.To]++
			}
		}
	}
	g.indeg = indeg
	return indeg
}

// EachOut calls fn for each live (non-reduced) out-edge of v in
// adjacency order, stopping early when fn returns false. It implements
// Traversable.
func (g *Graph) EachOut(v uint32, fn func(to uint32, l uint16) bool) {
	for _, e := range g.adj[v] {
		if e.reduced {
			continue
		}
		if !fn(e.To, e.Len) {
			return
		}
	}
}

// Traversable is the read-only contract unitig extraction needs from a
// reduced string graph. Both this package's adjacency-list Graph and
// the compressed store in package succinct satisfy it, so the same
// walk (and hence byte-identical contigs) runs over either
// representation.
type Traversable interface {
	NumReads() int
	NumVertices() int
	// EachOut visits the live out-edges of v in ascending target order,
	// stopping early when fn returns false.
	EachOut(v uint32, fn func(to uint32, l uint16) bool)
}

// Unitigs extracts maximal unambiguous chains from the reduced graph:
// walks that only follow an edge v->w when v has exactly one live
// out-edge and w exactly one live in-edge. Each read joins at most one
// unitig (a unitig and its reverse complement count once), so the paths
// feed contig generation exactly like the greedy traversal does.
func (g *Graph) Unitigs(vertexLen func(uint32) int, includeSingletons bool) []graph.Path {
	return UnitigsOf(g, vertexLen, includeSingletons)
}

// bget and bset wrap the error-returning bitvec accessors for the
// visited vector, which is sized to NumReads here so read indices are
// always in range.
func bget(v *bitvec.Vector, i uint32) bool {
	set, _ := v.Get(i)
	return set
}

func bset(v *bitvec.Vector, i uint32) {
	_ = v.Set(i)
}

// UnitigsOf runs the unitig walk over any Traversable graph. The logic
// is identical to the historical Graph.Unitigs; it is factored over the
// interface so alternative graph stores produce byte-identical paths.
func UnitigsOf(g Traversable, vertexLen func(uint32) int, includeSingletons bool) []graph.Path {
	numVerts := uint32(g.NumVertices())
	indeg := make([]int32, numVerts)
	for v := uint32(0); v < numVerts; v++ {
		g.EachOut(v, func(to uint32, l uint16) bool {
			indeg[to]++
			return true
		})
	}

	liveOutDegree := func(v uint32) int {
		n := 0
		g.EachOut(v, func(to uint32, l uint16) bool {
			n++
			return true
		})
		return n
	}
	// soleOut returns the only live out-edge of v; ok is false when v
	// has zero or multiple live out-edges.
	soleOut := func(v uint32) (to uint32, l uint16, ok bool) {
		n := 0
		g.EachOut(v, func(t uint32, ln uint16) bool {
			to, l = t, ln
			n++
			return n < 2
		})
		return to, l, n == 1
	}

	visited := bitvec.New(g.NumReads())
	var paths []graph.Path

	// isChainStart reports whether v begins a maximal chain: it cannot be
	// extended backwards unambiguously.
	isChainStart := func(v uint32) bool {
		if indeg[v] != 1 {
			return true
		}
		// One predecessor: extendable backwards only if that predecessor
		// has out-degree 1. Find it via the complement graph: u->v exists
		// iff v'->u' exists, so v's predecessors are the complements of
		// v''s successors' complements.
		start := true
		g.EachOut(dna.ComplementVertex(v), func(to uint32, l uint16) bool {
			pred := dna.ComplementVertex(to)
			start = liveOutDegree(pred) != 1
			return false
		})
		return start
	}

	walk := func(start uint32) graph.Path {
		var p graph.Path
		cur := start
		for {
			bset(visited, dna.ReadOfVertex(cur))
			to, l, ok := soleOut(cur)
			if !ok || indeg[to] != 1 || bget(visited, dna.ReadOfVertex(to)) {
				p = append(p, graph.PathStep{V: cur, Overhang: uint16(vertexLen(cur))})
				return p
			}
			p = append(p, graph.PathStep{V: cur, Overhang: uint16(vertexLen(cur) - int(l))})
			cur = to
		}
	}

	for v := uint32(0); v < numVerts; v++ {
		if bget(visited, dna.ReadOfVertex(v)) || liveOutDegree(v) == 0 {
			continue
		}
		if !isChainStart(v) {
			continue
		}
		paths = append(paths, walk(v))
	}
	// Residual cycles: every remaining vertex with edges sits on a cycle
	// of simple edges; break each arbitrarily.
	for v := uint32(0); v < numVerts; v++ {
		if bget(visited, dna.ReadOfVertex(v)) || liveOutDegree(v) == 0 {
			continue
		}
		paths = append(paths, walk(v))
	}
	if includeSingletons {
		for r := uint32(0); r < uint32(g.NumReads()); r++ {
			if bget(visited, r) {
				continue
			}
			fwd := dna.ForwardVertex(r)
			paths = append(paths, graph.Path{{V: fwd, Overhang: uint16(vertexLen(fwd))}})
			bset(visited, r)
		}
	}
	return paths
}

// ApproxBytes estimates the host-memory footprint.
func (g *Graph) ApproxBytes() int64 {
	var edges int64
	for _, es := range g.adj {
		edges += int64(cap(es))
	}
	return edges*8 + int64(len(g.adj))*24
}
