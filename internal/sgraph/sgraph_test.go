package sgraph

import (
	"strings"
	"testing"

	"repro/internal/contig"
	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/readsim"
	"repro/internal/sga"
)

func lenFn(n int) func(uint32) int { return func(uint32) int { return n } }

func TestAddOverlapAndComplement(t *testing.T) {
	g := New(3)
	if !g.AddOverlap(0, 2, 50) {
		t.Fatal("overlap rejected")
	}
	if g.AddOverlap(0, 0, 10) || g.AddOverlap(0, 1, 10) {
		t.Fatal("self/hairpin accepted")
	}
	if g.NumEdges(true) != 2 {
		t.Fatalf("edges = %d, want 2 (edge + complement)", g.NumEdges(true))
	}
	out := g.Out(3)
	if len(out) != 1 || out[0].To != 1 || out[0].Len != 50 {
		t.Errorf("complement edge = %+v", out)
	}
}

func TestAddOverlapDuplicateKeepsLongest(t *testing.T) {
	g := New(2)
	g.AddOverlap(0, 2, 30)
	g.AddOverlap(0, 2, 40)
	g.AddOverlap(0, 2, 20)
	out := g.Out(0)
	if len(out) != 1 || out[0].Len != 40 {
		t.Errorf("out = %+v, want single edge of length 40", out)
	}
}

func TestTransitiveReduceTriangle(t *testing.T) {
	// Reads of length 100 at genomic offsets 0, 20, 40:
	// a->b (80), b->c (80), a->c (60). a->c is transitive.
	g := New(3)
	a, b, c := uint32(0), uint32(2), uint32(4)
	g.AddOverlap(a, b, 80)
	g.AddOverlap(b, c, 80)
	g.AddOverlap(a, c, 60)
	removed := g.TransitiveReduce(lenFn(100), 0)
	if removed != 2 { // a->c and its complement c'->a'
		t.Fatalf("removed = %d, want 2", removed)
	}
	for _, e := range g.Out(a) {
		if e.To == c {
			t.Error("transitive edge a->c not reduced")
		}
	}
	if len(g.Out(a)) != 1 || len(g.Out(b)) != 1 {
		t.Errorf("live out-degrees = %d, %d", len(g.Out(a)), len(g.Out(b)))
	}
}

func TestTransitiveReduceKeepsInconsistentEdge(t *testing.T) {
	// a->b (overhang 20), b->c (overhang 20), a->c with overhang 50:
	// the overhangs do not add up (50 != 40), so a->c represents a
	// different placement (a repeat) and must survive at fuzz 0.
	g := New(3)
	a, b, c := uint32(0), uint32(2), uint32(4)
	g.AddOverlap(a, b, 80)
	g.AddOverlap(b, c, 80)
	g.AddOverlap(a, c, 50)
	if removed := g.TransitiveReduce(lenFn(100), 0); removed != 0 {
		t.Fatalf("removed = %d, want 0", removed)
	}
	if removed := g.TransitiveReduce(lenFn(100), 10); removed != 2 {
		t.Fatalf("fuzz 10 should reduce the near-consistent edge, removed = %d", removed)
	}
}

func TestUnitigsLinearChain(t *testing.T) {
	// Overlapping windows: offsets 0,40,80 of a 300 bp region with
	// 100 bp reads; after reduction the chain spells one unitig.
	g := New(3)
	g.AddOverlap(0, 2, 60)
	g.AddOverlap(2, 4, 60)
	g.AddOverlap(0, 4, 20)
	g.TransitiveReduce(lenFn(100), 0)
	paths := g.Unitigs(lenFn(100), false)
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	if len(paths[0]) != 3 {
		t.Fatalf("path length = %d, want 3", len(paths[0]))
	}
	total := 0
	for _, s := range paths[0] {
		total += int(s.Overhang)
	}
	if total != 40+40+100 {
		t.Errorf("total overhang = %d, want 180", total)
	}
}

func TestUnitigsBreakAtBranch(t *testing.T) {
	// A branch: a->b and a->c with inconsistent overhangs (no reduction);
	// walks must stop at the ambiguity.
	g := New(4)
	g.AddOverlap(0, 2, 80)
	g.AddOverlap(0, 4, 50)
	g.AddOverlap(2, 6, 70)
	g.TransitiveReduce(lenFn(100), 0)
	paths := g.Unitigs(lenFn(100), false)
	// Vertex 0 has two live out-edges; nothing may walk through it.
	for _, p := range paths {
		for i, s := range p {
			if s.V == 0 && i != len(p)-1 {
				t.Errorf("walked through branch vertex: %+v", p)
			}
		}
	}
}

func TestUnitigsSingletons(t *testing.T) {
	g := New(3)
	g.AddOverlap(0, 2, 60)
	paths := g.Unitigs(lenFn(100), true)
	found := false
	for _, p := range paths {
		if len(p) == 1 && p[0].V == 4 && p[0].Overhang == 100 {
			found = true
		}
	}
	if !found {
		t.Error("isolated read should yield a singleton path")
	}
}

func TestUnitigsCycle(t *testing.T) {
	g := New(3)
	g.AddOverlap(0, 2, 60)
	g.AddOverlap(2, 4, 60)
	g.AddOverlap(4, 0, 60)
	paths := g.Unitigs(lenFn(100), false)
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Fatalf("cycle paths = %+v", paths)
	}
}

// TestFullGraphAssemblesGenome builds the full string graph from exact
// FM-index overlaps, reduces it, and checks the unitigs spell genome
// substrings — the end-to-end behaviour core.Config.FullGraph relies on.
func TestFullGraphAssemblesGenome(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 3000, Seed: 41})
	rs := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 60, Coverage: 12, Seed: 42})
	rs, _ = dna.Deduplicate(rs)
	ix := sga.BuildIndex(rs)
	g := New(rs.NumReads())
	for v := uint32(0); v < uint32(rs.NumVertices()); v++ {
		ix.OverlapsFrom(v, 30, func(e sga.Edge) {
			// AddOverlap inserts the complement too and dedupes, so every
			// emitted edge can be offered directly.
			g.AddOverlap(e.U, e.V, e.Len)
		})
	}
	before := g.NumEdges(false)
	removed := g.TransitiveReduce(rs.VertexLen, 0)
	if removed == 0 {
		t.Fatal("dense overlap graph should contain transitive edges")
	}
	if g.NumEdges(false) != before-removed {
		t.Fatalf("edge accounting: %d - %d != %d", before, removed, g.NumEdges(false))
	}
	paths := g.Unitigs(rs.VertexLen, false)
	contigs := contig.Generate(contig.Config{Device: gpu.NewDevice(gpu.K40, nil)}, paths, rs)
	if len(contigs) == 0 {
		t.Fatal("no contigs")
	}
	gs, grc := genome.String(), genome.ReverseComplement().String()
	longest := 0
	for i, c := range contigs {
		if !strings.Contains(gs, c.String()) && !strings.Contains(grc, c.String()) {
			t.Errorf("contig %d (len %d) not a genome substring", i, len(c))
		}
		if len(c) > longest {
			longest = len(c)
		}
	}
	if longest < 200 {
		t.Errorf("longest unitig = %d, expected real chains", longest)
	}
}

func TestApproxBytes(t *testing.T) {
	g := New(10)
	g.AddOverlap(0, 2, 10)
	if g.ApproxBytes() <= 0 {
		t.Error("ApproxBytes should be positive")
	}
}
