package succinct

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/gpu"
	"repro/internal/graph"
)

// ReduceConfig parameterizes the masked transitive-reduction pass over
// the compressed store. The knobs mirror spmat.ReduceConfig: the same
// predicate runs over the same tiling, only the storage the kernel
// reads from is the compressed adjacency stream instead of CSR arrays.
type ReduceConfig struct {
	// Device is the simulated card the pass runs on (required).
	Device *gpu.Device
	// VertexLen supplies sequence lengths for overhang arithmetic
	// (required).
	VertexLen func(uint32) int
	// Fuzz is the overhang slack tolerated when matching a two-hop chain
	// against a direct edge.
	Fuzz int
	// RowBatch is the number of rows per kernel tile. Defaults to 4096.
	RowBatch int
	// MaxResidentBytes caps the device memory claimed for the compressed
	// structure and its removal mask; beyond it tiles re-stream their
	// rows over PCIe. 0 means fully resident.
	MaxResidentBytes int64
	// Overlap, when set, models the H2D prefetch against the compute on
	// an overlap-aware timeline.
	Overlap *costmodel.OverlapLedger
}

// Reduction is the outcome of a transitive-reduction pass: the mask
// over the store's entries plus the metered totals.
type Reduction struct {
	g       *Graph
	removed []bool
	// Removed counts the directed edges masked as transitive.
	Removed int64
	// Flops counts product terms examined: one per (u->w, w->x) pair.
	Flops int64
	// Tiles is the number of row tiles (kernel launches).
	Tiles int
}

// Graph returns the underlying compressed store.
func (r *Reduction) Graph() *Graph { return r.g }

// Live streams the surviving (non-masked) edges in CSR order.
func (r *Reduction) Live(fn func(Edge)) {
	i := int64(0)
	r.g.Edges(func(e Edge) {
		if !r.removed[i] {
			fn(e)
		}
		i++
	})
}

// LiveEdges returns a pull-style iterator over the surviving edges in
// CSR order, the shape writeEdgeFile consumes.
func (r *Reduction) LiveEdges() func() (Edge, bool) {
	var cols []uint32
	var vals []uint16
	u := uint32(0)
	base := int64(0)
	i := 0
	loaded := false
	return func() (Edge, bool) {
		for int(u) < r.g.n {
			if !loaded {
				cols, vals = cols[:0], vals[:0]
				var err error
				cols, vals, err = r.g.DecodeRow(u, cols, vals)
				if err != nil {
					return Edge{}, false
				}
				i = 0
				loaded = true
			}
			if i >= len(cols) {
				base += int64(len(cols))
				u++
				loaded = false
				continue
			}
			k := i
			i++
			if r.removed[base+int64(k)] {
				continue
			}
			return Edge{U: u, V: cols[k], Len: vals[k]}, true
		}
		return Edge{}, false
	}
}

// LiveView returns a traversal view over the surviving edges only,
// satisfying sgraph.Traversable so unitig extraction runs directly on
// the masked compressed store (the cluster path uses this; the
// single-node path round-trips through edges.kv instead).
func (r *Reduction) LiveView() *LiveView { return &LiveView{r: r} }

// LiveView adapts a Reduction to sgraph.Traversable.
type LiveView struct{ r *Reduction }

// NumReads implements sgraph.Traversable.
func (v *LiveView) NumReads() int { return v.r.g.NumReads() }

// NumVertices implements sgraph.Traversable.
func (v *LiveView) NumVertices() int { return v.r.g.NumVertices() }

// EachOut visits the live out-edges of u in ascending target order.
func (v *LiveView) EachOut(u uint32, fn func(to uint32, l uint16) bool) {
	base, err := v.r.g.EdgeBase(u)
	if err != nil {
		return
	}
	i := int64(0)
	v.r.g.EachOut(u, func(to uint32, l uint16) bool {
		k := base + i
		i++
		if v.r.removed[k] {
			return true
		}
		return fn(to, l)
	})
}

// TransitiveReduce runs the masked A·A pass over the compressed store:
// for every entry (u, x), if some two-hop chain u->w->x with strictly
// positive overhangs spells the same placement (overhang sum within
// Fuzz of the direct edge's), the entry is masked as transitive. The
// predicate is exactly spmat's, so the surviving edge set — and hence
// the downstream unitigs and contigs — is byte-identical to the spmat
// backend's on the same input.
//
// Execution is tiled like spmat's: RowBatch rows per superstep through
// graph.RunSupersteps, with each block decoding its row (and each
// product's neighbor row) from the compressed stream into registers.
// Charges are pure functions of the structure, so modeled cost is
// deterministic; the H2D traffic is the compressed bytes, which is
// where the representation's bandwidth win shows up.
func (g *Graph) TransitiveReduce(ctx context.Context, cfg ReduceConfig) (*Reduction, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("succinct: ReduceConfig.Device is required")
	}
	if cfg.VertexLen == nil {
		return nil, fmt.Errorf("succinct: ReduceConfig.VertexLen is required")
	}
	rowBatch := cfg.RowBatch
	if rowBatch <= 0 {
		rowBatch = 4096
	}
	dev := cfg.Device
	red := &Reduction{g: g, removed: make([]bool, g.nnz)}
	if g.n == 0 {
		return red, nil
	}

	matBytes := g.Bytes()
	maskBytes := (g.nnz + 7) / 8
	claim := matBytes + maskBytes
	if cfg.MaxResidentBytes > 0 && claim > cfg.MaxResidentBytes {
		claim = cfg.MaxResidentBytes
	}
	residentMat := claim - maskBytes
	if residentMat < 0 {
		residentMat = 0
	}
	alloc, err := dev.AllocWait(ctx, claim)
	if err != nil {
		return nil, err
	}
	defer alloc.Free()

	tl := cfg.Overlap.NewTimeline()
	defer tl.Commit()
	streams := tl != nil
	ioS := dev.NewStream("succinct-io", tl.Line("prefetch"), streams)
	defer ioS.Close()
	cmp := dev.NewStream("succinct-compute", tl.Line("compute"), false)
	defer cmp.Close()

	// Upfront upload of the resident portion.
	ioS.CopyToDeviceAsync(residentMat)

	numTiles := (g.n + rowBatch - 1) / rowBatch
	red.Tiles = numTiles
	// bytesPerEdge is the amortized compressed cost of one entry, used
	// to price neighbor-row reads in the out-of-core transfer model.
	bytesPerEdge := int64(1)
	if g.nnz > 0 {
		if bpe := int64(len(g.adj)) / g.nnz; bpe > 1 {
			bytesPerEdge = bpe
		}
	}
	edgeBase := func(u int) int64 {
		v, err := g.EdgeBase(uint32(u))
		if err != nil {
			return 0
		}
		return v
	}
	// tileTraffic returns the tile's nz count and product-term count —
	// the structural quantities every charge derives from.
	var scratchCols []uint32
	var scratchVals []uint16
	tileTraffic := func(t int) (tileNnz, flops int64) {
		lo, hi := t*rowBatch, min((t+1)*rowBatch, g.n)
		tileNnz = edgeBase(hi) - edgeBase(lo)
		for u := lo; u < hi; u++ {
			scratchCols, scratchVals = scratchCols[:0], scratchVals[:0]
			var err error
			scratchCols, scratchVals, err = g.DecodeRow(uint32(u), scratchCols, scratchVals)
			if err != nil {
				return tileNnz, flops
			}
			for _, w := range scratchCols {
				d, err := g.Degree(w)
				if err != nil {
					return tileNnz, flops
				}
				flops += d
			}
		}
		return tileNnz, flops
	}
	// h2d is the out-of-core transfer a tile needs: its own compressed
	// rows plus every neighbor row its products decode, priced at the
	// amortized compressed bytes per entry. Zero when fully resident.
	h2d := func(t int) int64 {
		if residentMat >= matBytes {
			return 0
		}
		lo, hi := t*rowBatch, min((t+1)*rowBatch, g.n)
		rowBytes := int64(0)
		if bLo, err := g.byteOff.Get(lo); err == nil {
			if bHi, err := g.byteOff.Get(hi); err == nil {
				rowBytes = int64(bHi - bLo)
			}
		}
		_, flops := tileTraffic(t)
		return 2*int64(rowBatch+1) + rowBytes + bytesPerEdge*flops
	}
	if numTiles > 0 {
		ioS.CopyToDeviceAsync(h2d(0))
	}

	var stepErr error
	graph.RunSupersteps(dev, numTiles, func(t int) (int64, int64) {
		if stepErr != nil {
			return 0, 0
		}
		if err := ctx.Err(); err != nil {
			stepErr = err
			return 0, 0
		}
		// Barrier: this tile's data must be on-device before compute.
		if err := ioS.Sync(); err != nil {
			stepErr = err
			return 0, 0
		}
		cmp.WaitModeled(ioS.ModeledCursor())
		// Prefetch the next tile while this one computes.
		if t+1 < numTiles {
			ioS.CopyToDeviceAsync(h2d(t + 1))
		}

		lo, hi := t*rowBatch, min((t+1)*rowBatch, g.n)
		dev.LaunchBlocks(hi-lo, func(block int) {
			u := uint32(lo + block)
			// Per-block decode scratch: blocks run concurrently, so no
			// shared buffers.
			cols, vals, err := g.DecodeRow(u, nil, nil)
			if err != nil || len(cols) == 0 {
				return
			}
			base := edgeBase(int(u))
			lenU := cfg.VertexLen(u)
			var wCols []uint32
			var wVals []uint16
			for i := range cols {
				w := cols[i]
				o1 := lenU - int(vals[i])
				if o1 <= 0 {
					continue
				}
				lenW := cfg.VertexLen(w)
				wCols, wVals = wCols[:0], wVals[:0]
				wCols, wVals, err = g.DecodeRow(w, wCols, wVals)
				if err != nil {
					return
				}
				for j := range wCols {
					o2 := lenW - int(wVals[j])
					if o2 <= 0 {
						continue
					}
					x := wCols[j]
					k := sort.Search(len(cols), func(p int) bool { return cols[p] >= x })
					if k >= len(cols) || cols[k] != x {
						continue
					}
					total := o1 + o2
					if d := lenU - int(vals[k]); total >= d-cfg.Fuzz && total <= d+cfg.Fuzz {
						red.removed[base+int64(k)] = true // row-local: block owns row u
					}
				}
			}
		})

		tileNnz, flops := tileTraffic(t)
		red.Flops += flops
		// Each product term decodes its neighbor entry and probes the
		// direct row; each tile entry is read once and its mask bit
		// written once — the same work in decoded terms as spmat's CSR
		// kernel, so the charge formula matches.
		memBytes := 6*(tileNnz+2*flops) + (tileNnz+7)/8
		ops := tileNnz + flops
		cmp.Charge(costmodel.TierDeviceMem, memBytes)
		cmp.Charge(costmodel.TierDeviceOps, ops)
		// Mask download rides the io stream, ordered after this tile's
		// compute by an enqueued modeled wait.
		ioS.WaitModeled(cmp.ModeledCursor())
		ioS.CopyFromDeviceAsync((tileNnz + 7) / 8)
		return memBytes, ops
	})
	if stepErr != nil {
		return nil, stepErr
	}
	if err := ioS.Sync(); err != nil {
		return nil, err
	}
	for _, r := range red.removed {
		if r {
			red.Removed++
		}
	}
	return red, nil
}
