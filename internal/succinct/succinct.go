// Package succinct implements the compressed overlap-graph store: the
// string graph's adjacency encoded as delta-compressed byte streams
// indexed by Elias–Fano offset sequences, built in a single streaming
// pass straight off the sorted edge runs the external sort emits.
//
// Dinh & Rajasekaran (arXiv:1009.3984) give a near-linear-space exact
// overlap-graph structure; Li et al. (arXiv:1207.3532) show the
// compressed-bitvector playbook for assembly graphs. This package
// follows that line with stdlib-only pieces: per-vertex edge intervals
// over rank/select-indexed bitvectors (bitvec.EliasFano for both the
// rowPtr analogue and the byte offsets into the adjacency stream), and
// per-row varint gap coding of target vertices with zig-zag deltas for
// overlap lengths.
//
// Space: a CSR matrix spends 8 bytes per row pointer plus 6 per entry;
// the raw edge list spends 10 per entry. Here a typical entry costs
// 2-3 bytes (one varint column gap + one varint length delta) and the
// two offset sequences cost ~2(2 + log2(nnz/n)) bits per vertex, so
// host peak drops by well over 2x — and, crucially, the builder never
// holds an uncompressed edge list or rowPtr array: its transient state
// is one pending edge plus compact per-row varint streams.
package succinct

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitvec"
)

// Edge is one directed overlap edge: the Len-suffix of vertex U matches
// the Len-prefix of vertex V.
type Edge struct {
	U, V uint32
	Len  uint16
}

// MemSink is the subset of stats.MemTracker the builder meters its host
// bytes through; a nil sink disables metering.
type MemSink interface {
	Add(n int64)
	Release(n int64)
}

// Graph is the sealed compressed store. It is immutable after Finish
// and safe for concurrent readers.
type Graph struct {
	n   int
	nnz int64
	// adj holds the per-row edge encodings back to back: within a row,
	// the first edge is uvarint(col) + uvarint(len), each subsequent
	// edge uvarint(col gap) + zig-zag uvarint(len delta).
	adj     []byte
	edgeOff *bitvec.EliasFano // n+1 cumulative edge counts (rowPtr analogue)
	byteOff *bitvec.EliasFano // n+1 cumulative byte offsets into adj

	hostBytes int64 // tracked host charge still held (see HostBytes)
}

// NumVertices returns the graph dimension (2*numReads).
func (g *Graph) NumVertices() int { return g.n }

// NumReads returns the read count (vertices are read strands, 2 per
// read). It is part of the sgraph.Traversable contract.
func (g *Graph) NumReads() int { return g.n / 2 }

// NNZ returns the number of stored directed edges.
func (g *Graph) NNZ() int64 { return g.nnz }

// Bytes is the structural size of the compressed store: the adjacency
// stream plus both offset sequences. It is the device-transfer
// footprint analogue of spmat's Matrix.Bytes and a pure function of the
// structure.
func (g *Graph) Bytes() int64 {
	return int64(len(g.adj)) + g.edgeOff.Bytes() + g.byteOff.Bytes()
}

// HostBytes is the number of bytes currently charged to the builder's
// MemSink on the graph's behalf; the owner releases it when the graph
// is dropped.
func (g *Graph) HostBytes() int64 { return g.hostBytes }

// EdgeBase returns the index of row u's first edge in CSR entry order
// (the rowPtr analogue), valid for u in [0, NumVertices()].
func (g *Graph) EdgeBase(u uint32) (int64, error) {
	v, err := g.edgeOff.Get(int(u))
	if err != nil {
		return 0, fmt.Errorf("succinct: edge offset of vertex %d: %w", u, err)
	}
	return int64(v), nil
}

// Degree returns the out-degree of vertex u.
func (g *Graph) Degree(u uint32) (int64, error) {
	lo, err := g.EdgeBase(u)
	if err != nil {
		return 0, err
	}
	hi, err := g.EdgeBase(u + 1)
	if err != nil {
		return 0, err
	}
	return hi - lo, nil
}

// zigzag codes a signed delta as an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// DecodeRow appends row u's column indices and overlap lengths to the
// provided scratch slices (which may be nil) and returns them. Columns
// come out strictly ascending, exactly as a CSR row would.
func (g *Graph) DecodeRow(u uint32, cols []uint32, vals []uint16) ([]uint32, []uint16, error) {
	if int64(u) >= int64(g.n) {
		return cols, vals, fmt.Errorf("succinct: vertex %d out of range for %d vertices", u, g.n)
	}
	deg, err := g.Degree(u)
	if err != nil {
		return cols, vals, err
	}
	if deg == 0 {
		return cols, vals, nil
	}
	lo64, err := g.byteOff.Get(int(u))
	if err != nil {
		return cols, vals, fmt.Errorf("succinct: byte offset of vertex %d: %w", u, err)
	}
	hi64, err := g.byteOff.Get(int(u) + 1)
	if err != nil {
		return cols, vals, fmt.Errorf("succinct: byte offset of vertex %d: %w", u+1, err)
	}
	buf := g.adj[lo64:hi64]
	var col uint32
	var l uint16
	for i := int64(0); i < deg; i++ {
		cv, n := binary.Uvarint(buf)
		if n <= 0 {
			return cols, vals, fmt.Errorf("succinct: corrupt adjacency stream in row %d", u)
		}
		buf = buf[n:]
		lv, n := binary.Uvarint(buf)
		if n <= 0 {
			return cols, vals, fmt.Errorf("succinct: corrupt adjacency stream in row %d", u)
		}
		buf = buf[n:]
		if i == 0 {
			col = uint32(cv)
			l = uint16(lv)
		} else {
			col += uint32(cv)
			l = uint16(int64(l) + unzigzag(lv))
		}
		cols = append(cols, col)
		vals = append(vals, l)
	}
	if len(buf) != 0 {
		return cols, vals, fmt.Errorf("succinct: trailing bytes in row %d", u)
	}
	return cols, vals, nil
}

// EachOut visits the out-edges of v in ascending target order, stopping
// early when fn returns false. It implements sgraph.Traversable over
// the full (unmasked) edge set — the shape compressPhase rebuilds from
// the persisted live edges. Decode errors terminate the iteration; they
// cannot occur on a Builder-sealed graph.
func (g *Graph) EachOut(v uint32, fn func(to uint32, l uint16) bool) {
	cols, vals, err := g.DecodeRow(v, nil, nil)
	if err != nil {
		return
	}
	for i := range cols {
		if !fn(cols[i], vals[i]) {
			return
		}
	}
}

// Edges streams every entry in CSR order: (u, v) ascending.
func (g *Graph) Edges(fn func(Edge)) {
	var cols []uint32
	var vals []uint16
	for u := 0; u < g.n; u++ {
		cols, vals = cols[:0], vals[:0]
		var err error
		cols, vals, err = g.DecodeRow(uint32(u), cols, vals)
		if err != nil {
			return
		}
		for i := range cols {
			fn(Edge{U: uint32(u), V: cols[i], Len: vals[i]})
		}
	}
}

// Builder assembles a Graph from edges arriving in non-decreasing
// (U, V) order — the order the sorted edge runs stream in. It holds no
// uncompressed edge list: transient state is the pending edge (for
// keep-the-longest dedupe), the growing compressed adjacency stream,
// and compact per-row varint bookkeeping replayed into the Elias–Fano
// offsets at Finish.
type Builder struct {
	n   int
	mem MemSink

	adj []byte
	// rowTmp records (row gap, degree, byte length) varint triples for
	// each non-empty row, in row order — a few bytes per populated row.
	rowTmp []byte

	pending    Edge
	hasPending bool
	lastRowIdx uint32 // last closed row (valid when rowsClosed)
	rowsClosed bool

	curRow     uint32
	curDeg     int64
	rowStart   int
	rowOpen    bool
	prevCol    uint32
	prevLen    uint16
	nnz        int64
	charged    int64
	maxCharged int64
}

// NewBuilder creates a builder over numVertices vertices. mem, when
// non-nil, is charged with the builder's host bytes as they grow; the
// residual charge transfers to the finished Graph (see Graph.HostBytes).
func NewBuilder(numVertices int, mem MemSink) (*Builder, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("succinct: negative vertex count %d", numVertices)
	}
	return &Builder{n: numVertices, mem: mem}, nil
}

// account re-levels the MemSink charge against the builder's current
// buffer capacities.
func (b *Builder) account() {
	cur := int64(cap(b.adj)) + int64(cap(b.rowTmp)) + 64 // fixed fields
	if cur != b.charged {
		if b.mem != nil {
			b.mem.Add(cur - b.charged)
		}
		b.charged = cur
	}
	if b.charged > b.maxCharged {
		b.maxCharged = b.charged
	}
}

// Push offers the next edge. Records must arrive in non-decreasing
// (U, V) order; exact duplicates dedupe keeping the longest overlap.
// Out-of-range, self-loop, zero-length, or order-regressing records are
// errors — never panics — mirroring spmat.FromEdgeRuns, so a truncated
// or corrupted edge stream fails loudly.
func (b *Builder) Push(e Edge) error {
	if int64(e.U) >= int64(b.n) || int64(e.V) >= int64(b.n) {
		return fmt.Errorf("succinct: edge (%d->%d) out of range for %d vertices", e.U, e.V, b.n)
	}
	if e.U == e.V {
		return fmt.Errorf("succinct: self-loop edge at vertex %d", e.U)
	}
	if e.Len == 0 {
		return fmt.Errorf("succinct: edge (%d->%d) has zero overlap length", e.U, e.V)
	}
	if b.hasPending {
		p := b.pending
		if e.U < p.U || (e.U == p.U && e.V < p.V) {
			return fmt.Errorf("succinct: edge run not sorted: (%d,%d) after (%d,%d)",
				e.U, e.V, p.U, p.V)
		}
		if e.U == p.U && e.V == p.V {
			if e.Len > b.pending.Len {
				b.pending.Len = e.Len
			}
			return nil
		}
		b.encode(p)
	}
	b.pending = e
	b.hasPending = true
	return nil
}

// encode appends one deduped edge to the compressed streams.
func (b *Builder) encode(e Edge) {
	if !b.rowOpen || e.U != b.curRow {
		b.closeRow()
		b.curRow = e.U
		b.rowOpen = true
		b.rowStart = len(b.adj)
		b.adj = binary.AppendUvarint(b.adj, uint64(e.V))
		b.adj = binary.AppendUvarint(b.adj, uint64(e.Len))
	} else {
		b.adj = binary.AppendUvarint(b.adj, uint64(e.V-b.prevCol))
		b.adj = binary.AppendUvarint(b.adj, zigzag(int64(e.Len)-int64(b.prevLen)))
	}
	b.prevCol = e.V
	b.prevLen = e.Len
	b.curDeg++
	b.nnz++
	b.account()
}

// closeRow flushes the open row's bookkeeping triple into rowTmp.
func (b *Builder) closeRow() {
	if !b.rowOpen {
		return
	}
	gap := uint64(b.curRow)
	if b.rowsClosed {
		gap = uint64(b.curRow - b.lastRowIdx)
	}
	b.rowTmp = binary.AppendUvarint(b.rowTmp, gap)
	b.rowTmp = binary.AppendUvarint(b.rowTmp, uint64(b.curDeg))
	b.rowTmp = binary.AppendUvarint(b.rowTmp, uint64(len(b.adj)-b.rowStart))
	b.lastRowIdx = b.curRow
	b.rowsClosed = true
	b.rowOpen = false
	b.curDeg = 0
	b.account()
}

// MaxChargedBytes returns the high-water mark of the builder's MemSink
// charge — the single-pass construction pin: it stays far below the
// uncompressed edge list the builder never materializes.
func (b *Builder) MaxChargedBytes() int64 { return b.maxCharged }

// Abandon releases the builder's residual MemSink charge, for callers
// bailing out before Finish (or after a failed Finish). Idempotent.
func (b *Builder) Abandon() {
	if b.mem != nil && b.charged != 0 {
		b.mem.Release(b.charged)
	}
	b.charged = 0
}

// Finish seals the graph: the per-row bookkeeping replays into the two
// Elias–Fano offset sequences and the transient buffers are released
// from the MemSink, leaving only the compressed structure charged.
func (b *Builder) Finish() (*Graph, error) {
	if b.hasPending {
		b.encode(b.pending)
		b.hasPending = false
	}
	b.closeRow()

	edgeB, err := bitvec.NewEliasFanoBuilder(b.n+1, uint64(b.nnz))
	if err != nil {
		return nil, err
	}
	byteB, err := bitvec.NewEliasFanoBuilder(b.n+1, uint64(len(b.adj)))
	if err != nil {
		return nil, err
	}
	// Replay the non-empty-row triples, filling cumulative offsets for
	// every vertex.
	tmp := b.rowTmp
	nextRow := int64(-1)
	var nextDeg, nextBytes uint64
	var prevRow int64
	advance := func(first bool) error {
		if len(tmp) == 0 {
			nextRow = int64(b.n) // sentinel past the end
			return nil
		}
		gap, n := binary.Uvarint(tmp)
		if n <= 0 {
			return fmt.Errorf("succinct: corrupt row bookkeeping")
		}
		tmp = tmp[n:]
		if first {
			nextRow = int64(gap)
		} else {
			nextRow = prevRow + int64(gap)
		}
		prevRow = nextRow
		if nextDeg, n = binary.Uvarint(tmp); n <= 0 {
			return fmt.Errorf("succinct: corrupt row bookkeeping")
		}
		tmp = tmp[n:]
		if nextBytes, n = binary.Uvarint(tmp); n <= 0 {
			return fmt.Errorf("succinct: corrupt row bookkeeping")
		}
		tmp = tmp[n:]
		return nil
	}
	if err := advance(true); err != nil {
		return nil, err
	}
	var cumDeg, cumBytes uint64
	for i := 0; i <= b.n; i++ {
		if err := edgeB.Append(cumDeg); err != nil {
			return nil, err
		}
		if err := byteB.Append(cumBytes); err != nil {
			return nil, err
		}
		if int64(i) == nextRow {
			cumDeg += nextDeg
			cumBytes += nextBytes
			if err := advance(false); err != nil {
				return nil, err
			}
		}
	}
	edgeOff, err := edgeB.Build()
	if err != nil {
		return nil, err
	}
	byteOff, err := byteB.Build()
	if err != nil {
		return nil, err
	}

	g := &Graph{n: b.n, nnz: b.nnz, adj: b.adj, edgeOff: edgeOff, byteOff: byteOff}
	// Re-level the charge: bookkeeping is gone, offset sequences are in.
	b.rowTmp = nil
	b.account()
	if b.mem != nil {
		b.mem.Add(edgeOff.Bytes() + byteOff.Bytes())
	}
	b.charged += edgeOff.Bytes() + byteOff.Bytes()
	if b.charged > b.maxCharged {
		b.maxCharged = b.charged
	}
	g.hostBytes = b.charged
	return g, nil
}

// FromEdgeRuns builds a Graph from a pull iterator over edges in
// non-decreasing (U, V) order — the CSR order the pipeline persists
// edges.kv in and the order SortStream emits. It mirrors
// spmat.FromEdgeRuns' validation contract: duplicates dedupe keeping
// the longest overlap; unordered, out-of-range, zero-length, or
// self-loop records are errors, never panics.
func FromEdgeRuns(numVertices int, next func() (Edge, bool, error)) (*Graph, error) {
	return FromEdgeRunsMetered(numVertices, nil, next)
}

// FromEdgeRunsMetered is FromEdgeRuns with the builder's host bytes
// charged to mem.
func FromEdgeRunsMetered(numVertices int, mem MemSink, next func() (Edge, bool, error)) (*Graph, error) {
	b, err := NewBuilder(numVertices, mem)
	if err != nil {
		return nil, err
	}
	for {
		e, ok, err := next()
		if err != nil {
			b.Abandon()
			return nil, err
		}
		if !ok {
			break
		}
		if err := b.Push(e); err != nil {
			b.Abandon()
			return nil, err
		}
	}
	g, err := b.Finish()
	if err != nil {
		b.Abandon()
		return nil, err
	}
	return g, nil
}
