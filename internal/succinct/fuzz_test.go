package succinct

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// decodeEdgeRecords parses data as a stream of 10-byte little-endian
// records (u uint32, v uint32, len uint16) — the fuzzer's wire format. A
// trailing partial record is ignored, mirroring how a truncated edge
// file surfaces whole records only.
func decodeEdgeRecords(data []byte) []Edge {
	var edges []Edge
	for len(data) >= 10 {
		edges = append(edges, Edge{
			U:   binary.LittleEndian.Uint32(data[0:4]),
			V:   binary.LittleEndian.Uint32(data[4:8]),
			Len: binary.LittleEndian.Uint16(data[8:10]),
		})
		data = data[10:]
	}
	return edges
}

func encodeEdgeRecords(edges []Edge) []byte {
	var buf bytes.Buffer
	for _, e := range edges {
		var rec [10]byte
		binary.LittleEndian.PutUint32(rec[0:4], e.U)
		binary.LittleEndian.PutUint32(rec[4:8], e.V)
		binary.LittleEndian.PutUint16(rec[8:10], e.Len)
		buf.Write(rec[:])
	}
	return buf.Bytes()
}

// FuzzSuccinctFromEdgeRuns feeds arbitrary — well-formed, malformed,
// duplicated, unsorted, truncated — edge records into the compressed
// builder. The contract under fuzz: never panic, fail loudly (error) on
// any order/range/length violation, dedupe deterministically, and on
// success decode back the exact edge set with a consistent Elias–Fano
// rowPtr.
func FuzzSuccinctFromEdgeRuns(f *testing.F) {
	// Valid sorted run with a complement pair.
	f.Add(uint16(8), encodeEdgeRecords([]Edge{{0, 2, 50}, {3, 1, 50}, {4, 6, 30}}))
	// Duplicates that must dedupe keeping the max length.
	f.Add(uint16(8), encodeEdgeRecords([]Edge{{0, 2, 30}, {0, 2, 40}, {0, 2, 20}}))
	// Unsorted: must error.
	f.Add(uint16(8), encodeEdgeRecords([]Edge{{4, 2, 10}, {0, 2, 10}}))
	// Out of range, zero length, self loop: must error.
	f.Add(uint16(4), encodeEdgeRecords([]Edge{{9, 2, 10}}))
	f.Add(uint16(4), encodeEdgeRecords([]Edge{{0, 2, 0}}))
	f.Add(uint16(4), encodeEdgeRecords([]Edge{{2, 2, 7}}))
	// Truncated record tail.
	f.Add(uint16(8), append(encodeEdgeRecords([]Edge{{0, 2, 50}}), 0x01, 0x02, 0x03))
	// Wide column gaps stressing the varint delta encoding.
	f.Add(uint16(1023), encodeEdgeRecords([]Edge{{0, 1, 1}, {0, 1000, 500}, {7, 9, 65535}}))

	f.Fuzz(func(t *testing.T, numVertices uint16, data []byte) {
		n := int(numVertices)%1024 + 1
		edges := decodeEdgeRecords(data)

		g1, err1 := FromEdgeRuns(n, sliceIter(edges))
		g2, err2 := FromEdgeRuns(n, sliceIter(edges))

		// Determinism: same input, same outcome — bit for bit.
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic error text: %q vs %q", err1, err2)
			}
			return
		}
		got1, got2 := collect(g1), collect(g2)
		if len(got1) != len(got2) {
			t.Fatalf("nondeterministic edge count: %d vs %d", len(got1), len(got2))
		}
		for i := range got1 {
			if got1[i] != got2[i] {
				t.Fatalf("nondeterministic edge %d: %+v vs %+v", i, got1[i], got2[i])
			}
		}

		// Structural invariants on the accepted store.
		if g1.NumVertices() != n {
			t.Fatalf("n = %d, want %d", g1.NumVertices(), n)
		}
		if int64(len(got1)) != g1.NNZ() {
			t.Fatalf("decoded %d edges, nnz = %d", len(got1), g1.NNZ())
		}
		var sum int64
		for u := 0; u < n; u++ {
			d, err := g1.Degree(uint32(u))
			if err != nil {
				t.Fatalf("Degree(%d): %v", u, err)
			}
			sum += d
		}
		if sum != g1.NNZ() {
			t.Fatalf("degree sum %d != nnz %d", sum, g1.NNZ())
		}
		var prev Edge
		for i, e := range got1 {
			if int(e.U) >= n || int(e.V) >= n {
				t.Fatalf("edge %d out of range: %+v", i, e)
			}
			if e.U == e.V {
				t.Fatalf("self loop survived: %+v", e)
			}
			if e.Len == 0 {
				t.Fatalf("zero-length entry survived: %+v", e)
			}
			if i > 0 && (prev.U > e.U || (prev.U == e.U && prev.V >= e.V)) {
				t.Fatalf("edges not strictly CSR-ordered at %d: %+v after %+v", i, e, prev)
			}
			prev = e
		}

		// Round trip: re-streaming the accepted store must reproduce it.
		g3, err := FromEdgeRuns(n, sliceIter(got1))
		if err != nil {
			t.Fatalf("round trip errored: %v", err)
		}
		got3 := collect(g3)
		if len(got3) != len(got1) {
			t.Fatalf("round trip changed edge count: %d vs %d", len(got3), len(got1))
		}
		for i := range got1 {
			if got3[i] != got1[i] {
				t.Fatalf("round trip changed edge %d: %+v vs %+v", i, got3[i], got1[i])
			}
		}
	})
}
