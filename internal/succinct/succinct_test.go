package succinct

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/spmat"
	"repro/internal/stats"
)

func testDevice() *gpu.Device { return gpu.NewDevice(gpu.K40, nil) }

func sliceIter(edges []Edge) func() (Edge, bool, error) {
	i := 0
	return func() (Edge, bool, error) {
		if i >= len(edges) {
			return Edge{}, false, nil
		}
		e := edges[i]
		i++
		return e, true, nil
	}
}

// randomSortedEdges produces a CSR-ordered edge stream with duplicates.
func randomSortedEdges(rng *rand.Rand, numVertices, n int) []Edge {
	var edges []Edge
	for i := 0; i < n; i++ {
		u := uint32(rng.Intn(numVertices))
		v := uint32(rng.Intn(numVertices))
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v, Len: uint16(rng.Intn(500) + 1)})
		if rng.Intn(4) == 0 { // duplicate with another length
			edges = append(edges, Edge{U: u, V: v, Len: uint16(rng.Intn(500) + 1)})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		if edges[i].V != edges[j].V {
			return edges[i].V < edges[j].V
		}
		return edges[i].Len < edges[j].Len
	})
	return edges
}

func collect(g *Graph) []Edge {
	var out []Edge
	g.Edges(func(e Edge) { out = append(out, e) })
	return out
}

// TestFromEdgeRunsMatchesSpmat pins the compressed store's contents
// against the CSR matrix built from the same stream.
func TestFromEdgeRunsMatchesSpmat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		nv := rng.Intn(200) + 2
		edges := randomSortedEdges(rng, nv, rng.Intn(600))
		g, err := FromEdgeRuns(nv, sliceIter(edges))
		if err != nil {
			t.Fatal(err)
		}
		sp := make([]spmat.Edge, len(edges))
		for i, e := range edges {
			sp[i] = spmat.Edge{U: e.U, V: e.V, Len: e.Len}
		}
		i := 0
		m, err := spmat.FromEdgeRuns(nv, func() (spmat.Edge, bool, error) {
			if i >= len(sp) {
				return spmat.Edge{}, false, nil
			}
			e := sp[i]
			i++
			return e, true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if g.NNZ() != m.NNZ() {
			t.Fatalf("trial %d: nnz %d vs spmat %d", trial, g.NNZ(), m.NNZ())
		}
		var want []Edge
		m.Edges(func(e spmat.Edge) { want = append(want, Edge{U: e.U, V: e.V, Len: e.Len}) })
		got := collect(g)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d edges vs %d", trial, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: edge %d: %+v vs %+v", trial, k, got[k], want[k])
			}
		}
		// Degrees via the Elias–Fano rowPtr match.
		for u := 0; u < nv; u++ {
			cols, _ := m.Row(uint32(u))
			d, err := g.Degree(uint32(u))
			if err != nil {
				t.Fatal(err)
			}
			if int(d) != len(cols) {
				t.Fatalf("trial %d: degree(%d) = %d, want %d", trial, u, d, len(cols))
			}
		}
	}
}

func TestFromEdgeRunsErrors(t *testing.T) {
	cases := []struct {
		name  string
		nv    int
		edges []Edge
		want  string
	}{
		{"negative_vertices", -1, nil, "negative vertex count"},
		{"out_of_range_u", 4, []Edge{{U: 4, V: 1, Len: 3}}, "out of range"},
		{"out_of_range_v", 4, []Edge{{U: 1, V: 9, Len: 3}}, "out of range"},
		{"self_loop", 4, []Edge{{U: 2, V: 2, Len: 3}}, "self-loop"},
		{"zero_length", 4, []Edge{{U: 1, V: 2, Len: 0}}, "zero overlap length"},
		{"unsorted_u", 4, []Edge{{U: 2, V: 1, Len: 3}, {U: 1, V: 2, Len: 3}}, "not sorted"},
		{"unsorted_v", 4, []Edge{{U: 1, V: 3, Len: 3}, {U: 1, V: 2, Len: 3}}, "not sorted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromEdgeRuns(tc.nv, sliceIter(tc.edges))
			if err == nil {
				t.Fatalf("want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "succinct:") {
				t.Fatalf("error %q not namespaced", err)
			}
		})
	}
}

func TestDuplicatesKeepLongest(t *testing.T) {
	g, err := FromEdgeRuns(4, sliceIter([]Edge{
		{U: 1, V: 2, Len: 10},
		{U: 1, V: 2, Len: 30},
		{U: 1, V: 2, Len: 20},
		{U: 1, V: 3, Len: 5},
	}))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(g)
	want := []Edge{{U: 1, V: 2, Len: 30}, {U: 1, V: 3, Len: 5}}
	if len(got) != len(want) {
		t.Fatalf("edges = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTransitiveReduceMatchesSpmat builds the same graph in both
// backends and checks the masked pass removes the identical edge set —
// the property that makes the succinct backend's contigs byte-identical
// to spmat's.
func TestTransitiveReduceMatchesSpmat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vertexLen := func(v uint32) int { return 120 + int(v%9) }
	for trial := 0; trial < 15; trial++ {
		numReads := rng.Intn(40) + 4
		nv := 2 * numReads
		sb := spmat.NewBuilder(numReads)
		for i := 0; i < 6*numReads; i++ {
			u := uint32(rng.Intn(nv))
			v := uint32(rng.Intn(nv))
			sb.AddOverlap(u, v, uint16(rng.Intn(100)+10))
		}
		m := sb.Build()
		var stream []Edge
		m.Edges(func(e spmat.Edge) { stream = append(stream, Edge{U: e.U, V: e.V, Len: e.Len}) })
		g, err := FromEdgeRuns(nv, sliceIter(stream))
		if err != nil {
			t.Fatal(err)
		}
		fuzz := rng.Intn(3)
		mr, err := m.TransitiveReduce(context.Background(), spmat.ReduceConfig{
			Device: testDevice(), VertexLen: vertexLen, Fuzz: fuzz})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := g.TransitiveReduce(context.Background(), ReduceConfig{
			Device: testDevice(), VertexLen: vertexLen, Fuzz: fuzz})
		if err != nil {
			t.Fatal(err)
		}
		if gr.Removed != mr.Removed || gr.Flops != mr.Flops {
			t.Fatalf("trial %d: removed/flops %d/%d vs spmat %d/%d",
				trial, gr.Removed, gr.Flops, mr.Removed, mr.Flops)
		}
		var wantLive []Edge
		mr.Live(func(e spmat.Edge) { wantLive = append(wantLive, Edge{U: e.U, V: e.V, Len: e.Len}) })
		var gotLive []Edge
		next := gr.LiveEdges()
		for {
			e, ok := next()
			if !ok {
				break
			}
			gotLive = append(gotLive, e)
		}
		if len(gotLive) != len(wantLive) {
			t.Fatalf("trial %d: %d live vs %d", trial, len(gotLive), len(wantLive))
		}
		for k := range wantLive {
			if gotLive[k] != wantLive[k] {
				t.Fatalf("trial %d: live %d: %+v vs %+v", trial, k, gotLive[k], wantLive[k])
			}
		}
		// LiveView must agree with LiveEdges.
		var viewLive []Edge
		lv := gr.LiveView()
		for u := uint32(0); u < uint32(nv); u++ {
			lv.EachOut(u, func(to uint32, l uint16) bool {
				viewLive = append(viewLive, Edge{U: u, V: to, Len: l})
				return true
			})
		}
		if len(viewLive) != len(gotLive) {
			t.Fatalf("trial %d: LiveView %d edges vs %d", trial, len(viewLive), len(gotLive))
		}
		for k := range gotLive {
			if viewLive[k] != gotLive[k] {
				t.Fatalf("trial %d: LiveView %d: %+v vs %+v", trial, k, viewLive[k], gotLive[k])
			}
		}
	}
}

// TestBuilderSinglePass pins the streaming construction: the peak bytes
// the builder charges stay below the uncompressed edge list (10 B/entry,
// the raw COO footprint spmat's builder accumulates) and below the CSR
// layout, because the builder never materializes either.
func TestBuilderSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nv := 4000
	edges := randomSortedEdges(rng, nv, 30000)
	var mem stats.MemTracker
	b, err := NewBuilder(nv, &mem)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := b.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	edgeList := 10 * g.NNZ()
	csr := 8*int64(nv+1) + 6*g.NNZ()
	if b.MaxChargedBytes() >= edgeList {
		t.Fatalf("builder peak %d not below edge-list %d bytes", b.MaxChargedBytes(), edgeList)
	}
	if mem.Peak() >= edgeList {
		t.Fatalf("tracker peak %d not below edge-list %d bytes", mem.Peak(), edgeList)
	}
	if g.Bytes() >= csr {
		t.Fatalf("sealed graph %d bytes not below CSR %d", g.Bytes(), csr)
	}
	if mem.Current() != g.HostBytes() {
		t.Fatalf("tracker current %d != HostBytes %d", mem.Current(), g.HostBytes())
	}
	mem.Release(g.HostBytes())
	if mem.Current() != 0 {
		t.Fatalf("tracker leaks %d bytes after release", mem.Current())
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdgeRuns(0, sliceIter(nil))
	if err != nil {
		t.Fatal(err)
	}
	if g.NNZ() != 0 || g.NumVertices() != 0 {
		t.Fatalf("empty graph: nnz=%d n=%d", g.NNZ(), g.NumVertices())
	}
	r, err := g.TransitiveReduce(context.Background(), ReduceConfig{
		Device: testDevice(), VertexLen: func(uint32) int { return 100 }})
	if err != nil {
		t.Fatal(err)
	}
	if r.Removed != 0 {
		t.Fatalf("removed = %d", r.Removed)
	}
}
