package sga

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomText(rng *rand.Rand, n, K int) []byte {
	text := make([]byte, n)
	for i := range text {
		text[i] = byte(rng.Intn(K-1)) + 1
	}
	return append(text, 0)
}

func TestOccAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := randomText(rng, 1000, 5)
	f := NewFMIndex(text, 5)
	for c := byte(0); c < 5; c++ {
		count := int32(0)
		for pos := int32(0); pos <= int32(len(text)); pos++ {
			if got := f.Occ(c, pos); got != count {
				t.Fatalf("Occ(%d, %d) = %d, want %d", c, pos, got, count)
			}
			if int(pos) < len(f.bwt) && f.bwt[pos] == c {
				count++
			}
		}
	}
	if f.Occ(1, -5) != 0 {
		t.Error("Occ with negative pos should be 0")
	}
}

func TestFindCountsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text := randomText(rng, 600, 4)
	f := NewFMIndex(text, 4)
	for trial := 0; trial < 200; trial++ {
		plen := rng.Intn(6) + 1
		pattern := make([]byte, plen)
		for i := range pattern {
			pattern[i] = byte(rng.Intn(3)) + 1
		}
		want := bytes.Count(text, pattern)
		// bytes.Count does not count overlapping occurrences; count
		// manually instead.
		want = 0
		for i := 0; i+plen <= len(text); i++ {
			if bytes.Equal(text[i:i+plen], pattern) {
				want++
			}
		}
		if got := int(f.Find(pattern).Size()); got != want {
			t.Fatalf("Find(%v).Size = %d, want %d", pattern, got, want)
		}
	}
}

func TestFindLocatePositions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	text := randomText(rng, 400, 4)
	f := NewFMIndex(text, 4)
	pattern := []byte{1, 2}
	iv := f.Find(pattern)
	var got []int
	for i := iv.Lo; i < iv.Hi; i++ {
		got = append(got, int(f.Locate(i)))
	}
	for _, p := range got {
		if !bytes.Equal(text[p:p+2], pattern) {
			t.Fatalf("Locate returned position %d with %v", p, text[p:p+2])
		}
	}
	want := 0
	for i := 0; i+2 <= len(text); i++ {
		if bytes.Equal(text[i:i+2], pattern) {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("located %d occurrences, want %d", len(got), want)
	}
}

func TestFindAbsentPattern(t *testing.T) {
	text := []byte{1, 1, 2, 2, 0}
	f := NewFMIndex(text, 4)
	if iv := f.Find([]byte{3}); !iv.Empty() || iv.Size() != 0 {
		t.Errorf("absent symbol interval = %+v", iv)
	}
	if iv := f.Find([]byte{2, 1, 2}); !iv.Empty() {
		t.Errorf("absent pattern interval = %+v", iv)
	}
}

func TestIntervalBasics(t *testing.T) {
	if (Interval{3, 3}).Size() != 0 || !(Interval{5, 2}).Empty() {
		t.Error("interval emptiness wrong")
	}
	if (Interval{2, 7}).Size() != 5 {
		t.Error("interval size wrong")
	}
}

func TestApproxBytesPositive(t *testing.T) {
	f := NewFMIndex([]byte{1, 2, 1, 0}, 4)
	if f.ApproxBytes() <= 0 {
		t.Error("ApproxBytes should be positive")
	}
	if f.Len() != 4 {
		t.Errorf("Len = %d", f.Len())
	}
}
