package sga

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveSuffixArray sorts suffixes directly.
func naiveSuffixArray(text []byte) []int32 {
	sa := make([]int32, len(text))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(i, j int) bool {
		return string(text[sa[i]:]) < string(text[sa[j]:])
	})
	return sa
}

func withSentinel(symbols []byte, K int) []byte {
	out := make([]byte, 0, len(symbols)+1)
	for _, s := range symbols {
		out = append(out, s%byte(K-1)+1) // 1..K-1, reserving 0
	}
	return append(out, 0)
}

func TestSuffixArrayKnown(t *testing.T) {
	// "banana" + sentinel with a=1, b=2, n=3.
	text := []byte{2, 1, 3, 1, 3, 1, 0}
	want := []int32{6, 5, 3, 1, 0, 4, 2}
	got := SuffixArray(text, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SA[%d] = %d, want %d (full %v)", i, got[i], want[i], got)
		}
	}
}

func TestSuffixArrayAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300) + 1
		K := rng.Intn(5) + 2
		text := make([]byte, n)
		for i := range text {
			text[i] = byte(rng.Intn(K-1)) + 1
		}
		text = append(text, 0)
		got := SuffixArray(text, K)
		want := naiveSuffixArray(text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d K=%d): SA[%d] = %d, want %d", trial, n, K, i, got[i], want[i])
			}
		}
	}
}

func TestSuffixArrayProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 400 {
			return true
		}
		text := withSentinel(raw, 6)
		got := SuffixArray(text, 6)
		want := naiveSuffixArray(text)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSuffixArrayDegenerate(t *testing.T) {
	// Homopolymer runs stress the LMS naming recursion.
	for _, text := range [][]byte{
		{0},
		{1, 0},
		{1, 1, 1, 1, 1, 0},
		{2, 1, 2, 1, 2, 1, 0},
		{1, 2, 1, 2, 1, 2, 0},
	} {
		got := SuffixArray(text, 3)
		want := naiveSuffixArray(text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("text %v: SA = %v, want %v", text, got, want)
			}
		}
	}
}
