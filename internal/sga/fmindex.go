package sga

// FMIndex is a BWT-based full-text index supporting backward search, the
// core of SGA's overlap stage. The alphabet is tiny (sentinel, separator,
// four bases), so occurrence counts are kept as per-symbol checkpoints
// every occSample positions with a linear scan in between.
type FMIndex struct {
	bwt    []byte
	sa     []int32 // full suffix array kept for locate (scaled datasets fit)
	counts []int32 // counts[c] = number of text symbols strictly less than c
	occChk [][]int32
	k      int
}

const occSample = 128

// NewFMIndex builds the index for text over symbols [0, K). text must end
// with a unique smallest sentinel 0.
func NewFMIndex(text []byte, K int) *FMIndex {
	n := len(text)
	sa := SuffixArray(text, K)
	f := &FMIndex{
		bwt:    make([]byte, n),
		sa:     sa,
		counts: make([]int32, K+1),
		k:      K,
	}
	for i, p := range sa {
		if p == 0 {
			f.bwt[i] = text[n-1]
		} else {
			f.bwt[i] = text[p-1]
		}
	}
	for _, c := range text {
		f.counts[c+1]++
	}
	for c := 1; c <= K; c++ {
		f.counts[c] += f.counts[c-1]
	}
	// Occurrence checkpoints.
	numChk := n/occSample + 1
	f.occChk = make([][]int32, numChk)
	running := make([]int32, K)
	for i := 0; i < n; i++ {
		if i%occSample == 0 {
			chk := make([]int32, K)
			copy(chk, running)
			f.occChk[i/occSample] = chk
		}
		running[f.bwt[i]]++
	}
	if n%occSample == 0 {
		// No trailing checkpoint needed; Occ handles pos == n below.
	}
	f.occChk = append(f.occChk, nil) // sentinel slot, never dereferenced directly
	final := make([]int32, K)
	copy(final, running)
	f.occChk[len(f.occChk)-1] = final
	return f
}

// Len returns the text length.
func (f *FMIndex) Len() int { return len(f.bwt) }

// Occ returns the number of occurrences of symbol c in bwt[0:pos].
func (f *FMIndex) Occ(c byte, pos int32) int32 {
	if pos <= 0 {
		return 0
	}
	if int(pos) >= len(f.bwt) {
		return f.occChk[len(f.occChk)-1][c]
	}
	chk := pos / occSample
	count := f.occChk[chk][c]
	for i := chk * occSample; i < pos; i++ {
		if f.bwt[i] == c {
			count++
		}
	}
	return count
}

// Interval is a half-open SA range [Lo, Hi) of suffixes sharing a common
// prefix (the current backward-search pattern).
type Interval struct{ Lo, Hi int32 }

// Empty reports whether the interval holds no suffixes.
func (iv Interval) Empty() bool { return iv.Lo >= iv.Hi }

// Size returns the number of suffixes in the interval.
func (iv Interval) Size() int32 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Whole returns the interval covering the entire suffix array.
func (f *FMIndex) Whole() Interval { return Interval{0, int32(len(f.bwt))} }

// Extend performs one backward-search step: the interval of pattern P
// becomes the interval of cP.
func (f *FMIndex) Extend(iv Interval, c byte) Interval {
	return Interval{
		Lo: f.counts[c] + f.Occ(c, iv.Lo),
		Hi: f.counts[c] + f.Occ(c, iv.Hi),
	}
}

// Find returns the interval of an arbitrary pattern (backward search over
// all of it); used by tests and diagnostics.
func (f *FMIndex) Find(pattern []byte) Interval {
	iv := f.Whole()
	for i := len(pattern) - 1; i >= 0 && !iv.Empty(); i-- {
		iv = f.Extend(iv, pattern[i])
	}
	return iv
}

// Locate returns the text position of the i-th suffix in SA order.
func (f *FMIndex) Locate(i int32) int32 { return f.sa[i] }

// ApproxBytes estimates the index's host-memory footprint.
func (f *FMIndex) ApproxBytes() int64 {
	occ := int64(len(f.occChk)) * int64(f.k) * 4
	return int64(len(f.bwt)) + 4*int64(len(f.sa)) + occ
}
