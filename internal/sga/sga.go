package sga

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/contig"
	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Text symbol encoding: the sentinel terminates the text, a separator
// precedes every read strand, and bases occupy 2..5.
const (
	symSentinel  byte = 0
	symSeparator byte = 1
	symBase      byte = 2 // base code c encodes as symBase+c
	alphabetK         = 6
)

// Config parameterizes the baseline assembler.
type Config struct {
	MinOverlap int
	// IncludeSingletons and BreakCycles mirror the LaSAGNA traversal
	// options so comparisons assemble identically shaped outputs.
	IncludeSingletons bool
	BreakCycles       bool
}

// Edge is a maximal exact overlap candidate: the Len-suffix of vertex U
// equals the Len-prefix of vertex V.
type Edge struct {
	U, V uint32
	Len  uint16
}

// Index is the FM-index over all read strands, with the position maps
// needed to translate SA hits back to vertices.
type Index struct {
	fm *FMIndex
	// vertexAfterSep[p] is the vertex whose sequence starts at p+1, for
	// every separator position p; -1 elsewhere.
	vertexAfterSep []int32
	reads          *dna.ReadSet
}

// BuildIndex runs the preprocess (text construction) and index (SA-IS,
// BWT, occurrence) stages.
func BuildIndex(rs *dna.ReadSet) *Index {
	textLen := int(2*rs.TotalBases()) + rs.NumVertices() + 1
	text := make([]byte, 0, textLen)
	vertexAfterSep := make([]int32, textLen)
	for i := range vertexAfterSep {
		vertexAfterSep[i] = -1
	}
	rcBuf := make(dna.Seq, rs.MaxLen())
	for r := uint32(0); r < uint32(rs.NumReads()); r++ {
		read := rs.Read(r)
		for strand := uint32(0); strand < 2; strand++ {
			seq := read
			if strand == 1 {
				rc := rcBuf[:len(read)]
				read.ReverseComplementInto(rc)
				seq = rc
			}
			vertexAfterSep[len(text)] = int32(dna.ForwardVertex(r) | strand)
			text = append(text, symSeparator)
			for _, c := range seq {
				text = append(text, symBase+c)
			}
		}
	}
	text = append(text, symSentinel)
	return &Index{
		fm:             NewFMIndex(text, alphabetK),
		vertexAfterSep: vertexAfterSep,
		reads:          rs,
	}
}

// ApproxBytes estimates the index footprint.
func (ix *Index) ApproxBytes() int64 {
	return ix.fm.ApproxBytes() + 4*int64(len(ix.vertexAfterSep))
}

// OverlapsFrom finds every exact suffix-prefix overlap of length in
// [minOverlap, len(u)) from vertex u to any other vertex, excluding
// containments (overlap spanning all of the target) and self-overlaps.
//
// The search walks u's sequence backward through the FM-index: after k
// extensions the interval covers every occurrence of u's k-suffix; one
// further extension by the separator symbol restricts it to occurrences
// that begin a read strand, i.e. prefixes.
func (ix *Index) OverlapsFrom(u uint32, minOverlap int, emit func(Edge)) {
	seq := ix.reads.VertexSeq(u)
	iv := ix.fm.Whole()
	n := len(seq)
	for k := 1; k < n; k++ { // k-suffix; k == n excluded (self-overlap partition)
		iv = ix.fm.Extend(iv, symBase+seq[n-k])
		if iv.Empty() {
			return
		}
		if k < minOverlap {
			continue
		}
		sep := ix.fm.Extend(iv, symSeparator)
		for i := sep.Lo; i < sep.Hi; i++ {
			pos := ix.fm.Locate(i)
			v := ix.vertexAfterSep[pos]
			if v < 0 {
				continue
			}
			vv := uint32(v)
			if vv == u || ix.reads.VertexLen(vv) <= k {
				continue // self-overlap or containment
			}
			emit(Edge{U: u, V: vv, Len: uint16(k)})
		}
	}
}

// AllOverlaps runs OverlapsFrom for every vertex and returns the edges
// sorted by descending overlap length (the order a greedy graph consumes
// them in), with deterministic tie-breaking.
func (ix *Index) AllOverlaps(minOverlap int) []Edge {
	var edges []Edge
	for v := uint32(0); v < uint32(ix.reads.NumVertices()); v++ {
		ix.OverlapsFrom(v, minOverlap, func(e Edge) { edges = append(edges, e) })
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Len != edges[j].Len {
			return edges[i].Len > edges[j].Len
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// EstimateIndexBytes predicts the index footprint for a read set without
// building it: text (1 B/symbol), suffix array (4 B), separator map (4 B),
// and occurrence checkpoints. The evaluation harness uses it to emulate
// the out-of-memory failure the paper reports for SGA on the largest
// dataset under the smaller host-memory budget (Table VI).
func EstimateIndexBytes(rs *dna.ReadSet) int64 {
	textLen := 2*rs.TotalBases() + int64(rs.NumVertices()) + 1
	occ := (textLen/occSample + 2) * alphabetK * 4
	return textLen*(1+4+4) + occ
}

// Result reports a baseline run, with per-stage times mirroring the SGA
// stages the paper clocks (preprocess+index merged into Index here, then
// Overlap; Assemble adds contig generation).
type Result struct {
	IndexTime   time.Duration
	OverlapTime time.Duration
	TotalTime   time.Duration
	IndexBytes  int64
	Edges       int
	Contigs     []dna.Seq
	ContigStats contig.Stats
}

// Assembler is the baseline pipeline.
type Assembler struct {
	cfg Config
}

// NewAssembler validates the configuration.
func NewAssembler(cfg Config) (*Assembler, error) {
	if cfg.MinOverlap < 1 {
		return nil, fmt.Errorf("sga: MinOverlap must be >= 1")
	}
	return &Assembler{cfg: cfg}, nil
}

// Overlaps runs index + overlap and returns the candidate edges with
// timing (the work Table VI compares against LaSAGNA's map+sort+reduce).
func (a *Assembler) Overlaps(rs *dna.ReadSet) ([]Edge, *Result) {
	res := &Result{}
	t := stats.StartTimer()
	ix := BuildIndex(rs)
	res.IndexTime = t.Elapsed()
	res.IndexBytes = ix.ApproxBytes()

	t = stats.StartTimer()
	edges := ix.AllOverlaps(a.cfg.MinOverlap)
	res.OverlapTime = t.Elapsed()
	res.TotalTime = res.IndexTime + res.OverlapTime
	res.Edges = len(edges)
	return edges, res
}

// Assemble runs the full baseline: index, overlap, greedy graph, contigs.
// The greedy graph consumes candidates in descending overlap order, so on
// identical inputs (and no fingerprint collisions) it accepts the same
// per-vertex longest overlaps as LaSAGNA.
func (a *Assembler) Assemble(rs *dna.ReadSet) (*Result, error) {
	if rs.NumReads() == 0 {
		return nil, fmt.Errorf("sga: empty read set")
	}
	edges, res := a.Overlaps(rs)
	t := stats.StartTimer()
	g := graph.New(rs.NumReads())
	for _, e := range edges {
		g.AddCandidate(e.U, e.V, e.Len)
	}
	paths := g.Traverse(rs.VertexLen, graph.TraverseOptions{
		IncludeSingletons: a.cfg.IncludeSingletons,
		BreakCycles:       a.cfg.BreakCycles,
	})
	// Contig generation reuses the shared compress machinery with a
	// throwaway device (the baseline is CPU-only; the device only meters).
	dev := gpu.NewDevice(gpu.K40, nil)
	res.Contigs = contig.Generate(contig.Config{Device: dev}, paths, rs)
	res.ContigStats = contig.Summarize(res.Contigs)
	res.TotalTime += t.Elapsed()
	return res, nil
}
