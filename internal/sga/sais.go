// Package sga implements the baseline string-graph assembler that Table
// VI compares LaSAGNA against: an FM-index (BWT) exact overlapper in the
// style of SGA (Simpson & Durbin 2012).
//
// The paper times SGA's preprocess, index, and overlap stages. This
// package reproduces the same pipeline shape from scratch: reads (both
// strands) are concatenated with separators, a suffix array is built with
// SA-IS, the BWT and occurrence structure form an FM-index, and maximal
// exact suffix-prefix overlaps are found by backward search — one
// backward extension per base, plus one separator extension per candidate
// overlap length.
package sga

// saisInt32 computes the suffix array of T, where T's values lie in
// [0, K) and T ends with a unique, smallest sentinel 0. It is the
// linear-time SA-IS algorithm (induced sorting of LMS substrings with
// recursion on repeated names).
func saisInt32(T []int32, K int) []int32 {
	n := len(T)
	SA := make([]int32, n)
	if n == 0 {
		return SA
	}
	if n == 1 {
		SA[0] = 0
		return SA
	}
	// Suffix types: S-type if T[i:] < T[i+1:], L-type otherwise.
	isS := make([]bool, n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		isS[i] = T[i] < T[i+1] || (T[i] == T[i+1] && isS[i+1])
	}
	isLMS := func(i int32) bool { return i > 0 && isS[i] && !isS[i-1] }

	// Bucket boundaries per symbol.
	bktSize := make([]int32, K)
	for _, c := range T {
		bktSize[c]++
	}
	starts := make([]int32, K)
	ends := make([]int32, K)
	resetStarts := func() {
		var sum int32
		for c := 0; c < K; c++ {
			starts[c] = sum
			sum += bktSize[c]
		}
	}
	resetEnds := func() {
		var sum int32
		for c := 0; c < K; c++ {
			sum += bktSize[c]
			ends[c] = sum
		}
	}

	// induce sorts all suffixes given the LMS suffixes in lmsOrder.
	induce := func(lmsOrder []int32) {
		for i := range SA {
			SA[i] = -1
		}
		resetEnds()
		for i := len(lmsOrder) - 1; i >= 0; i-- {
			j := lmsOrder[i]
			c := T[j]
			ends[c]--
			SA[ends[c]] = j
		}
		resetStarts()
		for i := 0; i < n; i++ {
			j := SA[i]
			if j > 0 && !isS[j-1] {
				c := T[j-1]
				SA[starts[c]] = j - 1
				starts[c]++
			}
		}
		resetEnds()
		for i := n - 1; i >= 0; i-- {
			j := SA[i]
			if j > 0 && isS[j-1] {
				c := T[j-1]
				ends[c]--
				SA[ends[c]] = j - 1
			}
		}
	}

	// LMS positions in text order.
	var lms []int32
	for i := int32(1); i < int32(n); i++ {
		if isLMS(i) {
			lms = append(lms, i)
		}
	}
	if len(lms) == 0 {
		// Strictly decreasing text: the induced sort with no LMS seeds
		// cannot happen because the sentinel is always LMS.
		panic("sga: no LMS positions; text missing sentinel?")
	}
	induce(lms)

	// Collect LMS suffixes in their induced (sorted-substring) order.
	sortedLMS := make([]int32, 0, len(lms))
	for _, j := range SA {
		if isLMS(j) {
			sortedLMS = append(sortedLMS, j)
		}
	}

	// Name LMS substrings by equality.
	lmsEqual := func(a, b int32) bool {
		if a == int32(n-1) || b == int32(n-1) {
			return a == b
		}
		for d := int32(0); ; d++ {
			aLMS := d > 0 && isLMS(a+d)
			bLMS := d > 0 && isLMS(b+d)
			if aLMS && bLMS {
				return true
			}
			if aLMS != bLMS || T[a+d] != T[b+d] {
				return false
			}
		}
	}
	names := make([]int32, n)
	name := int32(0)
	prev := int32(-1)
	for _, j := range sortedLMS {
		if prev >= 0 && !lmsEqual(prev, j) {
			name++
		}
		names[j] = name
		prev = j
	}

	if int(name)+1 < len(lms) {
		// Repeated names: recurse on the reduced string.
		T1 := make([]int32, len(lms))
		for i, pos := range lms {
			T1[i] = names[pos]
		}
		SA1 := saisInt32(T1, int(name)+1)
		ordered := make([]int32, len(lms))
		for i, r := range SA1 {
			ordered[i] = lms[r]
		}
		induce(ordered)
	} else {
		induce(sortedLMS)
	}
	return SA
}

// SuffixArray computes the suffix array of text over symbols [0, K).
// text must end with a unique smallest sentinel (value 0 occurring only
// at the last position).
func SuffixArray(text []byte, K int) []int32 {
	T := make([]int32, len(text))
	for i, c := range text {
		T[i] = int32(c)
	}
	return saisInt32(T, K)
}
