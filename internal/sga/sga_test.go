package sga

import (
	"strings"
	"testing"

	"repro/internal/dna"
	"repro/internal/readsim"
)

// naiveOverlaps brute-forces every suffix-prefix overlap >= minOverlap.
func naiveOverlaps(rs *dna.ReadSet, minOverlap int) map[Edge]bool {
	out := map[Edge]bool{}
	nv := uint32(rs.NumVertices())
	seqs := make([]dna.Seq, nv)
	for v := uint32(0); v < nv; v++ {
		seqs[v] = rs.VertexSeq(v)
	}
	for u := uint32(0); u < nv; u++ {
		for v := uint32(0); v < nv; v++ {
			if u == v {
				continue
			}
			maxL := len(seqs[u]) - 1
			if m := len(seqs[v]) - 1; m < maxL {
				maxL = m
			}
			for l := minOverlap; l <= maxL; l++ {
				if seqs[u][len(seqs[u])-l:].Equal(seqs[v][:l]) {
					out[Edge{U: u, V: v, Len: uint16(l)}] = true
				}
			}
		}
	}
	return out
}

func overlappingReadSet() *dna.ReadSet {
	rs := dna.NewReadSet(4, 64)
	rs.Append(dna.MustParseSeq("ACGTTGCAGG"))
	rs.Append(dna.MustParseSeq("TGCAGGATCC")) // 6-overlap with read 0
	rs.Append(dna.MustParseSeq("GGATCCTTAA")) // 6-overlap with read 1
	rs.Append(dna.MustParseSeq("TTTTTTTTTT")) // isolated
	return rs
}

func TestOverlapsAgainstBruteForce(t *testing.T) {
	rs := overlappingReadSet()
	ix := BuildIndex(rs)
	got := map[Edge]bool{}
	for v := uint32(0); v < uint32(rs.NumVertices()); v++ {
		ix.OverlapsFrom(v, 4, func(e Edge) {
			if got[e] {
				t.Errorf("duplicate edge %+v", e)
			}
			got[e] = true
		})
	}
	want := naiveOverlaps(rs, 4)
	for e := range want {
		if !got[e] {
			t.Errorf("missing edge %+v", e)
		}
	}
	for e := range got {
		if !want[e] {
			t.Errorf("spurious edge %+v", e)
		}
	}
}

func TestOverlapsAgainstBruteForceRandom(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 500, Seed: 5})
	rs := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 30, Coverage: 6, Seed: 6})
	ix := BuildIndex(rs)
	got := map[Edge]bool{}
	for v := uint32(0); v < uint32(rs.NumVertices()); v++ {
		ix.OverlapsFrom(v, 15, func(e Edge) { got[e] = true })
	}
	want := naiveOverlaps(rs, 15)
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("missing edge %+v", e)
		}
	}
}

func TestOverlapsExcludeContainment(t *testing.T) {
	rs := dna.NewReadSet(2, 32)
	rs.Append(dna.MustParseSeq("ACGTACGTACGT")) // contains read 1 entirely
	rs.Append(dna.MustParseSeq("TACGT"))
	ix := BuildIndex(rs)
	ix.OverlapsFrom(0, 3, func(e Edge) {
		if int(e.Len) >= rs.VertexLen(e.V) {
			t.Errorf("containment edge emitted: %+v (target len %d)", e, rs.VertexLen(e.V))
		}
	})
}

func TestAllOverlapsSortedDescending(t *testing.T) {
	rs := overlappingReadSet()
	ix := BuildIndex(rs)
	edges := ix.AllOverlaps(4)
	if len(edges) == 0 {
		t.Fatal("no edges found")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Len > edges[i-1].Len {
			t.Fatal("edges not sorted by descending length")
		}
	}
}

func TestAssembleProducesGenomeSubstrings(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 2000, Seed: 7})
	rs := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 50, Coverage: 10, Seed: 8})
	a, err := NewAssembler(Config{MinOverlap: 25, BreakCycles: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Assemble(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	gs, grc := genome.String(), genome.ReverseComplement().String()
	for i, c := range res.Contigs {
		s := c.String()
		if !strings.Contains(gs, s) && !strings.Contains(grc, s) {
			t.Errorf("contig %d not a genome substring", i)
		}
	}
	if res.ContigStats.N50 < 100 {
		t.Errorf("N50 = %d, expected real assembly", res.ContigStats.N50)
	}
	if res.IndexTime <= 0 || res.OverlapTime <= 0 || res.Edges == 0 {
		t.Errorf("result metadata incomplete: %+v", res)
	}
}

func TestAssemblerErrors(t *testing.T) {
	if _, err := NewAssembler(Config{MinOverlap: 0}); err == nil {
		t.Error("MinOverlap 0 should fail")
	}
	a, _ := NewAssembler(Config{MinOverlap: 5})
	if _, err := a.Assemble(dna.NewReadSet(0, 0)); err == nil {
		t.Error("empty read set should fail")
	}
}

func TestIndexApproxBytes(t *testing.T) {
	rs := overlappingReadSet()
	ix := BuildIndex(rs)
	if ix.ApproxBytes() <= 0 {
		t.Error("index bytes should be positive")
	}
}
