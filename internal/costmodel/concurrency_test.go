package costmodel

import (
	"sync"
	"testing"
)

// TestMeterConcurrentAllCounters audits every meter counter under
// concurrent pipeline workers: totals must be exact (no lost updates)
// regardless of how the charges interleave, which is what makes modeled
// cost independent of the worker count.
func TestMeterConcurrentAllCounters(t *testing.T) {
	const (
		goroutines = 16
		iters      = 1000
	)
	m := NewMeter()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.AddDiskRead(3)
				m.AddDiskWrite(5)
				m.AddNet(7)
				m.AddHostMem(11)
				m.AddDeviceMem(13)
				m.AddDeviceOps(17)
				m.AddPCIe(19)
			}
		}()
	}
	wg.Wait()
	c := m.Snapshot()
	n := int64(goroutines * iters)
	for _, check := range []struct {
		name string
		got  int64
		per  int64
	}{
		{"DiskReadBytes", c.DiskReadBytes, 3},
		{"DiskWriteBytes", c.DiskWriteBytes, 5},
		{"NetBytes", c.NetBytes, 7},
		{"HostMemBytes", c.HostMemBytes, 11},
		{"DeviceMemBytes", c.DeviceMemBytes, 13},
		{"DeviceOps", c.DeviceOps, 17},
		{"PCIeBytes", c.PCIeBytes, 19},
	} {
		if check.got != n*check.per {
			t.Errorf("%s = %d, want %d", check.name, check.got, n*check.per)
		}
	}
}
