// Package costmodel supplies the analytic hardware model that turns
// counted work (disk bytes, device bytes, network bytes) into modeled
// execution time.
//
// The reproduction runs on a CPU with megabyte-scale datasets, so measured
// wall-clock times cannot be compared with the paper's GPU cluster
// numbers. What can be compared is the *shape* of the evaluation, and the
// paper's own analysis attributes that shape to byte counts: sorting is
// I/O-bound (Fig. 8), GPU ranking follows memory bandwidth (Fig. 9), and
// distributed speedup follows aggregate disk bandwidth (Fig. 10). The
// pipeline therefore meters every byte it moves through each tier and this
// package converts those counts into seconds under a configurable hardware
// profile, reproducing the published trends.
package costmodel

import (
	"sync/atomic"
	"time"
)

// Profile describes the modeled machine. Throughputs are bytes/second;
// DeviceOpsPerSec is scalar fused-op throughput used for compute-bound
// kernel portions.
type Profile struct {
	Name            string
	DiskReadBps     float64
	DiskWriteBps    float64
	NetBps          float64 // per-link network bandwidth
	HostMemBps      float64 // host-side merge/copy bandwidth
	DeviceMemBps    float64 // device memory bandwidth (the GPU's headline GB/s)
	DeviceOpsPerSec float64 // device compute throughput
	PCIeBps         float64 // host<->device transfer bandwidth
}

// Counters is a snapshot of metered work. The JSON field names are a
// stable wire format: traces, run manifests, and the bench report all
// round-trip this struct, so renaming a field is a breaking change.
type Counters struct {
	DiskReadBytes  int64 `json:"disk_read_bytes"`
	DiskWriteBytes int64 `json:"disk_write_bytes"`
	NetBytes       int64 `json:"net_bytes"`
	HostMemBytes   int64 `json:"host_mem_bytes"`
	DeviceMemBytes int64 `json:"device_mem_bytes"`
	DeviceOps      int64 `json:"device_ops"`
	PCIeBytes      int64 `json:"pcie_bytes"`
}

// Sub returns c minus o, component-wise; used to isolate a phase's work
// from cumulative counters.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		DiskReadBytes:  c.DiskReadBytes - o.DiskReadBytes,
		DiskWriteBytes: c.DiskWriteBytes - o.DiskWriteBytes,
		NetBytes:       c.NetBytes - o.NetBytes,
		HostMemBytes:   c.HostMemBytes - o.HostMemBytes,
		DeviceMemBytes: c.DeviceMemBytes - o.DeviceMemBytes,
		DeviceOps:      c.DeviceOps - o.DeviceOps,
		PCIeBytes:      c.PCIeBytes - o.PCIeBytes,
	}
}

// Add returns c plus o, component-wise.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		DiskReadBytes:  c.DiskReadBytes + o.DiskReadBytes,
		DiskWriteBytes: c.DiskWriteBytes + o.DiskWriteBytes,
		NetBytes:       c.NetBytes + o.NetBytes,
		HostMemBytes:   c.HostMemBytes + o.HostMemBytes,
		DeviceMemBytes: c.DeviceMemBytes + o.DeviceMemBytes,
		DeviceOps:      c.DeviceOps + o.DeviceOps,
		PCIeBytes:      c.PCIeBytes + o.PCIeBytes,
	}
}

// Breakdown is the modeled seconds each tier contributes under a profile.
// The trace attaches one per span and the final report prints one for the
// whole run; both therefore attribute time with the same arithmetic as
// Time itself. JSON names are stable for the same reason as Counters'.
type Breakdown struct {
	DiskReadSec  float64 `json:"disk_read_sec"`
	DiskWriteSec float64 `json:"disk_write_sec"`
	NetSec       float64 `json:"net_sec"`
	HostMemSec   float64 `json:"host_mem_sec"`
	DeviceMemSec float64 `json:"device_mem_sec"`
	DeviceOpsSec float64 `json:"device_ops_sec"`
	PCIeSec      float64 `json:"pcie_sec"`
}

// Total sums the per-tier seconds; Counters.Time is Total over the same
// breakdown, so the parts always reconcile with the whole.
func (b Breakdown) Total() float64 {
	return b.DiskReadSec + b.DiskWriteSec + b.NetSec + b.HostMemSec +
		b.DeviceMemSec + b.DeviceOpsSec + b.PCIeSec
}

// Breakdown attributes the counted work to per-tier modeled seconds under
// profile p.
func (c Counters) Breakdown(p Profile) Breakdown {
	return Breakdown{
		DiskReadSec:  ratio(c.DiskReadBytes, p.DiskReadBps),
		DiskWriteSec: ratio(c.DiskWriteBytes, p.DiskWriteBps),
		NetSec:       ratio(c.NetBytes, p.NetBps),
		HostMemSec:   ratio(c.HostMemBytes, p.HostMemBps),
		DeviceMemSec: ratio(c.DeviceMemBytes, p.DeviceMemBps),
		DeviceOpsSec: ratio(c.DeviceOps, p.DeviceOpsPerSec),
		PCIeSec:      ratio(c.PCIeBytes, p.PCIeBps),
	}
}

// Time converts the counted work into modeled seconds under profile p.
// Tiers are summed: the pipeline overlaps little across tiers (the paper's
// two-level streaming model alternates transfer and compute), and an
// additive model preserves every trend the evaluation relies on.
func (c Counters) Time(p Profile) time.Duration {
	return time.Duration(c.Breakdown(p).Total() * float64(time.Second))
}

func ratio(n int64, bps float64) float64 {
	if n == 0 || bps <= 0 {
		return 0
	}
	return float64(n) / bps
}

// Meter accumulates work counts. It is safe for concurrent use; the
// simulated device, the disk I/O layer, and the cluster transport all feed
// the same meter so phase boundaries see one coherent snapshot.
type Meter struct {
	diskRead  atomic.Int64
	diskWrite atomic.Int64
	net       atomic.Int64
	hostMem   atomic.Int64
	devMem    atomic.Int64
	devOps    atomic.Int64
	pcie      atomic.Int64
}

// NewMeter returns a zeroed meter.
func NewMeter() *Meter { return &Meter{} }

// AddDiskRead records n bytes read from disk.
func (m *Meter) AddDiskRead(n int64) { m.diskRead.Add(n) }

// AddDiskWrite records n bytes written to disk.
func (m *Meter) AddDiskWrite(n int64) { m.diskWrite.Add(n) }

// AddNet records n bytes crossing the network.
func (m *Meter) AddNet(n int64) { m.net.Add(n) }

// AddHostMem records n bytes of host-side copy/merge traffic.
func (m *Meter) AddHostMem(n int64) { m.hostMem.Add(n) }

// AddDeviceMem records n bytes of device-memory traffic.
func (m *Meter) AddDeviceMem(n int64) { m.devMem.Add(n) }

// AddDeviceOps records n device compute operations.
func (m *Meter) AddDeviceOps(n int64) { m.devOps.Add(n) }

// AddPCIe records n bytes transferred between host and device.
func (m *Meter) AddPCIe(n int64) { m.pcie.Add(n) }

// Snapshot returns the current cumulative counters.
func (m *Meter) Snapshot() Counters {
	return Counters{
		DiskReadBytes:  m.diskRead.Load(),
		DiskWriteBytes: m.diskWrite.Load(),
		NetBytes:       m.net.Load(),
		HostMemBytes:   m.hostMem.Load(),
		DeviceMemBytes: m.devMem.Load(),
		DeviceOps:      m.devOps.Load(),
		PCIeBytes:      m.pcie.Load(),
	}
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.diskRead.Store(0)
	m.diskWrite.Store(0)
	m.net.Store(0)
	m.hostMem.Store(0)
	m.devMem.Store(0)
	m.devOps.Store(0)
	m.pcie.Store(0)
}

const (
	kib = 1024.0
	mib = kib * 1024
	gib = mib * 1024
)

// DefaultDisk models the local scratch disks of the paper's testbeds
// (spinning disks on QB2/SuperMic nodes, ~150 MB/s sequential).
var DefaultDisk = struct{ ReadBps, WriteBps float64 }{150 * mib, 140 * mib}

// SSDDisk models the flash-backed scratch of the NVIDIA PSG nodes used in
// the GPU-comparison study (Fig. 9); the paper notes LaSAGNA benefits
// from "local disks and faster media such as solid-state drives".
var SSDDisk = struct{ ReadBps, WriteBps float64 }{1200 * mib, 1000 * mib}

// InfiniBand56G is the 56 Gb/s FDR InfiniBand used on the SuperMic cluster.
const InfiniBand56G = 56.0 / 8.0 * gib

// HostMemBps is a conservative host memory copy bandwidth.
const HostMemBps = 8 * gib

// PCIe3Bps is the effective PCIe 3.0 x16 transfer rate.
const PCIe3Bps = 12 * gib
