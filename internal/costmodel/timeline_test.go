package costmodel

import (
	"math"
	"sync"
	"testing"
)

// unitProfile gives every tier a throughput of 100 units/second, so a
// charge of 100 is exactly one modeled second on any tier.
func unitProfile() Profile {
	return Profile{
		DiskReadBps:     100,
		DiskWriteBps:    100,
		NetBps:          100,
		HostMemBps:      100,
		DeviceMemBps:    100,
		DeviceOpsPerSec: 100,
		PCIeBps:         100,
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTimelineSingleLineMatchesAdditive(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	tl := lg.NewTimeline()
	ln := tl.Line("only")
	ln.Charge(TierDiskRead, 100)
	ln.Charge(TierDeviceOps, 200)
	ln.Charge(TierDiskWrite, 100)
	if got := tl.SerialSeconds(); !almost(got, 4) {
		t.Fatalf("serial = %v, want 4", got)
	}
	if got := tl.Makespan(); !almost(got, 4) {
		t.Fatalf("makespan = %v, want 4 (single line has no overlap)", got)
	}
	if got := tl.SavedSeconds(); !almost(got, 0) {
		t.Fatalf("saved = %v, want 0", got)
	}
}

func TestTimelineCrossTierOverlap(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	tl := lg.NewTimeline()
	io := tl.Line("io")
	cmp := tl.Line("compute")
	io.Charge(TierDiskRead, 300)   // [0, 3)
	cmp.Charge(TierDeviceOps, 200) // [0, 2): overlaps the read entirely
	if got := tl.SerialSeconds(); !almost(got, 5) {
		t.Fatalf("serial = %v, want 5", got)
	}
	if got := tl.Makespan(); !almost(got, 3) {
		t.Fatalf("makespan = %v, want 3 (compute hidden under the read)", got)
	}
	if got := tl.SavedSeconds(); !almost(got, 2) {
		t.Fatalf("saved = %v, want 2", got)
	}
}

// A tier is a single engine: two lines charging the same tier must not
// overlap each other, so nothing is saved.
func TestTimelineSameTierSerializes(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	tl := lg.NewTimeline()
	a := tl.Line("a")
	b := tl.Line("b")
	a.Charge(TierPCIe, 100)
	s, e := b.Charge(TierPCIe, 100)
	if !almost(s, 1) || !almost(e, 2) {
		t.Fatalf("second PCIe charge placed at [%v, %v), want [1, 2)", s, e)
	}
	if got := tl.Makespan(); !almost(got, 2) {
		t.Fatalf("makespan = %v, want 2 (same-tier charges serialize)", got)
	}
	if got := tl.SavedSeconds(); !almost(got, 0) {
		t.Fatalf("saved = %v, want 0", got)
	}
}

func TestLineWaitDelaysNextCharge(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	tl := lg.NewTimeline()
	io := tl.Line("io")
	cmp := tl.Line("compute")
	_, readEnd := io.Charge(TierDiskRead, 250)
	cmp.Wait(readEnd)
	s, _ := cmp.Charge(TierDeviceOps, 100)
	if !almost(s, 2.5) {
		t.Fatalf("dependent charge starts at %v, want 2.5", s)
	}
	// Waiting backwards must not rewind the cursor.
	cmp.Wait(0)
	if got := cmp.Cursor(); !almost(got, 3.5) {
		t.Fatalf("cursor after no-op Wait = %v, want 3.5", got)
	}
}

func TestLineForkStartsAtParentCursor(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	tl := lg.NewTimeline()
	parent := tl.Line("parent")
	parent.Charge(TierDiskRead, 100)
	child := parent.Fork("child")
	if got := child.Cursor(); !almost(got, 1) {
		t.Fatalf("forked line starts at %v, want parent cursor 1", got)
	}
	child.Charge(TierDeviceOps, 100)
	parent.Wait(child.Cursor())
	if got := parent.Cursor(); !almost(got, 2) {
		t.Fatalf("parent after rejoin = %v, want 2", got)
	}
}

func TestTimelineSpansRecorded(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	tl := lg.NewTimeline()
	ln := tl.Line("l")
	ln.Charge(TierDiskRead, 100)
	ln.Charge(TierDiskRead, 0) // zero-duration charges record no span
	ln.Charge(TierPCIe, 200)
	spans := ln.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	want := []Span{
		{Tier: TierDiskRead, Start: 0, End: 1},
		{Tier: TierPCIe, Start: 1, End: 3},
	}
	for i, w := range want {
		if spans[i].Tier != w.Tier || !almost(spans[i].Start, w.Start) || !almost(spans[i].End, w.End) {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], w)
		}
	}
}

func TestLedgerAggregatesUnits(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	for i := 0; i < 3; i++ {
		tl := lg.NewTimeline()
		tl.Line("io").Charge(TierDiskRead, 200)
		tl.Line("cmp").Charge(TierDeviceOps, 100)
		tl.Commit()
		tl.Commit() // idempotent: double commit must not double-count
	}
	if got := lg.Units(); got != 3 {
		t.Fatalf("units = %d, want 3", got)
	}
	if got := lg.SerialSeconds(); !almost(got, 9) {
		t.Fatalf("serial = %v, want 9", got)
	}
	if got := lg.OverlappedSeconds(); !almost(got, 6) {
		t.Fatalf("overlapped = %v, want 6", got)
	}
	if got := lg.SavedSeconds(); !almost(got, 3) {
		t.Fatalf("saved = %v, want 3", got)
	}
	if got := lg.OverlapRatio(); !almost(got, 1.0/3.0) {
		t.Fatalf("ratio = %v, want 1/3", got)
	}
	if got := lg.TierBusySeconds(TierDiskRead); !almost(got, 6) {
		t.Fatalf("disk-read busy = %v, want 6", got)
	}
	if got := lg.TierBusySeconds(TierDeviceOps); !almost(got, 3) {
		t.Fatalf("device-ops busy = %v, want 3", got)
	}
}

// The makespan can never beat the busiest tier: overlap hides latency
// across tiers, not bandwidth within one.
func TestMakespanBoundedByBusiestTier(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	tl := lg.NewTimeline()
	lines := []*Line{tl.Line("a"), tl.Line("b"), tl.Line("c")}
	amounts := []int64{700, 400, 300}
	for i, ln := range lines {
		ln.Charge(TierDiskRead, amounts[i])
		ln.Charge(TierDeviceOps, amounts[2-i])
	}
	var busiest float64
	for tier := 0; tier < NumTiers; tier++ {
		tl.Commit()
		if b := lg.TierBusySeconds(Tier(tier)); b > busiest {
			busiest = b
		}
	}
	if mk := lg.OverlappedSeconds(); mk < busiest-1e-9 {
		t.Fatalf("makespan %v beats busiest tier %v", mk, busiest)
	}
}

func TestNilLedgerIsInert(t *testing.T) {
	var lg *OverlapLedger
	if lg.SerialSeconds() != 0 || lg.OverlappedSeconds() != 0 || lg.SavedSeconds() != 0 ||
		lg.OverlapRatio() != 0 || lg.Units() != 0 || lg.TierBusySeconds(TierPCIe) != 0 {
		t.Fatal("nil ledger reported nonzero accounting")
	}
	tl := lg.NewTimeline()
	if tl != nil {
		t.Fatal("nil ledger returned non-nil timeline")
	}
	tl.Commit()
	ln := tl.Line("x")
	if ln != nil {
		t.Fatal("nil timeline returned non-nil line")
	}
	ln.Charge(TierDiskRead, 100)
	ln.Wait(5)
	if ln.Fork("y") != nil {
		t.Fatal("nil line forked non-nil line")
	}
	if ln.Cursor() != 0 || ln.Spans() != nil || ln.Name() != "" {
		t.Fatal("nil line reported state")
	}
	if tl.Makespan() != 0 || tl.SerialSeconds() != 0 || tl.SavedSeconds() != 0 {
		t.Fatal("nil timeline reported nonzero accounting")
	}
}

// Concurrent units committing into one ledger must total exactly the sum
// of their serial charges — the worker-count determinism contract.
func TestLedgerConcurrentCommits(t *testing.T) {
	lg := NewOverlapLedger(unitProfile())
	const units = 32
	var wg sync.WaitGroup
	for i := 0; i < units; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl := lg.NewTimeline()
			tl.Line("io").Charge(TierDiskRead, 100)
			tl.Line("cmp").Charge(TierDeviceOps, 100)
			tl.Commit()
		}()
	}
	wg.Wait()
	if got := lg.Units(); got != units {
		t.Fatalf("units = %d, want %d", got, units)
	}
	if got := lg.SerialSeconds(); !almost(got, 2*units) {
		t.Fatalf("serial = %v, want %v", got, 2*units)
	}
	if got := lg.OverlappedSeconds(); !almost(got, units) {
		t.Fatalf("overlapped = %v, want %v", got, units)
	}
}
