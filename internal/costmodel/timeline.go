// Overlap-aware time accounting. The additive model in Counters.Time
// charges every tier sequentially; real GPU pipelines overlap disk reads,
// PCIe transfers, and kernel execution via CUDA streams. This file models
// that overlap: streamed code charges its work onto per-stream timelines
// (Line) inside a unit of work (Timeline), and the unit's modeled duration
// becomes the *makespan* over lines instead of the sum of charges. The
// difference — serial minus makespan — is the modeled overlap saving,
// accumulated in an OverlapLedger that the pipeline subtracts from the
// additive phase model.
//
// Two invariants keep the model honest and deterministic:
//
//   - A tier is a single engine. Charges against one tier never overlap
//     each other (tierAvail serializes them), so overlapping streams can
//     hide latency across tiers but never exceed any one tier's bandwidth.
//     The makespan is therefore always >= the busiest tier's total, and
//     the saving never exceeds what the hardware could physically hide.
//   - Within one Timeline each tier should be driven by a single line
//     (the streamed call sites follow this discipline). Then every span's
//     placement depends only on program order on its own line plus
//     explicit Wait dependencies, so modeled time is independent of
//     goroutine scheduling — the same determinism contract the meter has.
//
// Everything is nil-safe: a nil *OverlapLedger yields nil Timelines and
// Lines whose methods no-op, so the serial path (Streams=off) pays nothing
// and models exactly the additive sum.
package costmodel

import "sync"

// Tier identifies one modeled hardware lane of a Profile.
type Tier int

const (
	TierDiskRead Tier = iota
	TierDiskWrite
	TierNet
	TierHostMem
	TierDeviceMem
	TierDeviceOps
	TierPCIe
	numTiers
)

// NumTiers is the number of modeled tiers.
const NumTiers = int(numTiers)

func (t Tier) String() string {
	switch t {
	case TierDiskRead:
		return "disk_read"
	case TierDiskWrite:
		return "disk_write"
	case TierNet:
		return "net"
	case TierHostMem:
		return "host_mem"
	case TierDeviceMem:
		return "device_mem"
	case TierDeviceOps:
		return "device_ops"
	case TierPCIe:
		return "pcie"
	}
	return "unknown"
}

// tierRate returns the profile's throughput for a tier: bytes/second for
// the memory and I/O tiers, operations/second for TierDeviceOps — the same
// denominators Counters.Breakdown uses, so a single-line timeline
// reproduces the additive model exactly.
func (p Profile) tierRate(t Tier) float64 {
	switch t {
	case TierDiskRead:
		return p.DiskReadBps
	case TierDiskWrite:
		return p.DiskWriteBps
	case TierNet:
		return p.NetBps
	case TierHostMem:
		return p.HostMemBps
	case TierDeviceMem:
		return p.DeviceMemBps
	case TierDeviceOps:
		return p.DeviceOpsPerSec
	case TierPCIe:
		return p.PCIeBps
	}
	return 0
}

// OverlapLedger accumulates modeled overlap across units of work. One
// ledger serves a whole pipeline run; SortFile and Reduce calls each
// commit one Timeline into it. Units aggregate additively (unit makespans
// sum), which keeps the total independent of how many workers ran the
// units concurrently — the same worker-count determinism the meter
// guarantees.
type OverlapLedger struct {
	prof Profile

	mu         sync.Mutex
	serial     float64
	overlapped float64
	busy       [numTiers]float64
	units      int64
}

// NewOverlapLedger returns a ledger modeling overlap under profile p.
func NewOverlapLedger(p Profile) *OverlapLedger {
	return &OverlapLedger{prof: p}
}

// NewTimeline opens a timeline for one unit of streamed work. Returns nil
// (whose methods all no-op) on a nil ledger.
func (lg *OverlapLedger) NewTimeline() *Timeline {
	if lg == nil {
		return nil
	}
	return &Timeline{ledger: lg, prof: lg.prof}
}

// SerialSeconds returns the additive (no-overlap) seconds of all committed
// timelines.
func (lg *OverlapLedger) SerialSeconds() float64 {
	if lg == nil {
		return 0
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.serial
}

// OverlappedSeconds returns the summed makespans of all committed
// timelines.
func (lg *OverlapLedger) OverlappedSeconds() float64 {
	if lg == nil {
		return 0
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.overlapped
}

// SavedSeconds returns the modeled seconds hidden by overlap: the additive
// total minus the summed makespans. Never negative.
func (lg *OverlapLedger) SavedSeconds() float64 {
	if lg == nil {
		return 0
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.serial - lg.overlapped
}

// OverlapRatio returns saved/serial in [0, 1): the fraction of streamed
// modeled time hidden by overlap. Zero when nothing was streamed.
func (lg *OverlapLedger) OverlapRatio() float64 {
	if lg == nil {
		return 0
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.serial <= 0 {
		return 0
	}
	return (lg.serial - lg.overlapped) / lg.serial
}

// TierBusySeconds returns the total busy seconds charged against tier t
// across committed timelines.
func (lg *OverlapLedger) TierBusySeconds(t Tier) float64 {
	if lg == nil || t < 0 || t >= numTiers {
		return 0
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.busy[t]
}

// Units returns the number of committed timelines.
func (lg *OverlapLedger) Units() int64 {
	if lg == nil {
		return 0
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.units
}

func (lg *OverlapLedger) commit(serial, makespan float64, busy [numTiers]float64) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.serial += serial
	lg.overlapped += makespan
	for i := range busy {
		lg.busy[i] += busy[i]
	}
	lg.units++
}

// Timeline is the modeled schedule of one unit of streamed work (one
// external sort, one reduce). Lines are its parallel streams; charges on
// different lines may overlap in modeled time, charges against the same
// tier never do.
type Timeline struct {
	ledger *OverlapLedger
	prof   Profile

	mu        sync.Mutex
	tierAvail [numTiers]float64
	lines     []*Line
	serial    float64
	busy      [numTiers]float64
	committed bool
}

// Line opens a new modeled stream starting at time zero. Returns nil on a
// nil timeline.
func (tl *Timeline) Line(name string) *Line {
	if tl == nil {
		return nil
	}
	l := &Line{tl: tl, name: name}
	tl.mu.Lock()
	tl.lines = append(tl.lines, l)
	tl.mu.Unlock()
	return l
}

// Makespan returns the latest cursor over all lines: the unit's modeled
// duration with overlap.
func (tl *Timeline) Makespan() float64 {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.makespanLocked()
}

func (tl *Timeline) makespanLocked() float64 {
	var m float64
	for _, l := range tl.lines {
		if l.cursor > m {
			m = l.cursor
		}
	}
	return m
}

// SerialSeconds returns the additive sum of every charge on the timeline.
func (tl *Timeline) SerialSeconds() float64 {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.serial
}

// SavedSeconds returns serial minus makespan for this unit so far.
func (tl *Timeline) SavedSeconds() float64 {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.serial - tl.makespanLocked()
}

// Commit folds the unit into its ledger. Idempotent; nil-safe. Call it
// once all streams of the unit have synced.
func (tl *Timeline) Commit() {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	if tl.committed {
		tl.mu.Unlock()
		return
	}
	tl.committed = true
	serial, makespan, busy := tl.serial, tl.makespanLocked(), tl.busy
	tl.mu.Unlock()
	tl.ledger.commit(serial, makespan, busy)
}

// Span is one modeled busy interval on a line.
type Span struct {
	Tier       Tier
	Start, End float64 // seconds from the unit's start
}

// Line is one modeled stream within a Timeline: an ordered sequence of
// charges, each starting no earlier than the previous charge on the line
// and no earlier than the tier's previous release.
type Line struct {
	tl     *Timeline
	name   string
	cursor float64
	spans  []Span
}

// Name returns the line's label.
func (l *Line) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Charge schedules amount units of work (bytes, or ops for
// TierDeviceOps) on tier t at the earliest time both this line and the
// tier are free, advancing the line's cursor past it. It returns the
// modeled [start, end) interval. Nil-safe: a nil line returns zeros and
// records nothing.
func (l *Line) Charge(t Tier, amount int64) (start, end float64) {
	if l == nil {
		return 0, 0
	}
	tl := l.tl
	tl.mu.Lock()
	defer tl.mu.Unlock()
	dur := ratio(amount, tl.prof.tierRate(t))
	start = l.cursor
	if t >= 0 && t < numTiers && tl.tierAvail[t] > start {
		start = tl.tierAvail[t]
	}
	end = start + dur
	l.cursor = end
	if t >= 0 && t < numTiers {
		tl.tierAvail[t] = end
		tl.busy[t] += dur
	}
	tl.serial += dur
	if dur > 0 {
		l.spans = append(l.spans, Span{Tier: t, Start: start, End: end})
	}
	return start, end
}

// Wait delays the line's next charge to at least modeled time t: a
// cross-stream dependency (this line consumes something another line
// produces at t). Nil-safe.
func (l *Line) Wait(t float64) {
	if l == nil {
		return
	}
	l.tl.mu.Lock()
	if t > l.cursor {
		l.cursor = t
	}
	l.tl.mu.Unlock()
}

// Fork opens a new line in the same timeline starting at this line's
// current position — a nested burst of parallelism (e.g. the device
// chunk pipeline inside one host block) whose sub-streams must not be
// modeled as overlapping work that preceded them. Rejoin with
// l.Wait(fork.Cursor()). Nil-safe.
func (l *Line) Fork(name string) *Line {
	if l == nil {
		return nil
	}
	tl := l.tl
	tl.mu.Lock()
	nl := &Line{tl: tl, name: name, cursor: l.cursor}
	tl.lines = append(tl.lines, nl)
	tl.mu.Unlock()
	return nl
}

// Cursor returns the line's current modeled time.
func (l *Line) Cursor() float64 {
	if l == nil {
		return 0
	}
	l.tl.mu.Lock()
	defer l.tl.mu.Unlock()
	return l.cursor
}

// Spans returns a copy of the line's recorded busy intervals.
func (l *Line) Spans() []Span {
	if l == nil {
		return nil
	}
	l.tl.mu.Lock()
	defer l.tl.mu.Unlock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return out
}
