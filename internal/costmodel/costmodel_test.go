package costmodel

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func testProfile() Profile {
	return Profile{
		Name:            "test",
		DiskReadBps:     100,
		DiskWriteBps:    50,
		NetBps:          200,
		HostMemBps:      1000,
		DeviceMemBps:    2000,
		DeviceOpsPerSec: 4000,
		PCIeBps:         500,
	}
}

func TestMeterSnapshot(t *testing.T) {
	m := NewMeter()
	m.AddDiskRead(100)
	m.AddDiskWrite(50)
	m.AddNet(20)
	m.AddHostMem(10)
	m.AddDeviceMem(40)
	m.AddDeviceOps(8)
	m.AddPCIe(5)
	c := m.Snapshot()
	want := Counters{100, 50, 20, 10, 40, 8, 5}
	if c != want {
		t.Errorf("Snapshot = %+v, want %+v", c, want)
	}
	m.Reset()
	if m.Snapshot() != (Counters{}) {
		t.Error("Reset should zero all counters")
	}
}

func TestCountersTimeAdditive(t *testing.T) {
	p := testProfile()
	c := Counters{DiskReadBytes: 100, DiskWriteBytes: 50}
	// 100/100 + 50/50 = 2 seconds.
	if got := c.Time(p); got != 2*time.Second {
		t.Errorf("Time = %v, want 2s", got)
	}
	c = Counters{DeviceMemBytes: 2000, DeviceOps: 4000, PCIeBytes: 500}
	// 1 + 1 + 1 = 3 seconds.
	if got := c.Time(p); got != 3*time.Second {
		t.Errorf("Time = %v, want 3s", got)
	}
}

func TestTimeZeroThroughputIgnored(t *testing.T) {
	c := Counters{NetBytes: 1000}
	if got := c.Time(Profile{}); got != 0 {
		t.Errorf("Time with zero profile = %v, want 0", got)
	}
}

func TestCountersSubAdd(t *testing.T) {
	a := Counters{100, 90, 80, 70, 60, 50, 40}
	b := Counters{10, 9, 8, 7, 6, 5, 4}
	if got := a.Sub(b); got != (Counters{90, 81, 72, 63, 54, 45, 36}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := b.Add(b); got != (Counters{20, 18, 16, 14, 12, 10, 8}) {
		t.Errorf("Add = %+v", got)
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddDiskRead(1)
				m.AddDeviceOps(2)
			}
		}()
	}
	wg.Wait()
	c := m.Snapshot()
	if c.DiskReadBytes != 8000 || c.DeviceOps != 16000 {
		t.Errorf("Snapshot = %+v", c)
	}
}

func TestBandwidthConstants(t *testing.T) {
	if InfiniBand56G <= 6*gib || InfiniBand56G >= 8*gib {
		t.Errorf("InfiniBand56G = %v, expected ~7 GiB/s", InfiniBand56G)
	}
	if DefaultDisk.ReadBps <= DefaultDisk.WriteBps-20*mib {
		t.Error("disk read should be at least comparable to write")
	}
}

// TestCountersJSONRoundTrip pins the wire format: the snake_case field
// names that traces, run manifests, and the bench report all share, and
// lossless value round-tripping.
func TestCountersJSONRoundTrip(t *testing.T) {
	c := Counters{
		DiskReadBytes:  1,
		DiskWriteBytes: 2,
		NetBytes:       3,
		HostMemBytes:   4,
		DeviceMemBytes: 5,
		DeviceOps:      6,
		PCIeBytes:      7,
	}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"disk_read_bytes", "disk_write_bytes", "net_bytes", "host_mem_bytes",
		"device_mem_bytes", "device_ops", "pcie_bytes",
	} {
		if !strings.Contains(string(raw), `"`+field+`"`) {
			t.Errorf("Counters JSON missing field %q: %s", field, raw)
		}
	}
	var back Counters
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("round-trip = %+v, want %+v", back, c)
	}
}

// TestBreakdownReconciles: Breakdown's per-tier seconds must sum to the
// same total Time derives, and each tier must equal bytes/bandwidth.
func TestBreakdownReconciles(t *testing.T) {
	p := testProfile()
	c := Counters{
		DiskReadBytes:  300,
		DiskWriteBytes: 100,
		NetBytes:       400,
		HostMemBytes:   2000,
		DeviceMemBytes: 1000,
		DeviceOps:      8000,
		PCIeBytes:      250,
	}
	b := c.Breakdown(p)
	wants := []struct {
		name string
		got  float64
		want float64
	}{
		{"DiskReadSec", b.DiskReadSec, 3},
		{"DiskWriteSec", b.DiskWriteSec, 2},
		{"NetSec", b.NetSec, 2},
		{"HostMemSec", b.HostMemSec, 2},
		{"DeviceMemSec", b.DeviceMemSec, 0.5},
		{"DeviceOpsSec", b.DeviceOpsSec, 2},
		{"PCIeSec", b.PCIeSec, 0.5},
	}
	for _, w := range wants {
		if w.got != w.want {
			t.Errorf("%s = %v, want %v", w.name, w.got, w.want)
		}
	}
	if got := b.Total(); got != 12 {
		t.Errorf("Total = %v, want 12", got)
	}
	if got, want := c.Time(p), time.Duration(b.Total()*float64(time.Second)); got != want {
		t.Errorf("Time = %v, Breakdown total as duration = %v; must match", got, want)
	}
}

// TestBreakdownJSON pins the _sec wire names the trace args use.
func TestBreakdownJSON(t *testing.T) {
	b := Counters{DiskReadBytes: 100}.Breakdown(testProfile())
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"disk_read_sec", "disk_write_sec", "net_sec", "host_mem_sec",
		"device_mem_sec", "device_ops_sec", "pcie_sec",
	} {
		if !strings.Contains(string(raw), `"`+field+`"`) {
			t.Errorf("Breakdown JSON missing field %q: %s", field, raw)
		}
	}
	var back Breakdown
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != b {
		t.Errorf("round-trip = %+v, want %+v", back, b)
	}
}
