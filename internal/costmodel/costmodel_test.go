package costmodel

import (
	"sync"
	"testing"
	"time"
)

func testProfile() Profile {
	return Profile{
		Name:            "test",
		DiskReadBps:     100,
		DiskWriteBps:    50,
		NetBps:          200,
		HostMemBps:      1000,
		DeviceMemBps:    2000,
		DeviceOpsPerSec: 4000,
		PCIeBps:         500,
	}
}

func TestMeterSnapshot(t *testing.T) {
	m := NewMeter()
	m.AddDiskRead(100)
	m.AddDiskWrite(50)
	m.AddNet(20)
	m.AddHostMem(10)
	m.AddDeviceMem(40)
	m.AddDeviceOps(8)
	m.AddPCIe(5)
	c := m.Snapshot()
	want := Counters{100, 50, 20, 10, 40, 8, 5}
	if c != want {
		t.Errorf("Snapshot = %+v, want %+v", c, want)
	}
	m.Reset()
	if m.Snapshot() != (Counters{}) {
		t.Error("Reset should zero all counters")
	}
}

func TestCountersTimeAdditive(t *testing.T) {
	p := testProfile()
	c := Counters{DiskReadBytes: 100, DiskWriteBytes: 50}
	// 100/100 + 50/50 = 2 seconds.
	if got := c.Time(p); got != 2*time.Second {
		t.Errorf("Time = %v, want 2s", got)
	}
	c = Counters{DeviceMemBytes: 2000, DeviceOps: 4000, PCIeBytes: 500}
	// 1 + 1 + 1 = 3 seconds.
	if got := c.Time(p); got != 3*time.Second {
		t.Errorf("Time = %v, want 3s", got)
	}
}

func TestTimeZeroThroughputIgnored(t *testing.T) {
	c := Counters{NetBytes: 1000}
	if got := c.Time(Profile{}); got != 0 {
		t.Errorf("Time with zero profile = %v, want 0", got)
	}
}

func TestCountersSubAdd(t *testing.T) {
	a := Counters{100, 90, 80, 70, 60, 50, 40}
	b := Counters{10, 9, 8, 7, 6, 5, 4}
	if got := a.Sub(b); got != (Counters{90, 81, 72, 63, 54, 45, 36}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := b.Add(b); got != (Counters{20, 18, 16, 14, 12, 10, 8}) {
		t.Errorf("Add = %+v", got)
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddDiskRead(1)
				m.AddDeviceOps(2)
			}
		}()
	}
	wg.Wait()
	c := m.Snapshot()
	if c.DiskReadBytes != 8000 || c.DeviceOps != 16000 {
		t.Errorf("Snapshot = %+v", c)
	}
}

func TestBandwidthConstants(t *testing.T) {
	if InfiniBand56G <= 6*gib || InfiniBand56G >= 8*gib {
		t.Errorf("InfiniBand56G = %v, expected ~7 GiB/s", InfiniBand56G)
	}
	if DefaultDisk.ReadBps <= DefaultDisk.WriteBps-20*mib {
		t.Error("disk read should be at least comparable to write")
	}
}
