package kvio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kv"
)

// FuzzKVReader feeds arbitrary bytes through the reader path as if they
// were a partition file left behind by a crashed or misbehaving writer.
// The invariants: never panic, never silently return fewer pairs than the
// file claims, reject any size that is not a whole number of records, and
// decode whole records byte-exactly.
func FuzzKVReader(f *testing.F) {
	f.Add([]byte{})                                   // empty file
	f.Add(make([]byte, kv.PairBytes))                 // one zero pair
	f.Add(make([]byte, 3*kv.PairBytes))               // several pairs
	f.Add(make([]byte, kv.PairBytes-1))               // short of one record
	f.Add(make([]byte, 2*kv.PairBytes+7))             // torn tail
	f.Add(bytes.Repeat([]byte{0xa5}, 4*kv.PairBytes)) // patterned payload

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.kv")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		wantPairs := int64(len(data)) / kv.PairBytes
		corrupt := int64(len(data))%kv.PairBytes != 0

		n, err := CountFile(path)
		if corrupt {
			if err == nil {
				t.Fatalf("CountFile accepted corrupt size %d", len(data))
			}
		} else if err != nil || n != wantPairs {
			t.Fatalf("CountFile = %d, %v; want %d, nil", n, err, wantPairs)
		}

		r, err := NewReader(path, nil)
		if corrupt {
			if err == nil {
				r.Close()
				t.Fatalf("NewReader accepted corrupt size %d", len(data))
			}
			return
		}
		if err != nil {
			t.Fatalf("NewReader on valid size %d: %v", len(data), err)
		}
		defer r.Close()
		if r.Count() != wantPairs {
			t.Fatalf("Count = %d, want %d", r.Count(), wantPairs)
		}

		var got int64
		buf := make([]kv.Pair, 7)
		for {
			k, err := r.ReadBatch(buf)
			for i := 0; i < k; i++ {
				var rec [kv.PairBytes]byte
				buf[i].Encode(rec[:])
				off := (got + int64(i)) * kv.PairBytes
				if !bytes.Equal(rec[:], data[off:off+kv.PairBytes]) {
					t.Fatalf("pair %d did not round-trip", got+int64(i))
				}
			}
			got += int64(k)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("ReadBatch after %d pairs: %v", got, err)
			}
		}
		if got != wantPairs {
			t.Fatalf("read %d pairs, want %d", got, wantPairs)
		}
		if r.Remaining() != 0 {
			t.Fatalf("Remaining = %d after drain", r.Remaining())
		}
	})
}
