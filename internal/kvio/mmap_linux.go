//go:build linux

package kvio

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. A zero-length or oversized file, or
// any mmap failure, reports ok=false and the caller falls back to the
// block reader.
func mapFile(f *os.File, size int64) (data []byte, ok bool) {
	if size <= 0 || int64(int(size)) != size {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return data, true
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }
