//go:build !linux

package kvio

import "os"

// mapFile always falls back to the block reader off Linux.
func mapFile(f *os.File, size int64) (data []byte, ok bool) { return nil, false }

func unmapFile(b []byte) error { return nil }
