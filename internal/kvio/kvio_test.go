package kvio

import (
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/kv"
)

func randomPairs(rng *rand.Rand, n int) []kv.Pair {
	ps := make([]kv.Pair, n)
	for i := range ps {
		ps[i] = kv.Pair{Key: kv.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, Val: rng.Uint32()}
	}
	return ps
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pairs.kv")
	rng := rand.New(rand.NewSource(1))
	want := randomPairs(rng, 1000)

	w, err := NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range want[:500] {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteBatch(want[500:]); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1000 {
		t.Fatalf("writer count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != 1000 {
		t.Fatalf("reader count = %d", r.Count())
	}
	var got []kv.Pair
	buf := make([]kv.Pair, 77) // deliberately not a divisor of 1000
	for {
		n, err := r.ReadBatch(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("read %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestReaderMetersDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.kv")
	meter := costmodel.NewMeter()
	w, err := NewWriter(path, meter)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(randomPairs(rand.New(rand.NewSource(2)), 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := meter.Snapshot().DiskWriteBytes; got != 10*kv.PairBytes {
		t.Errorf("metered write = %d, want %d", got, 10*kv.PairBytes)
	}
	r, err := NewReader(path, meter)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]kv.Pair, 100)
	if _, err := r.ReadBatch(buf); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if got := meter.Snapshot().DiskReadBytes; got != 10*kv.PairBytes {
		t.Errorf("metered read = %d, want %d", got, 10*kv.PairBytes)
	}
}

func TestReaderRejectsCorruptSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.kv")
	if err := os.WriteFile(path, make([]byte, kv.PairBytes+3), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(path, nil); err == nil {
		t.Error("expected error for non-multiple file size")
	}
}

func TestReadBatchEmptyDst(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.kv")
	w, _ := NewWriter(path, nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n, err := r.ReadBatch(nil); n != 0 || err != nil {
		t.Errorf("empty dst: n=%d err=%v", n, err)
	}
	if n, err := r.ReadBatch(make([]kv.Pair, 4)); n != 0 || err != io.EOF {
		t.Errorf("empty file: n=%d err=%v", n, err)
	}
}

func TestCountFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.kv")
	if n, err := CountFile(path); n != 0 || err != nil {
		t.Errorf("missing file: n=%d err=%v", n, err)
	}
	w, _ := NewWriter(path, nil)
	if err := w.WriteBatch(randomPairs(rand.New(rand.NewSource(3)), 7)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := CountFile(path); n != 7 || err != nil {
		t.Errorf("n=%d err=%v, want 7", n, err)
	}
}

func TestReaderCorruptSizeErrorIsDescriptive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.kv")
	if err := os.WriteFile(path, make([]byte, 2*kv.PairBytes+5), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewReader(path, nil)
	if err == nil {
		t.Fatal("expected error for non-multiple file size")
	}
	msg := err.Error()
	for _, want := range []string{path, "corrupt or truncated", "not a multiple"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestCountFileRejectsCorruptSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.kv")
	if err := os.WriteFile(path, make([]byte, kv.PairBytes-1), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := CountFile(path)
	if err == nil {
		t.Fatal("expected error for non-multiple file size")
	}
	if n != 0 {
		t.Errorf("n = %d on corrupt file, want 0", n)
	}
	if !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Errorf("error %q not descriptive", err)
	}
}

func TestReadBatchTruncatedMidStream(t *testing.T) {
	// A file that shrinks to a partial record after the reader opened it
	// (e.g. a crashed writer's torn tail) must surface a descriptive error,
	// never a silent short read.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.kv")
	w, err := NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(randomPairs(rand.New(rand.NewSource(5)), 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := os.Truncate(path, 2*kv.PairBytes+7); err != nil {
		t.Fatal(err)
	}
	var got int
	buf := make([]kv.Pair, 1) // small batches defeat bufio prefetch masking
	for {
		n, err := r.ReadBatch(buf)
		got += n
		if err == io.EOF {
			t.Fatalf("silent short read: EOF after %d pairs of 3", got)
		}
		if err != nil {
			if !strings.Contains(err.Error(), "corrupt or truncated") {
				t.Errorf("error %q not descriptive", err)
			}
			break
		}
	}
	if got != 2 {
		t.Errorf("read %d whole pairs before error, want 2", got)
	}
}

func TestPartitionWritersAndList(t *testing.T) {
	dir := t.TempDir()
	pw := NewPartitionWriters(dir, Suffix, nil)
	rng := rand.New(rand.NewSource(4))
	wantCounts := map[int]int64{63: 5, 80: 3, 100: 1}
	for l, n := range wantCounts {
		for i := int64(0); i < n; i++ {
			if err := pw.Write(l, randomPairs(rng, 1)[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := pw.Counts()
	for l, n := range wantCounts {
		if counts[l] != n {
			t.Errorf("count[%d] = %d, want %d", l, counts[l], n)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	lengths, err := ListPartitions(dir, Suffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(lengths) != 3 || lengths[0] != 63 || lengths[1] != 80 || lengths[2] != 100 {
		t.Errorf("lengths = %v", lengths)
	}
	// No prefix partitions were written.
	pfx, err := ListPartitions(dir, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(pfx) != 0 {
		t.Errorf("prefix partitions = %v", pfx)
	}
	// Files round trip.
	r, err := NewReader(PartitionPath(dir, Suffix, 63), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != 5 {
		t.Errorf("partition 63 count = %d", r.Count())
	}
}

func TestPartitionPathNames(t *testing.T) {
	if got := PartitionPath("/x", Suffix, 63); got != "/x/sfx_0063.kv" {
		t.Errorf("suffix path = %q", got)
	}
	if got := PartitionPath("/x", Prefix, 111); got != "/x/pfx_0111.kv" {
		t.Errorf("prefix path = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Suffix.String() != "sfx" || Prefix.String() != "pfx" {
		t.Error("Kind strings wrong")
	}
}
