// Package kvio implements the on-disk key-value lists of the LaSAGNA
// pipeline: fixed-width (fingerprint, read-ID) records streamed
// sequentially to and from partition files.
//
// It realizes the paper's conceptual memory types (Fig. 3): files opened
// through this package are either read-only memory (sequential reads) or
// write-only memory (sequential appends) — never both at once. Every byte
// that crosses the disk boundary is metered, which is what makes the
// pipeline's I/O-dominance analysis (Fig. 8/9) quantitative.
package kvio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/kv"
)

const bufSize = 1 << 18

// Writer appends pairs to a file sequentially.
type Writer struct {
	f     *os.File
	bw    *bufio.Writer
	meter *costmodel.Meter
	count int64
	buf   [kv.PairBytes]byte
}

// NewWriter creates (truncating) the file at path. meter may be nil.
func NewWriter(path string, meter *costmodel.Meter) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, bufSize), meter: meter}, nil
}

// Write appends one pair.
func (w *Writer) Write(p kv.Pair) error {
	p.Encode(w.buf[:])
	if _, err := w.bw.Write(w.buf[:]); err != nil {
		return err
	}
	w.count++
	if w.meter != nil {
		w.meter.AddDiskWrite(kv.PairBytes)
	}
	return nil
}

// WriteBatch appends a slice of pairs.
func (w *Writer) WriteBatch(ps []kv.Pair) error {
	for _, p := range ps {
		p.Encode(w.buf[:])
		if _, err := w.bw.Write(w.buf[:]); err != nil {
			return err
		}
	}
	w.count += int64(len(ps))
	if w.meter != nil {
		w.meter.AddDiskWrite(int64(len(ps)) * kv.PairBytes)
	}
	return nil
}

// Count returns the number of pairs written so far.
func (w *Writer) Count() int64 { return w.count }

// Close flushes and closes the file.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader streams pairs from a file sequentially.
type Reader struct {
	f     *os.File
	br    *bufio.Reader
	meter *costmodel.Meter
	count int64 // total pairs in the file
	read  int64 // pairs consumed so far
}

// NewReader opens the file at path. meter may be nil.
func NewReader(path string, meter *costmodel.Meter) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size()%kv.PairBytes != 0 {
		f.Close()
		return nil, fmt.Errorf("kvio: %s is corrupt or truncated: size %d is not a multiple of record size %d (%d trailing bytes)",
			path, info.Size(), kv.PairBytes, info.Size()%kv.PairBytes)
	}
	return &Reader{
		f:     f,
		br:    bufio.NewReaderSize(f, bufSize),
		meter: meter,
		count: info.Size() / kv.PairBytes,
	}, nil
}

// Count returns the total number of pairs in the file.
func (r *Reader) Count() int64 { return r.count }

// Remaining returns how many pairs have not yet been consumed.
func (r *Reader) Remaining() int64 { return r.count - r.read }

// ReadBatch fills dst with up to len(dst) pairs and returns how many were
// read. It returns io.EOF (with n == 0) once the stream is exhausted.
func (r *Reader) ReadBatch(dst []kv.Pair) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	var rec [kv.PairBytes]byte
	n := 0
	for n < len(dst) {
		if _, err := io.ReadFull(r.br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				return n, fmt.Errorf("kvio: %s is corrupt or truncated: partial record after %d whole pairs",
					r.f.Name(), r.read+int64(n))
			}
			return n, err
		}
		dst[n] = kv.DecodePair(rec[:])
		n++
	}
	r.read += int64(n)
	if r.meter != nil {
		r.meter.AddDiskRead(int64(n) * kv.PairBytes)
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// CountFile returns the number of pairs stored at path (0 if the file does
// not exist). A size that is not a whole number of records is reported as
// corruption rather than silently rounded down.
func CountFile(path string) (int64, error) {
	info, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if info.Size()%kv.PairBytes != 0 {
		return 0, fmt.Errorf("kvio: %s is corrupt or truncated: size %d is not a multiple of record size %d",
			path, info.Size(), kv.PairBytes)
	}
	return info.Size() / kv.PairBytes, nil
}

// Kind distinguishes the two tuple lists of each partition: fingerprints
// of l-length suffixes and of l-length prefixes.
type Kind int

// Partition kinds.
const (
	Suffix Kind = iota
	Prefix
)

func (k Kind) String() string {
	if k == Suffix {
		return "sfx"
	}
	return "pfx"
}

// PartitionPath names the file holding (fingerprint, read-ID) tuples for
// the given overlap length and kind within dir.
func PartitionPath(dir string, k Kind, length int) string {
	return filepath.Join(dir, fmt.Sprintf("%s_%04d.kv", k, length))
}

// PartitionWriters fans incoming tuples out to per-length partition files,
// the partitioning step at the end of the map phase (Section III-A). Files
// are created lazily on the first tuple of each length.
type PartitionWriters struct {
	dir     string
	kind    Kind
	meter   *costmodel.Meter
	writers map[int]*Writer
}

// NewPartitionWriters returns a writer fan-out rooted at dir.
func NewPartitionWriters(dir string, kind Kind, meter *costmodel.Meter) *PartitionWriters {
	return &PartitionWriters{dir: dir, kind: kind, meter: meter, writers: map[int]*Writer{}}
}

// Write appends a tuple to the partition for the given length.
func (pw *PartitionWriters) Write(length int, p kv.Pair) error {
	w, ok := pw.writers[length]
	if !ok {
		var err error
		w, err = NewWriter(PartitionPath(pw.dir, pw.kind, length), pw.meter)
		if err != nil {
			return err
		}
		pw.writers[length] = w
	}
	return w.Write(p)
}

// Counts returns the tuple count per length written so far.
func (pw *PartitionWriters) Counts() map[int]int64 {
	out := make(map[int]int64, len(pw.writers))
	for l, w := range pw.writers {
		out[l] = w.Count()
	}
	return out
}

// Close closes every partition file, reporting the first error.
func (pw *PartitionWriters) Close() error {
	var first error
	for _, w := range pw.writers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	pw.writers = map[int]*Writer{}
	return first
}

// ListPartitions returns the sorted overlap lengths for which partition
// files of the given kind exist in dir.
func ListPartitions(dir string, k Kind) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := k.String() + "_"
	var lengths []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".kv") {
			continue
		}
		l, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".kv"))
		if err != nil {
			continue
		}
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	return lengths, nil
}
