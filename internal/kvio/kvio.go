// Package kvio implements the on-disk key-value lists of the LaSAGNA
// pipeline: fixed-width (fingerprint, read-ID) records streamed
// sequentially to and from partition files.
//
// It realizes the paper's conceptual memory types (Fig. 3): files opened
// through this package are either read-only memory (sequential reads) or
// write-only memory (sequential appends) — never both at once. Every byte
// that crosses the disk boundary is metered, which is what makes the
// pipeline's I/O-dominance analysis (Fig. 8/9) quantitative.
//
// # Block codec
//
// Records are encoded and decoded through pooled block buffers rather
// than per-record writes into a bufio layer: a Writer fills a 160 KiB
// block with fixed-width encodings and issues one Write syscall per
// block; a Reader refills a block with one Read syscall and decodes pairs
// straight out of it. Blocks are recycled through a sync.Pool across
// files, so steady-state serialization allocates nothing. An optional
// mmap-backed read path (NewReaderMapped, Linux only) decodes directly
// from the page cache with zero copies; it falls back to the block reader
// when mapping is unavailable.
//
// Writer.Close flushes the final block, fsyncs, and only then closes,
// reporting — never swallowing — errors from each step, so a torn tail
// write surfaces at close time rather than as a silently short file.
package kvio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/kv"
)

// blockPairs is the number of records per codec block; blocks are the
// unit of both the write and the read syscalls.
const blockPairs = 1 << 13

const blockBytes = blockPairs * kv.PairBytes

// blockPool recycles codec blocks across Writers and Readers.
var blockPool sync.Pool

func getBlock() []byte {
	if v := blockPool.Get(); v != nil {
		return *(v.(*[]byte))
	}
	return make([]byte, blockBytes)
}

func putBlock(b []byte) {
	if cap(b) < blockBytes {
		return
	}
	b = b[:blockBytes]
	blockPool.Put(&b)
}

// fileSync is the fsync hook Writer.Close goes through; a variable so the
// tests can observe ordering and inject failures.
var fileSync = (*os.File).Sync

// Writer appends pairs to a file sequentially.
type Writer struct {
	f      *os.File
	meter  *costmodel.Meter
	count  int64
	block  []byte // pooled codec block
	off    int    // bytes of block filled
	closed bool
}

// NewWriter creates (truncating) the file at path. meter may be nil.
func NewWriter(path string, meter *costmodel.Meter) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, meter: meter, block: getBlock()}, nil
}

// Write appends one pair.
func (w *Writer) Write(p kv.Pair) error {
	if w.closed {
		return fmt.Errorf("kvio: write to closed writer %s", w.f.Name())
	}
	if w.off == len(w.block) {
		if err := w.flush(); err != nil {
			return err
		}
	}
	p.Encode(w.block[w.off : w.off+kv.PairBytes])
	w.off += kv.PairBytes
	w.count++
	if w.meter != nil {
		w.meter.AddDiskWrite(kv.PairBytes)
	}
	return nil
}

// WriteBatch appends a slice of pairs, encoding block-at-a-time.
func (w *Writer) WriteBatch(ps []kv.Pair) error {
	if w.closed {
		return fmt.Errorf("kvio: write to closed writer %s", w.f.Name())
	}
	total := len(ps)
	for len(ps) > 0 {
		space := (len(w.block) - w.off) / kv.PairBytes
		if space == 0 {
			if err := w.flush(); err != nil {
				return err
			}
			continue
		}
		n := len(ps)
		if n > space {
			n = space
		}
		buf := w.block[w.off:]
		for i := 0; i < n; i++ {
			ps[i].Encode(buf[i*kv.PairBytes : i*kv.PairBytes+kv.PairBytes])
		}
		w.off += n * kv.PairBytes
		w.count += int64(n)
		ps = ps[n:]
	}
	if w.meter != nil {
		w.meter.AddDiskWrite(int64(total) * kv.PairBytes)
	}
	return nil
}

// flush writes the filled part of the block with a single syscall.
func (w *Writer) flush() error {
	if w.off == 0 {
		return nil
	}
	if _, err := w.f.Write(w.block[:w.off]); err != nil {
		return fmt.Errorf("kvio: flush %s: %w", w.f.Name(), err)
	}
	w.off = 0
	return nil
}

// Count returns the number of pairs written so far.
func (w *Writer) Count() int64 { return w.count }

// Close flushes the final block, fsyncs, and closes the file. Each step's
// error is checked and reported with the path: a flush or sync failure
// means the tail of the file may be torn, and silently returning success
// there is exactly the corruption the reader would later misreport as a
// short file. Close is idempotent; after the first call the writer
// rejects further writes.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	flushErr := w.flush()
	putBlock(w.block)
	w.block = nil
	if flushErr != nil {
		w.f.Close()
		return flushErr
	}
	if err := fileSync(w.f); err != nil {
		w.f.Close()
		return fmt.Errorf("kvio: fsync %s: %w", w.f.Name(), err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("kvio: close %s: %w", w.f.Name(), err)
	}
	return nil
}

// Reader streams pairs from a file sequentially.
type Reader struct {
	f      *os.File
	meter  *costmodel.Meter
	count  int64  // total pairs in the file
	read   int64  // pairs consumed so far
	block  []byte // pooled codec block, or the mmap when mapped
	pos    int    // next undecoded byte in block
	lim    int    // bytes of block valid
	eof    bool   // underlying file exhausted
	mapped bool   // block is an mmap of the whole file
	closed bool
}

// NewReader opens the file at path. meter may be nil.
func NewReader(path string, meter *costmodel.Meter) (*Reader, error) {
	return newReader(path, meter, false)
}

// NewReaderMapped opens the file at path with an mmap-backed zero-copy
// decode path where the platform supports it, falling back to the block
// reader otherwise. The mapped path assumes the file is not truncated
// while the reader is open (the usual contract for kvio files, which are
// write-once then read-only). meter may be nil; metering is identical to
// NewReader.
func NewReaderMapped(path string, meter *costmodel.Meter) (*Reader, error) {
	return newReader(path, meter, true)
}

func newReader(path string, meter *costmodel.Meter, tryMap bool) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size()%kv.PairBytes != 0 {
		f.Close()
		return nil, fmt.Errorf("kvio: %s is corrupt or truncated: size %d is not a multiple of record size %d (%d trailing bytes)",
			path, info.Size(), kv.PairBytes, info.Size()%kv.PairBytes)
	}
	r := &Reader{f: f, meter: meter, count: info.Size() / kv.PairBytes}
	if tryMap {
		if data, ok := mapFile(f, info.Size()); ok {
			r.block, r.lim, r.eof, r.mapped = data, len(data), true, true
			return r, nil
		}
	}
	r.block = getBlock()
	return r, nil
}

// Count returns the total number of pairs in the file.
func (r *Reader) Count() int64 { return r.count }

// Remaining returns how many pairs have not yet been consumed.
func (r *Reader) Remaining() int64 { return r.count - r.read }

// Mapped reports whether the reader decodes from an mmap of the file.
func (r *Reader) Mapped() bool { return r.mapped }

// refill slides any partial record tail to the front of the block and
// reads more bytes with (normally) one syscall.
func (r *Reader) refill() error {
	tail := r.lim - r.pos
	if tail > 0 {
		copy(r.block, r.block[r.pos:r.lim])
	}
	r.pos, r.lim = 0, tail
	for r.lim < len(r.block) {
		m, err := r.f.Read(r.block[r.lim:])
		r.lim += m
		if err == io.EOF {
			r.eof = true
			return nil
		}
		if err != nil {
			return err
		}
		if r.lim >= kv.PairBytes {
			return nil
		}
	}
	return nil
}

// ReadBatch fills dst with up to len(dst) pairs and returns how many were
// read. It returns io.EOF (with n == 0) once the stream is exhausted. A
// file that ends mid-record yields every whole pair and then a
// descriptive corruption error, never a silent short count.
func (r *Reader) ReadBatch(dst []kv.Pair) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	n := 0
	for n < len(dst) {
		if r.lim-r.pos < kv.PairBytes {
			if r.eof {
				break
			}
			if err := r.refill(); err != nil {
				return n, err
			}
			if r.lim-r.pos < kv.PairBytes {
				continue // sets eof or makes progress; loop re-checks
			}
		}
		avail := (r.lim - r.pos) / kv.PairBytes
		take := len(dst) - n
		if take > avail {
			take = avail
		}
		buf := r.block[r.pos:]
		for i := 0; i < take; i++ {
			dst[n+i] = kv.DecodePair(buf[i*kv.PairBytes:])
		}
		n += take
		r.pos += take * kv.PairBytes
	}
	if r.eof && n < len(dst) && r.lim-r.pos > 0 {
		// Partial record at EOF: the file was truncated mid-block after
		// the reader validated its size at open.
		return n, fmt.Errorf("kvio: %s is corrupt or truncated: partial record after %d whole pairs",
			r.f.Name(), r.read+int64(n))
	}
	r.read += int64(n)
	if r.meter != nil {
		r.meter.AddDiskRead(int64(n) * kv.PairBytes)
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Close releases the codec block (or mapping) and closes the file.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var unmapErr error
	if r.mapped {
		unmapErr = unmapFile(r.block)
	} else {
		putBlock(r.block)
	}
	r.block = nil
	if err := r.f.Close(); err != nil {
		return err
	}
	return unmapErr
}

// CountFile returns the number of pairs stored at path (0 if the file does
// not exist). A size that is not a whole number of records is reported as
// corruption rather than silently rounded down.
func CountFile(path string) (int64, error) {
	info, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if info.Size()%kv.PairBytes != 0 {
		return 0, fmt.Errorf("kvio: %s is corrupt or truncated: size %d is not a multiple of record size %d",
			path, info.Size(), kv.PairBytes)
	}
	return info.Size() / kv.PairBytes, nil
}

// Kind distinguishes the two tuple lists of each partition: fingerprints
// of l-length suffixes and of l-length prefixes.
type Kind int

// Partition kinds.
const (
	Suffix Kind = iota
	Prefix
)

func (k Kind) String() string {
	if k == Suffix {
		return "sfx"
	}
	return "pfx"
}

// PartitionPath names the file holding (fingerprint, read-ID) tuples for
// the given overlap length and kind within dir.
func PartitionPath(dir string, k Kind, length int) string {
	return filepath.Join(dir, fmt.Sprintf("%s_%04d.kv", k, length))
}

// PartitionWriters fans incoming tuples out to per-length partition files,
// the partitioning step at the end of the map phase (Section III-A). Files
// are created lazily on the first tuple of each length.
type PartitionWriters struct {
	dir     string
	kind    Kind
	meter   *costmodel.Meter
	writers map[int]*Writer
}

// NewPartitionWriters returns a writer fan-out rooted at dir.
func NewPartitionWriters(dir string, kind Kind, meter *costmodel.Meter) *PartitionWriters {
	return &PartitionWriters{dir: dir, kind: kind, meter: meter, writers: map[int]*Writer{}}
}

// Write appends a tuple to the partition for the given length.
func (pw *PartitionWriters) Write(length int, p kv.Pair) error {
	w, ok := pw.writers[length]
	if !ok {
		var err error
		w, err = NewWriter(PartitionPath(pw.dir, pw.kind, length), pw.meter)
		if err != nil {
			return err
		}
		pw.writers[length] = w
	}
	return w.Write(p)
}

// Counts returns the tuple count per length written so far.
func (pw *PartitionWriters) Counts() map[int]int64 {
	out := make(map[int]int64, len(pw.writers))
	for l, w := range pw.writers {
		out[l] = w.Count()
	}
	return out
}

// Close closes every partition file, reporting the first error.
func (pw *PartitionWriters) Close() error {
	var first error
	for _, w := range pw.writers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	pw.writers = map[int]*Writer{}
	return first
}

// ListPartitions returns the sorted overlap lengths for which partition
// files of the given kind exist in dir.
func ListPartitions(dir string, k Kind) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := k.String() + "_"
	var lengths []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".kv") {
			continue
		}
		l, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".kv"))
		if err != nil {
			continue
		}
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	return lengths, nil
}
