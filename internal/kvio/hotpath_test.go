package kvio

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/kv"
)

func randPairs(seed int64, n int) []kv.Pair {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]kv.Pair, n)
	for i := range ps {
		ps[i] = kv.Pair{Key: kv.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, Val: rng.Uint32()}
	}
	return ps
}

// TestBlockBoundaryRoundTrip exercises the block codec at and around its
// block size: files of exactly one block, one record less, and one record
// more must round-trip byte-identically through both Write and WriteBatch,
// and through batch reads that straddle block refills.
func TestBlockBoundaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []int{1, blockPairs - 1, blockPairs, blockPairs + 1, 2*blockPairs + 3} {
		want := randPairs(int64(n), n)
		for _, mode := range []string{"single", "batch"} {
			path := filepath.Join(dir, fmt.Sprintf("rt_%d_%s.kv", n, mode))
			w, err := NewWriter(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if mode == "single" {
				for _, p := range want {
					if err := w.Write(p); err != nil {
						t.Fatal(err)
					}
				}
			} else if err := w.WriteBatch(want); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := NewReader(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]kv.Pair, 0, n)
			// An odd batch size forces reads that straddle refills.
			buf := make([]kv.Pair, 777)
			for {
				m, err := r.ReadBatch(buf)
				got = append(got, buf[:m]...)
				if err != nil {
					break
				}
			}
			r.Close()
			if len(got) != n {
				t.Fatalf("n=%d mode=%s: read %d pairs", n, mode, len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d mode=%s: pair %d = %v, want %v", n, mode, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWriterCloseSyncsBeforeClose pins the Close ordering of the fsync
// bugfix: the final block must be flushed to the file before the sync
// hook runs, and the sync must happen before the descriptor closes.
func TestWriterCloseSyncsBeforeClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.kv")
	w, err := NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(randPairs(1, 3)); err != nil {
		t.Fatal(err)
	}
	orig := fileSync
	defer func() { fileSync = orig }()
	synced := false
	fileSync = func(f *os.File) error {
		synced = true
		// The flush must already have reached the file: fsync of a
		// buffered-but-unflushed tail would persist a torn file.
		info, err := f.Stat()
		if err != nil {
			return err
		}
		if got, want := info.Size(), int64(3*kv.PairBytes); got != want {
			return fmt.Errorf("sync saw %d bytes on disk, want %d (flush must precede fsync)", got, want)
		}
		return orig(f)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !synced {
		t.Fatal("Close did not fsync")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestWriterCloseReportsSyncError pins that a failing fsync is reported
// with the path, not swallowed into a successful close.
func TestWriterCloseReportsSyncError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "syncerr.kv")
	w, err := NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(kv.Pair{Val: 1}); err != nil {
		t.Fatal(err)
	}
	orig := fileSync
	defer func() { fileSync = orig }()
	injected := errors.New("device lost power")
	fileSync = func(f *os.File) error { return injected }
	err = w.Close()
	if err == nil {
		t.Fatal("Close swallowed the fsync error")
	}
	if !errors.Is(err, injected) {
		t.Fatalf("Close error %v does not wrap the fsync error", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("Close error %q does not name the file", err)
	}
}

// TestWriterCloseReportsFlushError pins that a failing final-block flush
// is reported descriptively. The underlying descriptor is closed out from
// under the writer so the flush write fails.
func TestWriterCloseReportsFlushError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flusherr.kv")
	w, err := NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(kv.Pair{Val: 7}); err != nil {
		t.Fatal(err)
	}
	w.f.Close() // sabotage: the buffered pair can no longer be written
	err = w.Close()
	if err == nil {
		t.Fatal("Close swallowed the flush error")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("flush error %q does not name the file", err)
	}
}

// TestWriteAfterCloseFails pins that a closed writer rejects writes
// instead of corrupting the pooled block it no longer owns.
func TestWriteAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.kv")
	w, err := NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(kv.Pair{}); err == nil {
		t.Fatal("Write after Close succeeded")
	}
	if err := w.WriteBatch(make([]kv.Pair, 2)); err == nil {
		t.Fatal("WriteBatch after Close succeeded")
	}
}

// TestMappedReaderRoundTrip pins the mmap read path (where available)
// against the block reader: same pairs, same EOF behavior, and Close
// releases the mapping without error.
func TestMappedReaderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mapped.kv")
	want := randPairs(5, 3*blockPairs/2)
	w, err := NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReaderMapped(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []kv.Pair
	buf := make([]kv.Pair, 1000)
	for {
		m, err := r.ReadBatch(buf)
		got = append(got, buf[:m]...)
		if err != nil {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("mapped read %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mapped pair %d = %v, want %v", i, got[i], want[i])
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMappedReaderEmptyFile pins the zero-length fallback: an empty file
// cannot be mapped and must behave exactly like the block reader.
func TestMappedReaderEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.kv")
	w, err := NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReaderMapped(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Mapped() {
		t.Fatal("zero-length file reported as mapped")
	}
	if n, err := r.ReadBatch(make([]kv.Pair, 4)); n != 0 || err == nil {
		t.Fatalf("empty file ReadBatch = (%d, %v), want (0, EOF)", n, err)
	}
}

// TestBlockPoolConcurrentRoundTrips is the pooled-buffer contention
// stress pass: many goroutines write and read distinct files through the
// shared block pool. Run under -race this catches any block that is
// recycled while still referenced.
func TestBlockPoolConcurrentRoundTrips(t *testing.T) {
	dir := t.TempDir()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Unequal sizes so pooled blocks cross goroutines mid-fill.
			n := 100 + g*1777
			want := randPairs(int64(100+g), n)
			path := filepath.Join(dir, fmt.Sprintf("w%d.kv", g))
			for iter := 0; iter < 3; iter++ {
				w, err := NewWriter(path, nil)
				if err != nil {
					errs <- err
					return
				}
				if err := w.WriteBatch(want); err != nil {
					errs <- err
					return
				}
				if err := w.Close(); err != nil {
					errs <- err
					return
				}
				r, err := NewReader(path, nil)
				if err != nil {
					errs <- err
					return
				}
				buf := make([]kv.Pair, 313)
				i := 0
				for {
					m, err := r.ReadBatch(buf)
					for j := 0; j < m; j++ {
						if buf[j] != want[i] {
							errs <- fmt.Errorf("worker %d iter %d: pair %d corrupt", g, iter, i)
							r.Close()
							return
						}
						i++
					}
					if err != nil {
						break
					}
				}
				r.Close()
				if i != n {
					errs <- fmt.Errorf("worker %d iter %d: read %d of %d pairs", g, iter, i, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
