// Package buildinfo renders the -version line shared by every binary in
// this module: the module version and VCS revision embedded by the Go
// toolchain (runtime/debug.ReadBuildInfo), plus the Go release that built
// the binary. `go build` stamps VCS data automatically inside a git
// checkout; `go run` and test binaries fall back to "devel"/"unknown".
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info returns the raw build identity fields: the module version, the
// VCS revision, and whether the checkout had uncommitted changes when
// the binary was built. Outside a stamped build (go run, test binaries)
// it reports "devel"/"unknown"/false.
func Info() (version, revision string, modified bool) {
	version, revision = "devel", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
	}
	return version, revision, modified
}

// String returns the one-line version report for the named binary, e.g.
//
//	lasagna-serve devel (rev 9993a6c..., modified, go1.24.0)
func String(binary string) string {
	version, revision, modified := Info()
	if modified {
		revision += ", modified"
	}
	return fmt.Sprintf("%s %s (rev %s, %s)", binary, version, revision, runtime.Version())
}
