package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (give or take the runtime's own background goroutines), failing
// the test if workers are still parked after the deadline.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudges finalizers and parked goroutines along
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still running (baseline %d):\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// cancelAfterStage runs an assembly that cancels its own context as soon as
// the given stage commits, so the next stage observes cancellation
// mid-pipeline. It asserts the run fails with context.Canceled and that no
// worker goroutines leak.
func cancelAfterStage(t *testing.T, stage PhaseName, workers int) {
	t.Helper()
	_, reads := testGenomeReads(t, 2000, 48, 10)
	baseline := runtime.NumGoroutine()

	cfg := smallConfig(t)
	cfg.Workers = workers
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.FaultHook = func(s PhaseName) error {
		if s == stage {
			cancel()
		}
		return nil
	}
	_, err = p.AssembleContext(ctx, reads)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, baseline)

	// The committed stages stay resumable after the cancellation.
	cfg.Resume = true
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p2.Assemble(reads)
	if err != nil {
		t.Fatalf("resume after cancel failed: %v", err)
	}
	if len(res.CachedStages) == 0 {
		t.Error("no stages replayed after cancelled run")
	}
}

func TestCancelMidSort(t *testing.T) {
	cancelAfterStage(t, PhaseMap, 4) // cancel once Map commits: Sort sees it
}

func TestCancelMidSortSerial(t *testing.T) {
	cancelAfterStage(t, PhaseMap, 1)
}

func TestCancelMidReduce(t *testing.T) {
	cancelAfterStage(t, PhaseSort, 4) // cancel once Sort commits: Reduce sees it
}

func TestCancelBeforeStart(t *testing.T) {
	_, reads := testGenomeReads(t, 1000, 40, 6)
	baseline := runtime.NumGoroutine()
	cfg := smallConfig(t)
	cfg.MinOverlap = 25
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.AssembleContext(ctx, reads); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, baseline)
}
