package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/dna"
	"repro/internal/fingerprint"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Mapper runs the map-phase kernels (Section III-A) for ranges of reads:
// reverse complements, Hillis-Steele prefix fingerprints, derived suffix
// fingerprints, and length-partitioned tuple emission. It is shared
// between the single-node pipeline and the distributed implementation,
// where each node maps the input blocks the master assigns to it.
type Mapper struct {
	Dev        *gpu.Device
	HostMem    *stats.MemTracker // may be nil
	MinOverlap int
	BatchReads int
	// Workers is the number of map batches processed concurrently. Each
	// in-flight batch holds its own device allocation, so device-memory
	// capacity bounds effective concurrency. Values <= 1 run the batches
	// serially. Whatever the setting, tuples reach the partition writers
	// in batch order, so the partition files are byte-identical.
	Workers int
	// NaiveKernel switches the fingerprint kernels to the per-read-thread
	// formulation Section III-A rejects; used by the ablation benchmarks.
	NaiveKernel bool
	// Obs is the observability sink; nil disables instrumentation. Track
	// is the owning driver lane in the trace — batch spans land on its
	// worker lanes — and Profile prices the per-batch counter deltas.
	Obs     *obs.Observer
	Track   obs.Track
	Profile costmodel.Profile

	table *fingerprint.Table
}

// NewMapper builds a mapper whose place-value table covers reads up to
// maxLen bases.
func NewMapper(dev *gpu.Device, hostMem *stats.MemTracker, minOverlap, batchReads, maxLen int) *Mapper {
	return &Mapper{
		Dev:        dev,
		HostMem:    hostMem,
		MinOverlap: minOverlap,
		BatchReads: batchReads,
		table:      fingerprint.NewTable(maxLen),
	}
}

// MapRange maps reads [start, end) of rs into the partition writers.
// Batches are fingerprinted by up to Workers concurrent goroutines, but
// their tuples are written strictly in batch order by the calling
// goroutine, so the partition files do not depend on Workers. Cancelling
// ctx aborts between batches with ctx.Err(); cancellation surfaces as an
// error from within a batch job, so every dispatched job still delivers
// exactly one result and the pool drains without leaking goroutines.
func (m *Mapper) MapRange(ctx context.Context, rs dna.ReadSource, start, end int,
	sfxW, pfxW *kvio.PartitionWriters) error {
	if end <= start {
		return nil
	}
	numBatches := (end - start + m.BatchReads - 1) / m.BatchReads
	workers := m.Workers
	if workers > numBatches {
		workers = numBatches
	}
	if workers <= 1 {
		for i := 0; i < numBatches; i++ {
			lo, hi := m.batchBounds(start, end, i)
			tuples, bytes, err := m.mapBatchSpan(ctx, rs, 0, i, lo, hi)
			if err != nil {
				return err
			}
			err = m.writeBatch(tuples, sfxW, pfxW)
			if m.HostMem != nil {
				m.HostMem.Release(bytes)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	type batchResult struct {
		idx    int
		tuples []mapTuple
		bytes  int64
		err    error
	}
	jobs := make(chan int)
	results := make(chan batchResult, workers)
	abort := make(chan struct{})
	var wg sync.WaitGroup
	m.Obs.Log().Debug("map worker pool start", "workers", workers, "batches", numBatches)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				lo, hi := m.batchBounds(start, end, idx)
				tuples, bytes, err := m.mapBatchSpan(ctx, rs, w, idx, lo, hi)
				select {
				case results <- batchResult{idx, tuples, bytes, err}:
				case <-abort:
					if m.HostMem != nil {
						m.HostMem.Release(bytes)
					}
					return
				}
			}
		}(w)
	}
	go func() {
		defer close(jobs)
		for i := 0; i < numBatches; i++ {
			select {
			case jobs <- i:
			case <-abort:
				return
			}
		}
	}()

	// The calling goroutine is the single writer: it reorders completed
	// batches and streams their tuples to the shared partition writers in
	// exactly the serial pipeline's order.
	pending := make(map[int]batchResult)
	var firstErr error
	next, received := 0, 0
	for received < numBatches && firstErr == nil {
		r := <-results
		received++
		if r.err != nil {
			firstErr = r.err
			break
		}
		pending[r.idx] = r
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			err := m.writeBatch(cur.tuples, sfxW, pfxW)
			if m.HostMem != nil {
				m.HostMem.Release(cur.bytes)
			}
			if err != nil {
				firstErr = err
				break
			}
			next++
		}
	}
	close(abort)
	wg.Wait()
	close(results)
	for r := range results {
		if m.HostMem != nil {
			m.HostMem.Release(r.bytes)
		}
	}
	for _, r := range pending {
		if m.HostMem != nil {
			m.HostMem.Release(r.bytes)
		}
	}
	m.Obs.Log().Debug("map worker pool drained", "err", firstErr)
	return firstErr
}

// mapBatchSpan wraps mapBatch in a per-batch trace span on the worker's
// lane, carrying the batch's meter delta.
func (m *Mapper) mapBatchSpan(ctx context.Context, rs dna.ReadSource, worker, idx, lo, hi int) ([]mapTuple, int64, error) {
	span := m.Obs.Tracer().Begin(m.Track.Worker(worker), "partition",
		fmt.Sprintf("map batch %d", idx)).
		Metered(m.Dev.Meter(), m.Profile).
		Arg("reads", hi-lo)
	defer span.End()
	return m.mapBatch(ctx, rs, lo, hi)
}

// batchBounds returns the read range of batch idx within [start, end).
func (m *Mapper) batchBounds(start, end, idx int) (int, int) {
	lo := start + idx*m.BatchReads
	hi := lo + m.BatchReads
	if hi > end {
		hi = end
	}
	return lo, hi
}

// mapBatch fingerprints reads [batchStart, batchEnd) on the device and
// returns their partition tuples in read order, plus the host bytes the
// tuple buffers occupy (already added to HostMem; the caller releases
// them once the tuples are written or dropped).
func (m *Mapper) mapBatch(ctx context.Context, rs dna.ReadSource, batchStart, batchEnd int) ([]mapTuple, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	workers := runtime.GOMAXPROCS(0)
	maxLen := rs.MaxLen()
	batchReads := batchEnd - batchStart
	var batchBases int64
	for r := batchStart; r < batchEnd; r++ {
		batchBases += int64(rs.Len(uint32(r)))
	}
	// Device holds the batch (both strands) plus per-block scan buffers.
	scanBytes := int64(workers) * int64(maxLen) * 4 * 16
	alloc, err := m.Dev.AllocWait(ctx, 2*batchBases+scanBytes)
	if err != nil {
		return nil, 0, fmt.Errorf("core: map batch of %d reads does not fit on device: %w",
			batchReads, err)
	}
	m.Dev.CopyToDevice(batchBases)

	chunks := workers
	if chunks > batchReads {
		chunks = batchReads
	}
	per := (batchReads + chunks - 1) / chunks
	results := make([][]mapTuple, chunks)
	m.Dev.LaunchBlocks(chunks, func(ci int) {
		results[ci] = m.runBlock(rs, batchStart+ci*per, min(batchStart+(ci+1)*per, batchEnd))
	})

	var tupleBytes int64
	total := 0
	for _, out := range results {
		tupleBytes += int64(len(out)) * mapTupleBytes
		total += len(out)
	}
	if m.HostMem != nil {
		m.HostMem.Add(tupleBytes)
	}
	m.Dev.CopyFromDevice(tupleBytes)
	alloc.Free()

	tuples := make([]mapTuple, 0, total)
	for _, out := range results {
		tuples = append(tuples, out...)
	}
	return tuples, tupleBytes, nil
}

// writeBatch streams one batch's tuples into the partition writers.
func (m *Mapper) writeBatch(tuples []mapTuple, sfxW, pfxW *kvio.PartitionWriters) error {
	for _, t := range tuples {
		var err error
		if t.kind == kvio.Suffix {
			err = sfxW.Write(int(t.length), t.pair)
		} else {
			err = pfxW.Write(int(t.length), t.pair)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// fpKernel is the subset of the fingerprint kernels the mapper needs,
// satisfied by both the Hillis-Steele and the naive formulation. The
// batched entry point computes both fingerprint arrays of a read at once
// so the scan kernel can amortize its metering over the pair.
type fpKernel interface {
	ScanRead(dev *gpu.Device, s dna.Seq, pout, sout []kv.Key) (pf, sf []kv.Key)
}

// runBlock executes one simulated thread block over reads [lo, hi).
func (m *Mapper) runBlock(rs dna.ReadSource, lo, hi int) []mapTuple {
	var kern fpKernel = fingerprint.NewKernel(m.table)
	if m.NaiveKernel {
		kern = fingerprint.NewNaiveKernel(m.table)
	}
	maxLen := rs.MaxLen()
	pfps := make([]kv.Key, maxLen)
	sfps := make([]kv.Key, maxLen)
	rcBuf := make(dna.Seq, maxLen)
	var out []mapTuple
	for r := lo; r < hi; r++ {
		read := rs.Read(uint32(r))
		for strand := uint32(0); strand < 2; strand++ {
			seq := read
			if strand == 1 {
				rc := rcBuf[:len(read)]
				read.ReverseComplementInto(rc)
				seq = rc
			}
			v := dna.ForwardVertex(uint32(r)) | strand
			pf, sf := kern.ScanRead(m.Dev, seq, pfps, sfps)
			// Keep lengths [lmin, len); the full-length partition is
			// dropped to avoid self-loops (Section III-A).
			for l := m.MinOverlap; l < len(seq); l++ {
				out = append(out,
					mapTuple{int32(l), kvio.Suffix, kv.Pair{Key: sf[len(seq)-l], Val: v}},
					mapTuple{int32(l), kvio.Prefix, kv.Pair{Key: pf[l-1], Val: v}})
			}
		}
	}
	return out
}
