package core

import (
	"fmt"
	"runtime"

	"repro/internal/dna"
	"repro/internal/fingerprint"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/stats"
)

// Mapper runs the map-phase kernels (Section III-A) for ranges of reads:
// reverse complements, Hillis-Steele prefix fingerprints, derived suffix
// fingerprints, and length-partitioned tuple emission. It is shared
// between the single-node pipeline and the distributed implementation,
// where each node maps the input blocks the master assigns to it.
type Mapper struct {
	Dev        *gpu.Device
	HostMem    *stats.MemTracker // may be nil
	MinOverlap int
	BatchReads int
	// NaiveKernel switches the fingerprint kernels to the per-read-thread
	// formulation Section III-A rejects; used by the ablation benchmarks.
	NaiveKernel bool

	table *fingerprint.Table
}

// NewMapper builds a mapper whose place-value table covers reads up to
// maxLen bases.
func NewMapper(dev *gpu.Device, hostMem *stats.MemTracker, minOverlap, batchReads, maxLen int) *Mapper {
	return &Mapper{
		Dev:        dev,
		HostMem:    hostMem,
		MinOverlap: minOverlap,
		BatchReads: batchReads,
		table:      fingerprint.NewTable(maxLen),
	}
}

// MapRange maps reads [start, end) of rs into the partition writers.
func (m *Mapper) MapRange(rs dna.ReadSource, start, end int,
	sfxW, pfxW *kvio.PartitionWriters) error {
	workers := runtime.GOMAXPROCS(0)
	maxLen := rs.MaxLen()
	for batchStart := start; batchStart < end; batchStart += m.BatchReads {
		batchEnd := batchStart + m.BatchReads
		if batchEnd > end {
			batchEnd = end
		}
		batchReads := batchEnd - batchStart
		var batchBases int64
		for r := batchStart; r < batchEnd; r++ {
			batchBases += int64(rs.Len(uint32(r)))
		}
		// Device holds the batch (both strands) plus per-block scan
		// buffers.
		scanBytes := int64(workers) * int64(maxLen) * 4 * 16
		alloc, err := m.Dev.Alloc(2*batchBases + scanBytes)
		if err != nil {
			return fmt.Errorf("core: map batch of %d reads does not fit on device: %w",
				batchReads, err)
		}
		m.Dev.CopyToDevice(batchBases)

		chunks := workers
		if chunks > batchReads {
			chunks = batchReads
		}
		per := (batchReads + chunks - 1) / chunks
		results := make([][]mapTuple, chunks)
		m.Dev.LaunchBlocks(chunks, func(ci int) {
			results[ci] = m.runBlock(rs, batchStart+ci*per, minInt(batchStart+(ci+1)*per, batchEnd))
		})

		var tupleBytes int64
		for _, out := range results {
			tupleBytes += int64(len(out)) * mapTupleBytes
		}
		if m.HostMem != nil {
			m.HostMem.Add(tupleBytes)
		}
		m.Dev.CopyFromDevice(tupleBytes)
		alloc.Free()

		err = nil
		for _, out := range results {
			for _, t := range out {
				if t.kind == kvio.Suffix {
					err = sfxW.Write(int(t.length), t.pair)
				} else {
					err = pfxW.Write(int(t.length), t.pair)
				}
				if err != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		if m.HostMem != nil {
			m.HostMem.Release(tupleBytes)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// fpKernel is the subset of the fingerprint kernels the mapper needs,
// satisfied by both the Hillis-Steele and the naive formulation.
type fpKernel interface {
	Prefixes(dev *gpu.Device, s dna.Seq, out []kv.Key) []kv.Key
	Suffixes(dev *gpu.Device, prefixes []kv.Key, out []kv.Key) []kv.Key
}

// runBlock executes one simulated thread block over reads [lo, hi).
func (m *Mapper) runBlock(rs dna.ReadSource, lo, hi int) []mapTuple {
	var kern fpKernel = fingerprint.NewKernel(m.table)
	if m.NaiveKernel {
		kern = fingerprint.NewNaiveKernel(m.table)
	}
	maxLen := rs.MaxLen()
	pfps := make([]kv.Key, maxLen)
	sfps := make([]kv.Key, maxLen)
	rcBuf := make(dna.Seq, maxLen)
	var out []mapTuple
	for r := lo; r < hi; r++ {
		read := rs.Read(uint32(r))
		for strand := uint32(0); strand < 2; strand++ {
			seq := read
			if strand == 1 {
				rc := rcBuf[:len(read)]
				read.ReverseComplementInto(rc)
				seq = rc
			}
			v := dna.ForwardVertex(uint32(r)) | strand
			pf := kern.Prefixes(m.Dev, seq, pfps)
			sf := kern.Suffixes(m.Dev, pf, sfps)
			// Keep lengths [lmin, len); the full-length partition is
			// dropped to avoid self-loops (Section III-A).
			for l := m.MinOverlap; l < len(seq); l++ {
				out = append(out,
					mapTuple{int32(l), kvio.Suffix, kv.Pair{Key: sf[len(seq)-l], Val: v}},
					mapTuple{int32(l), kvio.Prefix, kv.Pair{Key: pf[l-1], Val: v}})
			}
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
