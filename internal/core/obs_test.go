package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/obs"
)

// fullObserver builds an observer with every channel live: a debug-level
// text logger into logBuf (may be nil for discard), a tracer, a registry.
func fullObserver(logBuf *bytes.Buffer) (*obs.Observer, *obs.Tracer, *obs.Registry) {
	var w io.Writer = io.Discard
	if logBuf != nil {
		w = logBuf
	}
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	return obs.New(obs.NewLogger(w, slog.LevelDebug, false), tr, reg), tr, reg
}

// TestTraceSpanTreeAndSumConsistency runs an instrumented assembly and
// checks the trace's structure: the run span encloses serial stage spans
// whose counter deltas sum exactly to the run's final meter snapshot,
// partition spans land on worker lanes, and device events appear as async
// pairs. This is the invariant that makes the trace trustworthy for
// attribution — no metered byte escapes the stage spans.
func TestTraceSpanTreeAndSumConsistency(t *testing.T) {
	_, reads := testGenomeReads(t, 2000, 48, 10)
	cfg := smallConfig(t)
	cfg.Workers = 2
	observer, tr, reg := fullObserver(nil)
	cfg.Obs = observer
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.AssembleContext(context.Background(), reads)
	if err != nil {
		t.Fatal(err)
	}

	evs := tr.Events()
	var runSpans, partitionSpans int
	stageDeltas := map[string]costmodel.Counters{}
	asyncPhases := map[string]int{}
	names := map[string]bool{}
	for _, e := range evs {
		switch {
		case e.Phase == "M":
			if n, ok := e.Args["name"].(string); ok {
				names[n] = true
			}
		case e.Phase == "X" && e.Cat == "run":
			runSpans++
			if e.Name != "assemble" || e.Pid != 0 || e.Tid != 0 {
				t.Errorf("run span = %+v, want assemble on pid 0 tid 0", e)
			}
		case e.Phase == "X" && e.Cat == "stage":
			if e.Tid != 0 {
				t.Errorf("stage span %s on tid %d, want driver lane 0", e.Name, e.Tid)
			}
			d, ok := e.Args["counters"].(costmodel.Counters)
			if !ok {
				t.Fatalf("stage span %s missing counters delta: %v", e.Name, e.Args)
			}
			if _, ok := e.Args["modeled"].(costmodel.Breakdown); !ok {
				t.Fatalf("stage span %s missing modeled breakdown", e.Name)
			}
			stageDeltas[e.Name] = d
		case e.Phase == "X" && e.Cat == "partition":
			partitionSpans++
			if e.Tid < 1 {
				t.Errorf("partition span %q on tid %d, want a worker lane >= 1", e.Name, e.Tid)
			}
		case e.Phase == "b" || e.Phase == "e":
			asyncPhases[e.Phase]++
		}
	}
	if runSpans != 1 {
		t.Errorf("got %d run spans, want 1", runSpans)
	}
	for _, stage := range []string{"Map", "Sort", "Reduce", "Compress"} {
		if _, ok := stageDeltas[stage]; !ok {
			t.Errorf("missing stage span %s", stage)
		}
	}
	if partitionSpans == 0 {
		t.Error("no partition spans on worker lanes")
	}
	if asyncPhases["b"] == 0 || asyncPhases["b"] != asyncPhases["e"] {
		t.Errorf("async events unbalanced: %d begins, %d ends", asyncPhases["b"], asyncPhases["e"])
	}
	for _, n := range []string{"lasagna", "stages", "worker 0", "worker 1"} {
		if !names[n] {
			t.Errorf("missing track name %q", n)
		}
	}

	// Sum-consistency: stage deltas sum to the final meter snapshot, which
	// is also what Result carries.
	var sum costmodel.Counters
	for _, d := range stageDeltas {
		sum = sum.Add(d)
	}
	final := p.Meter().Snapshot()
	if sum != final {
		t.Errorf("stage deltas sum %+v != final meter %+v", sum, final)
	}
	if res.Counters != final {
		t.Errorf("res.Counters %+v != final meter %+v", res.Counters, final)
	}
	if got, want := res.Modeled, final.Breakdown(cfg.Profile()); got != want {
		t.Errorf("res.Modeled %+v != breakdown of final meter %+v", got, want)
	}

	// The registry saw the pipeline's instruments.
	snap := reg.Snapshot()
	if got := snap.Gauges["core.partitions"]; got != int64(res.Partitions) {
		t.Errorf("core.partitions gauge = %d, want %d", got, res.Partitions)
	}
	if got := snap.Histograms["core.partition_pairs"].Count; got != int64(res.Partitions) {
		t.Errorf("partition_pairs observations = %d, want %d", got, res.Partitions)
	}
	if got := snap.Counters["overlap.candidates"]; got != res.CandidateEdges {
		t.Errorf("overlap.candidates = %d, want %d", got, res.CandidateEdges)
	}
	if snap.Counters["extsort.sorts"] == 0 {
		t.Error("extsort.sorts counter never incremented")
	}
	if snap.Counters["gpu.kernel_launches"] == 0 {
		t.Error("gpu.kernel_launches counter never incremented")
	}

	// The trace serializes to valid JSON.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
}

// TestObservabilityOffByDefault: a fully instrumented run must write
// byte-identical contigs and meter byte-identical costs versus the
// nil-observer default.
func TestObservabilityOffByDefault(t *testing.T) {
	_, reads := testGenomeReads(t, 2000, 48, 10)

	run := func(o *obs.Observer) (*Result, []byte) {
		t.Helper()
		cfg := smallConfig(t)
		cfg.Workers = 2
		cfg.Obs = o
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.AssembleContext(context.Background(), reads)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(res.ContigPath)
		if err != nil {
			t.Fatal(err)
		}
		return res, raw
	}

	base, baseContigs := run(nil)
	observer, _, _ := fullObserver(nil)
	inst, instContigs := run(observer)

	if !bytes.Equal(baseContigs, instContigs) {
		t.Error("instrumented run wrote different contig bytes")
	}
	if base.Counters != inst.Counters {
		t.Errorf("instrumented run metered different costs: %+v vs %+v",
			base.Counters, inst.Counters)
	}
	if base.TotalModeled != inst.TotalModeled {
		t.Errorf("instrumented run modeled %v, baseline %v", inst.TotalModeled, base.TotalModeled)
	}
}

// TestResumeTraceCachedMarkers: a resumed run's trace shows instant
// markers where the cached stages' spans would be, its log names the
// resume decision and each skipped stage, and the manifest carries the
// metrics snapshot of the last commit.
func TestResumeTraceCachedMarkers(t *testing.T) {
	_, reads := testGenomeReads(t, 2000, 48, 10)
	cfg := smallConfig(t)
	cfg.Resume = true
	errCrash := errors.New("injected crash")

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.FaultHook = func(stage PhaseName) error {
		if stage == PhaseSort {
			return errCrash
		}
		return nil
	}
	if _, err := p.AssembleContext(context.Background(), reads); !errors.Is(err, errCrash) {
		t.Fatalf("first run err = %v, want injected crash", err)
	}

	var logBuf bytes.Buffer
	observer, tr, _ := fullObserver(&logBuf)
	cfg.Obs = observer
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p2.AssembleContext(context.Background(), reads)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.CachedStages, ","); got != "Map,Sort" {
		t.Fatalf("CachedStages = %q, want Map,Sort", got)
	}

	markers := map[string]bool{}
	freshStages := map[string]bool{}
	for _, e := range tr.Events() {
		if e.Phase == "i" && e.Cat == "marker" {
			markers[e.Name] = true
		}
		if e.Phase == "X" && e.Cat == "stage" {
			freshStages[e.Name] = true
		}
	}
	for _, want := range []string{"cached: Map", "cached: Sort"} {
		if !markers[want] {
			t.Errorf("trace missing marker %q (have %v)", want, markers)
		}
	}
	if freshStages["Map"] || freshStages["Sort"] {
		t.Errorf("cached stages also traced as fresh spans: %v", freshStages)
	}
	if !freshStages["Reduce"] || !freshStages["Compress"] {
		t.Errorf("fresh stages missing spans: %v", freshStages)
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "resume plan") ||
		!strings.Contains(logs, "manifest valid, replaying 2 committed stage(s)") {
		t.Errorf("log missing resume decision: %s", logs)
	}
	if strings.Count(logs, "stage skipped (cached)") != 2 {
		t.Errorf("log should name 2 skipped stages: %s", logs)
	}

	// The manifest persists the metrics snapshot of the last commit.
	raw, err := os.ReadFile(filepath.Join(cfg.Workspace, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Metrics *obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Metrics == nil || len(m.Metrics.Counters) == 0 {
		t.Error("manifest missing metrics snapshot after instrumented commit")
	}
}

// TestDebugServerMidRun starts the debug endpoint, then probes it from a
// stage-commit hook while the pipeline is mid-run: expvar, the metrics
// snapshot, and pprof must all answer.
func TestDebugServerMidRun(t *testing.T) {
	_, reads := testGenomeReads(t, 2000, 48, 10)
	cfg := smallConfig(t)
	observer, _, reg := fullObserver(nil)
	cfg.Obs = observer
	srv, err := obs.NewDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		path string
		code int
		body []byte
	}
	var probes []probe
	p.FaultHook = func(stage PhaseName) error {
		if stage != PhaseMap {
			return nil
		}
		for _, path := range []string{"/debug/vars", "/debug/metrics", "/debug/pprof/cmdline"} {
			resp, err := http.Get("http://" + srv.Addr() + path)
			if err != nil {
				t.Errorf("GET %s mid-run: %v", path, err)
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			probes = append(probes, probe{path, resp.StatusCode, body})
		}
		return nil
	}
	if _, err := p.AssembleContext(context.Background(), reads); err != nil {
		t.Fatal(err)
	}
	if len(probes) != 3 {
		t.Fatalf("made %d probes, want 3", len(probes))
	}
	for _, pr := range probes {
		if pr.code != http.StatusOK {
			t.Errorf("%s mid-run status %d", pr.path, pr.code)
		}
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(probes[1].body, &snap); err != nil {
		t.Fatalf("/debug/metrics mid-run not a snapshot: %v", err)
	}
	if snap.Counters["gpu.kernel_launches"] == 0 {
		t.Error("mid-run metrics snapshot shows no kernel launches after Map")
	}
}
