package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/quality"
	"repro/internal/readsim"
)

// The backend differential harness runs the full pipeline under every
// graph engine — greedy, the sgraph full graph, and the spmat sparse-
// matrix backend — over a spread of read profiles, and pins the contract
// between them:
//
//   - spmat removes at least as many transitive edges as the Myers sweep
//     (masked SpGEMM sees witness pairs the sweep's in-play pruning
//     skips; see internal/spmat's package doc).
//   - When the removed-edge counts agree, the live edge sets agree
//     (superset + equal cardinality), so the contig FASTA must be
//     byte-identical to the full-graph output.
//   - The spmat FASTA is either byte-identical to the default greedy
//     pipeline's output, or it is a documented refinement pinned by a
//     golden file under testdata/golden/ — any other drift fails.
//
// Regenerate the goldens after an intentional engine change with
//
//	go test ./internal/core -run TestBackendDifferential -update
var updateGolden = flag.Bool("update", false, "rewrite backend differential golden FASTA files")

type backendShape struct {
	name   string
	genome readsim.GenomeParams
	reads  readsim.ReadParams
	mutate func(*Config)
	// clean marks repeat-free genomes where every engine must produce
	// zero misassemblies and only genome-substring contigs.
	clean bool
}

// backendShapes spans the differential surface: coverage density, read
// length, repeat content, overhang fuzz, singleton emission, and the
// strandedness of the simulated library.
var backendShapes = []backendShape{
	{
		name:   "dense_short",
		genome: readsim.GenomeParams{Length: 4000, Seed: 601},
		reads:  readsim.ReadParams{ReadLen: 64, Coverage: 14, Seed: 602},
		mutate: func(c *Config) { c.DedupeReads = true; c.VerifyOverlaps = true },
		clean:  true,
	},
	{
		name:   "long_reads",
		genome: readsim.GenomeParams{Length: 6000, Seed: 611},
		reads:  readsim.ReadParams{ReadLen: 100, Coverage: 10, Seed: 612},
		mutate: func(c *Config) { c.DedupeReads = true },
		clean:  true,
	},
	{
		name:   "sparse_singletons",
		genome: readsim.GenomeParams{Length: 3000, Seed: 621},
		reads:  readsim.ReadParams{ReadLen: 64, Coverage: 6, Seed: 622},
		mutate: func(c *Config) { c.DedupeReads = true; c.IncludeSingletons = true },
		clean:  true,
	},
	{
		name: "repeats",
		genome: readsim.GenomeParams{
			Length: 5000, RepeatLen: 200, RepeatCount: 3, Seed: 631,
		},
		reads:  readsim.ReadParams{ReadLen: 64, Coverage: 16, Seed: 632},
		mutate: func(c *Config) { c.DedupeReads = true },
		clean:  false,
	},
	{
		name:   "overhang_fuzz",
		genome: readsim.GenomeParams{Length: 4500, Seed: 641},
		reads:  readsim.ReadParams{ReadLen: 72, Coverage: 12, Seed: 642},
		mutate: func(c *Config) { c.DedupeReads = true; c.TransitiveFuzz = 2 },
		clean:  true,
	},
	{
		name:   "forward_only",
		genome: readsim.GenomeParams{Length: 3500, Seed: 651},
		reads:  readsim.ReadParams{ReadLen: 64, Coverage: 12, Seed: 652, ForwardOnly: true},
		mutate: func(c *Config) { c.DedupeReads = true },
		clean:  true,
	},
}

// runBackendShape assembles one shape under one engine and returns the
// result plus the FASTA bytes written to disk.
func runBackendShape(t *testing.T, shape backendShape, engine string) (*Result, []byte) {
	t.Helper()
	genome := readsim.Genome(shape.genome)
	reads := readsim.Simulate(genome, shape.reads)
	cfg := smallConfig(t)
	shape.mutate(&cfg)
	switch engine {
	case "greedy":
	case "full":
		cfg.FullGraph = true
	case "spmat":
		cfg.GraphBackend = BackendSpmat
	case "succinct":
		cfg.GraphBackend = BackendSuccinct
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatalf("engine %s: %v", engine, err)
	}
	fasta, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatalf("engine %s: %v", engine, err)
	}
	return res, fasta
}

func goldenPath(shape string) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("backend_%s.fasta", shape))
}

func TestBackendDifferential(t *testing.T) {
	for _, shape := range backendShapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			greedy, greedyFasta := runBackendShape(t, shape, "greedy")
			full, fullFasta := runBackendShape(t, shape, "full")
			sp, spFasta := runBackendShape(t, shape, "spmat")
			succ, succFasta := runBackendShape(t, shape, "succinct")

			// The succinct backend runs spmat's exact reduction predicate
			// over the compressed store, so its counters and contigs must
			// match spmat bit for bit — which transitively pins it against
			// greedy (or the committed golden) below.
			if succ.AcceptedEdges != sp.AcceptedEdges || succ.ReducedEdges != sp.ReducedEdges {
				t.Errorf("succinct edges %d+%d differ from spmat %d+%d",
					succ.AcceptedEdges, succ.ReducedEdges, sp.AcceptedEdges, sp.ReducedEdges)
			}
			if !bytes.Equal(succFasta, spFasta) {
				t.Errorf("succinct FASTA differs from spmat FASTA")
			}

			// The masked SpGEMM removes a superset of the Myers sweep's
			// transitive edges — never fewer.
			if sp.ReducedEdges < full.ReducedEdges {
				t.Errorf("spmat removed %d transitive edges, full graph removed %d",
					sp.ReducedEdges, full.ReducedEdges)
			}
			if sp.AcceptedEdges+sp.ReducedEdges != full.AcceptedEdges+full.ReducedEdges {
				t.Errorf("backends saw different string graphs: spmat %d+%d edges, full %d+%d",
					sp.AcceptedEdges, sp.ReducedEdges, full.AcceptedEdges, full.ReducedEdges)
			}

			// Superset + equal count ⇒ equal removed set ⇒ identical live
			// graph ⇒ identical unitigs, byte for byte.
			if sp.ReducedEdges == full.ReducedEdges && !bytes.Equal(spFasta, fullFasta) {
				t.Errorf("equal removed-edge counts (%d) but spmat FASTA differs from full-graph FASTA",
					sp.ReducedEdges)
			}

			// Against the default greedy pipeline the output is either
			// byte-identical or a golden-pinned refinement.
			golden := goldenPath(shape.name)
			if *updateGolden {
				if bytes.Equal(spFasta, greedyFasta) {
					if err := os.Remove(golden); err != nil && !os.IsNotExist(err) {
						t.Fatal(err)
					}
				} else {
					if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(golden, spFasta, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}
			if bytes.Equal(spFasta, greedyFasta) {
				if _, err := os.Stat(golden); err == nil {
					t.Errorf("spmat FASTA matches greedy but a stale golden exists; rerun with -update")
				}
			} else {
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("spmat FASTA diverges from greedy and no golden pins it (rerun with -update): %v", err)
				}
				if !bytes.Equal(spFasta, want) {
					t.Errorf("spmat FASTA drifted from the committed golden %s", golden)
				}
			}
			_ = greedy

			// Quality floor: the refinement must never invent sequence.
			genome := readsim.Genome(shape.genome)
			rep := quality.Evaluate(genome, sp.Contigs)
			if shape.clean {
				if rep.MisassembledContigs != 0 {
					t.Errorf("spmat produced %d misassembled contigs", rep.MisassembledContigs)
				}
				for i, c := range sp.Contigs {
					if !isSubstring(genome, c) {
						t.Errorf("spmat contig %d is not a genome substring", i)
					}
				}
			}
			if rep.CoverageFraction() < 0.80 {
				t.Errorf("spmat coverage = %.3f", rep.CoverageFraction())
			}
		})
	}
}
