package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dna"
)

// errInjectedCrash simulates the process dying right after a stage commit.
var errInjectedCrash = errors.New("injected crash")

// coldContigs runs the pipeline cold in its own workspace and returns the
// reference FASTA bytes a resumed run must reproduce exactly.
func coldContigs(t *testing.T, mutate func(*Config)) []byte {
	t.Helper()
	cfg := smallConfig(t)
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(testResumeReads(t))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testResumeReads(t *testing.T) *dna.ReadSet {
	t.Helper()
	_, reads := testGenomeReads(t, 2000, 48, 10)
	return reads
}

func TestResumeAfterEachStage(t *testing.T) {
	want := coldContigs(t, nil)
	reads := testResumeReads(t)

	stages := []PhaseName{PhaseMap, PhaseSort, PhaseReduce, PhaseCompress}
	for i, crashAfter := range stages {
		t.Run(fmt.Sprintf("crash_after_%s", crashAfter), func(t *testing.T) {
			cfg := smallConfig(t)

			// First run: crash immediately after crashAfter commits.
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			p.FaultHook = func(stage PhaseName) error {
				if stage == crashAfter {
					return errInjectedCrash
				}
				return nil
			}
			if _, err := p.Assemble(reads); !errors.Is(err, errInjectedCrash) {
				t.Fatalf("interrupted run error = %v, want injected crash", err)
			}

			// Second run: same config + Resume resumes from the manifest.
			cfg.Resume = true
			p2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p2.Assemble(reads)
			if err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if len(res.CachedStages) != i+1 {
				t.Fatalf("CachedStages = %v, want the %d committed stages", res.CachedStages, i+1)
			}
			for j := 0; j <= i; j++ {
				if res.CachedStages[j] != string(stages[j]) {
					t.Fatalf("CachedStages = %v, want prefix of %v", res.CachedStages, stages)
				}
			}
			got, err := os.ReadFile(res.ContigPath)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatal("resumed output differs from cold run")
			}
		})
	}
}

func TestResumeFullyCachedRun(t *testing.T) {
	reads := testResumeReads(t)
	cfg := smallConfig(t)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(first.ContigPath)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p2.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) != len(pipelineStages) {
		t.Fatalf("CachedStages = %v, want all %d stages", res.CachedStages, len(pipelineStages))
	}
	got, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("fully-cached rerun changed the output")
	}
	if res.AcceptedEdges != first.AcceptedEdges || res.CandidateEdges != first.CandidateEdges ||
		res.SortDiskPasses != first.SortDiskPasses {
		t.Errorf("cached counters differ: %+v vs %+v", res, first)
	}
}

func TestResumeInvalidatedByConfigChange(t *testing.T) {
	reads := testResumeReads(t)
	cfg := smallConfig(t)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Assemble(reads); err != nil {
		t.Fatal(err)
	}

	// Any output-relevant config change must invalidate the manifest.
	cfg.Resume = true
	cfg.MinOverlap = 33
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p2.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) != 0 {
		t.Fatalf("changed config still replayed stages %v", res.CachedStages)
	}
}

func TestResumeInvalidatedByInputChange(t *testing.T) {
	reads := testResumeReads(t)
	cfg := smallConfig(t)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Assemble(reads); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	_, other := testGenomeReads(t, 2100, 48, 10)
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p2.Assemble(other)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) != 0 {
		t.Fatalf("changed input still replayed stages %v", res.CachedStages)
	}
}

func TestResumeInvalidatedByCorruptArtifact(t *testing.T) {
	want := coldContigs(t, nil)
	reads := testResumeReads(t)
	cfg := smallConfig(t)

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.FaultHook = func(stage PhaseName) error {
		if stage == PhaseSort {
			return errInjectedCrash
		}
		return nil
	}
	if _, err := p.Assemble(reads); !errors.Is(err, errInjectedCrash) {
		t.Fatalf("interrupted run error = %v", err)
	}

	// Flip a byte in one committed sorted partition: the checksum no longer
	// matches, so resume must fall back to a full, correct re-run.
	partDir := filepath.Join(cfg.Workspace, "partitions")
	entries, err := os.ReadDir(partDir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".sorted" {
			continue
		}
		path := filepath.Join(partDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		data[0] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("no sorted partition found to corrupt")
	}

	cfg.Resume = true
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p2.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) != 0 {
		t.Fatalf("corrupted artifact still replayed stages %v", res.CachedStages)
	}
	got, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("re-run after corruption differs from cold run")
	}
}

func TestResumeWithoutManifestRunsCold(t *testing.T) {
	reads := testResumeReads(t)
	cfg := smallConfig(t)
	cfg.Resume = true // nothing to resume from: must behave like a cold run
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) != 0 {
		t.Fatalf("CachedStages = %v on an empty workspace", res.CachedStages)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs produced")
	}
}
