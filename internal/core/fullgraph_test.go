package core

import (
	"strings"
	"testing"

	"repro/internal/quality"
	"repro/internal/readsim"
)

func TestFullGraphModeAssembles(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 5000, Seed: 501})
	reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 64, Coverage: 14, Seed: 502})
	cfg := smallConfig(t)
	cfg.FullGraph = true
	cfg.DedupeReads = true
	cfg.VerifyOverlaps = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReducedEdges == 0 {
		t.Error("dense overlaps should contain transitive edges")
	}
	if res.FalsePositives != 0 {
		t.Errorf("false positives: %d", res.FalsePositives)
	}
	rep := quality.Evaluate(genome, res.Contigs)
	if rep.MisassembledContigs != 0 {
		t.Errorf("%d misassembled contigs", rep.MisassembledContigs)
	}
	if rep.CoverageFraction() < 0.95 {
		t.Errorf("coverage = %.3f", rep.CoverageFraction())
	}
	if rep.N50 < 500 {
		t.Errorf("N50 = %d, expected long unitigs", rep.N50)
	}
}

func TestFullGraphAtLeastAsContiguousAsGreedy(t *testing.T) {
	// The full graph avoids greedy commitment mistakes; on deduplicated
	// error-free data its N50 must be at least the greedy N50.
	genome := readsim.Genome(readsim.GenomeParams{Length: 6000, Seed: 503})
	reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 64, Coverage: 18, Seed: 504})
	run := func(full bool) int {
		cfg := smallConfig(t)
		cfg.FullGraph = full
		cfg.DedupeReads = true
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.Contigs {
			if !strings.Contains(genome.String(), c.String()) &&
				!strings.Contains(genome.ReverseComplement().String(), c.String()) {
				t.Fatalf("full=%v: contig %d not a genome substring", full, i)
			}
		}
		return res.ContigStats.N50
	}
	greedy := run(false)
	full := run(true)
	if full < greedy {
		t.Errorf("full-graph N50 %d < greedy N50 %d", full, greedy)
	}
}

func TestFullGraphContigsWrittenToFasta(t *testing.T) {
	_, reads := testGenomeReads(t, 1500, 50, 10)
	cfg := smallConfig(t)
	cfg.FullGraph = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContigPath == "" || len(res.Contigs) == 0 {
		t.Fatal("full-graph mode must still produce FASTA output")
	}
	if _, ok := res.PhaseByName(PhaseReduce); !ok {
		t.Error("reduce phase missing")
	}
	if _, ok := res.PhaseByName(PhaseCompress); !ok {
		t.Error("compress phase missing")
	}
}
