package core

// modeledGraphDegree is the directed overlap edges per vertex the host
// admission model assumes. Shotgun data at assembly-grade coverage keeps
// a handful of true overlaps per read end; 8 directed edges per vertex
// upper-bounds the post-reduction graphs the test profiles produce while
// staying a pure function of the job size.
const modeledGraphDegree = 8

// GraphHostModel returns the modeled peak host bytes a job of numReads
// reads (of at most maxReadLen bases) needs under the given graph
// backend: the bulk read set plus the backend's graph-representation
// peak. It is the serving layer's host-side analogue of
// DeviceDemandBytes — a deterministic upper bound the admission math can
// invert — not a measurement.
//
// Per-backend graph terms, for n = 2*numReads vertices and
// nnz = modeledGraphDegree*n modeled entries:
//
//   - greedy: per-vertex arrays only (successor, overlap length, one bit
//     of out-mask) — no per-edge term, the paper's O(reads) design.
//   - spmat: the COO builder (10 B/entry) and the packed CSR
//     (8 B/rowPtr + 6 B/entry) coexist at Build time, so the peak is
//     their sum.
//   - succinct: the compressed adjacency stream (~3 B/entry) plus the
//     two Elias–Fano offset sequences (~2 B/vertex) — the builder's
//     transient bookkeeping is smaller than the sealed structure, so the
//     sealed size is the peak.
func GraphHostModel(backend string, numReads, maxReadLen int) int64 {
	n := int64(2 * numReads)
	nnz := modeledGraphDegree * n
	reads := int64(numReads)*int64(maxReadLen) + 4*int64(numReads)
	var g int64
	switch backend {
	case BackendSpmat:
		g = 10*nnz + 8*(n+1) + 6*nnz
	case BackendSuccinct:
		g = 3*nnz + 2*(n+1)
	default: // greedy (and the empty-string resolution)
		g = 6*n + (n+7)/8
	}
	return reads + g
}

// MaxReadsForHostBudget inverts GraphHostModel: the largest numReads
// whose modeled host footprint fits in budget bytes. Zero when even one
// read does not fit.
func MaxReadsForHostBudget(backend string, budget int64, maxReadLen int) int {
	if budget <= 0 || GraphHostModel(backend, 1, maxReadLen) > budget {
		return 0
	}
	lo, hi := 1, 2
	for GraphHostModel(backend, hi, maxReadLen) <= budget {
		lo = hi
		if hi > 1<<40 { // model is linear: budget this large means "unbounded"
			return hi
		}
		hi *= 2
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if GraphHostModel(backend, mid, maxReadLen) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
