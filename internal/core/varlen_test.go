package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dna"
	"repro/internal/readsim"
)

// TestAssembleVariableLengthReads exercises the pipeline with reads of
// mixed lengths (trimmed reads are common in real data): per-read
// partition ranges [lmin, len) differ, the greedy graph must honour each
// vertex's own length, and contigs must still be genome substrings.
func TestAssembleVariableLengthReads(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 3000, Seed: 601})
	rng := rand.New(rand.NewSource(602))
	rs := dna.NewReadSet(600, 600*64)
	// Sample reads of length 40..64 from both strands.
	for i := 0; i < 600; i++ {
		n := 40 + rng.Intn(25)
		pos := rng.Intn(len(genome) - n + 1)
		read := genome[pos : pos+n].Clone()
		if rng.Intn(2) == 1 {
			read = read.ReverseComplement()
		}
		rs.Append(read)
	}
	cfg := smallConfig(t)
	cfg.MinOverlap = 25
	cfg.VerifyOverlaps = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(rs)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives != 0 {
		t.Errorf("false positives: %d", res.FalsePositives)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs")
	}
	gs, grc := genome.String(), genome.ReverseComplement().String()
	for i, c := range res.Contigs {
		if !strings.Contains(gs, c.String()) && !strings.Contains(grc, c.String()) {
			t.Errorf("contig %d not a genome substring", i)
		}
	}
	// Variable lengths must yield partitions beyond the shortest read's
	// range.
	if res.Partitions <= 64-40 {
		t.Logf("partitions = %d", res.Partitions)
	}
}

// TestAssembleVariableLengthFullGraph covers the transitive-reduction
// path with heterogeneous lengths, where overhang arithmetic uses
// per-vertex lengths.
func TestAssembleVariableLengthFullGraph(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 2000, Seed: 603})
	rng := rand.New(rand.NewSource(604))
	rs := dna.NewReadSet(500, 500*70)
	for i := 0; i < 500; i++ {
		n := 45 + rng.Intn(26)
		pos := rng.Intn(len(genome) - n + 1)
		rs.Append(genome[pos : pos+n].Clone())
	}
	cfg := smallConfig(t)
	cfg.MinOverlap = 28
	cfg.FullGraph = true
	cfg.DedupeReads = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(rs)
	if err != nil {
		t.Fatal(err)
	}
	gs := genome.String()
	grc := genome.ReverseComplement().String()
	for i, c := range res.Contigs {
		if !strings.Contains(gs, c.String()) && !strings.Contains(grc, c.String()) {
			t.Errorf("full-graph contig %d not a genome substring", i)
		}
	}
	if res.ReducedEdges == 0 {
		t.Error("expected transitive reductions")
	}
}
