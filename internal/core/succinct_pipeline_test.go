package core

import (
	"errors"
	"os"
	"testing"
)

// TestSuccinctSinglePassHostPeak pins the tentpole memory claim at the
// pipeline level: with the succinct backend, the graph-attributable host
// peak during Reduce — builder transients included — stays below the
// uncompressed edge list (10 B per directed edge) that the spmat builder
// materializes, and below spmat's own measured graph peak.
func TestSuccinctSinglePassHostPeak(t *testing.T) {
	_, reads := testGenomeReads(t, 4000, 64, 14)

	run := func(backend string) *Result {
		cfg := smallConfig(t)
		cfg.DedupeReads = true
		cfg.GraphBackend = backend
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Assemble(reads)
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		if cur := p.GraphMem().Current(); cur != 0 {
			t.Fatalf("backend %s leaks %d graph-tracked bytes", backend, cur)
		}
		return res
	}

	succ := run(BackendSuccinct)
	sp := run(BackendSpmat)

	succReduce, ok := succ.PhaseByName(PhaseReduce)
	if !ok || succReduce.GraphHostPeak == 0 {
		t.Fatalf("succinct Reduce graph peak missing: %+v", succReduce)
	}
	spReduce, _ := sp.PhaseByName(PhaseReduce)

	totalEdges := succ.AcceptedEdges + succ.ReducedEdges
	if totalEdges == 0 {
		t.Fatal("no edges in the differential run")
	}
	edgeListBytes := 10 * totalEdges
	if succReduce.GraphHostPeak >= edgeListBytes {
		t.Errorf("succinct graph peak %d B not below the %d B edge list (%d edges)",
			succReduce.GraphHostPeak, edgeListBytes, totalEdges)
	}
	if succReduce.GraphHostPeak >= spReduce.GraphHostPeak {
		t.Errorf("succinct graph peak %d B not below spmat's %d B",
			succReduce.GraphHostPeak, spReduce.GraphHostPeak)
	}

	succCompress, _ := succ.PhaseByName(PhaseCompress)
	spCompress, _ := sp.PhaseByName(PhaseCompress)
	if succCompress.GraphHostPeak == 0 || succCompress.GraphHostPeak >= spCompress.GraphHostPeak {
		t.Errorf("succinct Compress graph peak %d B, spmat %d B",
			succCompress.GraphHostPeak, spCompress.GraphHostPeak)
	}
}

// TestSuccinctResume pins the new backend into the resume contract: a run
// crashed after Reduce resumes and reproduces the cold output byte for
// byte, rebuilding the compressed store from the persisted edge artifact.
func TestSuccinctResume(t *testing.T) {
	want := coldContigs(t, func(c *Config) { c.GraphBackend = BackendSuccinct })
	reads := testResumeReads(t)

	cfg := smallConfig(t)
	cfg.GraphBackend = BackendSuccinct
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.FaultHook = func(stage PhaseName) error {
		if stage == PhaseReduce {
			return errInjectedCrash
		}
		return nil
	}
	if _, err := p.Assemble(reads); !errors.Is(err, errInjectedCrash) {
		t.Fatalf("interrupted run error = %v, want injected crash", err)
	}

	cfg.Resume = true
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p2.Assemble(reads)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if len(res.CachedStages) != 3 {
		t.Fatalf("CachedStages = %v, want Map/Sort/Reduce", res.CachedStages)
	}
	got, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("resumed succinct output differs from cold run")
	}
}

// TestGraphHostModel sanity-checks the admission model: footprints grow
// with job size, the backends order as their representations do, and
// MaxReadsForHostBudget is the exact inverse at the budget boundary.
func TestGraphHostModel(t *testing.T) {
	const readLen = 100
	for _, backend := range Backends {
		if GraphHostModel(backend, 1000, readLen) >= GraphHostModel(backend, 2000, readLen) {
			t.Errorf("%s: model not increasing in numReads", backend)
		}
	}
	n := 100000
	greedy := GraphHostModel(BackendGreedy, n, readLen)
	succ := GraphHostModel(BackendSuccinct, n, readLen)
	sp := GraphHostModel(BackendSpmat, n, readLen)
	if !(greedy < succ && succ < sp) {
		t.Errorf("model ordering: greedy=%d succinct=%d spmat=%d", greedy, succ, sp)
	}

	for _, backend := range Backends {
		for _, budget := range []int64{1 << 20, 64 << 20, 8 << 30} {
			maxReads := MaxReadsForHostBudget(backend, budget, readLen)
			if maxReads <= 0 {
				t.Fatalf("%s: budget %d admits no reads", backend, budget)
			}
			if got := GraphHostModel(backend, maxReads, readLen); got > budget {
				t.Errorf("%s: model(%d) = %d exceeds budget %d", backend, maxReads, got, budget)
			}
			if got := GraphHostModel(backend, maxReads+1, readLen); got <= budget {
				t.Errorf("%s: maxReads %d not maximal for budget %d", backend, maxReads, budget)
			}
		}
	}
	if MaxReadsForHostBudget(BackendSuccinct, 0, readLen) != 0 {
		t.Error("zero budget admits reads")
	}
}
