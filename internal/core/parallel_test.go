package core

import (
	"os"
	"testing"
)

// TestWorkersDeterminism is the contract behind Config.Workers: the
// assembly output and the modeled cost must be byte-identical for every
// worker count, because partition writes, graph insertion, and contig
// emission all happen in a deterministic order regardless of scheduling.
func TestWorkersDeterminism(t *testing.T) {
	_, reads := testGenomeReads(t, 3000, 56, 10)

	type run struct {
		res   *Result
		fasta []byte
	}
	runs := map[int]run{}
	for _, w := range []int{1, 2, 8} {
		cfg := smallConfig(t)
		cfg.Workers = w
		cfg.VerifyOverlaps = true
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Assemble(reads)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		fasta, err := os.ReadFile(res.ContigPath)
		if err != nil {
			t.Fatal(err)
		}
		runs[w] = run{res, fasta}
	}

	base := runs[1]
	for _, w := range []int{2, 8} {
		got := runs[w]
		if len(got.res.Contigs) != len(base.res.Contigs) {
			t.Fatalf("Workers=%d: %d contigs, Workers=1 has %d",
				w, len(got.res.Contigs), len(base.res.Contigs))
		}
		for i := range base.res.Contigs {
			if !got.res.Contigs[i].Equal(base.res.Contigs[i]) {
				t.Fatalf("Workers=%d: contig %d differs from serial run", w, i)
			}
		}
		if string(got.fasta) != string(base.fasta) {
			t.Errorf("Workers=%d: contig FASTA bytes differ from serial run", w)
		}
		if got.res.PairsGenerated != base.res.PairsGenerated {
			t.Errorf("Workers=%d: PairsGenerated = %d, want %d",
				w, got.res.PairsGenerated, base.res.PairsGenerated)
		}
		if got.res.CandidateEdges != base.res.CandidateEdges {
			t.Errorf("Workers=%d: CandidateEdges = %d, want %d",
				w, got.res.CandidateEdges, base.res.CandidateEdges)
		}
		if got.res.AcceptedEdges != base.res.AcceptedEdges {
			t.Errorf("Workers=%d: AcceptedEdges = %d, want %d",
				w, got.res.AcceptedEdges, base.res.AcceptedEdges)
		}
		if got.res.FalsePositives != base.res.FalsePositives {
			t.Errorf("Workers=%d: FalsePositives = %d, want %d",
				w, got.res.FalsePositives, base.res.FalsePositives)
		}
		if got.res.SortDiskPasses != base.res.SortDiskPasses {
			t.Errorf("Workers=%d: SortDiskPasses = %d, want %d",
				w, got.res.SortDiskPasses, base.res.SortDiskPasses)
		}
		// Modeled cost is derived from metered byte counts, which are a
		// pure function of the data — never of the schedule.
		if got.res.TotalModeled != base.res.TotalModeled {
			t.Errorf("Workers=%d: TotalModeled = %v, want %v",
				w, got.res.TotalModeled, base.res.TotalModeled)
		}
		for _, ph := range base.res.Phases {
			gp, ok := got.res.PhaseByName(PhaseName(ph.Name))
			if !ok {
				t.Errorf("Workers=%d: phase %s missing", w, ph.Name)
				continue
			}
			if gp.Modeled != ph.Modeled {
				t.Errorf("Workers=%d: phase %s modeled %v, want %v",
					w, ph.Name, gp.Modeled, ph.Modeled)
			}
			if gp.DiskRead != ph.DiskRead || gp.DiskWrite != ph.DiskWrite {
				t.Errorf("Workers=%d: phase %s disk %d/%d, want %d/%d",
					w, ph.Name, gp.DiskRead, gp.DiskWrite, ph.DiskRead, ph.DiskWrite)
			}
		}
	}
}

// TestWorkersDeterminismFullGraph repeats the worker-count contract for
// the FullGraph tail, whose transitive reduction consumes the candidate
// edges in insertion order.
func TestWorkersDeterminismFullGraph(t *testing.T) {
	_, reads := testGenomeReads(t, 2000, 48, 8)
	var base *Result
	for _, w := range []int{1, 4} {
		cfg := smallConfig(t)
		cfg.Workers = w
		cfg.FullGraph = true
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Assemble(reads)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.ReducedEdges != base.ReducedEdges || res.AcceptedEdges != base.AcceptedEdges {
			t.Errorf("Workers=%d: edges reduced/accepted %d/%d, want %d/%d",
				w, res.ReducedEdges, res.AcceptedEdges, base.ReducedEdges, base.AcceptedEdges)
		}
		if len(res.Contigs) != len(base.Contigs) {
			t.Fatalf("Workers=%d: %d contigs, want %d", w, len(res.Contigs), len(base.Contigs))
		}
		for i := range base.Contigs {
			if !res.Contigs[i].Equal(base.Contigs[i]) {
				t.Fatalf("Workers=%d: contig %d differs", w, i)
			}
		}
		if res.TotalModeled != base.TotalModeled {
			t.Errorf("Workers=%d: TotalModeled = %v, want %v", w, res.TotalModeled, base.TotalModeled)
		}
	}
}
