package core

import (
	"os"
	"testing"
)

// Streams on and off must be observationally identical — byte-identical
// FASTA, identical cost counters and edge totals — with streams only
// shrinking the modeled seconds. This is the acceptance contract of the
// overlap model: it re-places existing charges on concurrent timelines,
// it never adds or removes work.
func TestStreamsIdenticalOutputLowerModeledTime(t *testing.T) {
	_, reads := testGenomeReads(t, 3000, 56, 10)
	run := func(streams bool) (*Result, []byte) {
		cfg := smallConfig(t)
		cfg.Streams = streams
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		fasta, err := os.ReadFile(res.ContigPath)
		if err != nil {
			t.Fatal(err)
		}
		return res, fasta
	}

	off, offFasta := run(false)
	on, onFasta := run(true)

	if string(onFasta) != string(offFasta) {
		t.Errorf("FASTA output differs with streams on (%d bytes) vs off (%d bytes)",
			len(onFasta), len(offFasta))
	}
	if on.Counters != off.Counters {
		t.Errorf("cost counters differ: on=%+v off=%+v", on.Counters, off.Counters)
	}
	if on.AcceptedEdges != off.AcceptedEdges || on.CandidateEdges != off.CandidateEdges {
		t.Errorf("edges differ: on=%d/%d off=%d/%d",
			on.AcceptedEdges, on.CandidateEdges, off.AcceptedEdges, off.CandidateEdges)
	}
	if len(on.Contigs) != len(off.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(on.Contigs), len(off.Contigs))
	}
	for i := range on.Contigs {
		if !on.Contigs[i].Equal(off.Contigs[i]) {
			t.Fatalf("contig %d differs with streams on", i)
		}
	}

	if off.OverlapSaved != 0 || off.OverlapRatio != 0 {
		t.Errorf("streams off reported overlap: saved=%v ratio=%v", off.OverlapSaved, off.OverlapRatio)
	}
	if on.OverlapSaved <= 0 {
		t.Errorf("OverlapSaved = %v, want > 0 with streams on", on.OverlapSaved)
	}
	if on.OverlapRatio <= 0 || on.OverlapRatio >= 1 {
		t.Errorf("OverlapRatio = %v, want in (0, 1)", on.OverlapRatio)
	}
	if on.TotalModeled >= off.TotalModeled {
		t.Errorf("TotalModeled with streams = %v, want < serial %v", on.TotalModeled, off.TotalModeled)
	}
	// Identical counters mean identical additive time, so per phase the
	// streamed figure is the serial figure minus that phase's saving.
	for _, name := range []PhaseName{PhaseMap, PhaseSort, PhaseReduce, PhaseCompress} {
		po, _ := on.PhaseByName(name)
		pf, _ := off.PhaseByName(name)
		if po.Modeled > pf.Modeled {
			t.Errorf("phase %s: streamed modeled %v exceeds serial %v", name, po.Modeled, pf.Modeled)
		}
	}
	sortOn, _ := on.PhaseByName(PhaseSort)
	sortOff, _ := off.PhaseByName(PhaseSort)
	if sortOn.Modeled >= sortOff.Modeled {
		t.Errorf("sort phase modeled %v, want < serial %v (double-buffered passes)",
			sortOn.Modeled, sortOff.Modeled)
	}
	if sortOn.OverlapSaved <= 0 {
		t.Errorf("sort phase OverlapSaved = %v, want > 0", sortOn.OverlapSaved)
	}
}

// With streams on, the trace must carry per-stream async spans so the
// overlap is visible in the timeline view, and the stream-op counter must
// tick.
func TestStreamsTraceSpans(t *testing.T) {
	_, reads := testGenomeReads(t, 2000, 48, 10)
	cfg := smallConfig(t)
	observer, tr, reg := fullObserver(nil)
	cfg.Obs = observer
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Assemble(reads); err != nil {
		t.Fatal(err)
	}
	streamsSeen := map[string]bool{}
	for _, e := range tr.Events() {
		if e.Cat == "stream" && e.Phase == "b" {
			if s, ok := e.Args["stream"].(string); ok {
				streamsSeen[s] = true
			}
		}
	}
	for _, want := range []string{"sort-io", "reduce-io"} {
		if !streamsSeen[want] {
			t.Errorf("trace has no async spans for stream %q (saw %v)", want, streamsSeen)
		}
	}
	if ops := reg.Snapshot().Counters["gpu.stream_ops"]; ops <= 0 {
		t.Errorf("gpu.stream_ops = %d, want > 0", ops)
	}
}
