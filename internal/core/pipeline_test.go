package core

import (
	"os"
	"strings"
	"testing"

	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/gpu"
	"repro/internal/readsim"
)

// smallConfig returns a config sized so that tiny test datasets still
// exercise multi-run sorting and multi-window reduction.
func smallConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig(t.TempDir())
	cfg.MinOverlap = 31
	cfg.HostBlockPairs = 4096
	cfg.DeviceBlockPairs = 512
	cfg.MapBatchReads = 256
	return cfg
}

func testGenomeReads(t *testing.T, genomeLen int, readLen int, cov float64) (dna.Seq, *dna.ReadSet) {
	t.Helper()
	genome := readsim.Genome(readsim.GenomeParams{Length: genomeLen, Seed: 77})
	reads := readsim.Simulate(genome, readsim.ReadParams{
		ReadLen: readLen, Coverage: cov, Seed: 78,
	})
	return genome, reads
}

func isSubstring(genome dna.Seq, s dna.Seq) bool {
	return strings.Contains(genome.String(), s.String()) ||
		strings.Contains(genome.ReverseComplement().String(), s.String())
}

func TestAssembleReconstructsSubstrings(t *testing.T) {
	genome, reads := testGenomeReads(t, 4000, 64, 12)
	cfg := smallConfig(t)
	cfg.VerifyOverlaps = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives != 0 {
		t.Errorf("128-bit fingerprints produced %d false positives", res.FalsePositives)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs produced")
	}
	// Error-free reads: every contig must be an exact substring of the
	// genome (either strand).
	for i, c := range res.Contigs {
		if !isSubstring(genome, c) {
			t.Errorf("contig %d (len %d) is not a genome substring", i, len(c))
		}
	}
	// Greedy assembly of 12x error-free coverage should produce contigs
	// far longer than a read.
	if res.ContigStats.N50 < 3*64 {
		t.Errorf("N50 = %d, expected substantial assembly", res.ContigStats.N50)
	}
	if res.AcceptedEdges == 0 || res.CandidateEdges < res.AcceptedEdges/2 {
		t.Errorf("edges: candidates=%d accepted=%d", res.CandidateEdges, res.AcceptedEdges)
	}
}

func TestAssemblePhasesReported(t *testing.T) {
	_, reads := testGenomeReads(t, 1500, 50, 8)
	cfg := smallConfig(t)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []PhaseName{PhaseMap, PhaseSort, PhaseReduce, PhaseCompress} {
		ps, ok := res.PhaseByName(name)
		if !ok {
			t.Fatalf("phase %s missing", name)
		}
		if ps.Wall < 0 || ps.Modeled < 0 {
			t.Errorf("phase %s has negative times: %+v", name, ps)
		}
	}
	sort, _ := res.PhaseByName(PhaseSort)
	if sort.DiskRead == 0 || sort.DiskWrite == 0 {
		t.Error("sort phase should move disk bytes")
	}
	mapPh, _ := res.PhaseByName(PhaseMap)
	if mapPh.DiskWrite == 0 {
		t.Error("map phase should write partitions")
	}
	if mapPh.PeakDevice == 0 {
		t.Error("map phase should allocate device memory")
	}
	if res.TotalModeled <= 0 {
		t.Error("modeled time should be positive")
	}
}

func TestAssembleDeterministic(t *testing.T) {
	_, reads := testGenomeReads(t, 2000, 48, 10)
	run := func() *Result {
		cfg := smallConfig(t)
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.AcceptedEdges != b.AcceptedEdges || a.CandidateEdges != b.CandidateEdges {
		t.Fatalf("edge counts differ: %d/%d vs %d/%d",
			a.AcceptedEdges, a.CandidateEdges, b.AcceptedEdges, b.CandidateEdges)
	}
	if len(a.Contigs) != len(b.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(a.Contigs), len(b.Contigs))
	}
	for i := range a.Contigs {
		if !a.Contigs[i].Equal(b.Contigs[i]) {
			t.Fatalf("contig %d differs between runs", i)
		}
	}
}

func TestAssembleFileWithLoadPhase(t *testing.T) {
	_, reads := testGenomeReads(t, 1000, 40, 6)
	dir := t.TempDir()
	path := dir + "/reads.fastq"
	if err := fastq.WriteFastqFile(path, reads); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(t)
	cfg.MinOverlap = 25
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.AssembleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	load, ok := res.PhaseByName(PhaseLoad)
	if !ok || load.DiskRead == 0 {
		t.Errorf("load phase = %+v, ok=%v", load, ok)
	}
	if res.NumReads != reads.NumReads() {
		t.Errorf("NumReads = %d, want %d", res.NumReads, reads.NumReads())
	}
	// Contig FASTA must exist and parse.
	rs, _, err := fastq.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumReads() != len(res.Contigs) {
		t.Errorf("FASTA has %d contigs, result has %d", rs.NumReads(), len(res.Contigs))
	}
}

func TestAssembleDeviceMemoryBounded(t *testing.T) {
	_, reads := testGenomeReads(t, 1200, 40, 8)
	cfg := smallConfig(t)
	cfg.MinOverlap = 25
	cfg.GPU = gpu.Spec{Name: "tiny", Cores: 64, ClockMHz: 500,
		MemBandwidthGBps: 10, MemBytes: 1 << 20}
	cfg.DeviceBlockPairs = 256
	cfg.MapBatchReads = 64
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Assemble(reads); err != nil {
		t.Fatal(err)
	}
	if peak := p.Device().MemTracker().Peak(); peak > 1<<20 {
		t.Errorf("device peak %d exceeds 1 MiB capacity", peak)
	}
}

func TestAssembleErrors(t *testing.T) {
	cfg := smallConfig(t)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Assemble(dna.NewReadSet(0, 0)); err == nil {
		t.Error("empty read set should fail")
	}
	rs := dna.NewReadSet(1, 10)
	rs.Append(dna.MustParseSeq("ACGTACGT")) // shorter than MinOverlap 31
	if _, err := p.Assemble(rs); err == nil {
		t.Error("MinOverlap >= read length should fail")
	}
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig("/tmp/x")
	cases := []struct {
		mutate func(*Config)
		ok     bool
	}{
		{func(c *Config) {}, true},
		{func(c *Config) { c.Workspace = "" }, false},
		{func(c *Config) { c.MinOverlap = 0 }, false},
		{func(c *Config) { c.HostBlockPairs = 0 }, false},
		{func(c *Config) { c.DeviceBlockPairs = c.HostBlockPairs * 2 }, false},
		{func(c *Config) { c.MapBatchReads = 0 }, false},
		{func(c *Config) { c.GPU.MemBytes = 10 }, false},
	}
	for i, c := range cases {
		cfg := base
		c.mutate(&cfg)
		if err := cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: err=%v ok=%v", i, err, c.ok)
		}
	}
}

func TestKeepIntermediate(t *testing.T) {
	_, reads := testGenomeReads(t, 800, 40, 6)
	cfg := smallConfig(t)
	cfg.MinOverlap = 25
	cfg.KeepIntermediate = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Assemble(reads); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cfg.Workspace + "/partitions")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("KeepIntermediate should retain partition files")
	}
	cfg2 := smallConfig(t)
	cfg2.MinOverlap = 25
	p2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Assemble(reads); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cfg2.Workspace + "/partitions"); !os.IsNotExist(err) {
		t.Error("partitions should be removed without KeepIntermediate")
	}
}

func TestSingletonsCoverAllReads(t *testing.T) {
	_, reads := testGenomeReads(t, 800, 40, 5)
	cfg := smallConfig(t)
	cfg.MinOverlap = 25
	cfg.IncludeSingletons = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	// With singletons, total contig bases must be at least ... every read
	// is represented, so contig bases >= reads' unique contribution; at
	// minimum there are at least as many contig bases as one read.
	if res.ContigStats.TotalBases < int64(reads.MaxLen()) {
		t.Error("singleton contigs missing")
	}
	// No contig may be shorter than the shortest overhang (1 base), and
	// singletons are exactly read-length.
	count := 0
	for _, c := range res.Contigs {
		if len(c) == 40 {
			count++
		}
	}
	if count == 0 {
		t.Log("no exact read-length contigs; acceptable if every read overlapped")
	}
}
