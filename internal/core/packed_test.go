package core

import (
	"testing"

	"repro/internal/dna"
)

func TestPackedReadsIdenticalAssembly(t *testing.T) {
	_, reads := testGenomeReads(t, 2500, 55, 10)
	run := func(packed bool) (*Result, int64) {
		cfg := smallConfig(t)
		cfg.PackedReads = packed
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		mapPS, _ := res.PhaseByName(PhaseMap)
		return res, mapPS.PeakHost
	}
	plain, plainPeak := run(false)
	packed, packedPeak := run(true)
	if len(plain.Contigs) != len(packed.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(plain.Contigs), len(packed.Contigs))
	}
	for i := range plain.Contigs {
		if !plain.Contigs[i].Equal(packed.Contigs[i]) {
			t.Fatalf("contig %d differs under packed storage", i)
		}
	}
	// The packed read store is ~4x smaller, so the map phase's host peak
	// (which includes the resident reads) must drop.
	if packedPeak >= plainPeak {
		t.Errorf("packed peak host %d should be below unpacked %d", packedPeak, plainPeak)
	}
}

func TestPackedSourceFootprint(t *testing.T) {
	_, reads := testGenomeReads(t, 2000, 60, 8)
	src := dna.PackSource(reads)
	if src.NumReads() != reads.NumReads() || src.TotalBases() != reads.TotalBases() {
		t.Fatalf("packed source metadata mismatch")
	}
	if src.ApproxBytes()*2 >= reads.ApproxBytes() {
		t.Errorf("packed %d should be well under half of unpacked %d",
			src.ApproxBytes(), reads.ApproxBytes())
	}
	// Contents round trip, both strands.
	for i := uint32(0); i < 20; i++ {
		if !src.Read(i).Equal(reads.Read(i)) {
			t.Fatalf("read %d differs", i)
		}
		v := dna.ForwardVertex(i) | 1
		if !src.VertexSeq(v).Equal(reads.VertexSeq(v)) {
			t.Fatalf("vertex %d differs", v)
		}
		if src.VertexLen(v) != reads.VertexLen(v) || src.Len(i) != reads.Len(i) {
			t.Fatalf("lengths differ for read %d", i)
		}
	}
}

func TestPackedReadsRejectsDoublePacking(t *testing.T) {
	_, reads := testGenomeReads(t, 600, 40, 5)
	cfg := smallConfig(t)
	cfg.MinOverlap = 25
	cfg.PackedReads = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feeding an already-packed source with PackedReads set must fail
	// cleanly rather than silently re-wrap.
	src := dna.PackSource(reads)
	if _, err := p.Assemble(src); err == nil {
		t.Error("packed input with PackedReads should be rejected")
	}
}
