package core

import (
	"testing"
)

func TestParallelTraversalIdenticalAssembly(t *testing.T) {
	_, reads := testGenomeReads(t, 2500, 55, 10)
	run := func(parallel bool) *Result {
		cfg := smallConfig(t)
		cfg.ParallelTraversal = parallel
		cfg.BreakCycles = false // both modes must then see the same paths
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)
	if len(seq.Contigs) != len(par.Contigs) {
		t.Fatalf("sequential %d contigs, BSP %d", len(seq.Contigs), len(par.Contigs))
	}
	for i := range seq.Contigs {
		if !seq.Contigs[i].Equal(par.Contigs[i]) {
			t.Fatalf("contig %d differs between traversal modes", i)
		}
	}
}

func TestDedupeOptionReducesReads(t *testing.T) {
	_, reads := testGenomeReads(t, 1000, 40, 25) // heavy duplication
	cfg := smallConfig(t)
	cfg.MinOverlap = 25
	cfg.DedupeReads = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicatesRemoved == 0 {
		t.Error("25x coverage of a 1 kb genome must contain duplicates")
	}
	if res.NumReads+res.DuplicatesRemoved != reads.NumReads() {
		t.Errorf("reads %d + dups %d != input %d",
			res.NumReads, res.DuplicatesRemoved, reads.NumReads())
	}
}

func TestNaiveKernelCostsMoreOnDevice(t *testing.T) {
	_, reads := testGenomeReads(t, 1200, 48, 8)
	measure := func(naive bool) int64 {
		cfg := smallConfig(t)
		cfg.MinOverlap = 30
		cfg.NaiveMapKernel = naive
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Assemble(reads); err != nil {
			t.Fatal(err)
		}
		return p.Meter().Snapshot().DeviceMemBytes
	}
	scan := measure(false)
	naive := measure(true)
	if naive <= scan {
		t.Errorf("naive kernel device bytes (%d) should exceed scan kernel (%d)", naive, scan)
	}
}
