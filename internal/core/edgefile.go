package core

import (
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/kv"
	"repro/internal/kvio"
)

// The Reduce stage always persists its accepted edge list to this file
// (workspace-relative), and the Compress stage always rebuilds the overlap
// graph from it. Routing the cold path and the resumed path through the
// same artifact is what makes resumed output byte-identical by
// construction rather than by careful bookkeeping: Compress cannot tell
// whether Reduce ran five milliseconds or five days ago.
const edgeFileName = "edges.kv"

// persistedEdge is one directed overlap edge as stored in edges.kv. Edges
// are serialized through the kvio record machinery (and so inherit its
// metering and truncation hardening): u and v pack into Key.Hi, the
// overlap length into Key.Lo, and Val is unused.
type persistedEdge struct {
	U, V uint32
	Len  uint16
}

func (e persistedEdge) pair() kv.Pair {
	return kv.Pair{Key: kv.Key{Hi: uint64(e.U)<<32 | uint64(e.V), Lo: uint64(e.Len)}}
}

func edgeFromPair(p kv.Pair) persistedEdge {
	return persistedEdge{U: uint32(p.Key.Hi >> 32), V: uint32(p.Key.Hi), Len: uint16(p.Key.Lo)}
}

// writeEdgeFile streams edges to path in the order produced by next (which
// returns false when exhausted). The order is preserved on reload, so any
// insertion-order-sensitive graph construction survives a round trip.
func writeEdgeFile(path string, meter *costmodel.Meter, next func() (persistedEdge, bool)) (int64, error) {
	w, err := kvio.NewWriter(path, meter)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		e, ok := next()
		if !ok {
			break
		}
		if err := w.Write(e.pair()); err != nil {
			w.Close()
			return n, err
		}
		n++
	}
	return n, w.Close()
}

// edgeFileIterator streams edges.kv pull-style for consumers that need a
// next() interface — the spmat CSR build validates ordering as it
// consumes, so it cannot use the push-style readEdgeFile.
type edgeFileIterator struct {
	r      *kvio.Reader
	buf    []kv.Pair
	pos, n int
	eof    bool
}

func newEdgeFileIterator(path string, meter *costmodel.Meter) (*edgeFileIterator, error) {
	r, err := kvio.NewReader(path, meter)
	if err != nil {
		return nil, err
	}
	return &edgeFileIterator{r: r, buf: make([]kv.Pair, 4096)}, nil
}

// Next returns the next edge in file order; ok is false at end of file.
func (it *edgeFileIterator) Next() (persistedEdge, bool, error) {
	for it.pos >= it.n {
		if it.eof {
			return persistedEdge{}, false, nil
		}
		n, err := it.r.ReadBatch(it.buf)
		it.pos, it.n = 0, n
		if err == io.EOF {
			it.eof = true
		} else if err != nil {
			return persistedEdge{}, false, fmt.Errorf("core: reading edge file: %w", err)
		}
	}
	e := edgeFromPair(it.buf[it.pos])
	it.pos++
	return e, true, nil
}

func (it *edgeFileIterator) Close() error { return it.r.Close() }

// readEdgeFile streams every edge at path into apply, in file order.
func readEdgeFile(path string, meter *costmodel.Meter, apply func(persistedEdge)) error {
	r, err := kvio.NewReader(path, meter)
	if err != nil {
		return err
	}
	defer r.Close()
	buf := make([]kv.Pair, 4096)
	for {
		n, err := r.ReadBatch(buf)
		for _, p := range buf[:n] {
			apply(edgeFromPair(p))
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: reading edge file %s: %w", path, err)
		}
	}
}
