package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contig"
	"repro/internal/costmodel"
	"repro/internal/dna"
	"repro/internal/extsort"
	"repro/internal/fastq"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/overlap"
	"repro/internal/sgraph"
	"repro/internal/stats"
)

// Pipeline is a single-node assembler instance.
type Pipeline struct {
	cfg     Config
	dev     *gpu.Device
	meter   *costmodel.Meter
	hostMem stats.MemTracker
}

// Result reports one assembly run.
type Result struct {
	Phases      []stats.PhaseStats
	Contigs     []dna.Seq
	ContigStats contig.Stats
	ContigPath  string // FASTA output file

	NumReads          int
	DuplicatesRemoved int   // reads dropped by Config.DedupeReads
	Partitions        int   // partition count [lmin, lmax)
	PairsGenerated    int64 // map-phase tuples written
	CandidateEdges    int64 // reduce-phase fingerprint matches
	AcceptedEdges     int64 // directed edges in the final graph
	ReducedEdges      int64 // transitive edges removed (FullGraph mode)
	FalsePositives    int64 // verified-mismatch candidates (VerifyOverlaps)
	SortDiskPasses    int   // max disk passes over any partition

	TotalWall    time.Duration
	TotalModeled time.Duration
}

// PhaseByName returns the stats for the named phase.
func (r *Result) PhaseByName(name PhaseName) (stats.PhaseStats, bool) {
	for _, p := range r.Phases {
		if p.Name == string(name) {
			return p, true
		}
	}
	return stats.PhaseStats{}, false
}

// New creates a pipeline with a fresh device and meter.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	meter := costmodel.NewMeter()
	return &Pipeline{cfg: cfg, dev: gpu.NewDevice(cfg.GPU, meter), meter: meter}, nil
}

// Device exposes the simulated device (for tests and diagnostics).
func (p *Pipeline) Device() *gpu.Device { return p.dev }

// Meter exposes the cost meter.
func (p *Pipeline) Meter() *costmodel.Meter { return p.meter }

// HostMem exposes the host-memory tracker.
func (p *Pipeline) HostMem() *stats.MemTracker { return &p.hostMem }

// runPhase measures fn as one pipeline phase.
func (p *Pipeline) runPhase(name PhaseName, res *Result, fn func() error) error {
	p.hostMem.ResetPeak()
	p.dev.MemTracker().ResetPeak()
	before := p.meter.Snapshot()
	timer := stats.StartTimer()
	err := fn()
	delta := p.meter.Snapshot().Sub(before)
	ps := stats.PhaseStats{
		Name:       string(name),
		Wall:       timer.Elapsed(),
		Modeled:    delta.Time(p.cfg.Profile()),
		PeakHost:   p.hostMem.Peak(),
		PeakDevice: p.dev.MemTracker().Peak(),
		DiskRead:   delta.DiskReadBytes,
		DiskWrite:  delta.DiskWriteBytes,
	}
	res.Phases = append(res.Phases, ps)
	res.TotalWall += ps.Wall
	res.TotalModeled += ps.Modeled
	return err
}

// AssembleFile loads a FASTQ/FASTA file (the Load phase of Tables II/III)
// and assembles it.
func (p *Pipeline) AssembleFile(path string) (*Result, error) {
	res := &Result{}
	var rs *dna.ReadSet
	err := p.runPhase(PhaseLoad, res, func() error {
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		rs, _, err = fastq.ReadFile(path)
		if err != nil {
			return err
		}
		p.meter.AddDiskRead(info.Size())
		return nil
	})
	if err != nil {
		return res, err
	}
	return p.assembleInto(res, rs)
}

// Assemble runs the pipeline over an in-memory read set.
func (p *Pipeline) Assemble(rs dna.ReadSource) (*Result, error) {
	return p.assembleInto(&Result{}, rs)
}

func (p *Pipeline) assembleInto(res *Result, rs dna.ReadSource) (*Result, error) {
	if rs.NumReads() == 0 {
		return res, fmt.Errorf("core: empty read set")
	}
	if rs.MaxLen() <= p.cfg.MinOverlap {
		return res, fmt.Errorf("core: MinOverlap %d is not below the longest read length %d",
			p.cfg.MinOverlap, rs.MaxLen())
	}
	if concrete, ok := rs.(*dna.ReadSet); ok {
		if p.cfg.DedupeReads {
			deduped, removed := dna.Deduplicate(concrete)
			concrete = deduped
			rs = deduped
			res.DuplicatesRemoved = removed
		}
		if p.cfg.PackedReads {
			// Store bulk reads 2-bit packed, the encoding the paper's
			// host-memory budgets assume.
			rs = dna.PackSource(concrete)
		}
	} else if p.cfg.DedupeReads || p.cfg.PackedReads {
		return res, fmt.Errorf("core: DedupeReads/PackedReads need an unpacked ReadSet input")
	}
	res.NumReads = rs.NumReads()
	p.hostMem.Add(rs.ApproxBytes())
	defer p.hostMem.Release(rs.ApproxBytes())

	partDir := filepath.Join(p.cfg.Workspace, "partitions")
	if err := os.MkdirAll(partDir, 0o755); err != nil {
		return res, err
	}
	if !p.cfg.KeepIntermediate {
		defer os.RemoveAll(partDir)
	}

	// Map: fingerprints + partitioning.
	var counts map[int]int64
	err := p.runPhase(PhaseMap, res, func() error {
		var err error
		counts, err = p.mapPhase(rs, partDir)
		return err
	})
	if err != nil {
		return res, err
	}
	res.Partitions = len(counts)
	for _, n := range counts {
		res.PairsGenerated += 2 * n // n suffix + n prefix tuples per length
	}

	// Sort: external sort of every partition, both kinds.
	err = p.runPhase(PhaseSort, res, func() error {
		return p.sortPhase(partDir, counts, res)
	})
	if err != nil {
		return res, err
	}

	if p.cfg.FullGraph {
		return p.fullGraphTail(res, rs, partDir, counts)
	}

	// Reduce: suffix-prefix matching into the greedy graph.
	g := graph.New(rs.NumReads())
	p.hostMem.Add(g.ApproxBytes())
	defer p.hostMem.Release(g.ApproxBytes())
	err = p.runPhase(PhaseReduce, res, func() error {
		return p.reducePhase(rs, partDir, counts, g, res)
	})
	if err != nil {
		return res, err
	}
	res.AcceptedEdges = g.NumEdges()

	// Compress: traverse paths and generate contigs.
	err = p.runPhase(PhaseCompress, res, func() error {
		return p.compressPhase(rs, g, res)
	})
	return res, err
}

// fullGraphTail runs the reduce and compress phases in FullGraph mode:
// all candidate overlaps enter a full string graph, transitive edges are
// removed, and unitig chains are spelled out (Section II-A.2 rather than
// the paper's greedy heuristic).
func (p *Pipeline) fullGraphTail(res *Result, rs dna.ReadSource, partDir string,
	counts map[int]int64) (*Result, error) {
	fg := sgraph.New(rs.NumReads())
	err := p.runPhase(PhaseReduce, res, func() error {
		err := p.runReduce(rs, partDir, counts, res, func(u, v uint32, l uint16) {
			fg.AddOverlap(u, v, l)
		})
		if err != nil {
			return err
		}
		p.hostMem.Add(fg.ApproxBytes())
		res.ReducedEdges = fg.TransitiveReduce(rs.VertexLen, p.cfg.TransitiveFuzz)
		res.AcceptedEdges = fg.NumEdges(false)
		return nil
	})
	if err != nil {
		return res, err
	}
	defer p.hostMem.Release(fg.ApproxBytes())
	err = p.runPhase(PhaseCompress, res, func() error {
		paths := fg.Unitigs(rs.VertexLen, p.cfg.IncludeSingletons)
		return p.writeContigs(rs, paths, res)
	})
	return res, err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mapTuple is one (length, side, fingerprint, vertex) emission from the
// map kernels, buffered before the partitioned disk write.
type mapTuple struct {
	length int32
	kind   kvio.Kind
	pair   kv.Pair
}

const mapTupleBytes = 32

func (p *Pipeline) mapPhase(rs dna.ReadSource, partDir string) (map[int]int64, error) {
	sfxW := kvio.NewPartitionWriters(partDir, kvio.Suffix, p.meter)
	pfxW := kvio.NewPartitionWriters(partDir, kvio.Prefix, p.meter)
	mapper := NewMapper(p.dev, &p.hostMem, p.cfg.MinOverlap, p.cfg.MapBatchReads, rs.MaxLen())
	mapper.NaiveKernel = p.cfg.NaiveMapKernel
	mapper.Workers = p.cfg.workers()
	if err := mapper.MapRange(rs, 0, rs.NumReads(), sfxW, pfxW); err != nil {
		return nil, err
	}
	counts := sfxW.Counts()
	if err := sfxW.Close(); err != nil {
		return nil, err
	}
	if err := pfxW.Close(); err != nil {
		return nil, err
	}
	return counts, nil
}

// sortTask names one partition file to sort.
type sortTask struct {
	length int
	kind   kvio.Kind
}

func (p *Pipeline) sortPhase(partDir string, counts map[int]int64, res *Result) error {
	var tasks []sortTask
	for _, l := range sortedLengthsDesc(counts) {
		tasks = append(tasks, sortTask{l, kvio.Suffix}, sortTask{l, kvio.Prefix})
	}
	var mu sync.Mutex // guards res.SortDiskPasses
	return runTasks(p.cfg.workers(), len(tasks), func(i int) error {
		t := tasks[i]
		// Every concurrent sort gets a private scratch directory: run and
		// merge files are named per sort, and partitions must not see each
		// other's spills.
		tmpDir := filepath.Join(partDir, fmt.Sprintf("sort_%s_%04d", t.kind, t.length))
		if err := os.MkdirAll(tmpDir, 0o755); err != nil {
			return err
		}
		defer os.RemoveAll(tmpDir)
		cfg := extsort.Config{
			Device:           p.dev,
			Meter:            p.meter,
			HostMem:          &p.hostMem,
			HostBlockPairs:   p.cfg.HostBlockPairs,
			DeviceBlockPairs: p.cfg.DeviceBlockPairs,
			TempDir:          tmpDir,
		}
		in := kvio.PartitionPath(partDir, t.kind, t.length)
		out := in + ".sorted"
		st, err := extsort.SortFile(cfg, in, out)
		if err != nil {
			return fmt.Errorf("core: sorting partition %d (%s): %w", t.length, t.kind, err)
		}
		mu.Lock()
		if st.DiskPasses > res.SortDiskPasses {
			res.SortDiskPasses = st.DiskPasses
		}
		mu.Unlock()
		return os.Remove(in)
	})
}

func (p *Pipeline) reducePhase(rs dna.ReadSource, partDir string, counts map[int]int64,
	g *graph.Graph, res *Result) error {
	// Descending length order makes the greedy graph keep the longest
	// overlap per read (Section III-C).
	return p.runReduce(rs, partDir, counts, res, func(u, v uint32, l uint16) {
		g.AddCandidate(u, v, l)
	})
}

// edgeCand is one verified candidate overlap buffered between a reduce
// worker and the sequential graph builder.
type edgeCand struct{ u, v uint32 }

// edgeCandBytes is the in-memory footprint of one buffered candidate.
const edgeCandBytes = 8

// partReduction is one partition's reduce output, buffered until the
// graph builder reaches its turn in the descending-length order.
type partReduction struct {
	idx        int
	edges      []edgeCand
	candidates int64
	falsePos   int64
	err        error
}

// runReduce streams every sorted partition (descending length) through the
// overlap reducer and hands the surviving candidates to apply. Partitions
// are reduced by up to Workers goroutines concurrently — each holding its
// own device window allocation — but apply always runs on the calling
// goroutine in strict descending-length order, so graph construction is
// identical to the serial pipeline's. VerifyOverlaps filtering is a pure
// function of the read set and is performed inside the workers.
func (p *Pipeline) runReduce(rs dna.ReadSource, partDir string, counts map[int]int64,
	res *Result, apply func(u, v uint32, l uint16)) error {
	cfg := overlap.Config{
		Device:      p.dev,
		Meter:       p.meter,
		HostMem:     &p.hostMem,
		WindowPairs: maxInt(p.cfg.HostBlockPairs/2, 1),
	}
	lengths := sortedLengthsDesc(counts)
	reduceOne := func(l int) partReduction {
		sfx := kvio.PartitionPath(partDir, kvio.Suffix, l) + ".sorted"
		pfx := kvio.PartitionPath(partDir, kvio.Prefix, l) + ".sorted"
		var out partReduction
		err := overlap.ReducePaths(cfg, sfx, pfx, func(u, v uint32) error {
			out.candidates++
			if p.cfg.VerifyOverlaps && !p.verifyOverlap(rs, u, v, l) {
				out.falsePos++
				return nil
			}
			out.edges = append(out.edges, edgeCand{u, v})
			return nil
		})
		if err != nil {
			out.err = fmt.Errorf("core: reducing partition %d: %w", l, err)
		}
		return out
	}
	applyOne := func(l int, r partReduction) {
		res.CandidateEdges += r.candidates
		res.FalsePositives += r.falsePos
		for _, e := range r.edges {
			apply(e.u, e.v, uint16(l))
		}
	}

	workers := p.cfg.workers()
	if workers > len(lengths) {
		workers = len(lengths)
	}
	if workers <= 1 {
		for _, l := range lengths {
			r := reduceOne(l)
			if r.err != nil {
				return r.err
			}
			applyOne(l, r)
		}
		return nil
	}

	jobs := make(chan int)
	results := make(chan partReduction, workers)
	abort := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				r := reduceOne(lengths[idx])
				r.idx = idx
				p.hostMem.Add(int64(len(r.edges)) * edgeCandBytes)
				select {
				case results <- r:
				case <-abort:
					p.hostMem.Release(int64(len(r.edges)) * edgeCandBytes)
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range lengths {
			select {
			case jobs <- i:
			case <-abort:
				return
			}
		}
	}()

	pending := make(map[int]partReduction)
	var firstErr error
	next, received := 0, 0
	for received < len(lengths) && firstErr == nil {
		r := <-results
		received++
		if r.err != nil {
			p.hostMem.Release(int64(len(r.edges)) * edgeCandBytes)
			firstErr = r.err
			break
		}
		pending[r.idx] = r
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			applyOne(lengths[next], cur)
			p.hostMem.Release(int64(len(cur.edges)) * edgeCandBytes)
			next++
		}
	}
	close(abort)
	wg.Wait()
	close(results)
	for r := range results {
		p.hostMem.Release(int64(len(r.edges)) * edgeCandBytes)
	}
	for _, r := range pending {
		p.hostMem.Release(int64(len(r.edges)) * edgeCandBytes)
	}
	return firstErr
}

// sortedLengthsDesc returns the partition lengths in descending order,
// the deterministic schedule shared by the sort and reduce phases.
func sortedLengthsDesc(counts map[int]int64) []int {
	lengths := make([]int, 0, len(counts))
	for l := range counts {
		lengths = append(lengths, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	return lengths
}

// runTasks runs n independent tasks on up to workers goroutines and
// returns the first error. Remaining tasks are skipped after an error.
func runTasks(workers, n int, task func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				if err := task(i); err != nil {
					failed.Store(true)
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errs)
	return <-errs
}

// verifyOverlap checks that the l-suffix of vertex u equals the l-prefix
// of vertex v by comparing the underlying sequences.
func (p *Pipeline) verifyOverlap(rs dna.ReadSource, u, v uint32, l int) bool {
	su := rs.VertexSeq(u)
	sv := rs.VertexSeq(v)
	if l > len(su) || l > len(sv) {
		return false
	}
	return su[len(su)-l:].Equal(sv[:l])
}

func (p *Pipeline) compressPhase(rs dna.ReadSource, g *graph.Graph, res *Result) error {
	opts := graph.TraverseOptions{
		IncludeSingletons: p.cfg.IncludeSingletons,
		BreakCycles:       p.cfg.BreakCycles,
	}
	var paths []graph.Path
	if p.cfg.ParallelTraversal {
		paths = g.TraverseParallel(p.dev, rs.VertexLen, opts)
	} else {
		paths = g.Traverse(rs.VertexLen, opts)
	}
	return p.writeContigs(rs, paths, res)
}

// writeContigs generates contig sequences from paths and writes the FASTA
// output.
func (p *Pipeline) writeContigs(rs dna.ReadSource, paths []graph.Path, res *Result) error {
	res.Contigs = contig.Generate(contig.Config{Device: p.dev}, paths, rs)
	res.ContigStats = contig.Summarize(res.Contigs)

	res.ContigPath = filepath.Join(p.cfg.Workspace, "contigs.fasta")
	f, err := os.Create(res.ContigPath)
	if err != nil {
		return err
	}
	w := fastq.NewFastaWriter(f, 80)
	var written int64
	for i, c := range res.Contigs {
		if err := w.Write(fastq.Record{Name: fmt.Sprintf("contig%d len=%d", i, len(c)), Seq: c}); err != nil {
			f.Close()
			return err
		}
		written += int64(len(c))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	p.meter.AddDiskWrite(written)
	return f.Close()
}
