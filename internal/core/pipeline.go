package core

import (
	"context"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contig"
	"repro/internal/costmodel"
	"repro/internal/dna"
	"repro/internal/extsort"
	"repro/internal/fastq"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/sgraph"
	"repro/internal/spmat"
	"repro/internal/stats"
	"repro/internal/succinct"
)

// Pipeline is a single-node assembler instance.
type Pipeline struct {
	cfg     Config
	dev     *gpu.Device
	meter   *costmodel.Meter
	hostMem stats.MemTracker
	// graphMem tracks the host bytes attributable to the graph
	// representation itself (builders plus sealed adjacency structures).
	// Every graph charge also lands in hostMem; this tracker is the
	// backend-comparable subset reported as PhaseStats.GraphHostPeak and
	// the graph.host_peak_bytes gauge.
	graphMem stats.MemTracker
	// graphPeakSeen is the run-level high water of per-phase graph peaks,
	// published to the gauge (graphMem's own peak resets per phase).
	graphPeakSeen int64
	// ledger accumulates modeled overlap savings from the streamed sort
	// and reduce paths; nil when Config.Streams is off (every streamed
	// call site degrades to the serial path on a nil ledger).
	ledger *costmodel.OverlapLedger

	// FaultHook, when set, fires after every stage commit (manifest
	// written, consumed inputs cleaned up). Returning an error aborts the
	// run at exactly the point a crash would, leaving the committed stages
	// resumable; the kill-and-restart tests inject crashes through it.
	FaultHook FaultHook
}

// Result reports one assembly run.
type Result struct {
	Phases      []stats.PhaseStats
	Contigs     []dna.Seq
	ContigStats contig.Stats
	ContigPath  string // FASTA output file

	NumReads          int
	DuplicatesRemoved int   // reads dropped by Config.DedupeReads
	Partitions        int   // partition count [lmin, lmax)
	PairsGenerated    int64 // map-phase tuples written
	CandidateEdges    int64 // reduce-phase fingerprint matches
	AcceptedEdges     int64 // directed edges in the final graph
	ReducedEdges      int64 // transitive edges removed (FullGraph mode)
	FalsePositives    int64 // verified-mismatch candidates (VerifyOverlaps)
	SortDiskPasses    int   // max disk passes over any partition

	// CachedStages lists the stages a resumed run (Config.Resume) replayed
	// from the run manifest instead of executing, in pipeline order. Empty
	// on a cold run. Cached stages contribute no PhaseStats.
	CachedStages []string

	TotalWall    time.Duration
	TotalModeled time.Duration

	// OverlapSaved is the modeled time hidden by stream overlap across the
	// run (always zero with Config.Streams off); TotalModeled already has
	// it subtracted. OverlapRatio is the fraction of streamed modeled work
	// hidden by overlap, in [0, 1).
	OverlapSaved time.Duration
	OverlapRatio float64

	// Counters is the run's final cost-meter snapshot and Modeled its
	// per-tier modeled-seconds breakdown under the configured GPU profile;
	// Modeled.Total() reconciles with TotalModeled's derivation, so report
	// printers never recompute tier shares from raw bytes.
	Counters costmodel.Counters
	Modeled  costmodel.Breakdown
}

// PhaseByName returns the stats for the named phase.
func (r *Result) PhaseByName(name PhaseName) (stats.PhaseStats, bool) {
	for _, p := range r.Phases {
		if p.Name == string(name) {
			return p, true
		}
	}
	return stats.PhaseStats{}, false
}

// New creates a pipeline with a fresh device and meter.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	meter := costmodel.NewMeter()
	dev := gpu.NewDevice(cfg.GPU, meter)
	if cfg.Obs != nil {
		// The single-node pipeline is pid 0 in the trace; cluster nodes
		// take pids 1..N.
		dev.SetHooks(obs.DeviceHooks(cfg.Obs, 0))
	}
	p := &Pipeline{cfg: cfg, dev: dev, meter: meter}
	if cfg.Streams {
		p.ledger = costmodel.NewOverlapLedger(cfg.Profile())
	}
	return p, nil
}

// OverlapLedger exposes the run's overlap accounting (nil when
// Config.Streams is off), for tests and diagnostics.
func (p *Pipeline) OverlapLedger() *costmodel.OverlapLedger { return p.ledger }

// track is the pipeline's stage-driver trace lane; worker lanes hang off
// it via track.Worker.
func (p *Pipeline) track() obs.Track { return obs.Track{} }

// Device exposes the simulated device (for tests and diagnostics).
func (p *Pipeline) Device() *gpu.Device { return p.dev }

// Meter exposes the cost meter.
func (p *Pipeline) Meter() *costmodel.Meter { return p.meter }

// HostMem exposes the host-memory tracker.
func (p *Pipeline) HostMem() *stats.MemTracker { return &p.hostMem }

// GraphMem exposes the graph-representation host tracker (for tests and
// diagnostics).
func (p *Pipeline) GraphMem() *stats.MemTracker { return &p.graphMem }

// trackGraph charges n bytes of graph-representation memory to both the
// host pool and the graph-attributable tracker; the returned func
// releases both.
func (p *Pipeline) trackGraph(n int64) func() {
	p.hostMem.Add(n)
	p.graphMem.Add(n)
	return func() {
		p.hostMem.Release(n)
		p.graphMem.Release(n)
	}
}

// graphSink adapts the pipeline's trackers to succinct.MemSink: the
// succinct builder meters its own host bytes as they grow, and they
// count against the host pool and the graph tracker alike.
type graphSink struct{ p *Pipeline }

func (s graphSink) Add(n int64)     { s.p.hostMem.Add(n); s.p.graphMem.Add(n) }
func (s graphSink) Release(n int64) { s.p.hostMem.Release(n); s.p.graphMem.Release(n) }

// runPhase measures fn as one pipeline phase. Stage spans run serially on
// the driver lane, so their counter deltas sum exactly to the run's final
// meter snapshot — the invariant the trace integration test asserts.
func (p *Pipeline) runPhase(name PhaseName, res *Result, fn func() error) error {
	p.hostMem.ResetPeak()
	p.graphMem.ResetPeak()
	p.dev.MemTracker().ResetPeak()
	p.progress(string(name), ProgressStart)
	p.cfg.Obs.Log().Debug("stage start", "stage", string(name))
	span := p.cfg.Obs.Tracer().Begin(p.track(), "stage", string(name)).
		Metered(p.meter, p.cfg.Profile())
	if name == PhaseReduce || name == PhaseCompress {
		span.Arg("graph.backend", p.cfg.backend())
	}
	before := p.meter.Snapshot()
	savedBefore := p.ledger.SavedSeconds()
	timer := stats.StartTimer()
	err := fn()
	span.End()
	delta := p.meter.Snapshot().Sub(before)
	// Overlap hidden by this phase's streamed work: subtracting it from
	// the additive model turns Modeled into the phase's makespan. Streamed
	// units commit their timelines before their phase returns, so the
	// ledger delta is attributable to this phase alone.
	saved := time.Duration((p.ledger.SavedSeconds() - savedBefore) * float64(time.Second))
	modeled := delta.Time(p.cfg.Profile()) - saved
	if modeled < 0 {
		modeled = 0
	}
	ps := stats.PhaseStats{
		Name:          string(name),
		Wall:          timer.Elapsed(),
		Modeled:       modeled,
		PeakHost:      p.hostMem.Peak(),
		PeakDevice:    p.dev.MemTracker().Peak(),
		DiskRead:      delta.DiskReadBytes,
		DiskWrite:     delta.DiskWriteBytes,
		NetBytes:      delta.NetBytes,
		PCIeBytes:     delta.PCIeBytes,
		DeviceOps:     delta.DeviceOps,
		GraphHostPeak: p.graphMem.Peak(),
		OverlapSaved:  saved,
	}
	if ps.GraphHostPeak > p.graphPeakSeen {
		p.graphPeakSeen = ps.GraphHostPeak
	}
	if name == PhaseReduce || name == PhaseCompress {
		p.cfg.Obs.Metrics().Gauge(fmt.Sprintf("graph.host_peak_bytes{backend=%q}",
			p.cfg.backend())).Set(p.graphPeakSeen)
	}
	res.Phases = append(res.Phases, ps)
	res.TotalWall += ps.Wall
	res.TotalModeled += ps.Modeled
	if err != nil {
		p.progress(string(name), ProgressFailed)
		p.cfg.Obs.Log().Error("stage failed", "stage", string(name), "err", err)
	} else {
		p.progress(string(name), ProgressDone)
		p.cfg.Obs.Log().Info("stage done", "stage", string(name),
			"wall", ps.Wall, "modeled", ps.Modeled)
	}
	return err
}

// progress delivers one stage lifecycle event to Config.Progress, if set.
func (p *Pipeline) progress(stage, event string) {
	if p.cfg.Progress != nil {
		p.cfg.Progress(stage, event)
	}
}

// AssembleFile loads a FASTQ/FASTA file (the Load phase of Tables II/III)
// and assembles it.
func (p *Pipeline) AssembleFile(path string) (*Result, error) {
	return p.AssembleFileContext(context.Background(), path)
}

// beginRun names the trace tracks and opens the root run span; the
// returned func ends it. Called once per assembly entry point.
func (p *Pipeline) beginRun() func() {
	tr := p.cfg.Obs.Tracer()
	tr.NameProcess(0, "lasagna")
	tr.NameThread(p.track(), "stages")
	for w := 0; w < p.cfg.workers(); w++ {
		tr.NameThread(p.track().Worker(w), fmt.Sprintf("worker %d", w))
	}
	p.cfg.Obs.Log().Info("run start", "workers", p.cfg.workers(),
		"gpu", p.cfg.GPU.Name)
	span := tr.Begin(p.track(), "run", "assemble").Metered(p.meter, p.cfg.Profile())
	return span.End
}

// AssembleFileContext is AssembleFile under a cancellation context.
func (p *Pipeline) AssembleFileContext(ctx context.Context, path string) (*Result, error) {
	defer p.beginRun()()
	res := &Result{}
	var rs *dna.ReadSet
	err := p.runPhase(PhaseLoad, res, func() error {
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		rs, _, err = fastq.ReadFile(path)
		if err != nil {
			return err
		}
		p.meter.AddDiskRead(info.Size())
		return nil
	})
	if err != nil {
		return res, err
	}
	return p.assembleInto(ctx, res, rs)
}

// Assemble runs the pipeline over an in-memory read set.
func (p *Pipeline) Assemble(rs dna.ReadSource) (*Result, error) {
	return p.AssembleContext(context.Background(), rs)
}

// AssembleContext runs the pipeline under a cancellation context:
// cancelling ctx aborts the run between device batches with ctx.Err(),
// draining every worker goroutine (including allocator waiters). The
// stages committed before the cancellation remain resumable.
func (p *Pipeline) AssembleContext(ctx context.Context, rs dna.ReadSource) (*Result, error) {
	defer p.beginRun()()
	return p.assembleInto(ctx, &Result{}, rs)
}

// assembleInto drives the stage graph: Map -> Sort -> Reduce -> Compress,
// each stage consuming the previous stage's on-disk artifacts and
// committing its own (plus the run manifest) before the next begins. With
// Config.Resume, stages the manifest already covers are replayed from
// their records instead of executed; because Compress always rebuilds the
// overlap graph from the persisted edge list, a resumed run's output is
// byte-identical to a cold one.
func (p *Pipeline) assembleInto(ctx context.Context, res *Result, rs dna.ReadSource) (*Result, error) {
	defer func() {
		res.Counters = p.meter.Snapshot()
		res.Modeled = res.Counters.Breakdown(p.cfg.Profile())
		res.OverlapSaved = time.Duration(p.ledger.SavedSeconds() * float64(time.Second))
		res.OverlapRatio = p.ledger.OverlapRatio()
		if p.ledger != nil {
			m := p.cfg.Obs.Metrics()
			m.Gauge("core.overlap_saved_us").Set(res.OverlapSaved.Microseconds())
			m.Gauge("core.overlap_ratio_pct").Set(int64(res.OverlapRatio * 100))
		}
	}()
	if rs.NumReads() == 0 {
		return res, fmt.Errorf("core: empty read set")
	}
	if rs.MaxLen() <= p.cfg.MinOverlap {
		return res, fmt.Errorf("core: MinOverlap %d is not below the longest read length %d",
			p.cfg.MinOverlap, rs.MaxLen())
	}
	if concrete, ok := rs.(*dna.ReadSet); ok {
		if p.cfg.DedupeReads {
			deduped, removed := dna.Deduplicate(concrete)
			concrete = deduped
			rs = deduped
			res.DuplicatesRemoved = removed
		}
		if p.cfg.PackedReads {
			// Store bulk reads 2-bit packed, the encoding the paper's
			// host-memory budgets assume.
			rs = dna.PackSource(concrete)
		}
	} else if p.cfg.DedupeReads || p.cfg.PackedReads {
		return res, fmt.Errorf("core: DedupeReads/PackedReads need an unpacked ReadSet input")
	}
	res.NumReads = rs.NumReads()
	p.hostMem.Add(rs.ApproxBytes())
	defer p.hostMem.Release(rs.ApproxBytes())

	partDir := filepath.Join(p.cfg.Workspace, "partitions")
	edgePath := filepath.Join(p.cfg.Workspace, edgeFileName)

	runner := NewStageRunner(p.cfg.Workspace, p.cfg.fingerprint(), InputFingerprint(rs),
		p.cfg.Resume, pipelineStages)
	runner.SetObserver(p.cfg.Obs, p.track())
	runner.SetFaultHook(p.FaultHook)
	runner.SetProgress(p.cfg.Progress)
	if runner.ResumeAt() == 0 {
		// Starting from scratch: partitions left by an interrupted or
		// invalidated run must not leak into this one.
		if err := os.RemoveAll(partDir); err != nil {
			return res, err
		}
	}
	if err := os.MkdirAll(partDir, 0o755); err != nil {
		return res, err
	}
	// A crash mid-sort leaves per-sort spill directories behind; they are
	// not resume artifacts (Sort re-runs from Map's committed partitions)
	// and stale run files inside them must never feed a fresh merge.
	if err := sweepSortScratch(partDir); err != nil {
		return res, err
	}

	// Map: fingerprints + partitioning.
	var counts map[int]int64
	err := runner.Run(Stage{
		Name: PhaseMap,
		Fresh: func() (StageOutcome, error) {
			var out StageOutcome
			err := p.runPhase(PhaseMap, res, func() error {
				var err error
				counts, err = p.mapPhase(ctx, rs, partDir)
				return err
			})
			if err != nil {
				return out, err
			}
			for _, l := range sortedLengthsDesc(counts) {
				out.Artifacts = append(out.Artifacts,
					relPartitionPath(kvio.Suffix, l, false),
					relPartitionPath(kvio.Prefix, l, false))
			}
			return out, nil
		},
		Cached: func(rec StageRecord) error {
			var err error
			counts, err = partitionCountsFromRecord(rec)
			return err
		},
	})
	if err != nil {
		return res, err
	}
	res.Partitions = len(counts)
	pairHist := p.cfg.Obs.Metrics().Histogram("core.partition_pairs",
		1e2, 1e3, 1e4, 1e5, 1e6, 1e7)
	for _, n := range counts {
		res.PairsGenerated += 2 * n // n suffix + n prefix tuples per length
		pairHist.Observe(float64(2 * n))
	}
	p.cfg.Obs.Metrics().Gauge("core.partitions").Set(int64(len(counts)))

	// Sort: external sort of every partition, both kinds. The raw
	// partitions are deleted only after the stage commits, so a crash
	// mid-sort leaves the Map artifacts intact for resume.
	err = runner.Run(Stage{
		Name: PhaseSort,
		Fresh: func() (StageOutcome, error) {
			var out StageOutcome
			err := p.runPhase(PhaseSort, res, func() error {
				return p.sortPhase(ctx, partDir, counts, res)
			})
			if err != nil {
				return out, err
			}
			for _, l := range sortedLengthsDesc(counts) {
				out.Artifacts = append(out.Artifacts,
					relPartitionPath(kvio.Suffix, l, true),
					relPartitionPath(kvio.Prefix, l, true))
			}
			out.Meta = map[string]int64{metaSortDiskPasses: int64(res.SortDiskPasses)}
			out.Cleanup = func() error {
				for l := range counts {
					if err := os.Remove(kvio.PartitionPath(partDir, kvio.Suffix, l)); err != nil {
						return err
					}
					if err := os.Remove(kvio.PartitionPath(partDir, kvio.Prefix, l)); err != nil {
						return err
					}
				}
				return nil
			}
			return out, nil
		},
		Cached: func(rec StageRecord) error {
			res.SortDiskPasses = int(rec.Meta[metaSortDiskPasses])
			return nil
		},
	})
	if err != nil {
		return res, err
	}

	// Reduce: suffix-prefix matching. Both graph modes persist their
	// accepted edge list to the edge artifact; the in-memory graph is
	// rebuilt from it by Compress, on cold and resumed runs alike.
	err = runner.Run(Stage{
		Name: PhaseReduce,
		Fresh: func() (StageOutcome, error) {
			var out StageOutcome
			err := p.runPhase(PhaseReduce, res, func() error {
				return p.reducePhase(ctx, rs, partDir, counts, edgePath, res)
			})
			if err != nil {
				return out, err
			}
			out.Artifacts = []string{edgeFileName}
			out.Meta = map[string]int64{
				metaCandidateEdges: res.CandidateEdges,
				metaFalsePositives: res.FalsePositives,
				metaAcceptedEdges:  res.AcceptedEdges,
				metaReducedEdges:   res.ReducedEdges,
			}
			return out, nil
		},
		Cached: func(rec StageRecord) error {
			res.CandidateEdges = rec.Meta[metaCandidateEdges]
			res.FalsePositives = rec.Meta[metaFalsePositives]
			res.AcceptedEdges = rec.Meta[metaAcceptedEdges]
			res.ReducedEdges = rec.Meta[metaReducedEdges]
			return nil
		},
	})
	if err != nil {
		return res, err
	}

	// Compress: rebuild the graph from the edge artifact, traverse paths,
	// and generate contigs.
	err = runner.Run(Stage{
		Name: PhaseCompress,
		Fresh: func() (StageOutcome, error) {
			var out StageOutcome
			err := p.runPhase(PhaseCompress, res, func() error {
				return p.compressPhase(rs, edgePath, res)
			})
			if err != nil {
				return out, err
			}
			out.Artifacts = []string{contigFileName}
			return out, nil
		},
		Cached: func(rec StageRecord) error {
			res.ContigPath = filepath.Join(p.cfg.Workspace, contigFileName)
			contigs, err := contig.LoadFASTA(res.ContigPath)
			if err != nil {
				return err
			}
			res.Contigs = contigs
			res.ContigStats = contig.Summarize(contigs)
			return nil
		},
	})
	if err != nil {
		return res, err
	}

	res.CachedStages = runner.CachedStages()
	if !p.cfg.KeepIntermediate {
		if err := os.RemoveAll(partDir); err != nil {
			return res, err
		}
		if err := os.Remove(edgePath); err != nil && !os.IsNotExist(err) {
			return res, err
		}
	}
	return res, nil
}

// pipelineStages is the single-node stage graph, in execution order.
var pipelineStages = []PhaseName{PhaseMap, PhaseSort, PhaseReduce, PhaseCompress}

// Manifest meta keys for the counters a resumed run restores.
const (
	metaSortDiskPasses = "sortDiskPasses"
	metaCandidateEdges = "candidateEdges"
	metaFalsePositives = "falsePositives"
	metaAcceptedEdges  = "acceptedEdges"
	metaReducedEdges   = "reducedEdges"
)

// contigFileName is the Compress stage's artifact (workspace-relative).
const contigFileName = "contigs.fasta"

// relPartitionPath names a partition file relative to the workspace.
func relPartitionPath(k kvio.Kind, length int, sorted bool) string {
	name := filepath.Base(kvio.PartitionPath("", k, length))
	if sorted {
		name += ".sorted"
	}
	return path.Join("partitions", name)
}

// partitionCountsFromRecord rebuilds the per-length tuple counts from a
// committed Map record: each suffix artifact holds exactly its partition's
// pairs, so the counts fall out of the recorded sizes. Disk listings are
// never consulted — the record is authoritative even after the files were
// consumed by Sort.
func partitionCountsFromRecord(rec StageRecord) (map[int]int64, error) {
	prefix := kvio.Suffix.String() + "_"
	counts := make(map[int]int64)
	for _, a := range rec.Artifacts {
		base := path.Base(a.Path)
		if !strings.HasPrefix(base, prefix) || !strings.HasSuffix(base, ".kv") {
			continue
		}
		l, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, prefix), ".kv"))
		if err != nil {
			return nil, fmt.Errorf("core: manifest Map artifact %q: %w", a.Path, err)
		}
		counts[l] = a.Bytes / kv.PairBytes
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("core: manifest Map record lists no partitions")
	}
	return counts, nil
}

// mapTuple is one (length, side, fingerprint, vertex) emission from the
// map kernels, buffered before the partitioned disk write.
type mapTuple struct {
	length int32
	kind   kvio.Kind
	pair   kv.Pair
}

const mapTupleBytes = 32

func (p *Pipeline) mapPhase(ctx context.Context, rs dna.ReadSource, partDir string) (map[int]int64, error) {
	sfxW := kvio.NewPartitionWriters(partDir, kvio.Suffix, p.meter)
	pfxW := kvio.NewPartitionWriters(partDir, kvio.Prefix, p.meter)
	mapper := NewMapper(p.dev, &p.hostMem, p.cfg.MinOverlap, p.cfg.MapBatchReads, rs.MaxLen())
	mapper.NaiveKernel = p.cfg.NaiveMapKernel
	mapper.Workers = p.cfg.workers()
	mapper.Obs = p.cfg.Obs
	mapper.Track = p.track()
	mapper.Profile = p.cfg.Profile()
	if err := mapper.MapRange(ctx, rs, 0, rs.NumReads(), sfxW, pfxW); err != nil {
		return nil, err
	}
	counts := sfxW.Counts()
	if err := sfxW.Close(); err != nil {
		return nil, err
	}
	if err := pfxW.Close(); err != nil {
		return nil, err
	}
	return counts, nil
}

// sortTask names one partition file to sort.
type sortTask struct {
	length int
	kind   kvio.Kind
}

func (p *Pipeline) sortPhase(ctx context.Context, partDir string, counts map[int]int64, res *Result) error {
	var tasks []sortTask
	for _, l := range sortedLengthsDesc(counts) {
		tasks = append(tasks, sortTask{l, kvio.Suffix}, sortTask{l, kvio.Prefix})
	}
	var mu sync.Mutex // guards res.SortDiskPasses
	return runTasks(p.cfg.workers(), len(tasks), func(worker, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := tasks[i]
		defer p.cfg.Obs.Tracer().Begin(p.track().Worker(worker), "partition",
			fmt.Sprintf("sort %s len=%d", t.kind, t.length)).
			Metered(p.meter, p.cfg.Profile()).End()
		// Every concurrent sort gets a private scratch directory: run and
		// merge files are named per sort, and partitions must not see each
		// other's spills.
		tmpDir := filepath.Join(partDir, fmt.Sprintf("sort_%s_%04d", t.kind, t.length))
		if err := os.MkdirAll(tmpDir, 0o755); err != nil {
			return err
		}
		defer os.RemoveAll(tmpDir)
		cfg := extsort.Config{
			Device:           p.dev,
			Meter:            p.meter,
			HostMem:          &p.hostMem,
			HostBlockPairs:   p.cfg.HostBlockPairs,
			DeviceBlockPairs: p.cfg.DeviceBlockPairs,
			TempDir:          tmpDir,
			Obs:              p.cfg.Obs,
			Overlap:          p.ledger,
		}
		in := kvio.PartitionPath(partDir, t.kind, t.length)
		out := in + ".sorted"
		st, err := extsort.SortFile(ctx, cfg, in, out)
		if err != nil {
			return fmt.Errorf("core: sorting partition %d (%s): %w", t.length, t.kind, err)
		}
		mu.Lock()
		if st.DiskPasses > res.SortDiskPasses {
			res.SortDiskPasses = st.DiskPasses
		}
		mu.Unlock()
		return nil
	})
}

// reducePhase runs the configured reduce mode and persists the accepted
// edge list to edgePath. In greedy mode candidates feed the paper's
// bit-vector graph; in FullGraph mode every candidate enters the full
// string graph and transitive edges are removed before persisting.
func (p *Pipeline) reducePhase(ctx context.Context, rs dna.ReadSource, partDir string,
	counts map[int]int64, edgePath string, res *Result) error {
	switch p.cfg.backend() {
	case BackendSpmat:
		return p.reduceSpmat(ctx, rs, partDir, counts, edgePath, res)
	case BackendSuccinct:
		return p.reduceSuccinct(ctx, rs, partDir, counts, edgePath, res)
	}
	if p.cfg.FullGraph {
		fg := sgraph.New(rs.NumReads())
		err := p.runReduce(ctx, rs, partDir, counts, res, func(u, v uint32, l uint16) {
			fg.AddOverlap(u, v, l)
		})
		if err != nil {
			return err
		}
		defer p.trackGraph(fg.ApproxBytes())()
		res.ReducedEdges = fg.TransitiveReduce(rs.VertexLen, p.cfg.TransitiveFuzz)
		res.AcceptedEdges = fg.NumEdges(false)
		mtr := p.cfg.Obs.Metrics()
		mtr.Counter(`graph.nnz{backend="greedy"}`).Add(res.AcceptedEdges + res.ReducedEdges)
		mtr.Counter(`graph.removed_edges{backend="greedy"}`).Add(res.ReducedEdges)
		edges := fg.DirectedEdges()
		i := 0
		_, err = writeEdgeFile(edgePath, p.meter, func() (persistedEdge, bool) {
			if i >= len(edges) {
				return persistedEdge{}, false
			}
			e := edges[i]
			i++
			return persistedEdge{U: e.U, V: e.V, Len: e.Len}, true
		})
		return err
	}

	// Descending length order makes the greedy graph keep the longest
	// overlap per read (Section III-C).
	g := graph.New(rs.NumReads())
	defer p.trackGraph(g.ApproxBytes())()
	err := p.runReduce(ctx, rs, partDir, counts, res, func(u, v uint32, l uint16) {
		g.AddCandidate(u, v, l)
	})
	if err != nil {
		return err
	}
	res.AcceptedEdges = g.NumEdges()
	p.cfg.Obs.Metrics().Counter(`graph.nnz{backend="greedy"}`).Add(res.AcceptedEdges)
	edges := g.Edges()
	i := 0
	_, err = writeEdgeFile(edgePath, p.meter, func() (persistedEdge, bool) {
		if i >= len(edges) {
			return persistedEdge{}, false
		}
		e := edges[i]
		i++
		return persistedEdge{U: e.U, V: e.V, Len: e.Len}, true
	})
	return err
}

// reduceSpmat is the sparse-matrix reduce: verified candidates become
// CSR entries, a masked SpGEMM pass removes transitive edges on the
// device, and the surviving entries persist to edges.kv in CSR order —
// the sorted-run order FromEdgeRuns validates on reload.
func (p *Pipeline) reduceSpmat(ctx context.Context, rs dna.ReadSource, partDir string,
	counts map[int]int64, edgePath string, res *Result) error {
	b := spmat.NewBuilder(rs.NumReads())
	err := p.runReduce(ctx, rs, partDir, counts, res, func(u, v uint32, l uint16) {
		b.AddOverlap(u, v, l)
	})
	if err != nil {
		return err
	}
	releaseB := p.trackGraph(b.ApproxBytes())
	m := b.Build()
	releaseM := p.trackGraph(m.ApproxBytes())
	releaseB()
	defer releaseM()
	red, err := m.TransitiveReduce(ctx, spmat.ReduceConfig{
		Device:    p.dev,
		VertexLen: rs.VertexLen,
		Fuzz:      p.cfg.TransitiveFuzz,
		// The same device budget the sort phase works within, so the pass
		// honors the DeviceDemandBytes lease multi-tenant admission uses.
		MaxResidentBytes: 4 * int64(p.cfg.DeviceBlockPairs) * kv.PairBytes,
		Overlap:          p.ledger,
	})
	if err != nil {
		return err
	}
	res.ReducedEdges = red.Removed
	res.AcceptedEdges = m.NNZ() - red.Removed
	mtr := p.cfg.Obs.Metrics()
	mtr.Counter(`graph.nnz{backend="spmat"}`).Add(m.NNZ())
	mtr.Counter(`graph.removed_edges{backend="spmat"}`).Add(red.Removed)
	mtr.Counter(`graph.spgemm_flops{backend="spmat"}`).Add(red.Flops)
	next := red.LiveEdges()
	_, err = writeEdgeFile(edgePath, p.meter, func() (persistedEdge, bool) {
		e, ok := next()
		return persistedEdge{U: e.U, V: e.V, Len: e.Len}, ok
	})
	return err
}

// reduceSuccinct is the compressed-store reduce: verified candidates
// (and their complements) spill to a scratch kv file as they stream out
// of the overlap reducer, the external sorter orders them by (U, V), and
// the succinct builder consumes the final merge output directly — the
// full edge list never materializes in host memory, on disk or off the
// sort it exists only as sorted runs. A masked pass over the compressed
// store then removes transitive edges with spmat's exact predicate, so
// the surviving edge set — and the downstream contigs — is
// byte-identical to the spmat backend's.
func (p *Pipeline) reduceSuccinct(ctx context.Context, rs dna.ReadSource, partDir string,
	counts map[int]int64, edgePath string, res *Result) error {
	// The spill scratch rides the sort_* naming convention so a crashed
	// run's leftovers are swept with the other sort debris.
	tmpDir := filepath.Join(partDir, "sort_succinct")
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return err
	}
	defer os.RemoveAll(tmpDir)
	spillPath := filepath.Join(tmpDir, "cand.kv")
	w, err := kvio.NewWriter(spillPath, p.meter)
	if err != nil {
		return err
	}
	var wErr error
	err = p.runReduce(ctx, rs, partDir, counts, res, func(u, v uint32, l uint16) {
		if wErr != nil {
			return
		}
		// Reject self-loops and hairpins and add the complement edge,
		// exactly as spmat.Builder.AddOverlap does.
		if u == v || u == dna.ComplementVertex(v) {
			return
		}
		if wErr = w.Write(persistedEdge{U: u, V: v, Len: l}.pair()); wErr != nil {
			return
		}
		wErr = w.Write(persistedEdge{
			U: dna.ComplementVertex(v), V: dna.ComplementVertex(u), Len: l}.pair())
	})
	if cerr := w.Close(); wErr == nil {
		wErr = cerr
	}
	if err != nil {
		return err
	}
	if wErr != nil {
		return wErr
	}

	b, err := succinct.NewBuilder(2*rs.NumReads(), graphSink{p})
	if err != nil {
		return err
	}
	// Sorted pairs order by (Key.Hi, Key.Lo) = (U<<32|V, Len): exactly
	// the non-decreasing (U, V) runs the builder requires, duplicates
	// adjacent for its keep-the-longest dedupe.
	_, err = extsort.SortStream(ctx, extsort.Config{
		Device:           p.dev,
		Meter:            p.meter,
		HostMem:          &p.hostMem,
		HostBlockPairs:   p.cfg.HostBlockPairs,
		DeviceBlockPairs: p.cfg.DeviceBlockPairs,
		TempDir:          tmpDir,
		Obs:              p.cfg.Obs,
		Overlap:          p.ledger,
	}, spillPath, func(batch []kv.Pair) error {
		for _, pr := range batch {
			e := edgeFromPair(pr)
			if err := b.Push(succinct.Edge{U: e.U, V: e.V, Len: e.Len}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Abandon()
		return err
	}
	g, err := b.Finish()
	if err != nil {
		b.Abandon()
		return err
	}
	defer graphSink{p}.Release(g.HostBytes())

	red, err := g.TransitiveReduce(ctx, succinct.ReduceConfig{
		Device:    p.dev,
		VertexLen: rs.VertexLen,
		Fuzz:      p.cfg.TransitiveFuzz,
		// The same device budget the sort phase works within, so the pass
		// honors the DeviceDemandBytes lease multi-tenant admission uses.
		MaxResidentBytes: 4 * int64(p.cfg.DeviceBlockPairs) * kv.PairBytes,
		Overlap:          p.ledger,
	})
	if err != nil {
		return err
	}
	res.ReducedEdges = red.Removed
	res.AcceptedEdges = g.NNZ() - red.Removed
	mtr := p.cfg.Obs.Metrics()
	mtr.Counter(`graph.nnz{backend="succinct"}`).Add(g.NNZ())
	mtr.Counter(`graph.removed_edges{backend="succinct"}`).Add(red.Removed)
	mtr.Counter(`graph.spgemm_flops{backend="succinct"}`).Add(red.Flops)
	next := red.LiveEdges()
	_, err = writeEdgeFile(edgePath, p.meter, func() (persistedEdge, bool) {
		e, ok := next()
		return persistedEdge{U: e.U, V: e.V, Len: e.Len}, ok
	})
	return err
}

// edgeCand is one verified candidate overlap buffered between a reduce
// worker and the sequential graph builder.
type edgeCand struct{ u, v uint32 }

// edgeCandBytes is the in-memory footprint of one buffered candidate.
const edgeCandBytes = 8

// partReduction is one partition's reduce output, buffered until the
// graph builder reaches its turn in the descending-length order.
type partReduction struct {
	idx        int
	edges      []edgeCand
	candidates int64
	falsePos   int64
	err        error
}

// runReduce streams every sorted partition (descending length) through the
// overlap reducer and hands the surviving candidates to apply. Partitions
// are reduced by up to Workers goroutines concurrently — each holding its
// own device window allocation — but apply always runs on the calling
// goroutine in strict descending-length order, so graph construction is
// identical to the serial pipeline's. VerifyOverlaps filtering is a pure
// function of the read set and is performed inside the workers.
// Cancellation surfaces as an error from within a worker's job (via the
// reducer's ctx checks), preserving the one-result-per-job invariant that
// keeps the pool deadlock-free.
func (p *Pipeline) runReduce(ctx context.Context, rs dna.ReadSource, partDir string,
	counts map[int]int64, res *Result, apply func(u, v uint32, l uint16)) error {
	cfg := overlap.Config{
		Device:      p.dev,
		Meter:       p.meter,
		HostMem:     &p.hostMem,
		WindowPairs: max(p.cfg.HostBlockPairs/2, 1),
		Obs:         p.cfg.Obs,
		Overlap:     p.ledger,
	}
	lengths := sortedLengthsDesc(counts)
	lenHist := p.cfg.Obs.Metrics().Histogram("overlap.length",
		64, 96, 128, 192, 256, 512, 1024)
	reduceOne := func(worker, l int) partReduction {
		defer p.cfg.Obs.Tracer().Begin(p.track().Worker(worker), "partition",
			fmt.Sprintf("reduce len=%d", l)).
			Metered(p.meter, p.cfg.Profile()).End()
		sfx := kvio.PartitionPath(partDir, kvio.Suffix, l) + ".sorted"
		pfx := kvio.PartitionPath(partDir, kvio.Prefix, l) + ".sorted"
		var out partReduction
		err := overlap.ReducePaths(ctx, cfg, sfx, pfx, func(u, v uint32) error {
			out.candidates++
			if p.cfg.VerifyOverlaps && !p.verifyOverlap(rs, u, v, l) {
				out.falsePos++
				return nil
			}
			out.edges = append(out.edges, edgeCand{u, v})
			return nil
		})
		if err != nil {
			out.err = fmt.Errorf("core: reducing partition %d: %w", l, err)
		}
		return out
	}
	applyOne := func(l int, r partReduction) {
		res.CandidateEdges += r.candidates
		res.FalsePositives += r.falsePos
		for _, e := range r.edges {
			lenHist.Observe(float64(l))
			apply(e.u, e.v, uint16(l))
		}
	}

	workers := min(p.cfg.workers(), len(lengths))
	if workers <= 1 {
		for _, l := range lengths {
			r := reduceOne(0, l)
			if r.err != nil {
				return r.err
			}
			applyOne(l, r)
		}
		return nil
	}

	jobs := make(chan int)
	results := make(chan partReduction, workers)
	abort := make(chan struct{})
	var wg sync.WaitGroup
	p.cfg.Obs.Log().Debug("reduce worker pool start", "workers", workers,
		"partitions", len(lengths))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				r := reduceOne(w, lengths[idx])
				r.idx = idx
				p.hostMem.Add(int64(len(r.edges)) * edgeCandBytes)
				select {
				case results <- r:
				case <-abort:
					p.hostMem.Release(int64(len(r.edges)) * edgeCandBytes)
					return
				}
			}
		}(w)
	}
	go func() {
		defer close(jobs)
		for i := range lengths {
			select {
			case jobs <- i:
			case <-abort:
				return
			}
		}
	}()

	pending := make(map[int]partReduction)
	var firstErr error
	next, received := 0, 0
	for received < len(lengths) && firstErr == nil {
		r := <-results
		received++
		if r.err != nil {
			p.hostMem.Release(int64(len(r.edges)) * edgeCandBytes)
			firstErr = r.err
			break
		}
		pending[r.idx] = r
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			applyOne(lengths[next], cur)
			p.hostMem.Release(int64(len(cur.edges)) * edgeCandBytes)
			next++
		}
	}
	close(abort)
	wg.Wait()
	close(results)
	for r := range results {
		p.hostMem.Release(int64(len(r.edges)) * edgeCandBytes)
	}
	for _, r := range pending {
		p.hostMem.Release(int64(len(r.edges)) * edgeCandBytes)
	}
	p.cfg.Obs.Log().Debug("reduce worker pool drained", "err", firstErr)
	return firstErr
}

// sweepSortScratch removes the per-sort spill directories (sort_<kind>_<len>)
// a crashed or cancelled run left under the partition directory. Sorted
// partition files and raw partitions are untouched — only the private
// scratch that sortPhase would normally remove on its way out.
func sweepSortScratch(partDir string) error {
	ents, err := os.ReadDir(partDir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "sort_") {
			if err := os.RemoveAll(filepath.Join(partDir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedLengthsDesc returns the partition lengths in descending order,
// the deterministic schedule shared by the sort and reduce phases.
func sortedLengthsDesc(counts map[int]int64) []int {
	lengths := make([]int, 0, len(counts))
	for l := range counts {
		lengths = append(lengths, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	return lengths
}

// runTasks runs n independent tasks on up to workers goroutines and
// returns the first error. Remaining tasks are skipped after an error.
// Each task receives the index of the worker running it, so callers can
// attribute work to per-worker trace lanes.
func runTasks(workers, n int, task func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := task(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				if err := task(w, i); err != nil {
					failed.Store(true)
					select {
					case errs <- err:
					default:
					}
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errs)
	return <-errs
}

// verifyOverlap checks that the l-suffix of vertex u equals the l-prefix
// of vertex v by comparing the underlying sequences.
func (p *Pipeline) verifyOverlap(rs dna.ReadSource, u, v uint32, l int) bool {
	su := rs.VertexSeq(u)
	sv := rs.VertexSeq(v)
	if l > len(su) || l > len(sv) {
		return false
	}
	return su[len(su)-l:].Equal(sv[:l])
}

// compressPhase rebuilds the configured graph from the persisted edge
// list, traverses paths, and generates contigs. Loading from disk rather
// than reusing Reduce's in-memory graph is deliberate: it is the single
// code path shared by cold and resumed runs, so resumed output is
// byte-identical by construction.
func (p *Pipeline) compressPhase(rs dna.ReadSource, edgePath string, res *Result) error {
	if p.cfg.backend() == BackendSuccinct {
		// Rebuild the compressed store straight off the persisted sorted
		// runs — the builder validates ordering and ranges as it streams,
		// so a corrupted edge file fails here — and spell contigs from
		// unitig chains directly over the compressed adjacency: no CSR
		// matrix or pointer-based graph is ever materialized.
		it, err := newEdgeFileIterator(edgePath, p.meter)
		if err != nil {
			return err
		}
		sink := graphSink{p}
		g, err := succinct.FromEdgeRunsMetered(2*rs.NumReads(), sink,
			func() (succinct.Edge, bool, error) {
				e, ok, err := it.Next()
				return succinct.Edge{U: e.U, V: e.V, Len: e.Len}, ok, err
			})
		if cerr := it.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		defer sink.Release(g.HostBytes())
		paths := sgraph.UnitigsOf(g, rs.VertexLen, p.cfg.IncludeSingletons)
		return p.writeContigs(rs, paths, res)
	}
	if p.cfg.backend() == BackendSpmat {
		// Rebuild the CSR matrix from the persisted sorted runs —
		// FromEdgeRuns validates ordering and ranges, so a corrupted edge
		// file fails here instead of spelling garbage — then spell
		// contigs from unitig chains exactly like the full-graph path.
		it, err := newEdgeFileIterator(edgePath, p.meter)
		if err != nil {
			return err
		}
		m, err := spmat.FromEdgeRuns(2*rs.NumReads(), func() (spmat.Edge, bool, error) {
			e, ok, err := it.Next()
			return spmat.Edge{U: e.U, V: e.V, Len: e.Len}, ok, err
		})
		if cerr := it.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		defer p.trackGraph(m.ApproxBytes())()
		fg := sgraph.New(rs.NumReads())
		m.Edges(func(e spmat.Edge) { fg.InstallEdge(e.U, e.V, e.Len) })
		defer p.trackGraph(fg.ApproxBytes())()
		paths := fg.Unitigs(rs.VertexLen, p.cfg.IncludeSingletons)
		return p.writeContigs(rs, paths, res)
	}
	if p.cfg.FullGraph {
		fg := sgraph.New(rs.NumReads())
		err := readEdgeFile(edgePath, p.meter, func(e persistedEdge) {
			fg.InstallEdge(e.U, e.V, e.Len)
		})
		if err != nil {
			return err
		}
		defer p.trackGraph(fg.ApproxBytes())()
		paths := fg.Unitigs(rs.VertexLen, p.cfg.IncludeSingletons)
		return p.writeContigs(rs, paths, res)
	}
	g := graph.New(rs.NumReads())
	defer p.trackGraph(g.ApproxBytes())()
	err := readEdgeFile(edgePath, p.meter, func(e persistedEdge) {
		g.InstallEdge(graph.Edge{U: e.U, V: e.V, Len: e.Len})
	})
	if err != nil {
		return err
	}
	opts := graph.TraverseOptions{
		IncludeSingletons: p.cfg.IncludeSingletons,
		BreakCycles:       p.cfg.BreakCycles,
	}
	var paths []graph.Path
	if p.cfg.ParallelTraversal {
		paths = g.TraverseParallel(p.dev, rs.VertexLen, opts)
	} else {
		paths = g.Traverse(rs.VertexLen, opts)
	}
	return p.writeContigs(rs, paths, res)
}

// writeContigs generates contig sequences from paths and writes the FASTA
// output.
func (p *Pipeline) writeContigs(rs dna.ReadSource, paths []graph.Path, res *Result) error {
	res.Contigs = contig.Generate(contig.Config{Device: p.dev}, paths, rs)
	res.ContigStats = contig.Summarize(res.Contigs)

	res.ContigPath = filepath.Join(p.cfg.Workspace, contigFileName)
	f, err := os.Create(res.ContigPath)
	if err != nil {
		return err
	}
	w := fastq.NewFastaWriter(f, 80)
	var written int64
	for i, c := range res.Contigs {
		if err := w.Write(fastq.Record{Name: fmt.Sprintf("contig%d len=%d", i, len(c)), Seq: c}); err != nil {
			f.Close()
			return err
		}
		written += int64(len(c))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	p.meter.AddDiskWrite(written)
	return f.Close()
}
