// Package core orchestrates the single-node LaSAGNA pipeline (Fig. 4):
// map (fingerprint generation + partitioning), sort (hybrid external
// sort), reduce (suffix-prefix matching + greedy graph), and compress
// (path traversal + contig generation).
//
// The pipeline owns a simulated GPU device, a host-memory tracker, and a
// cost meter; every phase reports wall time, modeled time under the
// configured hardware profile, peak host and device memory, and disk
// traffic — the measurements behind Tables II-V of the paper.
package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/costmodel"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/obs"
)

// Config parameterizes an assembly run.
type Config struct {
	// Workspace is the scratch directory for partition files, sort runs,
	// and outputs. It must exist.
	Workspace string
	// Workers bounds the pipeline's partition-level concurrency: map
	// batches in flight, partitions sorted at once, and partitions reduced
	// at once. Each in-flight unit holds its own device batch allocation,
	// so device-memory capacity still bounds effective concurrency
	// whatever the setting. 0 means runtime.GOMAXPROCS(0); 1 reproduces
	// the serial pipeline exactly. Output and modeled cost are byte-
	// identical for every value (see DESIGN.md, "Concurrency model").
	Workers int
	// MinOverlap is l_min: candidate overlaps shorter than this are
	// discarded during partitioning.
	MinOverlap int
	// HostBlockPairs is m_h, the number of key-value pairs sorted per
	// host-memory block; it controls the number of disk passes.
	HostBlockPairs int
	// DeviceBlockPairs is m_d, the number of pairs per device chunk; it
	// controls the number of device merge passes.
	DeviceBlockPairs int
	// MapBatchReads is the number of reads shipped to the device per map
	// kernel launch.
	MapBatchReads int
	// GPU selects the modeled card.
	GPU gpu.Spec
	// DiskReadBps/DiskWriteBps set the modeled disk bandwidth.
	DiskReadBps  float64
	DiskWriteBps float64
	// IncludeSingletons emits single-read contigs for reads that joined
	// no path.
	IncludeSingletons bool
	// BreakCycles walks residual cycles during traversal.
	BreakCycles bool
	// KeepIntermediate retains partition and sorted files after the run.
	KeepIntermediate bool
	// Resume re-enters an interrupted run mid-pipeline: when the workspace
	// holds a run manifest whose config fingerprint, input hash, and
	// resume-point artifacts all validate, the committed stages are
	// skipped and their counters replayed from the manifest. Output is
	// byte-identical to a cold run. Any mismatch — changed configuration,
	// different reads, corrupted or missing artifacts — falls back to a
	// full re-run; stale state is never trusted. See DESIGN.md, "Stage
	// graph and resume".
	Resume bool
	// FullGraph switches the reduce phase from the paper's greedy graph
	// to the full string graph of Section II-A.2: every candidate overlap
	// becomes an edge, transitive edges are removed (Myers 2005), and
	// contigs are spelled from unitig chains. Costs memory proportional
	// to the number of overlaps instead of the number of reads.
	FullGraph bool
	// TransitiveFuzz is the overhang slack allowed when identifying
	// transitive edges in FullGraph and spmat modes (0 suits exact,
	// error-free overlaps).
	TransitiveFuzz int
	// GraphBackend selects the engine behind the Reduce and Compress
	// stages. "" or BackendGreedy is the paper's pipeline: the greedy
	// bit-vector graph (or the sgraph full graph when FullGraph is set).
	// BackendSpmat stores the string graph as a CSR sparse matrix and
	// removes transitive edges with a masked SpGEMM pass metered as
	// batched, tiled device kernels (see internal/spmat). spmat removes a
	// superset of the Myers sweep's transitive edges while preserving
	// reachability; contigs are spelled from the same unitig rule as
	// FullGraph (see DESIGN.md, "Sparse-matrix graph backend").
	// BackendSuccinct runs the same reduction predicate over a
	// delta-compressed adjacency store built streaming off the sorted
	// candidate runs, trading decode work for a host peak several times
	// below the CSR and edge-list layouts (see DESIGN.md, "Succinct
	// overlap-graph store"). spmat and succinct produce byte-identical
	// contigs. Output-relevant: part of the resume fingerprint. spmat and
	// succinct are mutually exclusive with FullGraph.
	GraphBackend string
	// ParallelTraversal extracts paths with the BSP pointer-jumping
	// traversal (the paper's future-work parallel graph processing)
	// instead of the sequential walk. Outputs are identical on shotgun
	// data; residual cycles are skipped rather than broken.
	ParallelTraversal bool
	// PackedReads stores the bulk reads 2-bit packed (a quarter of the
	// byte-per-base footprint), matching the encoding the paper's
	// host-memory accounting assumes; reads are unpacked per access.
	PackedReads bool
	// DedupeReads removes duplicate reads (including reverse-complement
	// duplicates) before assembly. The paper does not deduplicate, but
	// high-coverage data forms greedy 2-cycles between duplicate reads
	// that fragment contigs; see dna.Deduplicate.
	DedupeReads bool
	// Streams enables overlapped execution modeling: the sort and reduce
	// phases run their disk prefetch and device work on gpu.Streams backed
	// by per-unit costmodel Timelines, and each phase's modeled time
	// becomes the overlap-aware makespan instead of the additive tier sum.
	// Output bytes and all cost counters are identical either way — only
	// modeled seconds change, and only downward (see DESIGN.md, "Streams
	// and overlap accounting"). Execution knob: excluded from the resume
	// fingerprint.
	Streams bool
	// NaiveMapKernel switches the map phase to the per-read-thread
	// fingerprint kernel the paper rejects (Section III-A); exposed for
	// the ablation benchmarks.
	NaiveMapKernel bool
	// VerifyOverlaps cross-checks every candidate edge against the actual
	// read sequences before inserting it, turning fingerprint false
	// positives into hard errors. The paper reports zero false positives
	// with 128-bit fingerprints; this switch proves it per run.
	VerifyOverlaps bool
	// Shards asks the fleet-capable layers (internal/serve, the CLI) to
	// split this run across K fleet devices via the cluster layer instead
	// of executing it on one card. 0 or 1 keeps the single-device
	// pipeline. The core pipeline itself ignores the knob beyond
	// validation — output is byte-identical at every shard count, so it is
	// excluded from the resume fingerprint.
	Shards int
	// Priority is the serving-layer admission lane this run should join
	// ("" or "batch", or "interactive" to jump the batch backlog and
	// preempt running batch jobs when no device has room). Pure
	// scheduling metadata: the pipeline ignores it and it never affects
	// output or the resume fingerprint.
	Priority string
	// Obs is the observability sink: span tracing, structured logging,
	// and the metrics registry. Nil (the default) disables all
	// instrumentation; runs are byte-identical either way. Like the other
	// execution knobs it is excluded from the resume fingerprint.
	Obs *obs.Observer
	// Progress, when set, receives one callback per stage lifecycle
	// transition: ProgressStart/ProgressDone/ProgressFailed around fresh
	// execution and ProgressCached when a resumed run replays the stage
	// from the manifest. Callbacks run on the stage-driver goroutine, so
	// implementations must be fast and must not call back into the
	// pipeline. The serve layer uses it to publish per-job progress over
	// HTTP. Execution knob: excluded from the resume fingerprint.
	Progress func(stage string, event string)
}

// The Config.GraphBackend values.
const (
	// BackendGreedy is the paper's reduce/compress engine (also the
	// resolution of the empty string).
	BackendGreedy = "greedy"
	// BackendSpmat is the sparse-matrix engine: CSR adjacency, masked
	// SpGEMM transitive reduction, unitig compression.
	BackendSpmat = "spmat"
	// BackendSuccinct is the compressed-store engine: the string graph's
	// adjacency held as delta-compressed byte streams indexed by
	// Elias–Fano offsets, constructed in a single streaming pass off the
	// sorted candidate runs (the full edge list never materializes in
	// host memory), with the same masked transitive-reduction predicate
	// as spmat and the same unitig compression (see internal/succinct).
	BackendSuccinct = "succinct"
)

// Backends lists the valid GraphBackend values, for CLI/API validation.
var Backends = []string{BackendGreedy, BackendSpmat, BackendSuccinct}

// The Config.Priority admission lanes, in descending scheduling priority.
const (
	// PriorityInteractive jobs are dispatched before any batch job and may
	// preempt running batch jobs when no device has room.
	PriorityInteractive = "interactive"
	// PriorityBatch is the default lane (also the resolution of "").
	PriorityBatch = "batch"
)

// Priorities lists the valid Priority values, for CLI/API validation.
var Priorities = []string{PriorityInteractive, PriorityBatch}

// Progress events delivered to Config.Progress.
const (
	ProgressStart  = "start"
	ProgressDone   = "done"
	ProgressFailed = "failed"
	ProgressCached = "cached"
)

// DefaultConfig returns a configuration sized for the scaled reproduction
// datasets: a K40-class device profile with block sizes that exercise the
// two-level streaming model without fitting everything in one pass.
func DefaultConfig(workspace string) Config {
	return Config{
		Workspace:         workspace,
		Workers:           runtime.GOMAXPROCS(0),
		MinOverlap:        63,
		HostBlockPairs:    1 << 20,
		DeviceBlockPairs:  1 << 16,
		MapBatchReads:     4096,
		GPU:               gpu.K40,
		DiskReadBps:       costmodel.DefaultDisk.ReadBps,
		DiskWriteBps:      costmodel.DefaultDisk.WriteBps,
		IncludeSingletons: false,
		BreakCycles:       true,
		Streams:           true,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Workspace == "" {
		return fmt.Errorf("core: empty workspace")
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	if c.MinOverlap < 1 {
		return fmt.Errorf("core: MinOverlap must be >= 1, got %d", c.MinOverlap)
	}
	if c.HostBlockPairs <= 0 || c.DeviceBlockPairs <= 0 {
		return fmt.Errorf("core: block sizes must be positive")
	}
	if c.DeviceBlockPairs > c.HostBlockPairs {
		return fmt.Errorf("core: device block (%d) exceeds host block (%d)",
			c.DeviceBlockPairs, c.HostBlockPairs)
	}
	if c.MapBatchReads <= 0 {
		return fmt.Errorf("core: MapBatchReads must be positive")
	}
	if need := int64(2*c.DeviceBlockPairs) * kv.PairBytes; need > c.GPU.MemBytes {
		return fmt.Errorf("core: device block needs %d bytes, %s has %d",
			need, c.GPU.Name, c.GPU.MemBytes)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: Shards must be >= 0, got %d", c.Shards)
	}
	switch c.Priority {
	case "", PriorityBatch, PriorityInteractive:
	default:
		return fmt.Errorf("core: unknown Priority %q (want %q or %q)",
			c.Priority, PriorityBatch, PriorityInteractive)
	}
	switch c.GraphBackend {
	case "", BackendGreedy:
	case BackendSpmat, BackendSuccinct:
		if c.FullGraph {
			return fmt.Errorf("core: GraphBackend %q and FullGraph are mutually exclusive graph engines",
				c.GraphBackend)
		}
	default:
		return fmt.Errorf("core: unknown GraphBackend %q (want %q, %q, or %q)",
			c.GraphBackend, BackendGreedy, BackendSpmat, BackendSuccinct)
	}
	return nil
}

// backend resolves the GraphBackend knob: the empty string means greedy.
func (c Config) backend() string {
	if c.GraphBackend == "" {
		return BackendGreedy
	}
	return c.GraphBackend
}

// Profile returns the cost-model profile for the configured hardware.
func (c Config) Profile() costmodel.Profile {
	return c.GPU.CostProfile(c.DiskReadBps, c.DiskWriteBps)
}

// workers resolves the Workers knob: 0 means one worker per CPU.
func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// DeviceDemandBytes returns an upper bound on the device memory this
// configuration can hold concurrently while assembling reads of at most
// maxReadLen bases. Each pipeline worker holds at most one batch
// allocation at a time (the AllocWait contract), so the bound is
// workers x the largest single-batch claim any stage makes:
//
//   - Map: the read batch on both strands plus the per-block scan
//     buffers (see Mapper.mapBatch),
//   - Sort: the radix double-buffer and the two-level merge windows
//     (see extsort.sortHostBlock / mergeFiles),
//   - Reduce: a suffix+prefix window pair plus the three bound/count
//     vectors (see overlap.ReducePaths).
//
// The serve scheduler leases exactly this many bytes from the shared
// device before admitting a job, which is what makes multi-tenant
// packing safe: the sum of admitted leases can never exceed the card.
func (c Config) DeviceDemandBytes(maxReadLen int) int64 {
	l := int64(maxReadLen)
	mapBytes := 2*int64(c.MapBatchReads)*l + 64*int64(runtime.GOMAXPROCS(0))*l
	sortBytes := 4 * int64(c.DeviceBlockPairs) * kv.PairBytes
	window := int64(max(c.HostBlockPairs/2, 1))
	reduceBytes := 2*window*kv.PairBytes + 12*window
	return int64(c.workers()) * max(mapBytes, sortBytes, reduceBytes)
}

// PhaseName identifies a pipeline phase in results.
type PhaseName string

// The pipeline phases, in execution order, matching the row labels of
// Tables II and III.
const (
	PhaseLoad     PhaseName = "Load"
	PhaseMap      PhaseName = "Map"
	PhaseSort     PhaseName = "Sort"
	PhaseReduce   PhaseName = "Reduce"
	PhaseCompress PhaseName = "Compress"
)

// Durations keyed by phase, used by results and the bench harness.
type PhaseTimes map[PhaseName]time.Duration
