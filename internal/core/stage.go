package core

import (
	"fmt"
	"path/filepath"

	"repro/internal/obs"
)

// A Stage is one node of the pipeline's stage graph: a named unit of work
// that consumes the previous stage's on-disk artifacts and commits its own
// before the next stage starts. Fresh runs the stage from scratch and
// declares what it left on disk; Cached restores the stage's in-memory
// side effects (counters, derived state) from a committed record when a
// resumed run skips the work.
type Stage struct {
	Name PhaseName
	// Fresh executes the stage and returns its committed outputs.
	Fresh func() (StageOutcome, error)
	// Cached replays a committed stage from its manifest record. It must
	// leave the pipeline in the same in-memory state Fresh would have.
	Cached func(rec StageRecord) error
}

// StageOutcome is what a freshly-run stage commits to the manifest.
type StageOutcome struct {
	// Artifacts lists the stage's output files, relative to the runner's
	// root directory. They are checksummed at commit time.
	Artifacts []string
	// Meta carries counters a resumed run needs to restore Result fields.
	Meta map[string]int64
	// Cleanup runs after the manifest commits; it is where a stage deletes
	// its predecessor's consumed inputs. Deferring the deletes until after
	// the commit means a crash mid-stage always leaves the previous
	// stage's artifacts intact and resumable.
	Cleanup func() error
}

// FaultHook is called after each stage commits (manifest written, consumed
// inputs cleaned up). Returning an error aborts the run at exactly the
// point a crash would: the committed stages are resumable, everything
// later never started. Tests use it to exercise kill-and-restart recovery.
type FaultHook func(stage PhaseName) error

// StageRunner executes a fixed sequence of stages, persisting a run
// manifest after each commit and skipping the stages a validated manifest
// already covers.
type StageRunner struct {
	root     string // artifact paths are relative to this directory
	path     string // manifest file
	manifest *Manifest
	resumeAt int // stages before this index replay from the manifest
	pos      int // next stage index to execute
	fault    FaultHook
	cached   []string // names of stages served from the manifest

	// resumeNote records which manifest check settled the resume plan at
	// construction time, so SetObserver can log the decision even though
	// the observer is installed afterwards.
	resumeNote string
	obs        *obs.Observer
	track      obs.Track
	progress   func(stage, event string)
}

// NewStageRunner prepares a runner rooted at dir. When resume is true and
// dir holds a manifest whose version, config hash, and input hash all
// match, the runner plans to skip the manifest's contiguous prefix of
// committed stages — provided the artifacts of the last committed stage
// (the ones the next stage will consume) still checksum-validate. Any
// mismatch, including a corrupted or missing artifact, falls back to a
// full re-run; stale state is never trusted.
func NewStageRunner(dir, cfgHash, inputHash string, resume bool, names []PhaseName) *StageRunner {
	r := &StageRunner{
		root: dir,
		path: filepath.Join(dir, ManifestName),
		manifest: &Manifest{
			Version:    manifestVersion,
			ConfigHash: cfgHash,
			InputHash:  inputHash,
		},
	}
	if !resume {
		r.resumeNote = "resume disabled"
		return r
	}
	m, err := loadManifest(r.path)
	switch {
	case err != nil:
		r.resumeNote = fmt.Sprintf("no usable manifest: %v", err)
		return r
	case m.Version != manifestVersion:
		r.resumeNote = fmt.Sprintf("manifest version %d != %d", m.Version, manifestVersion)
		return r
	case m.ConfigHash != cfgHash:
		r.resumeNote = "config fingerprint changed"
		return r
	case m.InputHash != inputHash:
		r.resumeNote = "input fingerprint changed"
		return r
	}
	// Longest prefix of the planned stage sequence the manifest committed,
	// in order.
	done := 0
	for done < len(names) && done < len(m.Stages) {
		if m.Stages[done].Name != string(names[done]) || m.Stages[done].Status != stageDone {
			break
		}
		done++
	}
	if done == 0 {
		r.resumeNote = "manifest has no committed stage prefix"
		return r
	}
	// Only the resume point's artifacts must still be intact: earlier
	// stages' outputs were legitimately consumed by their successors
	// (e.g. Sort deletes Map's raw partitions after committing).
	if err := validateArtifacts(dir, m.Stages[done-1]); err != nil {
		r.resumeNote = fmt.Sprintf("artifact validation failed: %v", err)
		return r
	}
	m.Stages = m.Stages[:done]
	r.manifest = m
	r.resumeAt = done
	r.resumeNote = fmt.Sprintf("manifest valid, replaying %d committed stage(s)", done)
	return r
}

// ResumeAt reports how many leading stages the runner will replay from the
// manifest instead of executing.
func (r *StageRunner) ResumeAt() int { return r.resumeAt }

// LimitResume lowers the resume point to at most k replayed stages,
// discarding later committed records. The cluster uses it for lockstep
// resume: a stage is skipped only when every node can skip it, so the
// global resume point is the minimum over the per-node plans.
func (r *StageRunner) LimitResume(k int) {
	if k < r.resumeAt {
		r.manifest.Stages = r.manifest.Stages[:k]
		r.resumeAt = k
	}
}

// SetFaultHook installs a post-commit fault injection hook.
func (r *StageRunner) SetFaultHook(h FaultHook) { r.fault = h }

// SetProgress installs the stage-progress callback (Config.Progress); the
// runner delivers the ProgressCached events for replayed stages, which
// never pass through the pipeline's runPhase. May be nil.
func (r *StageRunner) SetProgress(fn func(stage, event string)) { r.progress = fn }

// SetObserver installs the observability sink and the trace track the
// runner's markers land on, and logs the resume decision made at
// construction time (which manifest check passed or failed).
func (r *StageRunner) SetObserver(o *obs.Observer, track obs.Track) {
	r.obs = o
	r.track = track
	if r.resumeAt > 0 {
		o.Log().Info("resume plan", "decision", r.resumeNote, "skip", r.resumeAt)
	} else {
		o.Log().Debug("resume plan", "decision", r.resumeNote)
	}
}

// CachedStages returns the names of stages served from the manifest so
// far, in execution order.
func (r *StageRunner) CachedStages() []string { return r.cached }

// Record returns the committed record of the named stage, if present.
func (r *StageRunner) Record(name PhaseName) (StageRecord, bool) {
	return r.manifest.stageRecordByName(string(name))
}

// Run executes (or replays) the next stage in the sequence. Stages must be
// submitted in the order planned at construction.
func (r *StageRunner) Run(s Stage) error {
	idx := r.pos
	r.pos++
	if idx < r.resumeAt {
		rec := r.manifest.Stages[idx]
		if rec.Name != string(s.Name) {
			return fmt.Errorf("core: stage order mismatch: manifest has %s at %d, pipeline ran %s",
				rec.Name, idx, s.Name)
		}
		if err := s.Cached(rec); err != nil {
			return fmt.Errorf("core: replaying cached stage %s: %w", s.Name, err)
		}
		r.cached = append(r.cached, string(s.Name))
		if r.progress != nil {
			r.progress(string(s.Name), ProgressCached)
		}
		// The cached stage leaves a marker where its span would be, so a
		// resumed run's trace shows the skip instead of a silent gap.
		r.obs.Tracer().Instant(r.track, "marker", "cached: "+string(s.Name),
			map[string]any{"artifacts": len(rec.Artifacts)})
		r.obs.Log().Info("stage skipped (cached)", "stage", string(s.Name),
			"artifacts", len(rec.Artifacts))
		return nil
	}
	out, err := s.Fresh()
	if err != nil {
		return err
	}
	rec := StageRecord{Name: string(s.Name), Status: stageDone, Meta: out.Meta}
	for _, rel := range out.Artifacts {
		a, err := describeArtifact(r.root, rel)
		if err != nil {
			return fmt.Errorf("core: committing stage %s: %w", s.Name, err)
		}
		rec.Artifacts = append(rec.Artifacts, a)
	}
	r.manifest.Stages = append(r.manifest.Stages, rec)
	if m := r.obs.Metrics(); m != nil {
		snap := m.Snapshot()
		r.manifest.Metrics = &snap
	}
	if err := r.manifest.save(r.path); err != nil {
		return fmt.Errorf("core: committing stage %s: %w", s.Name, err)
	}
	r.obs.Log().Info("stage committed", "stage", string(s.Name),
		"artifacts", len(rec.Artifacts))
	if out.Cleanup != nil {
		if err := out.Cleanup(); err != nil {
			return err
		}
	}
	if r.fault != nil {
		if err := r.fault(s.Name); err != nil {
			return err
		}
	}
	return nil
}
