package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAssembleFileMissing(t *testing.T) {
	p, err := New(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AssembleFile(filepath.Join(t.TempDir(), "nope.fastq")); err == nil {
		t.Error("missing input file should fail")
	}
}

func TestAssembleFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.fastq")
	if err := os.WriteFile(bad, []byte("@r\nAXGT\n+\nIIII\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := New(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AssembleFile(bad); err == nil {
		t.Error("corrupt FASTQ should fail")
	}
}

func TestAssembleUnusableWorkspace(t *testing.T) {
	// A regular file where the workspace directory should be: MkdirAll
	// fails regardless of privileges.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(t)
	cfg.Workspace = blocked
	cfg.MinOverlap = 25
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, reads := testGenomeReads(t, 800, 40, 5)
	if _, err := p.Assemble(reads); err == nil {
		t.Error("workspace colliding with a file should fail")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := smallConfig(t)
	cfg.HostBlockPairs = -1
	if _, err := New(cfg); err == nil {
		t.Error("invalid config should be rejected at construction")
	}
}

func TestResultPhaseByNameMissing(t *testing.T) {
	res := &Result{}
	if _, ok := res.PhaseByName(PhaseSort); ok {
		t.Error("empty result should have no phases")
	}
}
