package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dna"
	"repro/internal/obs"
)

// manifestVersion guards the on-disk schema: a manifest written by an
// incompatible build never validates, forcing a clean re-run.
const manifestVersion = 1

// ManifestName is the run-manifest file name within a workspace (or a
// cluster node's private storage directory).
const ManifestName = "manifest.json"

// Manifest is the persistent record of one assembly run's progress: which
// stages have committed, what artifacts they left on disk, and the
// configuration and input they are only valid for. It is rewritten
// atomically after every stage commit, which is what makes mid-pipeline
// resume (Config.Resume) sound: a crash leaves either the pre-stage or the
// post-stage manifest, never a torn one.
type Manifest struct {
	Version    int           `json:"version"`
	ConfigHash string        `json:"configHash"`
	InputHash  string        `json:"inputHash"`
	Stages     []StageRecord `json:"stages"`
	// Metrics is the observability registry snapshot as of the last stage
	// commit; absent when the run had no metrics registry. Informational
	// only — resume validation never reads it.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// StageRecord is one committed stage.
type StageRecord struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	// Artifacts lists the stage's on-disk outputs, workspace-relative.
	// Later stages may consume (delete) them; resume validation only
	// checks the artifacts of the stage it re-enters after.
	Artifacts []Artifact `json:"artifacts,omitempty"`
	// Meta carries the counters a resumed run must restore without
	// re-doing the work (disk passes, edge counts, ...).
	Meta map[string]int64 `json:"meta,omitempty"`
}

// Artifact describes one output file at commit time.
type Artifact struct {
	Path   string `json:"path"` // relative to the manifest's root dir
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

const stageDone = "done"

// stageRecordByName returns the named stage record, if committed.
func (m *Manifest) stageRecordByName(name string) (StageRecord, bool) {
	for _, s := range m.Stages {
		if s.Name == name {
			return s, true
		}
	}
	return StageRecord{}, false
}

// save writes the manifest atomically (tmp + rename) so readers never see
// a torn file.
func (m *Manifest) save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadManifest reads a manifest; a missing or unparsable file is an error
// (callers treat any error as "start from scratch").
func loadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: corrupt manifest %s: %w", path, err)
	}
	return &m, nil
}

// describeArtifact stats and checksums one artifact file. rel must be
// relative to root.
func describeArtifact(root, rel string) (Artifact, error) {
	full := filepath.Join(root, rel)
	f, err := os.Open(full)
	if err != nil {
		return Artifact{}, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return Artifact{}, err
	}
	return Artifact{Path: filepath.ToSlash(rel), Bytes: n, SHA256: hex.EncodeToString(h.Sum(nil))}, nil
}

// validateArtifacts re-checksums every artifact of a committed stage and
// reports the first mismatch (missing file, size drift, content drift).
func validateArtifacts(root string, rec StageRecord) error {
	for _, a := range rec.Artifacts {
		got, err := describeArtifact(root, filepath.FromSlash(a.Path))
		if err != nil {
			return fmt.Errorf("core: stage %s artifact %s: %w", rec.Name, a.Path, err)
		}
		if got.Bytes != a.Bytes || got.SHA256 != a.SHA256 {
			return fmt.Errorf("core: stage %s artifact %s changed since commit", rec.Name, a.Path)
		}
	}
	return nil
}

// fingerprint hashes the output-relevant configuration: every knob that
// changes the bytes any stage writes. Execution knobs (Workers, Workspace,
// KeepIntermediate, Resume, Streams, disk bandwidths) are deliberately
// excluded — they may differ between the interrupted run and the resumed
// one.
func (c Config) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|min=%d|mh=%d|md=%d|mb=%d|gpu=%s/%d",
		manifestVersion, c.MinOverlap, c.HostBlockPairs, c.DeviceBlockPairs,
		c.MapBatchReads, c.GPU.Name, c.GPU.MemBytes)
	fmt.Fprintf(h, "|sing=%t|cyc=%t|fg=%t|fuzz=%d|ptrav=%t|pack=%t|dedupe=%t|naive=%t|verify=%t",
		c.IncludeSingletons, c.BreakCycles, c.FullGraph, c.TransitiveFuzz,
		c.ParallelTraversal, c.PackedReads, c.DedupeReads, c.NaiveMapKernel, c.VerifyOverlaps)
	// The resolved backend, not the raw knob: "" and "greedy" must
	// fingerprint identically because they produce identical bytes.
	fmt.Fprintf(h, "|backend=%s", c.backend())
	return hex.EncodeToString(h.Sum(nil))
}

// InputFingerprint hashes the read set a run consumes, so a manifest can
// never resume over different input data. The cluster layer shares it for
// its per-node manifests.
func InputFingerprint(rs dna.ReadSource) string {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(rs.NumReads()))
	h.Write(hdr[:])
	for r := 0; r < rs.NumReads(); r++ {
		seq := rs.Read(uint32(r))
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(seq)))
		h.Write(hdr[:])
		h.Write([]byte(seq))
	}
	return hex.EncodeToString(h.Sum(nil))
}
