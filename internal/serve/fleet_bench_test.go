package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fleetBenchConfig is one scheduler shape the fleet benchmark measures.
type fleetBenchConfig struct {
	Devices    int     `json:"devices"`
	Steal      bool    `json:"steal"`
	Jobs       int     `json:"jobs"`
	WallSec    float64 `json:"wallSeconds"`
	JobsPerSec float64 `json:"jobsPerSec"`
	P50QueueMs float64 `json:"p50QueueMs"`
	P99QueueMs float64 `json:"p99QueueMs"`
	Steals     int64   `json:"steals"`
}

// fleetBenchReport is the machine-readable summary `make bench` stores as
// BENCH_fleet.json. Throughput and latency are wall-clock and
// machine-dependent; the bench gate only compares modeled metrics, so
// this file documents scaling rather than gating it.
type fleetBenchReport struct {
	JobMillis    int                `json:"jobMillisMean"`
	Configs      []fleetBenchConfig `json:"configs"`
	Speedup4x    float64            `json:"speedup4xVs1"`
	StealSpeedup float64            `json:"stealSpeedupAt4"`
}

// BenchmarkFleetThroughput measures scheduler-level fleet scaling with
// modeled (sleep-based) jobs of staggered durations: jobs/sec and
// p50/p99 queue latency at 1, 2, and 4 devices, plus 4 devices with work
// stealing disabled. Sleep-based run functions keep the measurement about
// dispatch and placement, not pipeline CPU, so device-count scaling shows
// through even on small CI machines. When BENCH_FLEET_OUT names a file
// the summary is written there as JSON.
func BenchmarkFleetThroughput(b *testing.B) {
	const jobs = 48
	shapes := []struct {
		devices int
		steal   bool
	}{
		{1, true},
		{2, true},
		{4, true},
		{4, false},
	}
	var rep fleetBenchReport
	rep.JobMillis = 25
	for i := 0; i < b.N; i++ {
		rep.Configs = rep.Configs[:0]
		for _, shape := range shapes {
			cfg := runFleetBenchWave(b, shape.devices, shape.steal, jobs)
			rep.Configs = append(rep.Configs, cfg)
		}
		rep.Speedup4x = rep.Configs[2].JobsPerSec / rep.Configs[0].JobsPerSec
		rep.StealSpeedup = rep.Configs[2].JobsPerSec / rep.Configs[3].JobsPerSec
	}
	four := rep.Configs[2]
	b.ReportMetric(four.JobsPerSec, "jobs/s@4dev")
	b.ReportMetric(rep.Speedup4x, "speedup-4v1")
	b.ReportMetric(four.P99QueueMs, "p99-queue-ms")

	if out := os.Getenv("BENCH_FLEET_OUT"); out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// runFleetBenchWave pushes `jobs` staggered sleep-jobs through a fresh
// scheduler with the given fleet shape and returns the measured config.
// Job durations cycle 5..45ms so lanes finish unevenly — the workload
// where stealing pays.
func runFleetBenchWave(b *testing.B, devices int, steal bool, jobs int) fleetBenchConfig {
	b.Helper()
	caps := make([]int64, devices)
	for i := range caps {
		caps[i] = 100
	}
	var mu sync.Mutex
	waits := make([]float64, 0, jobs)
	submitted := make(map[string]time.Time, jobs)
	reg := obs.NewRegistry()
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(caps...),
		QueueCap:      jobs + 1,
		MaxConcurrent: 1,
		NoSteal:       !steal,
		Run: func(ctx context.Context, j *Job) error {
			id := j.Record().ID
			mu.Lock()
			waits = append(waits, float64(time.Since(submitted[id]).Microseconds())/1e3)
			mu.Unlock()
			var n int
			fmt.Sscanf(id, "f%d", &n)
			select {
			case <-time.After(time.Duration(5+(n%5)*10) * time.Millisecond):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		Obs: obs.New(nil, nil, reg),
	})
	if err != nil {
		b.Fatal(err)
	}

	all := make([]*Job, jobs)
	start := time.Now()
	for i := range all {
		id := fmt.Sprintf("f%d", i)
		all[i] = testJob(id, 100)
		mu.Lock()
		submitted[id] = time.Now()
		mu.Unlock()
		if err := s.Submit(all[i]); err != nil {
			b.Fatal(err)
		}
	}
	for _, j := range all {
		for j.State() != StateSucceeded {
			if j.State().Terminal() {
				b.Fatalf("bench job %s ended %s", j.Record().ID, j.State())
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	wall := time.Since(start)
	if err := s.Drain(context.Background()); err != nil {
		b.Fatal(err)
	}

	sort.Float64s(waits)
	return fleetBenchConfig{
		Devices:    devices,
		Steal:      steal,
		Jobs:       jobs,
		WallSec:    wall.Seconds(),
		JobsPerSec: float64(jobs) / wall.Seconds(),
		P50QueueMs: waits[len(waits)/2],
		P99QueueMs: waits[(len(waits)-1)*99/100],
		Steals:     reg.Snapshot().Counters["fleet.steals"],
	}
}
