package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// testJobP returns a submittable job with explicit params (lane, tenant,
// shards).
func testJobP(id string, demand int64, p Params) *Job {
	j := testJob(id, demand)
	j.Update(func(r *Record) { r.Params = p })
	return j
}

// releaseMap hands tests per-job blocking: a job whose ID has an entry
// blocks until that channel closes; every other job returns immediately.
type releaseMap struct {
	mu sync.Mutex
	ch map[string]chan struct{}
}

func newReleaseMap(ids ...string) *releaseMap {
	m := &releaseMap{ch: make(map[string]chan struct{})}
	for _, id := range ids {
		m.ch[id] = make(chan struct{})
	}
	return m
}

func (m *releaseMap) release(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ch, ok := m.ch[id]; ok {
		close(ch)
		delete(m.ch, id)
	}
}

func (m *releaseMap) run(ctx context.Context, j *Job) error {
	m.mu.Lock()
	ch, ok := m.ch[j.Record().ID]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TestSchedulerWorkStealing pins one blocking job on each of two devices,
// queues four instant jobs (the load balancer splits them two per lane),
// then frees only one device. Its dispatcher must drain its own lane and
// then steal the other device's queued jobs while that device is still
// busy — all four run on the freed card, and exactly two claims count as
// steals.
func TestSchedulerWorkStealing(t *testing.T) {
	rel := newReleaseMap("a", "b")
	reg := obs.NewRegistry()
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(100, 100),
		QueueCap:      16,
		MaxConcurrent: 1,
		Run:           rel.run,
		Obs:           obs.New(nil, nil, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	a, b := testJob("a", 100), testJob("b", 100)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	waitState(t, b, StateRunning)

	// Full-card demands force a and b onto distinct devices.
	devA, devB := a.Record().Devices[0], b.Record().Devices[0]
	if devA == devB {
		t.Fatalf("blockers share device %d; leases oversubscribed", devA)
	}

	cs := make([]*Job, 4)
	for i := range cs {
		cs[i] = testJob(fmt.Sprintf("c%d", i), 100)
		if err := s.Submit(cs[i]); err != nil {
			t.Fatal(err)
		}
	}
	stealsBase := reg.Snapshot().Counters["fleet.steals"]

	rel.release("a")
	for _, c := range cs {
		waitState(t, c, StateSucceeded)
	}
	if got := b.State(); got != StateRunning {
		t.Fatalf("blocker b left running state early: %s", got)
	}
	for _, c := range cs {
		if devs := c.Record().Devices; len(devs) != 1 || devs[0] != devA {
			t.Errorf("job %s ran on %v, want [%d] (the freed device)", c.Record().ID, devs, devA)
		}
	}
	if got := reg.Snapshot().Counters["fleet.steals"] - stealsBase; got != 2 {
		t.Errorf("fleet.steals grew by %d, want 2 (two jobs homed on the busy device)", got)
	}

	rel.release("b")
	waitState(t, b, StateSucceeded)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerNoStealKeepsLanes is the same setup with stealing
// disabled: the freed device may only run the two jobs homed on it; the
// two on the busy device's lane wait for that device.
func TestSchedulerNoStealKeepsLanes(t *testing.T) {
	rel := newReleaseMap("a", "b")
	reg := obs.NewRegistry()
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(100, 100),
		QueueCap:      16,
		MaxConcurrent: 1,
		NoSteal:       true,
		Run:           rel.run,
		Obs:           obs.New(nil, nil, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	a, b := testJob("a", 100), testJob("b", 100)
	for _, j := range []*Job{a, b} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateRunning)
	}
	cs := make([]*Job, 4)
	for i := range cs {
		cs[i] = testJob(fmt.Sprintf("c%d", i), 100)
		if err := s.Submit(cs[i]); err != nil {
			t.Fatal(err)
		}
	}

	rel.release("a")
	succeeded := func() int {
		n := 0
		for _, c := range cs {
			if c.State() == StateSucceeded {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for succeeded() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Settle: with stealing off, the other two must stay queued while b
	// blocks its device.
	time.Sleep(100 * time.Millisecond)
	if got := succeeded(); got != 2 {
		t.Fatalf("%d jobs succeeded with one device freed, want exactly 2", got)
	}
	if got := reg.Snapshot().Counters["fleet.steals"]; got != 0 {
		t.Errorf("fleet.steals = %d with NoSteal, want 0", got)
	}

	rel.release("b")
	for _, c := range cs {
		waitState(t, c, StateSucceeded)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerPreemptionDrain blocks the only device with a batch job,
// then submits an interactive job that fits the card's capacity but not
// its free bytes. The enqueue must ask the batch job to drain; the batch
// job returns ErrPreempted, requeues resumable, the interactive job takes
// the lease, and the batch job's second attempt completes.
func TestSchedulerPreemptionDrain(t *testing.T) {
	var bgAttempts atomic.Int32
	bgStarted := make(chan struct{})
	reg := obs.NewRegistry()
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(100),
		QueueCap:      8,
		MaxConcurrent: 1,
		Run: func(ctx context.Context, j *Job) error {
			if j.Record().ID != "bg" {
				return nil
			}
			if bgAttempts.Add(1) == 1 {
				close(bgStarted)
				select {
				case <-j.Preempted():
					return ErrPreempted
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return nil
		},
		Obs: obs.New(nil, nil, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	bg := testJob("bg", 100)
	if err := s.Submit(bg); err != nil {
		t.Fatal(err)
	}
	<-bgStarted

	fg := testJobP("fg", 100, Params{Priority: PriorityInteractive})
	if err := s.Submit(fg); err != nil {
		t.Fatal(err)
	}
	waitState(t, fg, StateSucceeded)
	waitState(t, bg, StateSucceeded)

	bgRec := bg.Record()
	if bgRec.Preemptions != 1 {
		t.Errorf("batch job Preemptions = %d, want 1", bgRec.Preemptions)
	}
	if bgRec.Attempts != 2 {
		t.Errorf("batch job Attempts = %d, want 2 (preempt + resume)", bgRec.Attempts)
	}
	if fgRec := fg.Record(); fgRec.Attempts != 1 || fgRec.Preemptions != 0 {
		t.Errorf("interactive job attempts=%d preemptions=%d, want 1 and 0",
			fgRec.Attempts, fgRec.Preemptions)
	}
	if got := reg.Snapshot().Counters["fleet.preemptions"]; got != 1 {
		t.Errorf("fleet.preemptions = %d, want 1", got)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerHeterogeneousPlacement checks that a big job only lands on
// the big card and a small job prefers the idle small card.
func TestSchedulerHeterogeneousPlacement(t *testing.T) {
	rel := newReleaseMap("big")
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(100, 1000),
		QueueCap:      8,
		MaxConcurrent: 1,
		Run:           rel.run,
		Obs:           obs.New(nil, nil, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	big := testJob("big", 500)
	if err := s.Submit(big); err != nil {
		t.Fatal(err)
	}
	waitState(t, big, StateRunning)
	if devs := big.Record().Devices; len(devs) != 1 || devs[0] != 1 {
		t.Fatalf("big job ran on %v, want [1] (the only card that fits)", devs)
	}

	small := testJob("small", 50)
	if err := s.Submit(small); err != nil {
		t.Fatal(err)
	}
	waitState(t, small, StateSucceeded)
	if devs := small.Record().Devices; len(devs) != 1 || devs[0] != 0 {
		t.Errorf("small job ran on %v, want [0] (the idle small card)", devs)
	}

	rel.release("big")
	waitState(t, big, StateSucceeded)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerTenantFairness caps each tenant at half the fleet and
// checks a tenant at its cap is skipped — without blocking the lane for
// other tenants — and resumes once its in-flight bytes drop.
func TestSchedulerTenantFairness(t *testing.T) {
	rel := newReleaseMap("a1", "a2", "a3", "b1")
	started := make(chan string, 8)
	baseRun := rel.run
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(1000),
		QueueCap:      8,
		MaxConcurrent: 8,
		TenantShare:   0.5, // 500 bytes per tenant
		Run: func(ctx context.Context, j *Job) error {
			started <- j.Record().ID
			return baseRun(ctx, j)
		},
		Obs: obs.New(nil, nil, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	jobs := map[string]*Job{
		"a1": testJobP("a1", 200, Params{Tenant: "alice"}),
		"a2": testJobP("a2", 200, Params{Tenant: "alice"}),
		"a3": testJobP("a3", 200, Params{Tenant: "alice"}),
		"b1": testJobP("b1", 200, Params{Tenant: "bob"}),
	}
	for _, id := range []string{"a1", "a2", "a3", "b1"} {
		if err := s.Submit(jobs[id]); err != nil {
			t.Fatal(err)
		}
	}

	first := map[string]bool{}
	for i := 0; i < 3; i++ {
		select {
		case id := <-started:
			first[id] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d jobs started, want 3 concurrent", len(first))
		}
	}
	if !first["a1"] || !first["a2"] || !first["b1"] {
		t.Fatalf("first wave = %v, want a1+a2 (alice at cap) and b1 (bob's first job)", first)
	}
	time.Sleep(50 * time.Millisecond)
	if got := jobs["a3"].State(); got != StateQueued {
		t.Fatalf("a3 state = %s while alice is at her share, want queued", got)
	}

	// Freeing one alice job brings her under the 500-byte cap; a3 starts.
	rel.release("a1")
	select {
	case id := <-started:
		if id != "a3" {
			t.Fatalf("job %s started after a1 freed, want a3", id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("a3 never started after alice dropped below her share")
	}

	for _, id := range []string{"a2", "a3", "b1"} {
		rel.release(id)
	}
	for _, j := range jobs {
		waitState(t, j, StateSucceeded)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap.Devices[0].LeasedBytes != 0 {
		t.Errorf("device still shows %d leased bytes after drain", snap.Devices[0].LeasedBytes)
	}
}

// TestSchedulerShardedPlacement runs a Shards=3 job on a 4-device fleet:
// it must lease three distinct devices at once, and a second sharded job
// must wait until enough devices free up.
func TestSchedulerShardedPlacement(t *testing.T) {
	rel := newReleaseMap("sh1")
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(100, 100, 100, 100),
		QueueCap:      8,
		MaxConcurrent: 2,
		Run:           rel.run,
		Obs:           obs.New(nil, nil, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	sh1 := testJobP("sh1", 60, Params{Shards: 3})
	if err := s.Submit(sh1); err != nil {
		t.Fatal(err)
	}
	waitState(t, sh1, StateRunning)

	devs := sh1.Record().Devices
	if len(devs) != 3 {
		t.Fatalf("sharded job leased devices %v, want 3", devs)
	}
	seen := map[int]bool{}
	for _, d := range devs {
		if seen[d] {
			t.Fatalf("sharded job leased device %d twice: %v", d, devs)
		}
		seen[d] = true
	}
	snap := s.Snapshot()
	for _, ds := range snap.Devices {
		want := int64(0)
		if seen[ds.Device] {
			want = 60
		}
		if ds.LeasedBytes != want {
			t.Errorf("device %d leased %d bytes, want %d", ds.Device, ds.LeasedBytes, want)
		}
	}

	// Only one device is free: a second 3-shard job must wait.
	sh2 := testJobP("sh2", 60, Params{Shards: 3})
	if err := s.Submit(sh2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := sh2.State(); got != StateQueued {
		t.Fatalf("second sharded job state = %s with only one free device, want queued", got)
	}

	rel.release("sh1")
	waitState(t, sh1, StateSucceeded)
	waitState(t, sh2, StateSucceeded)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, ds := range s.Snapshot().Devices {
		if ds.LeasedBytes != 0 {
			t.Errorf("device %d still leased %d bytes after drain", ds.Device, ds.LeasedBytes)
		}
	}
}

// TestSchedulerRetryAfterEstimate checks the adaptive Retry-After: the
// floor holds with no history, the estimate tracks the service-time mean
// once jobs finish, scales with the backlog, and lands on the gauge.
func TestSchedulerRetryAfterEstimate(t *testing.T) {
	rel := newReleaseMap("blocker")
	reg := obs.NewRegistry()
	baseRun := rel.run
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(100),
		QueueCap:      8,
		MaxConcurrent: 1,
		Run: func(ctx context.Context, j *Job) error {
			if err := baseRun(ctx, j); err != nil {
				return err
			}
			time.Sleep(20 * time.Millisecond)
			return nil
		},
		Obs: obs.New(nil, nil, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	if got := s.EstimateRetryAfter(2 * time.Second); got != 2*time.Second {
		t.Errorf("estimate with no history = %v, want the 2s floor", got)
	}

	warm := testJob("warm", 10)
	if err := s.Submit(warm); err != nil {
		t.Fatal(err)
	}
	waitState(t, warm, StateSucceeded)

	idle := s.EstimateRetryAfter(time.Millisecond)
	if idle < 20*time.Millisecond {
		t.Errorf("idle estimate %v below the 20ms mean service time", idle)
	}
	if got := s.EstimateRetryAfter(time.Minute); got != time.Minute {
		t.Errorf("estimate %v, want the 1m floor to win over the mean", got)
	}
	if got := reg.Snapshot().Gauges["serve.retry_after_ms"]; got != 60_000 {
		t.Errorf("serve.retry_after_ms gauge = %d, want 60000", got)
	}

	// A backlog multiplies the estimate by the number of queue waves.
	blocker := testJob("blocker", 100)
	if err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	queued := make([]*Job, 3)
	for i := range queued {
		queued[i] = testJob(fmt.Sprintf("q%d", i), 10)
		if err := s.Submit(queued[i]); err != nil {
			t.Fatal(err)
		}
	}
	if loaded := s.EstimateRetryAfter(time.Millisecond); loaded < 3*idle {
		t.Errorf("estimate %v with 3 queued jobs, want at least 3x the idle estimate %v", loaded, idle)
	}

	rel.release("blocker")
	for _, j := range queued {
		waitState(t, j, StateSucceeded)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFleetSchedulerStress hammers a heterogeneous 4-device fleet with
// mixed lanes, tenants, shard counts, and naturally occurring preemptions.
// Run under -race: every lease decision, steal, and drain crosses the
// scheduler lock and this shakes the orderings out.
func TestFleetSchedulerStress(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(100, 100, 200, 200),
		QueueCap:      64,
		MaxConcurrent: 2,
		TenantShare:   0.5,
		Run: func(ctx context.Context, j *Job) error {
			select {
			case <-j.Preempted():
				return ErrPreempted
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(500 * time.Microsecond):
				return nil
			}
		},
		Obs: obs.New(nil, nil, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	demands := []int64{50, 100, 150, 200}
	jobs := make([]*Job, 40)
	for i := range jobs {
		p := Params{Tenant: fmt.Sprintf("t%d", i%3)}
		demand := demands[i%4]
		if i%3 == 0 {
			p.Priority = PriorityInteractive
		}
		if i%8 == 0 {
			p.Shards = 2 // demand 50: every card fits a shard
		}
		jobs[i] = testJobP(fmt.Sprintf("s%02d", i), demand, p)
		if err := s.Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		waitState(t, j, StateSucceeded)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for d, ds := range s.Snapshot().Devices {
		if ds.LeasedBytes != 0 {
			t.Errorf("device %d still leased %d bytes after drain", d, ds.LeasedBytes)
		}
		if used := s.Fleet().Device(d).InUse(); used != 0 {
			t.Errorf("device %d allocator still holds %d bytes", d, used)
		}
	}
	if s.QueueDepth() != 0 {
		t.Errorf("queue depth %d after all jobs finished, want 0", s.QueueDepth())
	}
}
