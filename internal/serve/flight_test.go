package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// tokenRun is a controllable RunFunc: each attempt of a job blocks until
// the test sends it a token, drains with ErrPreempted when asked, and
// unwinds on context cancellation.
type tokenRun struct {
	mu sync.Mutex
	ch map[string]chan struct{}
}

func newTokenRun(ids ...string) *tokenRun {
	m := &tokenRun{ch: make(map[string]chan struct{})}
	for _, id := range ids {
		m.ch[id] = make(chan struct{}, 4)
	}
	return m
}

func (m *tokenRun) release(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ch[id] <- struct{}{}
}

func (m *tokenRun) run(ctx context.Context, j *Job) error {
	m.mu.Lock()
	ch := m.ch[j.ID()]
	m.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-j.Preempted():
		return ErrPreempted
	case <-ctx.Done():
		return ctx.Err()
	}
}

// eventTypes projects a job's recorded event history onto its type names.
func eventTypes(evs []obs.LogEvent) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Type
	}
	return out
}

// TestFlightRecorderLifecycle drives the acceptance scenario at the
// scheduler level: on a heterogeneous two-device fleet, a job is
// enqueued on device 0, stolen by device 1, preempted there mid-run by
// an interactive arrival, and resumed on device 0. Its event log must
// reconstruct that lifecycle in order, and its flight trace must carry
// run spans on both device tracks.
func TestFlightRecorderLifecycle(t *testing.T) {
	rel := newTokenRun("b0", "b1", "v", "i")
	reg := obs.NewRegistry()
	recorder := NewFlightRecorder(128, reg)
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(600, 1000),
		QueueCap:      16,
		MaxConcurrent: 1,
		Run:           rel.run,
		Obs:           obs.New(nil, nil, reg),
		Recorder:      recorder,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	// Blockers pin the fleet. b1 fills device 1 first (nothing else can
	// host 1000 bytes), so a busy device 1 cannot steal b0, which then
	// deterministically fills device 0.
	b0, b1 := testJob("b0", 600), testJob("b1", 1000)
	if err := s.Submit(b1); err != nil {
		t.Fatal(err)
	}
	waitState(t, b1, StateRunning)
	if err := s.Submit(b0); err != nil {
		t.Fatal(err)
	}
	waitState(t, b0, StateRunning)

	// The victim homes on device 0 (least committed load) and waits.
	v := testJob("v", 300)
	if err := s.Submit(v); err != nil {
		t.Fatal(err)
	}

	// Freeing device 1 makes its dispatcher steal v from device 0's lane.
	rel.release("b1")
	waitState(t, v, StateRunning)
	if devs := v.Record().Devices; len(devs) != 1 || devs[0] != 1 {
		t.Fatalf("stolen victim ran on %v, want [1]", devs)
	}

	// An interactive job that fits only device 1's capacity — and not its
	// current free bytes — forces the victim to drain at its next commit.
	i := testJobP("i", 800, Params{Priority: PriorityInteractive})
	if err := s.Submit(i); err != nil {
		t.Fatal(err)
	}
	waitState(t, v, StateQueued)
	waitState(t, i, StateRunning)

	// Freeing device 0 resumes the victim there: a different device than
	// the preempted attempt.
	rel.release("b0")
	waitState(t, v, StateRunning)
	if devs := v.Record().Devices; len(devs) != 1 || devs[0] != 0 {
		t.Fatalf("resumed victim ran on %v, want [0]", devs)
	}
	rel.release("v")
	waitState(t, v, StateSucceeded)
	rel.release("i")
	waitState(t, i, StateSucceeded)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The persisted event history replays the full lifecycle in order.
	rec := v.Record()
	want := []string{EventEnqueue, EventSteal, EventClaim, EventPreemptRequest,
		EventDrain, EventRequeue, EventClaim, EventTerminal}
	got := eventTypes(rec.Events)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("victim event history = %v, want %v", got, want)
	}
	if rec.TotalEvents != uint64(len(want)) {
		t.Errorf("TotalEvents = %d, want %d", rec.TotalEvents, len(want))
	}
	for k := 1; k < len(rec.Events); k++ {
		if rec.Events[k].Seq <= rec.Events[k-1].Seq {
			t.Errorf("event %d seq %d not after %d", k, rec.Events[k].Seq, rec.Events[k-1].Seq)
		}
	}
	steal := rec.Events[1]
	if steal.Attrs["src"] != 0 || steal.Attrs["dst"] != 1 {
		t.Errorf("steal attrs = %v, want src=0 dst=1", steal.Attrs)
	}
	firstClaim, secondClaim := rec.Events[2], rec.Events[6]
	if devs := firstClaim.Attrs["devices"].([]int); len(devs) != 1 || devs[0] != 1 {
		t.Errorf("first claim on %v, want [1]", devs)
	}
	if devs := secondClaim.Attrs["devices"].([]int); len(devs) != 1 || devs[0] != 0 {
		t.Errorf("second claim on %v, want [0]", devs)
	}
	if rec.Events[4].Attrs["reason"] != "preempt" {
		t.Errorf("drain reason = %v, want preempt", rec.Events[4].Attrs["reason"])
	}
	if rec.Events[7].Attrs["outcome"] != string(StateSucceeded) {
		t.Errorf("terminal outcome = %v, want succeeded", rec.Events[7].Attrs["outcome"])
	}

	// The flight trace shows run attempts on BOTH device tracks plus the
	// queued/preempted gaps on the scheduler track.
	spans := map[string][]int64{}
	for _, e := range v.Tracer().Events() {
		if e.Phase == "X" {
			spans[e.Name] = append(spans[e.Name], e.Pid)
		}
	}
	if pids := spans["run attempt 1"]; len(pids) != 1 || pids[0] != flightDevicePidBase+1 {
		t.Errorf("run attempt 1 on pids %v, want [%d]", pids, flightDevicePidBase+1)
	}
	if pids := spans["run attempt 2"]; len(pids) != 1 || pids[0] != flightDevicePidBase+0 {
		t.Errorf("run attempt 2 on pids %v, want [%d]", pids, flightDevicePidBase+0)
	}
	if len(spans["queued"]) != 1 || len(spans["preempted gap"]) != 1 {
		t.Errorf("scheduler-track gaps = %v, want one queued and one preempted gap", spans)
	}

	// The global audit log totally orders the victim's events against the
	// other jobs' traffic.
	var lastSeq uint64
	victimEvents := 0
	for _, e := range recorder.Log().Events() {
		if e.Seq <= lastSeq {
			t.Fatalf("global log seq %d not increasing after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Job == "v" {
			victimEvents++
		}
	}
	if victimEvents != len(want) {
		t.Errorf("global log has %d victim events, want %d", victimEvents, len(want))
	}

	// SLO instruments registered and observed.
	snap := reg.Snapshot()
	if c := snap.Counters[`fleet.steals_routed{src="0",dst="1"}`]; c != 1 {
		t.Errorf("fleet.steals_routed{0->1} = %d, want 1", c)
	}
	if h, ok := snap.Histograms["fleet.preempt_drain_seconds"]; !ok || h.Count != 1 {
		t.Errorf("fleet.preempt_drain_seconds count = %+v, want 1 observation", h)
	}
	queueHist := fmt.Sprintf("serve.queue_seconds{lane=%q,tenant=%q}", PriorityBatch, "")
	if h, ok := snap.Histograms[queueHist]; !ok || h.Count < 2 {
		t.Errorf("%s = %+v, want >= 2 observations", queueHist, h)
	}
}

// TestServerFlightEndpoints exercises the HTTP surface end to end with a
// real pipeline job that gets preempted and resumed: the per-job events
// endpoint replays the lifecycle, the trace endpoint serves valid
// trace-event JSON holding both lifecycle and pipeline spans, /metrics
// round-trips through the exposition parser, and every response carries
// an X-Request-Id.
func TestServerFlightEndpoints(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	scfg.MaxConcurrent = 1
	scfg.FlightRecorderEvents = 256
	fq, _ := testFastq(t, 5521)

	reached := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	scfg.StageCommitHook = func(ctx context.Context, id string, stage core.PhaseName) error {
		if stage == core.PhaseMap && first.CompareAndSwap(true, false) {
			close(reached)
			select {
			case <-release:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rec := submitJob(t, ts.URL, fq, "?lmin=31&workers=1&name=flight&tenant=lab9")
	<-reached
	if err := srv.Scheduler().Preempt(rec.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	final := pollJob(t, ts.URL, rec.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}

	// Events endpoint: lifecycle order with stage commits interleaved.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Error("response missing X-Request-Id")
	}
	var evBody struct {
		Job         string         `json:"job"`
		TotalEvents uint64         `json:"totalEvents"`
		Events      []obs.LogEvent `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&evBody)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if evBody.Job != rec.ID || len(evBody.Events) == 0 {
		t.Fatalf("events body = %+v, want non-empty for %s", evBody, rec.ID)
	}
	var lifecycle []string
	commits := 0
	for _, e := range evBody.Events {
		if e.Type == EventStageCommit {
			commits++
			continue
		}
		lifecycle = append(lifecycle, e.Type)
	}
	wantLifecycle := []string{EventEnqueue, EventClaim, EventPreemptRequest,
		EventDrain, EventRequeue, EventClaim, EventTerminal}
	if fmt.Sprint(lifecycle) != fmt.Sprint(wantLifecycle) {
		t.Errorf("lifecycle events = %v, want %v", lifecycle, wantLifecycle)
	}
	if commits == 0 {
		t.Error("no stage-commit events recorded")
	}

	// Trace endpoint: valid trace-event JSON with lifecycle spans on the
	// scheduler/device tracks AND the pipeline's own spans (pid 0).
	resp, err = http.Get(ts.URL + "/v1/jobs/" + rec.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var trace struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBody, &trace); err != nil {
		t.Fatalf("trace is not valid trace-event JSON: %v", err)
	}
	pids := map[int64]bool{}
	for _, e := range trace.TraceEvents {
		if e.Phase == "X" {
			pids[e.Pid] = true
		}
	}
	if !pids[flightSchedulerPid] {
		t.Errorf("trace has no scheduler-track span (pids %v)", pids)
	}
	if !pids[flightDevicePidBase] {
		t.Errorf("trace has no device-track run span (pids %v)", pids)
	}
	if !pids[0] {
		t.Errorf("trace has no pipeline spans on pid 0 (pids %v)", pids)
	}

	// /metrics parses back as exposition format and carries the SLO series.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentTypePrometheus {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, obs.ContentTypePrometheus)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	types, samples, err := obs.ParsePrometheus(bytes.NewReader(promBody))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, promBody)
	}
	if types["serve_jobs_succeeded"] != "counter" {
		t.Errorf("TYPE serve_jobs_succeeded = %q, want counter", types["serve_jobs_succeeded"])
	}
	if types["serve_e2e_seconds"] != "histogram" {
		t.Errorf("TYPE serve_e2e_seconds = %q, want histogram", types["serve_e2e_seconds"])
	}
	foundSLO := false
	for _, sm := range samples {
		if sm.Name == "serve_e2e_seconds_count" && sm.Labels["tenant"] == "lab9" && sm.Value >= 1 {
			foundSLO = true
		}
	}
	if !foundSLO {
		t.Errorf("no serve_e2e_seconds_count{tenant=\"lab9\"} sample in /metrics:\n%s", promBody)
	}

	// Global audit log with ?since= paging.
	resp, err = http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	var global struct {
		Total  uint64         `json:"total"`
		Events []obs.LogEvent `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&global)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if global.Total == 0 || len(global.Events) == 0 {
		t.Fatalf("/debug/events empty: %+v", global)
	}
	mid := global.Events[len(global.Events)/2].Seq
	resp, err = http.Get(fmt.Sprintf("%s/debug/events?since=%d", ts.URL, mid))
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Events []obs.LogEvent `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range page.Events {
		if e.Seq <= mid {
			t.Errorf("?since=%d returned seq %d", mid, e.Seq)
		}
	}

	// /healthz gained build identity and uptime.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Version       string   `json:"version"`
		Revision      string   `json:"revision"`
		UptimeSeconds *float64 `json:"uptimeSeconds"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Version == "" || health.Revision == "" || health.UptimeSeconds == nil {
		t.Errorf("healthz build fields = %+v, want version/revision/uptimeSeconds set", health)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFlightRecorderOffByDefault pins the disabled path: without
// FlightRecorderEvents the job record carries no events, the trace
// endpoint 404s, the registry grows no flight instruments — and the
// FASTA output and modeled result are byte-for-byte the same as an
// identical job on a recorder-enabled server.
func TestFlightRecorderOffByDefault(t *testing.T) {
	fq, _ := testFastq(t, 6161)
	run := func(recorderEvents int) (Record, []byte, obs.Snapshot, *httptest.Server, *Server) {
		scfg := testServerConfig(t.TempDir())
		scfg.FlightRecorderEvents = recorderEvents
		srv, err := New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		rec := submitJob(t, ts.URL, fq, "?lmin=31&workers=1")
		final := pollJob(t, ts.URL, rec.ID)
		if final.State != StateSucceeded {
			t.Fatalf("job finished %s: %s", final.State, final.Error)
		}
		fasta := fetchResult(t, ts.URL, final.ID)
		return final, fasta, debugMetrics(t, ts.URL), ts, srv
	}

	offRec, offFasta, offSnap, offTS, offSrv := run(0)
	onRec, onFasta, _, onTS, onSrv := run(256)
	defer offTS.Close()
	defer onTS.Close()

	if len(offRec.Events) != 0 || offRec.TotalEvents != 0 {
		t.Errorf("disabled recorder left %d events (total %d) in the record",
			len(offRec.Events), offRec.TotalEvents)
	}
	if len(onRec.Events) == 0 {
		t.Error("enabled recorder recorded no events")
	}
	resp, err := http.Get(offTS.URL + "/v1/jobs/" + offRec.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace endpoint with recorder off: status %d, want 404", resp.StatusCode)
	}
	for name := range offSnap.Counters {
		if strings.Contains(name, "steals_routed") {
			t.Errorf("disabled recorder registered counter %q", name)
		}
	}
	for name := range offSnap.Histograms {
		if strings.Contains(name, "_seconds") {
			t.Errorf("disabled recorder registered histogram %q", name)
		}
	}

	// The output contract: recorder on/off changes nothing the job
	// produces.
	if !bytes.Equal(offFasta, onFasta) {
		t.Errorf("FASTA differs with recorder on vs off (%d vs %d bytes)",
			len(onFasta), len(offFasta))
	}
	offRes, onRes := *offRec.Result, *onRec.Result
	offRes.WallMillis, onRes.WallMillis = 0, 0
	offRes.QueueWaitMs, onRes.QueueWaitMs = 0, 0
	if offRes != onRes {
		t.Errorf("modeled result differs with recorder on vs off:\noff %+v\non  %+v", offRes, onRes)
	}

	if err := offSrv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := onSrv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
