package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/readsim"
)

// testServerConfig sizes a server for the small synthetic datasets the
// tests use: tiny blocks keep runs fast and device demands small.
func testServerConfig(root string) Config {
	return Config{
		Root:             root,
		GPU:              gpu.K40,
		QueueCap:         16,
		MaxConcurrent:    4,
		HostBlockPairs:   1 << 12,
		DeviceBlockPairs: 1 << 10,
		MapBatchReads:    512,
		Obs:              obs.New(nil, nil, obs.NewRegistry()),
	}
}

// testFastq simulates a small dataset and returns it serialized as FASTQ
// alongside the parsed read set.
func testFastq(t testing.TB, seed int64) ([]byte, *dna.ReadSet) {
	t.Helper()
	genome := readsim.Genome(readsim.GenomeParams{Length: 2500, Seed: seed})
	reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 64, Coverage: 10, Seed: seed + 1})
	var buf bytes.Buffer
	w := fastq.NewFastqWriter(&buf)
	for i := 0; i < reads.NumReads(); i++ {
		if err := w.Write(fastq.Record{Name: fmt.Sprintf("r%d", i), Seq: reads.Read(uint32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reads
}

// directFasta assembles the reads through the core pipeline directly,
// mirroring the server's per-job configuration, and returns the FASTA
// bytes — the golden output every HTTP job must match byte for byte.
func directFasta(t *testing.T, scfg Config, params Params, reads *dna.ReadSet) []byte {
	t.Helper()
	ws := t.TempDir()
	cfg := core.DefaultConfig(ws)
	cfg.HostBlockPairs = scfg.HostBlockPairs
	cfg.DeviceBlockPairs = scfg.DeviceBlockPairs
	cfg.MapBatchReads = scfg.MapBatchReads
	cfg.MinOverlap = params.MinOverlap
	cfg.Workers = params.Workers
	cfg.GPU = scfg.GPU
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// submitJob POSTs a FASTQ body and returns the created record.
func submitJob(t *testing.T, baseURL string, body []byte, query string) Record {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/jobs"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, msg)
	}
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// pollJob polls the job until it reaches a terminal state.
func pollJob(t *testing.T, baseURL, id string) Record {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var rec Record
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			return rec
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Record{}
}

// waitGone polls until the path no longer exists.
func waitGone(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("%s still exists; terminal cleanup never ran", path)
}

// fetchResult GETs the job's FASTA.
func fetchResult(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("result: status %d: %s", resp.StatusCode, msg)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServerE2E drives the full HTTP surface: N concurrent submissions
// all assemble to output byte-identical with a direct core run, jobs list
// and report per-stage progress, and terminal workspaces are cleaned.
func TestServerE2E(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, reads := testFastq(t, 1201)
	params := Params{MinOverlap: 31, Workers: 1}
	want := directFasta(t, scfg, params, reads)

	const n = 4
	recs := make([]Record, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = submitJob(t, ts.URL, fq, fmt.Sprintf("?lmin=31&workers=1&name=e2e-%d", i))
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		final := pollJob(t, ts.URL, recs[i].ID)
		if final.State != StateSucceeded {
			t.Fatalf("job %s finished %s: %s", final.ID, final.State, final.Error)
		}
		if final.Result == nil || final.Result.NumContigs == 0 {
			t.Fatalf("job %s has no result summary", final.ID)
		}
		if len(final.StagesDone) < 4 {
			t.Errorf("job %s reported stages %v, want all four", final.ID, final.StagesDone)
		}
		got := fetchResult(t, ts.URL, final.ID)
		if !bytes.Equal(got, want) {
			t.Errorf("job %s FASTA differs from direct assembly (%d vs %d bytes)",
				final.ID, len(got), len(want))
		}
		// Terminal jobs must not pin their workspace or input. Cleanup runs
		// on the transition hook just after the state becomes visible, so
		// allow it a moment to land.
		waitGone(t, srv.Store().WorkDir(final.ID))
		waitGone(t, srv.Store().InputPath(final.ID))
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []Record `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != n {
		t.Errorf("listing has %d jobs, want %d", len(listing.Jobs), n)
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerKillAndRestart crashes the server right after a job commits
// its Sort stage and checks the restarted server resumes the job through
// the run manifest to output byte-identical with a direct run.
func TestServerKillAndRestart(t *testing.T) {
	root := t.TempDir()
	fq, reads := testFastq(t, 3301)
	params := Params{MinOverlap: 31, Workers: 1}

	scfg := testServerConfig(root)
	scfg.MaxConcurrent = 1
	want := directFasta(t, scfg, params, reads)

	sortCommitted := make(chan struct{})
	var once sync.Once
	scfg.StageCommitHook = func(ctx context.Context, id string, stage core.PhaseName) error {
		if stage == core.PhaseSort {
			once.Do(func() { close(sortCommitted) })
			// Hold the job here until Kill cancels its context, so the
			// crash deterministically lands between Sort and Reduce.
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	rec := submitJob(t, ts.URL, fq, "?lmin=31&workers=1&name=crashy")
	<-sortCommitted
	srv.Kill()
	ts.Close()

	// The crash must leave the on-disk record mid-run, exactly as SIGKILL
	// would: still running, Sort committed, workspace and manifest intact.
	onDisk, err := srv.Store().Load(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateRunning {
		t.Fatalf("on-disk state after crash = %s, want running", onDisk.State)
	}
	if _, err := os.Stat(filepath.Join(srv.Store().WorkDir(rec.ID), "manifest.json")); err != nil {
		t.Fatalf("run manifest missing after crash: %v", err)
	}

	// Restart on the same root, without the fault hook: recovery re-queues
	// the job and the manifest replays Map and Sort.
	scfg2 := testServerConfig(root)
	scfg2.MaxConcurrent = 1
	srv2, err := New(scfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	final := pollJob(t, ts2.URL, rec.ID)
	if final.State != StateSucceeded {
		t.Fatalf("recovered job finished %s: %s", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one per server incarnation)", final.Attempts)
	}
	if len(final.CachedStages) == 0 {
		t.Error("recovered job replayed no stages from the manifest; it re-ran cold")
	}
	got := fetchResult(t, ts2.URL, final.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed FASTA differs from direct assembly (%d vs %d bytes)", len(got), len(want))
	}
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerBackpressureAndMetrics fills the queue behind a deliberately
// stalled job, checks overflow submissions bounce with 429 + Retry-After,
// cancels a queued job over HTTP, and cross-checks /debug/metrics against
// every observed response.
func TestServerBackpressureAndMetrics(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	scfg.QueueCap = 1
	scfg.MaxConcurrent = 1
	release := make(chan struct{})
	var once sync.Once
	blocked := make(chan struct{})
	scfg.StageCommitHook = func(ctx context.Context, id string, stage core.PhaseName) error {
		var hold bool
		once.Do(func() { hold = true })
		if hold {
			close(blocked)
			select {
			case <-release:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, _ := testFastq(t, 5501)
	runner := submitJob(t, ts.URL, fq, "?lmin=31&workers=1")
	<-blocked // the first job is mid-run and holding its slot
	queued := submitJob(t, ts.URL, fq, "?lmin=31&workers=1")

	// The queue (cap 1) is full: further submissions must bounce.
	rejected := 0
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs?lmin=31&workers=1", "application/octet-stream", bytes.NewReader(fq))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow submit %d: status %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without a Retry-After header")
		}
		rejected++
	}

	snap := debugMetrics(t, ts.URL)
	if got := snap.Counters["serve.jobs_rejected"]; got != int64(rejected) {
		t.Errorf("serve.jobs_rejected = %d, want %d (the observed 429s)", got, rejected)
	}
	if got := snap.Counters["serve.jobs_admitted"]; got != 2 {
		t.Errorf("serve.jobs_admitted = %d, want 2", got)
	}
	if got := snap.Gauges["serve.queue_depth"]; got != 1 {
		t.Errorf("serve.queue_depth = %d, want 1", got)
	}
	if got := snap.Gauges["serve.jobs_running"]; got != 1 {
		t.Errorf("serve.jobs_running = %d, want 1", got)
	}

	// Cancel the queued job over HTTP; it must die without ever running.
	resp, err := http.Post(ts.URL+"/v1/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued job: status %d", resp.StatusCode)
	}
	if rec := pollJob(t, ts.URL, queued.ID); rec.State != StateCanceled || rec.Attempts != 0 {
		t.Fatalf("queued job ended %s after %d attempts, want canceled after 0", rec.State, rec.Attempts)
	}

	close(release)
	if rec := pollJob(t, ts.URL, runner.ID); rec.State != StateSucceeded {
		t.Fatalf("stalled job finished %s: %s", rec.State, rec.Error)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// debugMetrics fetches and parses the /debug/metrics snapshot.
func debugMetrics(t *testing.T, baseURL string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestServerRejectsBadSubmissions covers the submit-time validation
// errors: garbage bodies, empty datasets, and overlap thresholds no read
// can meet.
func TestServerRejectsBadSubmissions(t *testing.T) {
	srv, err := New(testServerConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body, query string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/octet-stream", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("", ""); got != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", got)
	}
	if got := post("@r1\nACGT\n+\nIIII\n", "?lmin=63"); got != http.StatusUnprocessableEntity {
		t.Errorf("lmin beyond read length: status %d, want 422", got)
	}
	if got := post("@r1\nACGT\n+\nIIII\n", "?lmin=notanumber"); got != http.StatusBadRequest {
		t.Errorf("bad lmin: status %d, want 400", got)
	}
	// Unknown jobs 404 on every per-job route.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
	// No orphan directories linger from the rejected submissions.
	ents, err := os.ReadDir(srv.Store().JobsDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("%d job directories after rejected submissions, want 0", len(ents))
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSweep exercises startup cleanup: torn job directories are
// removed and terminal jobs with leftover workspaces get them cleared.
func TestStoreSweep(t *testing.T) {
	root := t.TempDir()
	st, err := NewStore(root)
	if err != nil {
		t.Fatal(err)
	}
	// A torn create: directory without a parseable record.
	if err := os.MkdirAll(st.JobDir("torn"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.JobDir("torn"), "job.json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A terminal job whose workspace cleanup never ran.
	done := Record{ID: "done", State: StateSucceeded, SubmittedAt: time.Now().UTC()}
	if err := st.CreateJob(done, []byte("@r\nACGT\n+\nIIII\n")); err != nil {
		t.Fatal(err)
	}

	swept, err := st.Sweep(obs.New(nil, nil, nil).Log())
	if err != nil {
		t.Fatal(err)
	}
	if swept != 2 {
		t.Errorf("Sweep repaired %d directories, want 2", swept)
	}
	if _, err := os.Stat(st.JobDir("torn")); !os.IsNotExist(err) {
		t.Error("torn job directory survived the sweep")
	}
	if _, err := os.Stat(st.WorkDir("done")); !os.IsNotExist(err) {
		t.Error("terminal job workspace survived the sweep")
	}
	if _, err := st.Load("done"); err != nil {
		t.Errorf("terminal record lost by the sweep: %v", err)
	}
}
