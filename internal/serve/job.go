// Package serve turns the single-shot assembly pipeline into a
// multi-tenant job service: an HTTP API accepts FASTQ jobs, a scheduler
// with real admission control packs them onto one shared simulated GPU,
// and per-job JSON records plus the core run manifests make the whole
// thing crash-safe — a killed server restarts, re-lists its jobs, and
// resumes in-flight ones mid-pipeline.
//
// Admission happens at two levels, mirroring the paper's two-level memory
// model: a bounded FIFO run queue with HTTP 429 backpressure bounds the
// host-side backlog, and device-memory leases (Config.DeviceDemandBytes
// claimed off the shared gpu.Device via AllocWait) bound how many jobs
// run concurrently — the sum of admitted leases can never exceed the
// card, so concurrent jobs never oversubscribe device memory.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// State is one point in a job's lifecycle. The transitions are:
//
//	submitted -> queued -> running -> succeeded | failed | canceled
//
// with two exceptions: a queued job may go straight to canceled, and a
// running job returns to queued when the server drains (SIGTERM) or
// crashes — its committed stages resume from the run manifest on the next
// start. succeeded/failed/canceled are terminal.
type State string

const (
	StateSubmitted State = "submitted"
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state ends the job's lifecycle.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Params are the per-job assembly knobs a client may set at submit time.
// Everything else (block sizes, the modeled card) is server configuration:
// jobs share one device, so its geometry is not theirs to choose.
type Params struct {
	MinOverlap        int  `json:"minOverlap"`
	Workers           int  `json:"workers"`
	FullGraph         bool `json:"fullGraph,omitempty"`
	DedupeReads       bool `json:"dedupeReads,omitempty"`
	IncludeSingletons bool `json:"includeSingletons,omitempty"`
	VerifyOverlaps    bool `json:"verifyOverlaps,omitempty"`
	// GraphBackend selects the reduce/compress engine ("" or "greedy",
	// or "spmat" for the sparse-matrix backend); see
	// core.Config.GraphBackend. Mutually exclusive with FullGraph.
	GraphBackend string `json:"graphBackend,omitempty"`
}

// ResultSummary is the part of a finished run worth keeping in the job
// record; the full FASTA is fetched separately.
type ResultSummary struct {
	NumContigs     int     `json:"numContigs"`
	TotalBases     int64   `json:"totalBases"`
	MaxContigLen   int     `json:"maxContigLen"`
	N50            int     `json:"n50"`
	CandidateEdges int64   `json:"candidateEdges"`
	AcceptedEdges  int64   `json:"acceptedEdges"`
	WallMillis     int64   `json:"wallMillis"`
	ModeledMillis  int64   `json:"modeledMillis"`
	QueueWaitMs    float64 `json:"queueWaitMs"`
}

// Record is the persistent state of one job, stored as job.json in the
// job's directory and rewritten atomically on every transition. Together
// with the persisted input FASTQ and the core run manifest it is
// everything a restarted server needs to resume the job.
type Record struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  State  `json:"state"`
	Params Params `json:"params"`

	NumReads   int `json:"numReads"`
	MaxReadLen int `json:"maxReadLen"`
	// DeviceDemandBytes is the device-memory lease this job needs
	// (core.Config.DeviceDemandBytes), fixed at submit time so a restarted
	// server admits — and fingerprints — the job identically.
	DeviceDemandBytes int64 `json:"deviceDemandBytes"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
	// Attempts counts how many times the job entered running; >1 means the
	// job was resumed after a drain or crash.
	Attempts int `json:"attempts"`

	// Stage is the pipeline stage most recently reported by the run's
	// progress callback; StagesDone lists completed stages in order, and
	// CachedStages the ones a resumed attempt replayed from the manifest.
	Stage        string   `json:"stage,omitempty"`
	StagesDone   []string `json:"stagesDone,omitempty"`
	CachedStages []string `json:"cachedStages,omitempty"`

	Error  string         `json:"error,omitempty"`
	Result *ResultSummary `json:"result,omitempty"`
}

// Job is the scheduler's runtime handle on one record: the record itself
// plus the cancellation plumbing that never touches disk.
type Job struct {
	mu              sync.Mutex
	rec             Record
	cancel          context.CancelFunc // run context; set at dispatch
	cancelRequested bool
	enqueuedAt      time.Time
}

// NewJob wraps a record for scheduling.
func NewJob(rec Record) *Job { return &Job{rec: rec} }

// Record returns a consistent deep copy of the job's record.
func (j *Job) Record() Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.clone()
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.State
}

// CancelRequested reports whether a user cancellation was requested.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// Update mutates the record under the job lock.
func (j *Job) Update(fn func(*Record)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fn(&j.rec)
}

// clone deep-copies the record so readers never share slices or pointers
// with the scheduler's mutating goroutines.
func (r Record) clone() Record {
	c := r
	c.StagesDone = append([]string(nil), r.StagesDone...)
	c.CachedStages = append([]string(nil), r.CachedStages...)
	if r.StartedAt != nil {
		t := *r.StartedAt
		c.StartedAt = &t
	}
	if r.FinishedAt != nil {
		t := *r.FinishedAt
		c.FinishedAt = &t
	}
	if r.Result != nil {
		res := *r.Result
		c.Result = &res
	}
	return c
}

// NewJobID returns a fresh random job identifier ("j" + 12 hex chars).
func NewJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}
