// Package serve turns the single-shot assembly pipeline into a
// multi-tenant job service: an HTTP API accepts FASTQ jobs, a sharded
// scheduler with real admission control packs them onto a fleet of
// simulated GPUs, and per-job JSON records plus the core run manifests
// make the whole thing crash-safe — a killed server restarts, re-lists
// its jobs, and resumes in-flight ones mid-pipeline, possibly on
// different devices than the crashed attempt.
//
// Admission happens at two levels, mirroring the paper's two-level memory
// model: bounded priority lanes with HTTP 429 backpressure (and an
// adaptive Retry-After) bound the host-side backlog, and device-memory
// leases (Config.DeviceDemandBytes claimed against specific fleet
// devices) bound how many jobs run concurrently — the sum of admitted
// leases can never exceed any card, so concurrent jobs never
// oversubscribe device memory. Each device runs its own dispatcher:
// idle cards steal queued work from loaded ones, interactive jobs go
// ahead of batch jobs and may preempt them (drain at the next stage
// commit, requeue resumable), tenants are capped at a share of in-flight
// fleet bytes, and a Shards=K job runs across K devices via the cluster
// layer. A job's FASTA output is byte-identical regardless of which
// devices ran it, how often it was preempted, or its shard count.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// The admission lanes, re-exported from core for the HTTP layer.
const (
	PriorityInteractive = core.PriorityInteractive
	PriorityBatch       = core.PriorityBatch
)

// State is one point in a job's lifecycle. The transitions are:
//
//	submitted -> queued -> running -> succeeded | failed | canceled
//
// with two exceptions: a queued job may go straight to canceled, and a
// running job returns to queued when the server drains (SIGTERM) or
// crashes — its committed stages resume from the run manifest on the next
// start. succeeded/failed/canceled are terminal.
type State string

const (
	StateSubmitted State = "submitted"
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state ends the job's lifecycle.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Params are the per-job assembly knobs a client may set at submit time.
// Everything else (block sizes, the modeled card) is server configuration:
// jobs share one device, so its geometry is not theirs to choose.
type Params struct {
	MinOverlap        int  `json:"minOverlap"`
	Workers           int  `json:"workers"`
	FullGraph         bool `json:"fullGraph,omitempty"`
	DedupeReads       bool `json:"dedupeReads,omitempty"`
	IncludeSingletons bool `json:"includeSingletons,omitempty"`
	VerifyOverlaps    bool `json:"verifyOverlaps,omitempty"`
	// GraphBackend selects the reduce/compress engine ("" or "greedy",
	// or "spmat" for the sparse-matrix backend); see
	// core.Config.GraphBackend. Mutually exclusive with FullGraph.
	GraphBackend string `json:"graphBackend,omitempty"`
	// Priority selects the admission lane: "" or "batch", or
	// "interactive" for jobs dispatched ahead of every batch job (and
	// allowed to preempt running batch jobs when no device has room).
	Priority string `json:"priority,omitempty"`
	// Tenant groups jobs for fairness accounting: the scheduler caps each
	// tenant's in-flight device bytes at its configured share of the
	// fleet. "" is the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
	// Shards splits the job across this many fleet devices via the
	// cluster layer (0 or 1 = single-device pipeline). Output is
	// byte-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

// Lane returns the resolved priority lane ("" means batch).
func (p Params) Lane() string {
	if p.Priority == "" {
		return PriorityBatch
	}
	return p.Priority
}

// ShardCount returns the resolved shard count (0 means 1).
func (p Params) ShardCount() int {
	if p.Shards < 1 {
		return 1
	}
	return p.Shards
}

// ResultSummary is the part of a finished run worth keeping in the job
// record; the full FASTA is fetched separately.
type ResultSummary struct {
	NumContigs     int     `json:"numContigs"`
	TotalBases     int64   `json:"totalBases"`
	MaxContigLen   int     `json:"maxContigLen"`
	N50            int     `json:"n50"`
	CandidateEdges int64   `json:"candidateEdges"`
	AcceptedEdges  int64   `json:"acceptedEdges"`
	WallMillis     int64   `json:"wallMillis"`
	ModeledMillis  int64   `json:"modeledMillis"`
	QueueWaitMs    float64 `json:"queueWaitMs"`
}

// Record is the persistent state of one job, stored as job.json in the
// job's directory and rewritten atomically on every transition. Together
// with the persisted input FASTQ and the core run manifest it is
// everything a restarted server needs to resume the job.
type Record struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  State  `json:"state"`
	Params Params `json:"params"`

	NumReads   int `json:"numReads"`
	MaxReadLen int `json:"maxReadLen"`
	// DeviceDemandBytes is the device-memory lease this job needs on each
	// device it runs on (core.Config.DeviceDemandBytes; a sharded job
	// leases this much on every shard's device), fixed at submit time so a
	// restarted server admits — and fingerprints — the job identically.
	DeviceDemandBytes int64 `json:"deviceDemandBytes"`
	// Devices lists the fleet device indices the job's current (or last)
	// attempt leased: one entry for an unsharded job, Shards entries for a
	// sharded one. Cleared while the job waits in a lane.
	Devices []int `json:"devices,omitempty"`
	// Preemptions counts how many times a running attempt was drained at a
	// stage commit to make room for a higher-priority job.
	Preemptions int `json:"preemptions,omitempty"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
	// Attempts counts how many times the job entered running; >1 means the
	// job was resumed after a drain or crash.
	Attempts int `json:"attempts"`

	// Stage is the pipeline stage most recently reported by the run's
	// progress callback; StagesDone lists completed stages in order, and
	// CachedStages the ones a resumed attempt replayed from the manifest.
	Stage        string   `json:"stage,omitempty"`
	StagesDone   []string `json:"stagesDone,omitempty"`
	CachedStages []string `json:"cachedStages,omitempty"`

	Error  string         `json:"error,omitempty"`
	Result *ResultSummary `json:"result,omitempty"`

	// Events is the job's flight-recorder history: every lifecycle event
	// the scheduler emitted for it (enqueue, claim, steal, drain, ...),
	// bounded at maxJobRecordEvents with the oldest evicted first.
	// TotalEvents counts every emission, so a gap is detectable. Both stay
	// empty while the recorder is disabled.
	Events      []obs.LogEvent `json:"events,omitempty"`
	TotalEvents uint64         `json:"totalEvents,omitempty"`
}

// Job is the scheduler's runtime handle on one record: the record itself
// plus the cancellation and preemption plumbing that never touches disk.
type Job struct {
	mu              sync.Mutex
	rec             Record
	cancel          context.CancelFunc // run context; set at dispatch
	cancelRequested bool
	enqueuedAt      time.Time
	// preemptCh is closed when the scheduler asks the running attempt to
	// drain at its next stage commit; replaced with a fresh channel on
	// every requeue so a resumed attempt starts unpreempted.
	preemptCh chan struct{}
	// preemptRequestedAt stamps the current attempt's drain request, for
	// the preempt-drain latency histogram; zero when none is pending.
	preemptRequestedAt time.Time
	// requeueReason records why the job most recently left a device
	// ("preempt" or "drain"), so the claim that resumes it can name the
	// gap span it just closed. Consumed at claim time.
	requeueReason string
	// tracer collects the job's flight trace (lifecycle spans from the
	// scheduler plus the run's own pipeline spans); nil unless the
	// scheduler's flight recorder is enabled.
	tracer *obs.Tracer
}

// NewJob wraps a record for scheduling.
func NewJob(rec Record) *Job { return &Job{rec: rec, preemptCh: make(chan struct{})} }

// Preempted returns a channel closed when the scheduler has asked this
// attempt to drain at its next stage commit. Run functions select on it
// at stage boundaries and return ErrPreempted to hand the device back;
// the scheduler then requeues the job with its committed stages
// resumable.
func (j *Job) Preempted() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.preemptCh
}

// requestPreempt asks the current attempt to drain. Idempotent per
// attempt. Reports whether this call delivered a new request.
func (j *Job) requestPreempt() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.preemptCh:
		return false // already requested for this attempt
	default:
		close(j.preemptCh)
		j.preemptRequestedAt = time.Now()
		return true
	}
}

// preemptLatency returns how long ago the pending drain request was
// delivered, or 0 when none is pending.
func (j *Job) preemptLatency() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.preemptRequestedAt.IsZero() {
		return 0
	}
	return time.Since(j.preemptRequestedAt)
}

// setRequeueReason records why the job is about to leave its devices.
func (j *Job) setRequeueReason(reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.requeueReason = reason
}

// peekRequeueReason reads the pending requeue reason without consuming.
func (j *Job) peekRequeueReason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.requeueReason
}

// takeRequeueReason consumes the pending requeue reason: the claim that
// resumes the job uses it once to name the gap span it closes.
func (j *Job) takeRequeueReason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.requeueReason
	j.requeueReason = ""
	return r
}

// Tracer returns the job's flight trace collector; nil unless the
// scheduler's flight recorder is enabled. All Tracer methods are
// nil-safe.
func (j *Job) Tracer() *obs.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tracer
}

// ID returns the job's identifier without cloning the whole record.
func (j *Job) ID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.ID
}

// preemptRequested reports whether the current attempt has been asked to
// drain.
func (j *Job) preemptRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.preemptCh:
		return true
	default:
		return false
	}
}

// resetPreempt arms a fresh preemption channel for the next attempt.
func (j *Job) resetPreempt() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.preemptRequestedAt = time.Time{}
	select {
	case <-j.preemptCh:
		j.preemptCh = make(chan struct{})
	default:
	}
}

// Record returns a consistent deep copy of the job's record.
func (j *Job) Record() Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.clone()
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.State
}

// CancelRequested reports whether a user cancellation was requested.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// Update mutates the record under the job lock.
func (j *Job) Update(fn func(*Record)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fn(&j.rec)
}

// clone deep-copies the record so readers never share slices or pointers
// with the scheduler's mutating goroutines.
func (r Record) clone() Record {
	c := r
	c.StagesDone = append([]string(nil), r.StagesDone...)
	c.CachedStages = append([]string(nil), r.CachedStages...)
	c.Devices = append([]int(nil), r.Devices...)
	c.Events = append([]obs.LogEvent(nil), r.Events...)
	if r.StartedAt != nil {
		t := *r.StartedAt
		c.StartedAt = &t
	}
	if r.FinishedAt != nil {
		t := *r.FinishedAt
		c.FinishedAt = &t
	}
	if r.Result != nil {
		res := *r.Result
		c.Result = &res
	}
	return c
}

// NewJobID returns a fresh random job identifier ("j" + 12 hex chars).
func NewJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}
