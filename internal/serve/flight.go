package serve

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// The flight-recorder event vocabulary. Every scheduling decision that
// moves a job through its lifecycle emits exactly one of these, so the
// global log (and the per-job slice persisted in the record) replays the
// full history: where the job queued, who claimed or stole it, when it
// was asked to drain, and how each attempt ended.
const (
	// EventEnqueue: the job entered a device's lane (fresh submission or
	// crash recovery). Attrs: device, lane, tenant, demandBytes.
	EventEnqueue = "enqueue"
	// EventClaim: a dispatcher took the job off a lane and leased its
	// devices. Attrs: devices, waitMs, lane, stolen, attempt.
	EventClaim = "claim"
	// EventSteal: the claim crossed devices — an idle dispatcher relieved
	// a loaded peer. Attrs: src, dst.
	EventSteal = "steal"
	// EventPreemptRequest: the scheduler asked the running attempt to
	// drain at its next stage commit. Attrs: device+needBytes for policy
	// preemptions, operator=true for the admin endpoint.
	EventPreemptRequest = "preempt-request"
	// EventDrain: the attempt gave its devices back without finishing —
	// voluntarily at a stage commit (reason "preempt", with drainMs) or
	// because the server shut down (reason "shutdown").
	EventDrain = "drain"
	// EventRequeue: the drained job re-entered a lane at the head.
	// Attrs: device, reason.
	EventRequeue = "requeue"
	// EventShardPlace: a Shards>1 claim placed its shards. Attrs: devices.
	EventShardPlace = "shard-place"
	// EventStageCommit: the run committed one pipeline stage. Attrs:
	// stage (and node for sharded jobs).
	EventStageCommit = "stage-commit"
	// EventTerminal: the job reached succeeded/failed/canceled. Attrs:
	// outcome, attempts, error.
	EventTerminal = "terminal"
)

// Track layout of a per-job flight trace. The job's pipeline spans keep
// their native pids (0 for the single-device pipeline, 1..k for cluster
// nodes), so lifecycle tracks live far above: one scheduler track for
// queued/gap spans and one track per fleet device for run attempts.
const (
	flightSchedulerPid  = 900
	flightDevicePidBase = 1000
)

// maxJobRecordEvents bounds the event slice persisted inside each job
// record; Record.TotalEvents keeps counting past it.
const maxJobRecordEvents = 512

// FlightRecorder is the scheduler's audit channel: a bounded global
// event log, a copy of each event inside the owning job's record, and
// the SLO latency instruments derived from the same lifecycle points.
// A nil *FlightRecorder (the default) disables all of it — no events,
// no extra instruments, no per-job tracers — which is what keeps the
// recorder's cost strictly zero when off.
type FlightRecorder struct {
	events  *obs.EventLog
	metrics *obs.Registry
}

// NewFlightRecorder builds a recorder whose global log retains capacity
// events and whose SLO instruments register on metrics.
func NewFlightRecorder(capacity int, metrics *obs.Registry) *FlightRecorder {
	return &FlightRecorder{events: obs.NewEventLog(capacity), metrics: metrics}
}

// Log returns the global event log; nil when the recorder is disabled.
func (f *FlightRecorder) Log() *obs.EventLog {
	if f == nil {
		return nil
	}
	return f.events
}

// Emit appends one lifecycle event to the global log and mirrors it into
// the job's record (bounded at maxJobRecordEvents; TotalEvents counts
// every emission). The returned sequence number totally orders the event
// against all concurrent scheduler activity.
func (f *FlightRecorder) Emit(j *Job, typ string, attrs map[string]any) {
	if f == nil {
		return
	}
	e := f.events.Append(typ, j.ID(), attrs)
	j.Update(func(r *Record) {
		r.TotalEvents++
		if len(r.Events) >= maxJobRecordEvents {
			r.Events = r.Events[1:]
		}
		r.Events = append(r.Events, e)
	})
}

// sloBuckets are the shared latency bounds (seconds) of the SLO
// histograms: sub-10ms dispatches up through multi-minute batch waits.
var sloBuckets = []float64{0.01, 0.1, 0.5, 1, 5, 15, 60, 300}

// observeLatency records d on a per-lane, per-tenant histogram family.
func (f *FlightRecorder) observeLatency(base, lane, tenant string, d time.Duration) {
	if f == nil {
		return
	}
	name := fmt.Sprintf("%s{lane=%q,tenant=%q}", base, lane, tenant)
	f.metrics.Histogram(name, sloBuckets...).Observe(d.Seconds())
}

// ObserveQueueWait records the lane time of one claim.
func (f *FlightRecorder) ObserveQueueWait(lane, tenant string, d time.Duration) {
	f.observeLatency("serve.queue_seconds", lane, tenant, d)
}

// ObserveRun records the wall time of one successful run.
func (f *FlightRecorder) ObserveRun(lane, tenant string, d time.Duration) {
	f.observeLatency("serve.run_seconds", lane, tenant, d)
}

// ObserveE2E records submit-to-success latency.
func (f *FlightRecorder) ObserveE2E(lane, tenant string, d time.Duration) {
	f.observeLatency("serve.e2e_seconds", lane, tenant, d)
}

// ObserveDrain records how long a preempted attempt took to reach its
// stage commit and hand the device back after the request.
func (f *FlightRecorder) ObserveDrain(d time.Duration) {
	if f == nil {
		return
	}
	f.metrics.Histogram("fleet.preempt_drain_seconds", sloBuckets...).Observe(d.Seconds())
}

// CountSteal bumps the per-device-pair steal counter.
func (f *FlightRecorder) CountSteal(src, dst int) {
	if f == nil {
		return
	}
	f.metrics.Counter(fmt.Sprintf("fleet.steals_routed{src=%q,dst=%q}",
		fmt.Sprint(src), fmt.Sprint(dst))).Add(1)
}
