package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/obs"
)

// TestFleetDeterminism is the fleet's output contract: on a 4-device
// server, the same input assembled as plain batch jobs, an interactive
// job, and sharded jobs (2 and 4 shards, spread across distinct devices)
// all produce FASTA byte-identical to a direct single-device core run.
func TestFleetDeterminism(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	scfg.Devices = 4
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, reads := testFastq(t, 7707)
	params := Params{MinOverlap: 31, Workers: 1}
	want := directFasta(t, scfg, params, reads)

	queries := []string{
		"?lmin=31&workers=1&name=batch-0",
		"?lmin=31&workers=1&name=batch-1&tenant=lab1",
		"?lmin=31&workers=1&name=rush&priority=interactive",
		"?lmin=31&workers=1&name=wide-2&shards=2",
		"?lmin=31&workers=1&name=wide-4&shards=4",
	}
	recs := make([]Record, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			recs[i] = submitJob(t, ts.URL, fq, q)
		}(i, q)
	}
	wg.Wait()

	for i := range recs {
		final := pollJob(t, ts.URL, recs[i].ID)
		if final.State != StateSucceeded {
			t.Fatalf("job %s (%s) finished %s: %s", final.ID, final.Name, final.State, final.Error)
		}
		if got := fetchResult(t, ts.URL, final.ID); !bytes.Equal(got, want) {
			t.Errorf("job %s (%s) FASTA differs from direct assembly (%d vs %d bytes)",
				final.ID, final.Name, len(got), len(want))
		}
		wantDevs := final.Params.ShardCount()
		if len(final.Devices) != wantDevs {
			t.Errorf("job %s (%s) leased devices %v, want %d", final.ID, final.Name,
				final.Devices, wantDevs)
		}
		seen := map[int]bool{}
		for _, d := range final.Devices {
			if seen[d] {
				t.Errorf("job %s leased device %d twice: %v", final.ID, d, final.Devices)
			}
			seen[d] = true
		}
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFleetKillAndRestart crashes a two-device server mid-job and
// restarts it on a fleet where the crashed attempt's lease no longer fits
// the first card: the job must resume — through its manifest — on the
// other device and still produce byte-identical output. This is the
// determinism contract under device migration.
func TestFleetKillAndRestart(t *testing.T) {
	root := t.TempDir()
	fq, reads := testFastq(t, 9903)
	params := Params{MinOverlap: 31, Workers: 1}

	scfg := testServerConfig(root)
	scfg.DeviceSpecs = []gpu.Spec{gpu.K40, gpu.K40}
	scfg.MaxConcurrent = 1
	want := directFasta(t, scfg, params, reads)

	sortCommitted := make(chan struct{})
	var once sync.Once
	scfg.StageCommitHook = func(ctx context.Context, id string, stage core.PhaseName) error {
		if stage == core.PhaseSort {
			once.Do(func() { close(sortCommitted) })
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	rec := submitJob(t, ts.URL, fq, "?lmin=31&workers=1&name=migrant")
	<-sortCommitted
	srv.Kill()
	ts.Close()

	onDisk, err := srv.Store().Load(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateRunning {
		t.Fatalf("on-disk state after crash = %s, want running", onDisk.State)
	}
	if onDisk.DeviceDemandBytes <= 1 {
		t.Fatalf("job demand %d too small to build an unfitting card", onDisk.DeviceDemandBytes)
	}

	// Restart with device 0 shrunk below the job's lease: recovery must
	// place the resumed attempt on device 1.
	scfg2 := testServerConfig(root)
	scfg2.DeviceSpecs = []gpu.Spec{
		{Name: "tiny", MemBytes: onDisk.DeviceDemandBytes - 1},
		gpu.K40,
	}
	scfg2.MaxConcurrent = 1
	srv2, err := New(scfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	final := pollJob(t, ts2.URL, rec.ID)
	if final.State != StateSucceeded {
		t.Fatalf("recovered job finished %s: %s", final.State, final.Error)
	}
	if len(final.Devices) != 1 || final.Devices[0] != 1 {
		t.Errorf("resumed attempt ran on devices %v, want [1] (the only card that fits)", final.Devices)
	}
	if final.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one per server incarnation)", final.Attempts)
	}
	if len(final.CachedStages) == 0 {
		t.Error("resumed job replayed no stages from the manifest; it re-ran cold")
	}
	if got := fetchResult(t, ts2.URL, final.ID); !bytes.Equal(got, want) {
		t.Errorf("migrated FASTA differs from direct assembly (%d vs %d bytes)", len(got), len(want))
	}
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerPreemptResume forces a running job to drain at its next stage
// commit (the operator/scheduler preemption path), and checks it requeues
// with its committed stages resumable, re-runs, and still produces
// byte-identical output.
func TestServerPreemptResume(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	scfg.MaxConcurrent = 1
	fq, reads := testFastq(t, 4411)
	params := Params{MinOverlap: 31, Workers: 1}
	want := directFasta(t, scfg, params, reads)

	reached := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	scfg.StageCommitHook = func(ctx context.Context, id string, stage core.PhaseName) error {
		if stage == core.PhaseMap && first.CompareAndSwap(true, false) {
			close(reached)
			select {
			case <-release:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rec := submitJob(t, ts.URL, fq, "?lmin=31&workers=1&name=drainee")
	<-reached
	if err := srv.Scheduler().Preempt(rec.ID); err != nil {
		t.Fatal(err)
	}
	close(release)

	final := pollJob(t, ts.URL, rec.ID)
	if final.State != StateSucceeded {
		t.Fatalf("preempted job finished %s: %s", final.State, final.Error)
	}
	if final.Preemptions != 1 {
		t.Errorf("Preemptions = %d, want 1", final.Preemptions)
	}
	if final.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (drained + resumed)", final.Attempts)
	}
	if len(final.CachedStages) == 0 {
		t.Error("resumed attempt replayed no stages; the drain lost the manifest")
	}
	if got := fetchResult(t, ts.URL, final.ID); !bytes.Equal(got, want) {
		t.Errorf("preempted-and-resumed FASTA differs from direct assembly (%d vs %d bytes)",
			len(got), len(want))
	}
	if got := debugMetrics(t, ts.URL).Counters["fleet.preemptions"]; got != 1 {
		t.Errorf("fleet.preemptions = %d, want 1", got)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerFleetEndpoints checks the fleet-aware HTTP surface: /healthz
// and the job listing expose the per-device admission snapshot, and the
// fleet-shape validation errors land as 4xx.
func TestServerFleetEndpoints(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	scfg.DeviceSpecs = []gpu.Spec{gpu.K40, gpu.P100}
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health struct {
		Status string        `json:"status"`
		Fleet  FleetSnapshot `json:"fleet"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status %q, want ok", health.Status)
	}
	if len(health.Fleet.Devices) != 2 {
		t.Fatalf("healthz lists %d devices, want 2", len(health.Fleet.Devices))
	}
	for i, wantCard := range []string{"K40", "P100"} {
		ds := health.Fleet.Devices[i]
		if ds.Card != wantCard || ds.CapacityBytes != scfg.DeviceSpecs[i].MemBytes {
			t.Errorf("device %d = %s/%d bytes, want %s/%d",
				i, ds.Card, ds.CapacityBytes, wantCard, scfg.DeviceSpecs[i].MemBytes)
		}
		if ds.LeasedBytes != 0 || len(ds.Running) != 0 {
			t.Errorf("idle device %d reports leases %d and running %v", i, ds.LeasedBytes, ds.Running)
		}
	}

	var listing struct {
		Jobs  []Record      `json:"jobs"`
		Fleet FleetSnapshot `json:"fleet"`
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Fleet.Devices) != 2 {
		t.Errorf("job listing embeds %d fleet devices, want 2", len(listing.Fleet.Devices))
	}

	// Fleet-shape validation: bad lane 400s, impossible shard counts 422,
	// sharded-incompatible knobs 400.
	post := func(query string) int {
		t.Helper()
		body := "@r1\nACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n"
		resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/octet-stream", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("?lmin=31&priority=urgent"); got != http.StatusBadRequest {
		t.Errorf("unknown priority: status %d, want 400", got)
	}
	if got := post("?lmin=31&shards=3"); got != http.StatusUnprocessableEntity {
		t.Errorf("shards beyond fleet size: status %d, want 422", got)
	}
	if got := post("?lmin=31&shards=2&dedupe=true"); got != http.StatusBadRequest {
		t.Errorf("shards with dedupe: status %d, want 400", got)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSweepScratch covers the preemption/startup scratch sweep over
// both workspace layouts: sort spill directories under work/partitions
// (single-device) and work/node*/ (sharded) are removed, while sorted
// partition files, node state, and manifests survive.
func TestStoreSweepScratch(t *testing.T) {
	root := t.TempDir()
	st, err := NewStore(root)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{ID: "j1", State: StateQueued, Attempts: 1, SubmittedAt: time.Now().UTC()}
	if err := st.CreateJob(rec, []byte("@r\nACGT\n+\nIIII\n")); err != nil {
		t.Fatal(err)
	}
	work := st.WorkDir("j1")
	keep := []string{
		filepath.Join(work, "manifest.json"),
		filepath.Join(work, "partitions", "part_0000.bin"),
		filepath.Join(work, "node00", "partition.bin"),
		filepath.Join(work, "node01", "manifest.json"),
	}
	scratch := []string{
		filepath.Join(work, "partitions", "sort_pairs_0001"),
		filepath.Join(work, "node00", "sort_pairs_0001"),
		filepath.Join(work, "node01", "sort_suffix_0002"),
	}
	for _, f := range keep {
		if err := os.MkdirAll(filepath.Dir(f), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range scratch {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "spill.bin"), []byte("y"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if err := st.SweepScratch("j1"); err != nil {
		t.Fatal(err)
	}
	for _, d := range scratch {
		if _, err := os.Stat(d); !os.IsNotExist(err) {
			t.Errorf("scratch dir %s survived the sweep", d)
		}
	}
	for _, f := range keep {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("kept file %s lost by the sweep: %v", f, err)
		}
	}

	// The startup sweep reaches the same scratch for resumable jobs.
	redo := filepath.Join(work, "node00", "sort_pairs_0009")
	if err := os.MkdirAll(redo, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Sweep(obs.New(nil, nil, nil).Log()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(redo); !os.IsNotExist(err) {
		t.Error("startup sweep left a resumable job's sort scratch behind")
	}
}
