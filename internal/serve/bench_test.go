package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// serveBenchReport is the machine-readable summary `make bench` stores as
// BENCH_serve.json.
type serveBenchReport struct {
	Jobs            int     `json:"jobs"`
	WallSeconds     float64 `json:"wallSeconds"`
	JobsPerSec      float64 `json:"jobsPerSec"`
	MeanQueueWaitMs float64 `json:"meanQueueWaitMs"`
	MaxQueueWaitMs  float64 `json:"maxQueueWaitMs"`
	MaxConcurrent   int     `json:"maxConcurrent"`
}

// BenchmarkServeThroughput pushes b.N small assembly jobs through the
// full HTTP + scheduler + pipeline path and reports end-to-end job
// throughput plus queue latency. When BENCH_SERVE_OUT names a file, the
// summary is written there as JSON for the bench harness.
func BenchmarkServeThroughput(b *testing.B) {
	scfg := testServerConfig(b.TempDir())
	scfg.QueueCap = b.N + 1 // measure service time, not rejection
	srv, err := New(scfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, _ := testFastq(b, 9901)
	ids := make([]string, b.N)

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs?lmin=31&workers=1", "application/octet-stream", bytes.NewReader(fq))
		if err != nil {
			b.Fatal(err)
		}
		var rec Record
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusCreated {
			b.Fatalf("submit %d: status %d, err %v", i, resp.StatusCode, err)
		}
		ids[i] = rec.ID
	}
	var meanWait, maxWait float64
	for _, id := range ids {
		rec := benchPoll(b, ts.URL, id)
		if rec.State != StateSucceeded {
			b.Fatalf("job %s finished %s: %s", id, rec.State, rec.Error)
		}
		if rec.Result != nil {
			meanWait += rec.Result.QueueWaitMs
			if rec.Result.QueueWaitMs > maxWait {
				maxWait = rec.Result.QueueWaitMs
			}
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	meanWait /= float64(b.N)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/s")
	b.ReportMetric(meanWait, "queue-ms/job")

	if out := os.Getenv("BENCH_SERVE_OUT"); out != "" {
		rep := serveBenchReport{
			Jobs:            b.N,
			WallSeconds:     elapsed.Seconds(),
			JobsPerSec:      float64(b.N) / elapsed.Seconds(),
			MeanQueueWaitMs: meanWait,
			MaxQueueWaitMs:  maxWait,
			MaxConcurrent:   scfg.MaxConcurrent,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoll waits for the job to finish.
func benchPoll(b *testing.B, baseURL, id string) Record {
	b.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			b.Fatal(err)
		}
		var rec Record
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if rec.State.Terminal() {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Fatalf("job %s never finished", id)
	return Record{}
}
