package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/obs"
)

// testFleet returns a fleet with one card per capacity.
func testFleet(capacities ...int64) *gpu.Fleet {
	specs := make([]gpu.Spec, len(capacities))
	for i, c := range capacities {
		specs[i] = gpu.Spec{Name: "testcard", MemBytes: c}
	}
	f, err := gpu.NewFleet(specs)
	if err != nil {
		panic(err)
	}
	return f
}

// testJob returns a submittable job with the given demand.
func testJob(id string, demand int64) *Job {
	return NewJob(Record{
		ID:                id,
		State:             StateSubmitted,
		DeviceDemandBytes: demand,
		SubmittedAt:       time.Now().UTC(),
	})
}

// waitState polls until the job reaches the wanted state or the deadline
// passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.Record().ID, j.State(), want)
}

func TestSchedulerQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 16)
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(1 << 20),
		QueueCap:      2,
		MaxConcurrent: 1,
		Run: func(ctx context.Context, j *Job) error {
			started <- j.Record().ID
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		Obs: obs.New(nil, nil, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	// First job occupies the single run slot; wait until it is actually
	// running so it no longer counts against the queue bound.
	if err := s.Submit(testJob("run", 1)); err != nil {
		t.Fatal(err)
	}
	<-started

	// Two more fill the queue; the next must bounce.
	if err := s.Submit(testJob("q1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(testJob("q2", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(testJob("bounced", 1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("fourth submit = %v, want ErrQueueFull", err)
	}
	// The bounced job must not linger in listings.
	if _, ok := s.Get("bounced"); ok {
		t.Error("rejected job still registered")
	}
	if got := len(s.Jobs()); got != 3 {
		t.Errorf("Jobs() = %d entries, want 3", got)
	}

	// Oversized demand is rejected up front, not queued.
	if err := s.Submit(testJob("huge", 2<<20)); err == nil {
		t.Error("oversized job admitted")
	}

	close(release)
}

func TestSchedulerFIFOOrder(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	var order []string
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(1 << 20),
		QueueCap:      n,
		MaxConcurrent: 1,
		Run: func(ctx context.Context, j *Job) error {
			mu.Lock()
			order = append(order, j.Record().ID)
			mu.Unlock()
			return nil
		},
		Obs: obs.New(nil, nil, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}

	jobs := make([]*Job, n)
	for i := range jobs {
		jobs[i] = testJob(fmt.Sprintf("j%02d", i), 1)
		if err := s.Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		waitState(t, j, StateSucceeded)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, id := range order {
		if want := fmt.Sprintf("j%02d", i); id != want {
			t.Fatalf("execution order %v: position %d is %s, want %s", order, i, id, want)
		}
	}
}

// TestSchedulerDeviceAdmission floods the scheduler with jobs whose
// demands only fit two-at-a-time on the device and asserts the leases
// never oversubscribe it, even with ample concurrency slots. Run with
// -race to check the accounting end to end.
func TestSchedulerDeviceAdmission(t *testing.T) {
	const (
		capacity = 1000
		demand   = 400 // two fit, three do not
		n        = 12
	)
	fleet := testFleet(capacity)
	dev := fleet.Device(0)
	var inFlight, peak atomic.Int64
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         fleet,
		QueueCap:      n,
		MaxConcurrent: n, // device memory is the only binding constraint
		Run: func(ctx context.Context, j *Job) error {
			cur := inFlight.Add(demand)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			if used := dev.InUse(); used > dev.Capacity() {
				t.Errorf("device oversubscribed: InUse=%d capacity=%d", used, dev.Capacity())
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-demand)
			return nil
		},
		Obs: obs.New(nil, nil, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}

	jobs := make([]*Job, n)
	for i := range jobs {
		jobs[i] = testJob(fmt.Sprintf("j%02d", i), demand)
		if err := s.Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		waitState(t, j, StateSucceeded)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > capacity {
		t.Errorf("concurrent demand peaked at %d, capacity %d", p, capacity)
	}
	if p := peak.Load(); p < 2*demand {
		t.Logf("note: peak concurrent demand %d never reached 2 jobs; timing, not a failure", p)
	}
	if used := dev.InUse(); used != 0 {
		t.Errorf("device still holds %d bytes after drain", used)
	}
}

func TestSchedulerCancelWhileQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 4)
	reg := obs.NewRegistry()
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(1 << 20),
		QueueCap:      4,
		MaxConcurrent: 1,
		Run: func(ctx context.Context, j *Job) error {
			started <- j.Record().ID
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		Obs: obs.New(nil, nil, reg),
	})
	if err != nil {
		t.Fatal(err)
	}

	blocker := testJob("blocker", 1)
	queued := testJob("queued", 1)
	if err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Submit(queued); err != nil {
		t.Fatal(err)
	}

	rec, err := s.Cancel("queued")
	if err != nil {
		t.Fatalf("cancel queued job: %v", err)
	}
	if rec.State != StateCanceled {
		t.Fatalf("cancel returned state %s, want canceled", rec.State)
	}
	// Cancelling again reports the terminal state.
	if _, err := s.Cancel("queued"); !errors.Is(err, ErrJobTerminal) {
		t.Fatalf("second cancel = %v, want ErrJobTerminal", err)
	}

	close(release)
	waitState(t, blocker, StateSucceeded)
	// The canceled job must never have started.
	select {
	case id := <-started:
		t.Fatalf("job %s started after blocker; canceled job ran", id)
	default:
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["serve.jobs_canceled"]; got != 1 {
		t.Errorf("serve.jobs_canceled = %d, want 1", got)
	}
}

func TestSchedulerCancelWhileRunning(t *testing.T) {
	started := make(chan struct{})
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(1 << 20),
		QueueCap:      4,
		MaxConcurrent: 1,
		Run: func(ctx context.Context, j *Job) error {
			close(started)
			<-ctx.Done()
			return ctx.Err()
		},
		Obs: obs.New(nil, nil, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}

	j := testJob("victim", 1)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel("victim"); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCanceled)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerDrainRequeues checks graceful shutdown: a running job goes
// back to queued (resumable), and submissions during the drain bounce.
func TestSchedulerDrainRequeues(t *testing.T) {
	started := make(chan struct{})
	var transitions sync.Map
	s, err := NewScheduler(SchedulerConfig{
		Fleet:         testFleet(1 << 20),
		QueueCap:      4,
		MaxConcurrent: 1,
		Run: func(ctx context.Context, j *Job) error {
			close(started)
			<-ctx.Done()
			return ctx.Err()
		},
		OnTransition: func(j *Job) {
			rec := j.Record()
			transitions.Store(rec.ID+"/"+string(rec.State), true)
		},
		Obs: obs.New(nil, nil, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}

	j := testJob("drained", 1)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != StateQueued {
		t.Fatalf("drained job state = %s, want queued", got)
	}
	if _, ok := transitions.Load("drained/queued"); !ok {
		t.Error("requeue transition never reached the persistence hook")
	}
	if err := s.Submit(testJob("late", 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
}
