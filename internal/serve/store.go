package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is the job service's on-disk layout, rooted at one data
// directory:
//
//	<root>/jobs/<id>/job.json      job record (atomic rewrite per transition)
//	<root>/jobs/<id>/input.fastq   the submitted reads, verbatim
//	<root>/jobs/<id>/work/         pipeline workspace (manifest, partitions, contigs)
//	<root>/jobs/<id>/result.fasta  final FASTA, installed on success
//
// input.fastq and work/ exist only while the job can still run; terminal
// jobs keep just job.json and (on success) result.fasta. The job record
// plus the work/ manifest are what make kill-and-restart resume possible.
type Store struct {
	root string
}

// recordFile is the job record's file name within a job directory.
const recordFile = "job.json"

// NewStore opens (creating if needed) the data directory.
func NewStore(root string) (*Store, error) {
	st := &Store{root: root}
	if err := os.MkdirAll(st.JobsDir(), 0o755); err != nil {
		return nil, err
	}
	return st, nil
}

// Root returns the data directory.
func (st *Store) Root() string { return st.root }

// JobsDir returns the directory holding all job directories.
func (st *Store) JobsDir() string { return filepath.Join(st.root, "jobs") }

// JobDir returns the directory of one job.
func (st *Store) JobDir(id string) string { return filepath.Join(st.JobsDir(), id) }

// InputPath returns the job's persisted input FASTQ.
func (st *Store) InputPath(id string) string { return filepath.Join(st.JobDir(id), "input.fastq") }

// WorkDir returns the job's pipeline workspace.
func (st *Store) WorkDir(id string) string { return filepath.Join(st.JobDir(id), "work") }

// ResultPath returns the job's installed FASTA result.
func (st *Store) ResultPath(id string) string { return filepath.Join(st.JobDir(id), "result.fasta") }

// recordPath returns the job's record file.
func (st *Store) recordPath(id string) string { return filepath.Join(st.JobDir(id), recordFile) }

// CreateJob materializes a new job directory: the input reads, the
// pipeline workspace, and the initial record, in that order — the record
// lands last so a crash mid-create leaves an orphan directory (swept on
// the next start), never a record pointing at missing input.
func (st *Store) CreateJob(rec Record, input []byte) error {
	dir := st.JobDir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(st.InputPath(rec.ID), input, 0o644); err != nil {
		return err
	}
	if err := os.MkdirAll(st.WorkDir(rec.ID), 0o755); err != nil {
		return err
	}
	return st.Save(rec)
}

// Save writes the record atomically (unique tmp + rename), so concurrent
// writers interleave to last-writer-wins and readers never see a torn
// file.
func (st *Store) Save(rec Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.JobDir(rec.ID), recordFile+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), st.recordPath(rec.ID))
}

// Load reads one job record.
func (st *Store) Load(id string) (Record, error) {
	data, err := os.ReadFile(st.recordPath(id))
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("serve: corrupt record for job %s: %w", id, err)
	}
	return rec, nil
}

// List returns every loadable job record, oldest submission first (ties
// broken by ID) — the order recovery re-enqueues in.
func (st *Store) List() ([]Record, error) {
	ents, err := os.ReadDir(st.JobsDir())
	if err != nil {
		return nil, err
	}
	var recs []Record
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		rec, err := st.Load(e.Name())
		if err != nil {
			continue // orphan or torn create; Sweep removes it
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool {
		if !recs[i].SubmittedAt.Equal(recs[k].SubmittedAt) {
			return recs[i].SubmittedAt.Before(recs[k].SubmittedAt)
		}
		return recs[i].ID < recs[k].ID
	})
	return recs, nil
}

// Remove deletes a job directory entirely (used when a submission is
// rejected after its directory was created).
func (st *Store) Remove(id string) error { return os.RemoveAll(st.JobDir(id)) }

// InstallResult moves the run's FASTA output into its stable location.
func (st *Store) InstallResult(id string) error {
	return os.Rename(filepath.Join(st.WorkDir(id), "contigs.fasta"), st.ResultPath(id))
}

// CleanupWorkspace removes a job's scratch state — the pipeline workspace
// and the persisted input — keeping the record and any installed result.
// Called on every terminal transition, so finished jobs never pin spill
// files or partition directories.
func (st *Store) CleanupWorkspace(id string) error {
	if err := os.RemoveAll(st.WorkDir(id)); err != nil {
		return err
	}
	if err := os.Remove(st.InputPath(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// SweepScratch removes a job's per-sort spill directories
// (sort_<kind>_<len>) under both the single-device workspace layout
// (work/partitions/) and the sharded per-node layout (work/node*/).
// Called when a preempted or drained attempt hands the job back to the
// queue, and for every resumable job at startup: the next attempt may
// land on different devices, and stale spills from an interrupted sort
// must never leak into it. Sorted partition files and manifests are
// untouched — resume validates those itself.
func (st *Store) SweepScratch(id string) error {
	dirs := []string{filepath.Join(st.WorkDir(id), "partitions")}
	nodes, err := filepath.Glob(filepath.Join(st.WorkDir(id), "node*"))
	if err != nil {
		return err
	}
	dirs = append(dirs, nodes...)
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		for _, e := range ents {
			if e.IsDir() && strings.HasPrefix(e.Name(), "sort_") {
				if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Sweep removes orphaned job state left by crashed runs: directories with
// no parseable record (a crash mid-create) are deleted outright, and
// terminal jobs that crashed between their final record write and their
// workspace cleanup get the cleanup finished now. Resumable jobs get
// their sort scratch swept (SweepScratch) so a crashed attempt's spills
// never leak into the resumed one. Returns how many job directories were
// repaired or removed.
func (st *Store) Sweep(log *slog.Logger) (int, error) {
	ents, err := os.ReadDir(st.JobsDir())
	if err != nil {
		return 0, err
	}
	swept := 0
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		rec, err := st.Load(id)
		if err != nil {
			log.Warn("sweeping orphaned job dir", "job", id, "err", err)
			if err := os.RemoveAll(st.JobDir(id)); err != nil {
				return swept, err
			}
			swept++
			continue
		}
		if rec.State.Terminal() {
			if _, err := os.Stat(st.WorkDir(id)); err == nil {
				log.Warn("sweeping leftover workspace of terminal job", "job", id, "state", rec.State)
				if err := st.CleanupWorkspace(id); err != nil {
					return swept, err
				}
				swept++
			}
			continue
		}
		if err := st.SweepScratch(id); err != nil {
			return swept, err
		}
	}
	return swept, nil
}
