package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"slices"
	"strconv"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/gpu"
	"repro/internal/obs"
)

// Config parameterizes a job server.
type Config struct {
	// Root is the data directory (job records, inputs, workspaces).
	Root string
	// GPU is the card model jobs are costed and fingerprinted against.
	// Every job runs under this spec (with its lease as the memory bound),
	// so results and resume manifests are identical no matter which fleet
	// device admission placed the job on.
	GPU gpu.Spec
	// Devices sizes a homogeneous fleet of GPU-spec cards (default 1).
	// DeviceSpecs, when set, overrides both with an explicit — possibly
	// heterogeneous — device list.
	Devices     int
	DeviceSpecs []gpu.Spec
	// NoSteal disables work stealing between fleet devices.
	NoSteal bool
	// TenantShare caps each tenant's in-flight leased bytes at this
	// fraction of total fleet capacity (0 = no cap).
	TenantShare float64
	// QueueCap bounds the run queue (default 16); MaxConcurrent bounds
	// simultaneous runs per device (default 2).
	QueueCap      int
	MaxConcurrent int
	// Pipeline geometry shared by all jobs; zero values take the core
	// defaults. Per-job knobs live in Params.
	HostBlockPairs   int
	DeviceBlockPairs int
	MapBatchReads    int
	// MaxBodyBytes caps a submission body (default 256 MiB).
	MaxBodyBytes int64
	// HostMemBytes is the host-memory budget one job may claim under the
	// admission model (default 8 GiB). Submission is rejected with 422
	// when core.GraphHostModel for the job's size and selected graph
	// backend exceeds it; /healthz advertises the resulting per-backend
	// maximum job sizes. The budget bounds the modeled footprint — reads
	// plus graph representation — not the Go process RSS.
	HostMemBytes int64
	// RetryAfter floors the Retry-After advertised on 429 responses
	// (default 2s). Once jobs have finished, the advertised value adapts:
	// queue depth times the recent mean service time, never below this.
	RetryAfter time.Duration
	// Obs is the server's observability sink. Its metrics registry (one is
	// created if absent) carries the scheduler gauges/counters and the
	// per-job child registries the debug endpoint serves.
	Obs *obs.Observer
	// StageCommitHook, when set, fires after every stage a job commits,
	// with the job's run context; tests use it to pause a job or kill the
	// server at a precise recovery point. For sharded jobs it fires per
	// node-stage commit.
	StageCommitHook func(ctx context.Context, jobID string, stage core.PhaseName) error
	// FlightRecorderEvents enables the fleet flight recorder when
	// positive: a bounded global log of that many scheduler lifecycle
	// events (served at /debug/events and per job at
	// /v1/jobs/{id}/events), a per-job flight trace merging lifecycle and
	// pipeline spans (/v1/jobs/{id}/trace), and SLO latency histograms on
	// the metrics registry. Zero — the library default — disables all of
	// it; job output bytes and modeled costs are identical either way.
	FlightRecorderEvents int
}

// Server is the multi-tenant assembly job service: HTTP API + scheduler +
// store, sharing a fleet of bounded devices.
type Server struct {
	cfg     Config
	store   *Store
	sched   *Scheduler
	fleet   *gpu.Fleet
	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	flight  *FlightRecorder
	started time.Time
}

// New opens the data directory, sweeps orphaned state from crashed runs,
// recovers persisted jobs (terminal ones become listable, interrupted
// ones re-queue and resume through their manifests), builds the device
// fleet, and starts the scheduler.
func New(cfg Config) (*Server, error) {
	if cfg.Root == "" {
		return nil, fmt.Errorf("serve: empty root directory")
	}
	if cfg.GPU.MemBytes <= 0 {
		return nil, fmt.Errorf("serve: GPU spec has no memory capacity")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.HostMemBytes <= 0 {
		cfg.HostMemBytes = 8 << 30
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.Obs == nil || cfg.Obs.Metrics() == nil {
		cfg.Obs = obs.New(cfg.Obs.Log(), cfg.Obs.Tracer(), obs.NewRegistry())
	}
	specs := cfg.DeviceSpecs
	if len(specs) == 0 {
		if cfg.Devices <= 0 {
			cfg.Devices = 1
		}
		specs = make([]gpu.Spec, cfg.Devices)
		for i := range specs {
			specs[i] = cfg.GPU
		}
	}
	fleet, err := gpu.NewFleet(specs)
	if err != nil {
		return nil, err
	}
	store, err := NewStore(cfg.Root)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		fleet:   fleet,
		log:     cfg.Obs.Log(),
		started: time.Now(),
	}
	if cfg.FlightRecorderEvents > 0 {
		s.flight = NewFlightRecorder(cfg.FlightRecorderEvents, cfg.Obs.Metrics())
	}
	tr := cfg.Obs.Tracer()
	tr.NameProcess(0, "scheduler")
	for d := 0; d < fleet.Size(); d++ {
		tr.NameProcess(int64(d)+1, fmt.Sprintf("device%02d %s", d, fleet.Device(d).Spec().Name))
	}
	s.sched, err = NewScheduler(SchedulerConfig{
		Fleet:         fleet,
		QueueCap:      cfg.QueueCap,
		MaxConcurrent: cfg.MaxConcurrent,
		NoSteal:       cfg.NoSteal,
		TenantShare:   cfg.TenantShare,
		Run:           s.runJob,
		OnTransition:  s.onTransition,
		Obs:           cfg.Obs,
		Recorder:      s.flight,
	})
	if err != nil {
		return nil, err
	}
	if _, err := store.Sweep(s.log); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.mux = s.buildMux()
	s.handler = s.withRequestLog(s.mux)
	return s, nil
}

// recover reloads every persisted job: terminal records register for
// listing; submitted/queued/running records re-enter the queue (in
// original submission order) and resume mid-pipeline via their run
// manifests — possibly on different devices than the crashed attempt,
// which is safe because jobs are fingerprinted against the base GPU spec,
// not the fleet card they land on.
func (s *Server) recover() error {
	recs, err := s.store.List()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		j := NewJob(rec)
		if rec.State.Terminal() {
			s.sched.Register(j)
			continue
		}
		s.log.Info("recovering interrupted job", "job", rec.ID, "state", rec.State,
			"attempts", rec.Attempts)
		s.sched.Recover(j)
	}
	return nil
}

// Handler returns the server's HTTP handler: the API mux wrapped in the
// request-logging middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// FlightRecorder exposes the flight recorder; nil when disabled.
func (s *Server) FlightRecorder() *FlightRecorder { return s.flight }

// Fleet exposes the device inventory (admission accounting, tests).
func (s *Server) Fleet() *gpu.Fleet { return s.fleet }

// Scheduler exposes the scheduler (metrics, tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Store exposes the on-disk layout (tests, tooling).
func (s *Server) Store() *Store { return s.store }

// Drain gracefully shuts the job layer down: submissions are rejected,
// running jobs are cancelled at the next device batch with their
// committed stages resumable, and every record is flushed. The HTTP
// listener is the caller's to close (http.Server.Shutdown first).
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Kill crash-stops the job layer without persisting anything; tests use
// it to exercise the recovery path.
func (s *Server) Kill() { s.sched.Kill() }

// onTransition persists every job state change and finishes terminal
// jobs' workspace cleanup. A job handed back to the queue after running
// (preemption or drain) gets its sort scratch swept here — the scheduler
// fires this before the job can start again, and its next attempt may
// land on different devices.
func (s *Server) onTransition(j *Job) {
	rec := j.Record()
	if err := s.store.Save(rec); err != nil {
		s.log.Error("persisting job record", "job", rec.ID, "err", err)
	}
	switch {
	case rec.State.Terminal():
		if err := s.store.CleanupWorkspace(rec.ID); err != nil {
			s.log.Error("cleaning job workspace", "job", rec.ID, "err", err)
		}
	case rec.State == StateQueued && rec.Attempts > 0:
		if err := s.store.SweepScratch(rec.ID); err != nil {
			s.log.Error("sweeping job scratch", "job", rec.ID, "err", err)
		}
	}
}

// jobConfig builds the core configuration a job runs under. The job's
// device is a private handle whose capacity equals the job's lease, so a
// job can never use more device memory than admission granted it; the
// demand is persisted in the record, which keeps the config fingerprint —
// and therefore manifest resume — stable across server restarts and
// across whichever fleet device the attempt lands on.
func (s *Server) jobConfig(rec Record) core.Config {
	cfg := core.DefaultConfig(s.store.WorkDir(rec.ID))
	if s.cfg.HostBlockPairs > 0 {
		cfg.HostBlockPairs = s.cfg.HostBlockPairs
	}
	if s.cfg.DeviceBlockPairs > 0 {
		cfg.DeviceBlockPairs = s.cfg.DeviceBlockPairs
	}
	if s.cfg.MapBatchReads > 0 {
		cfg.MapBatchReads = s.cfg.MapBatchReads
	}
	cfg.MinOverlap = rec.Params.MinOverlap
	cfg.Workers = rec.Params.Workers
	cfg.FullGraph = rec.Params.FullGraph
	cfg.DedupeReads = rec.Params.DedupeReads
	cfg.IncludeSingletons = rec.Params.IncludeSingletons
	cfg.VerifyOverlaps = rec.Params.VerifyOverlaps
	cfg.GraphBackend = rec.Params.GraphBackend
	cfg.GPU = s.cfg.GPU
	if rec.DeviceDemandBytes > 0 {
		cfg.GPU.MemBytes = rec.DeviceDemandBytes
	}
	cfg.Resume = true // a fresh workspace has no manifest; resume is a no-op there
	return cfg
}

// runJob executes one job, single-device through the core pipeline or
// sharded across its leased devices through the cluster layer. Reads come
// from the persisted input, and the job's private metrics registry is
// mounted on the server registry under a job="<id>" label for the
// lifetime of the run.
func (s *Server) runJob(ctx context.Context, j *Job) error {
	rec := j.Record()
	reads, _, err := fastq.ReadFile(s.store.InputPath(rec.ID))
	if err != nil {
		return fmt.Errorf("serve: reloading job input: %w", err)
	}

	jobReg := obs.NewRegistry()
	parent := s.cfg.Obs.Metrics()
	label := `job="` + rec.ID + `"`
	parent.AttachChild(label, jobReg)
	defer parent.DetachChild(label)
	// With the flight recorder on, the job's tracer (already carrying its
	// scheduler lifecycle spans) also collects the run's pipeline spans,
	// so /v1/jobs/{id}/trace shows both in one Perfetto view.
	jobObs := obs.New(s.log.With("job", rec.ID), j.Tracer(), jobReg)

	if rec.Params.ShardCount() > 1 {
		return s.runShardedJob(ctx, j, reads, jobObs)
	}

	cfg := s.jobConfig(rec)
	cfg.Obs = jobObs
	cfg.Progress = func(stage, event string) {
		j.Update(func(r *Record) {
			r.Stage = stage
			switch event {
			case core.ProgressDone:
				r.StagesDone = append(r.StagesDone, stage)
			case core.ProgressCached:
				r.StagesDone = append(r.StagesDone, stage)
				r.CachedStages = append(r.CachedStages, stage)
			}
		})
		if err := s.store.Save(j.Record()); err != nil {
			s.log.Error("persisting job progress", "job", rec.ID, "err", err)
		}
	}

	p, err := core.New(cfg)
	if err != nil {
		return err
	}
	p.FaultHook = func(stage core.PhaseName) error {
		s.flight.Emit(j, EventStageCommit, map[string]any{"stage": string(stage)})
		if err := s.checkPreempt(j); err != nil {
			return err
		}
		if s.cfg.StageCommitHook != nil {
			return s.cfg.StageCommitHook(ctx, rec.ID, stage)
		}
		return nil
	}
	res, err := p.AssembleContext(ctx, reads)
	if err != nil {
		return err
	}
	if err := s.store.InstallResult(rec.ID); err != nil {
		return err
	}
	j.Update(func(r *Record) {
		r.CachedStages = append([]string(nil), res.CachedStages...)
		r.Result = &ResultSummary{
			NumContigs:     res.ContigStats.NumContigs,
			TotalBases:     res.ContigStats.TotalBases,
			MaxContigLen:   res.ContigStats.MaxLen,
			N50:            res.ContigStats.N50,
			CandidateEdges: res.CandidateEdges,
			AcceptedEdges:  res.AcceptedEdges,
			WallMillis:     res.TotalWall.Milliseconds(),
			ModeledMillis:  res.TotalModeled.Milliseconds(),
		}
	})
	return nil
}

// checkPreempt turns a pending preemption request into the drain error a
// run function returns at a stage commit.
func (s *Server) checkPreempt(j *Job) error {
	select {
	case <-j.Preempted():
		return ErrPreempted
	default:
		return nil
	}
}

// runShardedJob executes a Shards>1 job through the cluster layer: one
// simulated node per shard, node i bound to a private device whose
// capacity equals the per-shard lease admission granted on fleet device
// Devices[i]. The cluster's lockstep manifests make the sharded job
// exactly as preemptible and crash-resumable as a single-device one, and
// its contig output is byte-identical to the unsharded pipeline under the
// same parameters.
func (s *Server) runShardedJob(ctx context.Context, j *Job, reads *dna.ReadSet, jobObs *obs.Observer) error {
	rec := j.Record()
	k := rec.Params.ShardCount()
	base := s.cfg.GPU
	if rec.DeviceDemandBytes > 0 {
		base.MemBytes = rec.DeviceDemandBytes
	}
	specs := make([]gpu.Spec, k)
	for i := range specs {
		specs[i] = base
	}
	jobFleet, err := gpu.NewFleet(specs)
	if err != nil {
		return err
	}

	ccfg := cluster.DefaultConfig(s.store.WorkDir(rec.ID), k)
	if s.cfg.HostBlockPairs > 0 {
		ccfg.HostBlockPairs = s.cfg.HostBlockPairs
	}
	if s.cfg.DeviceBlockPairs > 0 {
		ccfg.DeviceBlockPairs = s.cfg.DeviceBlockPairs
	}
	if s.cfg.MapBatchReads > 0 {
		ccfg.MapBatchReads = s.cfg.MapBatchReads
	}
	ccfg.MinOverlap = rec.Params.MinOverlap
	ccfg.WorkersPerNode = rec.Params.Workers
	ccfg.IncludeSingletons = rec.Params.IncludeSingletons
	ccfg.GraphBackend = rec.Params.GraphBackend
	ccfg.GPU = base
	ccfg.Fleet = jobFleet
	ccfg.Resume = true
	ccfg.Obs = jobObs

	cl, err := cluster.New(ccfg)
	if err != nil {
		return err
	}
	cl.FaultHook = func(nodeID int, stage core.PhaseName) error {
		s.flight.Emit(j, EventStageCommit, map[string]any{
			"stage": string(stage), "node": nodeID})
		if err := s.checkPreempt(j); err != nil {
			return err
		}
		if s.cfg.StageCommitHook != nil {
			return s.cfg.StageCommitHook(ctx, rec.ID, stage)
		}
		return nil
	}
	res, err := cl.AssembleContext(ctx, reads)
	if err != nil {
		return err
	}
	if err := s.store.InstallResult(rec.ID); err != nil {
		return err
	}
	j.Update(func(r *Record) {
		r.CachedStages = append([]string(nil), res.CachedStages...)
		r.Result = &ResultSummary{
			NumContigs:     res.ContigStats.NumContigs,
			TotalBases:     res.ContigStats.TotalBases,
			MaxContigLen:   res.ContigStats.MaxLen,
			N50:            res.ContigStats.N50,
			CandidateEdges: res.CandidateEdges,
			AcceptedEdges:  res.AcceptedEdges,
			WallMillis:     res.TotalWall.Milliseconds(),
			ModeledMillis:  res.TotalModeled.Milliseconds(),
		}
	})
	return nil
}

// buildMux wires the HTTP API.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("GET /debug/metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	return mux
}

// statusWriter remembers the status code a handler wrote, for the
// request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// newRequestID returns a fresh random request identifier (16 hex chars).
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// withRequestLog logs one slog line per API call (method, path, status,
// duration) and tags every response with a generated X-Request-Id so a
// client report can be joined against the server log.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := newRequestID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Info("http request", "requestId", id, "method", r.Method,
			"path", r.URL.Path, "status", sw.status,
			"durMs", time.Since(start).Milliseconds())
	})
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// parseParams reads the per-job knobs from the submit query string.
func parseParams(r *http.Request) (Params, error) {
	q := r.URL.Query()
	p := Params{MinOverlap: 63, Workers: 1}
	if v := q.Get("lmin"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return p, fmt.Errorf("invalid lmin %q", v)
		}
		p.MinOverlap = n
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("invalid workers %q", v)
		}
		p.Workers = n
	}
	if v := q.Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return p, fmt.Errorf("invalid shards %q", v)
		}
		p.Shards = n
	}
	boolParam := func(key string, dst *bool) error {
		v := q.Get(key)
		if v == "" {
			return nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("invalid %s %q", key, v)
		}
		*dst = b
		return nil
	}
	for key, dst := range map[string]*bool{
		"fullgraph":  &p.FullGraph,
		"dedupe":     &p.DedupeReads,
		"singletons": &p.IncludeSingletons,
		"verify":     &p.VerifyOverlaps,
	} {
		if err := boolParam(key, dst); err != nil {
			return p, err
		}
	}
	if v := q.Get("graph-backend"); v != "" {
		if !slices.Contains(core.Backends, v) {
			return p, fmt.Errorf("invalid graph-backend %q (want one of %v)", v, core.Backends)
		}
		p.GraphBackend = v
	}
	if (p.GraphBackend == core.BackendSpmat || p.GraphBackend == core.BackendSuccinct) && p.FullGraph {
		return p, fmt.Errorf("graph-backend %q and fullgraph are mutually exclusive", p.GraphBackend)
	}
	if v := q.Get("priority"); v != "" {
		if !slices.Contains(core.Priorities, v) {
			return p, fmt.Errorf("invalid priority %q (want one of %v)", v, core.Priorities)
		}
		p.Priority = v
	}
	p.Tenant = q.Get("tenant")
	if p.ShardCount() > 1 {
		if p.FullGraph || p.DedupeReads || p.VerifyOverlaps {
			return p, fmt.Errorf("shards > 1 does not support fullgraph, dedupe, or verify")
		}
	}
	return p, nil
}

// handleSubmit accepts a FASTQ/FASTA body plus query-string knobs,
// persists the job, and queues it. Responses: 201 with the job record,
// 400 on bad input, 413 when the body exceeds the limit, 422 when the job
// can never fit on the fleet, 429 (+ adaptive Retry-After) when the run
// queue is full, 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	params, err := parseParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBodyBytes)
		return
	}
	reads, _, err := fastq.ReadAll(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing reads: %v", err)
		return
	}
	if reads.NumReads() == 0 {
		writeError(w, http.StatusBadRequest, "no reads in body")
		return
	}
	if reads.MaxLen() <= params.MinOverlap {
		writeError(w, http.StatusUnprocessableEntity,
			"lmin %d is not below the longest read length %d", params.MinOverlap, reads.MaxLen())
		return
	}

	rec := Record{
		ID:          NewJobID(),
		Name:        r.URL.Query().Get("name"),
		State:       StateSubmitted,
		Params:      params,
		NumReads:    reads.NumReads(),
		MaxReadLen:  reads.MaxLen(),
		SubmittedAt: time.Now().UTC(),
	}
	rec.DeviceDemandBytes = s.jobConfig(rec).DeviceDemandBytes(reads.MaxLen())
	if fit := s.fleet.FitCount(rec.DeviceDemandBytes); fit < params.ShardCount() {
		writeError(w, http.StatusUnprocessableEntity,
			"job needs %d device(s) with %d bytes of memory, fleet has %d that large: lower workers or shards",
			params.ShardCount(), rec.DeviceDemandBytes, fit)
		return
	}
	backend := params.GraphBackend
	if backend == "" {
		backend = core.BackendGreedy
	}
	if demand := core.GraphHostModel(backend, reads.NumReads(), reads.MaxLen()); demand > s.cfg.HostMemBytes {
		writeError(w, http.StatusUnprocessableEntity,
			"job's modeled host footprint %d bytes exceeds the %d-byte budget: backend %q admits at most %d reads of length %d",
			demand, s.cfg.HostMemBytes, backend,
			core.MaxReadsForHostBudget(backend, s.cfg.HostMemBytes, reads.MaxLen()), reads.MaxLen())
		return
	}
	if err := s.store.CreateJob(rec, body); err != nil {
		writeError(w, http.StatusInternalServerError, "persisting job: %v", err)
		return
	}
	j := NewJob(rec)
	if err := s.sched.Submit(j); err != nil {
		if rmErr := s.store.Remove(rec.ID); rmErr != nil {
			s.log.Error("removing rejected job", "job", rec.ID, "err", rmErr)
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			retry := s.sched.EstimateRetryAfter(s.cfg.RetryAfter)
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
			writeError(w, http.StatusTooManyRequests, "run queue is full, retry later")
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "server is draining")
		default:
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+rec.ID)
	writeJSON(w, http.StatusCreated, j.Record())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	recs := make([]Record, 0, len(jobs))
	for _, j := range jobs {
		recs = append(recs, j.Record())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":  recs,
		"fleet": s.sched.Snapshot(),
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Record())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	rec := j.Record()
	if rec.State != StateSucceeded {
		writeError(w, http.StatusConflict, "job %s is %s, not succeeded", id, rec.State)
		return
	}
	f, err := os.Open(s.store.ResultPath(id))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening result: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "text/x-fasta")
	io.Copy(w, f)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.sched.Cancel(id)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, rec)
	case errors.Is(err, ErrJobTerminal):
		writeError(w, http.StatusConflict, "job %s is already %s", id, rec.State)
	default:
		writeError(w, http.StatusNotFound, "%v", err)
	}
}

// admissionReadLen is the reference read length /healthz quotes the
// per-backend maximum job sizes at. Submissions are still admitted
// against their actual MaxLen; this only anchors the advertised numbers.
const admissionReadLen = 150

// handleHealthz reports liveness plus the per-device admission state:
// every fleet card's capacity, leased bytes, queue, and running jobs,
// alongside the fleet-wide steal/preemption counters, the binary's
// build identity, how long the server has been up, and the host-side
// admission envelope — the modeled maximum reads each graph backend
// admits under the configured host budget.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.sched.Snapshot()
	version, revision, modified := buildinfo.Info()
	if modified {
		revision += "-modified"
	}
	maxReads := make(map[string]int, len(core.Backends))
	for _, b := range core.Backends {
		maxReads[b] = core.MaxReadsForHostBudget(b, s.cfg.HostMemBytes, admissionReadLen)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"version":       version,
		"revision":      revision,
		"uptimeSeconds": math.Round(time.Since(s.started).Seconds()),
		"queueDepth":    snap.QueueDepth,
		"jobsRunning":   snap.JobsRunning,
		"fleet":         snap,
		"admission": map[string]any{
			"hostMemBytes":       s.cfg.HostMemBytes,
			"referenceReadLen":   admissionReadLen,
			"maxReadsPerBackend": maxReads,
		},
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Obs.Metrics().Snapshot())
}

// handlePrometheus renders the metrics registry — scheduler instruments,
// SLO histograms, and any live jobs' child registries under their
// job="<id>" label — in Prometheus text exposition format 0.0.4.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentTypePrometheus)
	obs.WritePrometheus(w, s.cfg.Obs.Metrics().Snapshot())
}

// handleJobEvents serves a job's flight-recorder lifecycle history in
// emission order. With the recorder disabled the list is empty.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	rec := j.Record()
	events := rec.Events
	if events == nil {
		events = []obs.LogEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":         id,
		"totalEvents": rec.TotalEvents,
		"dropped":     rec.TotalEvents - uint64(len(events)),
		"events":      events,
	})
}

// handleJobTrace serves the job's flight trace as Chrome trace-event
// JSON: scheduler lifecycle spans (queued gaps on the scheduler track,
// run attempts on per-device tracks) merged with the run's own pipeline
// spans. 404 while the flight recorder is disabled.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	tr := j.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound,
			"no flight trace for job %s: flight recorder is disabled", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WriteJSON(w)
}

// handleDebugEvents serves the global scheduler audit log, newest window
// of FlightRecorderEvents entries, optionally filtered to sequence
// numbers after ?since=N. 404 while the flight recorder is disabled.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder is disabled")
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid since %q", v)
			return
		}
		since = n
	}
	log := s.flight.Log()
	events := log.Since(since)
	if events == nil {
		events = []obs.LogEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   log.Total(),
		"dropped": log.Dropped(),
		"events":  events,
	})
}
