package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/core"
)

// TestSubmitGraphBackendSpmat runs a job under the spmat engine over
// HTTP and pins its FASTA against a direct core run with the same
// backend.
func TestSubmitGraphBackendSpmat(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, reads := testFastq(t, 1401)

	cfg := core.DefaultConfig(t.TempDir())
	cfg.HostBlockPairs = scfg.HostBlockPairs
	cfg.DeviceBlockPairs = scfg.DeviceBlockPairs
	cfg.MapBatchReads = scfg.MapBatchReads
	cfg.MinOverlap = 31
	cfg.Workers = 1
	cfg.GPU = scfg.GPU
	cfg.GraphBackend = core.BackendSpmat
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}

	rec := submitJob(t, ts.URL, fq, "?lmin=31&workers=1&graph-backend=spmat&name=spmat")
	if rec.Params.GraphBackend != core.BackendSpmat {
		t.Fatalf("recorded backend = %q, want %q", rec.Params.GraphBackend, core.BackendSpmat)
	}
	final := pollJob(t, ts.URL, rec.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	got := fetchResult(t, ts.URL, final.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("spmat job FASTA differs from direct spmat assembly (%d vs %d bytes)",
			len(got), len(want))
	}
}

// TestSubmitGraphBackendSuccinct runs a job under the succinct engine
// over HTTP and pins its FASTA against a direct core run with the same
// backend.
func TestSubmitGraphBackendSuccinct(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, reads := testFastq(t, 1403)

	cfg := core.DefaultConfig(t.TempDir())
	cfg.HostBlockPairs = scfg.HostBlockPairs
	cfg.DeviceBlockPairs = scfg.DeviceBlockPairs
	cfg.MapBatchReads = scfg.MapBatchReads
	cfg.MinOverlap = 31
	cfg.Workers = 1
	cfg.GPU = scfg.GPU
	cfg.GraphBackend = core.BackendSuccinct
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}

	rec := submitJob(t, ts.URL, fq, "?lmin=31&workers=1&graph-backend=succinct&name=succinct")
	if rec.Params.GraphBackend != core.BackendSuccinct {
		t.Fatalf("recorded backend = %q, want %q", rec.Params.GraphBackend, core.BackendSuccinct)
	}
	final := pollJob(t, ts.URL, rec.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	got := fetchResult(t, ts.URL, final.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("succinct job FASTA differs from direct succinct assembly (%d vs %d bytes)",
			len(got), len(want))
	}
}

// TestSubmitHostAdmission pins the host-side admission gate: a server
// with a tiny modeled host budget rejects the job with 422 and an error
// naming the backend's maximum job size, while /healthz advertises the
// per-backend envelope.
func TestSubmitHostAdmission(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	scfg.HostMemBytes = 1 << 10
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, _ := testFastq(t, 1404)
	resp, err := http.Post(ts.URL+"/v1/jobs?graph-backend=succinct", "application/octet-stream", bytes.NewReader(fq))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget submit: status %d, want %d: %s",
			resp.StatusCode, http.StatusUnprocessableEntity, msg)
	}
	if !bytes.Contains(msg, []byte("host footprint")) || !bytes.Contains(msg, []byte("succinct")) {
		t.Errorf("422 body does not explain the host admission failure: %s", msg)
	}

	var health struct {
		Admission struct {
			HostMemBytes       int64          `json:"hostMemBytes"`
			ReferenceReadLen   int            `json:"referenceReadLen"`
			MaxReadsPerBackend map[string]int `json:"maxReadsPerBackend"`
		} `json:"admission"`
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	adm := health.Admission
	if adm.HostMemBytes != scfg.HostMemBytes {
		t.Errorf("advertised budget %d, want %d", adm.HostMemBytes, scfg.HostMemBytes)
	}
	if adm.ReferenceReadLen != admissionReadLen {
		t.Errorf("advertised read length %d, want %d", adm.ReferenceReadLen, admissionReadLen)
	}
	if len(adm.MaxReadsPerBackend) != len(core.Backends) {
		t.Fatalf("admission lists %d backends, want %d: %v",
			len(adm.MaxReadsPerBackend), len(core.Backends), adm.MaxReadsPerBackend)
	}
	// Denser representations admit fewer reads under the same budget.
	gr, su, sp := adm.MaxReadsPerBackend[core.BackendGreedy],
		adm.MaxReadsPerBackend[core.BackendSuccinct],
		adm.MaxReadsPerBackend[core.BackendSpmat]
	if !(gr >= su && su >= sp) {
		t.Errorf("admission ordering greedy=%d succinct=%d spmat=%d, want non-increasing", gr, su, sp)
	}
}

// TestSubmitGraphBackendValidation rejects malformed backend submissions
// before a job record is ever created.
func TestSubmitGraphBackendValidation(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, _ := testFastq(t, 1402)
	for _, query := range []string{
		"?graph-backend=bogus",
		"?graph-backend=spmat&fullgraph=true",
		"?graph-backend=succinct&fullgraph=true",
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/octet-stream", bytes.NewReader(fq))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want %d", query, resp.StatusCode, http.StatusBadRequest)
		}
	}
}
