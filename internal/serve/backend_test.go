package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/core"
)

// TestSubmitGraphBackendSpmat runs a job under the spmat engine over
// HTTP and pins its FASTA against a direct core run with the same
// backend.
func TestSubmitGraphBackendSpmat(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, reads := testFastq(t, 1401)

	cfg := core.DefaultConfig(t.TempDir())
	cfg.HostBlockPairs = scfg.HostBlockPairs
	cfg.DeviceBlockPairs = scfg.DeviceBlockPairs
	cfg.MapBatchReads = scfg.MapBatchReads
	cfg.MinOverlap = 31
	cfg.Workers = 1
	cfg.GPU = scfg.GPU
	cfg.GraphBackend = core.BackendSpmat
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(res.ContigPath)
	if err != nil {
		t.Fatal(err)
	}

	rec := submitJob(t, ts.URL, fq, "?lmin=31&workers=1&graph-backend=spmat&name=spmat")
	if rec.Params.GraphBackend != core.BackendSpmat {
		t.Fatalf("recorded backend = %q, want %q", rec.Params.GraphBackend, core.BackendSpmat)
	}
	final := pollJob(t, ts.URL, rec.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	got := fetchResult(t, ts.URL, final.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("spmat job FASTA differs from direct spmat assembly (%d vs %d bytes)",
			len(got), len(want))
	}
}

// TestSubmitGraphBackendValidation rejects malformed backend submissions
// before a job record is ever created.
func TestSubmitGraphBackendValidation(t *testing.T) {
	scfg := testServerConfig(t.TempDir())
	srv, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fq, _ := testFastq(t, 1402)
	for _, query := range []string{
		"?graph-backend=bogus",
		"?graph-backend=spmat&fullgraph=true",
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/octet-stream", bytes.NewReader(fq))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want %d", query, resp.StatusCode, http.StatusBadRequest)
		}
	}
}
