package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/obs"
)

// ErrQueueFull is returned by Submit when the bounded run queue cannot
// take another job; HTTP maps it to 429 with a Retry-After header.
var ErrQueueFull = errors.New("serve: run queue is full")

// ErrDraining is returned by Submit once a graceful shutdown has begun.
var ErrDraining = errors.New("serve: server is draining")

// ErrJobTerminal is returned by Cancel for jobs already in a terminal
// state.
var ErrJobTerminal = errors.New("serve: job is already in a terminal state")

// RunFunc executes one job to completion under ctx. It returns nil on
// success; a ctx cancellation error means the job was interrupted (by
// user cancel, drain, or kill) with its committed stages resumable.
type RunFunc func(ctx context.Context, j *Job) error

// SchedulerConfig parameterizes a Scheduler.
type SchedulerConfig struct {
	// Device is the shared simulated card every job leases device memory
	// from before it may run.
	Device *gpu.Device
	// QueueCap bounds how many jobs may sit in the run queue; submissions
	// beyond it are rejected with ErrQueueFull.
	QueueCap int
	// MaxConcurrent bounds how many jobs run at once, independent of
	// device capacity (a host-side CPU/IO limit).
	MaxConcurrent int
	// Run executes one job; the server injects the real pipeline, tests
	// inject controllable stand-ins.
	Run RunFunc
	// OnTransition fires after every persistent state change, outside the
	// job lock; the server persists the record (and cleans terminal
	// workspaces) here. May be nil.
	OnTransition func(j *Job)
	// Obs carries the scheduler's logger and metrics registry; nil
	// disables both.
	Obs *obs.Observer
}

// Scheduler is the admission-controlled job runner: one dispatcher
// goroutine pops the FIFO queue, takes a concurrency slot, leases the
// job's declared device-memory demand off the shared device (blocking —
// this is the admission backpressure), and only then starts the job.
// Because a single dispatcher performs the blocking lease acquisition,
// jobs start in strict submission order and the lease wait can never
// deadlock against other leases.
type Scheduler struct {
	cfg    SchedulerConfig
	ctx    context.Context
	stop   context.CancelFunc
	queue  *jobQueue
	sem    chan struct{}
	wg     sync.WaitGroup // dispatcher + running jobs
	runWG  sync.WaitGroup // running jobs only
	killed atomic.Bool
	drain  atomic.Bool

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // registration order, for listing

	queueDepth  *obs.Gauge
	runningG    *obs.Gauge
	leasedG     *obs.Gauge
	admitted    *obs.Counter
	rejected    *obs.Counter
	succeeded   *obs.Counter
	failed      *obs.Counter
	canceledC   *obs.Counter
	queueWaitMs *obs.Histogram
	running     atomic.Int64
}

// NewScheduler builds a scheduler and starts its dispatcher.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("serve: scheduler needs a device")
	}
	if cfg.Run == nil {
		return nil, fmt.Errorf("serve: scheduler needs a run function")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	ctx, stop := context.WithCancel(context.Background())
	m := cfg.Obs.Metrics()
	s := &Scheduler{
		cfg:         cfg,
		ctx:         ctx,
		stop:        stop,
		queue:       newJobQueue(cfg.QueueCap),
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		jobs:        make(map[string]*Job),
		queueDepth:  m.Gauge("serve.queue_depth"),
		runningG:    m.Gauge("serve.jobs_running"),
		leasedG:     m.Gauge("serve.device_leased_bytes"),
		admitted:    m.Counter("serve.jobs_admitted"),
		rejected:    m.Counter("serve.jobs_rejected"),
		succeeded:   m.Counter("serve.jobs_succeeded"),
		failed:      m.Counter("serve.jobs_failed"),
		canceledC:   m.Counter("serve.jobs_canceled"),
		queueWaitMs: m.Histogram("serve.queue_wait_ms", 1, 10, 100, 1e3, 10e3, 60e3),
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Register adds a job to the scheduler's index without queueing it; used
// for terminal jobs reloaded at startup so they stay listable.
func (s *Scheduler) Register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := j.Record().ID
	if _, ok := s.jobs[id]; !ok {
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
}

// Submit queues a new job, honouring the queue bound. The job must carry
// a positive DeviceDemandBytes no larger than the device capacity.
func (s *Scheduler) Submit(j *Job) error {
	if s.drain.Load() {
		return ErrDraining
	}
	rec := j.Record()
	if rec.DeviceDemandBytes <= 0 || rec.DeviceDemandBytes > s.cfg.Device.Capacity() {
		return fmt.Errorf("serve: job %s needs %d bytes of device memory, device has %d",
			rec.ID, rec.DeviceDemandBytes, s.cfg.Device.Capacity())
	}
	s.Register(j)
	j.Update(func(r *Record) { r.State = StateQueued })
	j.mu.Lock()
	j.enqueuedAt = time.Now()
	j.mu.Unlock()
	if !s.queue.tryPush(j) {
		s.unregister(rec.ID)
		s.rejected.Add(1)
		return ErrQueueFull
	}
	s.admitted.Add(1)
	s.queueDepth.Set(int64(s.queue.depth()))
	s.notify(j)
	return nil
}

// Recover force-queues a job reloaded from disk at startup, bypassing the
// queue bound — recovered jobs were admitted by a previous server
// incarnation and must not be dropped.
func (s *Scheduler) Recover(j *Job) {
	s.Register(j)
	j.Update(func(r *Record) { r.State = StateQueued })
	j.mu.Lock()
	j.enqueuedAt = time.Now()
	j.mu.Unlock()
	s.queue.forcePush(j)
	s.queueDepth.Set(int64(s.queue.depth()))
	s.notify(j)
}

// unregister drops a job that was never admitted (queue-full rejection).
func (s *Scheduler) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, x := range s.order {
		if x == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Get returns the job with the given ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in registration order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueDepth returns how many jobs are waiting in the run queue.
func (s *Scheduler) QueueDepth() int { return s.queue.depth() }

// Running returns how many jobs are currently executing.
func (s *Scheduler) Running() int { return int(s.running.Load()) }

// Cancel requests cancellation of a job. A queued job transitions to
// canceled immediately; a running job has its context cancelled and
// reaches canceled when the pipeline unwinds. Cancelling a terminal job
// returns ErrJobTerminal.
func (s *Scheduler) Cancel(id string) (Record, error) {
	j, ok := s.Get(id)
	if !ok {
		return Record{}, fmt.Errorf("serve: unknown job %s", id)
	}
	j.mu.Lock()
	switch {
	case j.rec.State.Terminal():
		rec := j.rec.clone()
		j.mu.Unlock()
		return rec, ErrJobTerminal
	case j.rec.State == StateRunning:
		j.cancelRequested = true
		cancel := j.cancel
		rec := j.rec.clone()
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return rec, nil
	default: // submitted or queued (possibly mid-dispatch)
		j.cancelRequested = true
		now := time.Now()
		j.rec.State = StateCanceled
		j.rec.FinishedAt = &now
		cancel := j.cancel
		rec := j.rec.clone()
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		s.canceledC.Add(1)
		s.notify(j)
		return rec, nil
	}
}

// Drain begins a graceful shutdown: new submissions are rejected, the
// dispatcher stops starting jobs, running jobs are cancelled (their
// committed stages stay resumable) and persisted back to queued, and
// queued jobs simply stay queued on disk. Returns when every job
// goroutine has unwound or ctx expires.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.drain.Store(true)
	s.stop() // cancels the dispatcher and every running job's context
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// Kill simulates a crash for tests: every context is cancelled and NO
// record is persisted, leaving the on-disk state exactly as a SIGKILL
// would — running jobs still say "running". Waits for goroutines to
// unwind so tests can immediately restart a server on the same root.
func (s *Scheduler) Kill() {
	s.killed.Store(true)
	s.drain.Store(true)
	s.stop()
	s.wg.Wait()
}

// dispatch is the single scheduling goroutine: concurrency slot, FIFO
// pop, device lease, start. The slot is taken before the pop so jobs
// stay in the queue — and countable against the queue cap — until they
// can actually run; otherwise one job would always sit invisibly between
// the queue and the semaphore, silently extending the cap by one.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case s.sem <- struct{}{}:
		case <-s.ctx.Done():
			return
		}
		var j *Job
		for {
			var ok bool
			j, ok = s.queue.pop(s.ctx)
			if !ok {
				return
			}
			s.queueDepth.Set(int64(s.queue.depth()))
			if j.State() == StateQueued {
				break
			}
			// Cancelled while queued; reuse the slot for the next job.
		}
		// The job's run context exists before the lease wait so a user
		// cancel unparks the dispatcher instead of stalling the queue
		// behind an unstartable job.
		jobCtx, cancel := context.WithCancel(s.ctx)
		j.mu.Lock()
		j.cancel = cancel
		demand := j.rec.DeviceDemandBytes
		wait := time.Since(j.enqueuedAt)
		j.mu.Unlock()
		lease, err := s.cfg.Device.AllocWait(jobCtx, demand)
		if err != nil {
			cancel()
			<-s.sem
			if s.ctx.Err() != nil {
				return
			}
			// User cancel while waiting for the lease: Cancel already
			// marked the record canceled and notified.
			continue
		}
		if j.CancelRequested() {
			// Cancelled between the queue pop and the lease grant.
			lease.Free()
			cancel()
			<-s.sem
			continue
		}
		s.queueWaitMs.Observe(float64(wait.Milliseconds()))
		s.startJob(j, jobCtx, cancel, lease, wait)
	}
}

// startJob transitions the job to running and executes it on its own
// goroutine, returning the concurrency slot and the device lease when it
// finishes.
func (s *Scheduler) startJob(j *Job, ctx context.Context, cancel context.CancelFunc, lease *gpu.Allocation, wait time.Duration) {
	now := time.Now()
	j.Update(func(r *Record) {
		r.State = StateRunning
		r.StartedAt = &now
		r.Attempts++
		r.Error = ""
	})
	s.running.Add(1)
	s.runningG.Set(s.running.Load())
	s.leasedG.Set(s.cfg.Device.InUse())
	s.notify(j)
	s.wg.Add(1)
	s.runWG.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.runWG.Done()
		defer func() { <-s.sem }()
		defer cancel()
		err := s.cfg.Run(ctx, j)
		lease.Free()
		s.running.Add(-1)
		s.runningG.Set(s.running.Load())
		s.leasedG.Set(s.cfg.Device.InUse())
		s.finish(j, wait, err)
	}()
}

// finish settles a run's outcome into the job record.
func (s *Scheduler) finish(j *Job, wait time.Duration, err error) {
	canceledByUser := j.CancelRequested()
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	now := time.Now()
	switch {
	case err == nil:
		j.Update(func(r *Record) {
			r.State = StateSucceeded
			r.FinishedAt = &now
			if r.Result != nil {
				r.Result.QueueWaitMs = float64(wait.Milliseconds())
			}
		})
		s.succeeded.Add(1)
	case canceledByUser && interrupted:
		j.Update(func(r *Record) {
			r.State = StateCanceled
			r.FinishedAt = &now
		})
		s.canceledC.Add(1)
	case interrupted:
		if s.killed.Load() {
			// Crash simulation: leave the on-disk record saying "running".
			return
		}
		// Drain: the job goes back to queued on disk; the next server
		// start resumes it through the run manifest.
		j.Update(func(r *Record) { r.State = StateQueued })
	default:
		j.Update(func(r *Record) {
			r.State = StateFailed
			r.FinishedAt = &now
			r.Error = err.Error()
		})
		s.failed.Add(1)
	}
	s.notify(j)
}

// notify delivers a transition to the server's persistence hook.
func (s *Scheduler) notify(j *Job) {
	if s.killed.Load() {
		return
	}
	if s.cfg.OnTransition != nil {
		s.cfg.OnTransition(j)
	}
}

// jobQueue is a FIFO with a soft capacity: tryPush honours the bound
// (HTTP backpressure), forcePush bypasses it (crash recovery must not
// drop previously admitted jobs).
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	maxCap int
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{maxCap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *jobQueue) tryPush(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) >= q.maxCap {
		return false
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return true
}

func (q *jobQueue) forcePush(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, j)
	q.cond.Signal()
}

// pop blocks until a job is available or ctx is cancelled.
func (q *jobQueue) pop(ctx context.Context) (*Job, bool) {
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && ctx.Err() == nil {
		q.cond.Wait()
	}
	if ctx.Err() != nil {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j, true
}

func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
