package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/obs"
)

// ErrQueueFull is returned by Submit when the bounded run queue cannot
// take another job; HTTP maps it to 429 with a Retry-After header.
var ErrQueueFull = errors.New("serve: run queue is full")

// ErrDraining is returned by Submit once a graceful shutdown has begun.
var ErrDraining = errors.New("serve: server is draining")

// ErrJobTerminal is returned by Cancel for jobs already in a terminal
// state.
var ErrJobTerminal = errors.New("serve: job is already in a terminal state")

// ErrPreempted is returned by a run function that drained at a stage
// commit because the scheduler asked for the device back (Job.Preempted).
// The scheduler requeues the job instead of failing it; the committed
// stages resume on the next attempt.
var ErrPreempted = errors.New("serve: job preempted at stage commit")

// RunFunc executes one job to completion under ctx. It returns nil on
// success; a ctx cancellation error means the job was interrupted (by
// user cancel, drain, or kill) with its committed stages resumable, and
// ErrPreempted means the job drained voluntarily at a stage commit after
// a preemption request.
type RunFunc func(ctx context.Context, j *Job) error

// SchedulerConfig parameterizes a Scheduler.
type SchedulerConfig struct {
	// Fleet is the set of simulated cards jobs lease device memory from.
	// Every job is placed on (and leases its demand from) specific fleet
	// devices before it may run.
	Fleet *gpu.Fleet
	// QueueCap bounds how many jobs may sit across all lanes; submissions
	// beyond it are rejected with ErrQueueFull.
	QueueCap int
	// MaxConcurrent bounds how many jobs run at once per device,
	// independent of device capacity (a host-side CPU/IO limit).
	MaxConcurrent int
	// NoSteal disables work stealing: an idle device then never claims
	// work queued on a loaded one. Stealing is on by default.
	NoSteal bool
	// TenantShare caps each tenant's in-flight leased device bytes at
	// this fraction of the fleet's total capacity (0 disables the cap).
	// A tenant with nothing in flight may always start one job, so a
	// small share never starves a tenant outright.
	TenantShare float64
	// Run executes one job; the server injects the real pipeline, tests
	// inject controllable stand-ins.
	Run RunFunc
	// OnTransition fires after every persistent state change, outside the
	// job lock; the server persists the record (and cleans terminal
	// workspaces) here. On a preemption or drain requeue it fires before
	// the job re-enters the lanes, so the server can sweep scratch state
	// while the job is provably not running. May be nil.
	OnTransition func(j *Job)
	// Obs carries the scheduler's logger and metrics registry; nil
	// disables both.
	Obs *obs.Observer
	// Recorder is the flight recorder lifecycle events, per-job trace
	// tracks, and SLO histograms flow through; nil (the default) disables
	// all of them.
	Recorder *FlightRecorder
}

// Scheduler is the fleet-wide admission-controlled job runner. Each
// device runs its own dispatcher goroutine pulling from that device's
// two priority lanes (interactive before batch, FIFO within a lane).
// Placement, lease accounting, and tenant fairness all happen under one
// scheduler lock, so device-memory grants are race-free by construction:
// a dispatcher only claims a job when its device has the free bytes, and
// the matching gpu.Device allocation can then never fail.
//
// An idle dispatcher with free memory steals eligible work from its
// peers' lanes (most-loaded peer first). When an interactive job fits a
// device's capacity but not its current free bytes, the dispatcher asks
// running batch jobs on that device to drain at their next stage commit
// (preemption); the drained job requeues with its committed stages
// resumable and the interactive job takes the freed lease.
type Scheduler struct {
	cfg    SchedulerConfig
	ctx    context.Context
	stop   context.CancelFunc
	wg     sync.WaitGroup // dispatchers + running jobs
	killed atomic.Bool
	drain  atomic.Bool

	// qmu guards the lanes, per-device lease ledgers, tenant accounting,
	// and the running-job index; qcond wakes dispatchers when any of them
	// change.
	qmu         sync.Mutex
	qcond       *sync.Cond
	lanes       []deviceLanes // per device
	queuedTotal int
	leased      []int64            // per device: bytes claimed by admitted jobs
	tenantInUse map[string]int64   // in-flight leased bytes per tenant
	runningByID map[string]*runRef // running jobs, for preemption targeting

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // registration order, for listing

	// service-time window for the adaptive Retry-After estimate.
	svcMu    sync.Mutex
	svcTimes []time.Duration // ring buffer of recent run durations
	svcNext  int
	svcFull  bool

	queueDepth   *obs.Gauge
	runningG     *obs.Gauge
	retryAfterG  *obs.Gauge
	devInUse     []*obs.Gauge
	devQueued    []*obs.Gauge
	admitted     *obs.Counter
	rejected     *obs.Counter
	succeeded    *obs.Counter
	failed       *obs.Counter
	canceledC    *obs.Counter
	stealsC      *obs.Counter
	preemptionsC *obs.Counter
	queueWaitMs  *obs.Histogram
	running      atomic.Int64
}

// laneCount and the lane indices: lane 0 is served strictly before
// lane 1 on every dispatch decision.
const (
	laneInteractive = 0
	laneBatch       = 1
	laneCount       = 2
)

// deviceLanes holds one device's queued jobs, highest priority first.
type deviceLanes [laneCount][]*Job

func laneIndex(priority string) int {
	if priority == PriorityInteractive {
		return laneInteractive
	}
	return laneBatch
}

// runRef tracks one running attempt for preemption targeting and lease
// release.
type runRef struct {
	j       *Job
	devices []int
	demand  int64 // per-device lease
	lane    int
	started time.Time
	leases  []*gpu.Allocation
}

// NewScheduler builds a scheduler and starts one dispatcher per fleet
// device.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if cfg.Fleet == nil || cfg.Fleet.Size() == 0 {
		return nil, fmt.Errorf("serve: scheduler needs a device fleet")
	}
	if cfg.Run == nil {
		return nil, fmt.Errorf("serve: scheduler needs a run function")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.TenantShare < 0 || cfg.TenantShare > 1 {
		return nil, fmt.Errorf("serve: TenantShare %v outside [0,1]", cfg.TenantShare)
	}
	ctx, stop := context.WithCancel(context.Background())
	m := cfg.Obs.Metrics()
	n := cfg.Fleet.Size()
	s := &Scheduler{
		cfg:          cfg,
		ctx:          ctx,
		stop:         stop,
		lanes:        make([]deviceLanes, n),
		leased:       make([]int64, n),
		tenantInUse:  make(map[string]int64),
		runningByID:  make(map[string]*runRef),
		jobs:         make(map[string]*Job),
		svcTimes:     make([]time.Duration, 32),
		queueDepth:   m.Gauge("serve.queue_depth"),
		runningG:     m.Gauge("serve.jobs_running"),
		retryAfterG:  m.Gauge("serve.retry_after_ms"),
		admitted:     m.Counter("serve.jobs_admitted"),
		rejected:     m.Counter("serve.jobs_rejected"),
		succeeded:    m.Counter("serve.jobs_succeeded"),
		failed:       m.Counter("serve.jobs_failed"),
		canceledC:    m.Counter("serve.jobs_canceled"),
		stealsC:      m.Counter("fleet.steals"),
		preemptionsC: m.Counter("fleet.preemptions"),
		queueWaitMs:  m.Histogram("serve.queue_wait_ms", 1, 10, 100, 1e3, 10e3, 60e3),
	}
	s.qcond = sync.NewCond(&s.qmu)
	s.devInUse = make([]*obs.Gauge, n)
	s.devQueued = make([]*obs.Gauge, n)
	for d := 0; d < n; d++ {
		s.devInUse[d] = m.Gauge(fmt.Sprintf("fleet.device_inuse_bytes{device=%q}", fmt.Sprint(d)))
		s.devQueued[d] = m.Gauge(fmt.Sprintf("fleet.device_queued{device=%q}", fmt.Sprint(d)))
	}
	for d := 0; d < n; d++ {
		s.wg.Add(1)
		go s.dispatch(d)
	}
	return s, nil
}

// Fleet exposes the device inventory.
func (s *Scheduler) Fleet() *gpu.Fleet { return s.cfg.Fleet }

// Register adds a job to the scheduler's index without queueing it; used
// for terminal jobs reloaded at startup so they stay listable.
func (s *Scheduler) Register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := j.Record().ID
	if _, ok := s.jobs[id]; !ok {
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
}

// placeable reports whether the fleet can ever run a job of this shape:
// an unsharded job must fit on some device; a sharded job needs Shards
// distinct devices that each fit the per-shard demand.
func (s *Scheduler) placeable(rec Record) error {
	demand := rec.DeviceDemandBytes
	if demand <= 0 {
		return fmt.Errorf("serve: job %s declares no device demand", rec.ID)
	}
	shards := rec.Params.ShardCount()
	if fit := s.cfg.Fleet.FitCount(demand); fit < shards {
		return fmt.Errorf("serve: job %s needs %d device(s) with %d bytes free, fleet has %d that large",
			rec.ID, shards, demand, fit)
	}
	return nil
}

// Submit queues a new job, honouring the queue bound. The job must carry
// a positive DeviceDemandBytes placeable on the fleet.
func (s *Scheduler) Submit(j *Job) error {
	if s.drain.Load() {
		return ErrDraining
	}
	rec := j.Record()
	if err := s.placeable(rec); err != nil {
		return err
	}
	s.attachFlight(j)
	s.Register(j)
	j.Update(func(r *Record) { r.State = StateQueued })
	if err := s.enqueue(j, false); err != nil {
		s.unregister(rec.ID)
		s.rejected.Add(1)
		return err
	}
	s.admitted.Add(1)
	s.notify(j)
	return nil
}

// Recover force-queues a job reloaded from disk at startup, bypassing the
// queue bound — recovered jobs were admitted by a previous server
// incarnation and must not be dropped.
func (s *Scheduler) Recover(j *Job) {
	s.attachFlight(j)
	s.Register(j)
	j.Update(func(r *Record) { r.State = StateQueued })
	s.enqueue(j, true)
	s.notify(j)
}

// attachFlight arms the job's flight trace when the recorder is on: a
// fresh tracer with the scheduler and per-device lifecycle tracks named,
// which the run later also feeds its pipeline spans into.
func (s *Scheduler) attachFlight(j *Job) {
	if s.cfg.Recorder == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.tracer != nil {
		return
	}
	tr := obs.NewTracer()
	tr.NameProcess(flightSchedulerPid, "scheduler")
	for d := 0; d < s.cfg.Fleet.Size(); d++ {
		tr.NameProcess(int64(flightDevicePidBase+d),
			fmt.Sprintf("device%02d %s", d, s.cfg.Fleet.Device(d).Spec().Name))
	}
	j.tracer = tr
}

// enqueue places the job on its home device's lane: the device with the
// smallest committed load (leased bytes plus already-queued demand) among
// those large enough. force bypasses the queue cap (crash recovery).
func (s *Scheduler) enqueue(j *Job, force bool) error {
	rec := j.Record()
	demand := rec.DeviceDemandBytes
	lane := laneIndex(rec.Params.Lane())
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if !force && s.queuedTotal >= s.cfg.QueueCap {
		return ErrQueueFull
	}
	home := s.pickHomeLocked(demand)
	j.mu.Lock()
	j.enqueuedAt = time.Now()
	j.mu.Unlock()
	j.Update(func(r *Record) { r.Devices = nil })
	s.lanes[home][lane] = append(s.lanes[home][lane], j)
	s.queuedTotal++
	s.cfg.Recorder.Emit(j, EventEnqueue, map[string]any{
		"device": home, "lane": rec.Params.Lane(), "tenant": rec.Params.Tenant,
		"demandBytes": demand})
	s.preemptScanLocked(j)
	s.publishQueueGaugesLocked()
	s.qcond.Broadcast()
	return nil
}

// requeueFront puts a preempted or drained job back at the head of its
// lane on a freshly chosen home device, so it resumes as soon as capacity
// frees without losing its place to later arrivals.
func (s *Scheduler) requeueFront(j *Job) {
	demand := j.Record().DeviceDemandBytes
	lane := laneIndex(j.Record().Params.Lane())
	s.qmu.Lock()
	defer s.qmu.Unlock()
	home := s.pickHomeLocked(demand)
	j.mu.Lock()
	j.enqueuedAt = time.Now()
	j.mu.Unlock()
	j.Update(func(r *Record) { r.Devices = nil })
	s.lanes[home][lane] = append([]*Job{j}, s.lanes[home][lane]...)
	s.queuedTotal++
	s.cfg.Recorder.Emit(j, EventRequeue, map[string]any{
		"device": home, "reason": j.peekRequeueReason()})
	s.preemptScanLocked(j)
	s.publishQueueGaugesLocked()
	s.qcond.Broadcast()
}

// preemptScanLocked fires when a job enters a lane: if it is interactive
// and no set of devices can currently host it (free-bytes-wise) even
// though the fleet could capacity-wise, running batch jobs on the
// candidate devices are asked to drain. This is the trigger that works
// even when every dispatcher slot is occupied — a dispatcher parked on
// its concurrency semaphore never scans the queue, so the enqueue itself
// must start the drain that will eventually free its slot.
func (s *Scheduler) preemptScanLocked(j *Job) {
	rec := j.Record()
	if laneIndex(rec.Params.Lane()) != laneInteractive {
		return
	}
	demand := rec.DeviceDemandBytes
	shards := rec.Params.ShardCount()
	freeNow := 0
	for d := 0; d < s.cfg.Fleet.Size(); d++ {
		if c := s.cfg.Fleet.Device(d).Capacity(); c >= demand && c-s.leased[d] >= demand {
			freeNow++
		}
	}
	if freeNow >= shards {
		return // placeable already; a dispatcher will pick it up
	}
	need := shards - freeNow
	for d := 0; d < s.cfg.Fleet.Size() && need > 0; d++ {
		c := s.cfg.Fleet.Device(d).Capacity()
		if c < demand || c-s.leased[d] >= demand {
			continue
		}
		s.preemptForLocked(d, demand)
		need--
	}
}

// pickHomeLocked returns the least-loaded device that can ever fit a
// demand of the given size, measured by leased plus queued bytes.
// Heterogeneous fleets therefore route big jobs to big cards and keep
// small jobs off them when smaller cards are idle.
func (s *Scheduler) pickHomeLocked(demand int64) int {
	best, bestLoad := -1, int64(0)
	for d := 0; d < s.cfg.Fleet.Size(); d++ {
		if s.cfg.Fleet.Device(d).Capacity() < demand {
			continue
		}
		load := s.leased[d]
		for lane := 0; lane < laneCount; lane++ {
			for _, q := range s.lanes[d][lane] {
				load += q.Record().DeviceDemandBytes
			}
		}
		if best == -1 || load < bestLoad {
			best, bestLoad = d, load
		}
	}
	if best == -1 {
		best = 0 // placeable() vetted the shape; sharded jobs place lazily
	}
	return best
}

// publishQueueGaugesLocked refreshes the queue-depth gauges.
func (s *Scheduler) publishQueueGaugesLocked() {
	s.queueDepth.Set(int64(s.queuedTotal))
	for d := range s.lanes {
		n := 0
		for lane := 0; lane < laneCount; lane++ {
			n += len(s.lanes[d][lane])
		}
		s.devQueued[d].Set(int64(n))
	}
}

// unregister drops a job that was never admitted (queue-full rejection).
func (s *Scheduler) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, x := range s.order {
		if x == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Get returns the job with the given ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in registration order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueDepth returns how many jobs are waiting across all lanes.
func (s *Scheduler) QueueDepth() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.queuedTotal
}

// Running returns how many jobs are currently executing.
func (s *Scheduler) Running() int { return int(s.running.Load()) }

// recordServiceTime folds a finished run's duration into the adaptive
// Retry-After window.
func (s *Scheduler) recordServiceTime(d time.Duration) {
	s.svcMu.Lock()
	s.svcTimes[s.svcNext] = d
	s.svcNext++
	if s.svcNext == len(s.svcTimes) {
		s.svcNext = 0
		s.svcFull = true
	}
	s.svcMu.Unlock()
}

// meanServiceTime returns the mean of the recent-service window, or 0
// when no job has finished yet.
func (s *Scheduler) meanServiceTime() time.Duration {
	s.svcMu.Lock()
	defer s.svcMu.Unlock()
	n := s.svcNext
	if s.svcFull {
		n = len(s.svcTimes)
	}
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.svcTimes[i]
	}
	return sum / time.Duration(n)
}

// EstimateRetryAfter predicts how long a rejected submission should wait
// before retrying: the current backlog (queued plus one) divided by the
// fleet's run-slot count, times the recent mean job service time. floor
// is returned when no service history exists yet; the estimate is also
// never below it. The estimate is published on the serve.retry_after_ms
// gauge.
func (s *Scheduler) EstimateRetryAfter(floor time.Duration) time.Duration {
	mean := s.meanServiceTime()
	est := floor
	if mean > 0 {
		slots := s.cfg.Fleet.Size() * s.cfg.MaxConcurrent
		waves := (s.QueueDepth() + 1 + slots - 1) / slots
		est = time.Duration(waves) * mean
		if est < floor {
			est = floor
		}
	}
	s.retryAfterG.Set(est.Milliseconds())
	return est
}

// Cancel requests cancellation of a job. A queued job transitions to
// canceled immediately; a running job has its context cancelled and
// reaches canceled when the pipeline unwinds. Cancelling a terminal job
// returns ErrJobTerminal.
func (s *Scheduler) Cancel(id string) (Record, error) {
	j, ok := s.Get(id)
	if !ok {
		return Record{}, fmt.Errorf("serve: unknown job %s", id)
	}
	j.mu.Lock()
	switch {
	case j.rec.State.Terminal():
		rec := j.rec.clone()
		j.mu.Unlock()
		return rec, ErrJobTerminal
	case j.rec.State == StateRunning:
		j.cancelRequested = true
		cancel := j.cancel
		rec := j.rec.clone()
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return rec, nil
	default: // submitted or queued (possibly mid-dispatch)
		j.cancelRequested = true
		now := time.Now()
		j.rec.State = StateCanceled
		j.rec.FinishedAt = &now
		cancel := j.cancel
		rec := j.rec.clone()
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		s.dropQueued(j)
		s.canceledC.Add(1)
		s.cfg.Recorder.Emit(j, EventTerminal, map[string]any{
			"outcome": string(StateCanceled), "whileQueued": true})
		s.notify(j)
		return rec, nil
	}
}

// Preempt asks a running job to drain at its next stage commit and hand
// its device leases back, exactly as a higher-priority placement would.
// The job requeues with its committed stages resumable. Exposed for
// operators and tests; scheduling-policy preemptions use the same path.
func (s *Scheduler) Preempt(id string) error {
	s.qmu.Lock()
	ref, ok := s.runningByID[id]
	s.qmu.Unlock()
	if !ok {
		return fmt.Errorf("serve: job %s is not running", id)
	}
	if ref.j.requestPreempt() {
		s.preemptionsC.Add(1)
		s.cfg.Recorder.Emit(ref.j, EventPreemptRequest, map[string]any{"operator": true})
	}
	return nil
}

// dropQueued removes a job from whatever lane it waits in (no-op when it
// is not queued, e.g. already claimed by a dispatcher).
func (s *Scheduler) dropQueued(j *Job) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for d := range s.lanes {
		for lane := 0; lane < laneCount; lane++ {
			q := s.lanes[d][lane]
			for i, x := range q {
				if x == j {
					s.lanes[d][lane] = append(q[:i], q[i+1:]...)
					s.queuedTotal--
					s.publishQueueGaugesLocked()
					return
				}
			}
		}
	}
}

// Drain begins a graceful shutdown: new submissions are rejected, the
// dispatchers stop starting jobs, running jobs are cancelled (their
// committed stages stay resumable) and persisted back to queued, and
// queued jobs simply stay queued on disk. Returns when every job
// goroutine has unwound or ctx expires.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.drain.Store(true)
	s.stop() // cancels the dispatchers and every running job's context
	s.qmu.Lock()
	s.qcond.Broadcast()
	s.qmu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// Kill simulates a crash for tests: every context is cancelled and NO
// record is persisted, leaving the on-disk state exactly as a SIGKILL
// would — running jobs still say "running". Waits for goroutines to
// unwind so tests can immediately restart a server on the same root.
func (s *Scheduler) Kill() {
	s.killed.Store(true)
	s.drain.Store(true)
	s.stop()
	s.qmu.Lock()
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.wg.Wait()
}

// claim is a dispatcher's successful placement decision, made atomically
// under qmu.
type claim struct {
	j       *Job
	devices []int // lease targets; devices[0] is the dispatching device
	lane    int
	src     int // device whose lane the job came from
	stolen  bool
	wait    time.Duration
	queued  time.Time // when the claimed job entered its lane
}

// dispatch is device d's scheduling loop: claim an eligible job (own
// lanes first, then steal), take the pre-accounted device leases, and
// start it. Claims happen entirely under the scheduler lock, so the
// gpu.Device allocations that follow can never fail and multi-device
// (sharded) leases can never deadlock.
func (s *Scheduler) dispatch(d int) {
	defer s.wg.Done()
	sem := make(chan struct{}, s.cfg.MaxConcurrent)
	for {
		select {
		case sem <- struct{}{}:
		case <-s.ctx.Done():
			return
		}
		c, ok := s.nextClaim(d)
		if !ok {
			return
		}
		if c.stolen {
			s.stealsC.Add(1)
			s.cfg.Recorder.CountSteal(c.src, d)
			s.cfg.Recorder.Emit(c.j, EventSteal, map[string]any{"src": c.src, "dst": d})
		}
		leases := make([]*gpu.Allocation, len(c.devices))
		demand := c.j.Record().DeviceDemandBytes
		for i, dev := range c.devices {
			a, err := s.cfg.Fleet.Device(dev).Alloc(demand)
			if err != nil {
				// Unreachable by construction: the claim reserved the bytes
				// under qmu and nothing else allocates on fleet devices.
				panic(fmt.Sprintf("serve: claimed lease failed on device %d: %v", dev, err))
			}
			leases[i] = a
		}
		jobCtx, cancel := context.WithCancel(s.ctx)
		c.j.mu.Lock()
		c.j.cancel = cancel
		c.j.mu.Unlock()
		if c.j.CancelRequested() {
			// Cancelled between the lane pop and the lease grant.
			s.releaseLeases(c, leases)
			cancel()
			<-sem
			continue
		}
		s.queueWaitMs.Observe(float64(c.wait.Milliseconds()))
		s.recordClaim(c)
		s.startJob(c, jobCtx, cancel, leases, sem)
	}
}

// nextClaim blocks until device d can claim an eligible job or the
// scheduler stops. Own lanes are tried before stealing; within a source,
// the interactive lane is drained before batch and FIFO order holds
// inside a lane (skipping only jobs the device cannot take yet).
func (s *Scheduler) nextClaim(d int) (claim, bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for {
		if s.ctx.Err() != nil {
			return claim{}, false
		}
		if c, ok := s.claimFromLocked(d, d, false); ok {
			return c, true
		}
		if !s.cfg.NoSteal {
			for _, peer := range s.stealOrderLocked(d) {
				if c, ok := s.claimFromLocked(d, peer, true); ok {
					return c, true
				}
			}
		}
		s.qcond.Wait()
	}
}

// stealOrderLocked lists the other devices, most-queued-bytes first, so
// an idle card relieves the most loaded peer.
func (s *Scheduler) stealOrderLocked(d int) []int {
	type loaded struct {
		dev   int
		bytes int64
	}
	peers := make([]loaded, 0, s.cfg.Fleet.Size()-1)
	for p := 0; p < s.cfg.Fleet.Size(); p++ {
		if p == d {
			continue
		}
		var qb int64
		for lane := 0; lane < laneCount; lane++ {
			for _, j := range s.lanes[p][lane] {
				qb += j.Record().DeviceDemandBytes
			}
		}
		if qb > 0 {
			peers = append(peers, loaded{p, qb})
		}
	}
	sort.Slice(peers, func(i, k int) bool {
		if peers[i].bytes != peers[k].bytes {
			return peers[i].bytes > peers[k].bytes
		}
		return peers[i].dev < peers[k].dev
	})
	order := make([]int, len(peers))
	for i, p := range peers {
		order[i] = p.dev
	}
	return order
}

// claimFromLocked tries to claim, for dispatcher d, the first eligible
// job queued on device src. It removes terminal (cancelled) jobs it
// walks past, and triggers batch preemption on d when an interactive job
// fits d's capacity but not its free bytes.
func (s *Scheduler) claimFromLocked(d, src int, stolen bool) (claim, bool) {
	for lane := 0; lane < laneCount; lane++ {
		q := s.lanes[src][lane]
		for i := 0; i < len(q); i++ {
			j := q[i]
			if j.State() != StateQueued {
				// Cancelled while queued; drop it and keep scanning.
				q = append(q[:i], q[i+1:]...)
				s.lanes[src][lane] = q
				s.queuedTotal--
				i--
				continue
			}
			rec := j.Record()
			demand := rec.DeviceDemandBytes
			shards := rec.Params.ShardCount()
			if !s.tenantEligibleLocked(rec.Params.Tenant, demand*int64(shards)) {
				continue
			}
			var devices []int
			if shards == 1 {
				if s.cfg.Fleet.Device(d).Capacity() < demand {
					continue
				}
				if s.leased[d]+demand > s.cfg.Fleet.Device(d).Capacity() {
					if lane == laneInteractive {
						s.preemptForLocked(d, demand)
					}
					continue
				}
				devices = []int{d}
			} else {
				devices = s.shardPlacementLocked(d, demand, shards)
				if devices == nil {
					if lane == laneInteractive {
						s.preemptForLocked(d, demand)
					}
					continue
				}
			}
			// Claim: reserve the bytes and take the job off its lane.
			s.lanes[src][lane] = append(q[:i], q[i+1:]...)
			s.queuedTotal--
			for _, dev := range devices {
				s.leased[dev] += demand
				s.devInUse[dev].Set(s.leased[dev])
			}
			s.tenantInUse[rec.Params.Tenant] += demand * int64(shards)
			j.mu.Lock()
			queued := j.enqueuedAt
			j.mu.Unlock()
			s.publishQueueGaugesLocked()
			return claim{j: j, devices: devices, lane: lane, src: src, stolen: stolen,
				wait: time.Since(queued), queued: queued}, true
		}
	}
	return claim{}, false
}

// tenantEligibleLocked enforces the per-tenant share of in-flight leased
// bytes. A tenant with nothing running may always start one job.
func (s *Scheduler) tenantEligibleLocked(tenant string, bytes int64) bool {
	if s.cfg.TenantShare <= 0 {
		return true
	}
	used := s.tenantInUse[tenant]
	if used == 0 {
		return true
	}
	limit := int64(s.cfg.TenantShare * float64(s.cfg.Fleet.TotalCapacity()))
	return used+bytes <= limit
}

// shardPlacementLocked picks shard-count distinct devices with free
// bytes for the per-shard demand, preferring the dispatching device and
// then the freest peers. Returns nil when the fleet cannot host all
// shards right now.
func (s *Scheduler) shardPlacementLocked(d int, demand int64, shards int) []int {
	type free struct {
		dev   int
		bytes int64
	}
	var candidates []free
	for p := 0; p < s.cfg.Fleet.Size(); p++ {
		avail := s.cfg.Fleet.Device(p).Capacity() - s.leased[p]
		if avail >= demand {
			candidates = append(candidates, free{p, avail})
		}
	}
	if len(candidates) < shards {
		return nil
	}
	sort.Slice(candidates, func(i, k int) bool {
		// The dispatching device always sorts first so the claim stays
		// anchored to the dispatcher that made it.
		if candidates[i].dev == d {
			return true
		}
		if candidates[k].dev == d {
			return false
		}
		if candidates[i].bytes != candidates[k].bytes {
			return candidates[i].bytes > candidates[k].bytes
		}
		return candidates[i].dev < candidates[k].dev
	})
	devices := make([]int, shards)
	for i := 0; i < shards; i++ {
		devices[i] = candidates[i].dev
	}
	return devices
}

// preemptForLocked asks enough running batch jobs on device d to drain at
// their next stage commit to eventually free `need` bytes for a blocked
// interactive job. Youngest batch jobs drain first (they have the least
// committed work to redo). Interactive jobs are never preempted.
func (s *Scheduler) preemptForLocked(d int, need int64) {
	avail := s.cfg.Fleet.Device(d).Capacity() - s.leased[d]
	if avail >= need {
		return
	}
	var targets []*runRef
	for _, ref := range s.runningByID {
		if ref.lane != laneBatch || ref.j.preemptRequested() {
			continue
		}
		for _, dev := range ref.devices {
			if dev == d {
				targets = append(targets, ref)
				break
			}
		}
	}
	sort.Slice(targets, func(i, k int) bool { return targets[i].started.After(targets[k].started) })
	for _, ref := range targets {
		if avail >= need {
			return
		}
		if ref.j.requestPreempt() {
			s.preemptionsC.Add(1)
			s.cfg.Recorder.Emit(ref.j, EventPreemptRequest, map[string]any{
				"device": d, "needBytes": need})
			avail += ref.demand
		}
	}
}

// releaseLeases returns a claim's reserved bytes and allocations.
func (s *Scheduler) releaseLeases(c claim, leases []*gpu.Allocation) {
	demand := c.j.Record().DeviceDemandBytes
	shards := int64(len(c.devices))
	for _, a := range leases {
		a.Free()
	}
	s.qmu.Lock()
	for _, dev := range c.devices {
		s.leased[dev] -= demand
		s.devInUse[dev].Set(s.leased[dev])
	}
	tenant := c.j.Record().Params.Tenant
	s.tenantInUse[tenant] -= demand * shards
	if s.tenantInUse[tenant] <= 0 {
		delete(s.tenantInUse, tenant)
	}
	delete(s.runningByID, c.j.Record().ID)
	s.qcond.Broadcast()
	s.qmu.Unlock()
}

// recordClaim emits the flight-recorder view of one successful claim: a
// span on the job trace's scheduler track closing the lane time (named
// for why the job was waiting), the claim (and shard-place) events, and
// the per-lane/tenant queue-wait observation.
func (s *Scheduler) recordClaim(c claim) {
	if s.cfg.Recorder == nil {
		return
	}
	rec := c.j.Record()
	gap := "queued"
	switch c.j.takeRequeueReason() {
	case "preempt":
		gap = "preempted gap"
	case "drain":
		gap = "drain gap"
	}
	c.j.Tracer().Complete(obs.Track{Pid: flightSchedulerPid}, "sched", gap,
		c.queued, c.wait, map[string]any{"devices": c.devices, "stolen": c.stolen})
	s.cfg.Recorder.Emit(c.j, EventClaim, map[string]any{
		"devices": append([]int(nil), c.devices...), "waitMs": c.wait.Milliseconds(),
		"lane": rec.Params.Lane(), "stolen": c.stolen, "attempt": rec.Attempts + 1})
	if len(c.devices) > 1 {
		s.cfg.Recorder.Emit(c.j, EventShardPlace, map[string]any{
			"devices": append([]int(nil), c.devices...)})
	}
	s.cfg.Recorder.ObserveQueueWait(rec.Params.Lane(), rec.Params.Tenant, c.wait)
}

// startJob transitions the job to running and executes it on its own
// goroutine, returning the concurrency slot and the device leases when it
// finishes.
func (s *Scheduler) startJob(c claim, ctx context.Context, cancel context.CancelFunc,
	leases []*gpu.Allocation, sem chan struct{}) {
	j := c.j
	now := time.Now()
	devices := append([]int(nil), c.devices...)
	j.Update(func(r *Record) {
		r.State = StateRunning
		r.StartedAt = &now
		r.Attempts++
		r.Error = ""
		r.Devices = devices
	})
	ref := &runRef{j: j, devices: c.devices, demand: j.Record().DeviceDemandBytes,
		lane: c.lane, started: now, leases: leases}
	s.qmu.Lock()
	s.runningByID[j.Record().ID] = ref
	s.qmu.Unlock()
	s.running.Add(1)
	s.runningG.Set(s.running.Load())
	s.notify(j)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() { <-sem }()
		defer cancel()
		err := s.cfg.Run(ctx, j)
		runWall := time.Since(now)
		s.releaseLeases(c, leases)
		s.running.Add(-1)
		s.runningG.Set(s.running.Load())
		s.traceRun(j, c.devices, now, runWall, err)
		s.finish(j, c.wait, runWall, err)
	}()
}

// traceRun drops a per-device span for the finished attempt on the
// fleet's trace tracks (device i is pid i+1; the scheduler is pid 0).
func (s *Scheduler) traceRun(j *Job, devices []int, start time.Time, wall time.Duration, err error) {
	tr := s.cfg.Obs.Tracer()
	rec := j.Record()
	outcome := "ok"
	switch {
	case errors.Is(err, ErrPreempted):
		outcome = "preempted"
	case err != nil:
		outcome = "interrupted"
	}
	for _, d := range devices {
		tr.Complete(obs.Track{Pid: int64(d) + 1}, "job", rec.ID, start, wall,
			map[string]any{"tenant": rec.Params.Tenant, "lane": rec.Params.Lane(),
				"leaseBytes": rec.DeviceDemandBytes, "outcome": outcome})
	}
	// Mirror the attempt onto the job's own flight trace, one span per
	// leased device track, so a migrated job shows its attempts on
	// different device rows of a single Perfetto view.
	if jt := j.Tracer(); jt != nil {
		name := fmt.Sprintf("run attempt %d", rec.Attempts)
		for _, d := range devices {
			jt.Complete(obs.Track{Pid: int64(flightDevicePidBase + d)}, "sched", name,
				start, wall, map[string]any{"device": d, "outcome": outcome,
					"leaseBytes": rec.DeviceDemandBytes})
		}
	}
}

// finish settles a run's outcome into the job record.
func (s *Scheduler) finish(j *Job, wait, runWall time.Duration, err error) {
	canceledByUser := j.CancelRequested()
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	now := time.Now()
	rec := j.Record()
	switch {
	case err == nil:
		j.Update(func(r *Record) {
			r.State = StateSucceeded
			r.FinishedAt = &now
			if r.Result != nil {
				r.Result.QueueWaitMs = float64(wait.Milliseconds())
			}
		})
		s.succeeded.Add(1)
		s.recordServiceTime(runWall)
		s.cfg.Recorder.Emit(j, EventTerminal, map[string]any{
			"outcome": string(StateSucceeded), "attempts": rec.Attempts})
		s.cfg.Recorder.ObserveRun(rec.Params.Lane(), rec.Params.Tenant, runWall)
		s.cfg.Recorder.ObserveE2E(rec.Params.Lane(), rec.Params.Tenant,
			now.Sub(rec.SubmittedAt))
		s.notify(j)
	case errors.Is(err, ErrPreempted) && !canceledByUser:
		// The job drained at a stage commit to hand its leases to a
		// higher-priority claim: back to the head of the queue, committed
		// stages resumable. The transition notifies (and the server sweeps
		// scratch) BEFORE the job re-enters the lanes, so no new attempt
		// can be racing the cleanup.
		drainLatency := j.preemptLatency()
		s.cfg.Recorder.Emit(j, EventDrain, map[string]any{
			"reason": "preempt", "drainMs": drainLatency.Milliseconds()})
		s.cfg.Recorder.ObserveDrain(drainLatency)
		j.setRequeueReason("preempt")
		j.resetPreempt()
		j.Update(func(r *Record) {
			r.State = StateQueued
			r.Preemptions++
		})
		s.notify(j)
		s.requeueFront(j)
	case canceledByUser && (interrupted || errors.Is(err, ErrPreempted)):
		j.Update(func(r *Record) {
			r.State = StateCanceled
			r.FinishedAt = &now
		})
		s.canceledC.Add(1)
		s.cfg.Recorder.Emit(j, EventTerminal, map[string]any{
			"outcome": string(StateCanceled), "attempts": rec.Attempts})
		s.notify(j)
	case interrupted:
		if s.killed.Load() {
			// Crash simulation: leave the on-disk record saying "running".
			return
		}
		// Drain: the job goes back to queued on disk; the next server
		// start resumes it through the run manifest.
		s.cfg.Recorder.Emit(j, EventDrain, map[string]any{"reason": "shutdown"})
		j.setRequeueReason("drain")
		j.resetPreempt()
		j.Update(func(r *Record) { r.State = StateQueued })
		s.notify(j)
	default:
		j.Update(func(r *Record) {
			r.State = StateFailed
			r.FinishedAt = &now
			r.Error = err.Error()
		})
		s.failed.Add(1)
		s.cfg.Recorder.Emit(j, EventTerminal, map[string]any{
			"outcome": string(StateFailed), "attempts": rec.Attempts, "error": err.Error()})
		s.notify(j)
	}
}

// notify delivers a transition to the server's persistence hook.
func (s *Scheduler) notify(j *Job) {
	if s.killed.Load() {
		return
	}
	if s.cfg.OnTransition != nil {
		s.cfg.OnTransition(j)
	}
}

// DeviceState is one device's admission snapshot for health reporting.
type DeviceState struct {
	Device        int      `json:"device"`
	Card          string   `json:"card"`
	CapacityBytes int64    `json:"capacityBytes"`
	LeasedBytes   int64    `json:"leasedBytes"`
	Queued        int      `json:"queued"`
	Running       []string `json:"running,omitempty"`
}

// FleetSnapshot is the scheduler-wide admission state served by /healthz
// and folded into job listings.
type FleetSnapshot struct {
	Devices     []DeviceState `json:"devices"`
	QueueDepth  int           `json:"queueDepth"`
	JobsRunning int           `json:"jobsRunning"`
	Steals      int64         `json:"steals"`
	Preemptions int64         `json:"preemptions"`
}

// Snapshot reports the fleet's current admission state.
func (s *Scheduler) Snapshot() FleetSnapshot {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	snap := FleetSnapshot{
		QueueDepth:  s.queuedTotal,
		JobsRunning: int(s.running.Load()),
		Steals:      s.stealsC.Value(),
		Preemptions: s.preemptionsC.Value(),
	}
	for d := 0; d < s.cfg.Fleet.Size(); d++ {
		dev := s.cfg.Fleet.Device(d)
		ds := DeviceState{
			Device:        d,
			Card:          dev.Spec().Name,
			CapacityBytes: dev.Capacity(),
			LeasedBytes:   s.leased[d],
		}
		for lane := 0; lane < laneCount; lane++ {
			ds.Queued += len(s.lanes[d][lane])
		}
		for id, ref := range s.runningByID {
			for _, rd := range ref.devices {
				if rd == d {
					ds.Running = append(ds.Running, id)
					break
				}
			}
		}
		sort.Strings(ds.Running)
		snap.Devices = append(snap.Devices, ds)
	}
	return snap
}
