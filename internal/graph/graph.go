// Package graph implements LaSAGNA's greedy string graph (Sections II-A.2
// and III-C) and its path traversal (Section III-D, first stage).
//
// Vertices are read strands: read i contributes forward vertex 2i and
// reverse-complement vertex 2i+1. The graph is greedy — each vertex keeps
// at most one outgoing and one incoming edge. A candidate edge (u, v, l),
// meaning the l-suffix of u matches the l-prefix of v, is accepted iff
// neither u nor v' (the complement of v) already has an outgoing edge;
// acceptance records both (u, v, l) and the implied complementary edge
// (v', u', l) and sets both out-degree bits. Because in-degree(v) equals
// out-degree(v'), one bit-vector suffices — the same bit-vector that the
// distributed reduce phase forwards between nodes as a token.
//
// Candidates must be offered in descending overlap length (the pipeline
// processes partitions from l_max-1 down to l_min), which is what makes
// the greedy choice "keep the longest overlap per read".
package graph

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dna"
)

// NoVertex marks the absence of an out-edge.
const NoVertex = ^uint32(0)

// bget and bset wrap the error-returning bitvec accessors for the
// vectors this package sizes itself (2*numReads bits at construction,
// indexed by vertex id < 2*numReads), where out-of-range is impossible.
func bget(v *bitvec.Vector, i uint32) bool {
	set, _ := v.Get(i)
	return set
}

func bset(v *bitvec.Vector, i uint32) {
	_ = v.Set(i)
}

// Edge is one directed overlap edge: the Len-suffix of U matches the
// Len-prefix of V.
type Edge struct {
	U, V uint32
	Len  uint16
}

// Graph is the greedy string graph.
type Graph struct {
	numReads int
	out      *bitvec.Vector // out-degree bits, indexed by vertex
	next     []uint32       // out-edge target per vertex
	olen     []uint16       // out-edge overlap length per vertex
	numEdges int64
}

// New creates a graph over numReads reads (2*numReads vertices) with a
// fresh out-degree bit-vector.
func New(numReads int) *Graph {
	return NewWithVector(numReads, bitvec.New(2*numReads))
}

// NewWithVector creates a graph that uses the supplied out-degree
// bit-vector, which the distributed reduce phase passes between nodes. The
// vector must have exactly 2*numReads bits.
func NewWithVector(numReads int, out *bitvec.Vector) *Graph {
	if out.Len() != 2*numReads {
		panic(fmt.Sprintf("graph: bit-vector has %d bits, want %d", out.Len(), 2*numReads))
	}
	next := make([]uint32, 2*numReads)
	for i := range next {
		next[i] = NoVertex
	}
	return &Graph{
		numReads: numReads,
		out:      out,
		next:     next,
		olen:     make([]uint16, 2*numReads),
	}
}

// NumReads returns the number of reads.
func (g *Graph) NumReads() int { return g.numReads }

// NumVertices returns the number of vertices (2 per read).
func (g *Graph) NumVertices() int { return 2 * g.numReads }

// NumEdges returns the number of directed edges added (complementary
// edges counted).
func (g *Graph) NumEdges() int64 { return g.numEdges }

// OutVector exposes the out-degree bit-vector (the distributed token).
func (g *Graph) OutVector() *bitvec.Vector { return g.out }

// AddCandidate offers the candidate edge (u, v, l) and reports whether it
// was accepted. Self-loops (u == v) and hairpins (u == v') are rejected,
// as is any candidate whose source u or complementary source v' already
// has an outgoing edge.
func (g *Graph) AddCandidate(u, v uint32, l uint16) bool {
	if u == v || u == dna.ComplementVertex(v) {
		return false
	}
	vc := dna.ComplementVertex(v)
	if bget(g.out, u) || bget(g.out, vc) {
		return false
	}
	uc := dna.ComplementVertex(u)
	bset(g.out, u)
	bset(g.out, vc)
	g.next[u] = v
	g.olen[u] = l
	g.next[vc] = uc
	g.olen[vc] = l
	g.numEdges += 2
	return true
}

// InstallEdge records a single directed edge without the greedy checks
// and without adding the complementary edge. It exists for the
// distributed reduce: workers accept candidates under the shared
// bit-vector token (which already enforced the greedy discipline) and
// ship their disjoint edge sets to the master, which installs them
// verbatim (Section III-E.3 stores the graph as disjoint edge sets).
func (g *Graph) InstallEdge(e Edge) {
	bset(g.out, e.U)
	g.next[e.U] = e.V
	g.olen[e.U] = e.Len
	g.numEdges++
}

// OutEdge returns the out-edge of v, if any.
func (g *Graph) OutEdge(v uint32) (target uint32, overlap uint16, ok bool) {
	t := g.next[v]
	if t == NoVertex {
		return 0, 0, false
	}
	return t, g.olen[v], true
}

// HasIncoming reports whether v has an incoming edge, which by complement
// symmetry is whether v' has an outgoing one.
func (g *Graph) HasIncoming(v uint32) bool {
	return bget(g.out, dna.ComplementVertex(v))
}

// Edges returns all directed edges in vertex order; intended for tests
// and diagnostics.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for v, t := range g.next {
		if t != NoVertex {
			out = append(out, Edge{U: uint32(v), V: t, Len: g.olen[v]})
		}
	}
	return out
}

// ApproxBytes estimates the host-memory footprint of the graph, which the
// paper sizes at ~5 bytes/edge plus the bit-vector (Section III-C).
func (g *Graph) ApproxBytes() int64 {
	return 4*int64(len(g.next)) + 2*int64(len(g.olen)) + g.out.Bytes()
}

// PathStep is one read strand within a path with its overhang length: the
// number of leading bases the strand contributes to the contig (its length
// minus its overlap with the next read; the last read contributes its full
// length).
type PathStep struct {
	V        uint32
	Overhang uint16
}

// Path is a maximal unambiguous walk through the graph.
type Path []PathStep

// TraverseOptions controls path extraction.
type TraverseOptions struct {
	// IncludeSingletons emits a one-step path for every read that ended up
	// in no path at all, so the contig set covers every input read (the
	// paper assigns isolated reads overhang equal to their length).
	IncludeSingletons bool
	// BreakCycles walks residual cycles (components where every vertex
	// has both in- and out-degree) starting from an arbitrary vertex.
	BreakCycles bool
}

// Traverse extracts paths. vertexLen must return the sequence length of a
// vertex. Seeds are vertices with out-degree 1 and in-degree 0; each read
// is used at most once across all paths (a read and its complement cannot
// both be emitted, which also deduplicates every path against its own
// reverse complement).
func (g *Graph) Traverse(vertexLen func(uint32) int, opt TraverseOptions) []Path {
	visited := bitvec.New(g.numReads)
	var paths []Path

	walk := func(seed uint32) Path {
		var p Path
		cur := seed
		for {
			bset(visited, dna.ReadOfVertex(cur))
			nxt, l, ok := g.OutEdge(cur)
			if !ok || bget(visited, dna.ReadOfVertex(nxt)) {
				p = append(p, PathStep{V: cur, Overhang: uint16(vertexLen(cur))})
				return p
			}
			p = append(p, PathStep{V: cur, Overhang: uint16(vertexLen(cur) - int(l))})
			cur = nxt
		}
	}

	// Stage 1: linear paths from in-degree-0, out-degree-1 seeds.
	for v := uint32(0); v < uint32(g.NumVertices()); v++ {
		if g.next[v] == NoVertex || g.HasIncoming(v) {
			continue
		}
		if bget(visited, dna.ReadOfVertex(v)) {
			continue
		}
		paths = append(paths, walk(v))
	}
	// Stage 2: residual cycles.
	if opt.BreakCycles {
		for v := uint32(0); v < uint32(g.NumVertices()); v++ {
			if g.next[v] == NoVertex || bget(visited, dna.ReadOfVertex(v)) {
				continue
			}
			paths = append(paths, walk(v))
		}
	}
	// Stage 3: singleton reads.
	if opt.IncludeSingletons {
		for r := uint32(0); r < uint32(g.numReads); r++ {
			if bget(visited, r) {
				continue
			}
			fwd := dna.ForwardVertex(r)
			paths = append(paths, Path{{V: fwd, Overhang: uint16(vertexLen(fwd))}})
			bset(visited, r)
		}
	}
	return paths
}
