package graph

import (
	"testing"

	"repro/internal/bitvec"
)

func lenFn(n int) func(uint32) int { return func(uint32) int { return n } }

func TestAddCandidateGreedy(t *testing.T) {
	g := New(4)
	// First edge from vertex 0 wins.
	if !g.AddCandidate(0, 2, 50) {
		t.Fatal("first candidate should be accepted")
	}
	// Second out-edge from 0 rejected (greedy).
	if g.AddCandidate(0, 4, 40) {
		t.Fatal("second out-edge from same vertex should be rejected")
	}
	// Another in-edge to 2 rejected: complement 3 already has out-edge.
	if g.AddCandidate(4, 2, 40) {
		t.Fatal("second in-edge to same vertex should be rejected")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (edge + complement)", g.NumEdges())
	}
	// The complementary edge (v'=3) -> (u'=1) must exist.
	if tgt, l, ok := g.OutEdge(3); !ok || tgt != 1 || l != 50 {
		t.Errorf("complement edge = (%d,%d,%v)", tgt, l, ok)
	}
}

func TestAddCandidateRejectsSelfAndHairpin(t *testing.T) {
	g := New(2)
	if g.AddCandidate(0, 0, 10) {
		t.Error("self-loop should be rejected")
	}
	if g.AddCandidate(0, 1, 10) {
		t.Error("hairpin (u to its own complement) should be rejected")
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestInDegreeViaComplement(t *testing.T) {
	g := New(3)
	g.AddCandidate(0, 2, 30)
	if !g.HasIncoming(2) {
		t.Error("vertex 2 should have an incoming edge")
	}
	if g.HasIncoming(0) {
		t.Error("vertex 0 should have no incoming edge")
	}
	// Complement edge gives 1 an incoming edge (3 -> 1).
	if !g.HasIncoming(1) {
		t.Error("vertex 1 should have incoming via complement edge")
	}
}

func TestDescendingLengthPreference(t *testing.T) {
	// Candidates offered in descending l: the longest overlap must win.
	g := New(3)
	if !g.AddCandidate(0, 2, 90) {
		t.Fatal("long overlap rejected")
	}
	if g.AddCandidate(0, 4, 80) {
		t.Fatal("shorter overlap should lose to existing edge")
	}
	if tgt, l, _ := g.OutEdge(0); tgt != 2 || l != 90 {
		t.Errorf("out edge = (%d,%d)", tgt, l)
	}
}

func TestNewWithVectorSharedToken(t *testing.T) {
	vec := bitvec.New(6)
	g1 := NewWithVector(3, vec)
	g1.AddCandidate(0, 2, 10)
	// A second graph sharing the token sees 0 and 3 as taken.
	g2 := NewWithVector(3, vec)
	if g2.AddCandidate(0, 4, 9) {
		t.Error("shared bit-vector should block reuse of vertex 0")
	}
	if g2.AddCandidate(4, 2, 9) {
		t.Error("shared bit-vector should block a second in-edge to 2")
	}
	if !g2.AddCandidate(2, 4, 9) {
		t.Error("vertex 2 out-edge should still be free")
	}
}

func TestNewWithVectorPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong vector size")
		}
	}()
	NewWithVector(3, bitvec.New(5))
}

func TestEdgesListing(t *testing.T) {
	g := New(4)
	g.AddCandidate(0, 2, 10)
	g.AddCandidate(2, 4, 9)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("len(edges) = %d, want 4", len(edges))
	}
	want := map[Edge]bool{
		{0, 2, 10}: true, {3, 1, 10}: true,
		{2, 4, 9}: true, {5, 3, 9}: true,
	}
	for _, e := range edges {
		if !want[e] {
			t.Errorf("unexpected edge %+v", e)
		}
	}
}

func TestTraverseLinearChain(t *testing.T) {
	// Chain 0 -> 2 -> 4 with overlaps 60, 55; read length 100.
	g := New(3)
	g.AddCandidate(0, 2, 60)
	g.AddCandidate(2, 4, 55)
	paths := g.Traverse(lenFn(100), TraverseOptions{})
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1 (RC path must be deduplicated)", len(paths))
	}
	p := paths[0]
	if len(p) != 3 {
		t.Fatalf("path length = %d, want 3", len(p))
	}
	want := []PathStep{{0, 40}, {2, 45}, {4, 100}}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("step %d = %+v, want %+v", i, p[i], want[i])
		}
	}
}

func TestTraverseSkipsReverseDuplicate(t *testing.T) {
	g := New(2)
	g.AddCandidate(0, 2, 30)
	paths := g.Traverse(lenFn(50), TraverseOptions{})
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	// Either the forward (0->2) or reverse (3->1) orientation, not both.
	if paths[0][0].V != 0 && paths[0][0].V != 3 {
		t.Errorf("unexpected seed %d", paths[0][0].V)
	}
}

func TestTraverseSingletons(t *testing.T) {
	g := New(3)
	g.AddCandidate(0, 2, 30)
	paths := g.Traverse(lenFn(50), TraverseOptions{IncludeSingletons: true})
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (chain + singleton)", len(paths))
	}
	var singleton Path
	for _, p := range paths {
		if len(p) == 1 {
			singleton = p
		}
	}
	if singleton == nil || singleton[0].V != 4 || singleton[0].Overhang != 50 {
		t.Errorf("singleton = %+v", singleton)
	}
}

func TestTraverseCycle(t *testing.T) {
	// 0 -> 2 -> 4 -> 0 forms a cycle; without BreakCycles no paths, with
	// it one path covering all three reads.
	g := New(3)
	g.AddCandidate(0, 2, 10)
	g.AddCandidate(2, 4, 10)
	g.AddCandidate(4, 0, 10)
	if paths := g.Traverse(lenFn(20), TraverseOptions{}); len(paths) != 0 {
		t.Fatalf("cycle without BreakCycles: %d paths", len(paths))
	}
	paths := g.Traverse(lenFn(20), TraverseOptions{BreakCycles: true})
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Fatalf("cycle with BreakCycles: %+v", paths)
	}
	last := paths[0][len(paths[0])-1]
	if last.Overhang != 20 {
		t.Errorf("cycle terminal overhang = %d, want full length", last.Overhang)
	}
}

func TestTraverseBranchStructure(t *testing.T) {
	// Greedy insertion order: 0->2 accepted, then 4->2 rejected, 4->6
	// accepted. Result: two chains 0->2 and 4->6.
	g := New(4)
	if !g.AddCandidate(0, 2, 40) || g.AddCandidate(4, 2, 35) || !g.AddCandidate(4, 6, 30) {
		t.Fatal("unexpected acceptance pattern")
	}
	paths := g.Traverse(lenFn(60), TraverseOptions{})
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
}

func TestApproxBytes(t *testing.T) {
	g := New(100)
	if g.ApproxBytes() <= 0 {
		t.Error("ApproxBytes should be positive")
	}
}

func TestOutEdgeMissing(t *testing.T) {
	g := New(1)
	if _, _, ok := g.OutEdge(0); ok {
		t.Error("fresh vertex should have no out-edge")
	}
}
