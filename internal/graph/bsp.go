package graph

import (
	"sort"

	"repro/internal/dna"
	"repro/internal/gpu"
)

// RunSupersteps drives a bulk-synchronous computation on the device:
// step(s) runs once per superstep, strictly in order — the sequential
// execution is the barrier between supersteps — and returns the device
// traffic its grid generated (bytes moved through device memory, scalar
// operations). The device is charged once with the summed totals,
// matching how the modeled kernels batch their charges, and the totals
// are returned so streamed callers can also place them on a modeled
// timeline.
//
// Both BSP consumers route through here: the pointer-jumping traversal
// below (each doubling round is a superstep) and spmat's tiled SpGEMM
// (each row tile is a superstep). The contract — ordered supersteps, one
// aggregate kernel charge — is pinned by TestRunSuperstepsContract.
func RunSupersteps(dev *gpu.Device, supersteps int,
	step func(s int) (memBytes, ops int64)) (memBytes, ops int64) {
	for s := 0; s < supersteps; s++ {
		m, o := step(s)
		memBytes += m
		ops += o
	}
	dev.ChargeKernel(memBytes, ops)
	return memBytes, ops
}

// TraverseParallel extracts the same linear paths as Traverse but with a
// bulk-synchronous pointer-jumping computation — the paper's future-work
// item "processing the string graph in parallel using a bulk-synchronous
// processing model" (Section IV-D). Every vertex learns its chain's
// terminal vertex and its distance to it in O(log n) doubling rounds (a
// device-friendly list ranking); paths are then materialized by direct
// indexing instead of sequential walking.
//
// Residual cycles have no terminal and are skipped (the sequential
// Traverse with BreakCycles covers them); singleton emission matches
// TraverseOptions.IncludeSingletons. Paths are returned in seed-vertex
// order, which is the same order the sequential traversal discovers them
// in, so outputs are interchangeable. One pathological divergence: a
// chain that visits both strands of the same read is truncated at the
// revisit by the sequential walk but emitted whole here; such chains
// require palindromic overlap structures that shotgun data essentially
// never produces.
func (g *Graph) TraverseParallel(dev *gpu.Device, vertexLen func(uint32) int,
	opt TraverseOptions) []Path {
	n := g.NumVertices()
	jump := make([]uint32, n)
	dist := make([]uint32, n)
	for v := 0; v < n; v++ {
		if t := g.next[v]; t != NoVertex {
			jump[v] = t
			dist[v] = 1
		} else {
			jump[v] = uint32(v)
		}
	}
	// Pointer doubling: after k rounds, jump[v] is 2^k steps ahead (or
	// the terminal). Double buffering mirrors the barrier between BSP
	// supersteps. Cycles never converge to a fixed point; rounds are
	// bounded by log2(n)+1, after which any vertex still moving is on a
	// cycle.
	rounds := 1
	for size := 1; size < n; size *= 2 {
		rounds++
	}
	nextJump := make([]uint32, n)
	nextDist := make([]uint32, n)
	RunSupersteps(dev, rounds, func(int) (int64, int64) {
		for v := 0; v < n; v++ {
			j := jump[v]
			nextJump[v] = jump[j]
			nextDist[v] = dist[v] + dist[j]
		}
		jump, nextJump = nextJump, jump
		dist, nextDist = nextDist, dist
		return int64(n) * 16, int64(n)
	})

	// Seeds: out-degree 1, in-degree 0 (as in the sequential traversal).
	type chain struct {
		seed uint32
		len  int
	}
	var chains []chain
	for v := uint32(0); v < uint32(n); v++ {
		if g.next[v] == NoVertex || g.HasIncoming(v) {
			continue
		}
		term := jump[v]
		if g.next[term] != NoVertex {
			continue // still moving: v leads into a cycle (rho shape)
		}
		// Deduplicate against the reverse-complement mirror chain, whose
		// seed is the complement of this chain's terminal: keep the
		// orientation with the smaller seed, matching the order the
		// sequential traversal (ascending vertex scan) would emit.
		mirror := dna.ComplementVertex(term)
		if mirror < v {
			continue
		}
		chains = append(chains, chain{seed: v, len: int(dist[v]) + 1})
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].seed < chains[j].seed })

	// Materialize each path by direct placement: vertex v sits at offset
	// len-1-dist[v] of its chain (a device scatter in the BSP model).
	pathIndex := make(map[uint32]int, len(chains)) // terminal -> chain idx
	paths := make([]Path, len(chains))
	used := make([]bool, g.numReads)
	for i, c := range chains {
		paths[i] = make(Path, c.len)
		pathIndex[jump[c.seed]] = i
	}
	RunSupersteps(dev, 1, func(int) (int64, int64) {
		var placed int64
		for v := uint32(0); v < uint32(n); v++ {
			term := jump[v]
			if g.next[term] != NoVertex {
				continue
			}
			idx, ok := pathIndex[term]
			if !ok {
				continue
			}
			c := chains[idx]
			pos := c.len - 1 - int(dist[v])
			if pos < 0 {
				continue // off-chain vertex sharing the terminal (tree branch)
			}
			overhang := vertexLen(v)
			if t, l, hasOut := g.OutEdge(v); hasOut && pos < c.len-1 {
				_ = t
				overhang -= int(l)
			}
			paths[idx][pos] = PathStep{V: v, Overhang: uint16(overhang)}
			used[dna.ReadOfVertex(v)] = true
			placed++
		}
		return placed * 8, placed
	})

	// Tree branches: a vertex can share a terminal with the seed chain
	// without lying on it (it merged mid-way); the pos check above drops
	// it... but vertices *between* two merging branches would collide.
	// In a greedy graph in-degree <= 1 holds, so chains are disjoint and
	// no collisions occur; validate in tests.

	if opt.IncludeSingletons {
		for r := uint32(0); r < uint32(g.numReads); r++ {
			if used[r] {
				continue
			}
			fwd := dna.ForwardVertex(r)
			if g.next[fwd] != NoVertex || g.next[fwd|1] != NoVertex {
				continue // part of a cycle, not a singleton
			}
			paths = append(paths, Path{{V: fwd, Overhang: uint16(vertexLen(fwd))}})
		}
	}
	return paths
}
