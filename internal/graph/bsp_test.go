package graph

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gpu"
)

func bspDevice() *gpu.Device { return gpu.NewDevice(gpu.K40, nil) }

// sortPaths orders paths by seed vertex for comparison.
func sortPaths(ps []Path) {
	sort.Slice(ps, func(i, j int) bool { return ps[i][0].V < ps[j][0].V })
}

func pathsEqual(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestTraverseParallelLinearChain(t *testing.T) {
	g := New(4)
	g.AddCandidate(0, 2, 60)
	g.AddCandidate(2, 4, 55)
	g.AddCandidate(4, 6, 50)
	seq := g.Traverse(lenFn(100), TraverseOptions{})
	par := g.TraverseParallel(bspDevice(), lenFn(100), TraverseOptions{})
	sortPaths(seq)
	sortPaths(par)
	if !pathsEqual(seq, par) {
		t.Fatalf("sequential %v != parallel %v", seq, par)
	}
}

func TestTraverseParallelSingletons(t *testing.T) {
	g := New(3)
	g.AddCandidate(0, 2, 30)
	seq := g.Traverse(lenFn(50), TraverseOptions{IncludeSingletons: true})
	par := g.TraverseParallel(bspDevice(), lenFn(50), TraverseOptions{IncludeSingletons: true})
	if len(seq) != len(par) {
		t.Fatalf("%d sequential paths, %d parallel", len(seq), len(par))
	}
	sortPaths(seq)
	sortPaths(par)
	if !pathsEqual(seq, par) {
		t.Fatalf("sequential %v != parallel %v", seq, par)
	}
}

func TestTraverseParallelSkipsCycles(t *testing.T) {
	g := New(3)
	g.AddCandidate(0, 2, 10)
	g.AddCandidate(2, 4, 10)
	g.AddCandidate(4, 0, 10)
	par := g.TraverseParallel(bspDevice(), lenFn(20), TraverseOptions{})
	if len(par) != 0 {
		t.Errorf("cycles should be skipped, got %v", par)
	}
	// Cycle reads are not singletons either.
	par = g.TraverseParallel(bspDevice(), lenFn(20), TraverseOptions{IncludeSingletons: true})
	if len(par) != 0 {
		t.Errorf("cycle reads must not become singletons, got %v", par)
	}
}

func TestTraverseParallelMatchesSequentialRandom(t *testing.T) {
	// Random greedy graphs from random candidate streams: both
	// traversals must produce identical path sets.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		nReads := 40 + rng.Intn(100)
		g := New(nReads)
		// Descending lengths, as the pipeline offers them.
		for l := 90; l >= 50; l -= 1 + rng.Intn(5) {
			for k := 0; k < nReads/2; k++ {
				u := uint32(rng.Intn(2 * nReads))
				v := uint32(rng.Intn(2 * nReads))
				g.AddCandidate(u, v, uint16(l))
			}
		}
		seq := g.Traverse(lenFn(100), TraverseOptions{})
		par := g.TraverseParallel(bspDevice(), lenFn(100), TraverseOptions{})
		// Random graphs may contain cycles, which the sequential version
		// only reports with BreakCycles (off here) — both skip them.
		sortPaths(seq)
		sortPaths(par)
		if !pathsEqual(seq, par) {
			t.Fatalf("trial %d: sequential and parallel traversals differ\nseq=%v\npar=%v",
				trial, seq, par)
		}
	}
}

func TestTraverseParallelChargesDevice(t *testing.T) {
	g := New(3)
	g.AddCandidate(0, 2, 30)
	dev := bspDevice()
	g.TraverseParallel(dev, lenFn(50), TraverseOptions{})
	if dev.Meter().Snapshot().DeviceOps == 0 {
		t.Error("pointer jumping should charge device work")
	}
}
