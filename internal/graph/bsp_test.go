package graph

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/gpu"
)

func bspDevice() *gpu.Device { return gpu.NewDevice(gpu.K40, nil) }

// sortPaths orders paths by seed vertex for comparison.
func sortPaths(ps []Path) {
	sort.Slice(ps, func(i, j int) bool { return ps[i][0].V < ps[j][0].V })
}

func pathsEqual(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestTraverseParallelLinearChain(t *testing.T) {
	g := New(4)
	g.AddCandidate(0, 2, 60)
	g.AddCandidate(2, 4, 55)
	g.AddCandidate(4, 6, 50)
	seq := g.Traverse(lenFn(100), TraverseOptions{})
	par := g.TraverseParallel(bspDevice(), lenFn(100), TraverseOptions{})
	sortPaths(seq)
	sortPaths(par)
	if !pathsEqual(seq, par) {
		t.Fatalf("sequential %v != parallel %v", seq, par)
	}
}

func TestTraverseParallelSingletons(t *testing.T) {
	g := New(3)
	g.AddCandidate(0, 2, 30)
	seq := g.Traverse(lenFn(50), TraverseOptions{IncludeSingletons: true})
	par := g.TraverseParallel(bspDevice(), lenFn(50), TraverseOptions{IncludeSingletons: true})
	if len(seq) != len(par) {
		t.Fatalf("%d sequential paths, %d parallel", len(seq), len(par))
	}
	sortPaths(seq)
	sortPaths(par)
	if !pathsEqual(seq, par) {
		t.Fatalf("sequential %v != parallel %v", seq, par)
	}
}

func TestTraverseParallelSkipsCycles(t *testing.T) {
	g := New(3)
	g.AddCandidate(0, 2, 10)
	g.AddCandidate(2, 4, 10)
	g.AddCandidate(4, 0, 10)
	par := g.TraverseParallel(bspDevice(), lenFn(20), TraverseOptions{})
	if len(par) != 0 {
		t.Errorf("cycles should be skipped, got %v", par)
	}
	// Cycle reads are not singletons either.
	par = g.TraverseParallel(bspDevice(), lenFn(20), TraverseOptions{IncludeSingletons: true})
	if len(par) != 0 {
		t.Errorf("cycle reads must not become singletons, got %v", par)
	}
}

func TestTraverseParallelMatchesSequentialRandom(t *testing.T) {
	// Random greedy graphs from random candidate streams: both
	// traversals must produce identical path sets.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		nReads := 40 + rng.Intn(100)
		g := New(nReads)
		// Descending lengths, as the pipeline offers them.
		for l := 90; l >= 50; l -= 1 + rng.Intn(5) {
			for k := 0; k < nReads/2; k++ {
				u := uint32(rng.Intn(2 * nReads))
				v := uint32(rng.Intn(2 * nReads))
				g.AddCandidate(u, v, uint16(l))
			}
		}
		seq := g.Traverse(lenFn(100), TraverseOptions{})
		par := g.TraverseParallel(bspDevice(), lenFn(100), TraverseOptions{})
		// Random graphs may contain cycles, which the sequential version
		// only reports with BreakCycles (off here) — both skip them.
		sortPaths(seq)
		sortPaths(par)
		if !pathsEqual(seq, par) {
			t.Fatalf("trial %d: sequential and parallel traversals differ\nseq=%v\npar=%v",
				trial, seq, par)
		}
	}
}

// chargeRecorder captures every ChargeKernel the device sees, so tests
// can pin how BSP computations batch their charges.
type chargeRecorder struct {
	mem, ops []int64
}

func (r *chargeRecorder) KernelLaunch(int, time.Time, time.Duration) {}
func (r *chargeRecorder) KernelCharge(memBytes, ops int64) {
	r.mem = append(r.mem, memBytes)
	r.ops = append(r.ops, ops)
}
func (r *chargeRecorder) AllocWaited(int64, time.Time, time.Duration) {}

// TestRunSuperstepsContract pins the BSP executor's contract: supersteps
// run strictly in order (sequential execution is the barrier), per-step
// charges are summed, and the device is charged exactly once with the
// aggregate.
func TestRunSuperstepsContract(t *testing.T) {
	rec := &chargeRecorder{}
	dev := bspDevice()
	dev.SetHooks(rec)
	var order []int
	mem, ops := RunSupersteps(dev, 4, func(s int) (int64, int64) {
		order = append(order, s)
		return int64(10 * (s + 1)), int64(s + 1)
	})
	for i, s := range order {
		if s != i {
			t.Fatalf("superstep order = %v, want ascending", order)
		}
	}
	if mem != 100 || ops != 10 {
		t.Fatalf("totals = (%d, %d), want (100, 10)", mem, ops)
	}
	if len(rec.mem) != 1 || rec.mem[0] != 100 || rec.ops[0] != 10 {
		t.Fatalf("device charges = %v/%v, want one aggregate charge of 100/10",
			rec.mem, rec.ops)
	}
	snap := dev.Meter().Snapshot()
	if snap.DeviceMemBytes != 100 || snap.DeviceOps != 10 {
		t.Fatalf("meter = %+v, want 100 device bytes / 10 ops", snap)
	}
}

// TestTraverseParallelChargeShape pins the traversal's device charges to
// the closed-form totals it had before being routed through
// RunSupersteps: rounds*n*16 + placed*8 bytes and rounds*n + placed ops,
// batched as exactly two aggregate kernel charges (doubling, placement).
func TestTraverseParallelChargeShape(t *testing.T) {
	g := New(4)
	g.AddCandidate(0, 2, 60)
	g.AddCandidate(2, 4, 55)
	g.AddCandidate(4, 6, 50)
	rec := &chargeRecorder{}
	dev := bspDevice()
	dev.SetHooks(rec)
	g.TraverseParallel(dev, lenFn(100), TraverseOptions{})

	n := int64(g.NumVertices())
	rounds := int64(1)
	for size := 1; size < int(n); size *= 2 {
		rounds++
	}
	const placed = 4 // the single chain 0->2->4->6
	if len(rec.mem) != 2 {
		t.Fatalf("kernel charges = %d, want 2 (doubling, placement)", len(rec.mem))
	}
	if rec.mem[0] != rounds*n*16 || rec.ops[0] != rounds*n {
		t.Errorf("doubling charge = (%d, %d), want (%d, %d)",
			rec.mem[0], rec.ops[0], rounds*n*16, rounds*n)
	}
	if rec.mem[1] != placed*8 || rec.ops[1] != placed {
		t.Errorf("placement charge = (%d, %d), want (%d, %d)",
			rec.mem[1], rec.ops[1], int64(placed*8), int64(placed))
	}
}

func TestTraverseParallelChargesDevice(t *testing.T) {
	g := New(3)
	g.AddCandidate(0, 2, 30)
	dev := bspDevice()
	g.TraverseParallel(dev, lenFn(50), TraverseOptions{})
	if dev.Meter().Snapshot().DeviceOps == 0 {
		t.Error("pointer jumping should charge device work")
	}
}
