package kv

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyLess(t *testing.T) {
	cases := []struct {
		a, b Key
		want bool
	}{
		{Key{0, 0}, Key{0, 0}, false},
		{Key{0, 1}, Key{0, 2}, true},
		{Key{0, 2}, Key{0, 1}, false},
		{Key{1, 0}, Key{0, ^uint64(0)}, false},
		{Key{0, ^uint64(0)}, Key{1, 0}, true},
		{Key{5, 7}, Key{5, 7}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("(%v).Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyCmpConsistentWithLess(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := Key{ah, al}, Key{bh, bl}
		c := a.Cmp(b)
		switch {
		case a.Less(b):
			return c == -1
		case b.Less(a):
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	a, b := Key{1, 2}, Key{1, 3}
	if Min(a, b) != a || Min(b, a) != a {
		t.Errorf("Min(%v,%v) wrong", a, b)
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Errorf("Max(%v,%v) wrong", a, b)
	}
	if Min(a, a) != a || Max(a, a) != a {
		t.Error("Min/Max of equal keys should return that key")
	}
}

func TestPairEncodeDecodeRoundTrip(t *testing.T) {
	f := func(hi, lo uint64, val uint32) bool {
		p := Pair{Key{hi, lo}, val}
		var buf [PairBytes]byte
		p.Encode(buf[:])
		return DecodePair(buf[:]) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairLessTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := make([]Pair, 200)
	for i := range ps {
		ps[i] = Pair{Key{rng.Uint64() % 4, rng.Uint64() % 4}, uint32(rng.Intn(4))}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
	for i := 1; i < len(ps); i++ {
		if ps[i].Less(ps[i-1]) {
			t.Fatalf("not sorted at %d: %v before %v", i, ps[i-1], ps[i])
		}
	}
	if !SortedPairs(ps) {
		t.Error("SortedPairs should report true for key-sorted slice")
	}
}

func TestSortedPairsDetectsDisorder(t *testing.T) {
	ps := []Pair{{Key{2, 0}, 0}, {Key{1, 0}, 0}}
	if SortedPairs(ps) {
		t.Error("SortedPairs should report false")
	}
	if !SortedPairs(nil) || !SortedPairs(ps[:1]) {
		t.Error("SortedPairs should be true for empty and singleton slices")
	}
}

func TestBoundsAgainstSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := make([]Pair, 500)
	for i := range ps {
		ps[i] = Pair{Key{0, rng.Uint64() % 64}, uint32(i)}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
	for probe := uint64(0); probe < 70; probe++ {
		k := Key{0, probe}
		wantLB := sort.Search(len(ps), func(i int) bool { return !ps[i].Key.Less(k) })
		wantUB := sort.Search(len(ps), func(i int) bool { return k.Less(ps[i].Key) })
		if got := LowerBound(ps, k); got != wantLB {
			t.Errorf("LowerBound(%v) = %d, want %d", k, got, wantLB)
		}
		if got := UpperBound(ps, k); got != wantUB {
			t.Errorf("UpperBound(%v) = %d, want %d", k, got, wantUB)
		}
	}
}

func TestBoundsCountOccurrences(t *testing.T) {
	// The reduce phase counts occurrences as upper-bound minus lower-bound
	// (Section III-C); verify that identity on a multiset.
	ps := []Pair{
		{Key{0, 1}, 0}, {Key{0, 3}, 1}, {Key{0, 3}, 2}, {Key{0, 3}, 3}, {Key{0, 9}, 4},
	}
	if n := UpperBound(ps, Key{0, 3}) - LowerBound(ps, Key{0, 3}); n != 3 {
		t.Errorf("count of {0,3} = %d, want 3", n)
	}
	if n := UpperBound(ps, Key{0, 5}) - LowerBound(ps, Key{0, 5}); n != 0 {
		t.Errorf("count of absent key = %d, want 0", n)
	}
	if lb := LowerBound(ps, Key{0, 3}); lb != 1 {
		t.Errorf("first occurrence index = %d, want 1", lb)
	}
}
