// Package kv defines the key-value pair type that flows through the whole
// LaSAGNA pipeline: a 128-bit Rabin-Karp fingerprint key paired with a
// 32-bit read (vertex) identifier.
//
// The paper (Section IV-B) uses 128-bit fingerprints, built from two
// independent 64-bit rolling hashes with different radixes and primes,
// because that was observed to yield zero false-positive edges across all
// evaluated datasets. Pairs are serialized to disk in a fixed-width 20-byte
// little-endian layout so that partition files can be streamed, windowed,
// and merged without any framing overhead.
package kv

import "encoding/binary"

// Key is a 128-bit fingerprint. Hi holds the most significant 64 bits for
// comparison purposes; the two halves come from two independent rolling
// hashes (see internal/fingerprint).
type Key struct {
	Hi uint64
	Lo uint64
}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.Hi != o.Hi {
		return k.Hi < o.Hi
	}
	return k.Lo < o.Lo
}

// Cmp returns -1, 0, or +1 according to the order of k relative to o.
func (k Key) Cmp(o Key) int {
	switch {
	case k.Hi < o.Hi:
		return -1
	case k.Hi > o.Hi:
		return 1
	case k.Lo < o.Lo:
		return -1
	case k.Lo > o.Lo:
		return 1
	default:
		return 0
	}
}

// Min returns the smaller of two keys.
func Min(a, b Key) Key {
	if b.Less(a) {
		return b
	}
	return a
}

// Max returns the larger of two keys.
func Max(a, b Key) Key {
	if a.Less(b) {
		return b
	}
	return a
}

// Pair couples a fingerprint with the vertex ID of the read (or reverse
// complement) it was generated from. A forward read i maps to vertex 2i and
// its Watson-Crick complement to 2i+1 (see internal/dna).
type Pair struct {
	Key Key
	Val uint32
}

// Less orders pairs by key, breaking ties by value so that sorting is total
// and deterministic.
func (p Pair) Less(o Pair) bool {
	if c := p.Key.Cmp(o.Key); c != 0 {
		return c < 0
	}
	return p.Val < o.Val
}

// PairBytes is the fixed on-disk size of an encoded Pair.
const PairBytes = 20

// Encode writes p into buf, which must be at least PairBytes long.
func (p Pair) Encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:8], p.Key.Hi)
	binary.LittleEndian.PutUint64(buf[8:16], p.Key.Lo)
	binary.LittleEndian.PutUint32(buf[16:20], p.Val)
}

// DecodePair reads a Pair from buf, which must be at least PairBytes long.
func DecodePair(buf []byte) Pair {
	return Pair{
		Key: Key{
			Hi: binary.LittleEndian.Uint64(buf[0:8]),
			Lo: binary.LittleEndian.Uint64(buf[8:16]),
		},
		Val: binary.LittleEndian.Uint32(buf[16:20]),
	}
}

// SortedPairs reports whether ps is in non-decreasing key order.
func SortedPairs(ps []Pair) bool {
	for i := 1; i < len(ps); i++ {
		if ps[i].Key.Less(ps[i-1].Key) {
			return false
		}
	}
	return true
}

// LowerBound returns the index of the first pair in the sorted slice ps
// whose key is not less than k. It mirrors the lower-bound definition in
// Algorithm 2 of the paper.
func LowerBound(ps []Pair, k Key) int {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid].Key.Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the index of the first pair in the sorted slice ps
// whose key is strictly greater than k (the upper-bound of Algorithm 1).
func UpperBound(ps []Pair, k Key) int {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if k.Less(ps[mid].Key) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
