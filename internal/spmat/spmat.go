// Package spmat implements the sparse-matrix graph backend: the string
// graph as a CSR boolean/weighted adjacency matrix, transitive reduction
// as a masked SpGEMM (A·A two-hop products filtered against A's own
// entries), selectable per run via core.Config.GraphBackend.
//
// Guidi et al. (arXiv:2010.10055) observe that overlap detection and
// transitive reduction are naturally sparse-matrix operations; this
// package follows that layout so the reduction can be metered as batched
// device kernels (tiled row blocks, H2D/D2H transfers) instead of the
// pointer-chasing sweep sgraph performs.
//
// Contract with the sgraph path (see DESIGN.md, "Sparse-matrix graph
// backend"): the masked SpGEMM removes a superset of the edges Myers'
// sweep removes — Myers skips witness chains whose first hop was itself
// eliminated, the matrix product does not — while preserving
// reachability, because an edge is only masked when a two-hop chain with
// strictly positive overhangs spells the same placement.
package spmat

import (
	"fmt"
	"sort"

	"repro/internal/dna"
)

// Edge is one directed overlap edge — a COO triple: the Len-suffix of
// vertex U matches the Len-prefix of vertex V.
type Edge struct {
	U, V uint32
	Len  uint16
}

// Matrix is a CSR adjacency matrix over the 2*numReads string-graph
// vertices: entry (u, v) holds the overlap length of edge u->v. Column
// indices are strictly increasing within each row, which makes entry
// lookup a binary search and the serialized edge order deterministic.
type Matrix struct {
	n      int
	rowPtr []int64
	col    []uint32
	val    []uint16
}

// NumVertices returns the matrix dimension (2*numReads).
func (m *Matrix) NumVertices() int { return m.n }

// NNZ returns the number of stored entries (directed edges).
func (m *Matrix) NNZ() int64 { return int64(len(m.col)) }

// Row returns the column indices and overlap lengths of row u.
func (m *Matrix) Row(u uint32) ([]uint32, []uint16) {
	lo, hi := m.rowPtr[u], m.rowPtr[u+1]
	return m.col[lo:hi], m.val[lo:hi]
}

// find returns the nz index of entry (u, v), or -1.
func (m *Matrix) find(u, v uint32) int64 {
	lo, hi := m.rowPtr[u], m.rowPtr[u+1]
	cols := m.col[lo:hi]
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= v })
	if i < len(cols) && cols[i] == v {
		return lo + int64(i)
	}
	return -1
}

// Edges streams every entry in CSR order: (u, v) ascending.
func (m *Matrix) Edges(fn func(Edge)) {
	for u := 0; u < m.n; u++ {
		for i := m.rowPtr[u]; i < m.rowPtr[u+1]; i++ {
			fn(Edge{U: uint32(u), V: m.col[i], Len: m.val[i]})
		}
	}
}

// Bytes is the matrix's serialized device footprint: 8 bytes per row
// pointer plus 6 per entry (column + length). Transfer and kernel
// metering use it, so it must be a pure function of the structure.
func (m *Matrix) Bytes() int64 {
	return 8*int64(len(m.rowPtr)) + 6*int64(len(m.col))
}

// ApproxBytes estimates the host-memory footprint.
func (m *Matrix) ApproxBytes() int64 {
	return 8*int64(cap(m.rowPtr)) + 4*int64(cap(m.col)) + 2*int64(cap(m.val))
}

// Builder accumulates COO triples and packs them into a CSR Matrix. The
// result depends only on the set of overlaps offered, not their order:
// Build sorts by coordinates and dedupes with the same keep-the-longest
// rule as sgraph.Graph.AddOverlap.
type Builder struct {
	numReads int
	edges    []Edge
}

// NewBuilder creates a builder for a graph over 2*numReads vertices.
func NewBuilder(numReads int) *Builder { return &Builder{numReads: numReads} }

// AddOverlap records the candidate overlap (u, v, l) and its complement
// (v', u', l), mirroring sgraph.Graph.AddOverlap: self-loops and
// hairpins are rejected; duplicates are resolved at Build time.
func (b *Builder) AddOverlap(u, v uint32, l uint16) bool {
	if u == v || u == dna.ComplementVertex(v) {
		return false
	}
	b.edges = append(b.edges,
		Edge{U: u, V: v, Len: l},
		Edge{U: dna.ComplementVertex(v), V: dna.ComplementVertex(u), Len: l})
	return true
}

// ApproxBytes estimates the builder's host-memory footprint.
func (b *Builder) ApproxBytes() int64 { return 10 * int64(cap(b.edges)) }

// Build sorts the accumulated triples by (U, V) and packs CSR, keeping
// the longest overlap among duplicates. Insertion order never leaks into
// the result.
func (b *Builder) Build() *Matrix {
	sort.Slice(b.edges, func(i, j int) bool {
		ei, ej := b.edges[i], b.edges[j]
		if ei.U != ej.U {
			return ei.U < ej.U
		}
		if ei.V != ej.V {
			return ei.V < ej.V
		}
		return ei.Len > ej.Len // longest first, so dedupe keeps it
	})
	m := &Matrix{n: 2 * b.numReads, rowPtr: make([]int64, 2*b.numReads+1)}
	for i, e := range b.edges {
		if i > 0 && e.U == b.edges[i-1].U && e.V == b.edges[i-1].V {
			continue
		}
		m.col = append(m.col, e.V)
		m.val = append(m.val, e.Len)
		m.rowPtr[e.U+1]++
	}
	for i := 0; i < m.n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// FromEdgeRuns builds a Matrix from a stream of edges in non-decreasing
// (U, V) order — the CSR order the pipeline persists edges.kv in. Exact
// duplicates (same U and V) dedupe deterministically, keeping the
// longest overlap. A record that regresses the order, falls outside the
// vertex range, carries a zero length, or is a self-loop is an error —
// never a panic — so a truncated or corrupted edge file fails loudly
// instead of assembling garbage.
func FromEdgeRuns(numVertices int, next func() (Edge, bool, error)) (*Matrix, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("spmat: negative vertex count %d", numVertices)
	}
	m := &Matrix{n: numVertices, rowPtr: make([]int64, numVertices+1)}
	var last Edge
	first := true
	for {
		e, ok, err := next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if int64(e.U) >= int64(numVertices) || int64(e.V) >= int64(numVertices) {
			return nil, fmt.Errorf("spmat: edge (%d->%d) out of range for %d vertices",
				e.U, e.V, numVertices)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("spmat: self-loop edge at vertex %d", e.U)
		}
		if e.Len == 0 {
			return nil, fmt.Errorf("spmat: edge (%d->%d) has zero overlap length", e.U, e.V)
		}
		if !first {
			if e.U < last.U || (e.U == last.U && e.V < last.V) {
				return nil, fmt.Errorf("spmat: edge run not sorted: (%d,%d) after (%d,%d)",
					e.U, e.V, last.U, last.V)
			}
			if e.U == last.U && e.V == last.V {
				if e.Len > m.val[len(m.val)-1] {
					m.val[len(m.val)-1] = e.Len
				}
				continue
			}
		}
		first = false
		last = e
		m.col = append(m.col, e.V)
		m.val = append(m.val, e.Len)
		m.rowPtr[e.U+1]++
	}
	for i := 0; i < numVertices; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m, nil
}
