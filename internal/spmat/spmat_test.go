package spmat

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/gpu"
	"repro/internal/sgraph"
)

func lenFn(n int) func(uint32) int { return func(uint32) int { return n } }

func testDevice() *gpu.Device { return gpu.NewDevice(gpu.K40, nil) }

func sliceIter(edges []Edge) func() (Edge, bool, error) {
	i := 0
	return func() (Edge, bool, error) {
		if i >= len(edges) {
			return Edge{}, false, nil
		}
		e := edges[i]
		i++
		return e, true, nil
	}
}

func collect(m *Matrix) []Edge {
	var out []Edge
	m.Edges(func(e Edge) { out = append(out, e) })
	return out
}

func TestBuilderMirrorsSgraphRules(t *testing.T) {
	b := NewBuilder(3)
	if b.AddOverlap(0, 0, 10) {
		t.Error("self-loop accepted")
	}
	if b.AddOverlap(0, 1, 10) {
		t.Error("hairpin accepted")
	}
	if !b.AddOverlap(0, 2, 50) {
		t.Fatal("overlap rejected")
	}
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (edge + complement)", m.NNZ())
	}
	// Complement of 0->2 is 3->1.
	cols, vals := m.Row(3)
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 50 {
		t.Errorf("complement row = %v/%v", cols, vals)
	}
}

func TestBuilderDuplicateKeepsLongest(t *testing.T) {
	b := NewBuilder(2)
	b.AddOverlap(0, 2, 30)
	b.AddOverlap(0, 2, 40)
	b.AddOverlap(0, 2, 20)
	m := b.Build()
	cols, vals := m.Row(0)
	if len(cols) != 1 || vals[0] != 40 {
		t.Errorf("row 0 = %v/%v, want single length-40 entry", cols, vals)
	}
}

func TestBuilderOrderIndependent(t *testing.T) {
	type ov struct {
		u, v uint32
		l    uint16
	}
	ovs := []ov{{0, 2, 50}, {2, 4, 60}, {0, 4, 20}, {4, 6, 30}, {0, 2, 45}}
	rng := rand.New(rand.NewSource(7))
	var want []Edge
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]ov(nil), ovs...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b := NewBuilder(4)
		for _, o := range shuffled {
			b.AddOverlap(o.u, o.v, o.l)
		}
		got := collect(b.Build())
		if trial == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: insertion order leaked into matrix:\n%v\n%v",
				trial, got, want)
		}
	}
}

func TestFromEdgeRunsRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.AddOverlap(0, 2, 50)
	b.AddOverlap(2, 4, 60)
	b.AddOverlap(4, 6, 30)
	m := b.Build()
	m2, err := FromEdgeRuns(m.NumVertices(), sliceIter(collect(m)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collect(m), collect(m2)) {
		t.Errorf("round trip changed the matrix")
	}
}

func TestFromEdgeRunsDedupesKeepMax(t *testing.T) {
	m, err := FromEdgeRuns(6, sliceIter([]Edge{
		{0, 2, 30}, {0, 2, 40}, {0, 2, 20}, {1, 3, 10},
	}))
	if err != nil {
		t.Fatal(err)
	}
	cols, vals := m.Row(0)
	if len(cols) != 1 || vals[0] != 40 {
		t.Errorf("row 0 = %v/%v, want single length-40 entry", cols, vals)
	}
	if m.NNZ() != 2 {
		t.Errorf("nnz = %d, want 2", m.NNZ())
	}
}

func TestFromEdgeRunsErrors(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"unsorted rows", 6, []Edge{{2, 0, 10}, {0, 2, 10}}},
		{"unsorted cols", 6, []Edge{{0, 4, 10}, {0, 2, 10}}},
		{"u out of range", 4, []Edge{{4, 0, 10}}},
		{"v out of range", 4, []Edge{{0, 4, 10}}},
		{"zero length", 4, []Edge{{0, 2, 0}}},
		{"self loop", 4, []Edge{{2, 2, 10}}},
	}
	for _, tc := range cases {
		if _, err := FromEdgeRuns(tc.n, sliceIter(tc.edges)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	wantErr := errors.New("stream broke")
	i := 0
	_, err := FromEdgeRuns(6, func() (Edge, bool, error) {
		if i++; i > 1 {
			return Edge{}, false, wantErr
		}
		return Edge{0, 2, 10}, true, nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("stream error not propagated: %v", err)
	}
}

// reduceAll runs TransitiveReduce with the given config defaults filled.
func reduceAll(t *testing.T, m *Matrix, cfg ReduceConfig) *Reduction {
	t.Helper()
	if cfg.Device == nil {
		cfg.Device = testDevice()
	}
	red, err := m.TransitiveReduce(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return red
}

// The sgraph_test.go triangle fixture: a->b (80), b->c (80), a->c (60)
// over length-100 reads; a->c and its complement are transitive.
func TestTransitiveReduceTriangleMatchesSgraph(t *testing.T) {
	b := NewBuilder(3)
	b.AddOverlap(0, 2, 80)
	b.AddOverlap(2, 4, 80)
	b.AddOverlap(0, 4, 60)
	red := reduceAll(t, b.Build(), ReduceConfig{VertexLen: lenFn(100)})
	if red.Removed != 2 {
		t.Fatalf("removed = %d, want 2 (a->c and complement)", red.Removed)
	}
	red.Live(func(e Edge) {
		if e.U == 0 && e.V == 4 {
			t.Error("transitive edge a->c survived")
		}
	})
}

// The sgraph_test.go inconsistent-edge fixture: overhangs 20+20 vs a
// direct overhang of 50 — kept at fuzz 0, removed at fuzz 10.
func TestTransitiveReduceFuzzMatchesSgraph(t *testing.T) {
	build := func() *Matrix {
		b := NewBuilder(3)
		b.AddOverlap(0, 2, 80)
		b.AddOverlap(2, 4, 80)
		b.AddOverlap(0, 4, 50)
		return b.Build()
	}
	if red := reduceAll(t, build(), ReduceConfig{VertexLen: lenFn(100)}); red.Removed != 0 {
		t.Fatalf("fuzz 0 removed = %d, want 0", red.Removed)
	}
	if red := reduceAll(t, build(), ReduceConfig{VertexLen: lenFn(100), Fuzz: 10}); red.Removed != 2 {
		t.Fatalf("fuzz 10 removed = %d, want 2", red.Removed)
	}
}

func TestLiveEdgesMatchesLive(t *testing.T) {
	b := NewBuilder(3)
	b.AddOverlap(0, 2, 80)
	b.AddOverlap(2, 4, 80)
	b.AddOverlap(0, 4, 60)
	red := reduceAll(t, b.Build(), ReduceConfig{VertexLen: lenFn(100)})
	var viaLive []Edge
	red.Live(func(e Edge) { viaLive = append(viaLive, e) })
	var viaIter []Edge
	next := red.LiveEdges()
	for {
		e, ok := next()
		if !ok {
			break
		}
		viaIter = append(viaIter, e)
	}
	if !reflect.DeepEqual(viaLive, viaIter) {
		t.Errorf("Live %v != LiveEdges %v", viaLive, viaIter)
	}
}

// randomOverlapMatrix builds a dense-ish consistent overlap graph plus
// noise, identically into a Builder and an sgraph.Graph.
func randomOverlapMatrix(rng *rand.Rand, numReads, vertexLen int) (*Matrix, *sgraph.Graph) {
	b := NewBuilder(numReads)
	g := sgraph.New(numReads)
	// Reads laid out at increasing genomic offsets; consistent overlaps
	// between nearby reads.
	offsets := make([]int, numReads)
	pos := 0
	for i := range offsets {
		pos += 1 + rng.Intn(vertexLen/2)
		offsets[i] = pos
	}
	for i := 0; i < numReads; i++ {
		for j := i + 1; j < numReads; j++ {
			d := offsets[j] - offsets[i]
			if d <= 0 || d >= vertexLen {
				continue
			}
			u, v := uint32(2*i), uint32(2*j)
			b.AddOverlap(u, v, uint16(vertexLen-d))
			g.AddOverlap(u, v, uint16(vertexLen-d))
		}
	}
	// Noise: repeat-like edges with lengths that need not be consistent.
	for k := 0; k < numReads; k++ {
		u := uint32(rng.Intn(2 * numReads))
		v := uint32(rng.Intn(2 * numReads))
		l := uint16(1 + rng.Intn(vertexLen-1))
		b.AddOverlap(u, v, l)
		g.AddOverlap(u, v, l)
	}
	return b.Build(), g
}

// TestReduceDeterministicAcrossStreamsAndResidency pins that streams
// on/off and in-core/out-of-core execution change neither the removal
// mask nor any cost counter except modeled overlap.
func TestReduceDeterministicAcrossStreamsAndResidency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, _ := randomOverlapMatrix(rng, 30, 100)

	type run struct {
		name    string
		ledger  *costmodel.OverlapLedger
		maxRes  int64
		counter costmodel.Counters
		removed int64
		flops   int64
	}
	// The streamed run is also out-of-core: savings come from the next
	// tile's H2D prefetch overlapping the current tile's compute, so a
	// fully resident matrix legitimately has nothing to hide.
	runs := []*run{
		{name: "plain"},
		{name: "streams", maxRes: 256,
			ledger: costmodel.NewOverlapLedger(gpu.K40.CostProfile(
				costmodel.DefaultDisk.ReadBps, costmodel.DefaultDisk.WriteBps))},
		{name: "out-of-core", maxRes: 256},
	}
	for _, r := range runs {
		dev := testDevice()
		red := reduceAll(t, m, ReduceConfig{
			Device: dev, VertexLen: lenFn(100), RowBatch: 7,
			Overlap: r.ledger, MaxResidentBytes: r.maxRes,
		})
		r.counter = dev.Meter().Snapshot()
		r.removed = red.Removed
		r.flops = red.Flops
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if r.removed != base.removed || r.flops != base.flops {
			t.Errorf("%s: removed/flops = %d/%d, want %d/%d",
				r.name, r.removed, r.flops, base.removed, base.flops)
		}
	}
	// Streams change no counter at all versus the same residency; the
	// out-of-core runs only add PCIe versus the resident one.
	if runs[1].counter != runs[2].counter {
		t.Errorf("streams changed counters: %+v vs %+v", runs[1].counter, runs[2].counter)
	}
	ooc := runs[2].counter
	if ooc.PCIeBytes <= base.counter.PCIeBytes {
		t.Errorf("out-of-core should stream more PCIe: %d vs %d",
			ooc.PCIeBytes, base.counter.PCIeBytes)
	}
	ooc.PCIeBytes = base.counter.PCIeBytes
	if ooc != base.counter {
		t.Errorf("out-of-core changed non-PCIe counters: %+v vs %+v",
			runs[2].counter, base.counter)
	}
	if runs[1].ledger.SavedSeconds() <= 0 {
		t.Errorf("streamed run saved no modeled time")
	}
}

func TestReduceChargesDevice(t *testing.T) {
	b := NewBuilder(3)
	b.AddOverlap(0, 2, 80)
	b.AddOverlap(2, 4, 80)
	b.AddOverlap(0, 4, 60)
	dev := testDevice()
	red := reduceAll(t, b.Build(), ReduceConfig{Device: dev, VertexLen: lenFn(100)})
	snap := dev.Meter().Snapshot()
	if snap.DeviceOps == 0 || snap.DeviceMemBytes == 0 {
		t.Errorf("SpGEMM charged no device work: %+v", snap)
	}
	if snap.PCIeBytes == 0 {
		t.Errorf("SpGEMM charged no transfers: %+v", snap)
	}
	if red.Flops == 0 {
		t.Error("no flops counted on a graph with products")
	}
	if dev.InUse() != 0 {
		t.Errorf("device memory leaked: %d bytes", dev.InUse())
	}
}

func TestReduceCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := randomOverlapMatrix(rng, 20, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.TransitiveReduce(ctx, ReduceConfig{
		Device: testDevice(), VertexLen: lenFn(100),
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
