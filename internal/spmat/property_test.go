package spmat

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/sgraph"
)

// closure computes the Floyd–Warshall reachability closure over the
// given directed edges. Small n only (tests).
func closure(n int, edges [][2]uint32) []bool {
	reach := make([]bool, n*n)
	for _, e := range edges {
		reach[int(e[0])*n+int(e[1])] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k*n+j] {
					reach[i*n+j] = true
				}
			}
		}
	}
	return reach
}

// TestReducePreservesReachability is the backend's core safety property:
// on random DAG-ish overlap graphs, masking transitive edges never
// changes which vertices can reach which.
func TestReducePreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		numReads := 8 + rng.Intn(25)
		vertexLen := 60 + rng.Intn(80)
		m, _ := randomOverlapMatrix(rng, numReads, vertexLen)
		fuzz := 0
		if trial%3 == 1 {
			fuzz = 1 + rng.Intn(8)
		}
		red, err := m.TransitiveReduce(context.Background(), ReduceConfig{
			Device: testDevice(), VertexLen: lenFn(vertexLen), Fuzz: fuzz,
			RowBatch: 1 + rng.Intn(16),
		})
		if err != nil {
			t.Fatal(err)
		}
		var all, live [][2]uint32
		m.Edges(func(e Edge) { all = append(all, [2]uint32{e.U, e.V}) })
		red.Live(func(e Edge) { live = append(live, [2]uint32{e.U, e.V}) })
		n := m.NumVertices()
		before, after := closure(n, all), closure(n, live)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("trial %d (fuzz %d): reachability %d->%d changed (%v -> %v), removed %d/%d",
					trial, fuzz, i/n, i%n, before[i], after[i], red.Removed, m.NNZ())
			}
		}
	}
}

// TestReduceRemovesSupersetOfSgraph pins the refinement contract: every
// edge Myers' sweep (sgraph.TransitiveReduce) removes, the SpGEMM mask
// removes too. The converse need not hold — the sweep skips witness
// chains whose first hop was already eliminated; the matrix product
// considers all chains of the original A.
func TestReduceRemovesSupersetOfSgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	sawStrict := false
	for trial := 0; trial < 25; trial++ {
		numReads := 8 + rng.Intn(25)
		vertexLen := 60 + rng.Intn(80)
		m, g := randomOverlapMatrix(rng, numReads, vertexLen)
		fuzz := 0
		if trial%3 == 2 {
			fuzz = 1 + rng.Intn(8)
		}
		sgRemoved := g.TransitiveReduce(lenFn(vertexLen), fuzz)
		red, err := m.TransitiveReduce(context.Background(), ReduceConfig{
			Device: testDevice(), VertexLen: lenFn(vertexLen), Fuzz: fuzz,
			RowBatch: 1 + rng.Intn(16),
		})
		if err != nil {
			t.Fatal(err)
		}
		if red.Removed < sgRemoved {
			t.Errorf("trial %d: spmat removed %d < sgraph removed %d",
				trial, red.Removed, sgRemoved)
		}
		if red.Removed > sgRemoved {
			sawStrict = true
		}
		liveSet := make(map[[2]uint32]bool)
		red.Live(func(e Edge) { liveSet[[2]uint32{e.U, e.V}] = true })
		for _, e := range g.ReducedEdges() {
			if liveSet[[2]uint32{e.U, e.V}] {
				t.Errorf("trial %d (fuzz %d): sgraph removed %d->%d but spmat kept it",
					trial, fuzz, e.U, e.V)
			}
		}
	}
	if !sawStrict {
		t.Log("no trial exercised the strict-superset case (all removals equal)")
	}
}

// TestReduceAgreesWithSgraphOnChains checks exact agreement on clean
// linear-chain graphs, where both reductions must remove exactly the
// skip edges and the surviving edge sets must be identical.
func TestReduceAgreesWithSgraphOnChains(t *testing.T) {
	const numReads, vertexLen = 12, 100
	b := NewBuilder(numReads)
	g := sgraph.New(numReads)
	for i := 0; i+1 < numReads; i++ {
		b.AddOverlap(uint32(2*i), uint32(2*(i+1)), 70)
		g.AddOverlap(uint32(2*i), uint32(2*(i+1)), 70)
		if i+2 < numReads {
			b.AddOverlap(uint32(2*i), uint32(2*(i+2)), 40)
			g.AddOverlap(uint32(2*i), uint32(2*(i+2)), 40)
		}
	}
	m := b.Build()
	sgRemoved := g.TransitiveReduce(lenFn(vertexLen), 0)
	red, err := m.TransitiveReduce(context.Background(), ReduceConfig{
		Device: testDevice(), VertexLen: lenFn(vertexLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	if red.Removed != sgRemoved {
		t.Fatalf("removed: spmat %d != sgraph %d", red.Removed, sgRemoved)
	}
	liveSet := make(map[[2]uint32]uint16)
	red.Live(func(e Edge) { liveSet[[2]uint32{e.U, e.V}] = e.Len })
	sgLive := g.DirectedEdges()
	if len(sgLive) != len(liveSet) {
		t.Fatalf("live edges: spmat %d != sgraph %d", len(liveSet), len(sgLive))
	}
	for _, e := range sgLive {
		if l, ok := liveSet[[2]uint32{e.U, e.V}]; !ok || l != e.Len {
			t.Errorf("edge %d->%d (len %d) mismatch in spmat live set", e.U, e.V, e.Len)
		}
	}
}
