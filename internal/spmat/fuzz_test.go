package spmat

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// decodeEdgeRecords parses data as a stream of 10-byte little-endian
// records (u uint32, v uint32, len uint16) — the fuzzer's wire format. A
// trailing partial record is ignored, mirroring how a truncated edge
// file surfaces whole records only.
func decodeEdgeRecords(data []byte) []Edge {
	var edges []Edge
	for len(data) >= 10 {
		edges = append(edges, Edge{
			U:   binary.LittleEndian.Uint32(data[0:4]),
			V:   binary.LittleEndian.Uint32(data[4:8]),
			Len: binary.LittleEndian.Uint16(data[8:10]),
		})
		data = data[10:]
	}
	return edges
}

func encodeEdgeRecords(edges []Edge) []byte {
	var buf bytes.Buffer
	for _, e := range edges {
		var rec [10]byte
		binary.LittleEndian.PutUint32(rec[0:4], e.U)
		binary.LittleEndian.PutUint32(rec[4:8], e.V)
		binary.LittleEndian.PutUint16(rec[8:10], e.Len)
		buf.Write(rec[:])
	}
	return buf.Bytes()
}

// FuzzSpmatFromEdgeRuns feeds arbitrary — well-formed, malformed,
// duplicated, unsorted, truncated — edge records into the CSR builder.
// The contract under fuzz: never panic, fail loudly (error) on any
// order/range/length violation, dedupe deterministically, and satisfy
// the CSR structural invariants on success.
func FuzzSpmatFromEdgeRuns(f *testing.F) {
	// Valid sorted run with a complement pair.
	f.Add(uint16(8), encodeEdgeRecords([]Edge{{0, 2, 50}, {3, 1, 50}, {4, 6, 30}}))
	// Duplicates that must dedupe keeping the max length.
	f.Add(uint16(8), encodeEdgeRecords([]Edge{{0, 2, 30}, {0, 2, 40}, {0, 2, 20}}))
	// Unsorted: must error.
	f.Add(uint16(8), encodeEdgeRecords([]Edge{{4, 2, 10}, {0, 2, 10}}))
	// Out of range, zero length, self loop: must error.
	f.Add(uint16(4), encodeEdgeRecords([]Edge{{9, 2, 10}}))
	f.Add(uint16(4), encodeEdgeRecords([]Edge{{0, 2, 0}}))
	f.Add(uint16(4), encodeEdgeRecords([]Edge{{2, 2, 7}}))
	// Truncated record tail.
	f.Add(uint16(8), append(encodeEdgeRecords([]Edge{{0, 2, 50}}), 0x01, 0x02, 0x03))

	f.Fuzz(func(t *testing.T, numVertices uint16, data []byte) {
		n := int(numVertices)%1024 + 1
		edges := decodeEdgeRecords(data)

		m1, err1 := FromEdgeRuns(n, sliceIter(edges))
		m2, err2 := FromEdgeRuns(n, sliceIter(edges))

		// Determinism: same input, same outcome — bit for bit.
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic error text: %q vs %q", err1, err2)
			}
			return
		}
		if !reflect.DeepEqual(collect(m1), collect(m2)) {
			t.Fatal("nondeterministic matrix from identical input")
		}

		// CSR invariants.
		if m1.NumVertices() != n {
			t.Fatalf("n = %d, want %d", m1.NumVertices(), n)
		}
		if got := m1.rowPtr[n]; got != m1.NNZ() {
			t.Fatalf("rowPtr[n] = %d, nnz = %d", got, m1.NNZ())
		}
		for u := 0; u < n; u++ {
			if m1.rowPtr[u] > m1.rowPtr[u+1] {
				t.Fatalf("rowPtr not monotone at %d", u)
			}
			cols, vals := m1.Row(uint32(u))
			for i, c := range cols {
				if int(c) >= n {
					t.Fatalf("row %d: column %d out of range", u, c)
				}
				if uint32(u) == c {
					t.Fatalf("row %d: self loop survived", u)
				}
				if vals[i] == 0 {
					t.Fatalf("row %d: zero-length entry survived", u)
				}
				if i > 0 && cols[i-1] >= c {
					t.Fatalf("row %d: columns not strictly increasing: %v", u, cols)
				}
			}
		}

		// Round trip: re-streaming the accepted matrix must reproduce it.
		m3, err := FromEdgeRuns(n, sliceIter(collect(m1)))
		if err != nil {
			t.Fatalf("round trip errored: %v", err)
		}
		if !reflect.DeepEqual(collect(m1), collect(m3)) {
			t.Fatal("round trip changed the matrix")
		}
	})
}
