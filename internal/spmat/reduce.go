package spmat

import (
	"context"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/gpu"
	"repro/internal/graph"
)

// ReduceConfig parameterizes the SpGEMM transitive-reduction pass.
type ReduceConfig struct {
	// Device is the simulated card the masked SpGEMM runs on (required).
	Device *gpu.Device
	// VertexLen supplies sequence lengths for overhang arithmetic
	// (required).
	VertexLen func(uint32) int
	// Fuzz is the overhang slack tolerated when matching a two-hop chain
	// against a direct edge, as in sgraph.Graph.TransitiveReduce.
	Fuzz int
	// RowBatch is the number of matrix rows per kernel tile (one BSP
	// superstep, one grid launch). Defaults to 4096.
	RowBatch int
	// MaxResidentBytes caps the device memory claimed for the matrix and
	// its removal mask. When the matrix exceeds the cap, each tile
	// re-streams its rows and their product neighbors over PCIe
	// (out-of-core SpGEMM). 0 means the whole matrix is resident.
	MaxResidentBytes int64
	// Overlap, when set, accounts the H2D prefetch against the compute
	// on a modeled timeline so streamed runs report makespan instead of
	// the additive sum. Counters are identical either way.
	Overlap *costmodel.OverlapLedger
}

// Reduction is the outcome of a transitive-reduction pass: the mask over
// the matrix's entries plus the metered totals.
type Reduction struct {
	m       *Matrix
	removed []bool
	// Removed counts the directed edges masked as transitive.
	Removed int64
	// Flops counts SpGEMM multiply-accumulates: one per (u->w, w->x)
	// product term examined. A pure function of the matrix structure.
	Flops int64
	// Tiles is the number of row tiles (kernel launches / supersteps).
	Tiles int
}

// Live streams the surviving (non-masked) edges in CSR order.
func (r *Reduction) Live(fn func(Edge)) {
	i := int64(0)
	r.m.Edges(func(e Edge) {
		if !r.removed[i] {
			fn(e)
		}
		i++
	})
}

// LiveEdges returns a pull-style iterator over the surviving edges in
// CSR order, the shape writeEdgeFile consumes.
func (r *Reduction) LiveEdges() func() (Edge, bool) {
	u, i := uint32(0), int64(0)
	return func() (Edge, bool) {
		for int(u) < r.m.n {
			if i >= r.m.rowPtr[u+1] {
				u++
				continue
			}
			k := i
			i++
			if r.removed[k] {
				continue
			}
			return Edge{U: u, V: r.m.col[k], Len: r.m.val[k]}, true
		}
		return Edge{}, false
	}
}

// TransitiveReduce runs the masked SpGEMM A·A pass on the device: for
// every entry (u, x), if some two-hop chain u->w->x with strictly
// positive overhangs spells the same placement (overhang sum within Fuzz
// of the direct edge's), the entry is masked as transitive.
//
// This removes a superset of the edges Myers' sweep (sgraph) removes —
// the sweep skips witness chains whose first hop was itself eliminated,
// the matrix product considers every chain of the original A — while
// preserving reachability: a masked edge is always spelled by two
// surviving-or-masked edges with strictly smaller overhangs, so
// induction on overhang rebuilds every path. The strict-positivity guard
// is what makes that induction well-founded in the presence of
// full-length (zero overhang) overlaps between duplicate reads.
//
// Execution is tiled: RowBatch rows per superstep, routed through
// graph.RunSupersteps so the device sees one aggregate kernel charge.
// Per tile, the modeled timeline (when Overlap is set) records the H2D
// prefetch of the next tile overlapping the current tile's compute,
// exactly like the reduce phase's window streaming. All charges are pure
// functions of the matrix and config, so modeled cost is deterministic
// and identical with streams on or off.
func (m *Matrix) TransitiveReduce(ctx context.Context, cfg ReduceConfig) (*Reduction, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("spmat: ReduceConfig.Device is required")
	}
	if cfg.VertexLen == nil {
		return nil, fmt.Errorf("spmat: ReduceConfig.VertexLen is required")
	}
	rowBatch := cfg.RowBatch
	if rowBatch <= 0 {
		rowBatch = 4096
	}
	dev := cfg.Device
	red := &Reduction{m: m, removed: make([]bool, len(m.col))}
	if m.n == 0 {
		return red, nil
	}

	// Device residency: matrix + mask if they fit the cap, else a
	// streamed working set. The claim never exceeds MaxResidentBytes, so
	// the pass stays inside the device lease the serve scheduler admitted
	// the job under.
	matBytes := m.Bytes()
	maskBytes := (m.NNZ() + 7) / 8
	claim := matBytes + maskBytes
	if cfg.MaxResidentBytes > 0 && claim > cfg.MaxResidentBytes {
		claim = cfg.MaxResidentBytes
	}
	residentMat := claim - maskBytes
	if residentMat < 0 {
		residentMat = 0
	}
	alloc, err := dev.AllocWait(ctx, claim)
	if err != nil {
		return nil, err
	}
	defer alloc.Free()

	tl := cfg.Overlap.NewTimeline()
	defer tl.Commit()
	streams := tl != nil
	ioS := dev.NewStream("spgemm-io", tl.Line("prefetch"), streams)
	defer ioS.Close()
	cmp := dev.NewStream("spgemm-compute", tl.Line("compute"), false)
	defer cmp.Close()

	// Upfront upload of the resident portion.
	ioS.CopyToDeviceAsync(residentMat)

	numTiles := (m.n + rowBatch - 1) / rowBatch
	red.Tiles = numTiles
	// tileTraffic returns the tile's nz count and product-term count —
	// the structural quantities every charge derives from.
	tileTraffic := func(t int) (tileNnz, flops int64) {
		lo, hi := t*rowBatch, min((t+1)*rowBatch, m.n)
		for u := lo; u < hi; u++ {
			for i := m.rowPtr[u]; i < m.rowPtr[u+1]; i++ {
				tileNnz++
				w := m.col[i]
				flops += m.rowPtr[w+1] - m.rowPtr[w]
			}
		}
		return tileNnz, flops
	}
	// h2d is the out-of-core transfer a tile needs: its own rows plus
	// every neighbor row its products read. Zero when fully resident.
	h2d := func(t int) int64 {
		if residentMat >= matBytes {
			return 0
		}
		tileNnz, flops := tileTraffic(t)
		return 8*int64(rowBatch+1) + 6*tileNnz + 6*flops
	}
	if numTiles > 0 {
		ioS.CopyToDeviceAsync(h2d(0))
	}

	var stepErr error
	graph.RunSupersteps(dev, numTiles, func(t int) (int64, int64) {
		if stepErr != nil {
			return 0, 0
		}
		if err := ctx.Err(); err != nil {
			stepErr = err
			return 0, 0
		}
		// Barrier: this tile's data must be on-device before compute.
		if err := ioS.Sync(); err != nil {
			stepErr = err
			return 0, 0
		}
		cmp.WaitModeled(ioS.ModeledCursor())
		// Prefetch the next tile while this one computes.
		if t+1 < numTiles {
			ioS.CopyToDeviceAsync(h2d(t + 1))
		}

		lo, hi := t*rowBatch, min((t+1)*rowBatch, m.n)
		dev.LaunchBlocks(hi-lo, func(block int) {
			u := uint32(lo + block)
			lenU := cfg.VertexLen(u)
			for i := m.rowPtr[u]; i < m.rowPtr[u+1]; i++ {
				w := m.col[i]
				o1 := lenU - int(m.val[i])
				if o1 <= 0 {
					continue
				}
				lenW := cfg.VertexLen(w)
				for j := m.rowPtr[w]; j < m.rowPtr[w+1]; j++ {
					o2 := lenW - int(m.val[j])
					if o2 <= 0 {
						continue
					}
					k := m.find(u, m.col[j])
					if k < 0 {
						continue
					}
					total := o1 + o2
					if d := lenU - int(m.val[k]); total >= d-cfg.Fuzz && total <= d+cfg.Fuzz {
						red.removed[k] = true // row-local: block owns row u
					}
				}
			}
		})

		tileNnz, flops := tileTraffic(t)
		red.Flops += flops
		// Each product term reads its neighbor entry and probes the
		// direct row; each tile entry is read once and its mask bit
		// written once.
		memBytes := 6*(tileNnz+2*flops) + (tileNnz+7)/8
		ops := tileNnz + flops
		cmp.Charge(costmodel.TierDeviceMem, memBytes)
		cmp.Charge(costmodel.TierDeviceOps, ops)
		// Mask download rides the io stream, ordered after this tile's
		// compute by an enqueued modeled wait. Keeping every PCIe charge
		// on one line makes the modeled schedule independent of host
		// goroutine interleaving: the lines share no tier, so placement
		// is purely geometric.
		ioS.WaitModeled(cmp.ModeledCursor())
		ioS.CopyFromDeviceAsync((tileNnz + 7) / 8)
		return memBytes, ops
	})
	if stepErr != nil {
		return nil, stepErr
	}
	if err := ioS.Sync(); err != nil {
		return nil, err
	}
	for _, r := range red.removed {
		if r {
			red.Removed++
		}
	}
	return red, nil
}
