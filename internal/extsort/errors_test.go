package extsort

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kv"
)

func TestSortFileMissingInput(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Device: bigDevice(), HostBlockPairs: 64, DeviceBlockPairs: 8, TempDir: dir}
	if _, err := SortFile(context.Background(), cfg, filepath.Join(dir, "nope.kv"), filepath.Join(dir, "out.kv")); err == nil {
		t.Error("missing input should fail")
	}
}

func TestSortFileCorruptInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.kv")
	if err := os.WriteFile(in, make([]byte, kv.PairBytes+5), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Device: bigDevice(), HostBlockPairs: 64, DeviceBlockPairs: 8, TempDir: dir}
	if _, err := SortFile(context.Background(), cfg, in, filepath.Join(dir, "out.kv")); err == nil {
		t.Error("corrupt input should fail")
	}
}

func TestSortFileUnusableTempDir(t *testing.T) {
	// A temp "directory" that is actually a file fails run creation even
	// when running as root (permission bits would not).
	dir := t.TempDir()
	in := filepath.Join(dir, "in.kv")
	writePairs(t, in, randomPairsForErr(300))
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Device: bigDevice(), HostBlockPairs: 64, DeviceBlockPairs: 8, TempDir: blocked}
	if _, err := SortFile(context.Background(), cfg, in, filepath.Join(blocked, "out.kv")); err == nil {
		t.Error("unusable temp dir should fail")
	}
}

func TestSortFileInvalidConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Device: nil, HostBlockPairs: 64, DeviceBlockPairs: 8, TempDir: dir}
	if _, err := SortFile(context.Background(), cfg, "x", "y"); err == nil {
		t.Error("invalid config should fail before touching files")
	}
}

func randomPairsForErr(n int) []kv.Pair {
	ps := make([]kv.Pair, n)
	for i := range ps {
		ps[i] = kv.Pair{Key: kv.Key{Hi: uint64(i * 7919), Lo: uint64(i)}, Val: uint32(i)}
	}
	return ps
}
