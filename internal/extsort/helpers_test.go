package extsort

import (
	"io"
	"os"

	"repro/internal/kv"
	"repro/internal/kvio"
)

// Helpers usable from testing/quick property functions, which cannot call
// t.Fatal.

func mkTemp() (string, error) {
	return os.MkdirTemp("", "extsort-quick-*")
}

func writePairsErr(path string, ps []kv.Pair) error {
	w, err := kvio.NewWriter(path, nil)
	if err != nil {
		return err
	}
	if err := w.WriteBatch(ps); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func readPairsErr(path string) ([]kv.Pair, error) {
	r, err := kvio.NewReader(path, nil)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	out := make([]kv.Pair, 0, r.Count())
	buf := make([]kv.Pair, 256)
	for {
		n, err := r.ReadBatch(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
