package extsort

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/kv"
)

func overlapProfile() costmodel.Profile {
	return costmodel.Profile{
		DiskReadBps:     1 << 20,
		DiskWriteBps:    1 << 20,
		NetBps:          1 << 20,
		HostMemBps:      1 << 22,
		DeviceMemBps:    1 << 24,
		DeviceOpsPerSec: 1 << 22,
		PCIeBps:         1 << 21,
	}
}

// sortOnce runs SortFile over input in its own temp dir and returns the
// raw output bytes, the meter snapshot, and the sort stats.
func sortOnce(t *testing.T, cfg Config, input []kv.Pair) ([]byte, costmodel.Counters, Stats) {
	t.Helper()
	dir := t.TempDir()
	cfg.TempDir = dir
	cfg.Meter = costmodel.NewMeter()
	inPath := filepath.Join(dir, "in.kv")
	outPath := filepath.Join(dir, "out.kv")
	writePairs(t, inPath, input)
	st, err := SortFile(context.Background(), cfg, inPath, outPath)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return raw, cfg.Meter.Snapshot(), st
}

// The streamed sort must be observably identical to the serial sort —
// byte-identical output, identical cost counters, identical pass counts —
// with only the modeled seconds shrinking.
func TestSortFileStreamsIdenticalToSerial(t *testing.T) {
	cases := []struct {
		n, mh, md int
		wantSaved bool // enough device/IO work to overlap
	}{
		{0, 64, 8, false},
		{1, 64, 8, false},
		{50, 64, 8, true},     // single host block, chunked device sort
		{64, 64, 8, true},     // exactly one full block
		{65, 64, 8, true},     // one spill: two runs, one merge
		{1000, 128, 16, true}, // several runs, multiple merge rounds
		{3000, 64, 2, true},   // tiny device blocks: deep window streaming
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.n)*31 + int64(tc.md)))
		input := randomPairs(rng, tc.n, 200)

		base := Config{Device: bigDevice(), HostBlockPairs: tc.mh, DeviceBlockPairs: tc.md}
		serialOut, serialCtr, serialSt := sortOnce(t, base, input)

		lg := costmodel.NewOverlapLedger(overlapProfile())
		streamed := base
		streamed.Overlap = lg
		streamOut, streamCtr, streamSt := sortOnce(t, streamed, input)

		if string(streamOut) != string(serialOut) {
			t.Errorf("n=%d mh=%d md=%d: streamed output differs from serial (%d vs %d bytes)",
				tc.n, tc.mh, tc.md, len(streamOut), len(serialOut))
		}
		if streamCtr != serialCtr {
			t.Errorf("n=%d mh=%d md=%d: streamed counters %+v != serial %+v",
				tc.n, tc.mh, tc.md, streamCtr, serialCtr)
		}
		if streamSt != serialSt {
			t.Errorf("n=%d mh=%d md=%d: streamed stats %+v != serial %+v",
				tc.n, tc.mh, tc.md, streamSt, serialSt)
		}

		saved := lg.SavedSeconds()
		if saved < 0 {
			t.Errorf("n=%d mh=%d md=%d: negative saved seconds %v", tc.n, tc.mh, tc.md, saved)
		}
		if tc.wantSaved && saved <= 0 {
			t.Errorf("n=%d mh=%d md=%d: saved = %v, want > 0 (prefetch should overlap)",
				tc.n, tc.mh, tc.md, saved)
		}
		if o, s := lg.OverlappedSeconds(), lg.SerialSeconds(); o > s+1e-12 {
			t.Errorf("n=%d mh=%d md=%d: overlapped %v exceeds serial %v", tc.n, tc.mh, tc.md, o, s)
		}
	}
}

// Sorted order itself must also match the reference, streamed or not.
func TestSortFileStreamsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	input := randomPairs(rng, 1200, 150)
	want := sortRef(input)
	cfg := Config{
		Device:           bigDevice(),
		HostBlockPairs:   100,
		DeviceBlockPairs: 10,
		Overlap:          costmodel.NewOverlapLedger(overlapProfile()),
	}
	got, _ := runSort(t, cfg, input)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key {
			t.Fatalf("pair %d: key %+v, want %+v", i, got[i].Key, want[i].Key)
		}
	}
}
