package extsort

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/kv"
)

// allocBytes measures the heap bytes allocated by one call to f. No
// forced GC: collecting would empty the sync.Pools whose effectiveness
// is being measured (TotalAlloc is cumulative, so the delta is exact
// either way).
func allocBytes(f func()) uint64 {
	var a, b runtime.MemStats
	runtime.ReadMemStats(&a)
	f()
	runtime.ReadMemStats(&b)
	return b.TotalAlloc - a.TotalAlloc
}

// TestGetPairsReslicesPooledBuffer pins the pooled-buffer clamping
// contract directly: a buffer recycled from a larger partition must come
// back re-sliced to exactly the requested length, never at its previous
// stale length (stale-length reuse would let a small partition's sort
// read the larger partition's leftover tail as if it were data).
func TestGetPairsReslicesPooledBuffer(t *testing.T) {
	big := getPairs(1000)
	for i := range big {
		big[i] = kv.Pair{Val: uint32(i) + 1} // poison
	}
	putPairs(big)
	// Drain gets until the poisoned array comes back (the pool may hold
	// other buffers from earlier tests in the binary).
	for tries := 0; tries < 100; tries++ {
		small := getPairs(10)
		if len(small) != 10 {
			t.Fatalf("getPairs(10) returned len %d", len(small))
		}
		if cap(small) >= 1000 && small[:1000][999].Val == 1000 {
			return // got the recycled array, correctly clamped to 10
		}
		if cap(small) < 1000 {
			// A fresh or foreign buffer; the poisoned one is still pooled.
			continue
		}
	}
	// Either way the length contract held for every get; reaching here
	// just means the poisoned buffer was never observed again, which the
	// pool is allowed to do (sync.Pool may drop items).
}

// TestPooledBufferUnequalPartitions is the end-to-end regression for the
// stale-length hazard: sort consecutive partitions where a large one
// precedes a much smaller one, so every pooled buffer (host block, merge
// scratch, window buffers) is recycled oversized into the small sort.
// Pre-fix (reusing pooled buffers at their previous length) the small
// partition's output would contain the large partition's residue.
func TestPooledBufferUnequalPartitions(t *testing.T) {
	dir := t.TempDir()
	sizes := []int{4096, 37, 2048, 1, 999, 4096, 64}
	rng := rand.New(rand.NewSource(99))
	for round, n := range sizes {
		in := filepath.Join(dir, fmt.Sprintf("in_%d.kv", round))
		out := filepath.Join(dir, fmt.Sprintf("out_%d.kv", round))
		ps := make([]kv.Pair, n)
		for i := range ps {
			ps[i] = kv.Pair{Key: kv.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, Val: rng.Uint32()}
		}
		if err := writePairsErr(in, ps); err != nil {
			t.Fatal(err)
		}
		// Small host blocks force multiple runs and merge passes even for
		// the small partitions, exercising every pooled buffer class.
		cfg := Config{Device: bigDevice(), HostBlockPairs: 512, DeviceBlockPairs: 64, TempDir: dir}
		if _, err := SortFile(context.Background(), cfg, in, out); err != nil {
			t.Fatalf("round %d (n=%d): %v", round, n, err)
		}
		got, err := readPairsErr(out)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := append([]kv.Pair(nil), ps...)
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		if len(got) != n {
			t.Fatalf("round %d: sorted %d pairs, want %d (pooled buffer leaked stale length?)", round, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: pair %d = %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestPooledBufferConcurrentSorts is the contention stress pass for the
// pair pool: concurrent sorts of different-sized partitions share the
// pool, so any buffer recycled while still referenced — or handed out at
// a stale length — corrupts another goroutine's sort. Run under -race.
func TestPooledBufferConcurrentSorts(t *testing.T) {
	dir := t.TempDir()
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			n := 200 + g*731
			ps := make([]kv.Pair, n)
			for i := range ps {
				ps[i] = kv.Pair{Key: kv.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, Val: rng.Uint32()}
			}
			// Each sort gets its own temp dir — run file names are
			// per-sort, so concurrent sorts must not share TempDir (the
			// same contract core's partition loop follows). The pair pool
			// is still shared across all workers, which is the contention
			// under test.
			wdir := filepath.Join(dir, fmt.Sprintf("w%d", g))
			if err := os.MkdirAll(wdir, 0o755); err != nil {
				errs <- err
				return
			}
			in := filepath.Join(wdir, "in.kv")
			out := filepath.Join(wdir, "out.kv")
			if err := writePairsErr(in, ps); err != nil {
				errs <- err
				return
			}
			for iter := 0; iter < 3; iter++ {
				cfg := Config{Device: bigDevice(), HostBlockPairs: 256, DeviceBlockPairs: 32, TempDir: wdir}
				if _, err := SortFile(context.Background(), cfg, in, out); err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %v", g, iter, err)
					return
				}
				got, err := readPairsErr(out)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != n {
					errs <- fmt.Errorf("worker %d iter %d: %d pairs, want %d", g, iter, len(got), n)
					return
				}
				for i := 1; i < len(got); i++ {
					if got[i].Less(got[i-1]) {
						errs <- fmt.Errorf("worker %d iter %d: unsorted at %d", g, iter, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMergePoolAllocFree pins that the run-formation inner path reuses
// pooled buffers: after one warmup sort, a same-shape sort's host-buffer
// allocations (blocks, scratch, windows, merge output) all come from the
// pool. The assertion is on bytes, not allocation counts — small
// bookkeeping allocations (file handles, run paths) are expected, another
// round of multi-KiB pair buffers is not.
func TestMergePoolAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation sizes")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	const n = 4096
	ps := make([]kv.Pair, n)
	for i := range ps {
		ps[i] = kv.Pair{Key: kv.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, Val: rng.Uint32()}
	}
	in := filepath.Join(dir, "in.kv")
	out := filepath.Join(dir, "out.kv")
	if err := writePairsErr(in, ps); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Device: bigDevice(), HostBlockPairs: 512, DeviceBlockPairs: 64, TempDir: dir}
	sortOnce := func() {
		if _, err := SortFile(context.Background(), cfg, in, out); err != nil {
			t.Fatal(err)
		}
	}
	sortOnce() // warm the pools
	bytes := allocBytes(sortOnce)
	// A warm sort still allocates ~140 KiB of per-op machinery (AllocWait
	// context hooks, file handles, run paths) — but without the pair and
	// block pools this shape of sort costs over 1 MiB (kvio codec blocks
	// are 160 KiB each, host blocks 12 KiB, windows and merge scratch on
	// top, all per partition). The threshold separates those regimes.
	if bytes > 300<<10 {
		t.Fatalf("warm sort allocated %d bytes; pooled buffers are not being reused", bytes)
	}
}
