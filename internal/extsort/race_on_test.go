//go:build race

package extsort

// raceEnabled lets allocation-sensitive tests skip byte-exact assertions
// when the race detector's instrumentation inflates every allocation.
const raceEnabled = true
