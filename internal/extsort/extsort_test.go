package extsort

import (
	"context"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/stats"
)

func bigDevice() *gpu.Device {
	return gpu.NewDevice(gpu.Spec{Name: "test", Cores: 1024, ClockMHz: 1000,
		MemBandwidthGBps: 100, MemBytes: 1 << 30}, nil)
}

func writePairs(t *testing.T, path string, ps []kv.Pair) {
	t.Helper()
	w, err := kvio.NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(ps); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readPairs(t *testing.T, path string) []kv.Pair {
	t.Helper()
	r, err := kvio.NewReader(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out := make([]kv.Pair, 0, r.Count())
	buf := make([]kv.Pair, 128)
	for {
		n, err := r.ReadBatch(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func randomPairs(rng *rand.Rand, n int, keyRange uint64) []kv.Pair {
	ps := make([]kv.Pair, n)
	for i := range ps {
		ps[i] = kv.Pair{Key: kv.Key{Hi: rng.Uint64() % keyRange, Lo: rng.Uint64() % keyRange},
			Val: uint32(i)}
	}
	return ps
}

func sortRef(ps []kv.Pair) []kv.Pair {
	out := append([]kv.Pair(nil), ps...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

func runSort(t *testing.T, cfg Config, input []kv.Pair) ([]kv.Pair, Stats) {
	t.Helper()
	dir := t.TempDir()
	cfg.TempDir = dir
	in := filepath.Join(dir, "in.kv")
	out := filepath.Join(dir, "out.kv")
	writePairs(t, in, input)
	st, err := SortFile(context.Background(), cfg, in, out)
	if err != nil {
		t.Fatal(err)
	}
	return readPairs(t, out), st
}

func TestSortFileMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n, mh, md int
	}{
		{0, 64, 8},
		{1, 64, 8},
		{50, 64, 8},     // single block, single chunk round
		{64, 64, 8},     // exact block
		{65, 64, 8},     // one spill
		{1000, 128, 16}, // many runs, multiple merge rounds
		{777, 100, 10},  // non-power-of-two everything
		{3000, 64, 2},   // tiny device chunks
	}
	for _, c := range cases {
		input := randomPairs(rng, c.n, 1<<16)
		cfg := Config{Device: bigDevice(), HostBlockPairs: c.mh, DeviceBlockPairs: c.md}
		got, st := runSort(t, cfg, input)
		want := sortRef(input)
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d pairs, want %d", c.n, len(got), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key {
				t.Fatalf("n=%d mh=%d md=%d: key mismatch at %d", c.n, c.mh, c.md, i)
			}
		}
		if st.Pairs != int64(c.n) {
			t.Errorf("n=%d: stats.Pairs = %d", c.n, st.Pairs)
		}
	}
}

func TestSortFileHeavyDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	input := randomPairs(rng, 2000, 3) // nearly all keys collide
	cfg := Config{Device: bigDevice(), HostBlockPairs: 128, DeviceBlockPairs: 16}
	got, _ := runSort(t, cfg, input)
	if !kv.SortedPairs(got) {
		t.Fatal("output not sorted")
	}
	// Same multiset: values are a permutation.
	counts := map[uint32]int{}
	for _, p := range input {
		counts[p.Val]++
	}
	for _, p := range got {
		counts[p.Val]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("value %d count off by %d", v, c)
		}
	}
}

func TestSortFileProperty(t *testing.T) {
	f := func(seed int64, n16 uint16, mh8, md8 uint8) bool {
		n := int(n16) % 600
		mh := int(mh8)%100 + 4
		md := int(md8)%(mh) + 1
		rng := rand.New(rand.NewSource(seed))
		input := randomPairs(rng, n, 1<<8)
		dir, err := mkTemp()
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		cfg := Config{Device: bigDevice(), HostBlockPairs: mh, DeviceBlockPairs: md, TempDir: dir}
		in := filepath.Join(dir, "in.kv")
		out := filepath.Join(dir, "out.kv")
		if err := writePairsErr(in, input); err != nil {
			return false
		}
		if _, err := SortFile(context.Background(), cfg, in, out); err != nil {
			return false
		}
		got, err := readPairsErr(out)
		if err != nil || len(got) != n {
			return false
		}
		return kv.SortedPairs(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDiskPassesMatchPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range []struct{ n, mh int }{
		{100, 128}, {256, 128}, {257, 128}, {1000, 128}, {1024, 64},
	} {
		input := randomPairs(rng, c.n, 1<<20)
		cfg := Config{Device: bigDevice(), HostBlockPairs: c.mh, DeviceBlockPairs: 16}
		_, st := runSort(t, cfg, input)
		if want := PredictedDiskPasses(int64(c.n), c.mh); st.DiskPasses != want {
			t.Errorf("n=%d mh=%d: DiskPasses = %d, want %d", c.n, c.mh, st.DiskPasses, want)
		}
	}
}

func TestPredictedDiskPasses(t *testing.T) {
	cases := []struct {
		n    int64
		mh   int
		want int
	}{
		{10, 100, 1},  // fits in one block
		{100, 100, 1}, // exactly one block
		{101, 100, 2}, // two runs -> one merge round
		{400, 100, 3}, // four runs -> two rounds
		{500, 100, 4}, // five runs -> three rounds
		{800, 100, 4}, // eight runs -> three rounds
	}
	for _, c := range cases {
		if got := PredictedDiskPasses(c.n, c.mh); got != c.want {
			t.Errorf("PredictedDiskPasses(%d, %d) = %d, want %d", c.n, c.mh, got, c.want)
		}
	}
}

func TestLargerHostBlockFewerDiskBytes(t *testing.T) {
	// The Fig. 8 effect: a larger host block-size means fewer disk passes
	// and strictly less disk traffic for the same input.
	rng := rand.New(rand.NewSource(4))
	input := randomPairs(rng, 4000, 1<<24)
	measure := func(mh int) int64 {
		meter := costmodel.NewMeter()
		cfg := Config{Device: bigDevice(), Meter: meter, HostBlockPairs: mh, DeviceBlockPairs: 32}
		got, _ := runSort(t, cfg, input)
		if !kv.SortedPairs(got) {
			t.Fatal("not sorted")
		}
		c := meter.Snapshot()
		return c.DiskReadBytes + c.DiskWriteBytes
	}
	small := measure(256)
	large := measure(2048)
	if large >= small {
		t.Errorf("disk bytes: mh=2048 -> %d should be < mh=256 -> %d", large, small)
	}
}

func TestHostMemAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	input := randomPairs(rng, 500, 1<<16)
	var mem stats.MemTracker
	cfg := Config{Device: bigDevice(), HostMem: &mem, HostBlockPairs: 128, DeviceBlockPairs: 16}
	runSort(t, cfg, input)
	if mem.Current() != 0 {
		t.Errorf("host memory leaked: %d", mem.Current())
	}
	if mem.Peak() < int64(2*128)*hostPairBytes {
		t.Errorf("peak host = %d, want at least the block buffers", mem.Peak())
	}
}

func TestDeviceMemoryBounded(t *testing.T) {
	// A small device must still sort correctly, and its peak allocation
	// must stay within capacity.
	small := gpu.NewDevice(gpu.Spec{Name: "tiny", Cores: 8, ClockMHz: 100,
		MemBandwidthGBps: 1, MemBytes: 4 * 2 * kv.PairBytes}, nil)
	rng := rand.New(rand.NewSource(6))
	input := randomPairs(rng, 300, 1<<16)
	cfg := Config{Device: small, HostBlockPairs: 64, DeviceBlockPairs: 4}
	got, _ := runSort(t, cfg, input)
	if !kv.SortedPairs(got) {
		t.Fatal("not sorted")
	}
	if small.MemTracker().Peak() > small.Capacity() {
		t.Errorf("device peak %d exceeds capacity %d", small.MemTracker().Peak(), small.Capacity())
	}
}

func TestValidate(t *testing.T) {
	d := bigDevice()
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Device: d, HostBlockPairs: 100, DeviceBlockPairs: 10}, true},
		{Config{Device: nil, HostBlockPairs: 100, DeviceBlockPairs: 10}, false},
		{Config{Device: d, HostBlockPairs: 0, DeviceBlockPairs: 10}, false},
		{Config{Device: d, HostBlockPairs: 10, DeviceBlockPairs: 100}, false},
	}
	for i, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v ok=%v", i, err, c.ok)
		}
	}
	tiny := gpu.NewDevice(gpu.Spec{Name: "t", MemBytes: 10}, nil)
	if err := (Config{Device: tiny, HostBlockPairs: 100, DeviceBlockPairs: 50}).Validate(); err == nil {
		t.Error("expected capacity error")
	}
}

func TestSortedInputSingleBlockPreserved(t *testing.T) {
	// Pre-sorted input must survive and stay stable-ish (keys equal).
	input := make([]kv.Pair, 200)
	for i := range input {
		input[i] = kv.Pair{Key: kv.Key{Lo: uint64(i / 2)}, Val: uint32(i)}
	}
	cfg := Config{Device: bigDevice(), HostBlockPairs: 64, DeviceBlockPairs: 8}
	got, _ := runSort(t, cfg, input)
	if !kv.SortedPairs(got) {
		t.Fatal("not sorted")
	}
	if len(got) != 200 {
		t.Fatalf("len = %d", len(got))
	}
}

// TestSortStreamMatchesSortFile pins the streaming variant against the
// file-writing one: identical pair sequence (keys and values), no final
// output file, and one fewer disk write of the full data.
func TestSortStreamMatchesSortFile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		n, mh, md int
	}{
		{0, 64, 8},
		{1, 64, 8},
		{50, 64, 8},     // single run: drain path
		{130, 64, 8},    // three runs: one merge round then 2-run stream
		{1000, 128, 16}, // many runs
		{777, 100, 10},
		{2000, 64, 4},
	}
	for _, c := range cases {
		input := randomPairs(rng, c.n, 1<<16)
		cfg := Config{Device: bigDevice(), HostBlockPairs: c.mh, DeviceBlockPairs: c.md}
		want, wantSt := runSort(t, cfg, input)

		dir := t.TempDir()
		scfg := cfg
		scfg.TempDir = dir
		in := filepath.Join(dir, "in.kv")
		writePairs(t, in, input)
		var got []kv.Pair
		st, err := SortStream(context.Background(), scfg, in, func(ps []kv.Pair) error {
			got = append(got, ps...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d pairs, want %d", c.n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d mh=%d md=%d: pair mismatch at %d: %+v vs %+v",
					c.n, c.mh, c.md, i, got[i], want[i])
			}
		}
		if st.Pairs != wantSt.Pairs || st.Runs != wantSt.Runs {
			t.Errorf("n=%d: stats (pairs=%d runs=%d) vs SortFile (pairs=%d runs=%d)",
				c.n, st.Pairs, st.Runs, wantSt.Pairs, wantSt.Runs)
		}
		// No run or merge scratch may survive.
		left, err := filepath.Glob(filepath.Join(dir, "*.kv"))
		if err != nil {
			t.Fatal(err)
		}
		if len(left) != 1 { // just in.kv
			t.Errorf("n=%d: leftover scratch files: %v", c.n, left)
		}
	}
}

// TestSortStreamEmitError propagates a consumer error without hanging.
func TestSortStreamEmitError(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	input := randomPairs(rng, 500, 1<<16)
	dir := t.TempDir()
	cfg := Config{Device: bigDevice(), HostBlockPairs: 64, DeviceBlockPairs: 8, TempDir: dir}
	in := filepath.Join(dir, "in.kv")
	writePairs(t, in, input)
	wantErr := io.ErrClosedPipe
	_, err := SortStream(context.Background(), cfg, in, func(ps []kv.Pair) error {
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}
