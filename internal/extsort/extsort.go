// Package extsort implements LaSAGNA's hybrid-memory external sort
// (Section III-B): the most expensive phase of the pipeline (more than 50%
// of total execution time in the paper's evaluation).
//
// The sort runs at two levels, mirroring the two-level streaming model:
//
//   - Disk level: blocks of m_h pairs (the host block-size) are read from
//     the read-only input file, sorted in host memory, and written back as
//     sorted runs; runs are then pairwise merged with Algorithm 1 until a
//     single run remains. Disk passes = 1 + ceil(log2(#runs)), the
//     1 + log(n/m_h) of the paper.
//
//   - Device level: inside a host block, chunks of m_d pairs (the device
//     block-size) are radix-sorted on the device and merged back in host
//     memory by streaming m_d-sized windows through the device
//     (Algorithm 1 again, one level down).
//
// Algorithm 1's window equalization — truncating the pair of windows at
// the upper bound of the smaller of their last keys so that no key in a
// later window can interleave — appears at both levels.
package extsort

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"

	"repro/internal/costmodel"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Config parameterizes a sort.
type Config struct {
	Device           *gpu.Device
	Meter            *costmodel.Meter  // meters disk traffic; may be nil
	HostMem          *stats.MemTracker // accounts host buffers; may be nil
	HostBlockPairs   int               // m_h: pairs sorted per host block
	DeviceBlockPairs int               // m_d: pairs per device chunk
	TempDir          string            // scratch directory for run files
	Obs              *obs.Observer     // observability sink; may be nil

	// Overlap, when non-nil, enables streamed execution: pass 1 prefetches
	// the next host block on an async I/O stream while the current block
	// sorts on-device, merge passes prefetch the next run windows while the
	// current windows merge, and every charge lands on an overlap-aware
	// modeled timeline committed to this ledger. Counters and output bytes
	// are identical to the serial path; only modeled seconds shrink.
	Overlap *costmodel.OverlapLedger
}

// hostPairBytes is the in-host-memory footprint of one pair (padded
// struct), used for host-memory accounting.
const hostPairBytes = 24

// Validate checks the configuration against the device capacity: device
// merges need two m_d windows resident (input and output).
func (c Config) Validate() error {
	if c.Device == nil {
		return fmt.Errorf("extsort: nil device")
	}
	if c.HostBlockPairs <= 0 || c.DeviceBlockPairs <= 0 {
		return fmt.Errorf("extsort: block sizes must be positive (m_h=%d m_d=%d)",
			c.HostBlockPairs, c.DeviceBlockPairs)
	}
	if c.DeviceBlockPairs > c.HostBlockPairs {
		return fmt.Errorf("extsort: device block (%d) larger than host block (%d)",
			c.DeviceBlockPairs, c.HostBlockPairs)
	}
	need := int64(2*c.DeviceBlockPairs) * kv.PairBytes
	if need > c.Device.Capacity() {
		return fmt.Errorf("extsort: device block of %d pairs needs %d bytes, device has %d",
			c.DeviceBlockPairs, need, c.Device.Capacity())
	}
	return nil
}

// Stats reports the work a sort performed.
type Stats struct {
	Pairs       int64
	Runs        int // sorted runs produced by the first pass
	MergeRounds int // pairwise merge rounds over the runs
	DiskPasses  int // total passes over the data (1 + MergeRounds)
}

// SortFile externally sorts the pairs in inPath into outPath. The sort
// honours ctx: cancellation between blocks and inside the device merge
// loops aborts with ctx.Err() without leaving goroutines parked on the
// device allocator.
func SortFile(ctx context.Context, cfg Config, inPath, outPath string) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	in, err := kvio.NewReader(inPath, cfg.Meter)
	if err != nil {
		return Stats{}, err
	}
	defer in.Close()
	st := Stats{Pairs: in.Count()}

	// One modeled timeline per sort: the I/O stream and the compute stream
	// are its two long-lived lines, so every sub-phase (run formation,
	// merge rounds) serializes naturally on them and only genuine
	// cross-stream concurrency shrinks the makespan. With Overlap nil the
	// timeline, lines, and async executor all collapse to no-ops and the
	// code below is today's serial path.
	tl := cfg.Overlap.NewTimeline()
	defer tl.Commit()
	streams := tl != nil
	ioS := cfg.Device.NewStream("sort-io", tl.Line("io"), streams)
	defer ioS.Close()
	cmp := cfg.Device.NewStream("sort-compute", tl.Line("compute"), false)

	runs, release, err := sortRuns(ctx, cfg, ioS, cmp, in)
	defer release()
	if err != nil {
		return st, err
	}
	st.Runs = len(runs)

	if len(runs) == 0 {
		// Empty input: still produce an (empty) output file.
		w, err := kvio.NewWriter(outPath, cfg.Meter)
		if err != nil {
			return st, err
		}
		st.DiskPasses = 1
		cfg.recordStats(st)
		return st, w.Close()
	}

	// Pass 2..k: pairwise merge runs until one remains (Algorithm 1).
	gen := 0
	for len(runs) > 1 {
		st.MergeRounds++
		var next []string
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				next = append(next, runs[i])
				continue
			}
			gen++
			merged := filepath.Join(cfg.TempDir, fmt.Sprintf("merge_%06d.kv", gen))
			if err := mergeRunFiles(ctx, cfg, ioS, cmp, runs[i], runs[i+1], merged); err != nil {
				return st, err
			}
			if err := os.Remove(runs[i]); err != nil {
				return st, err
			}
			if err := os.Remove(runs[i+1]); err != nil {
				return st, err
			}
			next = append(next, merged)
		}
		runs = next
	}
	st.DiskPasses = 1 + st.MergeRounds
	if err := os.Rename(runs[0], outPath); err != nil {
		return st, err
	}
	cfg.recordStats(st)
	return st, nil
}

// sortRuns is the shared first pass: form sorted runs of up to m_h
// pairs each. Small partitions get correspondingly small buffers — the
// run structure is identical, but concurrent sorts of many tiny
// partitions must not each pin a full host block. Streamed sorts
// double-buffer the block so the next read overlaps the current sort.
// Host buffers charged to cfg.HostMem are released by the returned
// func, which is non-nil even on error.
func sortRuns(ctx context.Context, cfg Config, ioS, cmp *gpu.Stream, in *kvio.Reader) ([]string, func(), error) {
	streams := ioS.Async()
	blockPairs := clampPairs(cfg.HostBlockPairs, in.Count())
	nbufs := 1
	if streams {
		nbufs = 2
	}
	hostBytes := int64((nbufs+1)*blockPairs) * hostPairBytes // block buffer(s) + merge scratch
	memRelease := func() {}
	if cfg.HostMem != nil {
		cfg.HostMem.Add(hostBytes)
		memRelease = func() { cfg.HostMem.Release(hostBytes) }
	}
	blocks := make([][]kv.Pair, nbufs)
	for i := range blocks {
		blocks[i] = getPairs(blockPairs)
	}
	scratch := getPairs(blockPairs)
	release := func() {
		// An early return can leave a block read in flight on the async
		// I/O stream; barrier it before the buffers go back to the pool,
		// or a concurrent sort could be handed a buffer the executor is
		// still filling.
		ioS.Sync()
		for _, b := range blocks {
			putPairs(b)
		}
		putPairs(scratch)
		memRelease()
	}

	// pending carries one block read's result across the async boundary;
	// Stream.Sync is the happens-before edge that publishes it.
	type readResult struct {
		n   int
		err error
	}
	var pending readResult
	readInto := func(buf []kv.Pair, afterModeled float64) {
		ioS.WaitModeled(afterModeled)
		ioS.Enqueue("read-block", func() error {
			n, err := readFull(in, buf)
			pending = readResult{n, err}
			ioS.Charge(costmodel.TierDiskRead, int64(n)*kv.PairBytes)
			if err != nil && err != io.EOF {
				return err
			}
			return nil
		})
	}

	var runs []string
	cur := 0
	readInto(blocks[cur], 0)
	for {
		if err := ctx.Err(); err != nil {
			return runs, release, err
		}
		syncErr := ioS.Sync()
		res := pending
		if res.n == 0 {
			break
		}
		if syncErr != nil {
			return runs, release, syncErr
		}
		readEnd := ioS.ModeledCursor()
		data := blocks[cur][:res.n]
		more := res.err != io.EOF
		if streams && more {
			// Prefetch the next block into the other buffer while this one
			// sorts. That buffer held the block written two iterations ago,
			// so in the model its read starts no earlier than the compute
			// stream's current position (the moment the buffer was freed).
			cur = 1 - cur
			readInto(blocks[cur], cmp.ModeledCursor())
		}
		cmp.WaitModeled(readEnd)
		sorted, serr := sortHostBlock(ctx, cfg, cmp, data, scratch[:res.n])
		if serr != nil {
			return runs, release, serr
		}
		runPath := filepath.Join(cfg.TempDir, fmt.Sprintf("run_%06d.kv", len(runs)))
		if err := writeRun(runPath, sorted, cfg.Meter); err != nil {
			return runs, release, err
		}
		cmp.Charge(costmodel.TierDiskWrite, int64(len(sorted))*kv.PairBytes)
		runs = append(runs, runPath)
		if !more {
			break
		}
		if !streams {
			readInto(blocks[cur], 0)
		}
	}
	return runs, release, nil
}

// SortStream externally sorts the pairs in inPath and hands the fully
// merged output to emit in sorted batches instead of writing it back to
// disk. Runs are pairwise merged as in SortFile while more than two
// remain; the final merge (or the sole run) then streams straight into
// emit, skipping the last disk write entirely. This is the feed for
// consumers that build a compressed in-memory structure from the sorted
// order — the succinct graph store — without ever materializing the
// sorted edge list as a file or an array. Batches passed to emit are
// only valid for the duration of the call.
func SortStream(ctx context.Context, cfg Config, inPath string, emit func([]kv.Pair) error) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	in, err := kvio.NewReader(inPath, cfg.Meter)
	if err != nil {
		return Stats{}, err
	}
	defer in.Close()
	st := Stats{Pairs: in.Count()}

	tl := cfg.Overlap.NewTimeline()
	defer tl.Commit()
	streams := tl != nil
	ioS := cfg.Device.NewStream("sort-io", tl.Line("io"), streams)
	defer ioS.Close()
	cmp := cfg.Device.NewStream("sort-compute", tl.Line("compute"), false)

	runs, release, err := sortRuns(ctx, cfg, ioS, cmp, in)
	defer release()
	if err != nil {
		return st, err
	}
	st.Runs = len(runs)

	if len(runs) == 0 {
		st.DiskPasses = 1
		cfg.recordStats(st)
		return st, nil
	}

	// Merge pairwise until at most two runs remain.
	gen := 0
	for len(runs) > 2 {
		st.MergeRounds++
		var next []string
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				next = append(next, runs[i])
				continue
			}
			gen++
			merged := filepath.Join(cfg.TempDir, fmt.Sprintf("merge_%06d.kv", gen))
			if err := mergeRunFiles(ctx, cfg, ioS, cmp, runs[i], runs[i+1], merged); err != nil {
				return st, err
			}
			if err := os.Remove(runs[i]); err != nil {
				return st, err
			}
			if err := os.Remove(runs[i+1]); err != nil {
				return st, err
			}
			next = append(next, merged)
		}
		runs = next
	}

	// Final pass streams into the caller: a two-run merge through the
	// device, or a plain sequential drain of the lone run.
	st.MergeRounds++
	if len(runs) == 2 {
		if err := mergeRuns(ctx, cfg, ioS, cmp, runs[0], runs[1], emit); err != nil {
			return st, err
		}
	} else {
		if err := drainRun(ctx, cfg, ioS, cmp, runs[0], emit); err != nil {
			return st, err
		}
	}
	for _, r := range runs {
		if err := os.Remove(r); err != nil {
			return st, err
		}
	}
	st.DiskPasses = 1 + st.MergeRounds
	cfg.recordStats(st)
	return st, nil
}

// drainRun streams a single sorted run file through emit in host-block
// windows.
func drainRun(ctx context.Context, cfg Config, ioS, cmp *gpu.Stream, path string, emit func([]kv.Pair) error) error {
	r, err := kvio.NewReader(path, cfg.Meter)
	if err != nil {
		return err
	}
	defer r.Close()
	ioS.WaitModeled(cmp.ModeledCursor())
	capPairs := clampPairs(cfg.HostBlockPairs, r.Count())
	if cfg.HostMem != nil {
		hostBytes := int64(capPairs) * hostPairBytes
		cfg.HostMem.Add(hostBytes)
		defer cfg.HostMem.Release(hostBytes)
	}
	ws := newWindowStream(r, capPairs, false)
	defer ws.release()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := ws.fill(); err != nil {
			return err
		}
		if len(ws.buf) == 0 {
			return nil
		}
		ioS.Charge(costmodel.TierDiskRead, int64(len(ws.buf))*kv.PairBytes)
		if err := emit(ws.buf); err != nil {
			return err
		}
		ws.consume(len(ws.buf))
	}
}

// recordStats publishes one completed sort's shape to the metrics
// registry; a nil observer no-ops.
func (c Config) recordStats(st Stats) {
	m := c.Obs.Metrics()
	m.Counter("extsort.sorts").Add(1)
	m.Counter("extsort.pairs_sorted").Add(st.Pairs)
	m.Histogram("extsort.disk_passes", 1, 2, 3, 4, 6, 8).Observe(float64(st.DiskPasses))
}

// PredictedDiskPasses returns the number of disk passes the sort will take
// for n pairs with host block m_h — the 1 + ceil(log2(n/m_h)) of the
// paper's analysis.
func PredictedDiskPasses(n int64, hostBlockPairs int) int {
	if n <= int64(hostBlockPairs) {
		return 1
	}
	runs := (n + int64(hostBlockPairs) - 1) / int64(hostBlockPairs)
	return 1 + bits.Len64(uint64(runs-1))
}

func readFull(r *kvio.Reader, dst []kv.Pair) (int, error) {
	total := 0
	for total < len(dst) {
		n, err := r.ReadBatch(dst[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func writeRun(path string, ps []kv.Pair, meter *costmodel.Meter) error {
	w, err := kvio.NewWriter(path, meter)
	if err != nil {
		return err
	}
	if err := w.WriteBatch(ps); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// sortHostBlock sorts one host block using device chunks of m_d pairs:
// each chunk is radix-sorted on the device, then sorted chunks are
// pairwise merged in host memory by streaming windows through the device.
// The returned slice aliases either block or scratch. Device work is
// charged through cmp, the block's compute stream.
func sortHostBlock(ctx context.Context, cfg Config, cmp *gpu.Stream, block, scratch []kv.Pair) ([]kv.Pair, error) {
	md := cfg.DeviceBlockPairs
	if err := sortChunks(ctx, cfg, cmp, block); err != nil {
		return nil, err
	}
	// Pairwise merge sorted chunks, doubling chunk size each round.
	src, dst := block, scratch
	for width := md; width < len(block); width *= 2 {
		for start := 0; start < len(src); start += 2 * width {
			aEnd := start + width
			if aEnd > len(src) {
				aEnd = len(src)
			}
			bEnd := start + 2*width
			if bEnd > len(src) {
				bEnd = len(src)
			}
			out := dst[start:start]
			emit := func(ps []kv.Pair) error {
				out = append(out, ps...)
				return nil
			}
			if err := mergeInMemory(ctx, cfg, cmp, src[start:aEnd], src[aEnd:bEnd], emit); err != nil {
				return nil, err
			}
		}
		src, dst = dst, src
	}
	return src, nil
}

// sortChunks radix-sorts each m_d-sized device chunk of the block. The
// device holds the chunk plus the radix double-buffer. AllocWait lets
// concurrent partition sorts share the device: capacity, not caller
// count, bounds how many chunks are resident at once.
//
// When the block is modeled on a timeline and two chunk slots fit on the
// device, the chunk loop is modeled as a classic CUDA double-buffered
// pipeline: chunk i+1's H2D transfer overlaps chunk i's kernel, with
// transfers serialized on the PCIe tier and kernels on the device tiers.
// Execution stays sequential on the host (the simulation computes real
// results either way); only the modeled placement — and therefore the
// overlap saving — changes. The double residency is honestly accounted:
// one allocation of two slots (4·m_d·PairBytes, the same bound
// core.DeviceDemandBytes admits) is held for the whole loop.
func sortChunks(ctx context.Context, cfg Config, cmp *gpu.Stream, block []kv.Pair) error {
	dev := cfg.Device
	md := cfg.DeviceBlockPairs
	ln := cmp.Line()
	pipeBytes := 4 * int64(md) * kv.PairBytes
	if ln != nil && len(block) > md && pipeBytes <= dev.Capacity() {
		alloc, err := dev.AllocWait(ctx, pipeBytes)
		if err != nil {
			return err
		}
		defer alloc.Free()
		h2d := ln.Fork("h2d")
		krn := ln.Fork("kernel")
		d2h := ln.Fork("d2h")
		numChunks := (len(block) + md - 1) / md
		chunkAt := func(i int) []kv.Pair {
			return block[i*md : min((i+1)*md, len(block))]
		}
		// d2hEnd[i%2] is when chunk i's slot drains back to the host; the
		// slot is reused by chunk i+2. hEnd[i%2] is when chunk i's upload
		// lands. Chunk i+1's upload is issued before chunk i's kernel so
		// the copy engine sees it as soon as the slot frees — charging it
		// after the drain would serialize the whole PCIe tier in program
		// order and model away the very overlap the pipeline exists for.
		var d2hEnd, hEnd [2]float64
		issueH2D := func(i int) {
			chunk := chunkAt(i)
			bytes := int64(len(chunk)) * kv.PairBytes
			h2d.Wait(d2hEnd[i%2])
			dev.CopyToDevice(bytes)
			_, e := h2d.Charge(costmodel.TierPCIe, bytes)
			hEnd[i%2] = e
		}
		issueH2D(0)
		for i := 0; i < numChunks; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if i+1 < numChunks {
				issueH2D(i + 1)
			}
			chunk := chunkAt(i)
			krn.Wait(hEnd[i%2])
			if len(chunk) > 1 {
				mem, ops := dev.SortPairsCost(chunk)
				krn.Charge(costmodel.TierDeviceMem, mem)
				krn.Charge(costmodel.TierDeviceOps, ops)
			}
			d2h.Wait(krn.Cursor())
			bytes := int64(len(chunk)) * kv.PairBytes
			dev.CopyFromDevice(bytes)
			_, dEnd := d2h.Charge(costmodel.TierPCIe, bytes)
			d2hEnd[i%2] = dEnd
		}
		ln.Wait(d2h.Cursor())
		return nil
	}
	for start := 0; start < len(block); start += md {
		end := min(start+md, len(block))
		chunk := block[start:end]
		alloc, err := dev.AllocWait(ctx, 2*int64(len(chunk))*kv.PairBytes)
		if err != nil {
			return err
		}
		cmp.CopyToDeviceAsync(int64(len(chunk)) * kv.PairBytes)
		cmp.SortPairs(chunk)
		cmp.CopyFromDeviceAsync(int64(len(chunk)) * kv.PairBytes)
		alloc.Free()
	}
	return nil
}

// mergeInMemory merges two sorted in-memory lists by streaming m_d-sized
// windows through the device, following Algorithm 1 with M = m_d. The
// merged output is handed to emit in sorted order.
func mergeInMemory(ctx context.Context, cfg Config, cmp *gpu.Stream, a, b []kv.Pair, emit func([]kv.Pair) error) error {
	dev := cfg.Device
	half := cfg.DeviceBlockPairs / 2
	if half < 1 {
		half = 1
	}
	out := getPairs(2 * half)[:0]
	defer putPairs(out)
	for len(a) > 0 && len(b) > 0 {
		wa, wb := window(a, half), window(b, half)
		// Entirely ordered windows short-circuit without a device trip
		// (lines 5-6 of Algorithm 1).
		if wa[len(wa)-1].Key.Less(wb[0].Key) {
			if err := emit(wa); err != nil {
				return err
			}
			a = a[len(wa):]
			continue
		}
		if wb[len(wb)-1].Key.Less(wa[0].Key) {
			if err := emit(wb); err != nil {
				return err
			}
			b = b[len(wb):]
			continue
		}
		// Equalize: truncate at the upper bound of the smaller last key
		// (lines 8-15).
		lastA, lastB := wa[len(wa)-1].Key, wb[len(wb)-1].Key
		if lastA.Cmp(lastB) != 0 {
			if k := kv.Min(lastA, lastB); k == lastA {
				wb = wb[:kv.UpperBound(wb, k)]
			} else {
				wa = wa[:kv.UpperBound(wa, k)]
			}
		}
		// GPU_MERGE of the equalized windows (line 16).
		alloc, err := dev.AllocWait(ctx, 2*int64(len(wa)+len(wb))*kv.PairBytes)
		if err != nil {
			return err
		}
		cmp.CopyToDeviceAsync(int64(len(wa)+len(wb)) * kv.PairBytes)
		out = cmp.MergePairsInto(out[:0], wa, wb)
		cmp.CopyFromDeviceAsync(int64(len(out)) * kv.PairBytes)
		alloc.Free()
		if err := emit(out); err != nil {
			return err
		}
		a = a[len(wa):]
		b = b[len(wb):]
	}
	if len(a) > 0 {
		return emit(a)
	}
	if len(b) > 0 {
		return emit(b)
	}
	return nil
}

func window(ps []kv.Pair, n int) []kv.Pair {
	if len(ps) < n {
		return ps
	}
	return ps[:n]
}

// mergeRunFiles merges two sorted run files into one (Algorithm 1 at the
// disk level, M = m_h): mergeRuns streaming into a kvio.Writer, with the
// disk write charged on the compute stream.
func mergeRunFiles(ctx context.Context, cfg Config, ioS, cmp *gpu.Stream, pathA, pathB, outPath string) error {
	w, err := kvio.NewWriter(outPath, cfg.Meter)
	if err != nil {
		return err
	}
	emit := func(ps []kv.Pair) error {
		if err := w.WriteBatch(ps); err != nil {
			return err
		}
		cmp.Charge(costmodel.TierDiskWrite, int64(len(ps))*kv.PairBytes)
		return nil
	}
	if err := mergeRuns(ctx, cfg, ioS, cmp, pathA, pathB, emit); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// mergeRuns merges two sorted run files into emit. Windows of m_h/2
// pairs stream from each run into host memory; equalized windows are
// merged through the device via mergeInMemory. With streaming enabled,
// each consumed window's replacement is prefetched into a spare buffer
// on the async I/O stream while the current windows merge, so disk
// reads hide behind device work in the modeled timeline and in wall
// time. emit receives the merged output in sorted batches that are only
// valid for the duration of the call.
func mergeRuns(ctx context.Context, cfg Config, ioS, cmp *gpu.Stream, pathA, pathB string, emit func([]kv.Pair) error) error {
	ra, err := kvio.NewReader(pathA, cfg.Meter)
	if err != nil {
		return err
	}
	defer ra.Close()
	rb, err := kvio.NewReader(pathB, cfg.Meter)
	if err != nil {
		return err
	}
	defer rb.Close()

	streams := cfg.Overlap != nil
	// This merge's reads depend on its input runs, which the compute
	// stream finished writing at its current modeled position.
	ioS.WaitModeled(cmp.ModeledCursor())

	half := cfg.HostBlockPairs / 2
	if half < 1 {
		half = 1
	}
	// A run shorter than a half-window never fills past its own length,
	// so its buffer can be run-sized; the windows streamed are identical.
	aCap := clampPairs(half, ra.Count())
	bCap := clampPairs(half, rb.Count())
	bufs := 1
	if streams {
		bufs = 2 // window + prefetch spare per side
	}
	if cfg.HostMem != nil {
		hostBytes := int64(bufs) * int64(aCap+bCap) * hostPairBytes
		cfg.HostMem.Add(hostBytes)
		defer cfg.HostMem.Release(hostBytes)
	}
	wa := newWindowStream(ra, aCap, streams)
	wb := newWindowStream(rb, bCap, streams)
	defer func() {
		// An early return can leave prefetch ops in flight; barrier the
		// I/O stream before the window buffers go back to the pool.
		ioS.Sync()
		wa.release()
		wb.release()
	}()

	if streams {
		wa.advance(ioS, 0)
		wb.advance(ioS, 0)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		syncErr := ioS.Sync()
		wa.adopt()
		wb.adopt()
		if syncErr != nil {
			return syncErr
		}
		// Merging a window consumes data the I/O stream produced: the
		// compute stream starts no earlier than the prefetch finished.
		cmp.WaitModeled(ioS.ModeledCursor())
		if err := wa.fill(); err != nil {
			return err
		}
		if err := wb.fill(); err != nil {
			return err
		}
		a, b := wa.buf, wb.buf
		if len(a) == 0 || len(b) == 0 {
			break
		}
		if !a[len(a)-1].Key.Less(b[0].Key) && !b[len(b)-1].Key.Less(a[0].Key) {
			// Windows interleave: equalize at the upper bound of the
			// smaller of the last keys, then merge through the device.
			lastA, lastB := a[len(a)-1].Key, b[len(b)-1].Key
			if lastA.Cmp(lastB) != 0 {
				if k := kv.Min(lastA, lastB); k == lastA {
					b = b[:kv.UpperBound(b, k)]
				} else {
					a = a[:kv.UpperBound(a, k)]
				}
			}
			// Prefetch both replacements before merging: the advance ops
			// read buf[consumed:] and the reader, never the windows the
			// merge is consuming.
			if streams {
				wa.advance(ioS, len(a))
				wb.advance(ioS, len(b))
			}
			if err := mergeInMemory(ctx, cfg, cmp, a, b, emit); err != nil {
				return err
			}
			if !streams {
				wa.consume(len(a))
				wb.consume(len(b))
			}
			continue
		}
		// Disjoint windows: append the smaller one wholesale.
		if a[len(a)-1].Key.Less(b[0].Key) {
			if streams {
				wa.advance(ioS, len(a))
			}
			if err := emit(a); err != nil {
				return err
			}
			if !streams {
				wa.consume(len(a))
			}
		} else {
			if streams {
				wb.advance(ioS, len(b))
			}
			if err := emit(b); err != nil {
				return err
			}
			if !streams {
				wb.consume(len(b))
			}
		}
	}
	// One side is exhausted: stream the remainder of the other (line 19).
	// No advances are pending here (the loop top adopted them all), so the
	// plain synchronous fill/consume drain is race-free.
	for _, ws := range []*windowStream{wa, wb} {
		for {
			if err := ws.fill(); err != nil {
				return err
			}
			if len(ws.buf) == 0 {
				break
			}
			if err := emit(ws.buf); err != nil {
				return err
			}
			ws.consume(len(ws.buf))
		}
	}
	return nil
}

// clampPairs caps a buffer size at the number of pairs actually present,
// keeping at least one slot so fill can detect EOF.
func clampPairs(window int, count int64) int {
	if count < int64(window) {
		window = int(count)
		if window < 1 {
			window = 1
		}
	}
	return window
}

// windowStream maintains a sliding window of unconsumed pairs over a
// sequential reader. With a spare buffer it also supports asynchronous
// advancement: an op enqueued on an I/O stream builds the next window
// (leftover tail + fresh reads) in the spare while the caller is still
// reading the current buffer, and adopt swaps the two after the stream
// syncs. The window contents are identical to the synchronous
// consume-then-fill sequence.
type windowStream struct {
	r     *kvio.Reader
	buf   []kv.Pair
	spare []kv.Pair // second buffer; non-nil enables advance
	cap   int
	done  bool

	pending     bool // an advance op is enqueued (or adopted-awaiting)
	pendingBuf  []kv.Pair
	pendingDone bool
}

func newWindowStream(r *kvio.Reader, capPairs int, spare bool) *windowStream {
	ws := &windowStream{r: r, buf: getPairs(capPairs)[:0], cap: capPairs}
	if spare {
		ws.spare = getPairs(capPairs)[:0]
	}
	return ws
}

// release returns the stream's buffers to the pool. buf and spare are
// always distinct arrays (adopt swaps, never merges them), and pendingBuf
// only ever aliases spare, so each backing array is recycled exactly once.
func (ws *windowStream) release() {
	putPairs(ws.buf)
	if ws.spare != nil {
		putPairs(ws.spare)
	}
	ws.buf, ws.spare, ws.pendingBuf = nil, nil, nil
}

// fill tops the window up to capacity.
func (ws *windowStream) fill() error {
	for len(ws.buf) < ws.cap && !ws.done {
		n := len(ws.buf)
		m, err := ws.r.ReadBatch(ws.buf[n:ws.cap])
		ws.buf = ws.buf[:n+m]
		if err == io.EOF {
			ws.done = true
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// consume drops the first n pairs from the window.
func (ws *windowStream) consume(n int) {
	remaining := copy(ws.buf, ws.buf[n:])
	ws.buf = ws.buf[:remaining]
}

// advance enqueues the window's next state on the I/O stream: drop the
// first consumeN pairs, then top up from the reader into the spare
// buffer. The op reads buf[consumeN:] and never mutates buf, so the
// caller may keep reading buf[:consumeN] concurrently. Call adopt after
// the stream syncs to swap the new window in. The disk bytes are charged
// to the stream's modeled timeline (the meter is fed by the reader
// itself, exactly as in the synchronous path).
func (ws *windowStream) advance(ioS *gpu.Stream, consumeN int) {
	ws.pending = true
	ioS.Enqueue("advance-window", func() error {
		nb := ws.spare[:0]
		nb = append(nb, ws.buf[consumeN:]...)
		done := ws.done
		read := 0
		for len(nb) < ws.cap && !done {
			n := len(nb)
			m, err := ws.r.ReadBatch(nb[n:ws.cap])
			nb = nb[:n+m]
			read += m
			if err == io.EOF {
				done = true
				break
			}
			if err != nil {
				ws.pendingBuf, ws.pendingDone = nb, done
				return err
			}
		}
		ws.pendingBuf, ws.pendingDone = nb, done
		ioS.Charge(costmodel.TierDiskRead, int64(read)*kv.PairBytes)
		return nil
	})
}

// adopt installs the most recent advance's result as the current window.
// Only call it after the I/O stream has synced.
func (ws *windowStream) adopt() {
	if !ws.pending {
		return
	}
	ws.pending = false
	old := ws.buf
	ws.buf = ws.pendingBuf
	ws.spare = old[:0]
	ws.done = ws.pendingDone
	ws.pendingBuf = nil
}
