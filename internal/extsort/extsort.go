// Package extsort implements LaSAGNA's hybrid-memory external sort
// (Section III-B): the most expensive phase of the pipeline (more than 50%
// of total execution time in the paper's evaluation).
//
// The sort runs at two levels, mirroring the two-level streaming model:
//
//   - Disk level: blocks of m_h pairs (the host block-size) are read from
//     the read-only input file, sorted in host memory, and written back as
//     sorted runs; runs are then pairwise merged with Algorithm 1 until a
//     single run remains. Disk passes = 1 + ceil(log2(#runs)), the
//     1 + log(n/m_h) of the paper.
//
//   - Device level: inside a host block, chunks of m_d pairs (the device
//     block-size) are radix-sorted on the device and merged back in host
//     memory by streaming m_d-sized windows through the device
//     (Algorithm 1 again, one level down).
//
// Algorithm 1's window equalization — truncating the pair of windows at
// the upper bound of the smaller of their last keys so that no key in a
// later window can interleave — appears at both levels.
package extsort

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"

	"repro/internal/costmodel"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Config parameterizes a sort.
type Config struct {
	Device           *gpu.Device
	Meter            *costmodel.Meter  // meters disk traffic; may be nil
	HostMem          *stats.MemTracker // accounts host buffers; may be nil
	HostBlockPairs   int               // m_h: pairs sorted per host block
	DeviceBlockPairs int               // m_d: pairs per device chunk
	TempDir          string            // scratch directory for run files
	Obs              *obs.Observer     // observability sink; may be nil
}

// hostPairBytes is the in-host-memory footprint of one pair (padded
// struct), used for host-memory accounting.
const hostPairBytes = 24

// Validate checks the configuration against the device capacity: device
// merges need two m_d windows resident (input and output).
func (c Config) Validate() error {
	if c.Device == nil {
		return fmt.Errorf("extsort: nil device")
	}
	if c.HostBlockPairs <= 0 || c.DeviceBlockPairs <= 0 {
		return fmt.Errorf("extsort: block sizes must be positive (m_h=%d m_d=%d)",
			c.HostBlockPairs, c.DeviceBlockPairs)
	}
	if c.DeviceBlockPairs > c.HostBlockPairs {
		return fmt.Errorf("extsort: device block (%d) larger than host block (%d)",
			c.DeviceBlockPairs, c.HostBlockPairs)
	}
	need := int64(2*c.DeviceBlockPairs) * kv.PairBytes
	if need > c.Device.Capacity() {
		return fmt.Errorf("extsort: device block of %d pairs needs %d bytes, device has %d",
			c.DeviceBlockPairs, need, c.Device.Capacity())
	}
	return nil
}

// Stats reports the work a sort performed.
type Stats struct {
	Pairs       int64
	Runs        int // sorted runs produced by the first pass
	MergeRounds int // pairwise merge rounds over the runs
	DiskPasses  int // total passes over the data (1 + MergeRounds)
}

// SortFile externally sorts the pairs in inPath into outPath. The sort
// honours ctx: cancellation between blocks and inside the device merge
// loops aborts with ctx.Err() without leaving goroutines parked on the
// device allocator.
func SortFile(ctx context.Context, cfg Config, inPath, outPath string) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	in, err := kvio.NewReader(inPath, cfg.Meter)
	if err != nil {
		return Stats{}, err
	}
	defer in.Close()
	st := Stats{Pairs: in.Count()}

	// Pass 1: form sorted runs of up to m_h pairs each. Small partitions
	// get correspondingly small buffers — the run structure is identical,
	// but concurrent sorts of many tiny partitions must not each pin a
	// full host block.
	blockPairs := clampPairs(cfg.HostBlockPairs, in.Count())
	hostBytes := int64(2*blockPairs) * hostPairBytes // block + merge scratch
	if cfg.HostMem != nil {
		cfg.HostMem.Add(hostBytes)
		defer cfg.HostMem.Release(hostBytes)
	}
	block := make([]kv.Pair, blockPairs)
	scratch := make([]kv.Pair, blockPairs)
	var runs []string
	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		n, err := readFull(in, block)
		if n == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return st, err
		}
		sorted, serr := sortHostBlock(ctx, cfg, block[:n], scratch[:n])
		if serr != nil {
			return st, serr
		}
		runPath := filepath.Join(cfg.TempDir, fmt.Sprintf("run_%06d.kv", len(runs)))
		if err := writeRun(runPath, sorted, cfg.Meter); err != nil {
			return st, err
		}
		runs = append(runs, runPath)
		if err == io.EOF {
			break
		}
	}
	st.Runs = len(runs)

	if len(runs) == 0 {
		// Empty input: still produce an (empty) output file.
		w, err := kvio.NewWriter(outPath, cfg.Meter)
		if err != nil {
			return st, err
		}
		st.DiskPasses = 1
		cfg.recordStats(st)
		return st, w.Close()
	}

	// Pass 2..k: pairwise merge runs until one remains (Algorithm 1).
	gen := 0
	for len(runs) > 1 {
		st.MergeRounds++
		var next []string
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				next = append(next, runs[i])
				continue
			}
			gen++
			merged := filepath.Join(cfg.TempDir, fmt.Sprintf("merge_%06d.kv", gen))
			if err := mergeRunFiles(ctx, cfg, runs[i], runs[i+1], merged); err != nil {
				return st, err
			}
			if err := os.Remove(runs[i]); err != nil {
				return st, err
			}
			if err := os.Remove(runs[i+1]); err != nil {
				return st, err
			}
			next = append(next, merged)
		}
		runs = next
	}
	st.DiskPasses = 1 + st.MergeRounds
	if err := os.Rename(runs[0], outPath); err != nil {
		return st, err
	}
	cfg.recordStats(st)
	return st, nil
}

// recordStats publishes one completed sort's shape to the metrics
// registry; a nil observer no-ops.
func (c Config) recordStats(st Stats) {
	m := c.Obs.Metrics()
	m.Counter("extsort.sorts").Add(1)
	m.Counter("extsort.pairs_sorted").Add(st.Pairs)
	m.Histogram("extsort.disk_passes", 1, 2, 3, 4, 6, 8).Observe(float64(st.DiskPasses))
}

// PredictedDiskPasses returns the number of disk passes the sort will take
// for n pairs with host block m_h — the 1 + ceil(log2(n/m_h)) of the
// paper's analysis.
func PredictedDiskPasses(n int64, hostBlockPairs int) int {
	if n <= int64(hostBlockPairs) {
		return 1
	}
	runs := (n + int64(hostBlockPairs) - 1) / int64(hostBlockPairs)
	return 1 + bits.Len64(uint64(runs-1))
}

func readFull(r *kvio.Reader, dst []kv.Pair) (int, error) {
	total := 0
	for total < len(dst) {
		n, err := r.ReadBatch(dst[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func writeRun(path string, ps []kv.Pair, meter *costmodel.Meter) error {
	w, err := kvio.NewWriter(path, meter)
	if err != nil {
		return err
	}
	if err := w.WriteBatch(ps); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// sortHostBlock sorts one host block using device chunks of m_d pairs:
// each chunk is radix-sorted on the device, then sorted chunks are
// pairwise merged in host memory by streaming windows through the device.
// The returned slice aliases either block or scratch.
func sortHostBlock(ctx context.Context, cfg Config, block, scratch []kv.Pair) ([]kv.Pair, error) {
	dev := cfg.Device
	md := cfg.DeviceBlockPairs
	// Radix-sort each device chunk. The device holds the chunk plus the
	// radix double-buffer. AllocWait lets concurrent partition sorts share
	// the device: capacity, not caller count, bounds how many chunks are
	// resident at once.
	for start := 0; start < len(block); start += md {
		end := start + md
		if end > len(block) {
			end = len(block)
		}
		chunk := block[start:end]
		alloc, err := dev.AllocWait(ctx, 2*int64(len(chunk))*kv.PairBytes)
		if err != nil {
			return nil, err
		}
		dev.CopyToDevice(int64(len(chunk)) * kv.PairBytes)
		dev.SortPairs(chunk)
		dev.CopyFromDevice(int64(len(chunk)) * kv.PairBytes)
		alloc.Free()
	}
	// Pairwise merge sorted chunks, doubling chunk size each round.
	src, dst := block, scratch
	for width := md; width < len(block); width *= 2 {
		for start := 0; start < len(src); start += 2 * width {
			aEnd := start + width
			if aEnd > len(src) {
				aEnd = len(src)
			}
			bEnd := start + 2*width
			if bEnd > len(src) {
				bEnd = len(src)
			}
			out := dst[start:start]
			emit := func(ps []kv.Pair) error {
				out = append(out, ps...)
				return nil
			}
			if err := mergeInMemory(ctx, cfg, src[start:aEnd], src[aEnd:bEnd], emit); err != nil {
				return nil, err
			}
		}
		src, dst = dst, src
	}
	return src, nil
}

// mergeInMemory merges two sorted in-memory lists by streaming m_d-sized
// windows through the device, following Algorithm 1 with M = m_d. The
// merged output is handed to emit in sorted order.
func mergeInMemory(ctx context.Context, cfg Config, a, b []kv.Pair, emit func([]kv.Pair) error) error {
	dev := cfg.Device
	half := cfg.DeviceBlockPairs / 2
	if half < 1 {
		half = 1
	}
	out := make([]kv.Pair, 0, 2*half)
	for len(a) > 0 && len(b) > 0 {
		wa, wb := window(a, half), window(b, half)
		// Entirely ordered windows short-circuit without a device trip
		// (lines 5-6 of Algorithm 1).
		if wa[len(wa)-1].Key.Less(wb[0].Key) {
			if err := emit(wa); err != nil {
				return err
			}
			a = a[len(wa):]
			continue
		}
		if wb[len(wb)-1].Key.Less(wa[0].Key) {
			if err := emit(wb); err != nil {
				return err
			}
			b = b[len(wb):]
			continue
		}
		// Equalize: truncate at the upper bound of the smaller last key
		// (lines 8-15).
		lastA, lastB := wa[len(wa)-1].Key, wb[len(wb)-1].Key
		if lastA.Cmp(lastB) != 0 {
			if k := kv.Min(lastA, lastB); k == lastA {
				wb = wb[:kv.UpperBound(wb, k)]
			} else {
				wa = wa[:kv.UpperBound(wa, k)]
			}
		}
		// GPU_MERGE of the equalized windows (line 16).
		alloc, err := dev.AllocWait(ctx, 2*int64(len(wa)+len(wb))*kv.PairBytes)
		if err != nil {
			return err
		}
		dev.CopyToDevice(int64(len(wa)+len(wb)) * kv.PairBytes)
		out = dev.MergePairsInto(out[:0], wa, wb)
		dev.CopyFromDevice(int64(len(out)) * kv.PairBytes)
		alloc.Free()
		if err := emit(out); err != nil {
			return err
		}
		a = a[len(wa):]
		b = b[len(wb):]
	}
	if len(a) > 0 {
		return emit(a)
	}
	if len(b) > 0 {
		return emit(b)
	}
	return nil
}

func window(ps []kv.Pair, n int) []kv.Pair {
	if len(ps) < n {
		return ps
	}
	return ps[:n]
}

// mergeRunFiles merges two sorted run files into one (Algorithm 1 at the
// disk level, M = m_h). Windows of m_h/2 pairs stream from each run into
// host memory; equalized windows are merged through the device via
// mergeInMemory.
func mergeRunFiles(ctx context.Context, cfg Config, pathA, pathB, outPath string) error {
	ra, err := kvio.NewReader(pathA, cfg.Meter)
	if err != nil {
		return err
	}
	defer ra.Close()
	rb, err := kvio.NewReader(pathB, cfg.Meter)
	if err != nil {
		return err
	}
	defer rb.Close()
	w, err := kvio.NewWriter(outPath, cfg.Meter)
	if err != nil {
		return err
	}

	half := cfg.HostBlockPairs / 2
	if half < 1 {
		half = 1
	}
	// A run shorter than a half-window never fills past its own length,
	// so its buffer can be run-sized; the windows streamed are identical.
	aCap := clampPairs(half, ra.Count())
	bCap := clampPairs(half, rb.Count())
	if cfg.HostMem != nil {
		hostBytes := int64(aCap+bCap) * hostPairBytes
		cfg.HostMem.Add(hostBytes)
		defer cfg.HostMem.Release(hostBytes)
	}
	wa := newWindowStream(ra, aCap)
	wb := newWindowStream(rb, bCap)
	emit := func(ps []kv.Pair) error { return w.WriteBatch(ps) }

	for {
		if err := ctx.Err(); err != nil {
			w.Close()
			return err
		}
		if err := wa.fill(); err != nil {
			w.Close()
			return err
		}
		if err := wb.fill(); err != nil {
			w.Close()
			return err
		}
		a, b := wa.buf, wb.buf
		if len(a) == 0 || len(b) == 0 {
			break
		}
		if !a[len(a)-1].Key.Less(b[0].Key) && !b[len(b)-1].Key.Less(a[0].Key) {
			// Windows interleave: equalize at the upper bound of the
			// smaller of the last keys, then merge through the device.
			lastA, lastB := a[len(a)-1].Key, b[len(b)-1].Key
			if lastA.Cmp(lastB) != 0 {
				if k := kv.Min(lastA, lastB); k == lastA {
					b = b[:kv.UpperBound(b, k)]
				} else {
					a = a[:kv.UpperBound(a, k)]
				}
			}
			if err := mergeInMemory(ctx, cfg, a, b, emit); err != nil {
				w.Close()
				return err
			}
			wa.consume(len(a))
			wb.consume(len(b))
			continue
		}
		// Disjoint windows: append the smaller one wholesale.
		if a[len(a)-1].Key.Less(b[0].Key) {
			if err := emit(a); err != nil {
				w.Close()
				return err
			}
			wa.consume(len(a))
		} else {
			if err := emit(b); err != nil {
				w.Close()
				return err
			}
			wb.consume(len(b))
		}
	}
	// One side is exhausted: stream the remainder of the other (line 19).
	for _, ws := range []*windowStream{wa, wb} {
		for {
			if err := ws.fill(); err != nil {
				w.Close()
				return err
			}
			if len(ws.buf) == 0 {
				break
			}
			if err := emit(ws.buf); err != nil {
				w.Close()
				return err
			}
			ws.consume(len(ws.buf))
		}
	}
	return w.Close()
}

// clampPairs caps a buffer size at the number of pairs actually present,
// keeping at least one slot so fill can detect EOF.
func clampPairs(window int, count int64) int {
	if count < int64(window) {
		window = int(count)
		if window < 1 {
			window = 1
		}
	}
	return window
}

// windowStream maintains a sliding window of unconsumed pairs over a
// sequential reader.
type windowStream struct {
	r    *kvio.Reader
	buf  []kv.Pair
	cap  int
	done bool
}

func newWindowStream(r *kvio.Reader, capPairs int) *windowStream {
	return &windowStream{r: r, buf: make([]kv.Pair, 0, capPairs), cap: capPairs}
}

// fill tops the window up to capacity.
func (ws *windowStream) fill() error {
	for len(ws.buf) < ws.cap && !ws.done {
		n := len(ws.buf)
		m, err := ws.r.ReadBatch(ws.buf[n:ws.cap])
		ws.buf = ws.buf[:n+m]
		if err == io.EOF {
			ws.done = true
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// consume drops the first n pairs from the window.
func (ws *windowStream) consume(n int) {
	remaining := copy(ws.buf, ws.buf[n:])
	ws.buf = ws.buf[:remaining]
}
