package extsort

import (
	"sync"

	"repro/internal/kv"
)

// pairPool recycles host-side pair buffers — run-formation blocks, the
// merge scratch, window-stream buffers, and the in-memory merge output —
// across partitions and merge passes, so a long sort of many partitions
// allocates its host blocks once instead of once per partition. The pool
// only recycles backing arrays: HostMem accounting is unchanged, because
// the modeled cost of a buffer is its reservation, not its allocation.
var pairPool sync.Pool

// getPairs returns a buffer of length exactly n with undefined contents.
// A pooled buffer with a larger capacity is re-sliced to n — never handed
// back at its previous partition's length, which would let a smaller
// partition read the previous partition's stale tail (see
// TestPooledBufferUnequalPartitions). A pooled buffer too small for the
// request is dropped for the GC.
func getPairs(n int) []kv.Pair {
	if v := pairPool.Get(); v != nil {
		buf := *(v.(*[]kv.Pair))
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]kv.Pair, n)
}

// putPairs recycles a buffer obtained from getPairs. The caller must not
// retain any alias past this call.
func putPairs(buf []kv.Pair) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	pairPool.Put(&buf)
}
