package overlap

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/stats"
)

func bigDevice() *gpu.Device {
	return gpu.NewDevice(gpu.Spec{Name: "test", Cores: 64, ClockMHz: 1000,
		MemBandwidthGBps: 100, MemBytes: 1 << 30}, nil)
}

type edge struct{ u, v uint32 }

func writeSorted(t *testing.T, path string, ps []kv.Pair) {
	t.Helper()
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
	w, err := kvio.NewWriter(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(ps); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// naiveMatches computes the expected edge multiset with a hash join.
func naiveMatches(sfx, pfx []kv.Pair) map[edge]int {
	byKey := map[kv.Key][]uint32{}
	for _, p := range pfx {
		byKey[p.Key] = append(byKey[p.Key], p.Val)
	}
	out := map[edge]int{}
	for _, s := range sfx {
		for _, v := range byKey[s.Key] {
			out[edge{s.Val, v}]++
		}
	}
	return out
}

func runReduce(t *testing.T, windowPairs int, sfx, pfx []kv.Pair) map[edge]int {
	t.Helper()
	dir := t.TempDir()
	sp := filepath.Join(dir, "sfx.kv")
	pp := filepath.Join(dir, "pfx.kv")
	writeSorted(t, sp, sfx)
	writeSorted(t, pp, pfx)
	got := map[edge]int{}
	cfg := Config{Device: bigDevice(), WindowPairs: windowPairs}
	err := ReducePaths(context.Background(), cfg, sp, pp, func(u, v uint32) error {
		got[edge{u, v}]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func pairsFromKeys(keys []uint64, valBase uint32) []kv.Pair {
	ps := make([]kv.Pair, len(keys))
	for i, k := range keys {
		ps[i] = kv.Pair{Key: kv.Key{Lo: k}, Val: valBase + uint32(i)}
	}
	return ps
}

func compareEdges(t *testing.T, got, want map[edge]int, label string) {
	t.Helper()
	for e, n := range want {
		if got[e] != n {
			t.Errorf("%s: edge %+v count = %d, want %d", label, e, got[e], n)
		}
	}
	for e, n := range got {
		if want[e] == 0 {
			t.Errorf("%s: unexpected edge %+v (count %d)", label, e, n)
		}
	}
}

func TestReduceSimpleMatches(t *testing.T) {
	sfx := pairsFromKeys([]uint64{5, 10, 15}, 0)
	pfx := pairsFromKeys([]uint64{10, 15, 20}, 100)
	got := runReduce(t, 64, sfx, pfx)
	want := naiveMatches(sfx, pfx)
	compareEdges(t, got, want, "simple")
	if len(got) != 2 {
		t.Errorf("got %d distinct edges, want 2", len(got))
	}
}

func TestReduceDuplicateKeys(t *testing.T) {
	sfx := pairsFromKeys([]uint64{7, 7, 7, 9}, 0)
	pfx := pairsFromKeys([]uint64{7, 7, 9, 9}, 100)
	got := runReduce(t, 64, sfx, pfx)
	want := naiveMatches(sfx, pfx) // 3*2 + 1*2 = 8 edges
	compareEdges(t, got, want, "dups")
	total := 0
	for _, n := range got {
		total += n
	}
	if total != 8 {
		t.Errorf("total edges = %d, want 8", total)
	}
}

func TestReduceTinyWindows(t *testing.T) {
	// Window of 2 forces many rounds, clipping, and boundary handling.
	rng := rand.New(rand.NewSource(1))
	var sfx, pfx []kv.Pair
	for i := 0; i < 100; i++ {
		sfx = append(sfx, kv.Pair{Key: kv.Key{Lo: uint64(rng.Intn(30))}, Val: uint32(i)})
		pfx = append(pfx, kv.Pair{Key: kv.Key{Lo: uint64(rng.Intn(30))}, Val: uint32(1000 + i)})
	}
	want := naiveMatches(sfx, pfx)
	for _, w := range []int{2, 3, 8, 64, 1000} {
		got := runReduce(t, w, append([]kv.Pair(nil), sfx...), append([]kv.Pair(nil), pfx...))
		compareEdges(t, got, want, fmt.Sprintf("window=%d", w))
	}
}

func TestReduceNoMatches(t *testing.T) {
	sfx := pairsFromKeys([]uint64{1, 2, 3}, 0)
	pfx := pairsFromKeys([]uint64{4, 5, 6}, 10)
	if got := runReduce(t, 4, sfx, pfx); len(got) != 0 {
		t.Errorf("expected no edges, got %v", got)
	}
}

func TestReduceEmptyInputs(t *testing.T) {
	if got := runReduce(t, 4, nil, pairsFromKeys([]uint64{1}, 0)); len(got) != 0 {
		t.Errorf("empty suffix side: %v", got)
	}
	if got := runReduce(t, 4, pairsFromKeys([]uint64{1}, 0), nil); len(got) != 0 {
		t.Errorf("empty prefix side: %v", got)
	}
}

func TestReduceAllKeysEqual(t *testing.T) {
	// The degenerate endgame: a single key dominating both lists.
	sfx := pairsFromKeys([]uint64{42, 42, 42, 42}, 0)
	pfx := pairsFromKeys([]uint64{42, 42, 42}, 100)
	got := runReduce(t, 1000, sfx, pfx)
	want := naiveMatches(sfx, pfx) // 12 edges
	compareEdges(t, got, want, "all-equal")
}

func TestReduceProperty(t *testing.T) {
	f := func(seed int64, nS, nP uint8, w8 uint8, keyRange8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		keyRange := uint64(keyRange8)%20 + 1
		var sfx, pfx []kv.Pair
		for i := 0; i < int(nS); i++ {
			sfx = append(sfx, kv.Pair{Key: kv.Key{Lo: rng.Uint64() % keyRange}, Val: uint32(i)})
		}
		for i := 0; i < int(nP); i++ {
			pfx = append(pfx, kv.Pair{Key: kv.Key{Lo: rng.Uint64() % keyRange}, Val: uint32(500 + i)})
		}
		want := naiveMatches(sfx, pfx)
		sort.Slice(sfx, func(i, j int) bool { return sfx[i].Less(sfx[j]) })
		sort.Slice(pfx, func(i, j int) bool { return pfx[i].Less(pfx[j]) })

		dir, err := mkTemp()
		if err != nil {
			return false
		}
		defer rmTemp(dir)
		sp, pp := filepath.Join(dir, "s.kv"), filepath.Join(dir, "p.kv")
		if writeErr(sp, sfx) != nil || writeErr(pp, pfx) != nil {
			return false
		}
		got := map[edge]int{}
		// Window must be >= the longest duplicate run for exactness; with
		// keyRange >= 1 and up to 255 pairs, 256 suffices.
		cfg := Config{Device: bigDevice(), WindowPairs: 256}
		if err := ReducePaths(context.Background(), cfg, sp, pp, func(u, v uint32) error {
			got[edge{u, v}]++
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for e, n := range want {
			if got[e] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReduceEmitError(t *testing.T) {
	dir := t.TempDir()
	sp, pp := filepath.Join(dir, "s.kv"), filepath.Join(dir, "p.kv")
	writeSorted(t, sp, pairsFromKeys([]uint64{1}, 0))
	writeSorted(t, pp, pairsFromKeys([]uint64{1}, 1))
	cfg := Config{Device: bigDevice(), WindowPairs: 8}
	err := ReducePaths(context.Background(), cfg, sp, pp, func(u, v uint32) error {
		return fmt.Errorf("stop")
	})
	if err == nil || err.Error() != "stop" {
		t.Errorf("emit error not propagated: %v", err)
	}
}

func TestReduceInvalidWindow(t *testing.T) {
	dir := t.TempDir()
	sp, pp := filepath.Join(dir, "s.kv"), filepath.Join(dir, "p.kv")
	writeSorted(t, sp, nil)
	writeSorted(t, pp, nil)
	cfg := Config{Device: bigDevice(), WindowPairs: 0}
	if err := ReducePaths(context.Background(), cfg, sp, pp, func(u, v uint32) error { return nil }); err == nil {
		t.Error("expected error for zero window")
	}
}

func TestReduceHostMemAccounting(t *testing.T) {
	var mem stats.MemTracker
	dir := t.TempDir()
	sp, pp := filepath.Join(dir, "s.kv"), filepath.Join(dir, "p.kv")
	writeSorted(t, sp, pairsFromKeys([]uint64{1, 2}, 0))
	writeSorted(t, pp, pairsFromKeys([]uint64{2, 3}, 5))
	cfg := Config{Device: bigDevice(), WindowPairs: 16, HostMem: &mem}
	if err := ReducePaths(context.Background(), cfg, sp, pp, func(u, v uint32) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if mem.Current() != 0 {
		t.Errorf("host memory leaked: %d", mem.Current())
	}
	// Window buffers are clamped to the partition size: 2 pairs per side.
	if mem.Peak() != int64(2+2)*hostPairBytes {
		t.Errorf("peak = %d, want %d", mem.Peak(), int64(2+2)*hostPairBytes)
	}

	// A partition larger than the window charges the full window.
	var big stats.MemTracker
	keys := make([]uint64, 40)
	for i := range keys {
		keys[i] = uint64(i)
	}
	writeSorted(t, sp, pairsFromKeys(keys, 0))
	writeSorted(t, pp, pairsFromKeys(keys, 100))
	cfg.HostMem = &big
	if err := ReducePaths(context.Background(), cfg, sp, pp, func(u, v uint32) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if big.Peak() != int64(2*16)*hostPairBytes {
		t.Errorf("large-partition peak = %d, want %d", big.Peak(), int64(2*16)*hostPairBytes)
	}
}
