package overlap

import (
	"os"

	"repro/internal/kv"
	"repro/internal/kvio"
)

// Helpers usable from testing/quick property functions.

func mkTemp() (string, error) { return os.MkdirTemp("", "overlap-quick-*") }

func rmTemp(dir string) { os.RemoveAll(dir) }

func writeErr(path string, ps []kv.Pair) error {
	w, err := kvio.NewWriter(path, nil)
	if err != nil {
		return err
	}
	if err := w.WriteBatch(ps); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
