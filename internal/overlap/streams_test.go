package overlap

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/kv"
)

func overlapProfile() costmodel.Profile {
	return costmodel.Profile{
		DiskReadBps:     1 << 20,
		DiskWriteBps:    1 << 20,
		NetBps:          1 << 20,
		HostMemBps:      1 << 22,
		DeviceMemBps:    1 << 24,
		DeviceOpsPerSec: 1 << 22,
		PCIeBps:         1 << 21,
	}
}

// reduceOnce runs one reduce and returns the ordered emission log and the
// meter snapshot. The log keeps emission order, not just the multiset:
// the streamed path must not reorder edges.
func reduceOnce(t *testing.T, windowPairs int, lg *costmodel.OverlapLedger, sfx, pfx []kv.Pair) ([]edge, costmodel.Counters) {
	t.Helper()
	dir := t.TempDir()
	sp := filepath.Join(dir, "sfx.kv")
	pp := filepath.Join(dir, "pfx.kv")
	writeSorted(t, sp, append([]kv.Pair(nil), sfx...))
	writeSorted(t, pp, append([]kv.Pair(nil), pfx...))
	var got []edge
	cfg := Config{
		Device:      bigDevice(),
		Meter:       costmodel.NewMeter(),
		WindowPairs: windowPairs,
		Overlap:     lg,
	}
	err := ReducePaths(context.Background(), cfg, sp, pp, func(u, v uint32) error {
		got = append(got, edge{u, v})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, cfg.Meter.Snapshot()
}

// The streamed reduce must emit the same edges in the same order with the
// same counters as the serial reduce, across window sizes that exercise
// clipping, refills, and the duplicate-run drain path.
func TestReduceStreamsIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var sfx, pfx []kv.Pair
	for i := 0; i < 400; i++ {
		sfx = append(sfx, kv.Pair{Key: kv.Key{Lo: uint64(rng.Intn(500))}, Val: uint32(i)})
		pfx = append(pfx, kv.Pair{Key: kv.Key{Lo: uint64(rng.Intn(500))}, Val: uint32(10000 + i)})
	}
	// A fingerprint run longer than the small windows forces the drain
	// path under streaming too.
	for i := 0; i < 30; i++ {
		sfx = append(sfx, kv.Pair{Key: kv.Key{Lo: 250}, Val: uint32(20000 + i)})
		pfx = append(pfx, kv.Pair{Key: kv.Key{Lo: 250}, Val: uint32(30000 + i)})
	}

	// Window 1000 holds both partitions in one round, so there is nothing
	// to prefetch and saved seconds are legitimately zero; identity must
	// still hold.
	for _, w := range []int{2, 3, 8, 64, 1000} {
		wantSaved := w < 1000
		t.Run(fmt.Sprintf("window=%d", w), func(t *testing.T) {
			serialEdges, serialCtr := reduceOnce(t, w, nil, sfx, pfx)

			lg := costmodel.NewOverlapLedger(overlapProfile())
			streamEdges, streamCtr := reduceOnce(t, w, lg, sfx, pfx)

			if len(streamEdges) != len(serialEdges) {
				t.Fatalf("streamed emitted %d edges, serial %d", len(streamEdges), len(serialEdges))
			}
			for i := range serialEdges {
				if streamEdges[i] != serialEdges[i] {
					t.Fatalf("edge %d: streamed %+v, serial %+v (order must match)",
						i, streamEdges[i], serialEdges[i])
				}
			}
			if streamCtr != serialCtr {
				t.Fatalf("streamed counters %+v != serial %+v", streamCtr, serialCtr)
			}
			if saved := lg.SavedSeconds(); saved < 0 {
				t.Errorf("negative saved seconds %v", saved)
			} else if wantSaved && saved <= 0 {
				t.Errorf("saved = %v, want > 0 (window prefetch should overlap kernels)", saved)
			}
			if o, s := lg.OverlappedSeconds(), lg.SerialSeconds(); o > s+1e-12 {
				t.Errorf("overlapped %v exceeds serial %v", o, s)
			}
		})
	}
}
