// Package overlap implements the reduce phase (Section III-C, Algorithm
// 2): finding suffix-prefix matches between two fingerprint-sorted
// partition files.
//
// Two windows of at most M/2 pairs stream from the suffix and prefix
// lists. Each round the windows are clipped so that a fingerprint present
// in the suffix window cannot occur in any prefix window except the
// current one: both windows are resized to the lower bound of the smaller
// of their largest fingerprints (keys equal to the boundary stay buffered
// for the next round, since more occurrences may follow in the stream).
// The clipped windows are shipped to the device, where vectorized lower-
// and upper-bound searches yield per-suffix match counts, and one
// candidate edge is emitted per (suffix, prefix) fingerprint match.
//
// One practical extension over the paper: when a single fingerprint's run
// of duplicates fills a whole window (possible for extreme-coverage
// repeats) the lower-bound resize would empty both windows and Algorithm 2
// as published stalls. Those runs are handled exactly by a dedicated drain
// path that joins the key's complete suffix and prefix runs across window
// refills, at the cost of host memory proportional to the run length
// instead of the window size.
package overlap

import (
	"context"
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Config parameterizes a reduce pass.
type Config struct {
	Device      *gpu.Device
	Meter       *costmodel.Meter  // meters disk traffic; may be nil
	HostMem     *stats.MemTracker // accounts window buffers; may be nil
	WindowPairs int               // M/2: pairs per window
	Obs         *obs.Observer     // observability sink; may be nil

	// Overlap, when non-nil, enables streamed execution: the next
	// suffix/prefix windows are prefetched on an async I/O stream while
	// the current windows' bounds kernels run, and every charge lands on
	// an overlap-aware modeled timeline committed to this ledger. Emitted
	// edges and counters are identical to the serial path.
	Overlap *costmodel.OverlapLedger
}

// hostPairBytes is the in-memory footprint of one pair.
const hostPairBytes = 24

// Emit receives one candidate edge: the read strand whose suffix matched
// (u) and the read strand whose prefix matched (v). Returning an error
// aborts the reduce.
type Emit func(u, v uint32) error

// ReducePaths streams the sorted suffix and prefix partition files and
// emits every fingerprint match. Both files must be sorted by fingerprint.
// Cancellation of ctx aborts between window rounds with ctx.Err().
func ReducePaths(ctx context.Context, cfg Config, sfxPath, pfxPath string, emit Emit) error {
	sr, err := kvio.NewReader(sfxPath, cfg.Meter)
	if err != nil {
		return err
	}
	defer sr.Close()
	pr, err := kvio.NewReader(pfxPath, cfg.Meter)
	if err != nil {
		return err
	}
	defer pr.Close()
	return Reduce(ctx, cfg, sr, pr, emit)
}

// Reduce is ReducePaths over already-open readers.
func Reduce(ctx context.Context, cfg Config, sfxReader, pfxReader *kvio.Reader, emit Emit) error {
	if cfg.WindowPairs < 1 {
		return fmt.Errorf("overlap: WindowPairs must be positive, got %d", cfg.WindowPairs)
	}
	// Candidate counting wraps emit: the counter is resolved once per
	// reduce and bumped per emission (nil-safe all the way down).
	candidates := cfg.Obs.Metrics().Counter("overlap.candidates")
	if candidates != nil {
		inner := emit
		emit = func(u, v uint32) error {
			candidates.Add(1)
			return inner(u, v)
		}
	}
	dev := cfg.Device
	// One modeled timeline per reduce: a single async I/O stream
	// prefetches both windows (one disk engine, charges serialized on the
	// disk-read tier) while the inline compute stream carries the device
	// pass. With Overlap nil everything collapses to the serial path.
	tl := cfg.Overlap.NewTimeline()
	defer tl.Commit()
	streams := tl != nil
	ioS := dev.NewStream("reduce-io", tl.Line("prefetch"), streams)
	defer ioS.Close()
	cmp := dev.NewStream("reduce-compute", tl.Line("compute"), false)
	// A partition smaller than a window needs only a partition-sized
	// buffer; the windows seen by the device are identical either way.
	// Streamed reduces double the buffers for the prefetch spares.
	sCap := clampPairs(cfg.WindowPairs, sfxReader.Count())
	pCap := clampPairs(cfg.WindowPairs, pfxReader.Count())
	bufs := 1
	if streams {
		bufs = 2
	}
	if cfg.HostMem != nil {
		hostBytes := int64(bufs) * int64(sCap+pCap) * hostPairBytes
		cfg.HostMem.Add(hostBytes)
		defer cfg.HostMem.Release(hostBytes)
	}
	ws := newWindowStream(sfxReader, sCap, streams)
	wp := newWindowStream(pfxReader, pCap, streams)

	if streams {
		ws.advance(ioS, 0)
		wp.advance(ioS, 0)
	}
	var lb, ub, diff []int32
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		syncErr := ioS.Sync()
		ws.adopt()
		wp.adopt()
		if syncErr != nil {
			return syncErr
		}
		// The round consumes data the I/O stream produced.
		cmp.WaitModeled(ioS.ModeledCursor())
		if err := ws.fill(); err != nil {
			return err
		}
		if err := wp.fill(); err != nil {
			return err
		}
		s, p := ws.buf, wp.buf
		if len(s) == 0 || len(p) == 0 {
			break
		}
		// Clip both windows at the lower bound of the smaller of the two
		// largest fingerprints (lines 5-7). Pairs carrying the boundary
		// key stay buffered, because later window fills may bring more
		// occurrences of that key on either stream.
		f := kv.Min(s[len(s)-1].Key, p[len(p)-1].Key)
		cs := s[:kv.LowerBound(s, f)]
		cp := p[:kv.LowerBound(p, f)]
		if len(cs) == 0 && len(cp) == 0 {
			// Neither window holds anything below the boundary: the
			// smallest key present spans a whole window (a duplicate run
			// at least window-sized, or the endgame where both streams
			// finish on the boundary key). Drain that one key exactly.
			if err := drainKey(ws, wp, emit); err != nil {
				return err
			}
			continue
		} else if len(cs) == 0 || len(cp) == 0 {
			// One side holds only boundary-key pairs; the other side's
			// clipped portion cannot match them, so consume it alone.
			ws.consume(len(cs))
			wp.consume(len(cp))
			continue
		}

		// Prefetch the next windows before the device pass: the advance
		// ops read buf[consumed:] and the readers, never the clipped
		// windows the kernels and the emission loop are using.
		if streams {
			ws.advance(ioS, len(cs))
			wp.advance(ioS, len(cp))
		}

		// Device pass: vectorized bounds and counts (lines 8-10).
		// AllocWait lets concurrent partition reducers share the device;
		// capacity bounds how many windows are resident at once.
		alloc, err := dev.AllocWait(ctx, int64(len(cs)+len(cp))*kv.PairBytes+3*4*int64(len(cs)))
		if err != nil {
			return err
		}
		cmp.CopyToDeviceAsync(int64(len(cs)+len(cp)) * kv.PairBytes)
		lb = cmp.VecLowerBound(cs, cp, lb)
		ub = cmp.VecUpperBound(cs, cp, ub)
		diff = cmp.VecDifference(ub, lb, diff)
		cmp.CopyFromDeviceAsync(3 * 4 * int64(len(cs)))
		alloc.Free()

		// Edge emission (lines 11-17).
		for i := range cs {
			if diff[i] <= 0 {
				continue
			}
			for j := lb[i]; j < ub[i]; j++ {
				if err := emit(cs[i].Val, cp[j].Val); err != nil {
					return err
				}
			}
		}
		if !streams {
			ws.consume(len(cs))
			wp.consume(len(cp))
		}
	}
	return nil
}

// drainKey exactly processes the smallest key visible in either window
// when that key's duplicates fill a whole window. It collects the key's
// complete run of prefix values (refilling across window boundaries),
// streams the suffix run against it, and emits the full cross product.
// Host memory here is bounded by the run length rather than the window —
// the one place the implementation deliberately exceeds the paper's M,
// because Algorithm 2 as published stalls or drops matches on runs longer
// than a window (see package comment).
func drainKey(ws, wp *windowStream, emit Emit) error {
	k := kv.Min(ws.buf[0].Key, wp.buf[0].Key)
	if k != ws.buf[0].Key || k != wp.buf[0].Key {
		// Only one stream holds k: drain its run without emitting.
		side := ws
		if k == wp.buf[0].Key {
			side = wp
		}
		_, err := collectRun(side, k)
		return err
	}
	pvals, err := collectRun(wp, k)
	if err != nil {
		return err
	}
	for {
		if err := ws.fill(); err != nil {
			return err
		}
		n := 0
		for n < len(ws.buf) && ws.buf[n].Key == k {
			n++
		}
		if n == 0 {
			return nil // run over (or suffix stream never held k)
		}
		for i := 0; i < n; i++ {
			for _, v := range pvals {
				if err := emit(ws.buf[i].Val, v); err != nil {
					return err
				}
			}
		}
		ws.consume(n)
		if len(ws.buf) > 0 {
			return nil // a key beyond k surfaced: run finished
		}
	}
}

// collectRun consumes and returns every value carrying key k from the
// stream, refilling the window as needed.
func collectRun(ws *windowStream, k kv.Key) ([]uint32, error) {
	var vals []uint32
	for {
		if err := ws.fill(); err != nil {
			return nil, err
		}
		n := 0
		for n < len(ws.buf) && ws.buf[n].Key == k {
			vals = append(vals, ws.buf[n].Val)
			n++
		}
		ws.consume(n)
		if len(ws.buf) > 0 || n == 0 {
			return vals, nil // a later key surfaced, or the stream ended
		}
	}
}

// clampPairs caps a window size at the number of pairs actually present,
// keeping at least one slot so fill can detect EOF.
func clampPairs(window int, count int64) int {
	if count < int64(window) {
		window = int(count)
		if window < 1 {
			window = 1
		}
	}
	return window
}

// windowStream maintains a sliding window over a sequential reader. With
// a spare buffer it also supports asynchronous advancement (see advance),
// producing windows identical to the synchronous consume-then-fill path.
type windowStream struct {
	r     *kvio.Reader
	buf   []kv.Pair
	spare []kv.Pair // second buffer; non-nil enables advance
	cap   int
	done  bool

	pending     bool
	pendingBuf  []kv.Pair
	pendingDone bool
}

func newWindowStream(r *kvio.Reader, capPairs int, spare bool) *windowStream {
	ws := &windowStream{r: r, buf: make([]kv.Pair, 0, capPairs), cap: capPairs}
	if spare {
		ws.spare = make([]kv.Pair, 0, capPairs)
	}
	return ws
}

// advance enqueues the window's next state on the I/O stream: drop the
// first consumeN pairs, then top up from the reader into the spare
// buffer, mirroring fill's semantics (including EOF detection via
// Remaining). The op never mutates buf, so the caller may keep reading
// buf[:consumeN] while it runs; adopt swaps the result in after the
// stream syncs. Disk bytes are charged to the stream's modeled timeline.
func (ws *windowStream) advance(ioS *gpu.Stream, consumeN int) {
	ws.pending = true
	ioS.Enqueue("advance-window", func() error {
		nb := ws.spare[:0]
		nb = append(nb, ws.buf[consumeN:]...)
		done := ws.done
		read := 0
		var ferr error
		for len(nb) < ws.cap && !done {
			n := len(nb)
			m, err := ws.r.ReadBatch(nb[n:ws.cap])
			nb = nb[:n+m]
			read += m
			if err == io.EOF {
				done = true
				break
			}
			if err != nil {
				ferr = err
				break
			}
		}
		if !done && ws.r.Remaining() == 0 {
			done = true
		}
		ws.pendingBuf, ws.pendingDone = nb, done
		ioS.Charge(costmodel.TierDiskRead, int64(read)*kv.PairBytes)
		return ferr
	})
}

// adopt installs the most recent advance's result as the current window.
// Only call it after the I/O stream has synced.
func (ws *windowStream) adopt() {
	if !ws.pending {
		return
	}
	ws.pending = false
	old := ws.buf
	ws.buf = ws.pendingBuf
	ws.spare = old[:0]
	ws.done = ws.pendingDone
	ws.pendingBuf = nil
}

func (ws *windowStream) fill() error {
	for len(ws.buf) < ws.cap && !ws.done {
		n := len(ws.buf)
		m, err := ws.r.ReadBatch(ws.buf[n:ws.cap])
		ws.buf = ws.buf[:n+m]
		if err == io.EOF {
			ws.done = true
			return nil
		}
		if err != nil {
			return err
		}
	}
	if !ws.done && ws.r.Remaining() == 0 {
		ws.done = true
	}
	return nil
}

func (ws *windowStream) consume(n int) {
	remaining := copy(ws.buf, ws.buf[n:])
	ws.buf = ws.buf[:remaining]
}

// exhausted reports whether the underlying stream has no pairs beyond the
// current window.
func (ws *windowStream) exhausted() bool { return ws.done }
