package stats

import (
	"sync"
	"testing"
)

// TestMemTrackerConcurrentPeakBounds audits the tracker under the
// parallel pipeline's access pattern: many goroutines adding and
// releasing concurrently. The running total must return to zero and the
// recorded peak must never exceed the true worst case nor undercut the
// largest single holder.
func TestMemTrackerConcurrentPeakBounds(t *testing.T) {
	const (
		goroutines = 16
		iters      = 1000
		chunk      = int64(64)
	)
	var m MemTracker
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Add(chunk)
				m.Add(chunk)
				m.Release(chunk)
				m.Release(chunk)
			}
		}()
	}
	wg.Wait()
	if m.Current() != 0 {
		t.Fatalf("Current = %d after balanced add/release, want 0", m.Current())
	}
	peak := m.Peak()
	if peak < 2*chunk {
		t.Errorf("Peak = %d, below one goroutine's working set %d", peak, 2*chunk)
	}
	if max := goroutines * 2 * chunk; peak > max {
		t.Errorf("Peak = %d, above the theoretical maximum %d", peak, max)
	}
}
