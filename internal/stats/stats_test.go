package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMemTrackerPeak(t *testing.T) {
	var m MemTracker
	m.Add(100)
	m.Add(50)
	m.Release(120)
	if m.Current() != 30 {
		t.Errorf("Current = %d, want 30", m.Current())
	}
	if m.Peak() != 150 {
		t.Errorf("Peak = %d, want 150", m.Peak())
	}
	m.ResetPeak()
	if m.Peak() != 30 {
		t.Errorf("Peak after reset = %d, want 30", m.Peak())
	}
	m.Add(5)
	if m.Peak() != 35 {
		t.Errorf("Peak = %d, want 35", m.Peak())
	}
}

func TestMemTrackerConcurrent(t *testing.T) {
	var m MemTracker
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add(3)
				m.Release(3)
			}
		}()
	}
	wg.Wait()
	if m.Current() != 0 {
		t.Errorf("Current = %d, want 0", m.Current())
	}
	if m.Peak() < 3 {
		t.Errorf("Peak = %d, want >= 3", m.Peak())
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{16*time.Hour + 21*time.Minute + 9*time.Second, "16h 21m 9s"},
		{9*time.Minute + 36*time.Second, "9m 36s"},
		{25 * time.Second, "25s"},
		{0, "0s"},
		{1500 * time.Microsecond, "1.5ms"},
		{-65 * time.Second, "-1m 5s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 * 1024 * 1024, "3.00 MiB"},
		{int64(1.5 * 1024 * 1024 * 1024), "1.50 GiB"},
		{-2048, "-2.00 KiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{45711162, "45,711,162"},
		{1247518392, "1,247,518,392"},
		{-4559, "-4,559"},
	}
	for _, c := range cases {
		if got := FormatCount(c.n); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestTimerAndPhaseString(t *testing.T) {
	tm := StartTimer()
	if tm.Elapsed() < 0 {
		t.Error("Elapsed should be non-negative")
	}
	p := PhaseStats{Name: "Sort", Wall: time.Second, PeakHost: 1024}
	s := p.String()
	for _, want := range []string{"Sort", "1s", "1.00 KiB"} {
		if !strings.Contains(s, want) {
			t.Errorf("PhaseStats.String() = %q missing %q", s, want)
		}
	}
}

// TestFormatDurationRounding pins the unit-boundary behavior: second
// rounding may carry into the minute (and hour) fields, and the carried
// form must keep its zero components rather than dropping a unit.
func TestFormatDurationRounding(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{59*time.Second + 500*time.Millisecond, "1m 0s"},
		{59*time.Minute + 59*time.Second + 700*time.Millisecond, "1h 0m 0s"},
		{999400 * time.Nanosecond, "999µs"}, // sub-second keeps Go unit form
		{time.Second - time.Nanosecond, "1s"},
		{-(59*time.Second + 500*time.Millisecond), "-1m 0s"},
		{-1500 * time.Microsecond, "-1.5ms"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestFormatBytesExtremes pins unit boundaries and the PiB cap: counts
// beyond 1024 PiB stay in PiB (no EiB unit) with a growing mantissa.
func TestFormatBytesExtremes(t *testing.T) {
	const (
		kib = int64(1024)
		pib = kib * kib * kib * kib * kib
	)
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0 B"},
		{1023, "1023 B"},
		{1024, "1.00 KiB"},
		{kib*kib - 1, "1024.00 KiB"}, // rounds up within the KiB tier
		{3 * pib, "3.00 PiB"},
		{2048 * pib, "2048.00 PiB"}, // beyond the last unit: mantissa grows
		{-3 * pib, "-3.00 PiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

// TestFormatCountBoundaries covers the 3/4-digit grouping boundary both
// ways around zero.
func TestFormatCountBoundaries(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{99, "99"},
		{100, "100"},
		{999, "999"},
		{1000, "1,000"},
		{9999, "9,999"},
		{10000, "10,000"},
		{-999, "-999"},
		{-1000, "-1,000"},
	}
	for _, c := range cases {
		if got := FormatCount(c.n); got != c.want {
			t.Errorf("FormatCount(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

// TestPhaseStringObservabilityFields: the row must carry the network,
// PCIe, and device-op columns the cluster tables read.
func TestPhaseStringObservabilityFields(t *testing.T) {
	p := PhaseStats{
		Name:      "Shuffle",
		NetBytes:  3 * 1024 * 1024,
		PCIeBytes: 2 * 1024,
		DeviceOps: 1234567,
	}
	s := p.String()
	for _, want := range []string{"net=3.00 MiB", "pcie=2.00 KiB", "devOps=1,234,567"} {
		if !strings.Contains(s, want) {
			t.Errorf("PhaseStats.String() = %q missing %q", s, want)
		}
	}
}
