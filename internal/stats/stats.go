// Package stats provides phase timing, peak-memory tracking, and the
// human-readable formatting used by the evaluation harness to print
// paper-style tables (e.g. "2h 23m 55s" phase rows in Tables II/III).
package stats

import (
	"fmt"
	"sync/atomic"
	"time"
)

// MemTracker tracks the current and peak size of a logical memory pool
// (host buffers or device allocations). It is safe for concurrent use.
type MemTracker struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Add records an allocation of n bytes (n may be negative for a release).
func (m *MemTracker) Add(n int64) {
	cur := m.cur.Add(n)
	for {
		peak := m.peak.Load()
		if cur <= peak || m.peak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// Release records freeing n bytes.
func (m *MemTracker) Release(n int64) { m.Add(-n) }

// Current returns the current tracked size.
func (m *MemTracker) Current() int64 { return m.cur.Load() }

// Peak returns the high-water mark.
func (m *MemTracker) Peak() int64 { return m.peak.Load() }

// ResetPeak sets the peak back to the current level, so per-phase peaks can
// be measured independently.
func (m *MemTracker) ResetPeak() { m.peak.Store(m.cur.Load()) }

// PhaseStats summarizes one pipeline phase for the evaluation tables.
type PhaseStats struct {
	Name       string
	Wall       time.Duration // measured wall-clock time
	Modeled    time.Duration // analytic time under the hardware profile
	PeakHost   int64         // peak host-memory bytes during the phase
	PeakDevice int64         // peak device-memory bytes during the phase
	DiskRead   int64         // bytes read from disk during the phase
	DiskWrite  int64         // bytes written to disk during the phase
	NetBytes   int64         // bytes crossing the network during the phase
	PCIeBytes  int64         // bytes over PCIe during the phase
	DeviceOps  int64         // device compute operations during the phase
	// GraphHostPeak is the peak host-memory bytes attributable to the
	// graph representation itself (builder + adjacency structure) during
	// the phase — the quantity the backend choice moves, reported
	// separately from PeakHost so representation wins are visible next
	// to sort-buffer noise.
	GraphHostPeak int64
	// OverlapSaved is the modeled time hidden by stream overlap during the
	// phase; Modeled already has it subtracted (Modeled + OverlapSaved is
	// the additive no-overlap figure).
	OverlapSaved time.Duration
}

// String renders a single-line summary.
func (p PhaseStats) String() string {
	return fmt.Sprintf("%-9s wall=%-12s modeled=%-12s hostPeak=%-9s graphPeak=%-9s devPeak=%-9s diskR=%-9s diskW=%-9s net=%-9s pcie=%-9s devOps=%s",
		p.Name, FormatDuration(p.Wall), FormatDuration(p.Modeled),
		FormatBytes(p.PeakHost), FormatBytes(p.GraphHostPeak),
		FormatBytes(p.PeakDevice),
		FormatBytes(p.DiskRead), FormatBytes(p.DiskWrite),
		FormatBytes(p.NetBytes), FormatBytes(p.PCIeBytes),
		FormatCount(p.DeviceOps))
}

// Timer measures a phase's wall time.
type Timer struct{ start time.Time }

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// FormatDuration renders a duration in the paper's table style:
// "16h 21m 9s", "9m 36s", "25s", "1.2ms".
func FormatDuration(d time.Duration) string {
	if d < 0 {
		return "-" + FormatDuration(-d)
	}
	if d < time.Second {
		return d.Round(time.Microsecond).String()
	}
	d = d.Round(time.Second)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	s := (d % time.Minute) / time.Second
	switch {
	case h > 0:
		return fmt.Sprintf("%dh %dm %ds", h, m, s)
	case m > 0:
		return fmt.Sprintf("%dm %ds", m, s)
	default:
		return fmt.Sprintf("%ds", s)
	}
}

// FormatBytes renders a byte count with a binary-scaled unit.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < 0 {
		return "-" + FormatBytes(-n)
	}
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit && exp < 4; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(n)/float64(div), "KMGTP"[exp])
}

// FormatCount renders a large count with thousands separators, matching
// the dataset table in the paper (e.g. "1,247,518,392").
func FormatCount(n int64) string {
	if n < 0 {
		return "-" + FormatCount(-n)
	}
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	out := make([]byte, 0, len(s)+len(s)/3)
	lead := len(s) % 3
	if lead > 0 {
		out = append(out, s[:lead]...)
	}
	for i := lead; i < len(s); i += 3 {
		if len(out) > 0 {
			out = append(out, ',')
		}
		out = append(out, s[i:i+3]...)
	}
	return string(out)
}
