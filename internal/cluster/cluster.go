// Package cluster implements the distributed LaSAGNA of Section III-E:
// multiple nodes, each with private scratch storage and its own simulated
// GPU, cooperating through master-assigned input blocks, an all-to-all
// shuffle of length partitions, and a reduce phase serialized by passing
// the out-degree bit-vector from the node owning partition l+1 to the
// node owning partition l.
//
// Nodes are simulated in-process: each runs its phase work in its own
// goroutine against its own storage directory, device, and cost meter.
// The original system's GASNet active messages become direct metered
// reads of the peer's partition file (the paper's message handler does
// exactly that: read the requested partition, respond with a chunk), with
// cross-node bytes charged to the network. Per-phase modeled time is the
// maximum over nodes for the parallel phases, plus the serialized
// graph-building and token-forwarding component in the reduce phase —
// reproducing the paper's t_o*p/n + t_g*p scalability bound.
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/contig"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dna"
	"repro/internal/extsort"
	"repro/internal/fastq"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/sgraph"
	"repro/internal/spmat"
	"repro/internal/stats"
	"repro/internal/succinct"
)

// Config parameterizes a cluster run. Block sizes have the same meaning
// as in core.Config but apply per node.
type Config struct {
	Nodes            int
	Workspace        string
	MinOverlap       int
	HostBlockPairs   int
	DeviceBlockPairs int
	MapBatchReads    int
	// InputBlockReads is the size of the input blocks the master hands
	// out during the map phase.
	InputBlockReads int
	// WorkersPerNode bounds each node's partition-level concurrency (map
	// batches in flight, partitions sorted/reduced at once), on top of the
	// node-level parallelism the cluster already provides. 0 or 1 keeps
	// each node serial; each in-flight unit holds its own allocation on
	// the node's device, so per-node device capacity still bounds it.
	// Output is identical for every value.
	WorkersPerNode int
	GPU            gpu.Spec
	// Fleet, when set, supplies the nodes' devices instead of fresh
	// per-node cards: node i runs on Fleet.Device(i) and meters on that
	// device's meter, so a serving layer that leased fleet devices to a
	// sharded job sees the job's device traffic on the cards it placed it
	// on. Requires Fleet.Size() >= Nodes. GPU must still describe the
	// per-node card for cost modeling and manifest fingerprints; callers
	// hand the cluster a fleet whose devices match it.
	Fleet        *gpu.Fleet
	DiskReadBps  float64
	DiskWriteBps float64
	NetBps       float64
	// PartitionByFingerprint switches the shuffle from length-based to
	// fingerprint-range-based ownership (the paper's future work,
	// Section IV-D): every node reduces a slice of every partition, so
	// the reduce parallelism no longer caps at the number of length
	// partitions, at the cost of a finer-grained shuffle.
	PartitionByFingerprint bool
	IncludeSingletons      bool
	BreakCycles            bool
	// GraphBackend selects the reduce/compress engine, mirroring
	// core.Config.GraphBackend: "" or core.BackendGreedy runs the paper's
	// serialized greedy graph with bit-vector token forwarding;
	// core.BackendSpmat ships every node's candidate list to the master,
	// builds the CSR string graph there (the spmat Builder is
	// order-independent, so the cluster's arrival order cannot change the
	// matrix), and removes transitive edges with the masked SpGEMM pass on
	// the master's device. core.BackendSuccinct also serializes through
	// the master but spills candidates to disk and streams the sorted
	// runs into the compressed store, so the master's host peak stays at
	// the compressed size instead of the CSR size. Contig output is
	// byte-identical to a single-node run under the same backend.
	// Output-relevant: part of the per-node manifest fingerprints.
	GraphBackend string
	// TransitiveFuzz is the overhang slack for the spmat transitive
	// reduction, mirroring core.Config.TransitiveFuzz.
	TransitiveFuzz int
	// Resume re-enters an interrupted run from the nodes' private storage
	// directories, mirroring core.Config.Resume: each node keeps a run
	// manifest in its own dir, and a per-node stage (Map, Shuffle, Sort)
	// is skipped only when every node committed and can still validate it
	// (lockstep resume — the cluster never runs with nodes in inconsistent
	// stages). Reduce and compress always re-run: their state is the
	// cross-node token and in-memory candidate lists, which the paper's
	// design never checkpoints.
	Resume bool
	// Streams enables overlapped execution modeling on every node,
	// mirroring core.Config.Streams: per-node sort and reduce work runs on
	// gpu.Streams and each node's modeled phase time becomes the
	// overlap-aware makespan before the max-over-nodes aggregation.
	// Output and counters are identical either way. Execution knob:
	// excluded from the per-node manifest fingerprints.
	Streams bool
	// Obs is the observability sink shared by the coordinator and every
	// node. In the trace the coordinator is pid 0 and node i is pid i+1.
	// Nil disables all instrumentation.
	Obs *obs.Observer
}

// DefaultConfig mirrors core.DefaultConfig for an n-node SuperMic-style
// cluster (K20X nodes on 56 Gb/s InfiniBand).
func DefaultConfig(workspace string, nodes int) Config {
	return Config{
		Nodes:            nodes,
		Workspace:        workspace,
		MinOverlap:       63,
		HostBlockPairs:   1 << 20,
		DeviceBlockPairs: 1 << 16,
		MapBatchReads:    4096,
		InputBlockReads:  2048,
		GPU:              gpu.K20X,
		DiskReadBps:      costmodel.DefaultDisk.ReadBps,
		DiskWriteBps:     costmodel.DefaultDisk.WriteBps,
		NetBps:           costmodel.InfiniBand56G,
		BreakCycles:      true,
		Streams:          true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	}
	if c.Workspace == "" {
		return fmt.Errorf("cluster: empty workspace")
	}
	if c.InputBlockReads <= 0 {
		return fmt.Errorf("cluster: InputBlockReads must be positive")
	}
	if c.WorkersPerNode < 0 {
		return fmt.Errorf("cluster: WorkersPerNode must be >= 0, got %d", c.WorkersPerNode)
	}
	if c.Fleet != nil && c.Fleet.Size() < c.Nodes {
		return fmt.Errorf("cluster: %d nodes need %d fleet devices, fleet has %d",
			c.Nodes, c.Nodes, c.Fleet.Size())
	}
	single := core.Config{
		Workspace:        c.Workspace,
		MinOverlap:       c.MinOverlap,
		HostBlockPairs:   c.HostBlockPairs,
		DeviceBlockPairs: c.DeviceBlockPairs,
		MapBatchReads:    c.MapBatchReads,
		GPU:              c.GPU,
		GraphBackend:     c.GraphBackend,
		TransitiveFuzz:   c.TransitiveFuzz,
	}
	return single.Validate()
}

// backend resolves the GraphBackend knob: the empty string means greedy.
func (c Config) backend() string {
	if c.GraphBackend == "" {
		return core.BackendGreedy
	}
	return c.GraphBackend
}

func (c Config) profile() costmodel.Profile {
	p := c.GPU.CostProfile(c.DiskReadBps, c.DiskWriteBps)
	p.NetBps = c.NetBps
	return p
}

// PhaseShuffle is the cluster-only phase between map and sort: the
// all-to-all aggregation of partitions onto their owners.
const PhaseShuffle core.PhaseName = "Shuffle"

// node is one simulated compute node.
type node struct {
	id      int
	dir     string
	dev     *gpu.Device
	meter   *costmodel.Meter
	hostMem stats.MemTracker
	counts  map[int]int64 // owned-partition tuple counts after shuffle
	edges   []graph.Edge  // accepted edges for owned partitions
	// ledger accumulates the node's modeled overlap savings; nil when
	// Config.Streams is off.
	ledger *costmodel.OverlapLedger
}

// Cluster is a simulated multi-node deployment.
type Cluster struct {
	cfg   Config
	nodes []*node
	// serial meters the reduce phase's serialized component: greedy graph
	// building and bit-vector token forwarding (or, under the spmat
	// backend, CSR assembly on the master).
	serial *costmodel.Meter
	// spmatRed holds the master's transitive reduction between the reduce
	// and compress phases when the spmat backend is selected; reset at the
	// start of every reduce.
	spmatRed *spmat.Reduction
	// succRed is the succinct backend's analogue: the masked reduction
	// over the master's compressed store.
	succRed *succinct.Reduction

	// FaultHook, when set, fires after a node commits a stage to its
	// manifest, mirroring core.Pipeline.FaultHook. Returning an error
	// aborts the run as a node crash at that point would; the node-restart
	// tests inject crashes through it.
	FaultHook func(nodeID int, stage core.PhaseName) error
}

// Result reports a distributed assembly.
type Result struct {
	Phases      []stats.PhaseStats
	NodeModeled map[core.PhaseName][]time.Duration // per-node modeled time per phase
	Contigs     []dna.Seq
	ContigStats contig.Stats
	ContigPath  string

	NumReads       int
	CandidateEdges int64
	AcceptedEdges  int64
	// ReducedEdges counts the transitive edges removed by the spmat
	// backend's masked SpGEMM pass; zero under the greedy backend, which
	// never materializes transitive edges.
	ReducedEdges int64
	TotalWall    time.Duration
	TotalModeled time.Duration

	// Counters sums every node meter plus the serialized-reduce meter at
	// the end of the run; Modeled is its per-tier breakdown under the
	// cluster's GPU profile. Note TotalModeled is a max-over-nodes per
	// phase, so Modeled.Total() (aggregate work) exceeds it whenever the
	// cluster ran in parallel.
	Counters costmodel.Counters
	Modeled  costmodel.Breakdown

	// CachedStages lists the per-node stages a resumed run (Config.Resume)
	// replayed from the node manifests instead of executing, in pipeline
	// order. Lockstep resume keeps it identical across nodes.
	CachedStages []string

	// ReduceOverlapModeled (t_o) is the slowest node's modeled time for
	// the parallel overlap-finding part of the reduce phase, and
	// ReduceSerialModeled (t_g) is the serialized graph-building and
	// token-forwarding component — the two terms of the paper's
	// t_o*p/n + t_g*p scalability bound (Section III-E.3). Their ratio
	// bounds useful cluster size at n_max = t_o/t_g.
	ReduceOverlapModeled time.Duration
	ReduceSerialModeled  time.Duration
}

// PhaseByName returns the stats for the named phase.
func (r *Result) PhaseByName(name core.PhaseName) (stats.PhaseStats, bool) {
	for _, p := range r.Phases {
		if p.Name == string(name) {
			return p, true
		}
	}
	return stats.PhaseStats{}, false
}

// New creates the cluster and its per-node scratch directories.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, serial: costmodel.NewMeter()}
	cfg.Obs.Tracer().NameProcess(0, "coordinator")
	for i := 0; i < cfg.Nodes; i++ {
		dir := filepath.Join(cfg.Workspace, fmt.Sprintf("node%02d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		var dev *gpu.Device
		var meter *costmodel.Meter
		if cfg.Fleet != nil {
			dev = cfg.Fleet.Device(i)
			meter = dev.Meter()
		} else {
			meter = costmodel.NewMeter()
			dev = gpu.NewDevice(cfg.GPU, meter)
		}
		if cfg.Obs != nil {
			dev.SetHooks(obs.DeviceHooks(cfg.Obs, int64(i)+1))
			tr := cfg.Obs.Tracer()
			tr.NameProcess(int64(i)+1, fmt.Sprintf("node%02d", i))
			tr.NameThread(nodeTrack(i), "stages")
			for w := 0; w < cfg.WorkersPerNode; w++ {
				tr.NameThread(nodeTrack(i).Worker(w), fmt.Sprintf("worker %d", w))
			}
		}
		n := &node{
			id:    i,
			dir:   dir,
			dev:   dev,
			meter: meter,
		}
		if cfg.Streams {
			n.ledger = costmodel.NewOverlapLedger(cfg.profile())
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// track returns node n's stage lane in the trace (the coordinator owns
// pid 0, so node i maps to pid i+1).
func nodeTrack(id int) obs.Track { return obs.Track{Pid: int64(id) + 1} }

// owner returns the node that owns partition l (round-robin by length,
// Section III-E.2).
func (c *Cluster) owner(l int) *node {
	return c.nodes[(l-c.cfg.MinOverlap)%len(c.nodes)]
}

// runPhase executes fn(node) on every node concurrently and records the
// phase: wall time is real, modeled time is the slowest node plus the
// extra serialized seconds, and memory peaks are per-phase maxima.
func (c *Cluster) runPhase(name core.PhaseName, res *Result, extraSerial time.Duration,
	fn func(*node) error) error {
	type snap struct {
		counters costmodel.Counters
		saved    float64
	}
	before := make([]snap, len(c.nodes))
	for i, n := range c.nodes {
		n.hostMem.ResetPeak()
		n.dev.MemTracker().ResetPeak()
		before[i] = snap{n.meter.Snapshot(), n.ledger.SavedSeconds()}
	}
	c.cfg.Obs.Log().Debug("phase start", "phase", string(name), "nodes", len(c.nodes))
	phaseSpan := c.cfg.Obs.Tracer().Begin(obs.Track{}, "stage", string(name))
	timer := stats.StartTimer()
	errs := make([]error, len(c.nodes))
	walls := make([]time.Duration, len(c.nodes))
	starts := make([]time.Time, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			starts[i] = time.Now()
			errs[i] = fn(n)
			walls[i] = time.Since(starts[i])
		}(i, n)
	}
	wg.Wait()
	prof := c.cfg.profile()
	ps := stats.PhaseStats{Name: string(name), Wall: timer.Elapsed()}
	modeled := make([]time.Duration, len(c.nodes))
	for i, n := range c.nodes {
		delta := n.meter.Snapshot().Sub(before[i].counters)
		// Per-node overlap hidden this phase: each node's modeled time is
		// its own makespan before the max-over-nodes aggregation.
		saved := time.Duration((n.ledger.SavedSeconds() - before[i].saved) * float64(time.Second))
		modeled[i] = delta.Time(prof) - saved
		if modeled[i] < 0 {
			modeled[i] = 0
		}
		ps.OverlapSaved += saved
		if modeled[i] > ps.Modeled {
			ps.Modeled = modeled[i]
		}
		if p := n.hostMem.Peak(); p > ps.PeakHost {
			ps.PeakHost = p
		}
		if p := n.dev.MemTracker().Peak(); p > ps.PeakDevice {
			ps.PeakDevice = p
		}
		ps.DiskRead += delta.DiskReadBytes
		ps.DiskWrite += delta.DiskWriteBytes
		ps.NetBytes += delta.NetBytes
		ps.PCIeBytes += delta.PCIeBytes
		ps.DeviceOps += delta.DeviceOps
		c.cfg.Obs.Tracer().Complete(nodeTrack(n.id), "stage", string(name),
			starts[i], walls[i], map[string]any{
				"counters": delta, "modeled": delta.Breakdown(prof),
			})
		c.cfg.Obs.Log().Debug("node phase done", "phase", string(name),
			"node", n.id, "wall", walls[i], "modeled", modeled[i], "err", errs[i])
	}
	phaseSpan.End()
	ps.Modeled += extraSerial
	if res.NodeModeled == nil {
		res.NodeModeled = map[core.PhaseName][]time.Duration{}
	}
	res.NodeModeled[name] = modeled
	res.Phases = append(res.Phases, ps)
	res.TotalWall += ps.Wall
	res.TotalModeled += ps.Modeled
	for _, err := range errs {
		if err != nil {
			c.cfg.Obs.Log().Error("phase failed", "phase", string(name), "err", err)
			return err
		}
	}
	c.cfg.Obs.Log().Info("phase done", "phase", string(name),
		"wall", ps.Wall, "modeled", ps.Modeled)
	return nil
}

// nodeStages is the per-node stage graph covered by each node's run
// manifest, in execution order. Reduce and compress are not checkpointed
// (their state is cross-node and in-memory).
var nodeStages = []core.PhaseName{core.PhaseMap, PhaseShuffle, core.PhaseSort}

// fingerprint hashes the output-relevant cluster configuration for the
// per-node manifests; execution knobs (WorkersPerNode, Workspace,
// bandwidths, Resume, Streams) are excluded. The node count and identity are
// folded in because both change what any single node's storage holds.
func (c Config) fingerprint(nodeID int) string {
	h := sha256.New()
	fmt.Fprintf(h, "cluster|nodes=%d|node=%d|min=%d|mh=%d|md=%d|mb=%d|blk=%d|gpu=%s/%d",
		c.Nodes, nodeID, c.MinOverlap, c.HostBlockPairs, c.DeviceBlockPairs,
		c.MapBatchReads, c.InputBlockReads, c.GPU.Name, c.GPU.MemBytes)
	fmt.Fprintf(h, "|fpart=%t|sing=%t|cyc=%t",
		c.PartitionByFingerprint, c.IncludeSingletons, c.BreakCycles)
	// The resolved backend, matching core.Config.fingerprint: "" and
	// "greedy" must fingerprint identically.
	fmt.Fprintf(h, "|backend=%s|fuzz=%d", c.backend(), c.TransitiveFuzz)
	return hex.EncodeToString(h.Sum(nil))
}

// Assemble runs the distributed pipeline over the read set, which plays
// the role of the shared distributed file system holding the input.
func (c *Cluster) Assemble(rs *dna.ReadSet) (*Result, error) {
	return c.AssembleContext(context.Background(), rs)
}

// AssembleContext is Assemble under a cancellation context: cancelling
// ctx aborts every node's phase work between device batches with
// ctx.Err(), draining all node goroutines.
func (c *Cluster) AssembleContext(ctx context.Context, rs *dna.ReadSet) (*Result, error) {
	res := &Result{NumReads: rs.NumReads()}
	defer func() {
		var total costmodel.Counters
		for _, n := range c.nodes {
			total = total.Add(n.meter.Snapshot())
		}
		res.Counters = total.Add(c.serial.Snapshot())
		res.Modeled = res.Counters.Breakdown(c.cfg.profile())
	}()
	if rs.NumReads() == 0 {
		return res, fmt.Errorf("cluster: empty read set")
	}
	if rs.MaxLen() <= c.cfg.MinOverlap {
		return res, fmt.Errorf("cluster: MinOverlap %d is not below the longest read length %d",
			c.cfg.MinOverlap, rs.MaxLen())
	}
	c.cfg.Obs.Log().Info("cluster run start", "nodes", len(c.nodes),
		"reads", rs.NumReads(), "gpu", c.cfg.GPU.Name)
	defer c.cfg.Obs.Tracer().Begin(obs.Track{}, "run", "cluster assemble").End()

	// Per-node stage runners over each node's private storage, with
	// lockstep resume: every node must have committed (and still validate)
	// a stage for any node to skip it, so nodes never run in inconsistent
	// stages.
	inputHash := core.InputFingerprint(rs)
	runners := make([]*core.StageRunner, len(c.nodes))
	resumeAt := len(nodeStages)
	maxAt := 0
	for i, n := range c.nodes {
		runners[i] = core.NewStageRunner(n.dir, c.cfg.fingerprint(n.id), inputHash,
			c.cfg.Resume, nodeStages)
		runners[i].SetObserver(c.cfg.Obs, nodeTrack(n.id))
		resumeAt = min(resumeAt, runners[i].ResumeAt())
		maxAt = max(maxAt, runners[i].ResumeAt())
	}
	if resumeAt != maxAt {
		// The nodes crashed mid-stage and diverged: a node that already
		// committed the stage has cleaned up its inputs (Sort deletes the
		// shuffled partitions), so it cannot re-run it in lockstep with the
		// stragglers. Fall back to a full re-run rather than trust a state
		// no node can recover from.
		resumeAt = 0
	}
	for i, n := range c.nodes {
		runners[i].LimitResume(resumeAt)
		if c.FaultHook != nil {
			id := n.id
			runners[i].SetFaultHook(func(stage core.PhaseName) error {
				return c.FaultHook(id, stage)
			})
		}
	}
	if resumeAt == 0 {
		// Starting from scratch: stale files from an interrupted or
		// invalidated run must not leak into this one.
		for _, n := range c.nodes {
			if err := os.RemoveAll(n.dir); err != nil {
				return res, err
			}
			if err := os.MkdirAll(n.dir, 0o755); err != nil {
				return res, err
			}
		}
	}

	// Map: the master's block list is assigned statically round-robin, so
	// each node's partition files are a deterministic function of (input,
	// config, node ID) — the property per-node resume checksums rely on.
	// (Section III-E.1 describes dynamic handout; with uniform blocks the
	// static schedule has the same balance and a reproducible layout.)
	numBlocks := (rs.NumReads() + c.cfg.InputBlockReads - 1) / c.cfg.InputBlockReads
	err := c.runPhase(core.PhaseMap, res, 0, func(n *node) error {
		return runners[n.id].Run(core.Stage{
			Name: core.PhaseMap,
			Fresh: func() (core.StageOutcome, error) {
				var out core.StageOutcome
				sfxW := kvio.NewPartitionWriters(n.dir, kvio.Suffix, n.meter)
				pfxW := kvio.NewPartitionWriters(n.dir, kvio.Prefix, n.meter)
				mapper := core.NewMapper(n.dev, &n.hostMem, c.cfg.MinOverlap, c.cfg.MapBatchReads, rs.MaxLen())
				mapper.Workers = c.cfg.WorkersPerNode
				mapper.Obs = c.cfg.Obs
				mapper.Track = nodeTrack(n.id)
				mapper.Profile = c.cfg.profile()
				for b := n.id; b < numBlocks; b += len(c.nodes) {
					start := b * c.cfg.InputBlockReads
					end := min(start+c.cfg.InputBlockReads, rs.NumReads())
					// The block is read from the shared distributed file
					// system (~2 bytes per base in FASTQ form).
					var blockBases int64
					for r := start; r < end; r++ {
						blockBases += int64(rs.Len(uint32(r)))
					}
					n.meter.AddDiskRead(2 * blockBases)
					if err := mapper.MapRange(ctx, rs, start, end, sfxW, pfxW); err != nil {
						return out, err
					}
				}
				counts := sfxW.Counts()
				if err := sfxW.Close(); err != nil {
					return out, err
				}
				if err := pfxW.Close(); err != nil {
					return out, err
				}
				for _, l := range sortedLengths(counts) {
					out.Artifacts = append(out.Artifacts,
						filepath.Base(kvio.PartitionPath(n.dir, kvio.Suffix, l)),
						filepath.Base(kvio.PartitionPath(n.dir, kvio.Prefix, l)))
				}
				return out, nil
			},
			// Map leaves no in-memory state: the shuffle discovers peer
			// partitions from the (validated) files themselves.
			Cached: func(core.StageRecord) error { return nil },
		})
	})
	if err != nil {
		return res, err
	}

	// Shuffle: every node aggregates its owned partitions from all peers
	// (Section III-E.2). Cross-node reads are charged to the network.
	err = c.runPhase(PhaseShuffle, res, 0, func(n *node) error {
		return runners[n.id].Run(core.Stage{
			Name: PhaseShuffle,
			Fresh: func() (core.StageOutcome, error) {
				var out core.StageOutcome
				if err := ctx.Err(); err != nil {
					return out, err
				}
				var err error
				if c.cfg.PartitionByFingerprint {
					err = c.shuffleNodeByFingerprint(rs.MaxLen(), n)
				} else {
					err = c.shuffleNode(rs, n)
				}
				if err != nil {
					return out, err
				}
				for _, l := range sortedLengths(n.counts) {
					out.Artifacts = append(out.Artifacts,
						shufName(kvio.Suffix, l), shufName(kvio.Prefix, l))
				}
				return out, nil
			},
			Cached: func(rec core.StageRecord) error {
				counts, err := shuffleCountsFromRecord(rec)
				if err != nil {
					return err
				}
				n.counts = counts
				return nil
			},
		})
	})
	if err != nil {
		return res, err
	}

	// Sort: each node externally sorts its owned partitions, deleting the
	// shuffled inputs only after the stage commits.
	err = c.runPhase(core.PhaseSort, res, 0, func(n *node) error {
		return runners[n.id].Run(core.Stage{
			Name: core.PhaseSort,
			Fresh: func() (core.StageOutcome, error) {
				var out core.StageOutcome
				if err := c.sortNode(ctx, n); err != nil {
					return out, err
				}
				for _, l := range sortedLengths(n.counts) {
					out.Artifacts = append(out.Artifacts,
						sortedName(kvio.Suffix, l), sortedName(kvio.Prefix, l))
				}
				out.Cleanup = func() error {
					for l := range n.counts {
						for _, kind := range []kvio.Kind{kvio.Suffix, kvio.Prefix} {
							if err := os.Remove(filepath.Join(n.dir, shufName(kind, l))); err != nil && !os.IsNotExist(err) {
								return err
							}
						}
					}
					return nil
				}
				return out, nil
			},
			Cached: func(core.StageRecord) error { return nil },
		})
	})
	if err != nil {
		return res, err
	}
	res.CachedStages = runners[0].CachedStages()

	// Reduce: overlap finding in parallel, then greedy graph building
	// serialized by the bit-vector token in descending length order
	// (Section III-E.3).
	if err := c.reducePhase(ctx, rs, res); err != nil {
		return res, err
	}

	// Compress: the master collects the disjoint edge sets and generates
	// contigs.
	err = c.runPhase(core.PhaseCompress, res, 0, func(n *node) error {
		if n.id != 0 {
			return nil
		}
		return c.compressOnMaster(rs, res)
	})
	return res, err
}

// shufName / sortedName name a node's post-shuffle and post-sort partition
// files (relative to the node dir).
func shufName(k kvio.Kind, l int) string {
	return fmt.Sprintf("shuf_%s_%04d.kv", k, l)
}

func sortedName(k kvio.Kind, l int) string {
	return fmt.Sprintf("sorted_%s_%04d.kv", k, l)
}

// shuffleCountsFromRecord rebuilds a node's owned-partition counts from a
// committed Shuffle record: each suffix artifact holds exactly its
// partition's pairs, so the counts (zero-sized partitions included) fall
// out of the recorded sizes.
func shuffleCountsFromRecord(rec core.StageRecord) (map[int]int64, error) {
	counts := map[int]int64{}
	prefix := "shuf_" + kvio.Suffix.String() + "_"
	for _, a := range rec.Artifacts {
		base := path.Base(a.Path)
		if !strings.HasPrefix(base, prefix) || !strings.HasSuffix(base, ".kv") {
			continue
		}
		l, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, prefix), ".kv"))
		if err != nil {
			return nil, fmt.Errorf("cluster: manifest shuffle artifact %q: %w", a.Path, err)
		}
		counts[l] = a.Bytes / kv.PairBytes
	}
	return counts, nil
}

// sortedLengths returns the map's keys in ascending order.
func sortedLengths(counts map[int]int64) []int {
	lengths := make([]int, 0, len(counts))
	for l := range counts {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	return lengths
}

// shuffleNode pulls every peer's copy of the partitions n owns into n's
// local storage.
func (c *Cluster) shuffleNode(rs *dna.ReadSet, n *node) error {
	n.counts = map[int]int64{}
	for l := c.cfg.MinOverlap; l < rs.MaxLen(); l++ {
		if c.owner(l) != n {
			continue
		}
		if len(c.nodes) == 1 {
			// Single node: every partition is already local and whole, so
			// the shuffle degenerates to a rename — matching the paper,
			// where the all-to-all transfer only appears when scaling out
			// from one node.
			for _, kind := range []kvio.Kind{kvio.Suffix, kvio.Prefix} {
				src := kvio.PartitionPath(n.dir, kind, l)
				dst := filepath.Join(n.dir, fmt.Sprintf("shuf_%s_%04d.kv", kind, l))
				count, err := kvio.CountFile(src)
				if err != nil {
					return err
				}
				if count == 0 {
					continue
				}
				if err := os.Rename(src, dst); err != nil {
					return err
				}
				if kind == kvio.Suffix {
					n.counts[l] = count
				}
			}
			continue
		}
		for _, kind := range []kvio.Kind{kvio.Suffix, kvio.Prefix} {
			outPath := filepath.Join(n.dir, fmt.Sprintf("shuf_%s_%04d.kv", kind, l))
			w, err := kvio.NewWriter(outPath, n.meter)
			if err != nil {
				return err
			}
			var total int64
			for _, peer := range c.nodes {
				in := kvio.PartitionPath(peer.dir, kind, l)
				moved, err := copyPairs(w, in, peer.meter)
				if err != nil {
					w.Close()
					return err
				}
				if peer != n {
					// Active-message response crossing the network.
					n.meter.AddNet(moved * kv.PairBytes)
				}
				total += moved
			}
			if kind == kvio.Suffix {
				n.counts[l] = total
			}
			if err := w.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// copyPairs streams a partition file (which may be absent) into w,
// metering the read on the serving peer's meter. Returns pairs moved.
func copyPairs(w *kvio.Writer, path string, serveMeter *costmodel.Meter) (int64, error) {
	r, err := kvio.NewReader(path, serveMeter)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer r.Close()
	buf := make([]kv.Pair, 4096)
	var moved int64
	for {
		m, err := r.ReadBatch(buf)
		if m > 0 {
			if werr := w.WriteBatch(buf[:m]); werr != nil {
				return moved, werr
			}
			moved += int64(m)
		}
		if err == io.EOF {
			return moved, nil
		}
		if err != nil {
			return moved, err
		}
	}
}

func (c *Cluster) sortNode(ctx context.Context, n *node) error {
	type task struct {
		l    int
		kind kvio.Kind
	}
	var tasks []task
	for l := range n.counts {
		tasks = append(tasks, task{l, kvio.Suffix}, task{l, kvio.Prefix})
	}
	return runNodeTasks(c.cfg.WorkersPerNode, len(tasks), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := tasks[i]
		// Private scratch per concurrent sort: run/merge file names repeat
		// across SortFile calls, so parallel sorts must not share TempDir.
		tmpDir := filepath.Join(n.dir, fmt.Sprintf("sort_%s_%04d", t.kind, t.l))
		if err := os.MkdirAll(tmpDir, 0o755); err != nil {
			return err
		}
		defer os.RemoveAll(tmpDir)
		cfg := extsort.Config{
			Device:           n.dev,
			Meter:            n.meter,
			HostMem:          &n.hostMem,
			HostBlockPairs:   c.cfg.HostBlockPairs,
			DeviceBlockPairs: c.cfg.DeviceBlockPairs,
			TempDir:          tmpDir,
			Obs:              c.cfg.Obs,
			Overlap:          n.ledger,
		}
		in := filepath.Join(n.dir, shufName(t.kind, t.l))
		out := filepath.Join(n.dir, sortedName(t.kind, t.l))
		if _, err := extsort.SortFile(ctx, cfg, in, out); err != nil {
			return fmt.Errorf("cluster: node %d sorting partition %d (%s): %w",
				n.id, t.l, t.kind, err)
		}
		return nil
	})
}

// runNodeTasks runs n independent tasks on up to workers goroutines
// (workers <= 1 runs them inline) and returns the first error.
func runNodeTasks(workers, n int, task func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				if err := task(i); err != nil {
					failed.Store(true)
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errs)
	return <-errs
}

// cand is one verified candidate overlap buffered between a node's
// overlap finding and the serialized graph-building step.
type cand struct{ u, v uint32 }

// reducePhase runs overlap finding on all nodes in parallel, then applies
// candidates to the shared greedy discipline strictly in descending
// partition order, forwarding the out-degree bit-vector between owners.
func (c *Cluster) reducePhase(ctx context.Context, rs *dna.ReadSet, res *Result) error {
	maxLen := rs.MaxLen()
	// candidates[l][nodeID]: with length partitioning only the owner's
	// slot fills; with fingerprint partitioning every node contributes a
	// fingerprint-ordered slice, and node-ID order re-assembles the
	// global fingerprint order of the single-node reduce.
	candidates := make(map[int][][]cand)
	var candMu sync.Mutex

	// Parallel overlap finding (the t_o component).
	err := c.runPhase(core.PhaseReduce, res, 0, func(n *node) error {
		cfg := overlap.Config{
			Device:      n.dev,
			Meter:       n.meter,
			HostMem:     &n.hostMem,
			WindowPairs: max(c.cfg.HostBlockPairs/2, 1),
			Obs:         c.cfg.Obs,
			Overlap:     n.ledger,
		}
		lengths := make([]int, 0, len(n.counts))
		for l := range n.counts {
			lengths = append(lengths, l)
		}
		sort.Ints(lengths)
		return runNodeTasks(c.cfg.WorkersPerNode, len(lengths), func(i int) error {
			l := lengths[i]
			sfx := filepath.Join(n.dir, sortedName(kvio.Suffix, l))
			pfx := filepath.Join(n.dir, sortedName(kvio.Prefix, l))
			var list []cand
			err := overlap.ReducePaths(ctx, cfg, sfx, pfx, func(u, v uint32) error {
				list = append(list, cand{u, v})
				return nil
			})
			if err != nil {
				return err
			}
			candMu.Lock()
			if candidates[l] == nil {
				candidates[l] = make([][]cand, len(c.nodes))
			}
			candidates[l][n.id] = list
			res.CandidateEdges += int64(len(list))
			candMu.Unlock()
			return nil
		})
	})
	if err != nil {
		return err
	}

	// Serialized graph building (the t_g component). Greedy: token
	// forwarding between owners in descending length order. Spmat:
	// candidate lists ship to the master, which assembles the CSR matrix
	// and runs the device transitive reduction. The wall-clock cost is
	// tiny; the modeled cost is charged to the dedicated serial meter (and
	// the master's device meter for the SpGEMM pass) and added to the
	// reduce phase.
	serialBefore := c.serial.Snapshot()
	serialSpan := c.cfg.Obs.Tracer().Begin(obs.Track{}, "stage", "ReduceSerial").
		Metered(c.serial, c.cfg.profile())
	var serialErr error
	var trTime time.Duration
	if c.cfg.backend() == core.BackendSpmat {
		trTime, serialErr = c.reduceSpmatOnMaster(ctx, rs, maxLen, candidates, res)
	} else if c.cfg.backend() == core.BackendSuccinct {
		trTime, serialErr = c.reduceSuccinctOnMaster(ctx, rs, maxLen, candidates, res)
	} else {
		token := bitvec.New(2 * rs.NumReads())
		graphs := make(map[int]*graph.Graph, len(c.nodes))
		for _, n := range c.nodes {
			graphs[n.id] = graph.NewWithVector(rs.NumReads(), token)
		}
		prevOwner := -1
		for l := maxLen - 1; l >= c.cfg.MinOverlap; l-- {
			slots := candidates[l]
			if slots == nil {
				continue
			}
			for nodeID, list := range slots {
				if len(list) == 0 {
					continue
				}
				if prevOwner != -1 && prevOwner != nodeID {
					// Token hop between nodes.
					c.serial.AddNet(token.Bytes())
				}
				prevOwner = nodeID
				g := graphs[nodeID]
				for _, cd := range list {
					// Each candidate touches ~4 cache lines of randomly-
					// addressed host memory (two bit-vector probes, two
					// edge-slot writes), which is what makes graph building
					// the serialized cost the paper's t_g term captures.
					c.serial.AddHostMem(4 * 64)
					g.AddCandidate(cd.u, cd.v, uint16(l))
				}
			}
			delete(candidates, l)
		}
		for _, n := range c.nodes {
			n.edges = graphs[n.id].Edges()
			res.AcceptedEdges += int64(len(n.edges))
		}
	}
	serialSpan.End()
	serialTime := c.serial.Snapshot().Sub(serialBefore).Time(c.cfg.profile()) + trTime
	// Fold the serialized component into the recorded reduce phase.
	last := &res.Phases[len(res.Phases)-1]
	res.ReduceOverlapModeled = last.Modeled
	res.ReduceSerialModeled = serialTime
	last.Modeled += serialTime
	res.TotalModeled += serialTime
	return serialErr
}

// reduceSpmatOnMaster is the spmat backend's serialized component: every
// node's candidate list ships to the master, which assembles the CSR
// string graph and runs the masked SpGEMM transitive reduction on its
// device. The Builder dedupes and sorts internally, so the cluster's
// candidate arrival order cannot change the matrix — the property that
// makes cluster output byte-identical to a single-node spmat run.
// Returns the master's modeled device time for the reduction (overlap
// savings already netted out), which the caller folds into the reduce
// phase alongside the serial-meter time.
func (c *Cluster) reduceSpmatOnMaster(ctx context.Context, rs *dna.ReadSet, maxLen int,
	candidates map[int][][]cand, res *Result) (time.Duration, error) {
	master := c.nodes[0]
	b := spmat.NewBuilder(rs.NumReads())
	for l := maxLen - 1; l >= c.cfg.MinOverlap; l-- {
		slots := candidates[l]
		if slots == nil {
			continue
		}
		for nodeID, list := range slots {
			if len(list) == 0 {
				continue
			}
			if nodeID != master.id {
				// Candidate lists travel to the master: ~6 bytes per edge
				// (4-byte vertex + overlap length, Section III-C's sizing).
				c.serial.AddNet(int64(len(list)) * 6)
			}
			for _, cd := range list {
				// Same serialized host-memory model as greedy graph
				// building: each candidate touches ~4 randomly-addressed
				// cache lines.
				c.serial.AddHostMem(4 * 64)
				b.AddOverlap(cd.u, cd.v, uint16(l))
			}
		}
		delete(candidates, l)
	}
	master.hostMem.Add(b.ApproxBytes())
	m := b.Build()
	master.hostMem.Release(b.ApproxBytes())
	master.hostMem.Add(m.ApproxBytes())
	defer master.hostMem.Release(m.ApproxBytes())

	meterBefore := master.meter.Snapshot()
	savedBefore := master.ledger.SavedSeconds()
	red, err := m.TransitiveReduce(ctx, spmat.ReduceConfig{
		Device:           master.dev,
		VertexLen:        rs.VertexLen,
		Fuzz:             c.cfg.TransitiveFuzz,
		MaxResidentBytes: 4 * int64(c.cfg.DeviceBlockPairs) * kv.PairBytes,
		Overlap:          master.ledger,
	})
	if err != nil {
		return 0, err
	}
	trTime := master.meter.Snapshot().Sub(meterBefore).Time(c.cfg.profile()) -
		time.Duration((master.ledger.SavedSeconds()-savedBefore)*float64(time.Second))
	if trTime < 0 {
		trTime = 0
	}
	c.spmatRed = red
	res.ReducedEdges = red.Removed
	res.AcceptedEdges = m.NNZ() - red.Removed
	mtr := c.cfg.Obs.Metrics()
	mtr.Counter(`graph.nnz{backend="spmat"}`).Add(m.NNZ())
	mtr.Counter(`graph.removed_edges{backend="spmat"}`).Add(red.Removed)
	mtr.Counter(`graph.spgemm_flops{backend="spmat"}`).Add(red.Flops)
	return trTime, nil
}

// reduceSuccinctOnMaster is the succinct backend's serialized component:
// candidate lists ship to the master (same network model as spmat), but
// instead of assembling a CSR matrix in memory, the master spills the
// directed edges (with complements) to a scratch kv file, external-sorts
// them on its device, and streams the final merge straight into the
// compressed builder — the full edge list never materializes in the
// master's host memory. The masked reduction then runs spmat's exact
// predicate over the compressed store, so cluster output remains
// byte-identical to a single-node succinct (and spmat) run.
func (c *Cluster) reduceSuccinctOnMaster(ctx context.Context, rs *dna.ReadSet, maxLen int,
	candidates map[int][][]cand, res *Result) (time.Duration, error) {
	master := c.nodes[0]
	meterBefore := master.meter.Snapshot()
	savedBefore := master.ledger.SavedSeconds()

	tmpDir := filepath.Join(master.dir, "sort_succinct")
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return 0, err
	}
	defer os.RemoveAll(tmpDir)
	spillPath := filepath.Join(tmpDir, "cand.kv")
	w, err := kvio.NewWriter(spillPath, master.meter)
	if err != nil {
		return 0, err
	}
	writeEdge := func(u, v uint32, l uint16) error {
		return w.Write(kv.Pair{Key: kv.Key{Hi: uint64(u)<<32 | uint64(v), Lo: uint64(l)}})
	}
	var wErr error
	for l := maxLen - 1; l >= c.cfg.MinOverlap; l-- {
		slots := candidates[l]
		if slots == nil {
			continue
		}
		for nodeID, list := range slots {
			if len(list) == 0 {
				continue
			}
			if nodeID != master.id {
				// Candidate lists travel to the master: ~6 bytes per edge
				// (4-byte vertex + overlap length, Section III-C's sizing).
				c.serial.AddNet(int64(len(list)) * 6)
			}
			for _, cd := range list {
				// The serialized host cost here is the spill append — one
				// sequential cache line per candidate, not spmat's four
				// random ones.
				c.serial.AddHostMem(64)
				if cd.u == cd.v || cd.u == dna.ComplementVertex(cd.v) {
					continue
				}
				if wErr == nil {
					wErr = writeEdge(cd.u, cd.v, uint16(l))
				}
				if wErr == nil {
					wErr = writeEdge(dna.ComplementVertex(cd.v), dna.ComplementVertex(cd.u), uint16(l))
				}
			}
		}
		delete(candidates, l)
	}
	if cerr := w.Close(); wErr == nil {
		wErr = cerr
	}
	if wErr != nil {
		return 0, wErr
	}

	b, err := succinct.NewBuilder(2*rs.NumReads(), &master.hostMem)
	if err != nil {
		return 0, err
	}
	_, err = extsort.SortStream(ctx, extsort.Config{
		Device:           master.dev,
		Meter:            master.meter,
		HostMem:          &master.hostMem,
		HostBlockPairs:   c.cfg.HostBlockPairs,
		DeviceBlockPairs: c.cfg.DeviceBlockPairs,
		TempDir:          tmpDir,
		Obs:              c.cfg.Obs,
		Overlap:          master.ledger,
	}, spillPath, func(batch []kv.Pair) error {
		for _, pr := range batch {
			e := succinct.Edge{U: uint32(pr.Key.Hi >> 32), V: uint32(pr.Key.Hi), Len: uint16(pr.Key.Lo)}
			if err := b.Push(e); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Abandon()
		return 0, err
	}
	g, err := b.Finish()
	if err != nil {
		b.Abandon()
		return 0, err
	}
	// The compressed store stays charged until compress consumes it.
	red, err := g.TransitiveReduce(ctx, succinct.ReduceConfig{
		Device:           master.dev,
		VertexLen:        rs.VertexLen,
		Fuzz:             c.cfg.TransitiveFuzz,
		MaxResidentBytes: 4 * int64(c.cfg.DeviceBlockPairs) * kv.PairBytes,
		Overlap:          master.ledger,
	})
	if err != nil {
		master.hostMem.Release(g.HostBytes())
		return 0, err
	}
	trTime := master.meter.Snapshot().Sub(meterBefore).Time(c.cfg.profile()) -
		time.Duration((master.ledger.SavedSeconds()-savedBefore)*float64(time.Second))
	if trTime < 0 {
		trTime = 0
	}
	c.succRed = red
	res.ReducedEdges = red.Removed
	res.AcceptedEdges = g.NNZ() - red.Removed
	mtr := c.cfg.Obs.Metrics()
	mtr.Counter(`graph.nnz{backend="succinct"}`).Add(g.NNZ())
	mtr.Counter(`graph.removed_edges{backend="succinct"}`).Add(red.Removed)
	mtr.Counter(`graph.spgemm_flops{backend="succinct"}`).Add(red.Flops)
	return trTime, nil
}

// compressOnMaster merges the disjoint per-node edge sets and generates
// contigs on node 0. Under the spmat backend the live (post-reduction)
// matrix entries replace the per-node greedy edge sets, and contigs are
// spelled from unitig chains — the same rule as the single-node spmat
// compress, so the FASTA bytes match it exactly.
func (c *Cluster) compressOnMaster(rs *dna.ReadSet, res *Result) error {
	master := c.nodes[0]
	var paths []graph.Path
	if c.cfg.backend() == core.BackendSpmat {
		fg := sgraph.New(rs.NumReads())
		c.spmatRed.Live(func(e spmat.Edge) {
			fg.InstallEdge(e.U, e.V, e.Len)
		})
		paths = fg.Unitigs(rs.VertexLen, c.cfg.IncludeSingletons)
	} else if c.cfg.backend() == core.BackendSuccinct {
		// Unitigs spell directly off the masked compressed store — the
		// live view iterates surviving edges in the same ascending order a
		// rebuilt graph would, so the FASTA bytes match the single-node
		// succinct (and spmat) output exactly.
		paths = sgraph.UnitigsOf(c.succRed.LiveView(), rs.VertexLen, c.cfg.IncludeSingletons)
		master.hostMem.Release(c.succRed.Graph().HostBytes())
		c.succRed = nil
	} else {
		final := graph.New(rs.NumReads())
		for _, n := range c.nodes {
			if n.id != master.id {
				// Edge sets travel to the master: ~6 bytes per edge (4-byte
				// vertex + overlap length, Section III-C's sizing).
				master.meter.AddNet(int64(len(n.edges)) * 6)
			}
			for _, e := range n.edges {
				final.InstallEdge(e)
			}
		}
		paths = final.Traverse(rs.VertexLen, graph.TraverseOptions{
			IncludeSingletons: c.cfg.IncludeSingletons,
			BreakCycles:       c.cfg.BreakCycles,
		})
	}
	res.Contigs = contig.Generate(contig.Config{Device: master.dev}, paths, rs)
	res.ContigStats = contig.Summarize(res.Contigs)

	res.ContigPath = filepath.Join(c.cfg.Workspace, "contigs.fasta")
	f, err := os.Create(res.ContigPath)
	if err != nil {
		return err
	}
	w := fastq.NewFastaWriter(f, 80)
	for i, cg := range res.Contigs {
		if err := w.Write(fastq.Record{Name: fmt.Sprintf("contig%d len=%d", i, len(cg)), Seq: cg}); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
