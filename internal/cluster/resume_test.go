package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

var errNodeCrash = errors.New("injected node crash")

// TestClusterResumeAfterNodeCrash kills the simulated cluster right after
// one node commits a stage, then restarts it with Resume: every node must
// re-enter from its private storage directory, skip the globally-committed
// stages in lockstep, and produce the same contigs a cold run does.
func TestClusterResumeAfterNodeCrash(t *testing.T) {
	_, reads := testData(t)

	ref, err := New(clusterConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}

	for i, crashAfter := range nodeStages {
		t.Run(fmt.Sprintf("crash_after_%s", crashAfter), func(t *testing.T) {
			cfg := clusterConfig(t, 3)
			cl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cl.FaultHook = func(nodeID int, stage core.PhaseName) error {
				// Node 1 dies right after committing the stage; nodes that
				// already passed this point keep their manifests.
				if nodeID == 1 && stage == crashAfter {
					return errNodeCrash
				}
				return nil
			}
			if _, err := cl.Assemble(reads); !errors.Is(err, errNodeCrash) {
				t.Fatalf("interrupted run error = %v, want injected crash", err)
			}

			cfg.Resume = true
			cl2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cl2.Assemble(reads)
			if err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if len(res.CachedStages) < i+1 {
				t.Errorf("CachedStages = %v, want at least the %d stages committed before the crash",
					res.CachedStages, i+1)
			}
			if res.AcceptedEdges != want.AcceptedEdges || res.CandidateEdges != want.CandidateEdges {
				t.Errorf("edges after resume: %d/%d, cold run %d/%d",
					res.AcceptedEdges, res.CandidateEdges, want.AcceptedEdges, want.CandidateEdges)
			}
			if len(res.Contigs) != len(want.Contigs) {
				t.Fatalf("%d contigs after resume, cold run %d", len(res.Contigs), len(want.Contigs))
			}
			for j := range res.Contigs {
				if !res.Contigs[j].Equal(want.Contigs[j]) {
					t.Fatalf("contig %d differs from cold run", j)
				}
			}
		})
	}
}

// TestClusterResumeInvalidatedByNodeCountChange re-runs an interrupted
// 3-node job as 2 nodes: the per-node fingerprints change, so nothing may
// be replayed from the stale manifests.
func TestClusterResumeInvalidatedByNodeCountChange(t *testing.T) {
	_, reads := testData(t)
	dir := t.TempDir()
	cfg := DefaultConfig(dir, 3)
	cfg.MinOverlap = 30
	cfg.HostBlockPairs = 4096
	cfg.DeviceBlockPairs = 512
	cfg.MapBatchReads = 128
	cfg.InputBlockReads = 64

	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.FaultHook = func(nodeID int, stage core.PhaseName) error {
		if stage == core.PhaseSort && nodeID == 2 {
			return errNodeCrash
		}
		return nil
	}
	if _, err := cl.Assemble(reads); !errors.Is(err, errNodeCrash) {
		t.Fatalf("interrupted run error = %v", err)
	}

	cfg.Nodes = 2
	cfg.Resume = true
	cl2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl2.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) != 0 {
		t.Errorf("node-count change still replayed stages %v", res.CachedStages)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs produced")
	}
}
