package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
)

func TestFingerprintPartitioningMatchesSingleNode(t *testing.T) {
	_, reads := testData(t)
	single, err := core.New(singleConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 3, 4} {
		cfg := clusterConfig(t, nodes)
		cfg.PartitionByFingerprint = true
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dres, err := cl.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		if dres.CandidateEdges != sres.CandidateEdges {
			t.Errorf("nodes=%d: candidates %d != single %d",
				nodes, dres.CandidateEdges, sres.CandidateEdges)
		}
		if dres.AcceptedEdges != sres.AcceptedEdges {
			t.Errorf("nodes=%d: accepted %d != single %d",
				nodes, dres.AcceptedEdges, sres.AcceptedEdges)
		}
		if len(dres.Contigs) != len(sres.Contigs) {
			t.Fatalf("nodes=%d: %d contigs != %d", nodes, len(dres.Contigs), len(sres.Contigs))
		}
		for i := range dres.Contigs {
			if !dres.Contigs[i].Equal(sres.Contigs[i]) {
				t.Fatalf("nodes=%d: contig %d differs (fingerprint order broken?)", nodes, i)
			}
		}
	}
}

func TestFingerprintPartitioningBalancesNarrowLengthRange(t *testing.T) {
	// When there are fewer length partitions than nodes, length
	// partitioning leaves nodes idle in the reduce phase while
	// fingerprint partitioning keeps all of them busy. Use a read length
	// barely above lmin so only a handful of partitions exist.
	_, reads := testData(t) // 60 bp reads
	lmin := 57              // only 3 partitions: 57, 58, 59

	reduceBusy := func(byFingerprint bool) int {
		cfg := clusterConfig(t, 4)
		cfg.MinOverlap = lmin
		cfg.PartitionByFingerprint = byFingerprint
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		busy := 0
		for _, d := range res.NodeModeled[core.PhaseReduce] {
			if d > 0 {
				busy++
			}
		}
		return busy
	}
	if busy := reduceBusy(false); busy > 3 {
		t.Errorf("length partitioning: %d nodes busy, expected <= 3 partitions' worth", busy)
	}
	if busy := reduceBusy(true); busy != 4 {
		t.Errorf("fingerprint partitioning: %d nodes busy in reduce, want 4", busy)
	}
}

func TestRangeOwnerCoversSpace(t *testing.T) {
	cl, err := New(clusterConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	const ks = keySpace
	for _, hi := range []uint64{0, ks / 4, ks / 2, 3 * (ks / 4), ks - 1} {
		n := cl.rangeOwner(kv.Key{Hi: hi})
		if n == nil {
			t.Fatalf("no owner for %x", hi)
		}
		seen[n.id] = true
	}
	if len(seen) != 4 {
		t.Errorf("range owners hit %d nodes, want 4", len(seen))
	}
	// Ordering: higher fingerprints map to higher node IDs.
	if cl.rangeOwner(kv.Key{Hi: 0}).id != 0 || cl.rangeOwner(kv.Key{Hi: ks - 1}).id != 3 {
		t.Error("range ownership is not monotone")
	}
}
