package cluster

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestDistributedSpmatMatchesSingleNode pins the spmat backend's
// cluster/single-node parity: because the CSR Builder is order-
// independent and the masked SpGEMM is deterministic, the distributed
// run must produce byte-identical contig FASTA to a single-node run
// under the same backend, at every node count.
func TestDistributedSpmatMatchesSingleNode(t *testing.T) {
	genome, reads := testData(t)
	scfg := singleConfig(t)
	scfg.GraphBackend = core.BackendSpmat
	single, err := core.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	sfasta, err := os.ReadFile(sres.ContigPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, nodes := range []int{1, 2, 4} {
		cfg := clusterConfig(t, nodes)
		cfg.GraphBackend = core.BackendSpmat
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dres, err := cl.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		if dres.AcceptedEdges != sres.AcceptedEdges || dres.ReducedEdges != sres.ReducedEdges {
			t.Errorf("nodes=%d: accepted/reduced = %d/%d, single-node %d/%d",
				nodes, dres.AcceptedEdges, dres.ReducedEdges,
				sres.AcceptedEdges, sres.ReducedEdges)
		}
		if dres.ReducedEdges == 0 {
			t.Errorf("nodes=%d: spmat reduction removed no transitive edges", nodes)
		}
		dfasta, err := os.ReadFile(dres.ContigPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(dfasta) != string(sfasta) {
			t.Fatalf("nodes=%d: cluster spmat FASTA differs from single-node spmat FASTA", nodes)
		}
		gs, grc := genome.String(), genome.ReverseComplement().String()
		for i, c := range dres.Contigs {
			if !strings.Contains(gs, c.String()) && !strings.Contains(grc, c.String()) {
				t.Errorf("nodes=%d: contig %d not a genome substring", nodes, i)
			}
		}
	}
}

// TestClusterBackendValidation mirrors the core validation surface.
func TestClusterBackendValidation(t *testing.T) {
	cfg := clusterConfig(t, 2)
	cfg.GraphBackend = "bogus"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown GraphBackend accepted")
	}
}

// TestClusterBackendChangesFingerprint keeps the per-node manifests from
// resuming across an engine switch, while ""/greedy stay equivalent.
func TestClusterBackendChangesFingerprint(t *testing.T) {
	base := clusterConfig(t, 2)
	greedy := base
	greedy.GraphBackend = core.BackendGreedy
	if base.fingerprint(0) != greedy.fingerprint(0) {
		t.Error("empty backend and explicit greedy must fingerprint identically")
	}
	sp := base
	sp.GraphBackend = core.BackendSpmat
	if base.fingerprint(0) == sp.fingerprint(0) {
		t.Error("spmat backend must change the node fingerprint")
	}
}
