package cluster

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/readsim"
)

func testData(t *testing.T) (dna.Seq, *dna.ReadSet) {
	t.Helper()
	genome := readsim.Genome(readsim.GenomeParams{Length: 3000, Seed: 21})
	reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 60, Coverage: 10, Seed: 22})
	return genome, reads
}

func clusterConfig(t *testing.T, nodes int) Config {
	t.Helper()
	cfg := DefaultConfig(t.TempDir(), nodes)
	cfg.MinOverlap = 30
	cfg.HostBlockPairs = 4096
	cfg.DeviceBlockPairs = 512
	cfg.MapBatchReads = 128
	cfg.InputBlockReads = 64
	return cfg
}

func singleConfig(t *testing.T) core.Config {
	t.Helper()
	cfg := core.DefaultConfig(t.TempDir())
	cfg.MinOverlap = 30
	cfg.HostBlockPairs = 4096
	cfg.DeviceBlockPairs = 512
	cfg.MapBatchReads = 128
	return cfg
}

func TestDistributedMatchesSingleNode(t *testing.T) {
	genome, reads := testData(t)
	single, err := core.New(singleConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}

	for _, nodes := range []int{1, 2, 4} {
		cl, err := New(clusterConfig(t, nodes))
		if err != nil {
			t.Fatal(err)
		}
		dres, err := cl.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		if dres.AcceptedEdges != sres.AcceptedEdges {
			t.Errorf("nodes=%d: accepted edges %d, single-node %d",
				nodes, dres.AcceptedEdges, sres.AcceptedEdges)
		}
		if dres.CandidateEdges != sres.CandidateEdges {
			t.Errorf("nodes=%d: candidate edges %d, single-node %d",
				nodes, dres.CandidateEdges, sres.CandidateEdges)
		}
		if len(dres.Contigs) != len(sres.Contigs) {
			t.Fatalf("nodes=%d: %d contigs, single-node %d",
				nodes, len(dres.Contigs), len(sres.Contigs))
		}
		for i := range dres.Contigs {
			if !dres.Contigs[i].Equal(sres.Contigs[i]) {
				t.Fatalf("nodes=%d: contig %d differs from single-node", nodes, i)
			}
		}
		// Contigs must still be genome substrings.
		gs, grc := genome.String(), genome.ReverseComplement().String()
		for i, c := range dres.Contigs {
			if !strings.Contains(gs, c.String()) && !strings.Contains(grc, c.String()) {
				t.Errorf("nodes=%d: contig %d not a genome substring", nodes, i)
			}
		}
	}
}

func TestClusterPhases(t *testing.T) {
	_, reads := testData(t)
	cl, err := New(clusterConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []core.PhaseName{core.PhaseMap, PhaseShuffle, core.PhaseSort,
		core.PhaseReduce, core.PhaseCompress} {
		ps, ok := res.PhaseByName(name)
		if !ok {
			t.Fatalf("missing phase %s", name)
		}
		if ps.Modeled < 0 {
			t.Errorf("phase %s negative modeled time", name)
		}
		if per := res.NodeModeled[name]; len(per) != 3 {
			t.Errorf("phase %s per-node times = %d entries", name, len(per))
		}
	}
	shuffle, _ := res.PhaseByName(PhaseShuffle)
	if shuffle.DiskRead == 0 {
		t.Error("shuffle should read partitions")
	}
}

func TestShuffleChargesNetworkOnlyAcrossNodes(t *testing.T) {
	_, reads := testData(t)
	// Single node: shuffle is all-local, no network bytes.
	cl1, err := New(clusterConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.Assemble(reads); err != nil {
		t.Fatal(err)
	}
	var net1 int64
	for _, n := range cl1.nodes {
		net1 += n.meter.Snapshot().NetBytes
	}
	if net1 != 0 {
		t.Errorf("1-node cluster moved %d network bytes; want 0", net1)
	}
	// Multi node: shuffle must cross the network.
	cl4, err := New(clusterConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl4.Assemble(reads); err != nil {
		t.Fatal(err)
	}
	var net4 int64
	for _, n := range cl4.nodes {
		net4 += n.meter.Snapshot().NetBytes
	}
	if net4 == 0 {
		t.Error("4-node cluster moved no network bytes")
	}
}

func TestScalingImprovesParallelPhases(t *testing.T) {
	// The Fig. 10 shape: per-node modeled sort/map time shrinks with more
	// nodes (aggregate I/O bandwidth), while the serialized reduce
	// component does not.
	_, reads := testData(t)
	measure := func(nodes int) (mapT, sortT float64) {
		cl, err := New(clusterConfig(t, nodes))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		mp, _ := res.PhaseByName(core.PhaseMap)
		st, _ := res.PhaseByName(core.PhaseSort)
		return mp.Modeled.Seconds(), st.Modeled.Seconds()
	}
	map1, sort1 := measure(1)
	map4, sort4 := measure(4)
	if map4 >= map1 {
		t.Errorf("map modeled time should shrink: 1 node %.4fs vs 4 nodes %.4fs", map1, map4)
	}
	if sort4 >= sort1 {
		t.Errorf("sort modeled time should shrink: 1 node %.4fs vs 4 nodes %.4fs", sort1, sort4)
	}
}

func TestClusterValidate(t *testing.T) {
	good := clusterConfig(t, 2)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes should fail")
	}
	bad = good
	bad.InputBlockReads = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero block size should fail")
	}
	bad = good
	bad.Workspace = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty workspace should fail")
	}
}

func TestClusterErrors(t *testing.T) {
	cl, err := New(clusterConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Assemble(dna.NewReadSet(0, 0)); err == nil {
		t.Error("empty read set should fail")
	}
	rs := dna.NewReadSet(1, 8)
	rs.Append(dna.MustParseSeq("ACGT"))
	if _, err := cl.Assemble(rs); err == nil {
		t.Error("reads shorter than MinOverlap should fail")
	}
}

// TestWorkersPerNodeDeterminism asserts that per-node partition
// concurrency does not change the distributed output. Modeled cost is
// deliberately NOT compared: the map phase hands out input blocks by
// dynamic load balancing (Section III-E.1), so which node maps which
// block — and therefore the per-node meter maxima — depends on
// scheduling even without per-node workers. Output does not, because the
// shuffle reassembles the same partitions wherever the tuples landed.
func TestWorkersPerNodeDeterminism(t *testing.T) {
	_, reads := testData(t)
	var base *Result
	for _, w := range []int{1, 4} {
		cfg := clusterConfig(t, 3)
		cfg.WorkersPerNode = w
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Assemble(reads)
		if err != nil {
			t.Fatalf("WorkersPerNode=%d: %v", w, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.CandidateEdges != base.CandidateEdges || res.AcceptedEdges != base.AcceptedEdges {
			t.Errorf("WorkersPerNode=%d: edges %d/%d, want %d/%d",
				w, res.CandidateEdges, res.AcceptedEdges, base.CandidateEdges, base.AcceptedEdges)
		}
		if len(res.Contigs) != len(base.Contigs) {
			t.Fatalf("WorkersPerNode=%d: %d contigs, want %d", w, len(res.Contigs), len(base.Contigs))
		}
		for i := range base.Contigs {
			if !res.Contigs[i].Equal(base.Contigs[i]) {
				t.Fatalf("WorkersPerNode=%d: contig %d differs", w, i)
			}
		}
	}
}
