package cluster

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fingerprint"
	"repro/internal/kv"
	"repro/internal/kvio"
)

// keySpace is the size of the high fingerprint component's value space:
// the first hash is taken modulo fingerprint.ParamsA.Prime, so Hi values
// are uniform in [0, keySpace).
const keySpace = fingerprint.KeySpaceHi

// Fingerprint-range partitioning — the paper's stated future work
// (Section IV-D): "we are working on partitioning the suffixes/prefixes
// based on their fingerprints rather than on lengths."
//
// Under length partitioning, node (l-lmin) mod N owns all tuples of
// overlap length l, so at most min(N, lmax-lmin) nodes can work on the
// reduce phase concurrently and skew between partition sizes maps
// directly to load skew. Under fingerprint partitioning every node owns
// a fixed slice of the 128-bit fingerprint space across all lengths:
// each length's tuple lists are split N ways, every node reduces its
// slice of every partition, and the per-length candidate lists are
// re-assembled in fingerprint order — which is exactly the order the
// single-node reduce emits, so the greedy result stays bit-identical.

// rangeOwner returns the node owning a fingerprint: the high hash
// component is uniform in [0, keySpace), so equal slices of that range
// balance the load.
func (c *Cluster) rangeOwner(k kv.Key) *node {
	n := len(c.nodes)
	idx := int(k.Hi / (keySpace/uint64(n) + 1))
	if idx >= n {
		idx = n - 1
	}
	return c.nodes[idx]
}

// shuffleNodeByFingerprint pulls n's fingerprint slice of every length
// partition from all peers.
func (c *Cluster) shuffleNodeByFingerprint(maxLen int, n *node) error {
	nNodes := uint64(len(c.nodes))
	stride := keySpace/nNodes + 1
	lo := uint64(n.id) * stride
	hi := lo + stride // exclusive
	last := n.id == len(c.nodes)-1

	inRange := func(k kv.Key) bool {
		if last {
			return k.Hi >= lo
		}
		return k.Hi >= lo && k.Hi < hi
	}

	n.counts = map[int]int64{}
	buf := make([]kv.Pair, 4096)
	for l := c.cfg.MinOverlap; l < maxLen; l++ {
		for _, kind := range []kvio.Kind{kvio.Suffix, kvio.Prefix} {
			outPath := filepath.Join(n.dir, fmt.Sprintf("shuf_%s_%04d.kv", kind, l))
			w, err := kvio.NewWriter(outPath, n.meter)
			if err != nil {
				return err
			}
			var total int64
			for _, peer := range c.nodes {
				in := kvio.PartitionPath(peer.dir, kind, l)
				r, err := kvio.NewReader(in, peer.meter)
				if os.IsNotExist(err) {
					continue
				}
				if err != nil {
					w.Close()
					return err
				}
				var moved int64
				for {
					m, rerr := r.ReadBatch(buf)
					for _, pair := range buf[:m] {
						if !inRange(pair.Key) {
							continue
						}
						if werr := w.Write(pair); werr != nil {
							r.Close()
							w.Close()
							return werr
						}
						moved++
					}
					if rerr == io.EOF {
						break
					}
					if rerr != nil {
						r.Close()
						w.Close()
						return rerr
					}
				}
				r.Close()
				if peer != n {
					n.meter.AddNet(moved * kv.PairBytes)
				}
				total += moved
			}
			if err := w.Close(); err != nil {
				return err
			}
			if kind == kvio.Suffix && total > 0 {
				n.counts[l] = total
			}
		}
	}
	return nil
}
