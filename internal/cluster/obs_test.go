package cluster

import (
	"bytes"
	"context"
	"log/slog"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/obs"
)

// TestClusterTracePerNodeTracks: a distributed run's trace must carry one
// process per node (plus the coordinator), per-node stage spans with
// counter deltas, and the coordinator's phase spans — the structure
// Perfetto renders as parallel node swimlanes.
func TestClusterTracePerNodeTracks(t *testing.T) {
	_, reads := testData(t)
	const nodes = 3
	cfg := clusterConfig(t, nodes)
	var logBuf bytes.Buffer
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	cfg.Obs = obs.New(obs.NewLogger(&logBuf, slog.LevelDebug, false), tr, reg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.AssembleContext(context.Background(), reads)
	if err != nil {
		t.Fatal(err)
	}

	names := map[int64]string{}
	nodeStageSpans := map[int64]int{} // pid -> per-node stage span count
	coordSpans := map[string]bool{}
	for _, e := range tr.Events() {
		switch {
		case e.Phase == "M" && e.Name == "process_name":
			names[e.Pid], _ = e.Args["name"].(string)
		case e.Phase == "X" && e.Cat == "stage" && e.Pid == 0:
			coordSpans[e.Name] = true
		case e.Phase == "X" && e.Cat == "stage":
			nodeStageSpans[e.Pid]++
			if _, ok := e.Args["counters"].(costmodel.Counters); !ok {
				t.Errorf("node stage span %s on pid %d missing counters", e.Name, e.Pid)
			}
		}
	}
	if names[0] != "coordinator" {
		t.Errorf("pid 0 named %q, want coordinator", names[0])
	}
	for i := 0; i < nodes; i++ {
		pid := int64(i) + 1
		if names[pid] == "" {
			t.Errorf("node pid %d has no process name", pid)
		}
		if nodeStageSpans[pid] == 0 {
			t.Errorf("node pid %d has no stage spans", pid)
		}
	}
	for _, phase := range []string{"Map", "Shuffle", "Sort", "Reduce", "Compress", "ReduceSerial"} {
		if !coordSpans[phase] {
			t.Errorf("coordinator missing phase span %s (have %v)", phase, coordSpans)
		}
	}

	// Aggregate consistency: the summed per-node + serial counters are
	// what Result reports.
	if res.Counters == (costmodel.Counters{}) {
		t.Error("cluster result carries no counters")
	}
	if res.Modeled.Total() <= 0 {
		t.Error("cluster result carries no modeled breakdown")
	}
	logs := logBuf.String()
	for _, want := range []string{"cluster run start", "phase done", "node phase done"} {
		if !bytes.Contains([]byte(logs), []byte(want)) {
			t.Errorf("cluster log missing %q", want)
		}
	}
}
