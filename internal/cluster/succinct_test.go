package cluster

import (
	"os"
	"testing"

	"repro/internal/core"
)

// TestDistributedSuccinctMatchesSingleNode pins the succinct backend's
// cluster/single-node parity: the master spills candidates, sorts, and
// streams them into the compressed store, whose contents depend only on
// the edge set — so the distributed run must produce byte-identical
// contig FASTA to a single-node succinct run (and, transitively, to
// spmat) at every node count.
func TestDistributedSuccinctMatchesSingleNode(t *testing.T) {
	_, reads := testData(t)
	scfg := singleConfig(t)
	scfg.GraphBackend = core.BackendSuccinct
	single, err := core.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	sfasta, err := os.ReadFile(sres.ContigPath)
	if err != nil {
		t.Fatal(err)
	}

	spcfg := singleConfig(t)
	spcfg.GraphBackend = core.BackendSpmat
	spp, err := core.New(spcfg)
	if err != nil {
		t.Fatal(err)
	}
	spres, err := spp.Assemble(reads)
	if err != nil {
		t.Fatal(err)
	}
	spfasta, err := os.ReadFile(spres.ContigPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(sfasta) != string(spfasta) {
		t.Fatal("single-node succinct FASTA differs from single-node spmat FASTA")
	}

	for _, nodes := range []int{1, 2, 4} {
		cfg := clusterConfig(t, nodes)
		cfg.GraphBackend = core.BackendSuccinct
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dres, err := cl.Assemble(reads)
		if err != nil {
			t.Fatal(err)
		}
		if dres.AcceptedEdges != sres.AcceptedEdges || dres.ReducedEdges != sres.ReducedEdges {
			t.Errorf("nodes=%d: accepted/reduced = %d/%d, single-node %d/%d",
				nodes, dres.AcceptedEdges, dres.ReducedEdges,
				sres.AcceptedEdges, sres.ReducedEdges)
		}
		dfasta, err := os.ReadFile(dres.ContigPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(dfasta) != string(sfasta) {
			t.Fatalf("nodes=%d: cluster succinct FASTA differs from single-node succinct FASTA", nodes)
		}
	}
}

// TestClusterSuccinctFingerprint keeps per-node manifests from resuming
// across a switch to (or from) the succinct engine.
func TestClusterSuccinctFingerprint(t *testing.T) {
	base := clusterConfig(t, 2)
	succ := base
	succ.GraphBackend = core.BackendSuccinct
	if base.fingerprint(0) == succ.fingerprint(0) {
		t.Error("succinct backend must change the node fingerprint")
	}
	sp := base
	sp.GraphBackend = core.BackendSpmat
	if sp.fingerprint(0) == succ.fingerprint(0) {
		t.Error("spmat and succinct must fingerprint differently")
	}
}
