package contig

import (
	"strings"
	"testing"

	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/graph"
)

func dev() *gpu.Device { return gpu.NewDevice(gpu.K40, nil) }

// buildChain constructs a read set of overlapping windows over genome and
// the graph chaining them in order.
func buildChain(t *testing.T, genome string, readLen, step int) (*dna.ReadSet, *graph.Graph) {
	t.Helper()
	g := dna.MustParseSeq(genome)
	rs := dna.NewReadSet(8, 256)
	var n int
	for pos := 0; pos+readLen <= len(g); pos += step {
		rs.Append(g[pos : pos+readLen].Clone())
		n++
	}
	gr := graph.New(n)
	for i := 0; i+1 < n; i++ {
		u := dna.ForwardVertex(uint32(i))
		v := dna.ForwardVertex(uint32(i + 1))
		if !gr.AddCandidate(u, v, uint16(readLen-step)) {
			t.Fatalf("chain edge %d rejected", i)
		}
	}
	return rs, gr
}

func TestGenerateReconstructsGenome(t *testing.T) {
	genome := "ACGTTGCAGGATCCTAGGCAATTGCACGTA" // 30 bases
	rs, gr := buildChain(t, genome, 10, 5)
	paths := gr.Traverse(rs.VertexLen, graph.TraverseOptions{})
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	contigs := Generate(Config{Device: dev()}, paths, rs)
	if len(contigs) != 1 {
		t.Fatalf("contigs = %d", len(contigs))
	}
	got := contigs[0].String()
	if got != genome && got != dna.MustParseSeq(genome).ReverseComplement().String() {
		t.Errorf("contig = %q, want genome %q (either orientation)", got, genome)
	}
}

func TestGenerateWithReverseStrandVertices(t *testing.T) {
	// Two reads overlapping by 4, the second stored as its RC; the graph
	// edge targets the second read's reverse vertex.
	a := dna.MustParseSeq("ACGTTGCA")
	bFwd := dna.MustParseSeq("TGCAGGAT") // overlaps a by TGCA
	rs := dna.NewReadSet(2, 16)
	rs.Append(a)
	rs.Append(bFwd.ReverseComplement()) // stored reversed
	gr := graph.New(2)
	// a's 4-suffix TGCA == prefix of RC(read1) reversed back = vertex 3.
	if !gr.AddCandidate(0, 3, 4) {
		t.Fatal("edge rejected")
	}
	paths := gr.Traverse(rs.VertexLen, graph.TraverseOptions{})
	contigs := Generate(Config{Device: dev()}, paths, rs)
	if len(contigs) != 1 {
		t.Fatalf("contigs = %d", len(contigs))
	}
	want := "ACGTTGCAGGAT"
	got := contigs[0].String()
	if got != want && got != dna.MustParseSeq(want).ReverseComplement().String() {
		t.Errorf("contig = %q, want %q (either orientation)", got, want)
	}
}

func TestGenerateMultiplePathsAndSingletons(t *testing.T) {
	genome := "ACGTTGCAGGATCCTAGGCAATTGCACGTAGGCCTTAAGG"
	rs, gr := buildChain(t, genome[:20], 10, 5)
	// Add two isolated reads.
	rs.Append(dna.MustParseSeq("TTTTTTTTTT"))
	rs.Append(dna.MustParseSeq("CCCCCCCCCC"))
	gr2 := graph.New(rs.NumReads())
	for _, e := range gr.Edges() {
		if e.U%2 == 0 { // re-add forward candidates only
			gr2.AddCandidate(e.U, e.V, e.Len)
		}
	}
	paths := gr2.Traverse(rs.VertexLen, graph.TraverseOptions{IncludeSingletons: true})
	contigs := Generate(Config{Device: dev()}, paths, rs)
	if len(contigs) != 3 {
		t.Fatalf("contigs = %d, want 3 (one chain + two singletons)", len(contigs))
	}
	joined := ""
	for _, c := range contigs {
		joined += c.String() + "|"
	}
	for _, want := range []string{"TTTTTTTTTT", "CCCCCCCCCC"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing singleton contig %q in %q", want, joined)
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	rs := dna.NewReadSet(0, 0)
	if got := Generate(Config{Device: dev()}, nil, rs); got != nil {
		t.Errorf("expected nil for no paths, got %v", got)
	}
}

func TestSummarize(t *testing.T) {
	mk := func(n int) dna.Seq { return make(dna.Seq, n) }
	st := Summarize([]dna.Seq{mk(100), mk(50), mk(30), mk(20)})
	if st.NumContigs != 4 || st.TotalBases != 200 || st.MaxLen != 100 {
		t.Errorf("stats = %+v", st)
	}
	if st.N50 != 100 {
		t.Errorf("N50 = %d, want 100 (100 covers half of 200)", st.N50)
	}
	if st.MeanLen != 50 {
		t.Errorf("MeanLen = %v", st.MeanLen)
	}
	st = Summarize([]dna.Seq{mk(60), mk(50), mk(40), mk(30)})
	if st.N50 != 50 {
		t.Errorf("N50 = %d, want 50 (60+50 >= 90)", st.N50)
	}
	if got := Summarize(nil); got.NumContigs != 0 || got.N50 != 0 {
		t.Errorf("empty stats = %+v", got)
	}
}

func TestSummarizeString(t *testing.T) {
	s := Summarize([]dna.Seq{make(dna.Seq, 10)}).String()
	if !strings.Contains(s, "contigs=1") || !strings.Contains(s, "N50=10") {
		t.Errorf("String() = %q", s)
	}
}
