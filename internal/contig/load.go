package contig

import (
	"repro/internal/dna"
	"repro/internal/fastq"
)

// LoadFASTA reads contig sequences back from a FASTA file previously
// written by the pipeline's compress stage. Resumed runs use it to
// restore Result.Contigs from the committed artifact without re-running
// traversal; Summarize over the returned slice reproduces the original
// run's statistics.
func LoadFASTA(path string) ([]dna.Seq, error) {
	rs, _, err := fastq.ReadFile(path)
	if err != nil {
		return nil, err
	}
	contigs := make([]dna.Seq, rs.NumReads())
	for i := range contigs {
		contigs[i] = rs.Read(uint32(i))
	}
	return contigs, nil
}
