// Package contig implements the second stage of LaSAGNA's compress phase
// (Section III-D, Fig. 7): converting string-graph paths into contig
// sequences.
//
// The layout follows the paper's device-side plan: an exclusive prefix
// scan over path lengths places each path in the flattened tuple list;
// a scan over overhang lengths sizes each contig and assigns every read
// its byte offset inside the concatenated contig space; a gather/scatter
// keyed by read-ID moves each (offset, overhang) tuple into a read-indexed
// table; finally the reads are streamed once more and each read's leading
// overhang bases are copied into its slot.
package contig

import (
	"fmt"
	"sort"

	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/graph"
)

// Config parameterizes contig generation.
type Config struct {
	Device *gpu.Device
}

// Stats summarizes an assembly, the numbers a downstream user judges
// contiguity by.
type Stats struct {
	NumContigs int
	TotalBases int64
	MaxLen     int
	MeanLen    float64
	N50        int
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("contigs=%d bases=%d max=%d mean=%.1f N50=%d",
		s.NumContigs, s.TotalBases, s.MaxLen, s.MeanLen, s.N50)
}

// Generate materializes contigs from paths. rs must be the read set the
// graph was built over (vertex 2i = read i forward, 2i+1 = reverse
// complement).
func Generate(cfg Config, paths []graph.Path, rs dna.ReadSource) []dna.Seq {
	dev := cfg.Device
	if len(paths) == 0 {
		return nil
	}
	// Offsets of each path within the flattened step list (first scan of
	// Fig. 7).
	pathLens := make([]int64, len(paths))
	for i, p := range paths {
		pathLens[i] = int64(len(p))
	}
	pathOff := make([]int64, len(paths))
	totalSteps := dev.ExclusiveScan(pathLens, pathOff)

	// Flatten steps and scan overhangs to get each read's offset in the
	// concatenated contig space plus each contig's boundaries.
	flatVerts := make([]int32, totalSteps)
	overhangs := make([]int64, totalSteps)
	for i, p := range paths {
		base := pathOff[i]
		for j, step := range p {
			flatVerts[base+int64(j)] = int32(step.V)
			overhangs[base+int64(j)] = int64(step.Overhang)
		}
	}
	readOff := make([]int64, totalSteps)
	totalBases := dev.ExclusiveScan(overhangs, readOff)

	// Scatter (offset, overhang) tuples into a vertex-indexed table (the
	// gather step of Fig. 7; each read belongs to at most one path).
	vertOff := make([]int64, rs.NumVertices())
	vertOvh := make([]int64, rs.NumVertices())
	for i := range vertOff {
		vertOff[i] = -1
	}
	gpu.Scatter(dev, readOff, flatVerts, vertOff)
	gpu.Scatter(dev, overhangs, flatVerts, vertOvh)

	// Stream the reads and place each overhang substring at its offset.
	out := make(dna.Seq, totalBases)
	dev.CopyToDevice(totalBases)
	rcBuf := make(dna.Seq, rs.MaxLen())
	for r := uint32(0); r < uint32(rs.NumReads()); r++ {
		fwd := dna.ForwardVertex(r)
		for _, v := range [2]uint32{fwd, fwd | 1} {
			off := vertOff[v]
			if off < 0 {
				continue
			}
			seq := rs.Read(r)
			if dna.IsReverse(v) {
				rc := rcBuf[:len(seq)]
				seq.ReverseComplementInto(rc)
				seq = rc
			}
			copy(out[off:off+vertOvh[v]], seq[:vertOvh[v]])
		}
	}
	dev.ChargeKernel(totalBases*2, totalBases)

	// Cut the concatenated space at path boundaries.
	contigs := make([]dna.Seq, len(paths))
	for i := range paths {
		start := readOff[pathOff[i]]
		end := totalBases
		if i+1 < len(paths) {
			end = readOff[pathOff[i+1]]
		}
		contigs[i] = out[start:end]
	}
	return contigs
}

// Summarize computes assembly statistics over a contig set.
func Summarize(contigs []dna.Seq) Stats {
	st := Stats{NumContigs: len(contigs)}
	if len(contigs) == 0 {
		return st
	}
	lens := make([]int, len(contigs))
	for i, c := range contigs {
		lens[i] = len(c)
		st.TotalBases += int64(len(c))
		if len(c) > st.MaxLen {
			st.MaxLen = len(c)
		}
	}
	st.MeanLen = float64(st.TotalBases) / float64(len(contigs))
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	var cum int64
	for _, l := range lens {
		cum += int64(l)
		if 2*cum >= st.TotalBases {
			st.N50 = l
			break
		}
	}
	return st
}
