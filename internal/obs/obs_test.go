package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/costmodel"
)

// TestNilSafety drives every chained call form the pipeline uses through a
// nil observer: none may panic, and none may allocate observable state.
func TestNilSafety(t *testing.T) {
	var o *Observer
	o.Log().Info("into the void", "k", 1)
	o.Log().Debug("still nothing")
	o.Tracer().Instant(Track{}, "cat", "nope", nil)
	o.Tracer().NameProcess(0, "x")
	o.Tracer().NameThread(Track{}, "x")
	o.Tracer().Async(0, "c", "n", time.Now(), time.Millisecond, nil)
	span := o.Tracer().Begin(Track{}, "cat", "span")
	span.Metered(costmodel.NewMeter(), costmodel.Profile{}).Arg("k", "v").End()
	if evs := o.Tracer().Events(); evs != nil {
		t.Errorf("nil tracer returned events: %v", evs)
	}
	if err := o.Tracer().WriteJSON(io.Discard); err != nil {
		t.Errorf("nil tracer WriteJSON: %v", err)
	}
	o.Metrics().Counter("c").Add(5)
	o.Metrics().Gauge("g").Set(5)
	o.Metrics().Histogram("h", 1, 2).Observe(1.5)
	snap := o.Metrics().Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	// An observer with all-nil channels behaves identically.
	empty := New(nil, nil, nil)
	empty.Log().Warn("discarded")
	empty.Tracer().Begin(Track{}, "c", "s").End()
	empty.Metrics().Counter("c").Add(1)
	// Metered on a nil meter must not arm the delta machinery.
	tr := NewTracer()
	tr.Begin(Track{}, "c", "s").Metered(nil, costmodel.Profile{}).End()
	for _, e := range tr.Events() {
		if _, ok := e.Args["counters"]; ok {
			t.Error("span Metered(nil meter) attached counters")
		}
	}
}

func TestLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn, false)
	log.Debug("hidden")
	log.Info("hidden too")
	log.Warn("visible", "stage", "Map")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("warn-level logger emitted sub-warn lines: %q", out)
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "stage=Map") {
		t.Errorf("warn line missing or unstructured: %q", out)
	}

	buf.Reset()
	jlog := NewLogger(&buf, slog.LevelDebug, true)
	jlog.Debug("dbg", "worker", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line is not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "dbg" || rec["worker"] != float64(3) {
		t.Errorf("json log record = %v", rec)
	}
}

func TestTracerEventsAndOrdering(t *testing.T) {
	tr := NewTracer()
	tr.Instant(Track{Pid: 2, Tid: 0}, "marker", "cached: Map", map[string]any{"artifacts": 4})
	tr.NameProcess(2, "node02") // metadata added after events must still sort first
	tr.NameThread(Track{Pid: 2, Tid: 1}, "worker 0")
	start := time.Now().Add(-2 * time.Millisecond)
	tr.Complete(Track{Pid: 2, Tid: 0}, "stage", "Sort", start, 2*time.Millisecond, nil)
	tr.Async(2, "kernel", "launch", start, time.Millisecond, map[string]any{"blocks": 7})

	evs := tr.Events()
	if len(evs) != 6 { // instant + 2 metadata + complete + async b/e
		t.Fatalf("got %d events, want 6: %+v", len(evs), evs)
	}
	if evs[0].Phase != "M" || evs[1].Phase != "M" {
		t.Errorf("metadata events must sort first, got phases %s %s", evs[0].Phase, evs[1].Phase)
	}
	var sawInstant, sawComplete bool
	var asyncB, asyncE *Event
	for i := range evs {
		e := &evs[i]
		switch e.Phase {
		case "i":
			sawInstant = true
			if e.Scope != "t" {
				t.Errorf("instant scope = %q, want t", e.Scope)
			}
		case "X":
			sawComplete = true
			if e.Dur < 1 {
				t.Errorf("complete dur = %d, want >= 1us", e.Dur)
			}
		case "b":
			asyncB = e
		case "e":
			asyncE = e
		}
	}
	if !sawInstant || !sawComplete {
		t.Error("missing instant or complete event")
	}
	if asyncB == nil || asyncE == nil {
		t.Fatal("missing async begin/end pair")
	}
	if asyncB.ID == "" || asyncB.ID != asyncE.ID {
		t.Errorf("async pair IDs mismatched: %q vs %q", asyncB.ID, asyncE.ID)
	}
	if asyncE.TS < asyncB.TS {
		t.Errorf("async end ts %d before begin ts %d", asyncE.TS, asyncB.TS)
	}
}

// TestCompleteMinimumDuration: sub-microsecond spans are clamped so the
// viewer never drops them.
func TestCompleteMinimumDuration(t *testing.T) {
	tr := NewTracer()
	tr.Complete(Track{}, "stage", "tiny", time.Now(), 0, nil)
	if d := tr.Events()[0].Dur; d != 1 {
		t.Errorf("zero-duration complete dur = %d, want clamped 1", d)
	}
}

func TestSpanMeteredDelta(t *testing.T) {
	m := costmodel.NewMeter()
	m.AddDiskRead(100) // pre-span work must not leak into the delta
	prof := costmodel.Profile{DiskReadBps: 10, DiskWriteBps: 5}
	tr := NewTracer()
	span := tr.Begin(Track{Pid: 1, Tid: 2}, "stage", "Map").Metered(m, prof).Arg("reads", 42)
	m.AddDiskRead(50)
	m.AddDiskWrite(20)
	span.End()

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Cat != "stage" || e.Name != "Map" || e.Pid != 1 || e.Tid != 2 {
		t.Errorf("span event fields: %+v", e)
	}
	if e.Args["reads"] != 42 {
		t.Errorf("span arg reads = %v", e.Args["reads"])
	}
	delta, ok := e.Args["counters"].(costmodel.Counters)
	if !ok {
		t.Fatalf("span counters arg has type %T", e.Args["counters"])
	}
	if delta.DiskReadBytes != 50 || delta.DiskWriteBytes != 20 {
		t.Errorf("span delta = %+v, want disk read 50 / write 20", delta)
	}
	bd, ok := e.Args["modeled"].(costmodel.Breakdown)
	if !ok {
		t.Fatalf("span modeled arg has type %T", e.Args["modeled"])
	}
	if bd.DiskReadSec != 5 || bd.DiskWriteSec != 4 {
		t.Errorf("span breakdown = %+v, want 5s read / 4s write", bd)
	}
}

// TestWriteJSONShape writes a trace file and re-parses it as generic JSON,
// asserting the Chrome trace-event object form Perfetto expects.
func TestWriteJSONShape(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(0, "lasagna")
	sp := tr.Begin(Track{}, "run", "assemble")
	tr.Begin(Track{}, "stage", "Map").End()
	sp.End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if _, ok := e["ph"].(string); !ok {
			t.Errorf("event missing ph: %v", e)
		}
		if _, ok := e["name"].(string); !ok {
			t.Errorf("event missing name: %v", e)
		}
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Begin(Track{Tid: int64(w)}, "partition", "work").End()
				tr.Async(0, "kernel", "launch", time.Now(), time.Microsecond, nil)
			}
		}(w)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != 8*50*3 { // one X + one b + one e per iteration
		t.Errorf("got %d events, want %d", len(evs), 8*50*3)
	}
	ids := map[string]int{}
	for _, e := range evs {
		if e.Phase == "b" || e.Phase == "e" {
			ids[e.ID]++
		}
	}
	for id, n := range ids {
		if n != 2 {
			t.Errorf("async id %s appears %d times, want 2", id, n)
		}
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not get-or-create")
	}
	r.Counter("c").Add(3)
	r.Counter("c").Add(4)
	if v := r.Counter("c").Value(); v != 7 {
		t.Errorf("counter = %d, want 7", v)
	}
	r.Gauge("g").Set(9)
	r.Gauge("g").Set(2)
	if v := r.Gauge("g").Value(); v != 2 {
		t.Errorf("gauge = %d, want 2", v)
	}
	// First registration wins: later conflicting bounds are ignored.
	h1 := r.Histogram("h", 1, 10)
	h2 := r.Histogram("h", 5000)
	if h1 != h2 {
		t.Error("Histogram not get-or-create")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 10, 1) // unsorted on purpose; registry sorts
	for _, v := range []float64{0.5, 1, 1.0001, 10, 11, 1e9} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h"]
	if snap.Count != 6 {
		t.Errorf("count = %d, want 6", snap.Count)
	}
	wantSum := 0.5 + 1 + 1.0001 + 10 + 11 + 1e9
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
	if len(snap.Buckets) != 3 {
		t.Fatalf("got %d buckets, want 3", len(snap.Buckets))
	}
	// Bounds are inclusive upper bounds: 1 lands in the first bucket,
	// 10 in the second, everything beyond in the overflow.
	wantCounts := []int64{2, 2, 2}
	for i, b := range snap.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(float64(snap.Buckets[2].Le), 1) {
		t.Errorf("overflow bucket Le = %v, want +Inf", snap.Buckets[2].Le)
	}
}

// TestSnapshotJSON: the snapshot must marshal (notably the +Inf overflow
// bound, which raw float64 JSON cannot express) and round-trip its counts.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.pairs").Add(12)
	r.Gauge("core.partitions").Set(3)
	r.Histogram("overlap.length", 64, 128).Observe(100)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
	if !strings.Contains(string(raw), `"+Inf"`) {
		t.Errorf("snapshot JSON missing +Inf overflow bound: %s", raw)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not re-parse: %v", err)
	}
	counters := back["counters"].(map[string]any)
	if counters["core.pairs"] != float64(12) {
		t.Errorf("round-tripped counter = %v", counters["core.pairs"])
	}
}

func TestJSONFloatInfinities(t *testing.T) {
	cases := []struct {
		in   jsonFloat
		want string
	}{
		{jsonFloat(math.Inf(1)), `"+Inf"`},
		{jsonFloat(math.Inf(-1)), `"-Inf"`},
		{jsonFloat(2.5), `2.5`},
	}
	for _, c := range cases {
		got, err := json.Marshal(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != c.want {
			t.Errorf("jsonFloat(%v) = %s, want %s", float64(c.in), got, c.want)
		}
		var back jsonFloat
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("jsonFloat unmarshal %s: %v", got, err)
		}
		if float64(back) != float64(c.in) {
			t.Errorf("jsonFloat round-trip %s = %v, want %v", got, float64(back), float64(c.in))
		}
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.hits").Add(41)
	srv, err := NewDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/debug/metrics body is not a snapshot: %v (%s)", err, body)
	}
	if snap.Counters["test.hits"] != 41 {
		t.Errorf("served counter = %d, want 41", snap.Counters["test.hits"])
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["metrics"]; !ok {
		t.Error("/debug/vars missing published metrics var")
	}

	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	// A second server (fresh registry) must not panic on expvar re-publish
	// and must serve the new registry's values.
	reg2 := NewRegistry()
	reg2.Counter("test.hits").Add(7)
	srv2, err := NewDebugServer("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/metrics", srv2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap2 Snapshot
	if err := json.Unmarshal(body, &snap2); err != nil {
		t.Fatal(err)
	}
	if snap2.Counters["test.hits"] != 7 {
		t.Errorf("second server served counter = %d, want 7", snap2.Counters["test.hits"])
	}
}
