// Package obs is the pipeline's observability layer: span tracing in
// Chrome trace-event format (loadable in Perfetto / chrome://tracing),
// structured logging via log/slog, and a registry of named counters,
// gauges, and fixed-bucket histograms, plus a live debug HTTP endpoint
// (expvar + metrics snapshot + net/http/pprof).
//
// Everything is opt-in and nil-safe: a nil *Observer (the default for
// every Config in the pipeline) short-circuits all instrumentation, so
// observability off changes neither output bytes nor metered costs. The
// paper's whole evaluation is per-phase time/IO attribution (Tables
// II/III, Figs. 8-10); this package is what turns the pipeline's internal
// counters into structure an operator can watch live on a long run.
package obs

import (
	"context"
	"io"
	"log/slog"
)

// Observer bundles the three observability channels. Any of them may be
// nil; a nil *Observer disables everything. Observers are safe for
// concurrent use by every pipeline worker and cluster node.
type Observer struct {
	log     *slog.Logger
	tracer  *Tracer
	metrics *Registry
}

// New builds an observer from the given channels, each of which may be
// nil.
func New(log *slog.Logger, tracer *Tracer, metrics *Registry) *Observer {
	return &Observer{log: log, tracer: tracer, metrics: metrics}
}

// Log returns the structured logger; never nil (a nil observer or nil
// logger yields a discard logger), so call sites never guard.
func (o *Observer) Log() *slog.Logger {
	if o == nil || o.log == nil {
		return nopLogger
	}
	return o.log
}

// Tracer returns the span tracer, possibly nil. All Tracer methods are
// nil-safe, so the chained form o.Tracer().Begin(...) always works.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Metrics returns the metrics registry, possibly nil. All Registry and
// instrument methods are nil-safe, so the chained form
// o.Metrics().Counter("x").Add(1) always works.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// nopHandler is a slog handler that is disabled for every level; used so
// Log() can return a non-nil logger with zero cost on the disabled path.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// NewLogger builds the pipeline-wide logger: text or JSON lines on w at
// the given level. The CLI maps -v to LevelDebug, default to LevelWarn
// (silent on a clean run), and -quiet to LevelError.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
