package obs

import (
	"sync"
	"testing"
)

func TestEventLogSequenceAndOrder(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 5; i++ {
		e := l.Append("enqueue", "j1", map[string]any{"i": i})
		if e.Seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d, want %d", i, e.Seq, i+1)
		}
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("retained %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) || e.Type != "enqueue" || e.Job != "j1" {
			t.Errorf("event %d = %+v, want seq %d", i, e, i+1)
		}
	}
	if got := l.Since(3); len(got) != 2 || got[0].Seq != 4 {
		t.Errorf("Since(3) = %+v, want seqs 4,5", got)
	}
	if l.Total() != 5 || l.Dropped() != 0 {
		t.Errorf("Total=%d Dropped=%d, want 5/0", l.Total(), l.Dropped())
	}
}

func TestEventLogRingEviction(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 10; i++ {
		l.Append("t", "", nil)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, want := range []uint64{8, 9, 10} {
		if evs[i].Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, evs[i].Seq, want)
		}
	}
	if l.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", l.Dropped())
	}
	if l.Total() != 10 {
		t.Errorf("Total = %d, want 10", l.Total())
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	if e := l.Append("x", "j", nil); e.Seq != 0 {
		t.Errorf("nil append returned seq %d", e.Seq)
	}
	if l.Events() != nil || l.Since(0) != nil || l.Len() != 0 || l.Total() != 0 || l.Dropped() != 0 {
		t.Error("nil event log is not inert")
	}
}

// TestEventLogConcurrentAppend drives parallel appenders and checks the
// retained window is a dense, strictly increasing suffix of the sequence
// space — the race detector covers the locking itself.
func TestEventLogConcurrentAppend(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	const writers, each = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Append("t", "j", nil)
			}
		}()
	}
	wg.Wait()
	if l.Total() != writers*each {
		t.Fatalf("Total = %d, want %d", l.Total(), writers*each)
	}
	evs := l.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained window not dense at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != writers*each {
		t.Errorf("newest seq = %d, want %d", evs[len(evs)-1].Seq, writers*each)
	}
}
