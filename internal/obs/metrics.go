package obs

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics instruments. Instruments are get-or-create
// by name (first registration wins, so callers resolve them once and hold
// the pointer on hot paths); the whole registry snapshots into one
// JSON-marshalable value for the run manifest, the final report, and the
// debug endpoint. A nil *Registry no-ops: lookups return nil instruments
// whose methods are themselves nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	children map[string]*Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// AttachChild mounts a child registry under this one: the child's
// instruments appear in this registry's snapshots with the label appended
// to every name as `name{label}` (e.g. `core.partitions{job="j42"}`).
// The serve layer gives each assembly job a private registry and attaches
// it to the server registry for the lifetime of the job, so the debug
// endpoint shows per-job metrics live. Attaching a registry to one of its
// own descendants deadlocks snapshots; don't build cycles.
func (r *Registry) AttachChild(label string, child *Registry) {
	if r == nil || child == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.children == nil {
		r.children = map[string]*Registry{}
	}
	r.children[label] = child
}

// DetachChild unmounts the child registered under label; unknown labels
// are a no-op.
func (r *Registry) DetachChild(label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.children, label)
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value instrument.
type Gauge struct{ v atomic.Int64 }

// Set records the current value; nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the last set value; nil-safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper bounds; observations beyond the last bound land in an implicit
// overflow bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter returns the named counter, creating it on first use; a nil
// registry returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; a nil registry
// returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (later bounds are ignored — first
// registration wins); a nil registry returns nil.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: observations <= Le
// (exclusive of earlier buckets); the overflow bucket has Le = +Inf,
// rendered as the JSON string "+Inf".
type Bucket struct {
	Le    jsonFloat `json:"le"`
	Count int64     `json:"count"`
}

// jsonFloat marshals +/-Inf (invalid JSON numbers) as strings.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+Inf"`:
		*f = jsonFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = jsonFloat(math.Inf(-1))
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every instrument, with stable
// (sorted) iteration order under JSON marshaling.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every instrument; a nil registry
// yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Count: h.count.Load(),
				Sum:   math.Float64frombits(h.sum.Load()),
			}
			for i := range h.counts {
				le := math.Inf(1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, Bucket{Le: jsonFloat(le), Count: h.counts[i].Load()})
			}
			s.Histograms[name] = hs
		}
	}
	// Merge attached children, each instrument labeled `name{label}`.
	// Children are snapshotted while the parent lock is held; the
	// attach-only-downward rule (see AttachChild) keeps the lock order
	// acyclic.
	for label, child := range r.children {
		cs := child.Snapshot()
		for name, v := range cs.Counters {
			if s.Counters == nil {
				s.Counters = map[string]int64{}
			}
			s.Counters[name+"{"+label+"}"] = v
		}
		for name, v := range cs.Gauges {
			if s.Gauges == nil {
				s.Gauges = map[string]int64{}
			}
			s.Gauges[name+"{"+label+"}"] = v
		}
		for name, v := range cs.Histograms {
			if s.Histograms == nil {
				s.Histograms = map[string]HistogramSnapshot{}
			}
			s.Histograms[name+"{"+label+"}"] = v
		}
	}
	return s
}
