package obs

import (
	"context"
	"testing"
	"time"

	"repro/internal/gpu"
)

func testDevice(capacity int64, o *Observer) *gpu.Device {
	spec := gpu.K40
	spec.MemBytes = capacity
	dev := gpu.NewDevice(spec, nil)
	dev.SetHooks(DeviceHooks(o, 3))
	return dev
}

func TestDeviceHooksNilObserver(t *testing.T) {
	if h := DeviceHooks(nil, 0); h != nil {
		t.Fatalf("DeviceHooks(nil) = %v, want nil (gpu treats nil as disabled)", h)
	}
}

func TestDeviceHooksKernelEvents(t *testing.T) {
	tr := NewTracer()
	reg := NewRegistry()
	o := New(nil, tr, reg)
	dev := testDevice(1<<20, o)

	dev.LaunchBlocks(5, func(int) {})
	dev.ChargeKernel(1000, 250)
	dev.ChargeKernel(24, 8)

	snap := reg.Snapshot()
	if got := snap.Counters["gpu.kernel_launches"]; got != 1 {
		t.Errorf("kernel_launches = %d, want 1", got)
	}
	if got := snap.Counters["gpu.kernel_mem_bytes"]; got != 1024 {
		t.Errorf("kernel_mem_bytes = %d, want 1024", got)
	}
	if got := snap.Counters["gpu.kernel_ops"]; got != 258 {
		t.Errorf("kernel_ops = %d, want 258", got)
	}
	lh := snap.Histograms["gpu.launch_blocks"]
	if lh.Count != 1 || lh.Sum != 5 {
		t.Errorf("launch_blocks histogram = %+v, want one observation of 5", lh)
	}
	var launches int
	for _, e := range tr.Events() {
		if e.Phase == "b" && e.Cat == "kernel" {
			launches++
			if e.Pid != 3 {
				t.Errorf("kernel event pid = %d, want 3", e.Pid)
			}
			if e.Args["blocks"] != 5 {
				t.Errorf("kernel event blocks = %v, want 5", e.Args["blocks"])
			}
		}
	}
	if launches != 1 {
		t.Errorf("got %d kernel launch trace events, want 1 (ChargeKernel must not trace)", launches)
	}
}

// TestAllocWaitedFiresOnlyWhenBlocking: an uncontended AllocWait must not
// report backpressure; a second request that must wait for the first to
// free must report exactly one wait.
func TestAllocWaitedFiresOnlyWhenBlocking(t *testing.T) {
	tr := NewTracer()
	reg := NewRegistry()
	dev := testDevice(100, New(nil, tr, reg))

	a, err := dev.AllocWait(context.Background(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["gpu.alloc_waits"]; got != 0 {
		t.Fatalf("uncontended AllocWait reported %d waits", got)
	}

	// The freeing goroutine sleeps well past the main goroutine's path into
	// AllocWait, so the second request observes real backpressure.
	go func() {
		time.Sleep(50 * time.Millisecond)
		a.Free()
	}()
	b, err := dev.AllocWait(context.Background(), 80) // cannot fit until a frees
	if err != nil {
		t.Fatal(err)
	}
	b.Free()

	snap := reg.Snapshot()
	if got := snap.Counters["gpu.alloc_waits"]; got != 1 {
		t.Errorf("alloc_waits = %d, want 1", got)
	}
	wh := snap.Histograms["gpu.alloc_wait_seconds"]
	if wh.Count != 1 {
		t.Errorf("alloc_wait_seconds count = %d, want 1", wh.Count)
	}
	var waitEvents int
	for _, e := range tr.Events() {
		if e.Phase == "b" && e.Cat == "allocwait" {
			waitEvents++
			if e.Args["bytes"] != int64(80) {
				t.Errorf("allocwait bytes = %v, want 80", e.Args["bytes"])
			}
		}
	}
	if waitEvents != 1 {
		t.Errorf("got %d allocwait trace events, want 1", waitEvents)
	}
}
