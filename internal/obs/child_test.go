package obs

import (
	"encoding/json"
	"testing"
)

func TestRegistryChildren(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("serve.jobs_admitted").Add(3)

	child := NewRegistry()
	child.Counter("core.pairs").Add(42)
	child.Gauge("core.partitions").Set(7)
	child.Histogram("core.batch_ms", 1, 10).Observe(5)

	parent.AttachChild(`job="j1"`, child)
	snap := parent.Snapshot()
	if got := snap.Counters[`core.pairs{job="j1"}`]; got != 42 {
		t.Errorf(`labeled counter = %d, want 42 (snapshot: %+v)`, got, snap.Counters)
	}
	if got := snap.Gauges[`core.partitions{job="j1"}`]; got != 7 {
		t.Errorf(`labeled gauge = %d, want 7`, got)
	}
	if h, ok := snap.Histograms[`core.batch_ms{job="j1"}`]; !ok || h.Count != 1 {
		t.Errorf(`labeled histogram = %+v, %v`, h, ok)
	}
	if got := snap.Counters["serve.jobs_admitted"]; got != 3 {
		t.Errorf("parent counter = %d, want 3", got)
	}
	// The merged snapshot must still marshal (the debug endpoint serves
	// it as JSON).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshaling merged snapshot: %v", err)
	}

	// Two children with different labels coexist.
	other := NewRegistry()
	other.Counter("core.pairs").Add(1)
	parent.AttachChild(`job="j2"`, other)
	snap = parent.Snapshot()
	if snap.Counters[`core.pairs{job="j1"}`] != 42 || snap.Counters[`core.pairs{job="j2"}`] != 1 {
		t.Errorf("sibling children collided: %+v", snap.Counters)
	}

	// Detach removes the child's instruments from later snapshots.
	parent.DetachChild(`job="j1"`)
	snap = parent.Snapshot()
	if _, ok := snap.Counters[`core.pairs{job="j1"}`]; ok {
		t.Error("detached child still present in snapshot")
	}
	if _, ok := snap.Counters[`core.pairs{job="j2"}`]; !ok {
		t.Error("detach removed the wrong child")
	}

	// Nil receivers and nil children are no-ops, not panics.
	var nilReg *Registry
	nilReg.AttachChild("x", child)
	nilReg.DetachChild("x")
	parent.AttachChild("y", nil)
	parent.DetachChild("never-attached")
}
