package obs

import (
	"time"

	"repro/internal/gpu"
)

// Histogram bounds for device instruments. Wait bounds are seconds; launch
// bounds are thread-block counts.
var (
	allocWaitBounds    = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10}
	launchBlocksBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}
)

// deviceHooks implements gpu.Hooks against an Observer. All instruments
// are resolved once at construction so the per-primitive KernelCharge path
// touches only pre-resolved atomics.
type deviceHooks struct {
	tracer *Tracer
	pid    int64

	launches   *Counter
	launchHist *Histogram
	memBytes   *Counter
	ops        *Counter
	waits      *Counter
	waitHist   *Histogram
	streamOps  *Counter
}

// DeviceHooks builds gpu.Hooks that feed o's tracer and metrics, tagging
// async trace events with the given pid (the owning pipeline or cluster
// node track). Returns nil when o is nil, which gpu treats as disabled.
func DeviceHooks(o *Observer, pid int64) gpu.Hooks {
	if o == nil {
		return nil
	}
	m := o.Metrics()
	return &deviceHooks{
		tracer:     o.Tracer(),
		pid:        pid,
		launches:   m.Counter("gpu.kernel_launches"),
		launchHist: m.Histogram("gpu.launch_blocks", launchBlocksBounds...),
		memBytes:   m.Counter("gpu.kernel_mem_bytes"),
		ops:        m.Counter("gpu.kernel_ops"),
		waits:      m.Counter("gpu.alloc_waits"),
		waitHist:   m.Histogram("gpu.alloc_wait_seconds", allocWaitBounds...),
		streamOps:  m.Counter("gpu.stream_ops"),
	}
}

func (h *deviceHooks) KernelLaunch(blocks int, start time.Time, wall time.Duration) {
	h.launches.Add(1)
	h.launchHist.Observe(float64(blocks))
	h.tracer.Async(h.pid, "kernel", "launch", start, wall,
		map[string]any{"blocks": blocks})
}

func (h *deviceHooks) KernelCharge(memBytes, ops int64) {
	h.memBytes.Add(memBytes)
	h.ops.Add(ops)
}

// StreamOp implements gpu.StreamHooks: each asynchronously executed stream
// op becomes an async trace span named after its stream, so overlapping
// stream activity renders as overlapping "stream" tracks.
func (h *deviceHooks) StreamOp(stream, op string, start time.Time, wall time.Duration) {
	h.streamOps.Add(1)
	h.tracer.Async(h.pid, "stream", stream+" "+op, start, wall,
		map[string]any{"stream": stream, "op": op})
}

func (h *deviceHooks) AllocWaited(bytes int64, start time.Time, wait time.Duration) {
	h.waits.Add(1)
	h.waitHist.Observe(wait.Seconds())
	h.tracer.Async(h.pid, "allocwait", "alloc wait", start, wait,
		map[string]any{"bytes": bytes})
}
