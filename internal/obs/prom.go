package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry Snapshot in the Prometheus text exposition
// format (version 0.0.4) and parses it back. Instrument names in this
// package may embed label blocks — `fleet.device_queued{device="0"}` from
// the scheduler, plus a `{job="<id>"}` block appended per attached child
// registry — so `graph.nnz{backend="spmat"}{job="j42"}` becomes the
// Prometheus series `graph_nnz{backend="spmat",job="j42"}`. Histograms
// render with cumulative buckets and an explicit `+Inf` bound, and label
// values are escaped per the exposition rules (backslash, quote, newline).

// ContentTypePrometheus is the Content-Type of the text exposition format.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// promLabel is one parsed label pair; Value is the raw (unescaped) value.
type promLabel struct {
	name, value string
}

// sanitizePromName maps an instrument base name onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:], with a non-digit first character.
func sanitizePromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// sanitizePromLabelName maps a label name onto [a-zA-Z0-9_] with a
// non-digit first character (the label-name alphabet has no colon).
func sanitizePromLabelName(name string) string {
	s := sanitizePromName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// escapePromLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapePromLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// parseInstrumentName splits a registry instrument name into its base and
// any embedded label blocks. Values inside blocks are Go-quoted (the
// convention used when callers build labeled names with %q, and what
// AttachChild documents); consecutive blocks merge, later blocks
// overriding earlier ones on duplicate label names. A name whose suffix
// does not parse as label blocks is returned whole with no labels.
func parseInstrumentName(name string) (string, []promLabel) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, nil
	}
	base, rest := name[:i], name[i:]
	var labels []promLabel
	seen := map[string]int{}
	add := func(l promLabel) {
		if at, ok := seen[l.name]; ok {
			labels[at] = l
			return
		}
		seen[l.name] = len(labels)
		labels = append(labels, l)
	}
	for len(rest) > 0 {
		if rest[0] != '{' {
			return name, nil
		}
		rest = rest[1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq <= 0 {
				return name, nil
			}
			key := rest[:eq]
			rest = rest[eq+1:]
			quoted, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return name, nil
			}
			val, err := strconv.Unquote(quoted)
			if err != nil {
				return name, nil
			}
			add(promLabel{name: key, value: val})
			rest = rest[len(quoted):]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return name, nil
		}
	}
	return base, labels
}

// renderPromLabels renders a sorted, escaped label block, or "" when
// there are no labels.
func renderPromLabels(labels []promLabel) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]promLabel(nil), labels...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i].name < sorted[k].name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, sanitizePromLabelName(l.name), escapePromLabelValue(l.value))
	}
	b.WriteByte('}')
	return b.String()
}

// formatPromFloat renders a float sample value; infinities use the
// exposition spellings +Inf/-Inf.
func formatPromFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one labeled series within a family.
type promSeries struct {
	labels string // rendered label block ("" or "{a=\"x\",...}")
	value  int64  // counter/gauge value
	hist   *HistogramSnapshot
}

// promFamily is every series sharing one sanitized metric name.
type promFamily struct {
	name   string
	typ    string
	series []promSeries
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format 0.0.4: one `# TYPE` line per metric family, counters and gauges
// as single samples, histograms as cumulative `_bucket` series (with the
// `+Inf` bound) plus `_sum` and `_count`. Families and series render in
// sorted order so the output is deterministic.
func WritePrometheus(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	family := func(rawName, typ string) (*promFamily, string) {
		base, labels := parseInstrumentName(rawName)
		name := sanitizePromName(base)
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		return f, renderPromLabels(labels)
	}
	for name, v := range s.Counters {
		f, labels := family(name, "counter")
		f.series = append(f.series, promSeries{labels: labels, value: v})
	}
	for name, v := range s.Gauges {
		f, labels := family(name, "gauge")
		f.series = append(f.series, promSeries{labels: labels, value: v})
	}
	for name, h := range s.Histograms {
		f, labels := family(name, "histogram")
		hc := h
		f.series = append(f.series, promSeries{labels: labels, hist: &hc})
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, k int) bool { return f.series[i].labels < f.series[k].labels })
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, se := range f.series {
			if se.hist == nil {
				fmt.Fprintf(bw, "%s%s %d\n", f.name, se.labels, se.value)
				continue
			}
			// Buckets are cumulative in the exposition format; the
			// snapshot stores per-bucket counts.
			cum := int64(0)
			for _, b := range se.hist.Buckets {
				cum += b.Count
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					mergeLe(se.labels, formatPromFloat(float64(b.Le))), cum)
			}
			if n := len(se.hist.Buckets); n == 0 || !math.IsInf(float64(se.hist.Buckets[n-1].Le), 1) {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, mergeLe(se.labels, "+Inf"), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, se.labels, formatPromFloat(se.hist.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.name, se.labels, se.hist.Count)
		}
	}
	return bw.Flush()
}

// mergeLe appends the `le` label to an already-rendered label block.
func mergeLe(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// PromSample is one parsed sample line of an exposition document.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsePrometheus parses a Prometheus text exposition (format 0.0.4)
// document: it returns the `# TYPE` declarations (metric name -> type)
// and every sample in document order. Tests use it to prove WritePrometheus
// output round-trips; it accepts exactly the subset the writer emits plus
// optional timestamps and ignores other comments.
func ParsePrometheus(r io.Reader) (map[string]string, []PromSample, error) {
	types := map[string]string{}
	var samples []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return types, samples, nil
}

// parsePromSample parses one `name{labels} value [timestamp]` line.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq <= 0 {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			key := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			val, n, err := unescapePromLabelValue(rest[1:])
			if err != nil {
				return s, fmt.Errorf("%v in %q", err, line)
			}
			s.Labels[key] = val
			rest = rest[1+n:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// unescapePromLabelValue consumes an escaped label value up to (and
// including) its closing quote, returning the value and how many input
// bytes were consumed.
func unescapePromLabelValue(in string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch in[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(in[i])
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parsePromValue parses a sample value, accepting the exposition
// spellings of the infinities and NaN.
func parsePromValue(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(tok, 64)
}
