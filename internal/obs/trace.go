package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/costmodel"
)

// Track identifies one timeline in the trace. Pid groups timelines into a
// named process (the single-node pipeline, or one cluster node); Tid is
// one lane within it (the stage driver, or one pipeline worker).
type Track struct {
	Pid int64
	Tid int64
}

// Worker returns the track of worker w under the same process; worker
// lanes start at tid 1, leaving tid 0 for the stage driver.
func (t Track) Worker(w int) Track { return Track{Pid: t.Pid, Tid: int64(w) + 1} }

// Event is one Chrome trace event. Phases used: "X" (complete span), "i"
// (instant marker), "b"/"e" (async span, for device events that overlap
// worker lanes), "M" (process/thread metadata).
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds since the tracer epoch
	Dur   int64          `json:"dur,omitempty"`
	Pid   int64          `json:"pid"`
	Tid   int64          `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer collects trace events in memory and serializes them as Chrome
// trace-event JSON (the format Perfetto and chrome://tracing load). It is
// safe for concurrent use; a nil *Tracer no-ops on every method.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	events  []Event
	asyncID uint64
}

// NewTracer starts a tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

func (t *Tracer) ts(at time.Time) int64 { return at.Sub(t.epoch).Microseconds() }

func (t *Tracer) append(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// NameProcess names a pid's track group ("lasagna", "node03", ...).
func (t *Tracer) NameProcess(pid int64, name string) {
	if t == nil {
		return
	}
	t.append(Event{Name: "process_name", Phase: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// NameThread names one lane within a process ("stages", "worker 2", ...).
func (t *Tracer) NameThread(track Track, name string) {
	if t == nil {
		return
	}
	t.append(Event{Name: "thread_name", Phase: "M", Pid: track.Pid, Tid: track.Tid,
		Args: map[string]any{"name": name}})
}

// Instant records a point event (cached-stage markers, resume decisions).
func (t *Tracer) Instant(track Track, cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Cat: cat, Phase: "i", TS: t.ts(time.Now()),
		Pid: track.Pid, Tid: track.Tid, Scope: "t", Args: args})
}

// Complete records a finished span on a track.
func (t *Tracer) Complete(track Track, cat, name string, start time.Time,
	dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Cat: cat, Phase: "X", TS: t.ts(start),
		Dur: max(dur.Microseconds(), 1), Pid: track.Pid, Tid: track.Tid, Args: args})
}

// Async records a finished span as an async begin/end pair. Async spans
// may overlap freely (Perfetto groups them by category under the
// process), which is what device-queue events need: concurrent workers'
// kernel launches and allocator waits interleave on one device.
func (t *Tracer) Async(pid int64, cat, name string, start time.Time,
	dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.asyncID++
	id := "a" + strconv.FormatUint(t.asyncID, 10)
	t.events = append(t.events,
		Event{Name: name, Cat: cat, Phase: "b", TS: t.ts(start), Pid: pid, ID: id, Args: args},
		Event{Name: name, Cat: cat, Phase: "e", TS: t.ts(start.Add(dur)), Pid: pid, ID: id})
	t.mu.Unlock()
}

// Span is an in-progress Complete event, optionally carrying the meter
// delta and the modeled per-tier cost of the work it covers.
type Span struct {
	tr      *Tracer
	track   Track
	cat     string
	name    string
	start   time.Time
	meter   *costmodel.Meter
	before  costmodel.Counters
	prof    costmodel.Profile
	metered bool
	args    map[string]any
}

// Begin opens a span; End emits it. A nil tracer returns a nil span, and
// every Span method is nil-safe.
func (t *Tracer) Begin(track Track, cat, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, track: track, cat: cat, name: name, start: time.Now()}
}

// Metered snapshots m now; End attaches the counter delta and its modeled
// per-tier seconds under prof. With concurrent spans sharing one meter
// (Workers > 1) sibling deltas interleave — exact at the serial stage
// level, attributional inside a stage.
func (s *Span) Metered(m *costmodel.Meter, prof costmodel.Profile) *Span {
	if s == nil || m == nil {
		return s
	}
	s.meter = m
	s.before = m.Snapshot()
	s.prof = prof
	s.metered = true
	return s
}

// Arg attaches one key to the span's args.
func (s *Span) Arg(key string, v any) *Span {
	if s == nil {
		return s
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = v
	return s
}

// End emits the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.metered {
		delta := s.meter.Snapshot().Sub(s.before)
		s.Arg("counters", delta)
		s.Arg("modeled", delta.Breakdown(s.prof))
	}
	s.tr.Complete(s.track, s.cat, s.name, s.start, time.Since(s.start), s.args)
}

// traceFile is the on-disk shape: the trace-event JSON object form.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Events returns a copy of the collected events sorted by timestamp
// (metadata first); tests and WriteJSON share it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Phase == "M", out[j].Phase == "M"
		if mi != mj {
			return mi
		}
		return out[i].TS < out[j].TS
	})
	return out
}

// WriteJSON serializes the trace in Chrome trace-event JSON object form.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path (the CLI's -trace flag).
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
