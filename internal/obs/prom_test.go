package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// promIndex folds parsed samples into a map keyed by name plus sorted
// labels, for order-independent lookups.
func promIndex(samples []PromSample) map[string]float64 {
	out := map[string]float64{}
	for _, s := range samples {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		// small maps; insertion sort for determinism
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		key := s.Name
		for _, k := range keys {
			key += fmt.Sprintf("|%s=%s", k, s.Labels[k])
		}
		out[key] = s.Value
	}
	return out
}

// TestPrometheusRoundTrip renders a registry with every instrument kind —
// including name-embedded labels and an attached child registry — and
// parses the exposition back, checking values, label merges, cumulative
// buckets, and the +Inf bound.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.jobs_admitted").Add(7)
	reg.Counter(`fleet.steals{src="1",dst="0"}`).Add(3)
	reg.Gauge(`fleet.device_inuse_bytes{device="0"}`).Set(4096)
	h := reg.Histogram("serve.queue_wait_ms", 1, 10, 100)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	child := NewRegistry()
	child.Counter("core.pairs").Add(42)
	child.Counter(`graph.nnz{backend="spmat"}`).Add(9)
	reg.AttachChild(`job="j42"`, child)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	types, samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v\n%s", err, buf.String())
	}

	wantTypes := map[string]string{
		"serve_jobs_admitted":      "counter",
		"fleet_steals":             "counter",
		"fleet_device_inuse_bytes": "gauge",
		"serve_queue_wait_ms":      "histogram",
		"core_pairs":               "counter",
		"graph_nnz":                "counter",
	}
	for name, typ := range wantTypes {
		if types[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], typ)
		}
	}

	idx := promIndex(samples)
	checks := map[string]float64{
		"serve_jobs_admitted":                7,
		"fleet_steals|dst=0|src=1":           3,
		"fleet_device_inuse_bytes|device=0":  4096,
		"core_pairs|job=j42":                 42,
		"graph_nnz|backend=spmat|job=j42":    9,
		"serve_queue_wait_ms_bucket|le=1":    1,
		"serve_queue_wait_ms_bucket|le=10":   2,
		"serve_queue_wait_ms_bucket|le=100":  2,
		"serve_queue_wait_ms_bucket|le=+Inf": 3,
		"serve_queue_wait_ms_count":          3,
		"serve_queue_wait_ms_sum":            5005.5,
	}
	for key, want := range checks {
		got, ok := idx[key]
		if !ok {
			t.Errorf("sample %q missing from exposition:\n%s", key, buf.String())
			continue
		}
		if got != want {
			t.Errorf("sample %q = %v, want %v", key, got, want)
		}
	}
	if !strings.Contains(buf.String(), `le="+Inf"`) {
		t.Error("exposition has no +Inf bucket bound")
	}
}

// TestPrometheusLabelEscaping pins the escaping rules: quotes,
// backslashes, and newlines in label values survive a render/parse
// round trip.
func TestPrometheusLabelEscaping(t *testing.T) {
	weird := "ten\"ant\\one\nline2"
	reg := NewRegistry()
	reg.Counter(fmt.Sprintf("serve.jobs{tenant=%q}", weird)).Add(1)

	child := NewRegistry()
	child.Gauge("x").Set(5)
	reg.AttachChild(fmt.Sprintf("job=%q", `j"quote`), child)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != strings.Count(out, "\n") || strings.Contains(out, "ten\"ant") {
		t.Errorf("unescaped quote leaked into exposition:\n%s", out)
	}
	_, samples, err := ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatalf("escaped exposition does not parse: %v\n%s", err, out)
	}
	found := false
	for _, s := range samples {
		if s.Name == "serve_jobs" {
			found = true
			if s.Labels["tenant"] != weird {
				t.Errorf("tenant label = %q, want %q", s.Labels["tenant"], weird)
			}
		}
		if s.Name == "x" && s.Labels["job"] != `j"quote` {
			t.Errorf("job label = %q, want %q", s.Labels["job"], `j"quote`)
		}
	}
	if !found {
		t.Fatalf("serve_jobs sample missing:\n%s", out)
	}
}

// TestPrometheusEmptyRegistry: an empty snapshot renders to an empty
// (but valid) document.
func TestPrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	types, samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 0 || len(samples) != 0 {
		t.Errorf("empty registry rendered %d types / %d samples: %q", len(types), len(samples), buf.String())
	}
	// A nil-registry snapshot renders identically.
	buf.Reset()
	var nilReg *Registry
	if err := WritePrometheus(&buf, nilReg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry rendered %q", buf.String())
	}
}

// TestPrometheusHistogramChildMerge: a histogram inside a child registry
// carries the child label on every _bucket/_sum/_count series.
func TestPrometheusHistogramChildMerge(t *testing.T) {
	reg := NewRegistry()
	child := NewRegistry()
	ch := child.Histogram("gpu.alloc_wait_seconds", 0.1, 1)
	ch.Observe(0.05)
	ch.Observe(50)
	reg.AttachChild(`job="jx"`, child)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	_, samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	idx := promIndex(samples)
	for key, want := range map[string]float64{
		"gpu_alloc_wait_seconds_bucket|job=jx|le=0.1":  1,
		"gpu_alloc_wait_seconds_bucket|job=jx|le=1":    1,
		"gpu_alloc_wait_seconds_bucket|job=jx|le=+Inf": 2,
		"gpu_alloc_wait_seconds_count|job=jx":          2,
		"gpu_alloc_wait_seconds_sum|job=jx":            50.05,
	} {
		if got, ok := idx[key]; !ok || got != want {
			t.Errorf("sample %q = %v (present=%v), want %v\n%s", key, got, ok, want, buf.String())
		}
	}
}

func TestParseInstrumentNameEdgeCases(t *testing.T) {
	cases := []struct {
		in       string
		wantBase string
		wantLbls map[string]string
	}{
		{"plain.name", "plain.name", nil},
		{`a{b="c"}`, "a", map[string]string{"b": "c"}},
		{`a{b="c",d="e"}`, "a", map[string]string{"b": "c", "d": "e"}},
		{`a{b="c"}{job="j"}`, "a", map[string]string{"b": "c", "job": "j"}},
		{`a{b="c"}{b="z"}`, "a", map[string]string{"b": "z"}}, // later block wins
		{`a{b="with{brace}"}`, "a", map[string]string{"b": "with{brace}"}},
		{`broken{b=}`, `broken{b=}`, nil},         // malformed: whole name is the base
		{`broken{b="c"`, `broken{b="c"`, nil},     // unterminated block
		{`broken{b="c"}x`, `broken{b="c"}x`, nil}, // trailing junk
	}
	for _, c := range cases {
		base, labels := parseInstrumentName(c.in)
		if base != c.wantBase {
			t.Errorf("parseInstrumentName(%q) base = %q, want %q", c.in, base, c.wantBase)
		}
		got := map[string]string{}
		for _, l := range labels {
			got[l.name] = l.value
		}
		if len(got) != len(c.wantLbls) {
			t.Errorf("parseInstrumentName(%q) labels = %v, want %v", c.in, got, c.wantLbls)
			continue
		}
		for k, v := range c.wantLbls {
			if got[k] != v {
				t.Errorf("parseInstrumentName(%q) label %s = %q, want %q", c.in, k, got[k], v)
			}
		}
	}
}

// TestPromValueInfinities pins the +Inf spelling both ways.
func TestPromValueInfinities(t *testing.T) {
	if formatPromFloat(math.Inf(1)) != "+Inf" || formatPromFloat(math.Inf(-1)) != "-Inf" {
		t.Error("formatPromFloat infinity spellings wrong")
	}
	v, err := parsePromValue("+Inf")
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("parsePromValue(+Inf) = %v, %v", v, err)
	}
}
