package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// debugRegistry is the registry the expvar-published "metrics" var reads.
// expvar panics on duplicate Publish, so the var is published exactly once
// per process and indirected through this pointer; successive DebugServers
// (tests start several) just swap the pointer.
var (
	debugRegistry  atomic.Pointer[Registry]
	publishMetrics = func() {
		expvar.Publish("metrics", expvar.Func(func() any {
			return debugRegistry.Load().Snapshot()
		}))
	}
	published atomic.Bool
)

// DebugServer is the live debugging endpoint behind the CLI's -debug-addr
// flag: expvar at /debug/vars, the metrics snapshot at /debug/metrics, and
// net/http/pprof under /debug/pprof/.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugServer binds addr (":0" picks a free port) and starts serving in
// the background. The registry may be nil (the snapshot is then empty).
func NewDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	debugRegistry.Store(reg)
	if published.CompareAndSwap(false, true) {
		publishMetrics()
	}

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(debugRegistry.Load().Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server; nil-safe.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
