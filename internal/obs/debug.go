package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the live debugging endpoint behind the CLI's -debug-addr
// flag: expvar at /debug/vars, the metrics snapshot at /debug/metrics,
// Prometheus text exposition at /metrics, and net/http/pprof under
// /debug/pprof/.
//
// Each server is scoped to its own registry. An earlier revision
// published one process-global expvar var backed by a swap-on-construct
// pointer, so two live DebugServers silently cross-wired /debug/vars:
// both reported whichever registry was registered last. The vars handler
// now renders the expvar globals itself and scopes the "metrics" var to
// the owning server's registry.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	reg *Registry
}

// NewDebugServer binds addr (":0" picks a free port) and starts serving in
// the background. The registry may be nil (the snapshot is then empty).
func NewDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		writeVars(w, reg)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentTypePrometheus)
		WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}, reg: reg}
	go s.srv.Serve(ln)
	return s, nil
}

// writeVars renders the expvar JSON object (same shape expvar.Handler
// produces) with this server's own registry as the "metrics" var, keeping
// concurrent DebugServers independent.
func writeVars(w http.ResponseWriter, reg *Registry) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "metrics" {
			return // scoped per server below
		}
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
	})
	snap, err := json.Marshal(reg.Snapshot())
	if err != nil {
		snap = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s\n}\n", "metrics", snap)
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server; nil-safe.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
