package obs

import (
	"sync"
	"time"
)

// LogEvent is one structured entry in an EventLog: a typed, timestamped
// fact ("enqueue", "steal", "stage-commit", ...) about a subject (a job
// ID, usually), with a monotonically increasing sequence number assigned
// at append time. Sequence numbers start at 1 and never repeat within one
// EventLog, so consumers can totally order events from concurrent
// emitters and detect gaps after ring eviction.
type LogEvent struct {
	Seq   uint64         `json:"seq"`
	Time  time.Time      `json:"time"`
	Type  string         `json:"type"`
	Job   string         `json:"job,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// EventLog is a bounded, concurrency-safe ring of LogEvents. Appends
// never block and never grow memory past the configured capacity: once
// full, the oldest event is evicted (Dropped counts how many). A nil
// *EventLog no-ops on every method, so callers thread it unguarded the
// same way they thread the rest of this package.
type EventLog struct {
	mu   sync.Mutex
	buf  []LogEvent
	head int    // index of the oldest retained event
	n    int    // retained count
	next uint64 // sequence number of the next append (starts at 1)
}

// NewEventLog returns an event log retaining at most capacity events
// (minimum 1; a non-positive capacity gets a default of 1024).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{buf: make([]LogEvent, capacity), next: 1}
}

// Append records one event and returns it with its assigned sequence
// number and timestamp. The attrs map is retained as-is and must not be
// mutated afterwards. Nil-safe: a nil log returns a zero event (Seq 0).
func (l *EventLog) Append(typ, job string, attrs map[string]any) LogEvent {
	if l == nil {
		return LogEvent{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := LogEvent{Seq: l.next, Time: time.Now().UTC(), Type: typ, Job: job, Attrs: attrs}
	l.next++
	if l.n == len(l.buf) {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
	} else {
		l.buf[(l.head+l.n)%len(l.buf)] = e
		l.n++
	}
	return e
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []LogEvent {
	return l.Since(0)
}

// Since returns the retained events with Seq > after, oldest first. A
// nil log returns nil.
func (l *EventLog) Since(after uint64) []LogEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []LogEvent
	for i := 0; i < l.n; i++ {
		e := l.buf[(l.head+i)%len(l.buf)]
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out
}

// Len returns how many events are retained right now.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns how many events were ever appended.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Dropped returns how many appended events the ring has evicted.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1 - uint64(l.n)
}
