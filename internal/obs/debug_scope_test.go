package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugServerVarsScopedPerServer is the regression test for the
// last-writer-wins debugRegistry global: with two live DebugServers on
// distinct registries, each /debug/vars must report its own counters.
// Before the fix, both reported whichever registry was registered last.
func TestDebugServerVarsScopedPerServer(t *testing.T) {
	regA := NewRegistry()
	regA.Counter("scope.a").Add(11)
	regB := NewRegistry()
	regB.Counter("scope.b").Add(22)

	srvA, err := NewDebugServer("127.0.0.1:0", regA)
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := NewDebugServer("127.0.0.1:0", regB)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	counters := func(addr string) map[string]int64 {
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var vars struct {
			Metrics Snapshot `json:"metrics"`
		}
		if err := json.Unmarshal(body, &vars); err != nil {
			t.Fatalf("/debug/vars on %s is not valid JSON: %v\n%s", addr, err, body)
		}
		return vars.Metrics.Counters
	}

	// Query A after B was constructed — the old global would have been
	// overwritten by B's registration at this point.
	a := counters(srvA.Addr())
	if a["scope.a"] != 11 {
		t.Errorf("server A /debug/vars counters = %v, want scope.a=11", a)
	}
	if _, leaked := a["scope.b"]; leaked {
		t.Errorf("server A /debug/vars leaked server B's registry: %v", a)
	}
	b := counters(srvB.Addr())
	if b["scope.b"] != 22 {
		t.Errorf("server B /debug/vars counters = %v, want scope.b=22", b)
	}
	if _, leaked := b["scope.a"]; leaked {
		t.Errorf("server B /debug/vars leaked server A's registry: %v", b)
	}
}

// TestDebugServerPrometheusEndpoint: /metrics serves the text exposition
// with the documented content type and parses back.
func TestDebugServerPrometheusEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("promtest.hits").Add(3)
	srv, err := NewDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypePrometheus {
		t.Errorf("Content-Type = %q, want %q", ct, ContentTypePrometheus)
	}
	body, _ := io.ReadAll(resp.Body)
	types, samples, err := ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if types["promtest_hits"] != "counter" {
		t.Errorf("TYPE promtest_hits = %q, want counter", types["promtest_hits"])
	}
	found := false
	for _, s := range samples {
		if s.Name == "promtest_hits" && s.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("promtest_hits 3 missing from /metrics:\n%s", body)
	}
}
