package fingerprint

import (
	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/kv"
)

// NaiveKernel computes the same prefix and suffix fingerprints with the
// scheme Section III-A rejects: one thread per read evaluating the
// rolling hash sequentially (Horner). On a real GPU every thread in a
// warp then walks a different read, so global-memory accesses are
// uncoalesced — each 1-byte base load occupies a full memory transaction
// — and the shared-memory reuse of the block-per-read scan is lost. The
// cost model captures that with a warp-width (32x) memory amplification,
// which is what makes this kernel lose to the Hillis-Steele scan in the
// ablation benchmark even though it does asymptotically less arithmetic.
type NaiveKernel struct {
	table *Table
}

// warpWidth is the modeled memory-transaction amplification for
// uncoalesced per-thread streaming.
const warpWidth = 32

// NewNaiveKernel returns a naive per-read kernel bound to the table.
func NewNaiveKernel(t *Table) *NaiveKernel {
	return &NaiveKernel{table: t}
}

// Prefixes fills out[i] with the fingerprint of s[0:i+1] using a
// sequential Horner evaluation.
func (k *NaiveKernel) Prefixes(dev *gpu.Device, s dna.Seq, out []kv.Key) []kv.Key {
	n := len(s)
	if n > k.table.maxLen {
		panic("fingerprint: read longer than table maxLen")
	}
	out = sizedKeys(out, n)
	for h := 0; h < 2; h++ {
		p := k.table.params[h]
		var acc uint64
		for i, c := range s {
			acc = addmod(mulmod(acc, p.Radix, p.Prime), encode(c)%p.Prime, p.Prime)
			if h == 0 {
				out[i].Hi = acc
			} else {
				out[i].Lo = acc
			}
		}
	}
	// One uncoalesced read and write per element per hash component.
	dev.ChargeKernel(int64(n)*2*16*warpWidth, int64(n)*2)
	return out
}

// ScanRead computes both fingerprint arrays of one read. The naive kernel
// has no metering to amortize — its two kernel launches stay separate
// charges, exactly as before — so this is just the two calls in sequence,
// provided so both kernels satisfy the mapper's interface.
func (k *NaiveKernel) ScanRead(dev *gpu.Device, s dna.Seq, pout, sout []kv.Key) (pf, sf []kv.Key) {
	pf = k.Prefixes(dev, s, pout)
	sf = k.Suffixes(dev, pf, sout)
	return pf, sf
}

// Suffixes fills out[i] with the fingerprint of s[i:], recomputing each
// hash from scratch per position the way a per-thread kernel without the
// prefix-derivation trick would; the arithmetic is O(n) per suffix start
// only if derived, so the naive kernel derives too but pays uncoalesced
// traffic for the scattered writes (the paper notes the scan approach
// "avoids scattered writes during suffix fingerprint generation").
func (k *NaiveKernel) Suffixes(dev *gpu.Device, prefixes []kv.Key, out []kv.Key) []kv.Key {
	n := len(prefixes)
	out = sizedKeys(out, n)
	for h := 0; h < 2; h++ {
		p := k.table.params[h]
		place := k.table.place[h]
		whole := componentOf(prefixes[n-1], h)
		for i := 0; i < n; i++ {
			var v uint64
			if i == 0 {
				v = whole
			} else {
				v = submod(whole, mulmod(componentOf(prefixes[i-1], h), place[n-i], p.Prime), p.Prime)
			}
			if h == 0 {
				out[i].Hi = v
			} else {
				out[i].Lo = v
			}
		}
	}
	dev.ChargeKernel(int64(n)*2*16*warpWidth, int64(n)*2)
	return out
}
