package fingerprint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/kv"
)

func testDevice() *gpu.Device { return gpu.NewDevice(gpu.K40, nil) }

func randomSeq(rng *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

func TestMulmodSmall(t *testing.T) {
	cases := []struct{ a, b, m, want uint64 }{
		{7, 8, 13, 4},
		{0, 99, 13, 0},
		{12, 12, 13, 1},
	}
	for _, c := range cases {
		if got := mulmod(c.a, c.b, c.m); got != c.want {
			t.Errorf("mulmod(%d,%d,%d) = %d, want %d", c.a, c.b, c.m, got, c.want)
		}
	}
}

func TestMulmodLargeAgainstBig(t *testing.T) {
	// Cross-check against iterated addition for values near the moduli.
	f := func(a, b uint64) bool {
		for _, m := range []uint64{ParamsA.Prime, ParamsB.Prime} {
			am, bm := a%m, b%m
			got := mulmod(am, bm, m)
			// Compute via decomposition: a*b = a*(bHi*2^32 + bLo).
			bHi, bLo := bm>>32, bm&0xFFFFFFFF
			part := mulmod(am, bHi, m)
			for i := 0; i < 32; i++ {
				part = addmod(part, part, m)
			}
			want := addmod(part, mulmod(am, bLo, m), m)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddSubMod(t *testing.T) {
	m := ParamsB.Prime
	if got := addmod(m-1, m-1, m); got != m-2 {
		t.Errorf("addmod overflow case = %d, want %d", got, m-2)
	}
	if got := submod(0, m-1, m); got != 1 {
		t.Errorf("submod wrap = %d, want 1", got)
	}
	if got := submod(5, 3, m); got != 2 {
		t.Errorf("submod = %d, want 2", got)
	}
}

func TestPrefixesMatchReference(t *testing.T) {
	table := NewTable(200)
	k := NewKernel(table)
	dev := testDevice()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 7, 8, 100, 101, 128, 200} {
		s := randomSeq(rng, n)
		got := k.Prefixes(dev, s, make([]kv.Key, n))
		for i := 0; i < n; i++ {
			want := table.Fingerprint(s[:i+1])
			if got[i] != want {
				t.Fatalf("n=%d: prefix %d scan=%v reference=%v", n, i, got[i], want)
			}
		}
	}
}

func TestSuffixesMatchReference(t *testing.T) {
	table := NewTable(200)
	k := NewKernel(table)
	dev := testDevice()
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 64, 101, 150} {
		s := randomSeq(rng, n)
		prefixes := k.Prefixes(dev, s, make([]kv.Key, n))
		got := k.Suffixes(dev, prefixes, make([]kv.Key, n))
		for i := 0; i < n; i++ {
			want := table.Fingerprint(s[i:])
			if got[i] != want {
				t.Fatalf("n=%d: suffix %d scan=%v reference=%v", n, i, got[i], want)
			}
		}
	}
}

func TestScanPropertyAgainstReference(t *testing.T) {
	table := NewTable(300)
	k := NewKernel(table)
	dev := testDevice()
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 300 {
			return true
		}
		s := make(dna.Seq, len(raw))
		for i, b := range raw {
			s[i] = b & 3
		}
		n := len(s)
		prefixes := k.Prefixes(dev, s, make([]kv.Key, n))
		suffixes := k.Suffixes(dev, prefixes, make([]kv.Key, n))
		for i := 0; i < n; i++ {
			if prefixes[i] != table.Fingerprint(s[:i+1]) {
				return false
			}
			if suffixes[i] != table.Fingerprint(s[i:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOverlapFingerprintsAgree(t *testing.T) {
	// The pipeline's core identity: if the l-suffix of a equals the
	// l-prefix of b, their fingerprints must be equal, and unequal strings
	// of the same length must (whp) differ.
	table := NewTable(100)
	k := NewKernel(table)
	dev := testDevice()
	a := dna.MustParseSeq("ACGTACGTACGTTGCA")
	b := dna.MustParseSeq("ACGTTGCAGGGTTTCC")
	// 8-suffix of a = "ACGTTGCA" = 8-prefix of b.
	pa := k.Prefixes(dev, a, make([]kv.Key, len(a)))
	sa := k.Suffixes(dev, pa, make([]kv.Key, len(a)))
	pb := k.Prefixes(dev, b, make([]kv.Key, len(b)))
	if sa[len(a)-8] != pb[7] {
		t.Error("matching 8-overlap should produce equal fingerprints")
	}
	if sa[len(a)-9] == pb[8] {
		t.Error("non-matching 9-overlap should produce different fingerprints")
	}
}

func TestDistinctLengthsDistinctFingerprints(t *testing.T) {
	// With the +1 digit offset, runs of A must not collapse: prefix
	// fingerprints of "AAAA..." must all differ.
	table := NewTable(50)
	k := NewKernel(table)
	dev := testDevice()
	s := make(dna.Seq, 50) // all A
	fps := k.Prefixes(dev, s, make([]kv.Key, 50))
	seen := map[kv.Key]bool{}
	for _, fp := range fps {
		if seen[fp] {
			t.Fatal("prefix fingerprints of homopolymer collapsed")
		}
		seen[fp] = true
	}
}

func TestPrefixesPanicsBeyondMaxLen(t *testing.T) {
	table := NewTable(10)
	k := NewKernel(table)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for read longer than table maxLen")
		}
	}()
	k.Prefixes(testDevice(), make(dna.Seq, 11), make([]kv.Key, 11))
}

func TestKernelChargesDevice(t *testing.T) {
	dev := testDevice()
	table := NewTable(100)
	k := NewKernel(table)
	s := randomSeq(rand.New(rand.NewSource(3)), 100)
	k.Prefixes(dev, s, make([]kv.Key, 100))
	if dev.Meter().Snapshot().DeviceOps == 0 {
		t.Error("Prefixes should charge device ops")
	}
}

func BenchmarkPrefixes101(b *testing.B) {
	table := NewTable(101)
	k := NewKernel(table)
	dev := testDevice()
	s := randomSeq(rand.New(rand.NewSource(4)), 101)
	out := make([]kv.Key, 101)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Prefixes(dev, s, out)
	}
}

func BenchmarkSuffixes101(b *testing.B) {
	table := NewTable(101)
	k := NewKernel(table)
	dev := testDevice()
	s := randomSeq(rand.New(rand.NewSource(5)), 101)
	prefixes := k.Prefixes(dev, s, make([]kv.Key, 101))
	out := make([]kv.Key, 101)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Suffixes(dev, prefixes, out)
	}
}
