// Package fingerprint implements LaSAGNA's Rabin-Karp fingerprints and the
// data-parallel kernels of the map phase (Section III-A).
//
// Each fingerprint is 128 bits wide: two independent rolling hashes with
// different radixes and prime moduli, exactly as Section IV-B specifies,
// because a single hash yields false-positive overlap edges on
// high-coverage data. Prefix fingerprints of a read are computed with a
// Hillis-Steele inclusive scan (Fig. 5): starting from the per-base
// encodings, each step combines an element with the element `offset`
// positions to its left using precomputed place values, doubling the
// offset until it exceeds the read length. Suffix fingerprints are then
// derived arithmetically from the prefix fingerprints and place values
// (Fig. 6) without rescanning the read:
//
//	S[i] = (P[n-1] - P[i-1]*sigma^(n-i)) mod q
//
// Both moduli are large primes; base codes are offset by one so that the
// all-A prefix family does not collapse to a single fingerprint value.
package fingerprint

import (
	"math/bits"

	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/kv"
)

// Params defines one rolling hash: a radix (a small prime larger than the
// alphabet size, per Section III-A) and a large prime modulus.
type Params struct {
	Radix uint64
	Prime uint64
}

// The two hash components of the 128-bit fingerprint. PrimeA is the
// Mersenne prime 2^61-1; PrimeB is the largest prime below 2^64.
var (
	ParamsA = Params{Radix: 5, Prime: 2305843009213693951}
	ParamsB = Params{Radix: 7, Prime: 18446744073709551557}
)

// KeySpaceHi is the size of the value space of a fingerprint's high
// component (kv.Key.Hi is the first hash modulo ParamsA.Prime). Range
// partitioning of the fingerprint space divides this interval.
const KeySpaceHi = 2305843009213693951

// mulmod returns a*b mod m using a 128-bit intermediate product.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// addmod returns a+b mod m for a,b < m.
func addmod(a, b, m uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 || s >= m {
		s -= m
	}
	return s
}

// submod returns a-b mod m for a,b < m.
func submod(a, b, m uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + (m - b)
}

// encode maps a 2-bit base code to its hash digit. The +1 keeps prefixes
// of different lengths from colliding when the leading bases encode to
// zero.
func encode(code byte) uint64 { return uint64(code) + 1 }

// Table holds the precomputed place values M[i] = radix^i mod prime for
// both hash components, computed once per run and reused by every kernel
// launch (the paper precomputes M before launching the map kernels).
type Table struct {
	params [2]Params
	place  [2][]uint64 // place[h][i] = radix_h^i mod prime_h
	maxLen int
}

// NewTable precomputes place values for reads up to maxLen bases.
func NewTable(maxLen int) *Table {
	t := &Table{params: [2]Params{ParamsA, ParamsB}, maxLen: maxLen}
	for h := 0; h < 2; h++ {
		p := t.params[h]
		place := make([]uint64, maxLen+1)
		place[0] = 1 % p.Prime
		for i := 1; i <= maxLen; i++ {
			place[i] = mulmod(place[i-1], p.Radix, p.Prime)
		}
		t.place[h] = place
	}
	return t
}

// MaxLen returns the longest read length the table supports.
func (t *Table) MaxLen() int { return t.maxLen }

// Fingerprint computes the 128-bit fingerprint of an entire sequence with
// a sequential Horner evaluation. It is the reference implementation that
// the scan kernels are tested against, and is also used by substrates that
// hash one string at a time.
func (t *Table) Fingerprint(s dna.Seq) kv.Key {
	var out [2]uint64
	for h := 0; h < 2; h++ {
		p := t.params[h]
		var acc uint64
		for _, c := range s {
			acc = addmod(mulmod(acc, p.Radix, p.Prime), encode(c)%p.Prime, p.Prime)
		}
		out[h] = acc
	}
	return kv.Key{Hi: out[0], Lo: out[1]}
}

// Kernel computes prefix and suffix fingerprints for one read at a time
// using the Hillis-Steele scan. A Kernel owns scratch buffers sized to the
// table's maximum read length and is not safe for concurrent use: create
// one Kernel per worker goroutine (one per simulated thread block).
type Kernel struct {
	table *Table
	cur   [2][]uint64 // scan double-buffer, current step
	next  [2][]uint64 // scan double-buffer, next step
}

// NewKernel returns a kernel bound to the given place-value table.
func NewKernel(t *Table) *Kernel {
	k := &Kernel{table: t}
	for h := 0; h < 2; h++ {
		k.cur[h] = make([]uint64, t.maxLen)
		k.next[h] = make([]uint64, t.maxLen)
	}
	return k
}

// Prefixes fills out[i] with the fingerprint of s[0:i+1] for every i,
// using the Hillis-Steele scan of Fig. 5. out must have len(s) capacity;
// the filled prefix is returned.
//
// Each doubling step reads the previous step's values and writes fresh
// ones (double buffering), which is the lock-step barrier semantics of a
// CUDA thread block: thread i computes
//
//	P[i] = P[i-offset]*M[offset] + P[i]
//
// where M is the place-value array.
func (k *Kernel) Prefixes(dev *gpu.Device, s dna.Seq, out []kv.Key) []kv.Key {
	n := len(s)
	if n > k.table.maxLen {
		panic("fingerprint: read longer than table maxLen")
	}
	out = out[:n]
	steps := 0
	for h := 0; h < 2; h++ {
		p := k.table.params[h]
		place := k.table.place[h]
		cur, next := k.cur[h][:n], k.next[h][:n]
		// Each thread encodes its base (array E in the paper).
		for i, c := range s {
			cur[i] = encode(c) % p.Prime
		}
		// Iterative doubling with a barrier between steps.
		for offset := 1; offset < n; offset *= 2 {
			steps++
			m := place[offset]
			copy(next[:offset], cur[:offset])
			for i := offset; i < n; i++ {
				next[i] = addmod(mulmod(cur[i-offset], m, p.Prime), cur[i], p.Prime)
			}
			cur, next = next, cur
		}
		for i := 0; i < n; i++ {
			if h == 0 {
				out[i].Hi = cur[i]
			} else {
				out[i].Lo = cur[i]
			}
		}
	}
	// Each step touches every thread's element once (read + write).
	dev.ChargeKernel(int64(steps)*int64(n)*16, int64(steps)*int64(n))
	return out
}

// Suffixes fills out[i] with the fingerprint of s[i:] for every i, derived
// from the prefix fingerprints as in Fig. 6. prefixes must be the output
// of Prefixes for the same read. out must have len(s) capacity.
func (k *Kernel) Suffixes(dev *gpu.Device, prefixes []kv.Key, out []kv.Key) []kv.Key {
	n := len(prefixes)
	out = out[:n]
	for h := 0; h < 2; h++ {
		p := k.table.params[h]
		place := k.table.place[h]
		whole := componentOf(prefixes[n-1], h)
		for i := 0; i < n; i++ {
			var v uint64
			if i == 0 {
				v = whole
			} else {
				v = submod(whole, mulmod(componentOf(prefixes[i-1], h), place[n-i], p.Prime), p.Prime)
			}
			if h == 0 {
				out[i].Hi = v
			} else {
				out[i].Lo = v
			}
		}
	}
	dev.ChargeKernel(int64(n)*2*16, int64(n)*2)
	return out
}

func componentOf(key kv.Key, h int) uint64 {
	if h == 0 {
		return key.Hi
	}
	return key.Lo
}
