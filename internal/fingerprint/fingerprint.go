// Package fingerprint implements LaSAGNA's Rabin-Karp fingerprints and the
// data-parallel kernels of the map phase (Section III-A).
//
// Each fingerprint is 128 bits wide: two independent rolling hashes with
// different radixes and prime moduli, exactly as Section IV-B specifies,
// because a single hash yields false-positive overlap edges on
// high-coverage data. Prefix fingerprints of a read are computed with a
// Hillis-Steele inclusive scan (Fig. 5): starting from the per-base
// encodings, each step combines an element with the element `offset`
// positions to its left using precomputed place values, doubling the
// offset until it exceeds the read length. Suffix fingerprints are then
// derived arithmetically from the prefix fingerprints and place values
// (Fig. 6) without rescanning the read:
//
//	S[i] = (P[n-1] - P[i-1]*sigma^(n-i)) mod q
//
// Both moduli are large primes; base codes are offset by one so that the
// all-A prefix family does not collapse to a single fingerprint value.
//
// # Hot-path arithmetic
//
// The scan kernels run once per base per doubling step for every read in
// the dataset, so the modular multiply is the single hottest operation in
// the map phase. Both primes were chosen (by the paper, conveniently) to
// admit division-free reduction, and the kernels exploit that instead of
// the generic 128/64 hardware divide:
//
//   - PrimeA = 2^61-1 is Mersenne: 2^64 ≡ 8 and 2^61 ≡ 1, so a 128-bit
//     product folds into the 61-bit residue with shifts and adds
//     (mulmodA).
//   - PrimeB = 2^64-59: 2^64 ≡ 59, so the high product word folds in via
//     one extra 64x64 multiply by 59 (mulmodB).
//
// The generic division-based mulmod is kept as the reference the tests
// compare against. Base digits are 1..4, strictly below both primes, so
// the per-base encode needs no reduction at all.
package fingerprint

import (
	"math/bits"

	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/kv"
)

// Params defines one rolling hash: a radix (a small prime larger than the
// alphabet size, per Section III-A) and a large prime modulus.
type Params struct {
	Radix uint64
	Prime uint64
}

// The two hash components of the 128-bit fingerprint. PrimeA is the
// Mersenne prime 2^61-1; PrimeB is the largest prime below 2^64.
var (
	ParamsA = Params{Radix: 5, Prime: 2305843009213693951}
	ParamsB = Params{Radix: 7, Prime: 18446744073709551557}
)

// KeySpaceHi is the size of the value space of a fingerprint's high
// component (kv.Key.Hi is the first hash modulo ParamsA.Prime). Range
// partitioning of the fingerprint space divides this interval.
const KeySpaceHi = 2305843009213693951

const (
	mersenne61 = uint64(1)<<61 - 1    // ParamsA.Prime
	primeB     = 18446744073709551557 // ParamsB.Prime = 2^64 - 59
	primeBFold = 59                   // 2^64 mod primeB
)

// mulmod returns a*b mod m using a 128-bit intermediate product and a
// hardware divide. It is the generic reference path: the kernels use the
// shift-free reductions below, which the tests pin against this one.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// mulmodA returns a*b mod 2^61-1 for a,b < 2^61-1 without dividing.
// With p = 2^61-1, 2^64 ≡ 8 and 2^61 ≡ 1 (mod p), so the 128-bit product
// hi·2^64 + lo folds to hi·8 + (lo>>61) + (lo&p). hi < 2^58, so
// hi<<3 | lo>>61 is exact and below 2^61; one conditional subtract
// finishes the reduction.
func mulmodA(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	t := (hi<<3 | lo>>61) + (lo & mersenne61)
	if t >= mersenne61 {
		t -= mersenne61
	}
	return t
}

// mulmodB returns a*b mod 2^64-59 for a,b < 2^64-59 without dividing.
// With p = 2^64-59, 2^64 ≡ 59 (mod p): the product hi·2^64 + lo folds to
// hi·59 + lo, and hi·59 (itself up to 2^70) folds once more through its
// own high word, which is at most 58 — so the second fold adds at most
// 59·59 and two conditional fixups complete the reduction.
func mulmodB(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	h2, l2 := bits.Mul64(hi, primeBFold)
	s, c := bits.Add64(lo, l2, 0)
	t, c2 := bits.Add64(s, (h2+c)*primeBFold, 0)
	if c2 != 0 {
		t += primeBFold
	} else if t >= primeB {
		t -= primeB
	}
	return t
}

// addmod returns a+b mod m for a,b < m.
func addmod(a, b, m uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 || s >= m {
		s -= m
	}
	return s
}

// submod returns a-b mod m for a,b < m.
func submod(a, b, m uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + (m - b)
}

// encode maps a 2-bit base code to its hash digit. The +1 keeps prefixes
// of different lengths from colliding when the leading bases encode to
// zero. Digits are 1..4, below both primes, so no reduction is needed.
func encode(code byte) uint64 { return uint64(code) + 1 }

// Table holds the precomputed place values M[i] = radix^i mod prime for
// both hash components, computed once per run and reused by every kernel
// launch (the paper precomputes M before launching the map kernels).
type Table struct {
	params [2]Params
	place  [2][]uint64 // place[h][i] = radix_h^i mod prime_h
	maxLen int
}

// NewTable precomputes place values for reads up to maxLen bases.
func NewTable(maxLen int) *Table {
	t := &Table{params: [2]Params{ParamsA, ParamsB}, maxLen: maxLen}
	for h := 0; h < 2; h++ {
		p := t.params[h]
		place := make([]uint64, maxLen+1)
		place[0] = 1 % p.Prime
		for i := 1; i <= maxLen; i++ {
			place[i] = mulmod(place[i-1], p.Radix, p.Prime)
		}
		t.place[h] = place
	}
	return t
}

// MaxLen returns the longest read length the table supports.
func (t *Table) MaxLen() int { return t.maxLen }

// Fingerprint computes the 128-bit fingerprint of an entire sequence with
// a sequential Horner evaluation. It is the reference implementation that
// the scan kernels are tested against, and is also used by substrates that
// hash one string at a time.
func (t *Table) Fingerprint(s dna.Seq) kv.Key {
	// Component A: acc < 2^61-1, so acc*5 + digit fits in 64 bits and
	// folds shift-free (2^61 ≡ 1 mod p).
	var a uint64
	for _, c := range s {
		v := a*5 + encode(c)
		a = (v & mersenne61) + (v >> 61)
		if a >= mersenne61 {
			a -= mersenne61
		}
	}
	// Component B: acc*7 overflows 64 bits, so fold through mulmodB. The
	// digit add cannot carry (acc ≤ p-1 = 2^64-60, digit ≤ 4).
	var b uint64
	for _, c := range s {
		b = mulmodB(b, 7) + encode(c)
		if b >= primeB {
			b -= primeB
		}
	}
	return kv.Key{Hi: a, Lo: b}
}

// Kernel computes prefix and suffix fingerprints for one read at a time
// using the Hillis-Steele scan. A Kernel owns scratch buffers sized to the
// table's maximum read length and is not safe for concurrent use: create
// one Kernel per worker goroutine (one per simulated thread block).
type Kernel struct {
	table *Table
	cur   [2][]uint64 // scan double-buffer, current step
	next  [2][]uint64 // scan double-buffer, next step
}

// NewKernel returns a kernel bound to the given place-value table.
func NewKernel(t *Table) *Kernel {
	k := &Kernel{table: t}
	for h := 0; h < 2; h++ {
		k.cur[h] = make([]uint64, t.maxLen)
		k.next[h] = make([]uint64, t.maxLen)
	}
	return k
}

// sizedKeys returns out resized to n, allocating only when out (nil or
// short) cannot hold n keys. This is the out-slice contract of every
// kernel entry point: the result is out[:n] when cap(out) >= n, a fresh
// slice otherwise, and the contents are fully overwritten either way.
func sizedKeys(out []kv.Key, n int) []kv.Key {
	if cap(out) < n {
		return make([]kv.Key, n)
	}
	return out[:n]
}

// scanStepA is one Hillis-Steele doubling step of the PrimeA component:
// next[i] = cur[i-offset]*m + cur[i] mod 2^61-1 for i in [offset, n).
func scanStepA(next, cur []uint64, offset int, m uint64) {
	for i := offset; i < len(cur); i++ {
		hi, lo := bits.Mul64(cur[i-offset], m)
		t := (hi<<3 | lo>>61) + (lo & mersenne61)
		if t >= mersenne61 {
			t -= mersenne61
		}
		t += cur[i] // both < 2^61: no overflow
		if t >= mersenne61 {
			t -= mersenne61
		}
		next[i] = t
	}
}

// scanStepB is the same step for the PrimeB component, with the 2^64-59
// fold and a carry-aware add.
func scanStepB(next, cur []uint64, offset int, m uint64) {
	for i := offset; i < len(cur); i++ {
		v := mulmodB(cur[i-offset], m)
		s, carry := bits.Add64(v, cur[i], 0)
		if carry != 0 {
			s += primeBFold
		} else if s >= primeB {
			s -= primeB
		}
		next[i] = s
	}
}

// scanComponent runs the full doubling scan for hash component h over s,
// leaving the prefix values in the returned slice (one of the kernel's
// double buffers). It returns the number of doubling steps executed.
func (k *Kernel) scanComponent(h int, s dna.Seq) ([]uint64, int) {
	n := len(s)
	place := k.table.place[h]
	cur, next := k.cur[h][:n], k.next[h][:n]
	// Each thread encodes its base (array E in the paper). Digits are
	// 1..4 < prime, so no reduction.
	for i, c := range s {
		cur[i] = encode(c)
	}
	steps := 0
	// Iterative doubling with a barrier between steps.
	for offset := 1; offset < n; offset *= 2 {
		steps++
		m := place[offset]
		copy(next[:offset], cur[:offset])
		if h == 0 {
			scanStepA(next, cur, offset, m)
		} else {
			scanStepB(next, cur, offset, m)
		}
		cur, next = next, cur
	}
	return cur, steps
}

// prefixScan fills out with the prefix fingerprints of s and returns the
// scan's step count (for the caller to charge).
func (k *Kernel) prefixScan(s dna.Seq, out []kv.Key) ([]kv.Key, int) {
	n := len(s)
	if n > k.table.maxLen {
		panic("fingerprint: read longer than table maxLen")
	}
	out = sizedKeys(out, n)
	a, steps := k.scanComponent(0, s)
	for i, v := range a {
		out[i].Hi = v
	}
	b, stepsB := k.scanComponent(1, s)
	for i, v := range b {
		out[i].Lo = v
	}
	return out, steps + stepsB
}

// suffixDerive fills out with the suffix fingerprints derived from the
// prefix fingerprints (Fig. 6), without charging.
func (k *Kernel) suffixDerive(prefixes []kv.Key, out []kv.Key) []kv.Key {
	n := len(prefixes)
	out = sizedKeys(out, n)
	placeA, placeB := k.table.place[0], k.table.place[1]
	wholeA := prefixes[n-1].Hi
	wholeB := prefixes[n-1].Lo
	out[0].Hi = wholeA
	out[0].Lo = wholeB
	for i := 1; i < n; i++ {
		out[i].Hi = submod(wholeA, mulmodA(prefixes[i-1].Hi, placeA[n-i]), mersenne61)
		out[i].Lo = submod(wholeB, mulmodB(prefixes[i-1].Lo, placeB[n-i]), primeB)
	}
	return out
}

// Prefixes fills out[i] with the fingerprint of s[0:i+1] for every i,
// using the Hillis-Steele scan of Fig. 5. When cap(out) >= len(s) the
// result aliases out; a nil or shorter slice is grown. The filled prefix
// is returned.
//
// Each doubling step reads the previous step's values and writes fresh
// ones (double buffering), which is the lock-step barrier semantics of a
// CUDA thread block: thread i computes
//
//	P[i] = P[i-offset]*M[offset] + P[i]
//
// where M is the place-value array.
func (k *Kernel) Prefixes(dev *gpu.Device, s dna.Seq, out []kv.Key) []kv.Key {
	out, steps := k.prefixScan(s, out)
	n := len(s)
	// Each step touches every thread's element once (read + write).
	dev.ChargeKernel(int64(steps)*int64(n)*16, int64(steps)*int64(n))
	return out
}

// Suffixes fills out[i] with the fingerprint of s[i:] for every i, derived
// from the prefix fingerprints as in Fig. 6. prefixes must be the output
// of Prefixes for the same read. When cap(out) >= len(prefixes) the
// result aliases out; a nil or shorter slice is grown.
func (k *Kernel) Suffixes(dev *gpu.Device, prefixes []kv.Key, out []kv.Key) []kv.Key {
	out = k.suffixDerive(prefixes, out)
	n := len(prefixes)
	dev.ChargeKernel(int64(n)*2*16, int64(n)*2)
	return out
}

// ScanRead computes both the prefix and the suffix fingerprints of one
// read with a single combined device charge, amortizing the metering of
// the per-read kernel pair in the map phase's inner loop. The charged
// totals are exactly the sum of a Prefixes call and a Suffixes call, so
// modeled counters are identical either way; only the number of meter
// updates shrinks. The out-slice contract matches Prefixes/Suffixes.
func (k *Kernel) ScanRead(dev *gpu.Device, s dna.Seq, pout, sout []kv.Key) (pf, sf []kv.Key) {
	pf, steps := k.prefixScan(s, pout)
	sf = k.suffixDerive(pf, sout)
	n := int64(len(s))
	dev.ChargeKernel(int64(steps)*n*16+n*2*16, int64(steps)*n+n*2)
	return pf, sf
}

func componentOf(key kv.Key, h int) uint64 {
	if h == 0 {
		return key.Hi
	}
	return key.Lo
}
