package fingerprint

import (
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/dna"
	"repro/internal/gpu"
	"repro/internal/kv"
)

// TestFastMulmodMatchesGeneric pins the shift-free reductions against the
// generic division-based mulmod across edge cases and random operands.
func TestFastMulmodMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edgeA := []uint64{0, 1, 2, 4, 5, mersenne61 - 1, mersenne61 / 2, 1 << 60}
	edgeB := []uint64{0, 1, 2, 7, 59, primeB - 1, primeB / 2, 1 << 63}
	for i := 0; i < 100000; i++ {
		var a, b uint64
		if i < len(edgeA)*len(edgeA) {
			a, b = edgeA[i/len(edgeA)], edgeA[i%len(edgeA)]
		} else {
			a, b = rng.Uint64()%mersenne61, rng.Uint64()%mersenne61
		}
		if got, want := mulmodA(a, b), mulmod(a, b, mersenne61); got != want {
			t.Fatalf("mulmodA(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
	for i := 0; i < 100000; i++ {
		var a, b uint64
		if i < len(edgeB)*len(edgeB) {
			a, b = edgeB[i/len(edgeB)], edgeB[i%len(edgeB)]
		} else {
			a, b = rng.Uint64()%primeB, rng.Uint64()%primeB
		}
		if got, want := mulmodB(a, b), mulmod(a, b, primeB); got != want {
			t.Fatalf("mulmodB(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
}

func randomRead(rng *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

// TestOutSliceContract pins the out-slice behavior of every kernel entry
// point: nil, shorter-than-needed, exact-size, and oversized out slices
// all yield the same correct fingerprints; exact-size and oversized
// slices are reused in place.
func TestOutSliceContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	table := NewTable(64)
	s := randomRead(rng, 48)
	n := len(s)
	dev := gpu.NewDevice(gpu.K40, nil)

	kernels := map[string]interface {
		Prefixes(dev *gpu.Device, s dna.Seq, out []kv.Key) []kv.Key
		Suffixes(dev *gpu.Device, prefixes []kv.Key, out []kv.Key) []kv.Key
	}{
		"scan":  NewKernel(table),
		"naive": NewNaiveKernel(table),
	}
	for name, kern := range kernels {
		want := kern.Prefixes(dev, s, nil)
		if len(want) != n {
			t.Fatalf("%s: nil out: got len %d, want %d", name, len(want), n)
		}
		wantSfx := kern.Suffixes(dev, want, nil)

		cases := map[string][]kv.Key{
			"nil":       nil,
			"short":     make([]kv.Key, n/2),
			"exact":     make([]kv.Key, n),
			"oversized": make([]kv.Key, 2*n),
		}
		for cname, out := range cases {
			pf := kern.Prefixes(dev, s, out)
			if len(pf) != n {
				t.Fatalf("%s/%s: Prefixes len = %d, want %d", name, cname, len(pf), n)
			}
			for i := range pf {
				if pf[i] != want[i] {
					t.Fatalf("%s/%s: Prefixes[%d] = %v, want %v", name, cname, i, pf[i], want[i])
				}
			}
			if cap(out) >= n && &pf[0] != &out[:1][0] {
				t.Fatalf("%s/%s: Prefixes did not reuse caller's slice", name, cname)
			}
			sf := kern.Suffixes(dev, pf, out2Copy(cases[cname]))
			if len(sf) != n {
				t.Fatalf("%s/%s: Suffixes len = %d, want %d", name, cname, len(sf), n)
			}
			for i := range sf {
				if sf[i] != wantSfx[i] {
					t.Fatalf("%s/%s: Suffixes[%d] = %v, want %v", name, cname, i, sf[i], wantSfx[i])
				}
			}
		}
	}
}

// out2Copy gives Suffixes its own out slice with the same shape so the
// prefix input is never aliased.
func out2Copy(out []kv.Key) []kv.Key {
	if out == nil {
		return nil
	}
	return make([]kv.Key, len(out))
}

// TestScanReadMatchesSeparateCalls pins the batched entry point: same
// fingerprints, and — for the scan kernel — identical metered totals to a
// Prefixes call followed by a Suffixes call, in one charge.
func TestScanReadMatchesSeparateCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	table := NewTable(80)
	for _, n := range []int{1, 2, 3, 17, 80} {
		s := randomRead(rng, n)

		mSep := costmodel.NewMeter()
		devSep := gpu.NewDevice(gpu.K40, mSep)
		kSep := NewKernel(table)
		pf := kSep.Prefixes(devSep, s, nil)
		sf := kSep.Suffixes(devSep, pf, nil)

		mBat := costmodel.NewMeter()
		devBat := gpu.NewDevice(gpu.K40, mBat)
		kBat := NewKernel(table)
		pf2, sf2 := kBat.ScanRead(devBat, s, nil, nil)

		for i := range pf {
			if pf[i] != pf2[i] || sf[i] != sf2[i] {
				t.Fatalf("n=%d: ScanRead fingerprints diverge at %d", n, i)
			}
		}
		sep, bat := mSep.Snapshot(), mBat.Snapshot()
		if sep != bat {
			t.Fatalf("n=%d: ScanRead meter %+v, want %+v", n, bat, sep)
		}
	}
}

// TestScanKernelAllocFree pins the hot loop's zero-allocation property:
// after warmup, a prefix+suffix scan of one read allocates nothing.
func TestScanKernelAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	table := NewTable(100)
	kern := NewKernel(table)
	dev := gpu.NewDevice(gpu.K40, nil)
	s := randomRead(rng, 100)
	pf := make([]kv.Key, 100)
	sf := make([]kv.Key, 100)
	allocs := testing.AllocsPerRun(50, func() {
		kern.ScanRead(dev, s, pf, sf)
	})
	if allocs != 0 {
		t.Fatalf("ScanRead allocates %.1f times per read, want 0", allocs)
	}
}
