package fingerprint

import (
	"math/rand"
	"testing"

	"repro/internal/kv"
)

func TestNaiveKernelMatchesScanKernel(t *testing.T) {
	table := NewTable(200)
	scan := NewKernel(table)
	naive := NewNaiveKernel(table)
	dev := testDevice()
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 17, 101, 200} {
		s := randomSeq(rng, n)
		wantP := scan.Prefixes(dev, s, make([]kv.Key, n))
		wantS := scan.Suffixes(dev, wantP, make([]kv.Key, n))
		gotP := naive.Prefixes(dev, s, make([]kv.Key, n))
		gotS := naive.Suffixes(dev, gotP, make([]kv.Key, n))
		for i := 0; i < n; i++ {
			if gotP[i] != wantP[i] {
				t.Fatalf("n=%d: naive prefix %d differs", n, i)
			}
			if gotS[i] != wantS[i] {
				t.Fatalf("n=%d: naive suffix %d differs", n, i)
			}
		}
	}
}

func TestNaiveKernelCostsMoreModeledMemory(t *testing.T) {
	// The ablation of Section III-A: the per-read-thread kernel moves far
	// more modeled device memory (uncoalesced) than the block-per-read
	// Hillis-Steele scan, despite doing less arithmetic.
	table := NewTable(128)
	s := randomSeq(rand.New(rand.NewSource(10)), 128)

	devScan := testDevice()
	scan := NewKernel(table)
	pf := scan.Prefixes(devScan, s, make([]kv.Key, 128))
	scan.Suffixes(devScan, pf, make([]kv.Key, 128))
	scanBytes := devScan.Meter().Snapshot().DeviceMemBytes

	devNaive := testDevice()
	naive := NewNaiveKernel(table)
	pf = naive.Prefixes(devNaive, s, make([]kv.Key, 128))
	naive.Suffixes(devNaive, pf, make([]kv.Key, 128))
	naiveBytes := devNaive.Meter().Snapshot().DeviceMemBytes

	if naiveBytes <= 2*scanBytes {
		t.Errorf("naive kernel modeled bytes (%d) should far exceed scan kernel (%d)",
			naiveBytes, scanBytes)
	}
}

func TestNaiveKernelPanicsBeyondMaxLen(t *testing.T) {
	table := NewTable(4)
	k := NewNaiveKernel(table)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	k.Prefixes(testDevice(), randomSeq(rand.New(rand.NewSource(1)), 5), make([]kv.Key, 5))
}

func BenchmarkAblationMapKernel(b *testing.B) {
	// Wall-clock comparison of the two kernel formulations on the host;
	// the modeled-memory comparison is what decides on a GPU (see
	// TestNaiveKernelCostsMoreModeledMemory).
	table := NewTable(101)
	s := randomSeq(rand.New(rand.NewSource(11)), 101)
	dev := testDevice()
	out := make([]kv.Key, 101)
	sOut := make([]kv.Key, 101)
	b.Run("hillis-steele", func(b *testing.B) {
		k := NewKernel(table)
		for i := 0; i < b.N; i++ {
			p := k.Prefixes(dev, s, out)
			k.Suffixes(dev, p, sOut)
		}
	})
	b.Run("naive-per-read", func(b *testing.B) {
		k := NewNaiveKernel(table)
		for i := 0; i < b.N; i++ {
			p := k.Prefixes(dev, s, out)
			k.Suffixes(dev, p, sOut)
		}
	})
}
