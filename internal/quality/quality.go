// Package quality evaluates an assembly against the reference genome it
// was simulated from: the reproduction's stand-in for the GAGE-style
// assembly evaluation the paper's datasets come from.
//
// With error-free reads and exact overlaps, a correct greedy assembly
// yields contigs that are exact substrings of the reference (in either
// orientation); the report counts them, measures how much of the genome
// they cover, and carries the usual contiguity statistics.
package quality

import (
	"fmt"
	"strings"

	"repro/internal/contig"
	"repro/internal/dna"
)

// Report summarizes assembly quality against a reference.
type Report struct {
	contig.Stats
	// ExactContigs counts contigs that align to the reference exactly
	// (forward or reverse complement).
	ExactContigs int
	// MisassembledContigs counts contigs with no exact alignment.
	MisassembledContigs int
	// GenomeLen is the reference length.
	GenomeLen int
	// CoveredBases counts reference positions covered by at least one
	// exactly-aligned contig.
	CoveredBases int
	// LargestAlignment is the longest exactly-aligned contig.
	LargestAlignment int
}

// CoverageFraction is the fraction of the reference covered by exact
// alignments.
func (r Report) CoverageFraction() float64 {
	if r.GenomeLen == 0 {
		return 0
	}
	return float64(r.CoveredBases) / float64(r.GenomeLen)
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%s exact=%d/%d coverage=%.1f%% largestAlign=%d",
		r.Stats.String(), r.ExactContigs, r.NumContigs,
		100*r.CoverageFraction(), r.LargestAlignment)
}

// Evaluate aligns every contig against the genome by exact substring
// search on both strands and reports coverage. Contigs shorter than
// minLen are still counted in the stats but skipped for alignment
// bookkeeping when minLen > 0.
func Evaluate(genome dna.Seq, contigs []dna.Seq) Report {
	rep := Report{Stats: contig.Summarize(contigs), GenomeLen: len(genome)}
	fwd := genome.String()
	covered := make([]bool, len(genome))
	for _, c := range contigs {
		pos := findForwardSpan(fwd, c)
		if pos < 0 {
			rep.MisassembledContigs++
			continue
		}
		rep.ExactContigs++
		if len(c) > rep.LargestAlignment {
			rep.LargestAlignment = len(c)
		}
		for i := pos; i < pos+len(c); i++ {
			covered[i] = true
		}
	}
	for _, c := range covered {
		if c {
			rep.CoveredBases++
		}
	}
	return rep
}

// findForwardSpan returns the forward-genome start position of the region
// the contig covers — directly for a forward-strand alignment, or via the
// reverse-complemented contig for a reverse-strand one (the RC'd contig's
// match location in forward coordinates IS the covered span). Returns -1
// if the contig aligns nowhere exactly. Searching with the RC'd contig
// avoids materializing a genome-sized reverse-complement string.
func findForwardSpan(fwd string, c dna.Seq) int {
	if pos := strings.Index(fwd, c.String()); pos >= 0 {
		return pos
	}
	return strings.Index(fwd, c.ReverseComplement().String())
}
