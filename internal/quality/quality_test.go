package quality

import (
	"strings"
	"testing"

	"repro/internal/dna"
)

func TestEvaluateExactForwardContigs(t *testing.T) {
	genome := dna.MustParseSeq("ACGTTGCAGGATCCTAGGCAATTGCACGTA")
	contigs := []dna.Seq{
		genome[0:12].Clone(),
		genome[10:30].Clone(),
	}
	rep := Evaluate(genome, contigs)
	if rep.ExactContigs != 2 || rep.MisassembledContigs != 0 {
		t.Fatalf("exact=%d mis=%d", rep.ExactContigs, rep.MisassembledContigs)
	}
	if rep.CoveredBases != 30 {
		t.Errorf("covered = %d, want 30 (full overlap coverage)", rep.CoveredBases)
	}
	if rep.CoverageFraction() != 1.0 {
		t.Errorf("coverage fraction = %v", rep.CoverageFraction())
	}
	if rep.LargestAlignment != 20 {
		t.Errorf("largest alignment = %d", rep.LargestAlignment)
	}
}

func TestEvaluateReverseStrandCoverage(t *testing.T) {
	genome := dna.MustParseSeq("ACGTTGCAGGATCCTAGGCA")
	// A contig equal to the RC of genome[5:15] aligns on the reverse
	// strand and must cover forward positions 5..15.
	rc := genome[5:15].ReverseComplement()
	rep := Evaluate(genome, []dna.Seq{rc})
	if rep.ExactContigs != 1 {
		t.Fatalf("exact = %d", rep.ExactContigs)
	}
	if rep.CoveredBases != 10 {
		t.Errorf("covered = %d, want 10", rep.CoveredBases)
	}
}

func TestEvaluateMisassembly(t *testing.T) {
	genome := dna.MustParseSeq("ACGTACGTACGTACGTACGT")
	bogus := dna.MustParseSeq("GGGGGGGGGG")
	rep := Evaluate(genome, []dna.Seq{genome[0:8].Clone(), bogus})
	if rep.ExactContigs != 1 || rep.MisassembledContigs != 1 {
		t.Fatalf("exact=%d mis=%d", rep.ExactContigs, rep.MisassembledContigs)
	}
	if rep.CoveredBases != 8 {
		t.Errorf("covered = %d", rep.CoveredBases)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	rep := Evaluate(dna.MustParseSeq("ACGT"), nil)
	if rep.NumContigs != 0 || rep.CoveredBases != 0 || rep.CoverageFraction() != 0 {
		t.Errorf("empty report = %+v", rep)
	}
	repNoGenome := Evaluate(nil, nil)
	if repNoGenome.CoverageFraction() != 0 {
		t.Error("zero-length genome coverage should be 0")
	}
}

func TestReportString(t *testing.T) {
	genome := dna.MustParseSeq("ACGTACGTAC")
	rep := Evaluate(genome, []dna.Seq{genome[0:5].Clone()})
	s := rep.String()
	for _, want := range []string{"exact=1/1", "coverage=50.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestPalindromeAmbiguity(t *testing.T) {
	// A contig present on both strands counts as forward coverage.
	genome := dna.MustParseSeq("AATTGGCCAATT") // contains AATT twice; RC(AATT)=AATT
	rep := Evaluate(genome, []dna.Seq{dna.MustParseSeq("AATT")})
	if rep.ExactContigs != 1 || rep.CoveredBases != 4 {
		t.Errorf("report = %+v", rep)
	}
}
