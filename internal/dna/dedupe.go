package dna

// Deduplicate returns a read set with duplicate reads removed, and the
// number of reads dropped. Two reads are duplicates when their canonical
// forms match, where the canonical form is the lexicographically smaller
// of the read and its reverse complement — a read equal to another
// read's reverse complement contributes exactly the same vertex pair to
// the string graph and is therefore redundant.
//
// High-coverage error-free data is full of exact duplicates, and under
// the paper's greedy rule a duplicate pair forms a 2-cycle (A->B and
// B->A are both accepted) that removes both reads from longer chains.
// The paper does not deduplicate; this is offered as an optional
// preprocessing step (core.Config.DedupeReads).
func Deduplicate(rs *ReadSet) (*ReadSet, int) {
	out := NewReadSet(rs.NumReads(), int(rs.TotalBases()))
	seen := make(map[string]struct{}, rs.NumReads())
	removed := 0
	rcBuf := make(Seq, rs.MaxLen())
	for i := 0; i < rs.NumReads(); i++ {
		r := rs.Read(uint32(i))
		rc := rcBuf[:len(r)]
		r.ReverseComplementInto(rc)
		key := canonicalKey(r, rc)
		if _, dup := seen[key]; dup {
			removed++
			continue
		}
		seen[key] = struct{}{}
		out.Append(r)
	}
	return out, removed
}

// canonicalKey returns the smaller of the two orientations as a string
// key (byte-wise comparison over base codes is lexicographic).
func canonicalKey(fwd, rc Seq) string {
	for i := range fwd {
		if fwd[i] != rc[i] {
			if fwd[i] < rc[i] {
				return string(fwd)
			}
			return string(rc)
		}
	}
	return string(fwd)
}
