// Package dna provides nucleotide encodings, sequences, and read sets for
// the LaSAGNA assembly pipeline.
//
// Bases are encoded as 2-bit codes (A=0, C=1, G=2, T=3). A read set keeps
// its reads as one contiguous code buffer plus an offset table, which is
// how batches of reads are laid out before being shipped to the (simulated)
// device in the map phase.
//
// Every read r with identifier i contributes two string-graph vertices:
// the forward strand with vertex ID 2i and the Watson-Crick reverse
// complement with vertex ID 2i+1. The paper requires both because any
// overlap edge (u, v, l) implies the complementary edge (v', u', l).
package dna

import (
	"fmt"
	"strings"
)

// Alphabet is the number of distinct base codes.
const Alphabet = 4

// Base codes.
const (
	A byte = 0
	C byte = 1
	G byte = 2
	T byte = 3
)

var codeToLetter = [Alphabet]byte{'A', 'C', 'G', 'T'}

// letterToCode maps ASCII to base code; 0xFF marks an invalid letter.
var letterToCode [256]byte

func init() {
	for i := range letterToCode {
		letterToCode[i] = 0xFF
	}
	for code, letter := range codeToLetter {
		letterToCode[letter] = byte(code)
		letterToCode[letter+('a'-'A')] = byte(code)
	}
	// Ambiguous IUPAC codes collapse to A, matching the common assembler
	// convention of replacing N-runs before overlap detection.
	for _, amb := range []byte("NnRYSWKMBDHVryswkmbdhv") {
		letterToCode[amb] = A
	}
}

// CodeFor returns the 2-bit code for an ASCII base letter and whether the
// letter was a valid (possibly ambiguous) nucleotide character.
func CodeFor(letter byte) (byte, bool) {
	c := letterToCode[letter]
	return c, c != 0xFF
}

// LetterFor returns the ASCII letter for a 2-bit base code.
func LetterFor(code byte) byte { return codeToLetter[code&3] }

// ComplementCode returns the Watson-Crick complement of a base code
// (A<->T, C<->G), which is simply 3-code in this encoding.
func ComplementCode(code byte) byte { return 3 - code }

// Seq is a nucleotide sequence stored one base code per byte.
type Seq []byte

// ParseSeq converts an ASCII string of bases into a Seq. It returns an
// error on characters that are not nucleotide letters.
func ParseSeq(s string) (Seq, error) {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		c, ok := CodeFor(s[i])
		if !ok {
			return nil, fmt.Errorf("dna: invalid base %q at position %d", s[i], i)
		}
		out[i] = c
	}
	return out, nil
}

// MustParseSeq is ParseSeq that panics on error; intended for tests and
// literals.
func MustParseSeq(s string) Seq {
	q, err := ParseSeq(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the sequence as ASCII base letters.
func (s Seq) String() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, c := range s {
		b.WriteByte(LetterFor(c))
	}
	return b.String()
}

// Clone returns an independent copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Complement returns the base-wise Watson-Crick complement without
// reversing.
func (s Seq) Complement() Seq {
	out := make(Seq, len(s))
	for i, c := range s {
		out[i] = ComplementCode(c)
	}
	return out
}

// ReverseComplement returns the reverse complement of s.
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, c := range s {
		out[len(s)-1-i] = ComplementCode(c)
	}
	return out
}

// ReverseComplementInto writes the reverse complement of s into dst, which
// must have the same length. It allows reuse of scratch buffers inside
// device kernels.
func (s Seq) ReverseComplementInto(dst Seq) {
	if len(dst) != len(s) {
		panic("dna: ReverseComplementInto length mismatch")
	}
	for i, c := range s {
		dst[len(s)-1-i] = ComplementCode(c)
	}
}

// Equal reports whether two sequences are identical.
func (s Seq) Equal(o Seq) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Vertex identifier conventions. A vertex names one strand of one read.

// ForwardVertex returns the vertex ID of read i's forward strand.
func ForwardVertex(readID uint32) uint32 { return readID << 1 }

// ComplementVertex returns the vertex naming the opposite strand of v.
func ComplementVertex(v uint32) uint32 { return v ^ 1 }

// ReadOfVertex returns the read ID that vertex v belongs to.
func ReadOfVertex(v uint32) uint32 { return v >> 1 }

// IsReverse reports whether v names a reverse-complement strand.
func IsReverse(v uint32) bool { return v&1 == 1 }

// ReadSet is an in-memory collection of reads laid out contiguously, the
// unit that the map phase streams to the device in batches.
type ReadSet struct {
	codes   []byte   // concatenated base codes of all reads
	offsets []uint32 // offsets[i] is the start of read i; len = NumReads+1
	maxLen  int
}

// NewReadSet returns an empty read set with capacity hints for the
// expected number of reads and total bases.
func NewReadSet(readsHint, basesHint int) *ReadSet {
	rs := &ReadSet{
		codes:   make([]byte, 0, basesHint),
		offsets: make([]uint32, 1, readsHint+1),
	}
	return rs
}

// Append adds a read and returns its read ID.
func (rs *ReadSet) Append(s Seq) uint32 {
	id := uint32(len(rs.offsets) - 1)
	rs.codes = append(rs.codes, s...)
	rs.offsets = append(rs.offsets, uint32(len(rs.codes)))
	if len(s) > rs.maxLen {
		rs.maxLen = len(s)
	}
	return id
}

// NumReads returns the number of reads.
func (rs *ReadSet) NumReads() int { return len(rs.offsets) - 1 }

// NumVertices returns the number of string-graph vertices (two per read).
func (rs *ReadSet) NumVertices() int { return 2 * rs.NumReads() }

// TotalBases returns the total base count across all reads.
func (rs *ReadSet) TotalBases() int64 { return int64(len(rs.codes)) }

// MaxLen returns the length of the longest read.
func (rs *ReadSet) MaxLen() int { return rs.maxLen }

// Len returns the length of read i.
func (rs *ReadSet) Len(i uint32) int {
	return int(rs.offsets[i+1] - rs.offsets[i])
}

// Read returns a view (not a copy) of read i's codes.
func (rs *ReadSet) Read(i uint32) Seq {
	return Seq(rs.codes[rs.offsets[i]:rs.offsets[i+1]])
}

// VertexSeq materializes the sequence named by vertex v: the read itself
// for forward vertices, its reverse complement for odd vertices.
func (rs *ReadSet) VertexSeq(v uint32) Seq {
	r := rs.Read(ReadOfVertex(v))
	if IsReverse(v) {
		return r.ReverseComplement()
	}
	return r.Clone()
}

// VertexLen returns the length of the sequence named by vertex v.
func (rs *ReadSet) VertexLen(v uint32) int { return rs.Len(ReadOfVertex(v)) }

// ApproxBytes estimates the host-memory footprint of the read set, used by
// the pipeline's peak-memory accounting.
func (rs *ReadSet) ApproxBytes() int64 {
	return int64(cap(rs.codes)) + 4*int64(cap(rs.offsets))
}
