package dna

// Packed is a 2-bit-per-base packed sequence. The pipeline keeps bulk read
// storage packed when host memory is the constrained resource (the paper's
// host-memory budgets assume 2-bit encoded bases), and unpacks into Seq
// views only for the batch currently being processed.
type Packed struct {
	words []uint64
	n     int
}

const basesPerWord = 32

// Pack converts a Seq into its packed representation.
func Pack(s Seq) Packed {
	p := Packed{
		words: make([]uint64, (len(s)+basesPerWord-1)/basesPerWord),
		n:     len(s),
	}
	for i, c := range s {
		p.words[i/basesPerWord] |= uint64(c&3) << uint((i%basesPerWord)*2)
	}
	return p
}

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// Get returns the base code at position i.
func (p Packed) Get(i int) byte {
	return byte(p.words[i/basesPerWord]>>uint((i%basesPerWord)*2)) & 3
}

// Unpack expands the packed sequence into a fresh Seq.
func (p Packed) Unpack() Seq {
	out := make(Seq, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = p.Get(i)
	}
	return out
}

// Bytes returns the in-memory size of the packed payload in bytes.
func (p Packed) Bytes() int64 { return 8 * int64(len(p.words)) }

// PackedReadSet stores many reads 2-bit packed with a shared offset table.
// It is the storage format used when a whole scaled dataset is held in
// host memory (e.g. by the contig phase, which streams reads a second
// time).
type PackedReadSet struct {
	words   []uint64
	starts  []int64 // base offsets; len = NumReads+1
	maxLen  int
	scratch Seq
}

// PackReadSet converts an unpacked read set.
func PackReadSet(rs *ReadSet) *PackedReadSet {
	p := &PackedReadSet{starts: make([]int64, 1, rs.NumReads()+1)}
	total := rs.TotalBases()
	p.words = make([]uint64, (total*2+63)/64)
	var base int64
	for i := 0; i < rs.NumReads(); i++ {
		r := rs.Read(uint32(i))
		for j, c := range r {
			pos := base + int64(j)
			p.words[pos/basesPerWord] |= uint64(c&3) << uint((pos%basesPerWord)*2)
		}
		base += int64(len(r))
		p.starts = append(p.starts, base)
		if len(r) > p.maxLen {
			p.maxLen = len(r)
		}
	}
	return p
}

// NumReads returns the number of reads.
func (p *PackedReadSet) NumReads() int { return len(p.starts) - 1 }

// Len returns the length of read i.
func (p *PackedReadSet) Len(i uint32) int {
	return int(p.starts[i+1] - p.starts[i])
}

// MaxLen returns the longest read length.
func (p *PackedReadSet) MaxLen() int { return p.maxLen }

// ReadInto unpacks read i into dst and returns the filled prefix of dst.
func (p *PackedReadSet) ReadInto(i uint32, dst Seq) Seq {
	start, end := p.starts[i], p.starts[i+1]
	n := int(end - start)
	dst = dst[:n]
	for j := 0; j < n; j++ {
		pos := start + int64(j)
		dst[j] = byte(p.words[pos/basesPerWord]>>uint((pos%basesPerWord)*2)) & 3
	}
	return dst
}

// Read unpacks read i into a fresh Seq.
func (p *PackedReadSet) Read(i uint32) Seq {
	return p.ReadInto(i, make(Seq, p.Len(i)))
}

// ApproxBytes estimates the host-memory footprint.
func (p *PackedReadSet) ApproxBytes() int64 {
	return 8*int64(cap(p.words)) + 8*int64(cap(p.starts))
}
