package dna

import (
	"math/rand"
	"testing"
)

func TestDeduplicateExact(t *testing.T) {
	rs := NewReadSet(4, 40)
	rs.Append(MustParseSeq("ACGTACGT"))
	rs.Append(MustParseSeq("ACGTACGT")) // exact duplicate
	rs.Append(MustParseSeq("GGGGCCCC"))
	out, removed := Deduplicate(rs)
	if removed != 1 || out.NumReads() != 2 {
		t.Fatalf("removed=%d reads=%d", removed, out.NumReads())
	}
	if out.Read(0).String() != "ACGTACGT" || out.Read(1).String() != "GGGGCCCC" {
		t.Error("wrong survivors")
	}
}

func TestDeduplicateReverseComplement(t *testing.T) {
	rs := NewReadSet(2, 20)
	a := MustParseSeq("ACGTTGCA")
	rs.Append(a)
	rs.Append(a.ReverseComplement()) // same vertex pair, opposite labels
	out, removed := Deduplicate(rs)
	if removed != 1 || out.NumReads() != 1 {
		t.Fatalf("removed=%d reads=%d", removed, out.NumReads())
	}
}

func TestDeduplicateKeepsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := NewReadSet(50, 2500)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		s := randomSeq(rng, 50)
		rc := s.ReverseComplement()
		key := s.String()
		if rc.String() < key {
			key = rc.String()
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		rs.Append(s)
	}
	out, removed := Deduplicate(rs)
	if removed != 0 || out.NumReads() != rs.NumReads() {
		t.Errorf("distinct set should survive intact: removed=%d", removed)
	}
}

func TestDeduplicateVariableLengths(t *testing.T) {
	rs := NewReadSet(3, 30)
	rs.Append(MustParseSeq("ACGT"))
	rs.Append(MustParseSeq("ACGTA")) // prefix-extended, not a duplicate
	rs.Append(MustParseSeq("ACGT"))
	out, removed := Deduplicate(rs)
	if removed != 1 || out.NumReads() != 2 {
		t.Fatalf("removed=%d reads=%d", removed, out.NumReads())
	}
}

func TestDeduplicatePalindrome(t *testing.T) {
	// A reverse-complement palindrome equals its own RC; it must be kept
	// once and only once.
	rs := NewReadSet(2, 16)
	p := MustParseSeq("ACGCGT") // RC = ACGCGT
	if !p.ReverseComplement().Equal(p) {
		t.Fatal("test sequence is not a palindrome")
	}
	rs.Append(p)
	rs.Append(p)
	out, removed := Deduplicate(rs)
	if removed != 1 || out.NumReads() != 1 {
		t.Fatalf("removed=%d reads=%d", removed, out.NumReads())
	}
}
