package dna

import (
	"bytes"
	"testing"
)

// FuzzPackedRoundTrip feeds arbitrary bytes through the 2-bit packed
// encoding: every input is masked into valid base codes, packed, and read
// back via Get, Unpack, and the PackedReadSet bulk storage. Any mismatch
// means the packed representation the pipeline's host-memory budgets
// assume is lossy.
func FuzzPackedRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{3}, 33))                 // spans a word boundary
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3}, 40))        // several words
	f.Add([]byte("ACGTacgt arbitrary raw input \x00")) // masked to codes
	f.Fuzz(func(t *testing.T, raw []byte) {
		seq := make(Seq, len(raw))
		for i, b := range raw {
			seq[i] = b & 3
		}

		p := Pack(seq)
		if p.Len() != len(seq) {
			t.Fatalf("Len = %d, want %d", p.Len(), len(seq))
		}
		for i := range seq {
			if got := p.Get(i); got != seq[i] {
				t.Fatalf("Get(%d) = %d, want %d", i, got, seq[i])
			}
		}
		if got := p.Unpack(); !got.Equal(seq) {
			t.Fatalf("Unpack mismatch: %v != %v", got, seq)
		}
		if p.Bytes() < int64(len(seq)+3)/4 {
			t.Fatalf("Bytes = %d, too small for %d bases", p.Bytes(), len(seq))
		}

		// Split the same bases into multiple reads and round-trip through
		// the bulk packed read set. The first byte picks the chunk size so
		// the fuzzer explores different read-boundary alignments.
		chunk := 1
		if len(raw) > 0 {
			chunk = int(raw[0])%7 + 1
		}
		rs := NewReadSet(4, len(seq))
		for off := 0; off < len(seq); off += chunk {
			end := off + chunk
			if end > len(seq) {
				end = len(seq)
			}
			rs.Append(seq[off:end])
		}
		if rs.NumReads() == 0 {
			return
		}
		prs := PackReadSet(rs)
		if prs.NumReads() != rs.NumReads() {
			t.Fatalf("NumReads = %d, want %d", prs.NumReads(), rs.NumReads())
		}
		if prs.MaxLen() != rs.MaxLen() {
			t.Fatalf("MaxLen = %d, want %d", prs.MaxLen(), rs.MaxLen())
		}
		buf := make(Seq, rs.MaxLen())
		for i := 0; i < rs.NumReads(); i++ {
			want := rs.Read(uint32(i))
			if prs.Len(uint32(i)) != len(want) {
				t.Fatalf("read %d: Len = %d, want %d", i, prs.Len(uint32(i)), len(want))
			}
			if got := prs.Read(uint32(i)); !got.Equal(want) {
				t.Fatalf("read %d: Read mismatch", i)
			}
			if got := prs.ReadInto(uint32(i), buf); !got.Equal(want) {
				t.Fatalf("read %d: ReadInto mismatch", i)
			}
		}
	})
}

// FuzzParseSeq round-trips sequence text: any string ParseSeq accepts must
// render back (String) to text that re-parses to identical codes, and the
// reverse complement must be an involution.
func FuzzParseSeq(f *testing.F) {
	f.Add("")
	f.Add("ACGT")
	f.Add("acgtACGT")
	f.Add("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT")
	f.Add("ACGTN") // invalid letter
	f.Add("ACG T") // embedded space
	f.Fuzz(func(t *testing.T, s string) {
		seq, err := ParseSeq(s)
		if err != nil {
			return // invalid input is fine; it must just not panic
		}
		if len(seq) != len(s) {
			t.Fatalf("parsed length %d, input length %d", len(seq), len(s))
		}
		again, err := ParseSeq(seq.String())
		if err != nil {
			t.Fatalf("canonical text failed to re-parse: %v", err)
		}
		if !again.Equal(seq) {
			t.Fatal("String/ParseSeq round trip changed the sequence")
		}
		if rc2 := seq.ReverseComplement().ReverseComplement(); !rc2.Equal(seq) {
			t.Fatal("double reverse complement is not the identity")
		}
	})
}
