package dna

// ReadSource is the read-access interface the pipeline consumes. The
// plain ReadSet (one byte per base) implements it with zero-copy views;
// PackedReadSource stores bases 2-bit packed — the encoding the paper's
// host-memory budgets assume — and unpacks per call.
type ReadSource interface {
	NumReads() int
	NumVertices() int
	TotalBases() int64
	MaxLen() int
	Len(i uint32) int
	// Read returns read i's codes. Callers must not retain the slice
	// across calls: packed sources may return freshly unpacked storage,
	// and future implementations may reuse buffers.
	Read(i uint32) Seq
	VertexLen(v uint32) int
	// VertexSeq materializes the strand named by v (forward read or its
	// reverse complement); always safe to retain.
	VertexSeq(v uint32) Seq
	// ApproxBytes estimates the resident host-memory footprint.
	ApproxBytes() int64
}

// Compile-time checks.
var (
	_ ReadSource = (*ReadSet)(nil)
	_ ReadSource = (*PackedReadSource)(nil)
)

// PackedReadSource adapts PackedReadSet to ReadSource: reads live 2-bit
// packed (a quarter of ReadSet's footprint), at the cost of unpacking on
// access. It is safe for concurrent use: every Read allocates.
type PackedReadSource struct {
	p *PackedReadSet
}

// PackSource converts a read set into its packed form.
func PackSource(rs *ReadSet) *PackedReadSource {
	return &PackedReadSource{p: PackReadSet(rs)}
}

// NumReads returns the number of reads.
func (s *PackedReadSource) NumReads() int { return s.p.NumReads() }

// NumVertices returns two vertices per read.
func (s *PackedReadSource) NumVertices() int { return 2 * s.p.NumReads() }

// TotalBases returns the total base count.
func (s *PackedReadSource) TotalBases() int64 {
	return s.p.starts[len(s.p.starts)-1]
}

// MaxLen returns the longest read length.
func (s *PackedReadSource) MaxLen() int { return s.p.MaxLen() }

// Len returns the length of read i.
func (s *PackedReadSource) Len(i uint32) int { return s.p.Len(i) }

// Read unpacks read i into fresh storage.
func (s *PackedReadSource) Read(i uint32) Seq { return s.p.Read(i) }

// VertexLen returns the length of the strand named by v.
func (s *PackedReadSource) VertexLen(v uint32) int { return s.p.Len(ReadOfVertex(v)) }

// VertexSeq materializes the strand named by v.
func (s *PackedReadSource) VertexSeq(v uint32) Seq {
	r := s.p.Read(ReadOfVertex(v))
	if IsReverse(v) {
		rc := make(Seq, len(r))
		r.ReverseComplementInto(rc)
		return rc
	}
	return r
}

// ApproxBytes estimates the packed footprint (~1/4 of the byte-per-base
// ReadSet).
func (s *PackedReadSource) ApproxBytes() int64 { return s.p.ApproxBytes() }
