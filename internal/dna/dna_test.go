package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSeq(rng *rand.Rand, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = byte(rng.Intn(Alphabet))
	}
	return s
}

func TestCodeLetterRoundTrip(t *testing.T) {
	for code := byte(0); code < Alphabet; code++ {
		letter := LetterFor(code)
		got, ok := CodeFor(letter)
		if !ok || got != code {
			t.Errorf("CodeFor(LetterFor(%d)) = %d, %v", code, got, ok)
		}
		lower := letter + ('a' - 'A')
		got, ok = CodeFor(lower)
		if !ok || got != code {
			t.Errorf("CodeFor(%q) = %d, %v; want %d", lower, got, ok, code)
		}
	}
}

func TestCodeForAmbiguousAndInvalid(t *testing.T) {
	if c, ok := CodeFor('N'); !ok || c != A {
		t.Errorf("CodeFor('N') = %d, %v; want A", c, ok)
	}
	for _, bad := range []byte{'X', 'Z', '!', ' ', '1', 0} {
		if _, ok := CodeFor(bad); ok {
			t.Errorf("CodeFor(%q) should be invalid", bad)
		}
	}
}

func TestParseSeqAndString(t *testing.T) {
	s, err := ParseSeq("GATACCAGTA")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "GATACCAGTA" {
		t.Errorf("round trip got %q", s.String())
	}
	if _, err := ParseSeq("GAT!C"); err == nil {
		t.Error("expected error for invalid base")
	}
}

func TestComplementCode(t *testing.T) {
	pairs := map[byte]byte{A: T, C: G, G: C, T: A}
	for in, want := range pairs {
		if got := ComplementCode(in); got != want {
			t.Errorf("ComplementCode(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestReverseComplementKnown(t *testing.T) {
	s := MustParseSeq("GATACCAGTA")
	want := "TACTGGTATC"
	if got := s.ReverseComplement().String(); got != want {
		t.Errorf("RC = %q, want %q", got, want)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := make(Seq, len(raw))
		for i, b := range raw {
			s[i] = b & 3
		}
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSeq(rng, 137)
	if !s.Complement().Complement().Equal(s) {
		t.Error("Complement is not an involution")
	}
}

func TestReverseComplementInto(t *testing.T) {
	s := MustParseSeq("ACGTT")
	dst := make(Seq, 5)
	s.ReverseComplementInto(dst)
	if dst.String() != "AACGT" {
		t.Errorf("got %q, want AACGT", dst.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	s.ReverseComplementInto(make(Seq, 3))
}

func TestVertexConventions(t *testing.T) {
	for _, id := range []uint32{0, 1, 2, 1000, 1 << 30} {
		fwd := ForwardVertex(id)
		rev := ComplementVertex(fwd)
		if fwd != 2*id || rev != 2*id+1 {
			t.Fatalf("vertices for read %d: %d,%d", id, fwd, rev)
		}
		if ReadOfVertex(fwd) != id || ReadOfVertex(rev) != id {
			t.Fatalf("ReadOfVertex broken for read %d", id)
		}
		if IsReverse(fwd) || !IsReverse(rev) {
			t.Fatalf("IsReverse broken for read %d", id)
		}
		if ComplementVertex(rev) != fwd {
			t.Fatalf("ComplementVertex not involutive for read %d", id)
		}
	}
}

func TestReadSetBasics(t *testing.T) {
	rs := NewReadSet(4, 40)
	a := MustParseSeq("ACGT")
	b := MustParseSeq("GGGCCCTTTA")
	idA := rs.Append(a)
	idB := rs.Append(b)
	if idA != 0 || idB != 1 {
		t.Fatalf("ids = %d,%d", idA, idB)
	}
	if rs.NumReads() != 2 || rs.NumVertices() != 4 {
		t.Fatalf("NumReads=%d NumVertices=%d", rs.NumReads(), rs.NumVertices())
	}
	if rs.TotalBases() != 14 || rs.MaxLen() != 10 {
		t.Fatalf("TotalBases=%d MaxLen=%d", rs.TotalBases(), rs.MaxLen())
	}
	if !rs.Read(0).Equal(a) || !rs.Read(1).Equal(b) {
		t.Error("Read returned wrong data")
	}
	if rs.Len(0) != 4 || rs.Len(1) != 10 {
		t.Error("Len wrong")
	}
}

func TestReadSetVertexSeq(t *testing.T) {
	rs := NewReadSet(1, 8)
	rs.Append(MustParseSeq("ACGTT"))
	if got := rs.VertexSeq(0).String(); got != "ACGTT" {
		t.Errorf("forward vertex seq = %q", got)
	}
	if got := rs.VertexSeq(1).String(); got != "AACGT" {
		t.Errorf("reverse vertex seq = %q", got)
	}
	if rs.VertexLen(0) != 5 || rs.VertexLen(1) != 5 {
		t.Error("VertexLen wrong")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		s := make(Seq, len(raw))
		for i, b := range raw {
			s[i] = b & 3
		}
		p := Pack(s)
		if p.Len() != len(s) {
			return false
		}
		return p.Unpack().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedGet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSeq(rng, 100)
	p := Pack(s)
	for i := range s {
		if p.Get(i) != s[i] {
			t.Fatalf("Get(%d) = %d, want %d", i, p.Get(i), s[i])
		}
	}
	if p.Bytes() != 8*int64((100+31)/32) {
		t.Errorf("Bytes = %d", p.Bytes())
	}
}

func TestPackedReadSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := NewReadSet(10, 1000)
	var want []Seq
	for i := 0; i < 10; i++ {
		s := randomSeq(rng, 50+rng.Intn(60))
		want = append(want, s)
		rs.Append(s)
	}
	p := PackReadSet(rs)
	if p.NumReads() != 10 {
		t.Fatalf("NumReads = %d", p.NumReads())
	}
	buf := make(Seq, p.MaxLen())
	for i, w := range want {
		if got := p.ReadInto(uint32(i), buf); !got.Equal(w) {
			t.Errorf("read %d mismatch", i)
		}
		if got := p.Read(uint32(i)); !got.Equal(w) {
			t.Errorf("Read %d mismatch", i)
		}
		if p.Len(uint32(i)) != len(w) {
			t.Errorf("Len(%d) = %d, want %d", i, p.Len(uint32(i)), len(w))
		}
	}
	if p.MaxLen() != rs.MaxLen() {
		t.Errorf("MaxLen %d != %d", p.MaxLen(), rs.MaxLen())
	}
}

func TestSeqCloneIndependent(t *testing.T) {
	s := MustParseSeq("ACGT")
	c := s.Clone()
	c[0] = T
	if s[0] != A {
		t.Error("Clone shares storage")
	}
}
