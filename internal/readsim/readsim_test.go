package readsim

import (
	"testing"

	"repro/internal/dna"
)

func TestGenomeDeterministic(t *testing.T) {
	p := GenomeParams{Length: 5000, RepeatLen: 100, RepeatCount: 3, Seed: 9}
	a := Genome(p)
	b := Genome(p)
	if !a.Equal(b) {
		t.Error("same params should generate identical genomes")
	}
	p.Seed = 10
	if Genome(p).Equal(a) {
		t.Error("different seeds should differ")
	}
	if len(a) != 5000 {
		t.Errorf("genome length = %d", len(a))
	}
}

func TestGenomePlantsRepeats(t *testing.T) {
	p := GenomeParams{Length: 10000, RepeatLen: 200, RepeatCount: 4, Seed: 3}
	g := Genome(p)
	// Count distinct 32-mers; with 4 planted 200-base repeats there must
	// be duplicated 32-mers.
	seen := map[string]int{}
	dups := 0
	for i := 0; i+32 <= len(g); i++ {
		k := string(g[i : i+32])
		seen[k]++
		if seen[k] == 2 {
			dups++
		}
	}
	if dups < 100 {
		t.Errorf("expected repeated 32-mers from planted repeats, got %d", dups)
	}
}

func TestSimulateReadsComeFromGenome(t *testing.T) {
	g := Genome(GenomeParams{Length: 2000, Seed: 4})
	rs := Simulate(g, ReadParams{ReadLen: 50, Coverage: 5, Seed: 5})
	if rs.NumReads() != 200 {
		t.Fatalf("NumReads = %d, want 200", rs.NumReads())
	}
	gs := g.String()
	grc := g.ReverseComplement().String()
	fwd, rev := 0, 0
	for i := 0; i < rs.NumReads(); i++ {
		r := rs.Read(uint32(i)).String()
		switch {
		case contains(gs, r):
			fwd++
		case contains(grc, r):
			rev++
		default:
			t.Fatalf("read %d not a substring of genome or its RC", i)
		}
	}
	if fwd == 0 || rev == 0 {
		t.Errorf("expected reads from both strands, got fwd=%d rev=%d", fwd, rev)
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func TestSimulateForwardOnly(t *testing.T) {
	g := Genome(GenomeParams{Length: 1000, Seed: 6})
	rs := Simulate(g, ReadParams{ReadLen: 40, Coverage: 3, Seed: 7, ForwardOnly: true})
	gs := g.String()
	for i := 0; i < rs.NumReads(); i++ {
		if !contains(gs, rs.Read(uint32(i)).String()) {
			t.Fatalf("forward-only read %d not in forward genome", i)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	g := Genome(GenomeParams{Length: 1000, Seed: 8})
	clean := Simulate(g, ReadParams{ReadLen: 50, Coverage: 4, Seed: 9, ForwardOnly: true})
	noisy := Simulate(g, ReadParams{ReadLen: 50, Coverage: 4, Seed: 9, ForwardOnly: true, ErrorRate: 0.05})
	diffs := 0
	for i := 0; i < clean.NumReads(); i++ {
		a, b := clean.Read(uint32(i)), noisy.Read(uint32(i))
		for j := range a {
			if a[j] != b[j] {
				diffs++
			}
		}
	}
	total := int(clean.TotalBases())
	if diffs == 0 {
		t.Fatal("error rate 5% should flip some bases")
	}
	rate := float64(diffs) / float64(total)
	if rate < 0.02 || rate > 0.10 {
		t.Errorf("observed error rate %.4f, want near 0.05", rate)
	}
}

func TestSimulatePanicsOnShortGenome(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when read length exceeds genome")
		}
	}()
	Simulate(make(dna.Seq, 10), ReadParams{ReadLen: 20, Coverage: 1})
}

func TestProfilesMirrorTable1(t *testing.T) {
	if len(Profiles) != 4 {
		t.Fatalf("want 4 profiles, got %d", len(Profiles))
	}
	wantLens := map[string]int{"H.Chr14": 101, "Bumblebee": 124, "Parakeet": 150, "H.Genome": 100}
	wantLmin := map[string]int{"H.Chr14": 63, "Bumblebee": 85, "Parakeet": 111, "H.Genome": 63}
	for _, p := range Profiles {
		if p.ReadLen != wantLens[p.Name] {
			t.Errorf("%s read length = %d, want %d", p.Name, p.ReadLen, wantLens[p.Name])
		}
		if p.MinOverlap != wantLmin[p.Name] {
			t.Errorf("%s lmin = %d, want %d", p.Name, p.MinOverlap, wantLmin[p.Name])
		}
	}
	// Base-count ratios should approximate Table I (1 : 7.36 : 20 : 27.4).
	base := float64(HChr14.TotalBases())
	ratios := []float64{1, 7.36, 20.0, 27.4}
	for i, p := range Profiles {
		got := float64(p.TotalBases()) / base
		if got < ratios[i]*0.7 || got > ratios[i]*1.3 {
			t.Errorf("%s base ratio = %.2f, want ~%.2f", p.Name, got, ratios[i])
		}
	}
}

func TestProfileByNameAndScaled(t *testing.T) {
	p, ok := ProfileByName("Parakeet")
	if !ok || p.ReadLen != 150 {
		t.Fatalf("ProfileByName = %+v, %v", p, ok)
	}
	if _, ok := ProfileByName("E.Coli"); ok {
		t.Error("unknown profile should not resolve")
	}
	s := p.Scaled(0.1)
	if s.GenomeLen != p.GenomeLen/10 {
		t.Errorf("Scaled genome = %d", s.GenomeLen)
	}
	tiny := p.Scaled(0.000001)
	if tiny.GenomeLen < 4*tiny.ReadLen {
		t.Error("Scaled should clamp to a workable genome size")
	}
}

func TestProfileGenerate(t *testing.T) {
	p := HChr14.Scaled(0.1)
	genome, reads := p.Generate()
	if len(genome) != p.GenomeLen {
		t.Errorf("genome length = %d, want %d", len(genome), p.GenomeLen)
	}
	if reads.NumReads() != p.NumReads() {
		t.Errorf("reads = %d, want %d", reads.NumReads(), p.NumReads())
	}
	if reads.MaxLen() != p.ReadLen {
		t.Errorf("read length = %d, want %d", reads.MaxLen(), p.ReadLen)
	}
	// Deterministic.
	_, reads2 := p.Generate()
	if reads2.NumReads() != reads.NumReads() || !reads2.Read(0).Equal(reads.Read(0)) {
		t.Error("Generate should be deterministic")
	}
}
