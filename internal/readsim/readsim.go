// Package readsim generates the synthetic datasets that stand in for the
// paper's Illumina runs (Table I).
//
// The original evaluation uses 9-398 GB of real reads (human chromosome
// 14, bumblebee, parakeet, whole human genome). Those are unavailable
// offline and far beyond this environment, so each dataset is replaced by
// a deterministic scaled profile that preserves what drives the
// evaluation's shape: the read length, the SGA-suggested minimum overlap,
// the relative dataset-size ratios (~1 : 7.4 : 20 : 27.4 in bases), and a
// coverage high enough that the overlap graph is dense. Genomes carry
// planted repeats so that string-graph behaviour on repetitive regions is
// exercised.
package readsim

import (
	"fmt"
	"math/rand"

	"repro/internal/dna"
)

// GenomeParams configures synthetic genome generation.
type GenomeParams struct {
	Length      int
	RepeatLen   int // length of each planted repeat (0 disables)
	RepeatCount int // number of planted repeat copies
	Seed        int64
}

// Genome generates a deterministic random genome with planted repeats.
func Genome(p GenomeParams) dna.Seq {
	rng := rand.New(rand.NewSource(p.Seed))
	g := make(dna.Seq, p.Length)
	for i := range g {
		g[i] = byte(rng.Intn(dna.Alphabet))
	}
	if p.RepeatLen > 0 && p.RepeatCount > 0 && p.RepeatLen < p.Length {
		// Copy one template segment to several random positions, the
		// repeat structure that makes assembly graphs ambiguous.
		start := rng.Intn(p.Length - p.RepeatLen)
		template := g[start : start+p.RepeatLen].Clone()
		for c := 0; c < p.RepeatCount; c++ {
			at := rng.Intn(p.Length - p.RepeatLen)
			copy(g[at:], template)
		}
	}
	return g
}

// ReadParams configures shotgun read simulation.
type ReadParams struct {
	ReadLen   int
	Coverage  float64
	ErrorRate float64 // per-base substitution probability
	Seed      int64
	// ForwardOnly disables reverse-complement strands; used by tests that
	// want a single-stranded graph.
	ForwardOnly bool
}

// Simulate shotgun-samples reads from the genome. Roughly half the reads
// come from the reverse strand (as sequencers produce), positions are
// uniform, and errors are independent substitutions.
func Simulate(genome dna.Seq, p ReadParams) *dna.ReadSet {
	if p.ReadLen > len(genome) {
		panic(fmt.Sprintf("readsim: read length %d exceeds genome length %d", p.ReadLen, len(genome)))
	}
	// Separate streams keep positions/strands identical across runs that
	// differ only in error rate, which tests rely on.
	rngPos := rand.New(rand.NewSource(p.Seed))
	rngErr := rand.New(rand.NewSource(p.Seed ^ 0x5DEECE66D))
	numReads := int(float64(len(genome))*p.Coverage/float64(p.ReadLen) + 0.5)
	rs := dna.NewReadSet(numReads, numReads*p.ReadLen)
	buf := make(dna.Seq, p.ReadLen)
	rcBuf := make(dna.Seq, p.ReadLen)
	for i := 0; i < numReads; i++ {
		pos := rngPos.Intn(len(genome) - p.ReadLen + 1)
		copy(buf, genome[pos:pos+p.ReadLen])
		read := buf
		if !p.ForwardOnly && rngPos.Intn(2) == 1 {
			buf.ReverseComplementInto(rcBuf)
			read = rcBuf
		}
		if p.ErrorRate > 0 {
			for j := range read {
				if rngErr.Float64() < p.ErrorRate {
					read[j] = byte((int(read[j]) + 1 + rngErr.Intn(3)) % dna.Alphabet)
				}
			}
		}
		rs.Append(read)
	}
	return rs
}

// Profile describes one scaled dataset mirroring a row of Table I.
type Profile struct {
	Name       string  // paper dataset this profile scales down
	ReadLen    int     // the paper's read length for this dataset
	MinOverlap int     // lmin as suggested by SGA (Section IV-A)
	GenomeLen  int     // scaled genome size
	Coverage   float64 // chosen so base-count ratios match Table I
	ErrorRate  float64
	Seed       int64
}

// The four evaluation datasets, scaled ~20,000x down from Table I while
// preserving read lengths, minimum overlaps, and base-count ratios
// (1 : 7.4 : 20 : 27.4).
var (
	HChr14 = Profile{Name: "H.Chr14", ReadLen: 101, MinOverlap: 63,
		GenomeLen: 40_000, Coverage: 11.4, Seed: 1401}
	Bumblebee = Profile{Name: "Bumblebee", ReadLen: 124, MinOverlap: 85,
		GenomeLen: 120_000, Coverage: 28.0, Seed: 1402}
	Parakeet = Profile{Name: "Parakeet", ReadLen: 150, MinOverlap: 111,
		GenomeLen: 240_000, Coverage: 38.0, Seed: 1403}
	HGenome = Profile{Name: "H.Genome", ReadLen: 100, MinOverlap: 63,
		GenomeLen: 400_000, Coverage: 31.2, Seed: 1404}
)

// Profiles lists the datasets in Table I order.
var Profiles = []Profile{HChr14, Bumblebee, Parakeet, HGenome}

// ProfileByName returns the profile with the given name, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Scaled returns a copy of the profile with the genome length multiplied
// by f (coverage unchanged), for quick tests and -short benchmarks.
func (p Profile) Scaled(f float64) Profile {
	p.GenomeLen = int(float64(p.GenomeLen) * f)
	if p.GenomeLen < 4*p.ReadLen {
		p.GenomeLen = 4 * p.ReadLen
	}
	return p
}

// NumReads returns the read count this profile will generate.
func (p Profile) NumReads() int {
	return int(float64(p.GenomeLen)*p.Coverage/float64(p.ReadLen) + 0.5)
}

// TotalBases returns the total base count this profile will generate.
func (p Profile) TotalBases() int64 {
	return int64(p.NumReads()) * int64(p.ReadLen)
}

// Generate materializes the genome and read set for the profile.
func (p Profile) Generate() (dna.Seq, *dna.ReadSet) {
	genome := Genome(GenomeParams{
		Length:      p.GenomeLen,
		RepeatLen:   p.ReadLen / 2,
		RepeatCount: p.GenomeLen / 20_000,
		Seed:        p.Seed,
	})
	reads := Simulate(genome, ReadParams{
		ReadLen:   p.ReadLen,
		Coverage:  p.Coverage,
		ErrorRate: p.ErrorRate,
		Seed:      p.Seed + 1,
	})
	return genome, reads
}
