package bitvec

import (
	"math/rand"
	"testing"
)

// naiveRank counts set bits in [0, i) by scanning.
func naiveRank(v *Vector, i int) int {
	count := 0
	for p := 0; p < i; p++ {
		set, err := v.Get(uint32(p))
		if err != nil {
			panic(err)
		}
		if set {
			count++
		}
	}
	return count
}

// naiveSelect finds the position of the k-th set bit by scanning.
func naiveSelect(v *Vector, k int) int {
	seen := 0
	for p := 0; p < v.Len(); p++ {
		set, _ := v.Get(uint32(p))
		if set {
			if seen == k {
				return p
			}
			seen++
		}
	}
	return -1
}

// TestRankSelectMatchesNaiveScan is the property test pinning the rank9
// directory against a straightforward bit-scan on random vectors of
// varied lengths and densities.
func TestRankSelectMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lengths := []int{0, 1, 63, 64, 65, 511, 512, 513, 1000, 4096, 10000}
	densities := []float64{0, 0.01, 0.3, 0.7, 1}
	for _, n := range lengths {
		for _, d := range densities {
			v := New(n)
			for i := 0; i < n; i++ {
				if rng.Float64() < d {
					mustSet(t, v, uint32(i))
				}
			}
			r := NewRankIndex(v)
			if r.Ones() != v.PopCount() {
				t.Fatalf("n=%d d=%g: Ones = %d, want %d", n, d, r.Ones(), v.PopCount())
			}
			// Rank at every position (plus the end).
			for i := 0; i <= n; i++ {
				got, err := r.Rank1(i)
				if err != nil {
					t.Fatalf("n=%d d=%g: Rank1(%d): %v", n, d, i, err)
				}
				if want := naiveRank(v, i); got != want {
					t.Fatalf("n=%d d=%g: Rank1(%d) = %d, want %d", n, d, i, got, want)
				}
			}
			// Select for every set bit.
			for k := 0; k < r.Ones(); k++ {
				got, err := r.Select1(k)
				if err != nil {
					t.Fatalf("n=%d d=%g: Select1(%d): %v", n, d, k, err)
				}
				if want := naiveSelect(v, k); got != want {
					t.Fatalf("n=%d d=%g: Select1(%d) = %d, want %d", n, d, k, got, want)
				}
			}
		}
	}
}

func TestRankSelectBounds(t *testing.T) {
	v := New(100)
	mustSet(t, v, 10)
	r := NewRankIndex(v)
	if _, err := r.Rank1(-1); err == nil {
		t.Error("Rank1(-1) should error")
	}
	if _, err := r.Rank1(101); err == nil {
		t.Error("Rank1(len+1) should error")
	}
	if _, err := r.Select1(-1); err == nil {
		t.Error("Select1(-1) should error")
	}
	if _, err := r.Select1(1); err == nil {
		t.Error("Select1(ones) should error")
	}
}

func TestEliasFanoRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000)
		universe := uint64(rng.Intn(1 << 20))
		vals := make([]uint64, n)
		var cur uint64
		for i := range vals {
			if universe > 0 {
				cur += uint64(rng.Int63n(int64(universe)/int64(n+1) + 2))
			}
			if cur > universe {
				cur = universe
			}
			vals[i] = cur
		}
		b, err := NewEliasFanoBuilder(n, universe)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if err := b.Append(v); err != nil {
				t.Fatalf("Append(%d): %v", v, err)
			}
		}
		ef, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if ef.Len() != n {
			t.Fatalf("Len = %d, want %d", ef.Len(), n)
		}
		for i, want := range vals {
			got, err := ef.Get(i)
			if err != nil {
				t.Fatalf("Get(%d): %v", i, err)
			}
			if got != want {
				t.Fatalf("trial %d: Get(%d) = %d, want %d", trial, i, got, want)
			}
		}
	}
}

func TestEliasFanoErrors(t *testing.T) {
	if _, err := NewEliasFanoBuilder(-1, 10); err == nil {
		t.Error("negative length should error")
	}
	b, err := NewEliasFanoBuilder(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(101); err == nil {
		t.Error("value above universe should error")
	}
	if err := b.Append(50); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(49); err == nil {
		t.Error("non-monotone append should error")
	}
	if _, err := b.Build(); err == nil {
		t.Error("short build should error")
	}
	if err := b.Append(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(60); err == nil {
		t.Error("append past declared length should error")
	}
	ef, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ef.Get(2); err == nil {
		t.Error("Get past end should error")
	}
	if _, err := ef.Get(-1); err == nil {
		t.Error("Get(-1) should error")
	}
}
