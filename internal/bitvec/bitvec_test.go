package bitvec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(200)
	if v.Len() != 200 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 199} {
		if v.Get(i) {
			t.Fatalf("bit %d should start clear", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d should be set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d should be clear again", i)
		}
	}
}

func TestTestAndSet(t *testing.T) {
	v := New(100)
	if v.TestAndSet(42) {
		t.Error("first TestAndSet should report clear")
	}
	if !v.TestAndSet(42) {
		t.Error("second TestAndSet should report set")
	}
	if !v.Get(42) {
		t.Error("bit should be set after TestAndSet")
	}
}

func TestPopCountAndReset(t *testing.T) {
	v := New(500)
	rng := rand.New(rand.NewSource(5))
	want := map[uint32]bool{}
	for i := 0; i < 200; i++ {
		b := uint32(rng.Intn(500))
		want[b] = true
		v.Set(b)
	}
	if v.PopCount() != len(want) {
		t.Errorf("PopCount = %d, want %d", v.PopCount(), len(want))
	}
	v.Reset()
	if v.PopCount() != 0 {
		t.Error("Reset should clear everything")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(64)
	v.Set(3)
	c := v.Clone()
	c.Set(7)
	if v.Get(7) {
		t.Error("Clone shares storage")
	}
	if !c.Get(3) {
		t.Error("Clone lost bits")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f := func(bits []uint16, n16 uint16) bool {
		n := int(n16)%3000 + 1
		v := New(n)
		for _, b := range bits {
			v.Set(uint32(int(b) % n))
		}
		var buf bytes.Buffer
		if _, err := v.WriteTo(&buf); err != nil {
			return false
		}
		got := New(0)
		if _, err := got.ReadFrom(&buf); err != nil {
			return false
		}
		if got.Len() != v.Len() || got.PopCount() != v.PopCount() {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Get(uint32(i)) != v.Get(uint32(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadFromTruncated(t *testing.T) {
	v := New(128)
	v.Set(100)
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	got := New(0)
	if _, err := got.ReadFrom(bytes.NewReader(raw[:10])); err == nil {
		t.Error("expected error on truncated payload")
	}
	if _, err := got.ReadFrom(bytes.NewReader(raw[:4])); err == nil {
		t.Error("expected error on truncated header")
	}
}

func TestBytes(t *testing.T) {
	if got := New(64).Bytes(); got != 8 {
		t.Errorf("Bytes(64 bits) = %d, want 8", got)
	}
	if got := New(65).Bytes(); got != 16 {
		t.Errorf("Bytes(65 bits) = %d, want 16", got)
	}
}
