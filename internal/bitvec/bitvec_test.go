package bitvec

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustGet(t *testing.T, v *Vector, i uint32) bool {
	t.Helper()
	got, err := v.Get(i)
	if err != nil {
		t.Fatalf("Get(%d): %v", i, err)
	}
	return got
}

func mustSet(t *testing.T, v *Vector, i uint32) {
	t.Helper()
	if err := v.Set(i); err != nil {
		t.Fatalf("Set(%d): %v", i, err)
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	if v.Len() != 200 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 199} {
		if mustGet(t, v, i) {
			t.Fatalf("bit %d should start clear", i)
		}
		mustSet(t, v, i)
		if !mustGet(t, v, i) {
			t.Fatalf("bit %d should be set", i)
		}
		if err := v.Clear(i); err != nil {
			t.Fatalf("Clear(%d): %v", i, err)
		}
		if mustGet(t, v, i) {
			t.Fatalf("bit %d should be clear again", i)
		}
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	cases := []struct {
		name string
		n    int
		idx  uint32
		ok   bool
	}{
		{"empty_zero", 0, 0, false},
		{"first", 200, 0, true},
		{"last", 200, 199, true},
		{"one_past_end", 200, 200, false},
		{"word_boundary_in", 64, 63, true},
		{"word_boundary_out", 64, 64, false},
		{"far_out", 64, 1 << 30, false},
		{"max_uint32", 64, ^uint32(0), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := New(tc.n)
			_, getErr := v.Get(tc.idx)
			setErr := v.Set(tc.idx)
			clearErr := v.Clear(tc.idx)
			_, tasErr := v.TestAndSet(tc.idx)
			for op, err := range map[string]error{
				"Get": getErr, "Set": setErr, "Clear": clearErr, "TestAndSet": tasErr,
			} {
				if tc.ok && err != nil {
					t.Errorf("%s(%d) on %d bits: unexpected error %v", op, tc.idx, tc.n, err)
				}
				if !tc.ok {
					if err == nil {
						t.Errorf("%s(%d) on %d bits: want out-of-range error", op, tc.idx, tc.n)
					} else if !strings.Contains(err.Error(), "out of range") {
						t.Errorf("%s(%d): error %q not descriptive", op, tc.idx, err)
					}
				}
			}
		})
	}
}

func TestTestAndSet(t *testing.T) {
	v := New(100)
	if old, err := v.TestAndSet(42); err != nil || old {
		t.Errorf("first TestAndSet = (%v, %v), want (false, nil)", old, err)
	}
	if old, err := v.TestAndSet(42); err != nil || !old {
		t.Errorf("second TestAndSet = (%v, %v), want (true, nil)", old, err)
	}
	if !mustGet(t, v, 42) {
		t.Error("bit should be set after TestAndSet")
	}
}

func TestPopCountAndReset(t *testing.T) {
	v := New(500)
	rng := rand.New(rand.NewSource(5))
	want := map[uint32]bool{}
	for i := 0; i < 200; i++ {
		b := uint32(rng.Intn(500))
		want[b] = true
		mustSet(t, v, b)
	}
	if v.PopCount() != len(want) {
		t.Errorf("PopCount = %d, want %d", v.PopCount(), len(want))
	}
	v.Reset()
	if v.PopCount() != 0 {
		t.Error("Reset should clear everything")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(64)
	mustSet(t, v, 3)
	c := v.Clone()
	mustSet(t, c, 7)
	if mustGet(t, v, 7) {
		t.Error("Clone shares storage")
	}
	if !mustGet(t, c, 3) {
		t.Error("Clone lost bits")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f := func(bits []uint16, n16 uint16) bool {
		n := int(n16)%3000 + 1
		v := New(n)
		for _, b := range bits {
			if err := v.Set(uint32(int(b) % n)); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if _, err := v.WriteTo(&buf); err != nil {
			return false
		}
		got := New(0)
		if _, err := got.ReadFrom(&buf); err != nil {
			return false
		}
		if got.Len() != v.Len() || got.PopCount() != v.PopCount() {
			return false
		}
		for i := 0; i < n; i++ {
			a, errA := got.Get(uint32(i))
			b, errB := v.Get(uint32(i))
			if errA != nil || errB != nil || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadFromTruncated(t *testing.T) {
	v := New(128)
	mustSet(t, v, 100)
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	got := New(0)
	if _, err := got.ReadFrom(bytes.NewReader(raw[:10])); err == nil {
		t.Error("expected error on truncated payload")
	}
	if _, err := got.ReadFrom(bytes.NewReader(raw[:4])); err == nil {
		t.Error("expected error on truncated header")
	}
}

func TestBytes(t *testing.T) {
	if got := New(64).Bytes(); got != 8 {
		t.Errorf("Bytes(64 bits) = %d, want 8", got)
	}
	if got := New(65).Bytes(); got != 16 {
		t.Errorf("Bytes(65 bits) = %d, want 16", got)
	}
}
