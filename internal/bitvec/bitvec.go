// Package bitvec implements the out-degree bit-vector that gates greedy
// edge insertion in the LaSAGNA string graph (Section III-C).
//
// The graph is greedy: each vertex may have at most one outgoing edge, and
// one bit per vertex records whether that edge exists. In the distributed
// reduce phase this vector is the token that is handed from the node
// processing partition l+1 to the node processing partition l (Section
// III-E.3), so it is serializable.
package bitvec

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Vector is a fixed-size bit vector.
type Vector struct {
	words []uint64
	n     int
}

// New returns a vector of n bits, all clear.
func New(n int) *Vector {
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// check validates a bit index against the vector length.
func (v *Vector) check(i uint32) error {
	if int64(i) >= int64(v.n) {
		return fmt.Errorf("bitvec: index %d out of range [0, %d)", i, v.n)
	}
	return nil
}

// Get reports whether bit i is set. Out-of-range indices return a
// descriptive error rather than panicking: the vector is load-bearing
// under the succinct graph store, where indices come from decoded
// (possibly corrupt) input.
func (v *Vector) Get(i uint32) (bool, error) {
	if err := v.check(i); err != nil {
		return false, err
	}
	return v.words[i>>6]&(1<<(i&63)) != 0, nil
}

// Set sets bit i.
func (v *Vector) Set(i uint32) error {
	if err := v.check(i); err != nil {
		return err
	}
	v.words[i>>6] |= 1 << (i & 63)
	return nil
}

// Clear clears bit i.
func (v *Vector) Clear(i uint32) error {
	if err := v.check(i); err != nil {
		return err
	}
	v.words[i>>6] &^= 1 << (i & 63)
	return nil
}

// TestAndSet sets bit i and reports whether it was already set.
func (v *Vector) TestAndSet(i uint32) (bool, error) {
	if err := v.check(i); err != nil {
		return false, err
	}
	w, m := i>>6, uint64(1)<<(i&63)
	old := v.words[w]&m != 0
	v.words[w] |= m
	return old, nil
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	total := 0
	for _, w := range v.words {
		total += popcount(w)
	}
	return total
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Bytes returns the in-memory size of the vector payload.
func (v *Vector) Bytes() int64 { return 8 * int64(len(v.words)) }

// Reset clears every bit.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns an independent copy.
func (v *Vector) Clone() *Vector {
	out := New(v.n)
	copy(out.words, v.words)
	return out
}

// WriteTo serializes the vector (length header plus words). It implements
// io.WriterTo so the distributed reduce can stream the token between
// simulated nodes.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(v.n))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	buf := make([]byte, 8*len(v.words))
	for i, word := range v.words {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	nw, err := w.Write(buf)
	return 8 + int64(nw), err
}

// ReadFrom deserializes a vector previously written by WriteTo, replacing
// the receiver's contents.
func (v *Vector) ReadFrom(r io.Reader) (int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := int(binary.LittleEndian.Uint64(hdr[:]))
	if n < 0 {
		return 8, fmt.Errorf("bitvec: negative length %d", n)
	}
	v.n = n
	v.words = make([]uint64, (n+63)/64)
	buf := make([]byte, 8*len(v.words))
	if _, err := io.ReadFull(r, buf); err != nil {
		return 8, err
	}
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return 8 + int64(len(buf)), nil
}
