package bitvec

import (
	"fmt"
	"math/bits"
)

// EliasFano is a quasi-succinct encoding of a monotone non-decreasing
// sequence of n values in [0, universe] (Elias 1974; Vigna's
// quasi-succinct indices). Each value is split into l = log2(u/n) low
// bits, stored verbatim in a packed array, and a high part coded in
// unary in a bitvector of n + (u >> l) + 1 bits. Total space is about
// n*(2 + log2(u/n)) bits — far below the 64n of a plain offset array —
// while Get stays O(1) via the rank/select directory on the high bits.
//
// The succinct graph store uses two of these: one for per-vertex edge
// offsets (rowPtr) and one for per-vertex byte offsets into the
// delta-coded adjacency stream.
type EliasFano struct {
	n        int
	universe uint64
	l        uint
	low      []uint64 // packed l-bit low parts
	high     *Vector  // unary-coded high parts
	rank     *RankIndex
}

// EliasFanoBuilder accumulates a monotone sequence with a known length
// and universe bound, then seals it into an EliasFano.
type EliasFanoBuilder struct {
	ef   *EliasFano
	next int
	prev uint64
}

// NewEliasFanoBuilder prepares storage for n values, each at most
// universe, appended in non-decreasing order.
func NewEliasFanoBuilder(n int, universe uint64) (*EliasFanoBuilder, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitvec: negative eliasfano length %d", n)
	}
	var l uint
	if n > 0 && universe > uint64(n) {
		l = uint(bits.Len64(universe/uint64(n)) - 1)
	}
	highBits := 1
	if n > 0 {
		highBits = n + int(universe>>l) + 1
	}
	ef := &EliasFano{
		n:        n,
		universe: universe,
		l:        l,
		low:      make([]uint64, (int(l)*n+63)/64+1),
		high:     New(highBits),
	}
	return &EliasFanoBuilder{ef: ef}, nil
}

// Append adds the next value. Values must be non-decreasing and within
// the declared universe.
func (b *EliasFanoBuilder) Append(v uint64) error {
	ef := b.ef
	if b.next >= ef.n {
		return fmt.Errorf("bitvec: eliasfano overflow: %d values declared", ef.n)
	}
	if v > ef.universe {
		return fmt.Errorf("bitvec: eliasfano value %d exceeds universe %d", v, ef.universe)
	}
	if v < b.prev {
		return fmt.Errorf("bitvec: eliasfano sequence not monotone: %d after %d", v, b.prev)
	}
	if ef.l > 0 {
		lowVal := v & ((1 << ef.l) - 1)
		pos := uint(b.next) * ef.l
		w, off := pos>>6, pos&63
		ef.low[w] |= lowVal << off
		if off+ef.l > 64 {
			ef.low[w+1] |= lowVal >> (64 - off)
		}
	}
	if err := ef.high.Set(uint32((v >> ef.l) + uint64(b.next))); err != nil {
		return fmt.Errorf("bitvec: eliasfano high bits: %w", err)
	}
	b.prev = v
	b.next++
	return nil
}

// Build seals the sequence. All n declared values must have been
// appended.
func (b *EliasFanoBuilder) Build() (*EliasFano, error) {
	if b.next != b.ef.n {
		return nil, fmt.Errorf("bitvec: eliasfano short build: %d of %d values", b.next, b.ef.n)
	}
	b.ef.rank = NewRankIndex(b.ef.high)
	return b.ef, nil
}

// Len returns the number of values in the sequence.
func (ef *EliasFano) Len() int { return ef.n }

// Get returns the i-th value.
func (ef *EliasFano) Get(i int) (uint64, error) {
	if i < 0 || i >= ef.n {
		return 0, fmt.Errorf("bitvec: eliasfano index %d out of range [0, %d)", i, ef.n)
	}
	p, err := ef.rank.Select1(i)
	if err != nil {
		return 0, err
	}
	v := uint64(p-i) << ef.l
	if ef.l > 0 {
		pos := uint(i) * ef.l
		w, off := pos>>6, pos&63
		lowVal := ef.low[w] >> off
		if off+ef.l > 64 {
			lowVal |= ef.low[w+1] << (64 - off)
		}
		v |= lowVal & ((1 << ef.l) - 1)
	}
	return v, nil
}

// Bytes returns the in-memory size of the encoded sequence including
// its rank directory.
func (ef *EliasFano) Bytes() int64 {
	b := 8 * int64(len(ef.low))
	b += ef.high.Bytes()
	if ef.rank != nil {
		b += ef.rank.Bytes()
	}
	return b
}
